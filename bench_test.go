// Benchmarks regenerating every table and figure of the paper's
// evaluation (Kaul & Vemuri, DATE 1998), plus the ablations listed in
// DESIGN.md. Each BenchmarkTableN runs the corresponding row set once
// per iteration and reports aggregate solver effort; the RESULT lines
// (written through b.Log on -v) match cmd/tptables output.
//
// Per-row time limits keep the harness bounded: rows that exceed the
// budget are reported the way the paper reports its ">7200" entries.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/library"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/partition"
	"repro/internal/randgraph"
	"repro/internal/rpsim"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// benchRowLimit bounds each table row during benchmarking. Rows that
// exceed it are reported like the paper's ">7200" entries; use
// cmd/tptables with a larger -timeout for longer-budget runs.
const benchRowLimit = 15 * time.Second

func runTable(b *testing.B, rows []experiments.Row) {
	b.Helper()
	for i := range rows {
		if rows[i].TimeLimit == 0 {
			rows[i].TimeLimit = benchRowLimit
		}
	}
	var nodes, lpiter int
	for n := 0; n < b.N; n++ {
		results, err := experiments.RunAll(rows, nil)
		if err != nil && len(results) == 0 {
			b.Fatal(err)
		}
		if err != nil {
			b.Log("partial failure:", err)
		}
		nodes, lpiter = 0, 0
		for _, r := range results {
			nodes += r.Nodes
			lpiter += r.LPIter
			if n == 0 {
				b.Log(experiments.Format(r))
			}
		}
	}
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(float64(lpiter), "lp-pivots")
}

// BenchmarkTable1 regenerates Table 1: the preliminary untightened
// formulation; in the paper 3 of 4 rows exceeded 2 hours.
func BenchmarkTable1(b *testing.B) { runTable(b, experiments.Table1()) }

// BenchmarkTable2 regenerates Table 2: the tightened constraints on
// the same configurations.
func BenchmarkTable2(b *testing.B) { runTable(b, experiments.Table2()) }

// BenchmarkTable3 regenerates Table 3: the latency/partition sweep on
// graph 1 (infeasible when too tight; fewer partitions as L grows).
func BenchmarkTable3(b *testing.B) { runTable(b, experiments.Table3()) }

// BenchmarkTable4 regenerates Table 4: full results on graphs 1-6.
func BenchmarkTable4(b *testing.B) { runTable(b, experiments.Table4()) }

// BenchmarkAblationLinearization compares Fortet vs Glover (Section 4).
func BenchmarkAblationLinearization(b *testing.B) {
	runTable(b, experiments.AblationLinearization())
}

// BenchmarkAblationBranching compares the paper's variable-selection
// heuristic with naive rules (Sections 8-9).
func BenchmarkAblationBranching(b *testing.B) {
	runTable(b, experiments.AblationBranching())
}

// BenchmarkAblationTightening drops one cut family at a time (Section 6).
func BenchmarkAblationTightening(b *testing.B) {
	runTable(b, experiments.AblationTightening())
}

// figure3Instance mirrors the worked example of Figure 3: three tasks
// on three partitions with a skip edge, showing the w/memory
// semantics.
func figure3Instance(b *testing.B) (core.Instance, *core.Model) {
	b.Helper()
	g := graph.New("fig3")
	t0 := g.AddTask("t1")
	t1 := g.AddTask("t2")
	t2 := g.AddTask("t3")
	a := g.AddOp(t0, graph.OpMul, "")
	c := g.AddOp(t1, graph.OpMul, "")
	e := g.AddOp(t2, graph.OpMul, "")
	g.Connect(a, c, 4)
	g.Connect(c, e, 6)
	g.Connect(a, e, 2)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 0, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	inst := core.Instance{Graph: g, Alloc: alloc, Device: library.Device{
		Name: "fig3", CapacityFG: 96, Alpha: 1.0, ScratchMem: 64,
	}}
	m, err := core.Build(inst, core.Options{N: 3, L: 0, Tightened: true})
	if err != nil {
		b.Fatal(err)
	}
	return inst, m
}

// BenchmarkFigure3 solves the Figure 3 example and checks its memory
// semantics each iteration.
func BenchmarkFigure3(b *testing.B) {
	inst, _ := figure3Instance(b)
	for n := 0; n < b.N; n++ {
		res, err := core.SolveInstance(inst, core.Options{N: 3, L: 0, Tightened: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("figure 3 instance must be feasible")
		}
	}
}

// BenchmarkFigure4 measures the tightened vs untightened LP on the
// Figure 4 two-task/four-partition example (the spurious-w cutoffs).
func BenchmarkFigure4(b *testing.B) {
	g := graph.New("fig4")
	t0 := g.AddTask("t1")
	t1 := g.AddTask("t2")
	a := g.AddOp(t0, graph.OpAdd, "")
	c := g.AddOp(t1, graph.OpAdd, "")
	g.Connect(a, c, 1)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	inst := core.Instance{Graph: g, Alloc: alloc, Device: library.Device{
		Name: "fig4", CapacityFG: 400, Alpha: 1.0, ScratchMem: 64,
	}}
	for _, tight := range []bool{false, true} {
		name := "untightened"
		if tight {
			name = "tightened"
		}
		b.Run(name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				m, err := core.Build(inst, core.Options{N: 4, L: 4, Tightened: tight})
				if err != nil {
					b.Fatal(err)
				}
				s, err := lp.NewSolver(m.P)
				if err != nil {
					b.Fatal(err)
				}
				if st := s.Solve(); st != lp.StatusOptimal {
					b.Fatalf("LP status %v", st)
				}
			}
		})
	}
}

// BenchmarkAblationPriming measures the effect of seeding branch and
// bound with the heuristic incumbent (extension beyond the paper).
func BenchmarkAblationPriming(b *testing.B) {
	rows := []experiments.Row{
		{Label: "no prime g1 N2 L3", GraphNum: 1, N: 2, L: 3, A: 2, M: 2, S: 1,
			Opt: core.Options{Tightened: true}},
		{Label: "primed  g1 N2 L3", GraphNum: 1, N: 2, L: 3, A: 2, M: 2, S: 1,
			Opt: core.Options{Tightened: true, PrimeHeuristic: true}},
	}
	runTable(b, rows)
}

// --- micro-benchmarks of the substrates ---

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	return randgraph.MustPaper(n)
}

// BenchmarkModelBuild measures ILP generation alone across graph sizes.
func BenchmarkModelBuild(b *testing.B) {
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, gn := range []int{1, 3, 6} {
		g := benchGraph(b, gn)
		inst := core.Instance{Graph: g, Alloc: alloc, Device: library.XC4010()}
		b.Run(g.Name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				m, err := core.Build(inst, core.Options{N: 3, L: 1, Tightened: true})
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					st := m.Stats()
					b.ReportMetric(float64(st.Vars), "vars")
					b.ReportMetric(float64(st.Rows), "rows")
				}
			}
		})
	}
}

// BenchmarkRootLP measures one LP relaxation solve from scratch.
func BenchmarkRootLP(b *testing.B) {
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(b, 1)
	m, err := core.Build(core.Instance{Graph: g, Alloc: alloc, Device: library.XC4010()},
		core.Options{N: 3, L: 1, Tightened: true})
	if err != nil {
		b.Fatal(err)
	}
	for n := 0; n < b.N; n++ {
		s, err := lp.NewSolver(m.P)
		if err != nil {
			b.Fatal(err)
		}
		s.Solve()
	}
}

// BenchmarkWarmRestart measures a bound-change + dual-simplex
// re-optimization, the inner loop of branch and bound.
func BenchmarkWarmRestart(b *testing.B) {
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(b, 1)
	m, err := core.Build(core.Instance{Graph: g, Alloc: alloc, Device: library.XC4010()},
		core.Options{N: 2, L: 3, Tightened: true})
	if err != nil {
		b.Fatal(err)
	}
	s, err := lp.NewSolver(m.P)
	if err != nil {
		b.Fatal(err)
	}
	if st := s.Solve(); st != lp.StatusOptimal {
		b.Fatalf("root LP %v", st)
	}
	col := m.Y[[2]int{0, 1}]
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.SetBound(col, 1, 1)
		s.ReOptimize()
		s.SetBound(col, 0, 1)
		s.ReOptimize()
	}
}

// BenchmarkMILPParallel runs the serial-vs-parallel suite behind
// cmd/tptables -benchmilp: every internal/benchmarks instance with the
// scheduling probe disabled, solved serially and with parallel workers.
// On a single CPU the parallel runs measure coordination overhead
// rather than speedup; BENCH_milp.json records GOMAXPROCS alongside
// the numbers for that reason.
func BenchmarkMILPParallel(b *testing.B) {
	suite, err := experiments.MILPBench()
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	for _, e := range suite {
		for _, par := range []int{0, workers} {
			name := e.Name + "/serial"
			if par > 0 {
				name = fmt.Sprintf("%s/parallel%d", e.Name, par)
			}
			b.Run(name, func(b *testing.B) {
				opt := e.Opt
				opt.Parallelism = par
				if par > 1 {
					opt.ParallelThreshold = -1 // measure the real parallel path
				}
				var nodes, pivots int
				for n := 0; n < b.N; n++ {
					res, err := core.SolveInstance(e.Inst, opt)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Optimal {
						b.Fatalf("%s: not solved to optimality", e.Name)
					}
					nodes, pivots = res.Nodes, res.LPIterations
				}
				b.ReportMetric(float64(nodes), "nodes")
				b.ReportMetric(float64(pivots), "lp-pivots")
			})
		}
	}
}

// BenchmarkMILPKnapsack measures the generic branch-and-bound layer.
func BenchmarkMILPKnapsack(b *testing.B) {
	p := &lp.Problem{}
	var cols []int
	values := []float64{10, 13, 8, 21, 5, 7, 9, 12, 4, 16, 11, 6}
	weights := []float64{2, 3, 2, 5, 1, 2, 3, 4, 1, 5, 3, 2}
	for _, v := range values {
		cols = append(cols, p.AddBinary("x", -v))
	}
	if err := p.AddLE("cap", cols, weights, 14); err != nil {
		b.Fatal(err)
	}
	for n := 0; n < b.N; n++ {
		if _, err := milp.Solve(p, milp.Options{IntVars: cols, ObjIntegral: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListSchedule measures the heuristic scheduling substrate.
func BenchmarkListSchedule(b *testing.B) {
	g := benchGraph(b, 6)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	w, err := sched.ComputeWindows(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	var ops, units []int
	for i := 0; i < g.NumOps(); i++ {
		ops = append(ops, i)
	}
	for u := 0; u < alloc.NumUnits(); u++ {
		units = append(units, u)
	}
	for n := 0; n < b.N; n++ {
		if _, err := sched.ListSchedule(g, alloc, w, ops, units); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristicFlow measures the full non-optimal baseline.
func BenchmarkHeuristicFlow(b *testing.B) {
	g := benchGraph(b, 4)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	for n := 0; n < b.N; n++ {
		if _, err := heuristic.Solve(g, alloc, library.XC4010(), 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures the reconfigurable-processor simulator.
func BenchmarkSimulate(b *testing.B) {
	g, alloc, dev, sol := solvedFixture(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, _, err := rpsim.Run(g, alloc, dev, sol, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTLLowering measures netlist generation + VHDL emission.
func BenchmarkRTLLowering(b *testing.B) {
	g, alloc, _, sol := solvedFixture(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		nets, err := rtl.BuildAll(g, alloc, sol)
		if err != nil {
			b.Fatal(err)
		}
		for _, nl := range nets {
			_ = nl.VHDL()
		}
	}
}

// BenchmarkVerify measures the independent solution checker.
func BenchmarkVerify(b *testing.B) {
	g, alloc, dev, sol := solvedFixture(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := partition.Verify(g, alloc, dev, sol, partition.VerifyOptions{L: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

var fixtureOnce struct {
	done bool
	g    *graph.Graph
	al   *library.Allocation
	dev  library.Device
	sol  *partition.Solution
}

// solvedFixture solves graph 1 once at a generous configuration and
// shares the solution across micro-benchmarks (the solve itself is
// excluded from their timings via ResetTimer).
func solvedFixture(b *testing.B) (*graph.Graph, *library.Allocation, library.Device, *partition.Solution) {
	b.Helper()
	if fixtureOnce.done {
		return fixtureOnce.g, fixtureOnce.al, fixtureOnce.dev, fixtureOnce.sol
	}
	g := benchGraph(b, 1)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	dev := library.XC4010()
	res, err := core.SolveInstance(core.Instance{Graph: g, Alloc: alloc, Device: dev},
		core.Options{N: 2, L: 4, Tightened: true, ExactSweep: true, TimeLimit: benchRowLimit})
	if err != nil {
		b.Fatal(err)
	}
	if !res.Feasible {
		b.Fatal("fixture must be feasible")
	}
	fixtureOnce.done = true
	fixtureOnce.g, fixtureOnce.al, fixtureOnce.dev, fixtureOnce.sol = g, alloc, dev, res.Solution
	return g, alloc, dev, res.Solution
}
