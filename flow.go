package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rpsim"
	"repro/internal/rtl"
)

// FlowOptions configure the one-call end-to-end flow. The embedded
// canonical Options carry the solver knobs (L, Linearization, Branch,
// TimeLimit, Parallelism, Trace, ...); N is overridden by the flow's
// own widening loop, and Tightened plus ExactSweep are forced on for
// every attempt. TimeLimit bounds each attempt (default 60 s).
type FlowOptions struct {
	Options

	// ExtraN bounds how many times the flow widens N beyond the
	// list-scheduling estimate when the estimate proves infeasible.
	// Default 2.
	ExtraN int
	// Inputs optionally provides source-operation values for the
	// simulation; missing sources default to 1.
	Inputs map[int]int64
}

// FlowResult is the outcome of the end-to-end flow.
type FlowResult struct {
	// Result is the solver outcome of the successful attempt.
	*Result
	// N is the segment bound of the successful attempt.
	N int
	// Timing is the simulated runtime breakdown on the device.
	Timing rpsim.Timing
	// Values are the simulated dataflow values per operation.
	Values map[int]int64
	// Netlists are the per-segment RTL lowerings.
	Netlists []*rtl.Netlist
}

// Flow runs the complete paper flow on an instance: estimate the
// number of segments with the list-scheduling heuristic, optimize (with
// the exact sweep and heuristic priming enabled), widen N if the
// estimate proves infeasible, then simulate the winning design on the
// device model and lower it to RTL.
func Flow(inst Instance, opt FlowOptions) (*FlowResult, error) {
	return FlowContext(context.Background(), inst, opt)
}

// FlowContext is Flow under a context: cancelling ctx cooperatively
// stops the optimizer mid-search (deadlines and client disconnects
// actually stop work) and returns the context's error.
func FlowContext(ctx context.Context, inst Instance, opt FlowOptions) (*FlowResult, error) {
	if opt.ExtraN <= 0 {
		opt.ExtraN = 2
	}
	if opt.TimeLimit <= 0 {
		opt.TimeLimit = 60 * time.Second
	}
	est, err := core.EstimateN(inst)
	if err != nil {
		return nil, err
	}
	var res *Result
	n := est
	for ; n <= est+opt.ExtraN; n++ {
		o := opt.Options
		o.N = n
		o.Tightened = true
		o.ExactSweep = true
		o.TimeLimit = opt.TimeLimit
		res, err = core.SolveInstanceContext(ctx, inst, o)
		if err != nil {
			return nil, err
		}
		if res.Cancelled {
			if cerr := context.Cause(ctx); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("repro: flow cancelled at N=%d", n)
		}
		if res.Feasible {
			break
		}
		if !res.Optimal {
			return nil, fmt.Errorf("repro: flow inconclusive at N=%d within the time limit", n)
		}
	}
	if res == nil || !res.Feasible {
		return nil, fmt.Errorf("repro: infeasible up to N=%d; raise L or ExtraN", est+opt.ExtraN)
	}
	values, timing, err := rpsim.Run(inst.Graph, inst.Alloc, inst.Device, res.Solution, opt.Inputs)
	if err != nil {
		return nil, fmt.Errorf("repro: simulation of the solved design failed: %w", err)
	}
	nets, err := rtl.BuildAll(inst.Graph, inst.Alloc, res.Solution)
	if err != nil {
		return nil, fmt.Errorf("repro: RTL lowering failed: %w", err)
	}
	return &FlowResult{
		Result:   res,
		N:        n,
		Timing:   timing,
		Values:   values,
		Netlists: nets,
	}, nil
}
