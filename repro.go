// Package repro is a Go reproduction of Kaul & Vemuri, "Optimal
// Temporal Partitioning and Synthesis for Reconfigurable
// Architectures" (DATE 1998): a combined temporal-partitioning and
// high-level-synthesis optimizer for dynamically reconfigurable FPGAs,
// built on a from-scratch bounded-variable simplex LP solver and a
// warm-started branch-and-bound MILP solver.
//
// This package is a facade over the implementation packages:
//
//	internal/graph     — task/operation graph model and text format
//	internal/library   — FU component library and device model
//	internal/sched     — ASAP/ALAP windows and list scheduling
//	internal/lp        — bounded-variable simplex
//	internal/milp      — branch and bound with pluggable branching
//	internal/core      — the paper's 0-1 ILP formulation (eqs. 1-32)
//	internal/partition — solution model and independent verifier
//	internal/heuristic — fast non-optimal baseline flow
//	internal/rpsim     — reconfigurable-processor execution model
//	internal/rtl       — per-segment RTL lowering
//	internal/randgraph — seeded benchmark graph generation
//
// Typical use:
//
//	g := repro.NewGraph("kernel")
//	t0 := g.AddTask("phase0")
//	a := g.AddOp(t0, repro.OpAdd, "a")
//	... build the task graph ...
//	alloc, _ := repro.PaperAllocation(repro.DefaultLibrary(), 2, 2, 1)
//	res, _ := repro.Solve(repro.Instance{
//	    Graph: g, Alloc: alloc, Device: repro.XC4010(),
//	}, repro.Options{L: 1, Tightened: true})
//	fmt.Print(res.Solution.Report(g, alloc))
package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/partition"
	"repro/internal/trace"
)

// Re-exported model types.
type (
	// Graph is a behavioral specification: a DAG of tasks, each a DAG
	// of operations.
	Graph = graph.Graph
	// OpKind identifies an abstract operation.
	OpKind = graph.OpKind
	// FUType is a characterized functional-unit type.
	FUType = library.FUType
	// Library is a set of FU types.
	Library = library.Library
	// Allocation is the FU exploration set F.
	Allocation = library.Allocation
	// Device is the target reconfigurable processor.
	Device = library.Device
	// Instance is a complete problem instance.
	Instance = core.Instance
	// Options configure formulation and solving.
	Options = core.Options
	// Result reports a solve.
	Result = core.Result
	// Solution is a verified partitioning/synthesis result.
	Solution = partition.Solution
	// Tracer stamps and forwards structured solve events; attach one
	// via Options.Trace. A nil Tracer disables tracing at zero cost.
	Tracer = trace.Tracer
	// TraceEvent is one structured observation of a traced solve.
	TraceEvent = trace.Event
	// TraceSink receives emitted trace events.
	TraceSink = trace.Sink
)

// Common operation kinds.
const (
	OpAdd = graph.OpAdd
	OpSub = graph.OpSub
	OpMul = graph.OpMul
	OpDiv = graph.OpDiv
	OpCmp = graph.OpCmp
)

// Formulation switches (see core.Options).
const (
	LinGlover       = core.LinGlover
	LinFortet       = core.LinFortet
	BranchPaper     = core.BranchPaper
	BranchFirstFrac = core.BranchFirstFrac
	BranchMostFrac  = core.BranchMostFrac
)

// NewGraph returns an empty specification.
func NewGraph(name string) *Graph { return graph.New(name) }

// ParseGraph parses the textual specification format.
func ParseGraph(text string) (*Graph, error) { return graph.ParseString(text) }

// DefaultLibrary returns the standard characterized component library.
func DefaultLibrary() *Library { return library.DefaultLibrary() }

// PaperAllocation instantiates a adders, m multipliers and s
// subtracters — the A+M+S exploration sets of the paper's tables.
func PaperAllocation(lib *Library, a, m, s int) (*Allocation, error) {
	return library.PaperAllocation(lib, a, m, s)
}

// NewAllocation instantiates counts[type] units of each named type.
func NewAllocation(lib *Library, counts map[string]int) (*Allocation, error) {
	return library.NewAllocation(lib, counts)
}

// XC4010 returns the default paper-era target device.
func XC4010() Device { return library.XC4010() }

// XC4025 returns the larger target device.
func XC4025() Device { return library.XC4025() }

// Solve builds the 0-1 ILP for the instance and optimizes it by branch
// and bound, returning the verified optimal design.
func Solve(inst Instance, opt Options) (*Result, error) {
	return core.SolveInstance(inst, opt)
}

// SolveContext is Solve under a context: cancelling ctx cooperatively
// stops the branch-and-bound search (down to the simplex pivot loop)
// and returns a Result with Cancelled set, carrying the best incumbent
// found so far when one exists.
func SolveContext(ctx context.Context, inst Instance, opt Options) (*Result, error) {
	return core.SolveInstanceContext(ctx, inst, opt)
}

// EstimateN runs the list-scheduling heuristic that upper-bounds the
// number of temporal segments (the paper's preprocessing step).
func EstimateN(inst Instance) (int, error) { return core.EstimateN(inst) }

// NewTracer returns a tracer emitting to sink; set it on
// Options.Trace to observe a solve (model shape, root bound, node
// progress, incumbents, terminal status).
func NewTracer(sink TraceSink) *Tracer { return trace.New(sink) }

// NewTraceWriter returns a sink encoding each event as one JSON line
// (NDJSON) on w — the format of the tpsyn/tptables -trace flag.
func NewTraceWriter(w io.Writer) TraceSink { return trace.NewWriterSink(w) }
