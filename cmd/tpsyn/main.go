// Command tpsyn runs optimal temporal partitioning and synthesis on a
// task-graph specification, reproducing the flow of Kaul & Vemuri
// (DATE 1998): estimate the number of segments, build the 0-1 ILP,
// solve it by branch and bound, and report the partitioned, scheduled
// and bound design.
//
// Usage:
//
//	tpgen -paper 1 | tpsyn -n 3 -l 1 -adders 2 -muls 2 -subs 1
//	tpsyn -graph spec.tg -device xc4025 -vhdl -sim
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/rpsim"
	"repro/internal/rtl"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	var (
		path     = flag.String("graph", "-", "specification file (- for stdin)")
		n        = flag.Int("n", 0, "number of temporal segments (0 = estimate)")
		l        = flag.Int("l", 0, "latency relaxation over the ALAP bound")
		adders   = flag.Int("adders", 2, "adders in the exploration set")
		muls     = flag.Int("muls", 2, "multipliers in the exploration set")
		subs     = flag.Int("subs", 1, "subtracters in the exploration set")
		device   = flag.String("device", "xc4010", "target device: xc4010 or xc4025")
		capacity = flag.Int("capacity", 0, "override device FG capacity")
		mem      = flag.Int("mem", -1, "override scratch memory size")
		alpha    = flag.Float64("alpha", 0, "override logic-optimization factor")
		lin      = flag.String("lin", "glover", "linearization: glover or fortet")
		branch   = flag.String("branch", "paper", "branching: paper, first or most")
		loose    = flag.Bool("untightened", false, "drop the tightening cuts (28)-(30),(32)")
		perProd  = flag.Bool("wperproduct", false, "exact per-product w linearization (eqs. 4-5)")
		timeout  = flag.Duration("timeout", 60*time.Second, "solver time limit (matches the tpserve default)")
		parallel = flag.Int("parallel", 0, "branch-and-bound workers (0 or 1 = serial)")
		mode     = flag.String("search-mode", "auto", "parallel search mode: auto, serial, steal or portfolio")
		cuts     = flag.String("cuts", "auto", "root cut strengthening (Gomory + cover): auto, on or off")
		dive     = flag.String("dive", "auto", "root diving heuristic for an early incumbent: auto, on or off")
		traceOut = flag.String("trace", "", "stream solver events as NDJSON to this file (- for stderr)")
		record   = flag.String("record", "", "capture the search tree as a flight recording to this file for cmd/tpreplay (gzipped when the name ends in .gz)")
		certify  = flag.Bool("certify", false, "re-verify the verdict in exact rational arithmetic and print the certificate summary (exit 3 on a failed certificate)")
		vhdl     = flag.Bool("vhdl", false, "emit per-segment RTL netlists")
		sim      = flag.Bool("sim", false, "simulate the solution on the device model")
		vcd      = flag.String("vcd", "", "write a VCD waveform of the simulated execution to this file")
		svg      = flag.String("svg", "", "write a Gantt chart of the schedule to this SVG file")
		mps      = flag.String("mps", "", "dump the generated ILP in MPS format to this file")
		lpOut    = flag.String("lp", "", "dump the generated ILP in CPLEX LP format to this file")
		jsonOut  = flag.Bool("json", false, "print the solution as JSON")
		quiet    = flag.Bool("q", false, "suppress the schedule report")
	)
	flag.Parse()

	g, err := readGraph(*path)
	fail(err)

	alloc, err := library.PaperAllocation(library.DefaultLibrary(), *adders, *muls, *subs)
	fail(err)

	dev := library.XC4010()
	if *device == "xc4025" {
		dev = library.XC4025()
	} else if *device != "xc4010" {
		fail(fmt.Errorf("unknown device %q", *device))
	}
	if *capacity > 0 {
		dev.CapacityFG = *capacity
	}
	if *mem >= 0 {
		dev.ScratchMem = *mem
	}
	if *alpha > 0 {
		dev.Alpha = *alpha
	}

	opt := core.Options{
		N:           *n,
		L:           *l,
		Tightened:   !*loose,
		WPerProduct: *perProd,
		TimeLimit:   *timeout,
		Parallelism: *parallel,
		Certify:     *certify,
	}
	opt.Linearization, err = core.ParseLinearization(*lin)
	fail(err)
	opt.Branch, err = core.ParseBranchRule(*branch)
	fail(err)
	search := core.SearchOptions{}
	search.Mode, err = core.ParseSearchMode(*mode)
	fail(err)
	search.Cuts, err = core.ParseToggle(*cuts)
	fail(err)
	search.Dive, err = core.ParseToggle(*dive)
	fail(err)
	if search != (core.SearchOptions{}) {
		opt.Search = &search
	}
	if *traceOut != "" {
		var w io.Writer = os.Stderr
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			fail(err)
			defer f.Close()
			w = f
		}
		opt.Trace = trace.New(trace.NewWriterSink(w))
	}
	if *record != "" {
		opt.Record = trace.NewRecorder(0)
		opt.Record.SetLabel(g.Name)
	}

	inst := core.Instance{Graph: g, Alloc: alloc, Device: dev}
	m, err := core.Build(inst, opt)
	fail(err)
	st := m.Stats()
	fmt.Printf("model: %d variables, %d constraints (%d nonzeros), N=%d, L=%d\n",
		st.Vars, st.Rows, st.NNZ, m.N, opt.L)

	if *mps != "" {
		f, err := os.Create(*mps)
		fail(err)
		fail(m.P.WriteMPS(f, g.Name))
		fail(f.Close())
		fmt.Printf("mps: model written to %s\n", *mps)
	}
	if *lpOut != "" {
		f, err := os.Create(*lpOut)
		fail(err)
		fail(m.P.WriteLP(f, g.Name))
		fail(f.Close())
		fmt.Printf("lp: model written to %s\n", *lpOut)
	}

	res, err := m.SolveContext(context.Background())
	fail(err)
	fmt.Printf("solve: %d nodes, %d LP pivots, %v\n", res.Nodes, res.LPIterations, res.Runtime.Round(time.Millisecond))
	if res.SearchMode != "" && res.SearchMode != "serial" || res.CutsApplied > 0 {
		fmt.Printf("search: mode=%s", res.SearchMode)
		if res.Steals > 0 {
			fmt.Printf(", %d steals", res.Steals)
		}
		if res.CutsApplied > 0 {
			fmt.Printf(", %d root cuts", res.CutsApplied)
		}
		if res.TimeToFirstIncumbent > 0 {
			fmt.Printf(", first incumbent @%d nodes/%v",
				res.FirstIncumbentNodes, res.TimeToFirstIncumbent.Round(time.Millisecond))
		}
		fmt.Println()
	}
	if *record != "" {
		// written before the infeasible exit below: a recording of a
		// failed search is exactly what tpreplay is for
		f, err := os.Create(*record)
		fail(err)
		fail(opt.Record.Snapshot().Encode(f, strings.HasSuffix(*record, ".gz")))
		fail(f.Close())
		fmt.Printf("record: search recording written to %s\n", *record)
	}
	if *certify {
		// printed (and exit-coded) before the infeasible exit below:
		// an infeasibility verdict is exactly what needs certifying
		cert := res.Certificate
		if cert == nil {
			fmt.Println("certify: no certificate — the outcome carried nothing certifiable")
		} else {
			fmt.Printf("certify: %s\n", cert.Summary())
			for _, ch := range cert.Checks {
				mark := "ok"
				if !ch.OK {
					mark = "FAIL"
				}
				fmt.Printf("certify:   %-24s %-4s %s\n", ch.Name, mark, ch.Detail)
			}
			if !cert.Valid {
				fmt.Fprintln(os.Stderr, "tpsyn: certificate INVALID — the solver's verdict failed exact re-verification")
				os.Exit(3)
			}
		}
	}
	if !res.Feasible {
		if res.Optimal {
			fmt.Println("result: infeasible — relax -l or increase -n")
		} else {
			fmt.Println("result: no solution found within the time limit")
		}
		os.Exit(2)
	}
	if !res.Optimal {
		fmt.Println("result: feasible (time limit hit before the optimality proof)")
	}
	sol := res.Solution
	fmt.Printf("result: comm cost %d, %d/%d segments used\n", sol.Comm, sol.UsedPartitions(), sol.N)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fail(enc.Encode(sol))
	} else if !*quiet {
		fmt.Print(sol.Report(g, alloc))
	}
	if *sim {
		_, tm, err := rpsim.Run(g, alloc, dev, sol, nil)
		fail(err)
		fmt.Printf("sim: %d segments, %d cycles @ %.0f ns, %d stored / %d restored units, peak mem %d\n",
			tm.Segments, tm.Cycles, tm.ClockNS, tm.StoredUnits, tm.RestoredUnits, tm.PeakMemory)
		fmt.Printf("sim: compute %.1f us + reconfig %.1f us + transfer %.1f us = %.1f us\n",
			tm.ComputeNS/1e3, tm.ReconfigNS/1e3, tm.TransferNS/1e3, tm.TotalNS()/1e3)
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		fail(err)
		fail(viz.WriteSVG(f, g, alloc, sol))
		fail(f.Close())
		fmt.Printf("svg: schedule chart written to %s\n", *svg)
	}
	if *vcd != "" {
		f, err := os.Create(*vcd)
		fail(err)
		fail(rpsim.WriteVCD(f, g, alloc, dev, sol, nil))
		fail(f.Close())
		fmt.Printf("vcd: waveform written to %s\n", *vcd)
	}
	if *vhdl {
		nets, err := rtl.BuildAll(g, alloc, sol)
		fail(err)
		for _, nl := range nets {
			fmt.Printf("\n-- segment %d: %d FG, %d registers, %d mux inputs\n",
				nl.Segment, nl.FG, len(nl.Registers), nl.MuxInputs())
			fmt.Print(nl.VHDL())
		}
	}
}

func readGraph(path string) (*graph.Graph, error) {
	if path == "-" {
		return graph.Parse(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Parse(f)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpsyn:", strings.TrimPrefix(err.Error(), "core: "))
		os.Exit(1)
	}
}
