// Command tptables regenerates the paper's evaluation tables and the
// ablation studies on the seeded benchmark graphs.
//
// Usage:
//
//	tptables                 # every table
//	tptables -table 3        # just Table 3
//	tptables -timeout 30s    # tighter per-row budget
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
)

func main() {
	var (
		table   = flag.String("table", "", "table to run: 1, 2, 3, 4, lin, branching, tighten (empty = all)")
		timeout = flag.Duration("timeout", experiments.DefaultTimeLimit, "per-row time limit")
	)
	flag.Parse()

	names := []string{*table}
	if *table == "" {
		names = names[:0]
		for n := range experiments.Tables {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		gen, ok := experiments.Tables[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "tptables: unknown table %q\n", name)
			os.Exit(1)
		}
		rows := gen()
		for i := range rows {
			rows[i].TimeLimit = *timeout
		}
		fmt.Printf("== table %s (device %s, per-row limit %v)\n", name, experiments.Device().Name, *timeout)
		if _, err := experiments.RunAll(rows, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tptables:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
