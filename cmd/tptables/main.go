// Command tptables regenerates the paper's evaluation tables and the
// ablation studies on the seeded benchmark graphs.
//
// Usage:
//
//	tptables                          # every table
//	tptables -table 3                 # just Table 3
//	tptables -timeout 30s             # tighter per-row budget
//	tptables -trace rows.ndjson       # stream solver events per row
//	tptables -benchmilp BENCH_milp.json  # serial-vs-parallel B&B suite
//	tptables -sweepbench BENCH_sweep.json  # warm-vs-cold α sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	var (
		table      = flag.String("table", "", "table to run: 1, 2, 3, 4, lin, branching, tighten (empty = all)")
		timeout    = flag.Duration("timeout", experiments.DefaultTimeLimit, "per-row time limit")
		benchmilp  = flag.String("benchmilp", "", "run the serial-vs-parallel branch-and-bound suite and write its JSON report to this file")
		sweepbench = flag.String("sweepbench", "", "run the warm-vs-cold design-space sweep benchmark and write its JSON report to this file")
		parallel   = flag.Int("parallel", 0, "worker count for -benchmilp (0 = GOMAXPROCS, min 2)")
		minSpeedup = flag.Float64("minspeedup", 0, "fail (exit 1) when any -benchmilp instance's speedup falls below this threshold (0 disables the check)")
		trajectory = flag.String("trajectory", "", "append a dated distillation of the -benchmilp or -sweepbench run to this JSON series (e.g. BENCH_trajectory.json)")
		traceOut   = flag.String("trace", "", "stream solver events of every row as NDJSON to this file (- for stderr)")
	)
	flag.Parse()

	if *benchmilp != "" {
		if err := runBenchMILP(*benchmilp, *trajectory, *parallel, *minSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "tptables:", err)
			os.Exit(1)
		}
		return
	}
	if *sweepbench != "" {
		if err := runSweepBench(*sweepbench, *trajectory); err != nil {
			fmt.Fprintln(os.Stderr, "tptables:", err)
			os.Exit(1)
		}
		return
	}
	if *trajectory != "" {
		fmt.Fprintln(os.Stderr, "tptables: -trajectory requires -benchmilp or -sweepbench")
		os.Exit(1)
	}

	var tr *trace.Tracer
	if *traceOut != "" {
		var w io.Writer = os.Stderr
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tptables:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		tr = trace.New(trace.NewWriterSink(w))
	}

	names := []string{*table}
	if *table == "" {
		names = names[:0]
		for n := range experiments.Tables {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		gen, ok := experiments.Tables[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "tptables: unknown table %q\n", name)
			os.Exit(1)
		}
		rows := gen()
		for i := range rows {
			rows[i].TimeLimit = *timeout
			rows[i].Opt.Trace = tr
		}
		fmt.Printf("== table %s (device %s, per-row limit %v)\n", name, experiments.Device().Name, *timeout)
		if _, err := experiments.RunAll(rows, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tptables:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// runBenchMILP runs the parallel branch-and-bound suite, prints a
// per-entry summary and writes the machine-readable report; with a
// trajectory path it also appends the dated distillation to the
// series. A positive minSpeedup turns the run into a regression gate:
// any instance below the threshold fails the command after the report
// is written, so CI keeps the artifact for diagnosis.
func runBenchMILP(path, trajectory string, parallel int, minSpeedup float64) error {
	rep, err := experiments.RunMILPBench(parallel)
	if err != nil {
		return err
	}
	fmt.Printf("== benchmilp (GOMAXPROCS=%d, parallelism=%d)\n", rep.GOMAXPROCS, rep.Parallelism)
	for _, e := range rep.Entries {
		engine := e.Serial.Engine
		if engine == "" {
			engine = "?"
		}
		fmt.Printf("%-14s serial %8v %4d nodes %6d pivots (%7.0f piv/s, %5.0f ns/piv, %s) | %s %8v %4d nodes %6d pivots, %d steals, %d cuts, 1st inc @%d nodes/%.0fms | comm %2d | speedup %.2fx\n",
			e.Name,
			time.Duration(e.Serial.NS).Round(time.Millisecond), e.Serial.Nodes, e.Serial.LPPivots,
			e.Serial.PivotsPerSec, e.Serial.NSPerPivot, engine,
			e.Parallel.Mode,
			time.Duration(e.Parallel.NS).Round(time.Millisecond), e.Parallel.Nodes, e.Parallel.LPPivots,
			e.Parallel.Steals, e.Parallel.Cuts, e.Parallel.FirstIncNodes, e.Parallel.FirstIncMS,
			e.Serial.Comm, e.Speedup)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("benchmilp: report written to %s\n", path)
	if trajectory != "" {
		date := time.Now().Format("2006-01-02")
		if err := experiments.AppendTrajectory(trajectory, date, rep); err != nil {
			return err
		}
		fmt.Printf("benchmilp: trajectory entry for %s appended to %s\n", date, trajectory)
	}
	if minSpeedup > 0 {
		var failed []string
		for _, e := range rep.Entries {
			if e.Speedup < minSpeedup {
				failed = append(failed, fmt.Sprintf("%s %.2fx", e.Name, e.Speedup))
			}
		}
		if len(failed) > 0 {
			return fmt.Errorf("speedup regression: %s below the %.2fx floor", strings.Join(failed, ", "), minSpeedup)
		}
		fmt.Printf("benchmilp: every instance at or above the %.2fx speedup floor\n", minSpeedup)
	}
	return nil
}

// runSweepBench runs the warm-vs-cold design-space sweep, prints the
// per-point dispatch and timings and writes the machine-readable
// report; with a trajectory path it also appends the dated
// distillation to the series.
func runSweepBench(path, trajectory string) error {
	rep, err := experiments.RunSweepBench()
	if err != nil {
		return err
	}
	fmt.Printf("== sweepbench (GOMAXPROCS=%d, graph %s, N=%d L=%d)\n", rep.GOMAXPROCS, rep.Graph, rep.N, rep.L)
	for _, p := range rep.Points {
		fmt.Printf("alpha %.2f  warm %8v (%s)  cold %8v  comm %2d\n",
			p.Alpha,
			time.Duration(p.WarmNS).Round(time.Millisecond), p.Path,
			time.Duration(p.ColdNS).Round(time.Millisecond), p.Comm)
	}
	fmt.Printf("total: warm %v vs cold %v — %.2fx (%d warm, %d reuse, %d cold)\n",
		time.Duration(rep.WarmNS).Round(time.Millisecond),
		time.Duration(rep.ColdNS).Round(time.Millisecond),
		rep.Speedup, rep.Warm, rep.Reuse, rep.Cold)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("sweepbench: report written to %s\n", path)
	if trajectory != "" {
		date := time.Now().Format("2006-01-02")
		if err := experiments.AppendSweepTrajectory(trajectory, date, rep); err != nil {
			return err
		}
		fmt.Printf("sweepbench: trajectory entry for %s appended to %s\n", date, trajectory)
	}
	return nil
}
