// Command tpserve exposes the temporal-partitioning solver as a JSON
// HTTP service: a bounded worker pool of branch-and-bound solvers with
// cooperative cancellation, request deduplication and an LRU over
// completed results.
//
// Endpoints (see service.NewHandler; the pre-versioning paths remain
// mounted as deprecated aliases):
//
//	POST   /v1/solve            synchronous solve (client disconnect cancels)
//	POST   /v1/jobs             asynchronous submit
//	GET    /v1/jobs/{id}        job status and result
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events live solver progress (Server-Sent Events)
//	GET    /v1/metrics          Prometheus text metrics
//	GET    /v1/stats            service metrics snapshot (JSON)
//	GET    /v1/healthz          liveness
//
// With -pprof, the standard net/http/pprof profiling handlers are
// mounted under /debug/pprof/ on the same listener.
//
// Usage:
//
//	tpserve -addr :8080 -workers 4 -timeout 60s -pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "queued-job limit (0 = default)")
		cache    = flag.Int("cache", 0, "result-cache entries (0 = default, -1 disables)")
		timeout  = flag.Duration("timeout", 60*time.Second, "default per-solve time limit")
		parallel = flag.Int("parallel", 0, "branch-and-bound workers per solve (0 = serial)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:            *workers,
		QueueLimit:         *queue,
		CacheSize:          *cache,
		DefaultTimeout:     *timeout,
		DefaultParallelism: *parallel,
	})

	handler := service.NewHandler(svc)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("tpserve: pprof enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("tpserve: listening on %s (%d workers, default timeout %s)",
		*addr, svc.Workers(), *timeout)

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Stop accepting connections, then drain the queue: give in-flight
	// solves a grace period before cancelling them cooperatively.
	log.Printf("tpserve: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		log.Printf("tpserve: http shutdown: %v", err)
	}
	if err := svc.Close(shctx); err != nil {
		log.Printf("tpserve: service drain: %v", err)
	}
}

func fail(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "tpserve:", err)
		os.Exit(1)
	}
}
