// Command tpserve exposes the temporal-partitioning solver as a JSON
// HTTP service: a bounded worker pool of branch-and-bound solvers with
// cooperative cancellation, request deduplication and an LRU over
// completed results.
//
// Endpoints:
//
//	POST   /solve      synchronous solve (client disconnect cancels)
//	POST   /jobs       asynchronous submit
//	GET    /jobs/{id}  job status and result
//	DELETE /jobs/{id}  cancel a queued or running job
//	GET    /metrics    service metrics snapshot
//	GET    /healthz    liveness
//
// Usage:
//
//	tpserve -addr :8080 -workers 4 -timeout 60s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "queued-job limit (0 = default)")
		cache    = flag.Int("cache", 0, "result-cache entries (0 = default, -1 disables)")
		timeout  = flag.Duration("timeout", 60*time.Second, "default per-solve time limit")
		parallel = flag.Int("parallel", 0, "branch-and-bound workers per solve (0 = serial)")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:            *workers,
		QueueLimit:         *queue,
		CacheSize:          *cache,
		DefaultTimeout:     *timeout,
		DefaultParallelism: *parallel,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("tpserve: listening on %s (%d workers, default timeout %s)",
		*addr, svc.Workers(), *timeout)

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Stop accepting connections, then drain the queue: give in-flight
	// solves a grace period before cancelling them cooperatively.
	log.Printf("tpserve: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		log.Printf("tpserve: http shutdown: %v", err)
	}
	if err := svc.Close(shctx); err != nil {
		log.Printf("tpserve: service drain: %v", err)
	}
}

func fail(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "tpserve:", err)
		os.Exit(1)
	}
}
