// Command tpserve exposes the temporal-partitioning solver as a JSON
// HTTP service: a bounded worker pool of branch-and-bound solvers with
// cooperative cancellation, request deduplication and an LRU over
// completed results.
//
// Endpoints (see service.NewHandler; the pre-versioning paths remain
// mounted as deprecated aliases):
//
//	POST   /v1/solve            synchronous solve (client disconnect cancels)
//	POST   /v1/jobs             asynchronous submit
//	POST   /v1/batch            submit up to -max-batch solves at once
//	                            (neighboring instances warm-chain)
//	GET    /v1/batch/{id}       batch status
//	GET    /v1/jobs/{id}        job status and result
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events live solver progress (Server-Sent Events)
//	GET    /v1/jobs/{id}/spans  span tree of the job (finished spans)
//	GET    /v1/jobs/{id}/blackbox
//	                            black-box anomaly capture / live tail
//	GET    /v1/debug/solves     live snapshot of every in-flight search
//	GET    /v1/version          build identity
//	GET    /v1/metrics          Prometheus text metrics
//	GET    /v1/stats            service metrics snapshot (JSON)
//	GET    /v1/healthz          liveness
//
// With -pprof, the standard net/http/pprof profiling handlers are
// mounted under /debug/pprof/ on the same listener. With -spans FILE,
// every finished span of every job is appended to FILE as NDJSON
// (tpreplay -spans pretty-prints it). With -blackbox DIR, each job
// whose black box flushes on an anomaly writes DIR/<job>.blackbox.json.
//
// Usage:
//
//	tpserve -addr :8080 -workers 4 -timeout 60s -stall-window 30s -pprof
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "queued-job limit (0 = default)")
		cache    = flag.Int("cache", 0, "result-cache entries (0 = default, -1 disables)")
		timeout  = flag.Duration("timeout", 60*time.Second, "default per-solve time limit")
		parallel = flag.Int("parallel", 0, "branch-and-bound workers per solve (0 = serial)")
		stall    = flag.Duration("stall-window", 0, "gap-stall watchdog window (0 disables)")
		spans    = flag.String("spans", "", "append finished spans to this NDJSON file")
		blackbox = flag.String("blackbox", "", "write black-box anomaly dumps into this directory")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		rate      = flag.Float64("rate", 0, "admitted submissions per second (token bucket; 0 disables)")
		burst     = flag.Int("burst", 0, "admission token-bucket depth (0 = ceil(rate))")
		maxBody   = flag.Int64("max-body", 0, "request-body byte cap (0 = 8 MiB default, -1 disables)")
		maxSweeps = flag.Int("max-sweeps", 0, "concurrent synchronous sweeps (0 = default 4, -1 disables)")
		maxBatch  = flag.Int("max-batch", 0, "items per POST /v1/batch (0 = default 64)")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:            *workers,
		QueueLimit:         *queue,
		CacheSize:          *cache,
		DefaultTimeout:     *timeout,
		DefaultParallelism: *parallel,
		StallWindow:        *stall,
		Admission:          service.Admission{Rate: *rate, Burst: *burst},
		MaxBodyBytes:       *maxBody,
		MaxSweeps:          *maxSweeps,
		MaxBatch:           *maxBatch,
	}
	if *spans != "" {
		f, err := os.OpenFile(*spans, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(fmt.Errorf("opening span sink: %w", err))
		}
		defer f.Close()
		var mu sync.Mutex
		enc := json.NewEncoder(f)
		cfg.SpanSink = func(rec trace.SpanRec) {
			mu.Lock()
			_ = enc.Encode(rec)
			mu.Unlock()
		}
		log.Printf("tpserve: streaming spans to %s", *spans)
	}
	if *blackbox != "" {
		if err := os.MkdirAll(*blackbox, 0o755); err != nil {
			fail(fmt.Errorf("creating blackbox dir: %w", err))
		}
		dir := *blackbox
		cfg.OnBlackBoxFlush = func(jobID string, d trace.BBDump) {
			path := filepath.Join(dir, jobID+".blackbox.json")
			data, err := json.MarshalIndent(d, "", "  ")
			if err == nil {
				err = os.WriteFile(path, data, 0o644)
			}
			if err != nil {
				log.Printf("tpserve: writing black box for %s: %v", jobID, err)
				return
			}
			log.Printf("tpserve: black box of %s flushed (%s) -> %s", jobID, d.Reason, path)
		}
		log.Printf("tpserve: black-box dumps to %s", dir)
	}

	svc := service.New(cfg)

	handler := service.NewHandler(svc)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("tpserve: pprof enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("tpserve: listening on %s (%d workers, default timeout %s)",
		*addr, svc.Workers(), *timeout)

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Stop accepting connections, then drain the queue: give in-flight
	// solves a grace period before cancelling them cooperatively.
	log.Printf("tpserve: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		log.Printf("tpserve: http shutdown: %v", err)
	}
	if err := svc.Close(shctx); err != nil {
		log.Printf("tpserve: service drain: %v", err)
	}
}

func fail(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "tpserve:", err)
		os.Exit(1)
	}
}
