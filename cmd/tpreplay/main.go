// Command tpreplay analyzes a search-tree flight recording captured by
// tpsyn -record or a tpserve record-mode job: where did the branch and
// bound spend its time, which nodes were expensive, and how did the
// bounds converge.
//
// Usage:
//
//	tpsyn -graph fir.tg -record fir.rec && tpreplay fir.rec
//	tpreplay -top 20 -dot tree.dot solve.rec.gz
//	curl -s localhost:8080/v1/jobs/j0000001/recording | tpreplay -
//	tpreplay -spans spans.ndjson
//	curl -s localhost:8080/v1/jobs/j0000001/blackbox | tpreplay -blackbox -
//
// The input is the NDJSON codec of internal/trace, plain or gzipped
// (auto-detected).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	var (
		topK    = flag.Int("top", 10, "how many slowest nodes to list")
		bounds  = flag.Int("bounds", 20, "how many bound-convergence rows to print (0 disables)")
		dotOut  = flag.String("dot", "", "export the search tree as a Graphviz DOT file")
		certify = flag.Bool("certify", false, "re-run the embedded exact certificate's checks offline and print them (exit 1 when absent, 3 when invalid)")
		spansIn = flag.String("spans", "", "pretty-print an NDJSON span file (tpserve -spans, GET .../spans) instead of a recording")
		bbIn    = flag.String("blackbox", "", "pretty-print a black-box dump (tpserve -blackbox, GET .../blackbox) instead of a recording")
	)
	flag.Parse()
	if *spansIn != "" || *bbIn != "" {
		if *spansIn != "" {
			fail(printSpanFile(*spansIn))
		}
		if *bbIn != "" {
			fail(printBlackBoxFile(*bbIn))
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tpreplay [flags] <recording> (- for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}

	rec, err := readRecording(flag.Arg(0))
	fail(err)

	printSummary(rec)
	printPhases(rec)
	printSlowest(rec, *topK)
	if *bounds > 0 {
		printBounds(rec, *bounds)
	}
	if *certify {
		certifyRecording(rec)
	}

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		fail(err)
		fail(viz.WriteSearchDOT(f, rec))
		fail(f.Close())
		fmt.Printf("\ndot: search tree written to %s\n", *dotOut)
	}
}

func readRecording(path string) (*trace.Recording, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.DecodeRecording(r)
}

// printSummary is the timeline header: what was solved, how it ended,
// and the recorded-vs-explored accounting.
func printSummary(rec *trace.Recording) {
	label := rec.Label
	if label == "" {
		label = "(unlabeled)"
	}
	fmt.Printf("recording: %s\n", label)
	if a := rec.Amend; a != nil {
		fmt.Printf("amend:     gen %d of job %s (class=%s path=%s)\n",
			a.Generation, a.Of, orUnknown(a.Class), orUnknown(a.Path))
	}
	fmt.Printf("status:    %s in %v\n", orUnknown(rec.Status), time.Duration(rec.WallNS).Round(time.Microsecond))
	fmt.Printf("search:    %d nodes explored, %d recorded", rec.TotalNodes, len(rec.Nodes))
	if rec.Dropped > 0 {
		fmt.Printf(" (%d beyond the recording limit)", rec.Dropped)
	}
	fmt.Printf(", %d LP pivots", rec.Pivots)
	if rec.WallNS > 0 && rec.Pivots > 0 {
		fmt.Printf(" (%.0f pivots/s)", float64(rec.Pivots)/(float64(rec.WallNS)/1e9))
	}
	fmt.Println()
	if rec.Mode != "" {
		fmt.Printf("mode:      %s", rec.Mode)
		if rec.Steals > 0 {
			fmt.Printf("; %d steals", rec.Steals)
		}
		fmt.Println()
	}
	if n := len(rec.Cuts); n > 0 {
		names := map[string]int{}
		for _, c := range rec.Cuts {
			kind := c.Name
			if i := strings.IndexByte(kind, '['); i > 0 {
				kind = kind[:i]
			}
			names[kind]++
		}
		fmt.Printf("cuts:      %d applied at the root (", n)
		first := true
		for _, kind := range []string{"gomory", "cover"} {
			if names[kind] == 0 {
				continue
			}
			if !first {
				fmt.Printf(", ")
			}
			fmt.Printf("%d %s", names[kind], kind)
			first = false
		}
		fmt.Println(")")
	}
	if lp := rec.LP; lp != nil && lp.Engine != "" {
		fmt.Printf("engine:    %s", lp.Engine)
		if lp.Factorizations > 0 {
			fmt.Printf("; %d factorizations", lp.Factorizations)
			if rec.Pivots > 0 {
				fmt.Printf(" (every %.0f pivots)", float64(rec.Pivots)/float64(lp.Factorizations))
			}
			if lp.BasisNNZ > 0 {
				fmt.Printf(", basis nnz %d, LU fill %.2fx", lp.BasisNNZ,
					float64(lp.FactorNNZ)/float64(lp.BasisNNZ))
			}
			fmt.Printf(", %d ftran / %d btran, eta nnz %d", lp.FTRANs, lp.BTRANs, lp.EtaNNZ)
		}
		fmt.Println()
	}
	if n := len(rec.Incumbents); n > 0 {
		first, last := rec.Incumbents[0], rec.Incumbents[n-1]
		fmt.Printf("incumbents: %d installed; first %g at %.1f ms, best %g at %.1f ms\n",
			n, first.Obj, first.TMS, last.Obj, last.TMS)
		if rec.FirstIncNS > 0 || rec.FirstIncNodes > 0 {
			where := "by the root dive, before the tree search"
			if rec.FirstIncNodes > 0 {
				where = fmt.Sprintf("after %d nodes", rec.FirstIncNodes)
			}
			fmt.Printf("first inc:  %s, %.1f ms in\n", where, float64(rec.FirstIncNS)/1e6)
		}
	} else {
		fmt.Println("incumbents: none installed")
	}
	workers := map[int32]int{}
	for _, n := range rec.Nodes {
		workers[n.Worker]++
	}
	if len(workers) > 1 {
		fmt.Printf("workers:   %d recorded across the tree\n", len(workers))
	}
}

// printPhases is the attribution table. Node-level phases are disjoint
// and sum to (approximately) the solve wall time — the coverage line
// states how much of the wall the taxonomy explains. LP-internal phases
// subdivide node-lp and are shown nested, as a share of their parent.
func printPhases(rec *trace.Recording) {
	if len(rec.Phases) == 0 {
		fmt.Println("\nphases: none recorded (profile not attached)")
		return
	}
	fmt.Println("\nphase attribution")
	fmt.Printf("  %-16s %10s %12s %8s\n", "phase", "count", "total", "share")

	var nodeNS, lpNS int64
	byName := map[string]trace.PhaseStat{}
	for _, ph := range rec.Phases {
		byName[ph.Name] = ph
		if p, ok := trace.ParsePhase(ph.Name); ok && p.NodeLevel() {
			nodeNS += ph.SumNS
		}
	}
	if nl, ok := byName[trace.PhaseNodeLP.String()]; ok {
		lpNS = nl.SumNS
	}

	nodeRow := func(p trace.Phase) {
		ph, ok := byName[p.String()]
		if !ok {
			return
		}
		fmt.Printf("  %-16s %10d %12v %7.1f%%\n",
			p.String(), ph.Count, time.Duration(ph.SumNS).Round(time.Microsecond), share(ph.SumNS, rec.WallNS))
	}
	nodeRow(trace.PhaseNodeLP)
	// LP-internal phases subdivide node-lp: nested, as a share of it.
	// Root-level (cut-gen, dive) and service-level (queue-wait) phases
	// overlap nothing and are printed as plain wall-share rows below.
	for p := trace.PhasePricing; p <= trace.PhaseFactorize; p++ {
		ph, ok := byName[p.String()]
		if !ok {
			continue
		}
		fmt.Printf("    %-14s %10d %12v %7.1f%% of node-lp\n",
			p.String(), ph.Count, time.Duration(ph.SumNS).Round(time.Microsecond), share(ph.SumNS, lpNS))
	}
	for p := trace.PhaseProbe; p <= trace.PhaseVerify; p++ {
		nodeRow(p)
	}
	for p := trace.PhaseCutGen; p < trace.NumPhases; p++ {
		nodeRow(p)
	}
	fmt.Printf("  coverage: node-level phases explain %.1f%% of the %v wall time\n",
		share(nodeNS, rec.WallNS), time.Duration(rec.WallNS).Round(time.Microsecond))
}

// printSlowest lists the top-k nodes by LP wall time.
func printSlowest(rec *trace.Recording, k int) {
	if k <= 0 || len(rec.Nodes) == 0 {
		return
	}
	nodes := make([]trace.NodeRec, len(rec.Nodes))
	copy(nodes, rec.Nodes)
	sort.Slice(nodes, func(a, b int) bool {
		if nodes[a].NS != nodes[b].NS {
			return nodes[a].NS > nodes[b].NS
		}
		return nodes[a].ID < nodes[b].ID
	})
	if k > len(nodes) {
		k = len(nodes)
	}
	fmt.Printf("\nslowest %d nodes\n", k)
	fmt.Printf("  %8s %6s %6s %-14s %12s %8s %10s\n", "node", "depth", "worker", "lp", "objective", "pivots", "time")
	for _, n := range nodes[:k] {
		obj := "-"
		if n.HasObj {
			obj = fmt.Sprintf("%.4g", n.Obj)
		}
		fmt.Printf("  %8d %6d %6d %-14s %12s %8d %10v\n",
			n.ID, n.Depth, n.Worker, orUnknown(n.LP), obj, n.Pivots,
			time.Duration(n.NS).Round(time.Microsecond))
	}
}

// printBounds is the convergence table: one row per change of the
// global proved bound or the incumbent, in exploration order, with the
// relative gap. Rows are thinned to the requested count, keeping the
// first and last.
func printBounds(rec *trace.Recording, limit int) {
	type row struct {
		tms        float64
		node       int64
		bound, inc float64
		hasB, hasI bool
	}
	var rows []row
	var (
		curB, curI   float64
		haveB, haveI bool
	)
	incAt := map[int64]float64{}
	for _, inc := range rec.Incumbents {
		incAt[inc.Node] = inc.Obj
	}
	for _, n := range rec.Nodes {
		changed := false
		if n.Best != 0 || n.HasObj { // Best is omitted while unset
			if !haveB || n.Best > curB {
				curB, haveB = n.Best, true
				changed = true
			}
		}
		if obj, ok := incAt[n.ID]; ok {
			if !haveI || obj < curI {
				curI, haveI = obj, true
				changed = true
			}
		} else if n.HasInc && (!haveI || n.Inc < curI) {
			curI, haveI = n.Inc, true
			changed = true
		}
		if changed {
			rows = append(rows, row{n.TMS, n.ID, curB, curI, haveB, haveI})
		}
	}
	if len(rows) == 0 {
		return
	}
	if len(rows) > limit {
		// keep the endpoints, sample the middle evenly
		kept := make([]row, 0, limit)
		for i := 0; i < limit; i++ {
			kept = append(kept, rows[i*(len(rows)-1)/(limit-1)])
		}
		rows = kept
	}
	fmt.Println("\nbound convergence")
	fmt.Printf("  %10s %8s %12s %12s %8s\n", "t", "node", "bound", "incumbent", "gap")
	for _, r := range rows {
		b, i, gap := "-", "-", "-"
		if r.hasB {
			b = fmt.Sprintf("%.4g", r.bound)
		}
		if r.hasI {
			i = fmt.Sprintf("%.4g", r.inc)
		}
		if r.hasB && r.hasI && r.inc != 0 {
			gap = fmt.Sprintf("%.2f%%", 100*(r.inc-r.bound)/r.inc)
		}
		fmt.Printf("  %8.1fms %8d %12s %12s %8s\n", r.tms, r.node, b, i, gap)
	}
}

// certifyRecording re-runs the recording's embedded exact certificate
// from scratch. Certificates are self-contained — a rational snapshot
// of the problem plus the witnesses — so the checks here recompute the
// attachment-time verdict with no access to the original model.
func certifyRecording(rec *trace.Recording) {
	cert := rec.Certificate
	if cert == nil {
		fail(fmt.Errorf("recording has no certificate: capture it with tpsyn -certify -record or a service job with options.certify+record"))
	}
	cert.Check() // re-verify offline; ignores the recorded verdict
	fmt.Printf("\ncertificate: %s\n", cert.Summary())
	fmt.Printf("  %-24s %-4s %s\n", "check", "ok", "detail")
	for _, ch := range cert.Checks {
		mark := "ok"
		if !ch.OK {
			mark = "FAIL"
		}
		fmt.Printf("  %-24s %-4s %s\n", ch.Name, mark, ch.Detail)
	}
	for _, tr := range cert.Trusted {
		fmt.Printf("  trusted: %s\n", tr)
	}
	if !cert.Valid {
		fmt.Fprintln(os.Stderr, "tpreplay: certificate INVALID — the recorded verdict failed exact re-verification")
		os.Exit(3)
	}
}

func share(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpreplay:", err)
		os.Exit(1)
	}
}
