package main

// Offline pretty-printers for the observability artifacts tpserve
// produces alongside recordings: NDJSON span files (-spans) and
// black-box anomaly dumps (-blackbox). Both read the exact wire forms
// of internal/trace — the span sink's SpanRec lines and the BBDump
// JSON of GET /v1/jobs/{id}/blackbox — so captures can be inspected
// long after the server is gone.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

func openArg(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// printSpanFile renders an NDJSON span stream as one indented tree per
// trace, children under parents in start order. The file may interleave
// spans of many traces (tpserve appends them as they finish).
func printSpanFile(path string) error {
	f, err := openArg(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var spans []trace.SpanRec
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec trace.SpanRec
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("parsing span line: %w", err)
		}
		// GET .../spans wraps the list in {"spans": [...]}; accept that
		// form too by detecting an object with no span id
		if rec.SpanID == "" {
			var wrapped struct {
				Spans []trace.SpanRec `json:"spans"`
			}
			if err := json.Unmarshal([]byte(line), &wrapped); err == nil && len(wrapped.Spans) > 0 {
				spans = append(spans, wrapped.Spans...)
				continue
			}
			return fmt.Errorf("span line has no span id: %s", line)
		}
		spans = append(spans, rec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans in %s", path)
	}

	byTrace := map[string][]trace.SpanRec{}
	var order []string
	for _, sp := range spans {
		if _, ok := byTrace[sp.TraceID]; !ok {
			order = append(order, sp.TraceID)
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	for i, id := range order {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("trace %s (%d spans)\n", id, len(byTrace[id]))
		printSpanTree(byTrace[id])
	}
	return nil
}

// printSpanTree prints one trace's spans as a tree. Spans whose parent
// is absent from the capture (still open, or from an upstream service)
// are roots.
func printSpanTree(spans []trace.SpanRec) {
	children := map[string][]trace.SpanRec{}
	ids := map[string]bool{}
	for _, sp := range spans {
		ids[sp.SpanID] = true
	}
	var roots []trace.SpanRec
	for _, sp := range spans {
		if sp.ParentID != "" && ids[sp.ParentID] {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []trace.SpanRec) {
		sort.Slice(s, func(a, b int) bool { return s[a].StartMS < s[b].StartMS })
	}
	byStart(roots)
	var walk func(sp trace.SpanRec, depth int)
	walk = func(sp trace.SpanRec, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Printf("  %s%-*s %9.2fms", indent, 24-2*depth, spanLabel(sp), sp.DurMS)
		if attrs := spanAttrs(sp); attrs != "" {
			fmt.Printf("  %s", attrs)
		}
		fmt.Println()
		kids := children[sp.SpanID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

func spanLabel(sp trace.SpanRec) string {
	if sp.Worker > 0 || sp.Name == "worker" {
		return fmt.Sprintf("%s[%d]", sp.Name, sp.Worker)
	}
	return sp.Name
}

// spanAttrs renders the span attributes compactly, string attributes
// first, numeric sorted by key.
func spanAttrs(sp trace.SpanRec) string {
	var parts []string
	for _, k := range sortedKeys(sp.Str) {
		parts = append(parts, fmt.Sprintf("%s=%s", k, sp.Str[k]))
	}
	for _, k := range sortedKeys(sp.Num) {
		parts = append(parts, fmt.Sprintf("%s=%g", k, sp.Num[k]))
	}
	return strings.Join(parts, " ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printBlackBoxFile renders a black-box dump: the flush verdict, then
// the retained event tail oldest-first — the last moments of the search
// before the anomaly.
func printBlackBoxFile(path string) error {
	f, err := openArg(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var d trace.BBDump
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return fmt.Errorf("parsing black-box dump: %w", err)
	}
	if d.Flushed {
		fmt.Printf("black box: FLUSHED (%s) at %.1f ms\n", d.Reason, d.FlushTMS)
	} else {
		fmt.Printf("black box: live tail (no anomaly)\n")
	}
	fmt.Printf("events:    %d retained of %d recorded\n", len(d.Events), d.Total)
	if len(d.Events) == 0 {
		return nil
	}
	fmt.Printf("  %10s %-10s %8s %6s %5s %12s %12s  %s\n",
		"t", "kind", "node", "worker", "depth", "bound", "incumbent", "detail")
	for _, e := range d.Events {
		bound, inc := "-", "-"
		if e.Bound != 0 {
			bound = fmt.Sprintf("%.4g", e.Bound)
		}
		if e.Incumbent != 0 {
			inc = fmt.Sprintf("%.4g", e.Incumbent)
		}
		detail := e.Msg
		if i := strings.IndexByte(detail, '\n'); i >= 0 {
			detail = detail[:i] + " ..." // panic stacks span pages
		}
		if detail == "" && e.Obj != 0 {
			detail = fmt.Sprintf("obj=%.4g", e.Obj)
		}
		fmt.Printf("  %8.1fms %-10s %8d %6d %5d %12s %12s  %s\n",
			e.TMS, e.Kind, e.Node, e.Worker, e.Depth, bound, inc, detail)
	}
	if d.Flushed {
		dur := time.Duration(d.FlushTMS * float64(time.Millisecond))
		fmt.Printf("flush:     %s after %v of search\n", d.Reason, dur.Round(time.Millisecond))
	}
	return nil
}
