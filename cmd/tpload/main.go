// Command tpload is the traffic harness for tpserve: a worker-pool
// load generator that reports client-observed throughput, latency
// percentiles, shed-rate and warm-hit accounting as one JSON document.
//
// Three modes:
//
//	-mode closed   W workers issue synchronous POST /v1/solve requests
//	               back to back (closed loop: a worker waits for its
//	               response before issuing the next). Every request is
//	               a distinct instance, so the pool solves real work;
//	               against a small -queue server the excess is shed and
//	               the 429 contract is validated on every rejection.
//	-mode open     requests fired at a fixed -rps as asynchronous
//	               POST /v1/jobs submissions regardless of completions
//	               (open loop), for probing admission behavior beyond
//	               the service's drain rate.
//	-mode compare  the batch/warm-chain benchmark: a neighboring-
//	               instance workload (one graph, a device-capacity
//	               ladder) is solved twice — individually cold, then as
//	               one POST /v1/batch warm chain — and the summed
//	               per-request solve times are compared. The speedup is
//	               the number the BENCH_trajectory.json series tracks.
//
// Every response is validated against the API contract: 2xx bodies
// must parse, 429s must carry a typed envelope code and a positive
// integral Retry-After. Violations count as malformed (a healthy
// server reports 0).
//
// Usage:
//
//	tpload -addr http://127.0.0.1:8080 -mode closed -requests 200 -workers 8
//	tpload -addr http://127.0.0.1:8080 -mode compare -requests 8 -trajectory BENCH_trajectory.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "tpserve base URL")
		mode       = flag.String("mode", "closed", "closed | open | compare")
		requests   = flag.Int("requests", 100, "total requests (closed/compare) ")
		workers    = flag.Int("workers", 8, "concurrent client workers (closed mode)")
		rps        = flag.Float64("rps", 50, "request rate (open mode)")
		duration   = flag.Duration("duration", 5*time.Second, "run length (open mode)")
		out        = flag.String("out", "", "also write the JSON report to this file")
		trajectory = flag.String("trajectory", "", "append a dated distillation to this JSON series (e.g. BENCH_trajectory.json)")
	)
	flag.Parse()

	c := &client{base: strings.TrimRight(*addr, "/"), hc: &http.Client{Timeout: 5 * time.Minute}}
	before, err := c.stats()
	if err != nil {
		fail(fmt.Errorf("reading /v1/stats (is tpserve up at %s?): %w", *addr, err))
	}

	var rep report
	switch *mode {
	case "closed":
		rep, err = runClosed(c, *requests, *workers)
	case "open":
		rep, err = runOpen(c, *rps, *duration)
	case "compare":
		rep, err = runCompare(c, *requests)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fail(err)
	}
	rep.Mode = *mode

	after, err := c.stats()
	if err != nil {
		fail(err)
	}
	rep.Warm = int(after.Delta.Warm - before.Delta.Warm)
	rep.Reuse = int(after.Delta.Reuse - before.Delta.Reuse)
	rep.Cold = int((after.Delta.Solves - before.Delta.Solves)) - rep.Warm - rep.Reuse

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	if *trajectory != "" {
		date := time.Now().Format("2006-01-02")
		load := experiments.LoadTrajectory{
			Mode: rep.Mode, Requests: rep.Requests, Workers: rep.Workers,
			RPS: rep.RPS, P50MS: rep.P50MS, P90MS: rep.P90MS, P99MS: rep.P99MS,
			Shed: rep.Shed, Malformed: rep.Malformed,
			Warm: rep.Warm, Reuse: rep.Reuse, Cold: rep.Cold,
			ColdMS: rep.ColdMS, BatchMS: rep.BatchMS, Speedup: rep.Speedup,
		}
		if err := experiments.AppendLoadTrajectory(*trajectory, date, runtime.GOMAXPROCS(0), load); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "tpload: trajectory entry for %s appended to %s\n", date, *trajectory)
	}
	if rep.Malformed > 0 {
		fail(fmt.Errorf("%d malformed responses", rep.Malformed))
	}
}

// report is the JSON document tpload emits.
type report struct {
	Mode       string  `json:"mode"`
	Requests   int     `json:"requests"`
	Workers    int     `json:"workers"`
	DurationMS float64 `json:"duration_ms"`
	RPS        float64 `json:"rps"`
	// latency percentiles over accepted requests (client round trip in
	// closed/open mode; per-job solve time in compare mode)
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`

	Accepted  int `json:"accepted"`
	Shed      int `json:"shed"`
	Malformed int `json:"malformed"`

	// server-side delta-path accounting over the run
	Warm  int `json:"warm"`
	Reuse int `json:"reuse"`
	Cold  int `json:"cold"`

	// compare mode: summed per-request solve time, individually cold vs
	// batch warm-chained, over the same neighboring-instance workload
	ColdMS  float64 `json:"cold_ms,omitempty"`
	BatchMS float64 `json:"batch_ms,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
}

type client struct {
	base string
	hc   *http.Client
}

func (c *client) stats() (service.Stats, error) {
	var st service.Stats
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/v1/stats: status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// post issues one JSON POST and classifies the response against the
// API contract. ok is true for wantStatus responses with a parsable
// body, shed for well-formed 429s; anything else is malformed.
func (c *client) post(path string, body []byte, wantStatus int, outp any) (ok, shed, malformed bool) {
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return false, false, true
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, false, true
	}
	switch resp.StatusCode {
	case wantStatus:
		if outp != nil && json.Unmarshal(data, outp) != nil {
			return false, false, true
		}
		return true, false, false
	case http.StatusTooManyRequests:
		// the load-shedding contract: typed envelope code + positive
		// integral Retry-After
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(data, &e) != nil || e.Error.Message == "" {
			return false, false, true
		}
		switch e.Error.Code {
		case "queue_full", "rate_limited", "sweep_limit":
		default:
			return false, false, true
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || secs < 1 {
			return false, false, true
		}
		return false, true, false
	default:
		return false, false, true
	}
}

// workload builds request i of a neighboring-instance family: one
// graph (renamed per family so separate runs and phases never share
// cache identity) on an ascending α ladder — the same neighboring-
// instance shape the design-space sweep scans, where each step
// tightens the capacity row and a warm chain pays off.
func workload(family string, i int) *service.Request {
	g := strings.Replace(benchmarks.Diffeq().String(), "graph diffeq", "graph "+family, 1)
	return &service.Request{
		Graph: g,
		Allocation: map[string]int{
			"add16": 1, "sub16": 1, "mul16": 2, "cmp16": 1,
		},
		Device:  service.DeviceSpec{Alpha: 0.55 + 0.05*float64(i%10)},
		Options: service.SolveOptions{Options: core.Options{N: 2, L: 2, Tightened: true, DisableProbe: true}},
	}
}

func runClosed(c *client, requests, workers int) (report, error) {
	if workers < 1 {
		workers = 1
	}
	var (
		mu        sync.Mutex
		latencies []float64
		accepted  int
		shed      int
		malformed int
	)
	start := time.Now()
	nonce := strconv.FormatInt(start.UnixNano(), 36)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < requests; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				// a distinct family name per request: every solve is real
				// work, no dedup
				body, err := json.Marshal(workload(fmt.Sprintf("load%s-%d", nonce, i), i))
				if err != nil {
					continue
				}
				t0 := time.Now()
				var info service.JobInfo
				ok, sh, bad := c.post("/v1/solve", body, http.StatusOK, &info)
				dt := time.Since(t0)
				mu.Lock()
				switch {
				case ok:
					accepted++
					latencies = append(latencies, float64(dt)/1e6)
				case sh:
					shed++
				case bad:
					malformed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep := report{
		Requests: requests, Workers: workers,
		DurationMS: float64(elapsed) / 1e6,
		RPS:        float64(requests) / elapsed.Seconds(),
		Accepted:   accepted, Shed: shed, Malformed: malformed,
	}
	rep.P50MS, rep.P90MS, rep.P99MS = percentiles(latencies)
	return rep, nil
}

func runOpen(c *client, rps float64, duration time.Duration) (report, error) {
	if rps <= 0 {
		return report{}, fmt.Errorf("open mode needs -rps > 0")
	}
	interval := time.Duration(float64(time.Second) / rps)
	var (
		mu        sync.Mutex
		latencies []float64
		accepted  int
		shed      int
		malformed int
		wg        sync.WaitGroup
	)
	start := time.Now()
	nonce := strconv.FormatInt(start.UnixNano(), 36)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	i := 0
	for time.Since(start) < duration {
		<-tick.C
		i++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(workload(fmt.Sprintf("open%s-%d", nonce, i), i))
			if err != nil {
				return
			}
			t0 := time.Now()
			var info service.JobInfo
			ok, sh, bad := c.post("/v1/jobs", body, http.StatusAccepted, &info)
			dt := time.Since(t0)
			mu.Lock()
			switch {
			case ok:
				accepted++
				latencies = append(latencies, float64(dt)/1e6)
			case sh:
				shed++
			case bad:
				malformed++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep := report{
		Requests: i, Workers: 1,
		DurationMS: float64(elapsed) / 1e6,
		RPS:        float64(i) / elapsed.Seconds(),
		Accepted:   accepted, Shed: shed, Malformed: malformed,
	}
	rep.P50MS, rep.P90MS, rep.P99MS = percentiles(latencies)
	return rep, nil
}

// runCompare solves one neighboring-instance workload twice: phase 1
// submits every instance individually (each solves cold — no batch, no
// shared lineage), phase 2 submits the same ladder under a fresh graph
// name as one batch, which the server chains through the delta engine
// in sweep order. The phases are renamed copies of one graph, so they
// are equally hard but share no cache identity; the comparison is the
// summed per-job solve time.
func runCompare(c *client, requests int) (report, error) {
	if requests < 2 {
		requests = 8
	}
	start := time.Now()
	// a per-run nonce in the family names: successive compare runs
	// against one server must not dedup against each other's cache
	nonce := strconv.FormatInt(start.UnixNano(), 36)

	// phase 1: individual cold submissions
	ids := make([]string, 0, requests)
	for i := 0; i < requests; i++ {
		body, err := json.Marshal(workload("loadcold"+nonce, i))
		if err != nil {
			return report{}, err
		}
		var info service.JobInfo
		ok, sh, _ := c.post("/v1/jobs", body, http.StatusAccepted, &info)
		if !ok {
			return report{}, fmt.Errorf("cold submission %d rejected (shed=%v); compare mode needs an uncontended server", i, sh)
		}
		ids = append(ids, info.ID)
	}
	var coldMS float64
	var latencies []float64
	for _, id := range ids {
		info, err := c.waitJob(id, 5*time.Minute)
		if err != nil {
			return report{}, err
		}
		if info.Status != "done" {
			return report{}, fmt.Errorf("cold job %s: %s (%s)", id, info.Status, info.Error)
		}
		coldMS += info.SolveMS
		latencies = append(latencies, info.SolveMS)
	}

	// phase 2: the same ladder as one batch warm chain
	items := make([]*service.Request, requests)
	for i := range items {
		items[i] = workload("loadbatch"+nonce, i)
	}
	body, err := json.Marshal(service.BatchRequest{Items: items})
	if err != nil {
		return report{}, err
	}
	var bi service.BatchInfo
	if ok, sh, _ := c.post("/v1/batch", body, http.StatusAccepted, &bi); !ok {
		return report{}, fmt.Errorf("batch submission rejected (shed=%v)", sh)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for !bi.Done {
		if time.Now().After(deadline) {
			return report{}, fmt.Errorf("batch %s never finished", bi.ID)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := c.hc.Get(c.base + "/v1/batch/" + bi.ID)
		if err != nil {
			return report{}, err
		}
		err = json.NewDecoder(resp.Body).Decode(&bi)
		resp.Body.Close()
		if err != nil {
			return report{}, err
		}
	}
	var batchMS float64
	for _, ji := range bi.Jobs {
		if ji.Status != "done" {
			return report{}, fmt.Errorf("batch job %s: %s (%s)", ji.ID, ji.Status, ji.Error)
		}
		batchMS += ji.SolveMS
		latencies = append(latencies, ji.SolveMS)
	}

	elapsed := time.Since(start)
	rep := report{
		Requests: 2 * requests, Workers: 1,
		DurationMS: float64(elapsed) / 1e6,
		RPS:        float64(2*requests) / elapsed.Seconds(),
		Accepted:   2 * requests,
		ColdMS:     coldMS,
		BatchMS:    batchMS,
	}
	if batchMS > 0 {
		rep.Speedup = coldMS / batchMS
	}
	rep.P50MS, rep.P90MS, rep.P99MS = percentiles(latencies)
	return rep, nil
}

func (c *client) waitJob(id string, timeout time.Duration) (service.JobInfo, error) {
	deadline := time.Now().Add(timeout)
	for {
		var info service.JobInfo
		resp, err := c.hc.Get(c.base + "/v1/jobs/" + id)
		if err != nil {
			return info, err
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			return info, err
		}
		if info.Status.Finished() {
			return info, nil
		}
		if time.Now().After(deadline) {
			return info, fmt.Errorf("job %s still %s after %v", id, info.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func percentiles(ms []float64) (p50, p90, p99 float64) {
	if len(ms) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tpload:", err)
	os.Exit(1)
}
