// Command tpgen generates random task-graph specifications in the
// textual format consumed by tpsyn.
//
// Usage:
//
//	tpgen -paper 1            # benchmark graph 1 of the evaluation
//	tpgen -tasks 8 -ops 30 -seed 7 -name mygraph
//
// The specification is written to stdout; use -dot for Graphviz
// output instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchmarks"
	"repro/internal/graph"
	"repro/internal/randgraph"
)

func main() {
	var (
		paper = flag.Int("paper", 0, "emit benchmark graph 1..6 (overrides other options)")
		bench = flag.String("bench", "", "emit a classic HLS kernel: ewf, fir16, diffeq or ar")
		tasks = flag.Int("tasks", 5, "number of tasks")
		ops   = flag.Int("ops", 20, "number of operations")
		seed  = flag.Int64("seed", 1, "random seed")
		name  = flag.String("name", "random", "graph name")
		tep   = flag.Float64("tep", 0, "task edge probability (0 = default)")
		oep   = flag.Float64("oep", 0, "op edge probability (0 = default)")
		maxBW = flag.Int("maxbw", 0, "max task-edge bandwidth (0 = default)")
		dot   = flag.Bool("dot", false, "emit Graphviz DOT instead of the spec format")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	if *bench != "" {
		build, ok := benchmarks.All()[*bench]
		if !ok {
			fmt.Fprintf(os.Stderr, "tpgen: unknown benchmark %q\n", *bench)
			os.Exit(1)
		}
		g = build()
	} else if *paper > 0 {
		g, err = randgraph.Paper(*paper)
	} else {
		g, err = randgraph.Generate(randgraph.Config{
			Name:         *name,
			Tasks:        *tasks,
			Ops:          *ops,
			TaskEdgeProb: *tep,
			OpEdgeProb:   *oep,
			MaxBandwidth: *maxBW,
		}, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpgen:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	if err := graph.Write(os.Stdout, g); err != nil {
		fmt.Fprintln(os.Stderr, "tpgen:", err)
		os.Exit(1)
	}
}
