// Serve: drive the temporal-partitioning solver through its HTTP
// service API.
//
// The example starts the solve service in-process on a loopback
// listener (exactly what `cmd/tpserve` does behind a real address),
// then acts as a client: it submits the HAL differential-equation
// benchmark as an asynchronous job, polls the job until the
// branch-and-bound finishes, submits the identical request again to
// show the result cache, and finally prints the service metrics.
//
// Run with: go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/service"
)

func main() {
	// 1. Start the service: a bounded worker pool of solvers behind the
	// JSON API. httptest gives us a loopback server; cmd/tpserve serves
	// the same handler on a real port.
	svc := service.New(service.Config{Workers: 2, DefaultTimeout: 30 * time.Second})
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()
	defer svc.Close(context.Background())
	fmt.Printf("service listening on %s\n\n", ts.URL)

	// 2. Build a request: the HAL differential-equation benchmark with
	// one adder, one subtracter, two multipliers and a comparator on the
	// XC4010, split over two segments with two steps of latency
	// relaxation.
	req := map[string]any{
		"graph": benchmarks.Diffeq().String(),
		"allocation": map[string]int{
			"add16": 1, "sub16": 1, "mul16": 2, "cmp16": 1,
		},
		"device": "xc4010",
		"options": map[string]any{
			"n":               2,
			"l":               2,
			"prime_heuristic": true,
		},
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Submit asynchronously and poll until done.
	var job service.JobInfo
	post(ts.URL+"/v1/jobs", body, &job)
	fmt.Printf("submitted job %s (status %s)\n", job.ID, job.Status)
	for !job.Status.Finished() {
		time.Sleep(50 * time.Millisecond)
		get(ts.URL+"/v1/jobs/"+job.ID, &job)
	}
	if job.Status != service.StatusDone {
		log.Fatalf("job %s ended %s: %s", job.ID, job.Status, job.Error)
	}
	r := job.Result
	fmt.Printf("job %s done in %.0f ms: comm=%d over %d segments (optimal=%v)\n",
		job.ID, job.SolveMS, r.Comm, r.N, r.Optimal)
	fmt.Printf("  model %d vars x %d rows, %d B&B nodes, %d LP pivots\n",
		r.Vars, r.Rows, r.Nodes, r.LPIterations)
	fmt.Printf("  task partition: %v\n\n", r.TaskPartition)

	// 4. The identical request again — served from the result cache, no
	// new branch-and-bound.
	var again service.JobInfo
	post(ts.URL+"/v1/solve", body, &again)
	fmt.Printf("same request again: cache_hit=%v, comm=%d\n\n",
		again.CacheHit, again.Result.Comm)

	// 5. Service metrics (the JSON snapshot; /v1/metrics serves the
	// same numbers in the Prometheus text format).
	var stats service.Stats
	get(ts.URL+"/v1/stats", &stats)
	fmt.Printf("metrics: %d submitted, %d completed, %d cache hits / %d misses\n",
		stats.Submitted, stats.Completed, stats.CacheHits, stats.CacheMisses)
	fmt.Printf("         %d B&B nodes, %d LP pivots total\n",
		stats.TotalNodes, stats.TotalLPIterations)
}

func post(url string, body []byte, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s %s: %s: %s", resp.Request.Method, resp.Request.URL.Path,
			e.Error.Code, e.Error.Message)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
