// Multicycle exploration: the paper notes (Section 3.3) that its
// formulation extends to multicycle and pipelined functional units and
// that — unlike Gebotys' model — it can mix two implementations of the
// same operation in one design. This example schedules a bank of
// multiplications three ways and lets the optimizer pick a
// heterogeneous multiplier mix.
//
// Run with: go run ./examples/multicycle
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
)

func kernel() *graph.Graph {
	g := graph.New("mulbank")
	t0 := g.AddTask("bank")
	// 4 independent products feeding a 2-level adder tree
	var prods [4]int
	for i := range prods {
		prods[i] = g.AddOp(t0, graph.OpMul, fmt.Sprintf("p%d", i))
	}
	s0 := g.AddOp(t0, graph.OpAdd, "s0")
	s1 := g.AddOp(t0, graph.OpAdd, "s1")
	sum := g.AddOp(t0, graph.OpAdd, "sum")
	g.AddOpEdge(prods[0], s0)
	g.AddOpEdge(prods[1], s0)
	g.AddOpEdge(prods[2], s1)
	g.AddOpEdge(prods[3], s1)
	g.AddOpEdge(s0, sum)
	g.AddOpEdge(s1, sum)
	return g
}

func solve(name string, counts map[string]int, l int) {
	g := kernel()
	lib := library.DefaultLibrary()
	alloc, err := library.NewAllocation(lib, counts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.SolveInstance(
		core.Instance{Graph: g, Alloc: alloc, Device: library.XC4025()},
		core.Options{N: 1, L: l, Multicycle: true, Tightened: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		fmt.Printf("%-28s L=%d: infeasible\n", name, l)
		return
	}
	span := 0
	for i := 0; i < g.NumOps(); i++ {
		end := res.Solution.OpStep[i] + alloc.Unit(res.Solution.OpUnit[i]).Type.Latency - 1
		if end > span {
			span = end
		}
	}
	fmt.Printf("%-28s L=%d: %d steps, FG area %d\n", name, l, span, res.Solution.SegmentFG(g, alloc, 1))
}

func main() {
	fmt.Println("4 muls + adder tree on one configuration, three multiplier choices:")
	// single-cycle array multipliers: fast but large
	solve("2x mul16 (1-cycle)", map[string]int{"mul16": 2, "add16": 1}, 2)
	// 2-cycle blocking multipliers: small but serialize
	solve("2x mul16x2 (2-cycle)", map[string]int{"mul16x2": 2, "add16": 1}, 4)
	// heterogeneous: one pipelined + one blocking — the exploration
	// Gebotys' formulation cannot express
	solve("mul16p + mul16x2 (mixed)", map[string]int{"mul16p": 1, "mul16x2": 1, "add16": 1}, 3)
}
