// RTL flow: lower an optimal temporal partition to per-segment
// register-transfer netlists — functional units, left-edge-allocated
// registers, input multiplexers and a step FSM — and emit structural
// VHDL. This is the downstream consumer of the register/bus modeling
// the paper's conclusion names as the formulation's natural extension.
//
// Run with: go run ./examples/rtlflow
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/rtl"
)

func main() {
	// cross-correlation kernel: window products, then a compare stage
	g := graph.New("xcorr")
	win := g.AddTask("window")
	p0 := g.AddOp(win, graph.OpMul, "p0")
	p1 := g.AddOp(win, graph.OpMul, "p1")
	s0 := g.AddOp(win, graph.OpAdd, "s0")
	g.AddOpEdge(p0, s0)
	g.AddOpEdge(p1, s0)

	det := g.AddTask("detect")
	d0 := g.AddOp(det, graph.OpSub, "d0")
	d1 := g.AddOp(det, graph.OpCmp, "d1")
	g.Connect(s0, d0, 1)
	g.AddOpEdge(d0, d1)

	alloc, err := library.NewAllocation(library.DefaultLibrary(), map[string]int{
		"mul16": 2, "add16": 1, "sub16": 1, "cmp16": 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	dev := library.Device{Name: "small", CapacityFG: 90, Alpha: 0.7, ScratchMem: 16}

	res, err := core.SolveInstance(
		core.Instance{Graph: g, Alloc: alloc, Device: dev},
		core.Options{N: 2, L: 2, Tightened: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		log.Fatal("infeasible")
	}
	fmt.Printf("partitioned into %d segments, comm cost %d\n\n",
		res.Solution.UsedPartitions(), res.Solution.Comm)

	nets, err := rtl.BuildAll(g, alloc, res.Solution)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range nets {
		fmt.Printf("== segment %d: %d FG, %d registers, %d mux inputs, %d steps\n",
			n.Segment, n.FG, len(n.Registers), n.MuxInputs(), n.Steps)
		fmt.Println(n.VHDL())
	}
}
