// DSP pipeline: a three-phase image-processing kernel — a 4-tap FIR
// filter, a butterfly transform stage, and a quantizer — that does NOT
// fit the FPGA in one configuration. The optimizer finds the temporal
// partition with the least data spilled to on-board memory, and the
// reconfigurable-processor simulator executes the result, checks it
// against direct evaluation, and reports the runtime breakdown
// (compute vs. reconfiguration vs. store/restore).
//
// Run with: go run ./examples/dsp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/rpsim"
)

func buildPipeline() *graph.Graph {
	g := graph.New("dsp")

	// Phase 1 — FIR: y = sum(c_i * x_i), 4 taps.
	fir := g.AddTask("fir")
	var taps [4]int
	for i := range taps {
		taps[i] = g.AddOp(fir, graph.OpMul, fmt.Sprintf("tap%d", i))
	}
	sum1 := g.AddOp(fir, graph.OpAdd, "sum1")
	sum2 := g.AddOp(fir, graph.OpAdd, "sum2")
	sum := g.AddOp(fir, graph.OpAdd, "sum")
	g.AddOpEdge(taps[0], sum1)
	g.AddOpEdge(taps[1], sum1)
	g.AddOpEdge(taps[2], sum2)
	g.AddOpEdge(taps[3], sum2)
	g.AddOpEdge(sum1, sum)
	g.AddOpEdge(sum2, sum)

	// Phase 2 — butterfly: (a+b, a-b) pairs over the filtered value.
	bfly := g.AddTask("butterfly")
	ap := g.AddOp(bfly, graph.OpAdd, "a+")
	am := g.AddOp(bfly, graph.OpSub, "a-")
	bp := g.AddOp(bfly, graph.OpAdd, "b+")
	bm := g.AddOp(bfly, graph.OpSub, "b-")
	g.Connect(sum, ap, 2)
	g.Connect(sum, am, 2)
	g.AddOpEdge(ap, bp)
	g.AddOpEdge(am, bm)

	// Phase 3 — quantizer: scale and threshold both branches.
	quant := g.AddTask("quant")
	q1 := g.AddOp(quant, graph.OpMul, "q1")
	q2 := g.AddOp(quant, graph.OpMul, "q2")
	c1 := g.AddOp(quant, graph.OpCmp, "c1")
	c2 := g.AddOp(quant, graph.OpCmp, "c2")
	g.Connect(bp, q1, 1)
	g.Connect(bm, q2, 1)
	g.AddOpEdge(q1, c1)
	g.AddOpEdge(q2, c2)

	return g
}

func main() {
	g := buildPipeline()
	lib := library.DefaultLibrary()
	alloc, err := library.NewAllocation(lib, map[string]int{
		"add16": 2, "sub16": 2, "mul16": 2, "cmp16": 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	dev := library.XC4010()
	fmt.Printf("exploration set %s: %d FG total, device %s holds %d FG (alpha %.1f)\n",
		alloc, alloc.TotalFG(), dev.Name, dev.CapacityFG, dev.Alpha)

	res, err := core.SolveInstance(
		core.Instance{Graph: g, Alloc: alloc, Device: dev},
		core.Options{N: 3, L: 2, Tightened: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		log.Fatal("infeasible")
	}
	fmt.Printf("optimal: comm cost %d, %d segments, %d B&B nodes, %v\n",
		res.Solution.Comm, res.Solution.UsedPartitions(), res.Nodes, res.Runtime)
	fmt.Print(res.Solution.Report(g, alloc))

	// Execute on the device model with concrete tap inputs and verify
	// the partitioned run against direct evaluation.
	inputs := map[int]int64{}
	for i := 0; i < g.NumOps(); i++ {
		if len(g.OpPred(i)) == 0 {
			inputs[i] = int64(3 + 2*i)
		}
	}
	want, err := rpsim.Direct(g, inputs)
	if err != nil {
		log.Fatal(err)
	}
	got, tm, err := rpsim.Run(g, alloc, dev, res.Solution, inputs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("op %d: partitioned run computed %d, direct %d", i, got[i], want[i])
		}
	}
	fmt.Println("simulation matches direct evaluation for all operations")
	fmt.Printf("runtime: %d cycles @ %.0f ns, %d units stored, %d restored, peak memory %d/%d\n",
		tm.Cycles, tm.ClockNS, tm.StoredUnits, tm.RestoredUnits, tm.PeakMemory, dev.ScratchMem)
	fmt.Printf("breakdown: compute %.2f us, reconfig %.2f ms, transfer %.2f us\n",
		tm.ComputeNS/1e3, tm.ReconfigNS/1e6, tm.TransferNS/1e3)
}
