// Quickstart: partition and synthesize a small behavioral
// specification for a reconfigurable FPGA.
//
// A specification is a task graph — tasks hold operations, edges carry
// the data that must be buffered in on-board memory if the two tasks
// end up in different configurations. The optimizer places every task
// in a temporal segment, schedules and binds every operation, and
// minimizes the total inter-segment traffic (the reconfiguration
// overhead proxy of Kaul & Vemuri, DATE 1998).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
)

func main() {
	// 1. Describe the behavior: three tasks in a pipeline.
	g := graph.New("quickstart")
	acquire := g.AddTask("acquire")
	process := g.AddTask("process")
	emit := g.AddTask("emit")

	// acquire: two parallel additions
	a1 := g.AddOp(acquire, graph.OpAdd, "a1")
	a2 := g.AddOp(acquire, graph.OpAdd, "a2")
	// process: multiply the partial sums, scale the product
	m1 := g.AddOp(process, graph.OpMul, "m1")
	m2 := g.AddOp(process, graph.OpMul, "m2")
	// emit: subtract a correction term
	s1 := g.AddOp(emit, graph.OpSub, "s1")

	g.Connect(a1, m1, 2) // two data units flow from acquire to process
	g.Connect(a2, m1, 2)
	g.AddOpEdge(m1, m2) // intra-task dependency
	g.Connect(m2, s1, 1)

	// 2. Pick the exploration set F and the target device.
	lib := library.DefaultLibrary()
	alloc, err := library.PaperAllocation(lib, 1, 1, 1) // 1 adder, 1 mul, 1 sub
	if err != nil {
		log.Fatal(err)
	}
	dev := library.XC4010()

	// 3. Solve: N=0 lets the list-scheduling heuristic pick the
	// number of segments; L relaxes the schedule length bound.
	res, err := core.SolveInstance(
		core.Instance{Graph: g, Alloc: alloc, Device: dev},
		core.Options{N: 0, L: 1, Tightened: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		log.Fatal("infeasible: increase L or the number of segments")
	}

	// 4. Inspect the optimal design.
	fmt.Printf("model size: %d variables, %d constraints\n", res.Stats.Vars, res.Stats.Rows)
	fmt.Printf("search: %d branch-and-bound nodes in %v\n", res.Nodes, res.Runtime)
	fmt.Print(res.Solution.Report(g, alloc))
}
