// Classic HLS benchmarks through the temporal partitioning flow: the
// elliptic wave filter, a 16-tap FIR, the HAL differential-equation
// solver and the AR lattice — the kernels the high-level-synthesis
// literature of the paper's era evaluated on. For each, the flow
// estimates the number of segments, optimizes, and reports the design.
//
// Run with: go run ./examples/hlsbench
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/sched"
)

func main() {
	lib := library.DefaultLibrary()
	dev := library.XC4010()
	names := make([]string, 0)
	all := benchmarks.All()
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-8s %5s %4s %3s | %6s %6s | %8s %5s %5s %9s\n",
		"kernel", "tasks", "ops", "CP", "Var", "Const", "feasible", "comm", "segs", "time")
	for _, name := range names {
		g := all[name]()
		w, err := sched.ComputeWindows(g, nil)
		if err != nil {
			log.Fatal(err)
		}
		alloc, err := library.NewAllocation(lib, map[string]int{
			"add16": 2, "sub16": 1, "mul16": 2, "cmp16": 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		// the estimated N is an upper bound for the *optimum*, not a
		// feasibility guarantee at tight L; widen N until feasible
		est, err := core.EstimateN(core.Instance{Graph: g, Alloc: alloc, Device: dev})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		var res *core.Result
		var m *core.Model
		for n := est; n <= est+2; n++ {
			m, err = core.Build(core.Instance{Graph: g, Alloc: alloc, Device: dev},
				core.Options{N: n, L: 2, Tightened: true, ExactSweep: true,
					TimeLimit: 60 * time.Second})
			if err != nil {
				log.Fatal(err)
			}
			if res, err = m.SolveContext(context.Background()); err != nil {
				log.Fatal(err)
			}
			if res.Feasible {
				break
			}
		}
		el := time.Since(start).Round(time.Millisecond)
		st := m.Stats()
		if !res.Feasible {
			fmt.Printf("%-8s %5d %4d %3d | %6d %6d | %8s %5s %5s %9v\n",
				name, g.NumTasks(), g.NumOps(), w.CriticalPath, st.Vars, st.Rows, "no", "-", "-", el)
			continue
		}
		fmt.Printf("%-8s %5d %4d %3d | %6d %6d | %8s %5d %5d %9v\n",
			name, g.NumTasks(), g.NumOps(), w.CriticalPath, st.Vars, st.Rows,
			"yes", res.Solution.Comm, res.Solution.UsedPartitions(), el)
	}
}
