// Design-space exploration: sweep the latency relaxation, segment
// count and functional-unit mix for one specification, and rank the
// feasible designs by modeled wall-clock time on the device (compute +
// reconfiguration + store/restore) — the trade-off Table 3 of the
// paper explores with the Var/Const/RunTime columns.
//
// Run with: go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/rpsim"
)

// kernel builds a two-phase arithmetic kernel: a multiply-heavy front
// end feeding an accumulate/normalize back end.
func kernel() *graph.Graph {
	g := graph.New("explore")
	front := g.AddTask("front")
	var prods [4]int
	for i := range prods {
		prods[i] = g.AddOp(front, graph.OpMul, fmt.Sprintf("p%d", i))
	}
	back := g.AddTask("back")
	acc1 := g.AddOp(back, graph.OpAdd, "acc1")
	acc2 := g.AddOp(back, graph.OpAdd, "acc2")
	acc := g.AddOp(back, graph.OpAdd, "acc")
	norm := g.AddOp(back, graph.OpSub, "norm")
	g.Connect(prods[0], acc1, 1)
	g.Connect(prods[1], acc1, 1)
	g.Connect(prods[2], acc2, 1)
	g.Connect(prods[3], acc2, 1)
	g.AddOpEdge(acc1, acc)
	g.AddOpEdge(acc2, acc)
	g.AddOpEdge(acc, norm)
	return g
}

type design struct {
	n, l, adders, muls, subs int
	comm, segments           int
	totalUS                  float64
	nodes                    int
}

func main() {
	g := kernel()
	lib := library.DefaultLibrary()
	dev := library.XC4010()

	var feasible []design
	fmt.Println(" N  L  A+M+S | feasible  comm  segs   runtime(model)")
	for _, fu := range [][3]int{{1, 1, 1}, {2, 2, 1}, {1, 2, 1}} {
		for n := 1; n <= 2; n++ {
			for l := 0; l <= 2; l++ {
				alloc, err := library.PaperAllocation(lib, fu[0], fu[1], fu[2])
				if err != nil {
					log.Fatal(err)
				}
				res, err := core.SolveInstance(
					core.Instance{Graph: g, Alloc: alloc, Device: dev},
					core.Options{N: n, L: l, Tightened: true, TimeLimit: 30 * time.Second},
				)
				if err != nil {
					log.Fatal(err)
				}
				if !res.Feasible {
					fmt.Printf(" %d  %d  %d+%d+%d |   no\n", n, l, fu[0], fu[1], fu[2])
					continue
				}
				_, tm, err := rpsim.Run(g, alloc, dev, res.Solution, nil)
				if err != nil {
					log.Fatal(err)
				}
				d := design{
					n: n, l: l, adders: fu[0], muls: fu[1], subs: fu[2],
					comm: res.Solution.Comm, segments: res.Solution.UsedPartitions(),
					totalUS: tm.TotalNS() / 1e3, nodes: res.Nodes,
				}
				feasible = append(feasible, d)
				fmt.Printf(" %d  %d  %d+%d+%d |  yes      %4d  %4d   %10.2f us\n",
					n, l, fu[0], fu[1], fu[2], d.comm, d.segments, d.totalUS)
			}
		}
	}
	if len(feasible) == 0 {
		log.Fatal("no feasible design found")
	}
	best := feasible[0]
	for _, d := range feasible[1:] {
		if d.totalUS < best.totalUS {
			best = d
		}
	}
	fmt.Printf("\nbest design: N=%d L=%d with %d+%d+%d -> %.2f us (%d segments, comm %d)\n",
		best.n, best.l, best.adders, best.muls, best.subs, best.totalUS, best.segments, best.comm)
}
