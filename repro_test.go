package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	g := repro.NewGraph("kernel")
	t0 := g.AddTask("phase0")
	t1 := g.AddTask("phase1")
	a := g.AddOp(t0, repro.OpAdd, "a")
	m := g.AddOp(t1, repro.OpMul, "m")
	g.Connect(a, m, 4)

	alloc, err := repro.PaperAllocation(repro.DefaultLibrary(), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Solve(
		repro.Instance{Graph: g, Alloc: alloc, Device: repro.XC4025()},
		repro.Options{N: 2, L: 1, Tightened: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Optimal {
		t.Fatalf("feasible=%v optimal=%v", res.Feasible, res.Optimal)
	}
	if res.Solution.Comm != 0 {
		t.Fatalf("comm = %d, want 0 on the roomy device", res.Solution.Comm)
	}
	rep := res.Solution.Report(g, alloc)
	if !strings.Contains(rep, "segment 1") {
		t.Fatalf("report: %s", rep)
	}
}

func TestFacadeParseAndEstimate(t *testing.T) {
	g, err := repro.ParseGraph(`
graph demo
task A
task B
op A a1 add
op B b1 mul
xdep a1 b1 3
`)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := repro.NewAllocation(repro.DefaultLibrary(), map[string]int{"add16": 1, "mul16": 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := repro.EstimateN(repro.Instance{Graph: g, Alloc: alloc, Device: repro.XC4010()})
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("EstimateN = %d", n)
	}
}

func TestFacadeConstants(t *testing.T) {
	if repro.LinGlover == repro.LinFortet {
		t.Fatal("linearization constants collide")
	}
	if repro.BranchPaper == repro.BranchFirstFrac || repro.BranchFirstFrac == repro.BranchMostFrac {
		t.Fatal("branch constants collide")
	}
}

// ExampleSolve demonstrates the minimal flow: build a two-task
// specification, pick an exploration set, optimize, and inspect.
func ExampleSolve() {
	g := repro.NewGraph("example")
	producer := g.AddTask("producer")
	consumer := g.AddTask("consumer")
	a := g.AddOp(producer, repro.OpAdd, "a")
	m := g.AddOp(consumer, repro.OpMul, "m")
	g.Connect(a, m, 3) // 3 data units cross a segment boundary

	alloc, _ := repro.PaperAllocation(repro.DefaultLibrary(), 1, 1, 0)
	// a device too small for adder + multiplier together forces a split
	dev := repro.Device{Name: "tiny", CapacityFG: 100, Alpha: 1.0, ScratchMem: 16}

	res, _ := repro.Solve(
		repro.Instance{Graph: g, Alloc: alloc, Device: dev},
		repro.Options{N: 2, L: 1, Tightened: true},
	)
	fmt.Printf("feasible=%v segments=%d comm=%d\n",
		res.Feasible, res.Solution.UsedPartitions(), res.Solution.Comm)
	// Output: feasible=true segments=2 comm=3
}

func TestFlowEndToEnd(t *testing.T) {
	g := repro.NewGraph("flow")
	t0 := g.AddTask("front")
	t1 := g.AddTask("back")
	a := g.AddOp(t0, repro.OpAdd, "a")
	b := g.AddOp(t0, repro.OpMul, "b")
	c := g.AddOp(t1, repro.OpMul, "c")
	g.AddOpEdge(a, b)
	g.Connect(b, c, 2)
	alloc, err := repro.PaperAllocation(repro.DefaultLibrary(), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// device fits adder+multiplier together comfortably: 1 segment
	fr, err := repro.Flow(
		repro.Instance{Graph: g, Alloc: alloc, Device: repro.XC4025()},
		repro.FlowOptions{Options: repro.Options{L: 2}, Inputs: map[int]int64{0: 5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Feasible || !fr.Optimal {
		t.Fatalf("feasible=%v optimal=%v", fr.Feasible, fr.Optimal)
	}
	if fr.Timing.Segments < 1 || len(fr.Netlists) != fr.Solution.UsedPartitions() {
		t.Fatalf("segments=%d netlists=%d", fr.Timing.Segments, len(fr.Netlists))
	}
	if fr.Values == nil {
		t.Fatal("no simulated values")
	}
}

func TestFlowWidensN(t *testing.T) {
	// single task set that cannot fit one configuration at the
	// estimated N: the diffeq-style shape from the benchmarks
	g := repro.NewGraph("widen")
	t0 := g.AddTask("muls")
	t1 := g.AddTask("adds")
	var last int = -1
	for i := 0; i < 4; i++ {
		m := g.AddOp(t0, repro.OpMul, "")
		if last >= 0 {
			g.AddOpEdge(last, m)
		}
		last = m
	}
	a := g.AddOp(t1, repro.OpAdd, "")
	g.Connect(last, a, 1)
	alloc, err := repro.NewAllocation(repro.DefaultLibrary(), map[string]int{"mul16": 1, "add16": 1})
	if err != nil {
		t.Fatal(err)
	}
	// device fits only one FU kind at a time -> needs 2 segments even
	// though the kind-estimate may say 2 already; exercise the loop
	dev := repro.Device{Name: "tiny", CapacityFG: 100, Alpha: 1.0, ScratchMem: 16}
	fr, err := repro.Flow(repro.Instance{Graph: g, Alloc: alloc, Device: dev},
		repro.FlowOptions{Options: repro.Options{L: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Solution.UsedPartitions() < 2 {
		t.Fatalf("used = %d, want >= 2", fr.Solution.UsedPartitions())
	}
}
