package rpsim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/partition"
	"repro/internal/randgraph"
)

// split fixture: t0 (add) -> t1 (mul) in separate segments.
func splitFixture(t *testing.T) (*graph.Graph, *library.Allocation, library.Device, *partition.Solution) {
	t.Helper()
	g := graph.New("s")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t0, graph.OpAdd, "")
	c := g.AddOp(t1, graph.OpMul, "")
	g.AddOpEdge(a, b)
	g.Connect(b, c, 3)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := library.XC4025()
	sol := &partition.Solution{
		N:             2,
		TaskPartition: []int{1, 2},
		OpStep:        []int{1, 2, 3},
		OpUnit:        []int{0, 0, 1},
		Comm:          3,
	}
	if err := partition.Verify(g, alloc, dev, sol, partition.VerifyOptions{L: 1}); err != nil {
		t.Fatal(err)
	}
	return g, alloc, dev, sol
}

func TestRunMatchesDirect(t *testing.T) {
	g, alloc, dev, sol := splitFixture(t)
	inputs := map[int]int64{0: 7}
	want, err := Direct(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, tm, err := Run(g, alloc, dev, sol, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumOps(); i++ {
		if got[i] != want[i] {
			t.Errorf("op %d: run=%d direct=%d", i, got[i], want[i])
		}
	}
	if tm.Segments != 2 {
		t.Errorf("segments = %d", tm.Segments)
	}
	if tm.StoredUnits != 3 || tm.RestoredUnits != 3 {
		t.Errorf("stored/restored = %d/%d, want 3/3", tm.StoredUnits, tm.RestoredUnits)
	}
	if tm.PeakMemory != 3 {
		t.Errorf("peak = %d, want 3", tm.PeakMemory)
	}
	if tm.ReconfigNS != dev.ReconfigNS {
		t.Errorf("reconfig = %v", tm.ReconfigNS)
	}
	if tm.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", tm.Cycles)
	}
	// clock is the slowest used FU (mul16 at 60ns)
	if tm.ClockNS != 60 {
		t.Errorf("clock = %v, want 60", tm.ClockNS)
	}
	if tm.TotalNS() <= tm.ReconfigNS {
		t.Error("total must include compute and transfers")
	}
}

func TestRunRejectsMemoryOverflow(t *testing.T) {
	g, alloc, dev, sol := splitFixture(t)
	dev.ScratchMem = 2 // edge weight 3 exceeds it
	if _, _, err := Run(g, alloc, dev, sol, nil); err == nil {
		t.Fatal("overflow accepted")
	}
}

func TestRunSingleSegmentNoOverhead(t *testing.T) {
	g, alloc, dev, sol := splitFixture(t)
	sol.TaskPartition = []int{1, 1}
	sol.Comm = 0
	_, tm, err := Run(g, alloc, dev, sol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tm.ReconfigNS != 0 || tm.StoredUnits != 0 || tm.TransferNS != 0 {
		t.Fatalf("single segment should have no overhead: %+v", tm)
	}
}

func TestEvalKinds(t *testing.T) {
	cases := []struct {
		kind graph.OpKind
		args []int64
		want int64
	}{
		{graph.OpAdd, []int64{3, 4}, 7},
		{graph.OpSub, []int64{9, 4}, 5},
		{graph.OpMul, []int64{3, 4}, 12},
		{graph.OpDiv, []int64{12, 4}, 3},
		{graph.OpDiv, []int64{12, 0}, 12},
		{graph.OpCmp, []int64{1, 2}, 1},
		{graph.OpCmp, []int64{2, 1}, 0},
		{graph.OpAnd, []int64{6, 3}, 2},
		{graph.OpOr, []int64{6, 3}, 7},
		{graph.OpShl, []int64{1, 3}, 8},
		{graph.OpSub, []int64{5}, -5},
		{graph.OpMul, []int64{5}, 25},
		{graph.OpAdd, nil, 1},
	}
	for _, c := range cases {
		if got := Eval(c.kind, c.args); got != c.want {
			t.Errorf("Eval(%s, %v) = %d, want %d", c.kind, c.args, got, c.want)
		}
	}
}

// Property: for random tiny instances solved by the optimizer, the
// simulated partitioned execution matches direct evaluation and stays
// within the modeled memory bound.
func TestPropertyRunMatchesDirectOnSolvedInstances(t *testing.T) {
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			return false
		}
		dev := library.Device{Name: "d", CapacityFG: 130, Alpha: 1.0, ScratchMem: 64}
		res, err := core.SolveInstance(
			core.Instance{Graph: g, Alloc: alloc, Device: dev},
			core.Options{N: 2, L: 1, Tightened: true})
		if err != nil || !res.Feasible {
			return err == nil // infeasible instances are fine
		}
		r := rand.New(rand.NewSource(seed))
		inputs := map[int]int64{}
		for i := 0; i < g.NumOps(); i++ {
			if len(g.OpPred(i)) == 0 {
				inputs[i] = int64(r.Intn(100) - 50)
			}
		}
		want, err := Direct(g, inputs)
		if err != nil {
			return false
		}
		got, tm, err := Run(g, alloc, dev, res.Solution, inputs)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return tm.PeakMemory <= dev.ScratchMem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteVCD(t *testing.T) {
	g, alloc, dev, sol := splitFixture(t)
	var sb strings.Builder
	if err := WriteVCD(&sb, g, alloc, dev, sol, map[int]int64{0: 7}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$enddefinitions $end",
		"add16_0_busy",
		"mul16_0_out",
		"reconfiguring",
		"#0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// reconfiguration between the two segments must appear as a pulse
	if !strings.Contains(out, "1\"") && !strings.Contains(out, "1"+string(rune('!'+1))) {
		t.Errorf("no reconfiguration pulse in VCD:\n%s", out[:min(len(out), 600)])
	}
	// timestamps strictly increase
	lastT := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			var v int64
			if _, err := fmt.Sscanf(line, "#%d", &v); err != nil {
				t.Fatalf("bad timestamp %q", line)
			}
			if v < lastT {
				t.Fatalf("timestamps not monotonic: %d after %d", v, lastT)
			}
			lastT = v
		}
	}
}

func TestWriteVCDPropagatesRunErrors(t *testing.T) {
	g, alloc, dev, sol := splitFixture(t)
	dev.ScratchMem = 1 // Run fails on memory overflow
	var sb strings.Builder
	if err := WriteVCD(&sb, g, alloc, dev, sol, nil); err == nil {
		t.Fatal("expected error")
	}
}
