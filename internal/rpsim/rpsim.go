// Package rpsim simulates the execution of a synthesized temporal
// partitioning solution on a reconfigurable processor: segments are
// configured one after another, live values crossing segment
// boundaries are stored to and restored from the on-board scratch
// memory, and the runtime model accounts reconfiguration and transfer
// overheads — the costs the paper's objective function (eq. 14) is a
// proxy for.
//
// The simulator executes real dataflow values, so tests can certify
// that a partitioned execution computes exactly what a direct
// evaluation of the specification computes.
package rpsim

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/partition"
)

// Eval defines the value semantics of operation kinds. Values are
// int64 with wrap-around arithmetic.
func Eval(kind graph.OpKind, args []int64) int64 {
	if len(args) == 0 {
		return 1 // source op: neutral seed, callers override via inputs
	}
	acc := args[0]
	for _, v := range args[1:] {
		switch kind {
		case graph.OpAdd:
			acc += v
		case graph.OpSub:
			acc -= v
		case graph.OpMul:
			acc *= v
		case graph.OpDiv:
			if v != 0 {
				acc /= v
			}
		case graph.OpCmp:
			if acc < v {
				acc = 1
			} else {
				acc = 0
			}
		case graph.OpAnd:
			acc &= v
		case graph.OpOr:
			acc |= v
		case graph.OpShl:
			acc <<= uint(v) & 7
		default:
			acc += v
		}
	}
	if len(args) == 1 {
		// unary application still transforms the value so bindings
		// matter in tests
		switch kind {
		case graph.OpSub:
			return -acc
		case graph.OpMul:
			return acc * acc
		}
	}
	return acc
}

// Direct evaluates the specification without partitioning: every op in
// topological order, inputs[i] overriding the value of source op i.
func Direct(g *graph.Graph, inputs map[int]int64) (map[int]int64, error) {
	order, err := g.TopoOps()
	if err != nil {
		return nil, err
	}
	val := make(map[int]int64, g.NumOps())
	for _, i := range order {
		preds := g.OpPred(i)
		if len(preds) == 0 {
			if v, ok := inputs[i]; ok {
				val[i] = v
			} else {
				val[i] = Eval(g.Op(i).Kind, nil)
			}
			continue
		}
		args := make([]int64, len(preds))
		for n, p := range preds {
			args[n] = val[p]
		}
		val[i] = Eval(g.Op(i).Kind, args)
	}
	return val, nil
}

// Timing is the runtime model of a simulated execution.
type Timing struct {
	// Segments is the number of segments actually executed.
	Segments int
	// Cycles is the total number of control steps executed.
	Cycles int
	// ClockNS is the derived clock period: the slowest FU delay used
	// anywhere in the design.
	ClockNS float64
	// StoredUnits counts data units written to scratch memory over
	// the whole run; RestoredUnits counts reads.
	StoredUnits, RestoredUnits int
	// PeakMemory is the largest number of data units simultaneously
	// live in scratch memory.
	PeakMemory int
	// ComputeNS, ReconfigNS and TransferNS split the total runtime.
	ComputeNS, ReconfigNS, TransferNS float64
}

// TotalNS is the modeled wall-clock time of the run.
func (t Timing) TotalNS() float64 { return t.ComputeNS + t.ReconfigNS + t.TransferNS }

// edgeWeight returns the data units carried from producer to consumer.
func edgeWeight(g *graph.Graph, from, to int) int {
	for _, e := range g.OpEdges() {
		if e.From == from && e.To == to {
			return e.Weight
		}
	}
	return 1
}

// Run simulates sol on the device, returning the computed values and
// the timing breakdown. It fails if the execution would read a value
// that is neither locally produced nor present in scratch memory, or
// if scratch occupancy ever exceeds the device capacity — an
// independent dynamic check of the store/restore story behind eq. (3).
func Run(g *graph.Graph, alloc *library.Allocation, dev library.Device, sol *partition.Solution, inputs map[int]int64) (map[int]int64, Timing, error) {
	var tm Timing
	val := make(map[int]int64, g.NumOps())

	// order segments; empty ones are skipped
	segOps := make(map[int][]int)
	for i := 0; i < g.NumOps(); i++ {
		p := sol.TaskPartition[g.Op(i).Task]
		segOps[p] = append(segOps[p], i)
	}
	var segs []int
	for p := range segOps {
		segs = append(segs, p)
	}
	sort.Ints(segs)

	// clock: slowest used FU
	for i := 0; i < g.NumOps(); i++ {
		if d := alloc.Unit(sol.OpUnit[i]).Type.DelayNS; d > tm.ClockNS {
			tm.ClockNS = d
		}
	}

	mem := map[int]int64{} // scratch: producer op -> value
	for n, p := range segs {
		ops := segOps[p]
		sort.Slice(ops, func(a, b int) bool { return sol.OpStep[ops[a]] < sol.OpStep[ops[b]] })
		if n > 0 {
			tm.ReconfigNS += dev.ReconfigNS
		}
		// execute in step order
		first, last := sol.OpStep[ops[0]], sol.OpStep[ops[0]]
		for _, i := range ops {
			if sol.OpStep[i] < first {
				first = sol.OpStep[i]
			}
			if sol.OpStep[i] > last {
				last = sol.OpStep[i]
			}
			preds := g.OpPred(i)
			if len(preds) == 0 {
				if v, ok := inputs[i]; ok {
					val[i] = v
				} else {
					val[i] = Eval(g.Op(i).Kind, nil)
				}
				continue
			}
			args := make([]int64, len(preds))
			for a, pr := range preds {
				prSeg := sol.TaskPartition[g.Op(pr).Task]
				switch {
				case prSeg == p:
					v, ok := val[pr]
					if !ok || sol.OpStep[pr] >= sol.OpStep[i] {
						return nil, tm, fmt.Errorf("rpsim: op %d reads op %d before it executes", i, pr)
					}
					args[a] = v
				default:
					v, ok := mem[pr]
					if !ok {
						return nil, tm, fmt.Errorf("rpsim: op %d (segment %d) needs op %d (segment %d) but scratch has no copy", i, p, pr, prSeg)
					}
					args[a] = v
					units := edgeWeight(g, pr, i)
					tm.RestoredUnits += units
					tm.TransferNS += float64(units) * dev.MemXferNSPerUnit
				}
			}
			val[i] = Eval(g.Op(i).Kind, args)
		}
		tm.Cycles += last - first + 1
		tm.Segments++
		// store values needed by later segments, drop dead ones.
		// Occupancy is accounted in data units (op-edge weights), the
		// same units as eq. (3), so the dynamic check mirrors the
		// static scratch-memory constraint.
		if n < len(segs)-1 {
			next := map[int]bool{}
			occupancy := 0
			for _, e := range g.OpEdges() {
				fromSeg := sol.TaskPartition[g.Op(e.From).Task]
				toSeg := sol.TaskPartition[g.Op(e.To).Task]
				if fromSeg <= p && toSeg > p {
					if _, stored := mem[e.From]; !stored {
						v, ok := val[e.From]
						if !ok {
							return nil, tm, fmt.Errorf("rpsim: value of op %d missing at store time", e.From)
						}
						mem[e.From] = v
					}
					if fromSeg == p {
						tm.StoredUnits += e.Weight
						tm.TransferNS += float64(e.Weight) * dev.MemXferNSPerUnit
					}
					next[e.From] = true
					occupancy += e.Weight
				}
			}
			for k := range mem {
				if !next[k] {
					delete(mem, k)
				}
			}
			if occupancy > tm.PeakMemory {
				tm.PeakMemory = occupancy
			}
			if occupancy > dev.ScratchMem {
				return nil, tm, fmt.Errorf("rpsim: scratch holds %d units > Ms=%d after segment %d", occupancy, dev.ScratchMem, p)
			}
		}
	}
	tm.ComputeNS = float64(tm.Cycles) * tm.ClockNS
	return val, tm, nil
}
