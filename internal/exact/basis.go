package exact

import (
	"fmt"
	"math/big"
)

// checkBasis certifies a terminal simplex basis exactly. The solver's
// working model is the bounded-variable form
//
//	[A | I] z = 0,  z = (x, g),  g_i in [-Hi_i, -Lo_i]
//
// with structural costs on x and zero cost on the logicals g. The
// certificate carries the basis rows (Basis, variable index per basic
// row) and the position of every variable (VarPos). From those alone
// this routine reconstructs the basic point and dual multipliers by
// rational Gaussian elimination and checks, with no tolerances:
//
//   - basis-shape: the basis is a well-formed, nonsingular m-subset
//   - basis-primal: the implied basic values respect their bounds
//   - basis-dual: reduced costs d = c - [A|I]^T y have the right sign
//     at every nonbasic position (>= 0 at lower, <= 0 at upper, = 0 free)
//   - basis-slackness: basic positions have exactly zero reduced cost
//
// Together these are exact primal feasibility, dual feasibility and
// complementary slackness — an optimality proof for the LP relaxation.
// Returns the exact LP objective on success, nil otherwise.
func (c *Certificate) checkBasis(p *parsed) *big.Rat {
	n, m := p.n, len(p.rows)
	ntot := n + m
	if len(c.Basis) != m || len(c.VarPos) != ntot {
		c.add("basis-shape", false,
			fmt.Sprintf("basis has %d rows / %d positions, problem needs %d / %d", len(c.Basis), len(c.VarPos), m, ntot))
		return nil
	}
	// posOf maps a basic variable to its basis row; also validates the
	// basis and VarPos agree.
	posOf := make([]int, ntot)
	for j := range posOf {
		posOf[j] = -1
	}
	for r, j := range c.Basis {
		if j < 0 || j >= ntot || posOf[j] >= 0 || c.VarPos[j] != PosBasic {
			c.add("basis-shape", false, fmt.Sprintf("basis row %d holds invalid or duplicate variable %d", r, j))
			return nil
		}
		posOf[j] = r
	}
	for j, vp := range c.VarPos {
		if vp == PosBasic && posOf[j] < 0 {
			c.add("basis-shape", false, fmt.Sprintf("variable %d marked basic but absent from the basis", j))
			return nil
		}
	}

	// extLo/extHi/extObj: bounds and costs in the extended ordering.
	extLo := func(j int) num {
		if j < n {
			return p.lo[j]
		}
		return negNum(p.rows[j-n].hi)
	}
	extHi := func(j int) num {
		if j < n {
			return p.hi[j]
		}
		return negNum(p.rows[j-n].lo)
	}
	extObj := func(j int) *big.Rat {
		if j < n {
			return p.obj[j]
		}
		return ratZero
	}

	// Nonbasic values by position; a nonbasic variable resting on an
	// infinite bound is malformed.
	zN := make([]*big.Rat, ntot)
	for j := 0; j < ntot; j++ {
		switch c.VarPos[j] {
		case PosBasic:
		case PosLower:
			b := extLo(j)
			if !b.finite() {
				c.add("basis-shape", false, fmt.Sprintf("variable %d nonbasic at an infinite lower bound", j))
				return nil
			}
			zN[j] = b.r
		case PosUpper:
			b := extHi(j)
			if !b.finite() {
				c.add("basis-shape", false, fmt.Sprintf("variable %d nonbasic at an infinite upper bound", j))
				return nil
			}
			zN[j] = b.r
		case PosFree:
			zN[j] = ratZero
		default:
			c.add("basis-shape", false, fmt.Sprintf("variable %d has unknown position %d", j, c.VarPos[j]))
			return nil
		}
	}

	// Dense basis matrix B (m x m) and right-hand side -N*zN, built
	// sparsely from the row data. Column r of B is column Basis[r] of
	// [A | I].
	B := newMat(m, m)
	rhs := make([]*big.Rat, m)
	for i := range rhs {
		rhs[i] = new(big.Rat)
	}
	term := new(big.Rat)
	for i, row := range p.rows {
		for k, j := range row.idx {
			if r := posOf[j]; r >= 0 {
				B[i][r].Add(B[i][r], row.val[k])
			} else if zN[j].Sign() != 0 {
				rhs[i].Sub(rhs[i], term.Mul(row.val[k], zN[j]))
			}
		}
		lj := n + i // logical of row i: unit column e_i
		if r := posOf[lj]; r >= 0 {
			B[i][r].Add(B[i][r], ratOne)
		} else if zN[lj].Sign() != 0 {
			rhs[i].Sub(rhs[i], zN[lj])
		}
	}

	zB, ok := solveLin(cloneMat(B), rhs)
	if !ok {
		c.add("basis-shape", false, "basis matrix is singular")
		return nil
	}
	c.add("basis-shape", true, fmt.Sprintf("nonsingular %dx%d basis", m, m))

	primalOK := true
	for r, j := range c.Basis {
		lo, hi := extLo(j), extHi(j)
		if (lo.finite() && zB[r].Cmp(lo.r) < 0) || (hi.finite() && zB[r].Cmp(hi.r) > 0) {
			c.add("basis-primal", false,
				fmt.Sprintf("basic variable %d = %s outside [%s, %s]", j, zB[r].RatString(), lo, hi))
			primalOK = false
			break
		}
	}
	if primalOK {
		c.add("basis-primal", true, "basic point within all bounds exactly")
	}

	// Duals: B^T y = c_B.
	cB := make([]*big.Rat, m)
	for r, j := range c.Basis {
		cB[r] = extObj(j)
	}
	y, ok := solveLin(transposeMat(B), cB)
	if !ok {
		c.add("basis-dual", false, "basis matrix is singular (transpose solve)")
		return nil
	}
	// Reduced costs d_j = c_j - y . col_j over the full extended
	// ordering, accumulated sparsely.
	d := make([]*big.Rat, ntot)
	for j := 0; j < ntot; j++ {
		d[j] = new(big.Rat).Set(extObj(j))
	}
	for i, row := range p.rows {
		if y[i].Sign() == 0 {
			continue
		}
		for k, j := range row.idx {
			d[j].Sub(d[j], term.Mul(y[i], row.val[k]))
		}
		d[n+i].Sub(d[n+i], y[i])
	}
	dualOK, slackOK := true, true
	for j := 0; j < ntot && (dualOK && slackOK); j++ {
		switch c.VarPos[j] {
		case PosBasic:
			if d[j].Sign() != 0 {
				c.add("basis-slackness", false,
					fmt.Sprintf("basic variable %d has nonzero reduced cost %s", j, d[j].RatString()))
				slackOK = false
			}
		case PosLower:
			if d[j].Sign() < 0 {
				if lo, hi := extLo(j), extHi(j); lo.finite() && hi.finite() && lo.r.Cmp(hi.r) == 0 {
					break // fixed variable: it cannot move, any sign is optimal
				}
				c.add("basis-dual", false,
					fmt.Sprintf("variable %d at lower bound has reduced cost %s < 0", j, d[j].RatString()))
				dualOK = false
			}
		case PosUpper:
			if d[j].Sign() > 0 {
				if lo, hi := extLo(j), extHi(j); lo.finite() && hi.finite() && lo.r.Cmp(hi.r) == 0 {
					break // fixed variable: it cannot move, any sign is optimal
				}
				c.add("basis-dual", false,
					fmt.Sprintf("variable %d at upper bound has reduced cost %s > 0", j, d[j].RatString()))
				dualOK = false
			}
		case PosFree:
			if d[j].Sign() != 0 {
				c.add("basis-dual", false,
					fmt.Sprintf("free variable %d has reduced cost %s != 0", j, d[j].RatString()))
				dualOK = false
			}
		}
	}
	if dualOK {
		c.add("basis-dual", true, "reduced-cost signs correct at every nonbasic position")
	}
	if slackOK {
		c.add("basis-slackness", true, "zero reduced cost at every basic position")
	}
	if !primalOK || !dualOK || !slackOK {
		return nil
	}

	// Exact LP objective of the certified point.
	obj := new(big.Rat)
	for r, j := range c.Basis {
		if j < n && p.obj[j].Sign() != 0 {
			obj.Add(obj, term.Mul(p.obj[j], zB[r]))
		}
	}
	for j := 0; j < n; j++ {
		if c.VarPos[j] != PosBasic && p.obj[j].Sign() != 0 && zN[j].Sign() != 0 {
			obj.Add(obj, term.Mul(p.obj[j], zN[j]))
		}
	}
	c.add("basis-objective", true, fmt.Sprintf("exact LP relaxation objective %s", obj.RatString()))
	return obj
}

var (
	ratZero = new(big.Rat)
	ratOne  = big.NewRat(1, 1)
)

func negNum(v num) num {
	if !v.finite() {
		return num{inf: -v.inf}
	}
	return num{r: new(big.Rat).Neg(v.r)}
}

// newMat allocates an r x c rational matrix of zeros.
func newMat(r, c int) [][]*big.Rat {
	m := make([][]*big.Rat, r)
	for i := range m {
		m[i] = make([]*big.Rat, c)
		for j := range m[i] {
			m[i][j] = new(big.Rat)
		}
	}
	return m
}

func cloneMat(a [][]*big.Rat) [][]*big.Rat {
	out := make([][]*big.Rat, len(a))
	for i, row := range a {
		out[i] = make([]*big.Rat, len(row))
		for j, v := range row {
			out[i][j] = new(big.Rat).Set(v)
		}
	}
	return out
}

func transposeMat(a [][]*big.Rat) [][]*big.Rat {
	if len(a) == 0 {
		return nil
	}
	out := newMat(len(a[0]), len(a))
	for i, row := range a {
		for j, v := range row {
			out[j][i].Set(v)
		}
	}
	return out
}

// solveLin solves the square system A x = b by rational Gaussian
// elimination with first-nonzero pivoting (exact arithmetic needs no
// stability pivoting, only a nonzero pivot). A and b are consumed as
// scratch. Returns nil, false when A is singular.
func solveLin(a [][]*big.Rat, b []*big.Rat) ([]*big.Rat, bool) {
	m := len(a)
	rhs := make([]*big.Rat, m)
	for i, v := range b {
		rhs[i] = new(big.Rat).Set(v)
	}
	factor := new(big.Rat)
	term := new(big.Rat)
	for col := 0; col < m; col++ {
		piv := -1
		for r := col; r < m; r++ {
			if a[r][col].Sign() != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		for r := col + 1; r < m; r++ {
			if a[r][col].Sign() == 0 {
				continue
			}
			factor.Quo(a[r][col], a[col][col])
			for k := col; k < m; k++ {
				if a[col][k].Sign() != 0 {
					a[r][k].Sub(a[r][k], term.Mul(factor, a[col][k]))
				}
			}
			rhs[r].Sub(rhs[r], term.Mul(factor, rhs[col]))
		}
	}
	x := make([]*big.Rat, m)
	for r := m - 1; r >= 0; r-- {
		acc := new(big.Rat).Set(rhs[r])
		for k := r + 1; k < m; k++ {
			if a[r][k].Sign() != 0 {
				acc.Sub(acc, term.Mul(a[r][k], x[k]))
			}
		}
		x[r] = acc.Quo(acc, a[r][r])
	}
	return x, true
}
