package exact_test

// Integration of the certification layer with the float simplex it
// audits: solve real LPs with internal/lp, snapshot them through the
// Source bridge, and prove the solver's verdicts in exact arithmetic —
// LP optimality from the terminal basis (primal/dual feasibility plus
// complementary slackness) and infeasibility from a captured Farkas
// ray. This is the certification contract of DESIGN.md exercised
// end-to-end at the LP layer.

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/lp"
)

// knapLP builds a small LP with an integral optimal vertex:
//
//	min  -x0 - 2*x1
//	s.t. x0 +   x1 <= 4
//	     x0 + 3*x1 <= 6
//	     0 <= x <= 10
//
// Optimum x = (3, 1), objective -5.
func knapLP(t *testing.T) *lp.Problem {
	t.Helper()
	p := &lp.Problem{}
	x0 := p.AddVar("x0", -1, 0, 10)
	x1 := p.AddVar("x1", -2, 0, 10)
	if err := p.AddLE("r0", []int{x0, x1}, []float64{1, 1}, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLE("r1", []int{x0, x1}, []float64{1, 3}, 6); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBasisCertifiesLPOptimality is ISSUE item (a): exact primal and
// dual feasibility plus complementary slackness on the returned basis
// prove the float solver's optimum, and the certified LP bound meets
// the certified incumbent objective — optimality, proved exactly.
func TestBasisCertifiesLPOptimality(t *testing.T) {
	p := knapLP(t)
	s, err := lp.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != lp.StatusOptimal {
		t.Fatalf("LP status %v", st)
	}
	c := &exact.Certificate{
		Version:   1,
		Kind:      exact.KindOptimal,
		Objective: exact.FloatString(s.Objective()),
		X:         exact.FloatVec(s.Solution()),
		DualY:     exact.FloatVec(s.Duals()),
		Basis:     s.BasisRows(),
		VarPos:    s.VarPositions(),
		Problem:   exact.Snapshot(p),
	}
	c.Check()
	if !c.Valid {
		t.Fatalf("basis certificate invalid: %v\n%+v", c.Err(), c.Checks)
	}
	if c.ExactObjective != "-5" {
		t.Errorf("ExactObjective = %q, want -5", c.ExactObjective)
	}
	if c.ExactBound != c.ExactObjective {
		t.Errorf("basis bound %q does not close the gap to %q", c.ExactBound, c.ExactObjective)
	}
	for _, name := range []string{"basis-primal", "basis-dual", "basis-slackness", "basis-objective"} {
		found := false
		for _, ch := range c.Checks {
			if ch.Name == name && ch.OK {
				found = true
			}
		}
		if !found {
			t.Errorf("missing passing check %s in %+v", name, c.Checks)
		}
	}
}

// TestBasisRejectsForeignPoint feeds the basis checks a basis from a
// DIFFERENT solve state: a corrupted VarPos must fail, not mislead.
func TestBasisRejectsForeignPoint(t *testing.T) {
	p := knapLP(t)
	s, err := lp.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != lp.StatusOptimal {
		t.Fatalf("LP status %v", st)
	}
	c := &exact.Certificate{
		Kind:      exact.KindOptimal,
		Objective: exact.FloatString(s.Objective()),
		X:         exact.FloatVec(s.Solution()),
		Basis:     s.BasisRows(),
		VarPos:    s.VarPositions(),
		Problem:   exact.Snapshot(p),
	}
	// flip a nonbasic variable's resting bound: the implied vertex moves
	for j, pos := range c.VarPos {
		if pos == exact.PosLower {
			c.VarPos[j] = exact.PosUpper
			break
		}
	}
	c.Check()
	if c.Valid {
		t.Fatal("corrupted basis snapshot validated")
	}
}

// TestFarkasCaptureCertifiesInfeasibility is ISSUE item (b): the
// solver's captured Farkas ray, replayed against the original row data
// in exact arithmetic, proves the infeasibility verdict.
func TestFarkasCaptureCertifiesInfeasibility(t *testing.T) {
	p := &lp.Problem{}
	x0 := p.AddVar("x0", 1, 0, 1)
	x1 := p.AddVar("x1", 1, 0, 1)
	if err := p.AddGE("need3", []int{x0, x1}, []float64{1, 1}, 3); err != nil {
		t.Fatal(err)
	}
	s, err := lp.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	s.CaptureFarkas = true
	if st := s.Solve(); st != lp.StatusInfeasible {
		t.Fatalf("LP status %v, want infeasible", st)
	}
	ray := s.FarkasRay()
	if ray == nil {
		t.Fatal("no Farkas ray captured")
	}
	c := &exact.Certificate{
		Kind:    exact.KindInfeasible,
		Search:  "farkas",
		FarkasY: exact.FloatVec(ray),
		Problem: exact.Snapshot(p),
	}
	c.Check()
	if !c.Valid {
		t.Fatalf("Farkas certificate invalid: %v\n%+v", c.Err(), c.Checks)
	}
}

// TestFarkasOffCapturesNothing: the default path must not retain rays.
func TestFarkasOffCapturesNothing(t *testing.T) {
	p := &lp.Problem{}
	x0 := p.AddVar("x0", 1, 0, 1)
	if err := p.AddGE("need2", []int{x0}, []float64{1}, 2); err != nil {
		t.Fatal(err)
	}
	s, err := lp.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != lp.StatusInfeasible {
		t.Fatalf("LP status %v, want infeasible", st)
	}
	if ray := s.FarkasRay(); ray != nil {
		t.Fatalf("Farkas ray captured with CaptureFarkas off: %v", ray)
	}
}

// TestSnapshotIsSource pins the structural bridge: *lp.Problem
// satisfies exact.Source and the snapshot is value-faithful.
func TestSnapshotIsSource(t *testing.T) {
	var src exact.Source = knapLP(t)
	snap := exact.Snapshot(src)
	if len(snap.Obj) != 2 || len(snap.Rows) != 2 {
		t.Fatalf("snapshot shape: %d vars, %d rows", len(snap.Obj), len(snap.Rows))
	}
	if snap.Obj[1] != "-2" || snap.Rows[1].Val[1] != "3" || snap.Rows[1].Hi != "6" {
		t.Errorf("snapshot values drifted: %+v", snap)
	}
	if snap.Rows[0].Lo != "-inf" {
		t.Errorf("unbounded row side = %q, want -inf", snap.Rows[0].Lo)
	}
}
