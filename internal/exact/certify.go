package exact

import (
	"fmt"
	"math/big"
)

// Certificate kinds: what the solver claims about the instance.
const (
	// KindOptimal claims the embedded incumbent is a proved optimum.
	KindOptimal = "optimal"
	// KindFeasible claims the incumbent is feasible (a limit stopped
	// the optimality proof).
	KindFeasible = "feasible"
	// KindInfeasible claims no integer-feasible solution exists (or
	// none better than InitialUpper when that is set).
	KindInfeasible = "infeasible"
)

// IntTol is the integrality snap tolerance of incumbent certification:
// components of a claimed-integral incumbent within IntTol of an
// integer are snapped to it before the exact evaluation, matching the
// MILP solver's own integrality tolerance. The snapped point — not the
// float one — is what the certificate proves feasible.
const IntTol = 1e-6

// BasisCertLimit is the largest row count for which the exact basis
// certification (rational Gaussian elimination, O(m^3) big.Rat work) is
// attached automatically. Beyond it the O(nnz) safe dual bound carries
// the certificate; benchmark-size models fall in that regime.
const BasisCertLimit = 150

// relTol is the reconciliation tolerance between a claimed float value
// and its exact recomputation when the objective is not declared
// integral: |exact - claimed| <= relTol * (1 + |exact|).
var relTol = big.NewRat(1, 1_000_000)

// Variable positions of a terminal basis snapshot, matching
// lp.Solver.VarPositions: index i of the VarPos slice describes
// variable i of the (structural ++ logical) ordering.
const (
	PosBasic int8 = iota
	PosLower
	PosUpper
	PosFree
)

// Check is one named exact verification step with its outcome.
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Certificate is a self-contained, re-checkable record of a solver
// verdict: the claim (Kind, Objective, Bound), the witnesses that
// support it, and a rational snapshot of the problem they are checked
// against. Check() recomputes every check from the embedded data only,
// so a decoded certificate re-verifies offline exactly as it did when
// it was attached.
//
// What is certified exactly and what is trusted is part of the
// contract (see DESIGN.md): incumbent feasibility/objective, the root
// dual bound, a root basis (when small enough) and Farkas infeasibility
// replays are exact; branch-and-bound pruning and upstream model
// transformations are trusted and listed in Trusted.
type Certificate struct {
	Version int    `json:"v"`
	Label   string `json:"label,omitempty"`
	Kind    string `json:"kind"`

	// The solver's claims, as exact rational strings: the incumbent
	// objective, the proved lower bound, and the priming upper bound
	// when the search was told only to beat a known solution.
	Objective    string `json:"objective,omitempty"`
	Bound        string `json:"bound,omitempty"`
	InitialUpper string `json:"initial_upper,omitempty"`
	// ObjIntegral declares every integer-feasible objective integral,
	// enabling exact ceil-rounding of dual bounds.
	ObjIntegral bool `json:"obj_integral,omitempty"`
	// Search states how much of the verdict rests on the search
	// itself: "farkas" (root infeasibility, exactly replayed) or
	// "exhausted" (tree exhausted; pruning trusted). Empty otherwise.
	Search string `json:"search,omitempty"`

	// Witnesses. X is the claimed incumbent (structural variables),
	// DualY the root-LP row duals behind the safe dual bound, FarkasY
	// the row multipliers of an infeasibility proof, Basis/VarPos the
	// terminal root basis for the exact LP certification.
	IntVars []int    `json:"int_vars,omitempty"`
	X       []string `json:"x,omitempty"`
	DualY   []string `json:"dual_y,omitempty"`
	FarkasY []string `json:"farkas_y,omitempty"`
	Basis   []int    `json:"basis,omitempty"`
	VarPos  []int8   `json:"var_pos,omitempty"`

	// Problem is the rational snapshot the checks evaluate against.
	Problem *Problem `json:"problem,omitempty"`

	// Trusted lists the claims the certificate does NOT verify and
	// relies on instead — the documented trust boundary.
	Trusted []string `json:"trusted,omitempty"`

	// Results of the last Check call.
	Checks         []Check `json:"checks,omitempty"`
	Valid          bool    `json:"valid"`
	ExactObjective string  `json:"exact_objective,omitempty"`
	ExactBound     string  `json:"exact_bound,omitempty"`
}

// add records a check outcome and returns ok for chaining.
func (c *Certificate) add(name string, ok bool, detail string) bool {
	c.Checks = append(c.Checks, Check{Name: name, OK: ok, Detail: detail})
	return ok
}

// Err returns nil when the certificate is valid, and the first failed
// check otherwise. Call Check first (attachment sites already have).
func (c *Certificate) Err() error {
	if c.Valid {
		return nil
	}
	for _, ch := range c.Checks {
		if !ch.OK {
			return fmt.Errorf("exact: check %s failed: %s", ch.Name, ch.Detail)
		}
	}
	return fmt.Errorf("exact: certificate not validated (no checks ran)")
}

// Summary is a one-line human-readable digest for logs and CLIs.
func (c *Certificate) Summary() string {
	state := "INVALID"
	if c.Valid {
		state = "valid"
	}
	passed := 0
	for _, ch := range c.Checks {
		if ch.OK {
			passed++
		}
	}
	s := fmt.Sprintf("%s %s certificate, %d/%d checks passed", state, c.Kind, passed, len(c.Checks))
	if c.ExactObjective != "" {
		s += ", objective " + c.ExactObjective
	}
	if c.ExactBound != "" {
		s += ", bound " + c.ExactBound
	}
	return s
}

// Check (re)runs every applicable exact verification from the embedded
// data only, filling Checks, ExactObjective, ExactBound and Valid. It
// is idempotent: re-running on a decoded certificate reproduces the
// attachment-time verdict.
func (c *Certificate) Check() {
	c.Checks = c.Checks[:0]
	c.Valid = false
	c.ExactObjective, c.ExactBound = "", ""
	if c.Problem == nil {
		c.add("problem", false, "no problem snapshot embedded")
		return
	}
	p, err := c.Problem.parse()
	if err != nil {
		c.add("problem", false, err.Error())
		return
	}
	c.add("problem", true, fmt.Sprintf("%d variables, %d rows", p.n, len(p.rows)))

	var xObj *big.Rat  // exact objective of the snapped incumbent
	var bound *big.Rat // best exactly-proved lower bound on the optimum
	if len(c.X) > 0 {
		xObj = c.checkIncumbent(p)
	}
	if len(c.Basis) > 0 {
		if lpObj := c.checkBasis(p); lpObj != nil {
			bound = c.roundBound(lpObj)
			// A fully verified basis (primal + dual feasibility +
			// slackness) pins the exact optimal point of the LP itself.
			// With no integrality constraints that point IS the
			// incumbent, so a pure-LP certificate may omit X — whose
			// float images of high-denominator vertex coordinates could
			// not be recovered exactly anyway — and let the basis
			// serve as the optimality witness.
			if xObj == nil && len(c.X) == 0 && len(c.IntVars) == 0 && c.Kind == KindOptimal {
				if c.reconcileObjective(lpObj) {
					xObj = lpObj
					c.ExactObjective = lpObj.RatString()
				}
			}
		}
	}
	if len(c.DualY) > 0 {
		if safe := c.checkDualBound(p); safe != nil {
			safe = c.roundBound(safe)
			if bound == nil || safe.Cmp(bound) > 0 {
				bound = safe
			}
		}
	}
	if bound != nil {
		c.ExactBound = bound.RatString()
		if xObj != nil {
			c.add("bound-vs-incumbent", bound.Cmp(xObj) <= 0,
				fmt.Sprintf("proved bound %s vs incumbent objective %s", bound.RatString(), xObj.RatString()))
		}
	}
	if c.Bound != "" && xObj != nil {
		// the claimed tree bound may exceed the exactly-proved root
		// bound (that gap is the trusted part), but it can never exceed
		// the incumbent objective — a solver claiming that has pruned
		// the true optimum away
		if claimed, err := parseNum(c.Bound); err == nil && claimed.finite() {
			c.add("claimed-bound-vs-incumbent", claimed.r.Cmp(xObj) <= 0,
				fmt.Sprintf("claimed bound %s vs incumbent objective %s", claimed.r.RatString(), xObj.RatString()))
		}
	}
	if len(c.FarkasY) > 0 {
		c.checkFarkas(p)
	}
	c.checkWitness(xObj, bound)

	c.Valid = len(c.Checks) > 1
	for _, ch := range c.Checks {
		if !ch.OK {
			c.Valid = false
		}
	}
}

// reconcileObjective checks the claimed Objective against an exactly
// proved basic-point objective, mirroring the incumbent-objective
// reconciliation: exact equality under ObjIntegral, relative tolerance
// otherwise (the claim is a float image of the exact value).
func (c *Certificate) reconcileObjective(obj *big.Rat) bool {
	if c.Objective == "" {
		return c.add("basis-incumbent", false, "no claimed objective to reconcile with the basic point")
	}
	claimed, err := parseNum(c.Objective)
	if err != nil || !claimed.finite() {
		return c.add("basis-incumbent", false, fmt.Sprintf("claimed objective %q is not a finite rational", c.Objective))
	}
	ok := withinRel(obj, claimed.r)
	if c.ObjIntegral {
		ok = obj.Cmp(claimed.r) == 0
	}
	return c.add("basis-incumbent", ok,
		fmt.Sprintf("basic point objective %s vs claimed %s", obj.RatString(), claimed.r.RatString()))
}

// roundBound applies the integral-objective rounding to a proved lower
// bound: with an integral objective, ceil(b) is still a valid bound.
func (c *Certificate) roundBound(b *big.Rat) *big.Rat {
	if c.ObjIntegral {
		return ceilRat(b)
	}
	return b
}

// checkWitness enforces that the certificate's kind is actually backed
// by the checks that ran — a certificate with a claim but no witness
// must not validate.
func (c *Certificate) checkWitness(xObj, bound *big.Rat) {
	switch c.Kind {
	case KindOptimal, KindFeasible:
		c.add("witness", xObj != nil, "claim of a feasible incumbent requires the exact incumbent checks")
	case KindInfeasible:
		switch {
		case len(c.FarkasY) > 0:
			c.add("witness", true, "infeasibility proved by exact Farkas replay")
		case c.Search == "exhausted" && bound != nil:
			c.add("witness", true, "search exhaustion trusted; root bound certified exactly")
		default:
			c.add("witness", false, "infeasibility claim carries neither a Farkas ray nor a certified exhausted search")
		}
	default:
		c.add("witness", false, fmt.Sprintf("unknown certificate kind %q", c.Kind))
	}
}

// checkIncumbent snaps the claimed incumbent to integrality and
// verifies it exactly: integrality of the declared integer variables,
// variable bounds, every row range, and the objective against the
// claim. Returns the exact objective on success, nil otherwise.
func (c *Certificate) checkIncumbent(p *parsed) *big.Rat {
	if len(c.X) != p.n {
		c.add("incumbent-shape", false, fmt.Sprintf("incumbent has %d entries, problem %d variables", len(c.X), p.n))
		return nil
	}
	xf := make([]float64, p.n)
	for j, s := range c.X {
		v, err := parseNum(s)
		if err != nil || !v.finite() {
			c.add("incumbent-shape", false, fmt.Sprintf("incumbent entry %d: %q", j, s))
			return nil
		}
		f, _ := v.r.Float64()
		xf[j] = f
	}
	// Snap: declared integer variables MUST be within IntTol of an
	// integer; every other near-integral component snaps too (the model
	// families certified here have fully integral feasible points, so
	// residual fractions on auxiliary variables are float drift, and
	// the exact checks below prove the snapped point — not the drifted
	// one — feasible).
	x := make([]*big.Rat, p.n)
	intOK := true
	worst := -1
	for j := range xf {
		var snapped bool
		x[j], snapped = snapRat(xf[j], IntTol)
		_ = snapped
	}
	for _, j := range c.IntVars {
		if j < 0 || j >= p.n {
			c.add("incumbent-integral", false, fmt.Sprintf("integer variable %d out of range", j))
			return nil
		}
		if !x[j].IsInt() {
			intOK, worst = false, j
		}
	}
	detail := fmt.Sprintf("%d integer variables within %g of integrality", len(c.IntVars), IntTol)
	if !intOK {
		detail = fmt.Sprintf("variable %d = %s is fractional beyond %g", worst, c.X[worst], IntTol)
	}
	if !c.add("incumbent-integral", intOK, detail) {
		return nil
	}

	ok := true
	for j := 0; j < p.n; j++ {
		if (p.lo[j].finite() && x[j].Cmp(p.lo[j].r) < 0) || (p.hi[j].finite() && x[j].Cmp(p.hi[j].r) > 0) {
			c.add("incumbent-bounds", false,
				fmt.Sprintf("variable %d = %s outside [%s, %s]", j, x[j].RatString(), p.lo[j], p.hi[j]))
			ok = false
			break
		}
	}
	if ok {
		c.add("incumbent-bounds", true, "every variable within its exact bounds")
	}

	rowsOK := true
	act := new(big.Rat)
	term := new(big.Rat)
	for i, r := range p.rows {
		act.SetInt64(0)
		for k, j := range r.idx {
			act.Add(act, term.Mul(r.val[k], x[j]))
		}
		if (r.lo.finite() && act.Cmp(r.lo.r) < 0) || (r.hi.finite() && act.Cmp(r.hi.r) > 0) {
			c.add("incumbent-rows", false,
				fmt.Sprintf("row %d activity %s outside [%s, %s]", i, act.RatString(), r.lo, r.hi))
			rowsOK = false
			break
		}
	}
	if rowsOK {
		c.add("incumbent-rows", true, fmt.Sprintf("all %d rows satisfied exactly", len(p.rows)))
	}
	if !ok || !rowsOK {
		return nil
	}

	obj := new(big.Rat)
	for j := 0; j < p.n; j++ {
		if p.obj[j].Sign() != 0 {
			obj.Add(obj, term.Mul(p.obj[j], x[j]))
		}
	}
	c.ExactObjective = obj.RatString()
	if c.Objective == "" {
		c.add("incumbent-objective", false, "no claimed objective to reconcile")
		return nil
	}
	claimed, err := parseNum(c.Objective)
	if err != nil || !claimed.finite() {
		c.add("incumbent-objective", false, fmt.Sprintf("claimed objective %q is not a finite rational", c.Objective))
		return nil
	}
	if c.ObjIntegral {
		if !c.add("incumbent-objective", obj.Cmp(claimed.r) == 0,
			fmt.Sprintf("exact objective %s vs claimed %s", obj.RatString(), claimed.r.RatString())) {
			return nil
		}
	} else if !c.add("incumbent-objective", withinRel(obj, claimed.r),
		fmt.Sprintf("exact objective %s vs claimed %s", obj.RatString(), claimed.r.RatString())) {
		return nil
	}
	return obj
}

// withinRel reports |a-b| <= relTol * (1 + |a|).
func withinRel(a, b *big.Rat) bool {
	diff := new(big.Rat).Sub(a, b)
	diff.Abs(diff)
	lim := new(big.Rat).Abs(a)
	lim.Add(lim, big.NewRat(1, 1))
	lim.Mul(lim, relTol)
	return diff.Cmp(lim) <= 0
}

// checkDualBound computes the safe Lagrangian dual bound from the
// embedded row multipliers. The bound
//
//	c·x >= sum_i min(y_i*Lo_i, y_i*Hi_i) + sum_j min(d_j*l_j, d_j*u_j)
//
// with d = c - A^T y holds for EVERY multiplier vector y, so float
// drift in y can only weaken the bound, never invalidate it. A
// multiplier whose row-range term is unbounded below is dropped
// (setting y_i = 0 is also a valid choice of y). Returns the exact
// bound, or nil when no finite bound results.
func (c *Certificate) checkDualBound(p *parsed) *big.Rat {
	y, err := parseVec(c.DualY)
	if err != nil || len(y) != len(p.rows) {
		c.add("dual-bound", false, fmt.Sprintf("bad dual vector: %d entries for %d rows", len(c.DualY), len(p.rows)))
		return nil
	}
	bound := new(big.Rat)
	d := make([]*big.Rat, p.n)
	for j := range d {
		d[j] = new(big.Rat).Set(p.obj[j])
	}
	term := new(big.Rat)
	for i, r := range p.rows {
		if y[i].Sign() == 0 {
			continue
		}
		rowTerm, ok := intervalMin(y[i], r.lo, r.hi)
		if !ok {
			continue // drop this multiplier: y_i = 0 is also valid
		}
		bound.Add(bound, rowTerm)
		for k, j := range r.idx {
			d[j].Sub(d[j], term.Mul(y[i], r.val[k]))
		}
	}
	for j := 0; j < p.n; j++ {
		if d[j].Sign() == 0 {
			continue
		}
		varTerm, ok := intervalMin(d[j], p.lo[j], p.hi[j])
		if !ok {
			c.add("dual-bound", false,
				fmt.Sprintf("variable %d has reduced cost %s over an unbounded range: no finite bound", j, d[j].RatString()))
			return nil
		}
		bound.Add(bound, varTerm)
	}
	c.add("dual-bound", true, fmt.Sprintf("exact safe dual bound %s", bound.RatString()))
	return bound
}

// intervalMin returns min over v in [lo, hi] of coef*v, and whether
// that minimum is finite.
func intervalMin(coef *big.Rat, lo, hi num) (*big.Rat, bool) {
	switch coef.Sign() {
	case 0:
		return new(big.Rat), true
	case 1:
		if !lo.finite() {
			return nil, false
		}
		return new(big.Rat).Mul(coef, lo.r), true
	default:
		if !hi.finite() {
			return nil, false
		}
		return new(big.Rat).Mul(coef, hi.r), true
	}
}

// intervalMax is the mirror of intervalMin.
func intervalMax(coef *big.Rat, lo, hi num) (*big.Rat, bool) {
	switch coef.Sign() {
	case 0:
		return new(big.Rat), true
	case 1:
		if !hi.finite() {
			return nil, false
		}
		return new(big.Rat).Mul(coef, hi.r), true
	default:
		if !lo.finite() {
			return nil, false
		}
		return new(big.Rat).Mul(coef, lo.r), true
	}
}

// checkFarkas replays an infeasibility certificate exactly: with
// w = y^T A, every point of the bound box has sum_j w_j x_j inside the
// interval [W1, W2] spanned by the box, while feasibility of the rows
// requires it inside [R1, R2] = sum_i y_i*[Lo_i, Hi_i]. Disjoint
// intervals — compared exactly, no tolerance — prove the instance
// infeasible. A drifted y merely fails to separate; it cannot prove a
// feasible instance infeasible.
func (c *Certificate) checkFarkas(p *parsed) bool {
	y, err := parseVec(c.FarkasY)
	if err != nil || len(y) != len(p.rows) {
		return c.add("farkas-replay", false,
			fmt.Sprintf("bad Farkas vector: %d entries for %d rows", len(c.FarkasY), len(p.rows)))
	}
	w := make([]*big.Rat, p.n)
	for j := range w {
		w[j] = new(big.Rat)
	}
	term := new(big.Rat)
	// R = sum_i y_i * [Lo_i, Hi_i], accumulated with infinity flags
	var r1, r2 extSum
	for i, r := range p.rows {
		if y[i].Sign() == 0 {
			continue
		}
		for k, j := range r.idx {
			w[j].Add(w[j], term.Mul(y[i], r.val[k]))
		}
		r1.addMin(y[i], r.lo, r.hi)
		r2.addMax(y[i], r.lo, r.hi)
	}
	// W = sum_j w_j * [l_j, u_j]
	var w1, w2 extSum
	for j := 0; j < p.n; j++ {
		if w[j].Sign() == 0 {
			continue
		}
		w1.addMin(w[j], p.lo[j], p.hi[j])
		w2.addMax(w[j], p.lo[j], p.hi[j])
	}
	// disjoint iff W2 < R1 or R2 < W1 (exactly)
	sep := w2.less(&r1) || r2.less(&w1)
	return c.add("farkas-replay", sep,
		fmt.Sprintf("row-range interval [%s, %s] vs box interval [%s, %s]", &r1, &r2, &w1, &w2))
}

// extSum accumulates a sum of interval endpoints that may be infinite.
type extSum struct {
	v   big.Rat
	inf int // -1 once any -inf term lands, +1 for +inf
}

func (e *extSum) addMin(coef *big.Rat, lo, hi num) {
	t, ok := intervalMin(coef, lo, hi)
	if !ok {
		e.inf = -1
		return
	}
	if e.inf == 0 {
		e.v.Add(&e.v, t)
	}
}

func (e *extSum) addMax(coef *big.Rat, lo, hi num) {
	t, ok := intervalMax(coef, lo, hi)
	if !ok {
		e.inf = 1
		return
	}
	if e.inf == 0 {
		e.v.Add(&e.v, t)
	}
}

// less reports e < o with infinity handling (an infinite endpoint can
// never separate).
func (e *extSum) less(o *extSum) bool {
	if e.inf != 0 || o.inf != 0 {
		return false
	}
	return e.v.Cmp(&o.v) < 0
}

func (e *extSum) String() string {
	switch e.inf {
	case 1:
		return "inf"
	case -1:
		return "-inf"
	}
	return e.v.RatString()
}
