package exact

import (
	"encoding/json"
	"math"
	"math/big"
	"testing"
)

func TestFloatString(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{3, "3"},
		{-3.5, "-7/2"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
	}
	for _, c := range cases {
		if got := FloatString(c.in); got != c.want {
			t.Errorf("FloatString(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	// 0.1 is not 1/10 in binary; the conversion must be exact, not pretty
	r, ok := new(big.Rat).SetString(FloatString(0.1))
	if !ok {
		t.Fatalf("FloatString(0.1) is not a rational: %q", FloatString(0.1))
	}
	f, exactConv := r.Float64()
	if f != 0.1 || !exactConv {
		t.Errorf("FloatString(0.1) round trip lost precision: %v", f)
	}
	// NaN renders but must fail parsing, so it surfaces as a failed check
	if _, err := parseNum(FloatString(math.NaN())); err == nil {
		t.Error("parseNum(FloatString(NaN)) should fail")
	}
}

func TestParseNum(t *testing.T) {
	for _, s := range []string{"inf", "+inf", "-inf", "3", "-7/2", "5"} {
		if _, err := parseNum(s); err != nil {
			t.Errorf("parseNum(%q) failed: %v", s, err)
		}
	}
	for _, s := range []string{"", "x", "1/0", "nan"} {
		if v, err := parseNum(s); err == nil && v.finite() && v.r == nil {
			t.Errorf("parseNum(%q) should fail or be well-formed", s)
		}
	}
	if v, _ := parseNum("inf"); v.finite() || v.inf != 1 {
		t.Error("inf parsed wrong")
	}
}

func TestCeilRat(t *testing.T) {
	cases := []struct{ in, want string }{
		{"3", "3"},
		{"7/2", "4"},
		{"-7/2", "-3"},
		{"-3", "-3"},
		{"1/10", "1"},
		{"-1/10", "0"},
	}
	for _, c := range cases {
		in, _ := new(big.Rat).SetString(c.in)
		if got := ceilRat(in).RatString(); got != c.want {
			t.Errorf("ceilRat(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSnapRat(t *testing.T) {
	if r, snapped := snapRat(2.9999999999, 1e-6); !snapped || r.RatString() != "3" {
		t.Errorf("snapRat near 3: got %s snapped=%v", r.RatString(), snapped)
	}
	if r, snapped := snapRat(2.5, 1e-6); snapped || r.RatString() != "5/2" {
		t.Errorf("snapRat(2.5): got %s snapped=%v", r.RatString(), snapped)
	}
}

// coverProblem is a tiny 0-1 covering model with a known optimum:
//
//	min  x0 + x1   s.t.  x0 + x1 >= 1,  x in [0,1]^2
//
// Optimum 1, e.g. x = (1, 0); the dual y = 1 proves the bound exactly.
func coverProblem() *Problem {
	return &Problem{
		Obj: []string{"1", "1"},
		Lo:  []string{"0", "0"},
		Hi:  []string{"1", "1"},
		Rows: []Row{
			{Idx: []int{0, 1}, Val: []string{"1", "1"}, Lo: "1", Hi: "inf"},
		},
	}
}

func coverCertificate() *Certificate {
	return &Certificate{
		Version:     1,
		Kind:        KindOptimal,
		Objective:   "1",
		Bound:       "1",
		ObjIntegral: true,
		IntVars:     []int{0, 1},
		X:           []string{"1", "0"},
		DualY:       []string{"1"},
		Problem:     coverProblem(),
	}
}

func TestCertificateOptimal(t *testing.T) {
	c := coverCertificate()
	c.Check()
	if !c.Valid {
		t.Fatalf("certificate should validate: %v\n%+v", c.Err(), c.Checks)
	}
	if c.ExactObjective != "1" {
		t.Errorf("ExactObjective = %q, want 1", c.ExactObjective)
	}
	if c.ExactBound != "1" {
		t.Errorf("ExactBound = %q, want 1", c.ExactBound)
	}
	if err := c.Err(); err != nil {
		t.Errorf("Err() on valid certificate: %v", err)
	}
	// idempotent: re-running must reproduce the verdict, not append
	n := len(c.Checks)
	c.Check()
	if !c.Valid || len(c.Checks) != n {
		t.Errorf("Check is not idempotent: valid=%v checks %d -> %d", c.Valid, n, len(c.Checks))
	}
}

// TestCertificateInjectedBug is the acceptance-criteria test: perturb
// the objective row of an otherwise-valid certificate and watch the
// exact re-verification catch the now-wrong verdict.
func TestCertificateInjectedBug(t *testing.T) {
	c := coverCertificate()
	c.Check()
	if !c.Valid {
		t.Fatalf("precondition: certificate must validate before the injection")
	}
	c.Problem.Obj[0] = "2" // injected bug: objective row perturbed
	c.Check()
	if c.Valid {
		t.Fatal("certificate validated against a perturbed objective row")
	}
	if err := c.Err(); err == nil {
		t.Error("Err() should surface the failed check")
	}
	found := false
	for _, ch := range c.Checks {
		if ch.Name == "incumbent-objective" && !ch.OK {
			found = true
		}
	}
	if !found {
		t.Errorf("expected incumbent-objective to fail, got %+v", c.Checks)
	}
}

func TestCertificateInjectedInfeasiblePoint(t *testing.T) {
	c := coverCertificate()
	c.X = []string{"0", "0"} // violates the covering row
	c.Check()
	if c.Valid {
		t.Fatal("certificate validated an infeasible incumbent")
	}
}

func TestCertificateFractionalIntVar(t *testing.T) {
	c := coverCertificate()
	c.X = []string{"1/2", "1/2"} // row feasible but fractional
	c.Check()
	if c.Valid {
		t.Fatal("certificate validated a fractional integer incumbent")
	}
}

func TestCertificateFarkas(t *testing.T) {
	// x in [0,1] with the row x >= 2: infeasible, y = 1 separates —
	// the row interval [2, inf] is disjoint from the box interval [0, 1].
	c := &Certificate{
		Kind:    KindInfeasible,
		Search:  "farkas",
		FarkasY: []string{"1"},
		Problem: &Problem{
			Obj:  []string{"0"},
			Lo:   []string{"0"},
			Hi:   []string{"1"},
			Rows: []Row{{Idx: []int{0}, Val: []string{"1"}, Lo: "2", Hi: "inf"}},
		},
	}
	c.Check()
	if !c.Valid {
		t.Fatalf("Farkas certificate should validate: %v", c.Err())
	}
	// a zero ray separates nothing: the replay must fail, not pass
	c.FarkasY = []string{"0"}
	c.Check()
	if c.Valid {
		t.Fatal("zero Farkas ray validated")
	}
}

func TestCertificateExhaustedInfeasible(t *testing.T) {
	// a priming upper bound of 0 with every objective >= 1: the tree is
	// exhausted and the certified root bound backs the claim
	c := &Certificate{
		Kind:         KindInfeasible,
		Search:       "exhausted",
		InitialUpper: "0",
		ObjIntegral:  true,
		DualY:        []string{"1"},
		Problem:      coverProblem(),
	}
	c.Check()
	if !c.Valid {
		t.Fatalf("exhausted-infeasible certificate should validate: %v", c.Err())
	}
	if c.ExactBound != "1" {
		t.Errorf("ExactBound = %q, want 1", c.ExactBound)
	}
}

func TestCertificateWitnessRules(t *testing.T) {
	// an optimality claim with no incumbent must not validate
	c := coverCertificate()
	c.X, c.IntVars, c.Objective = nil, nil, ""
	c.Check()
	if c.Valid {
		t.Fatal("optimal certificate with no incumbent validated")
	}
	// an infeasibility claim with neither Farkas ray nor exhaustion
	c = &Certificate{Kind: KindInfeasible, Problem: coverProblem()}
	c.Check()
	if c.Valid {
		t.Fatal("bare infeasibility claim validated")
	}
	// unknown kinds never validate
	c = coverCertificate()
	c.Kind = "lucky"
	c.Check()
	if c.Valid {
		t.Fatal("unknown certificate kind validated")
	}
	// no problem snapshot: nothing to check against
	c = coverCertificate()
	c.Problem = nil
	c.Check()
	if c.Valid {
		t.Fatal("certificate without problem snapshot validated")
	}
}

func TestCertificateClaimedBound(t *testing.T) {
	// a claimed tree bound above the incumbent objective means the
	// search pruned the true optimum away — the cross-check must fail
	c := coverCertificate()
	c.Bound = "2"
	c.Check()
	if c.Valid {
		t.Fatal("claimed bound above the incumbent objective validated")
	}
}

func TestCertificateJSONRoundTrip(t *testing.T) {
	c := coverCertificate()
	c.Label = "cover"
	c.Check()
	if !c.Valid {
		t.Fatalf("precondition: %v", c.Err())
	}
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Certificate
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back.Check() // offline re-verification from the decoded bytes alone
	if !back.Valid {
		t.Fatalf("decoded certificate failed re-verification: %v", back.Err())
	}
	if back.ExactObjective != c.ExactObjective || back.ExactBound != c.ExactBound {
		t.Errorf("round trip changed exact values: %q/%q vs %q/%q",
			back.ExactObjective, back.ExactBound, c.ExactObjective, c.ExactBound)
	}
	if back.Label != "cover" || back.Kind != KindOptimal {
		t.Errorf("round trip lost identity fields: %+v", back)
	}
}

func TestSummary(t *testing.T) {
	c := coverCertificate()
	c.Check()
	s := c.Summary()
	if s == "" || c.Summary() != s {
		t.Errorf("Summary unstable: %q", s)
	}
}

func TestDualBoundUnboundedVariable(t *testing.T) {
	// a reduced cost over an unbounded range yields no finite bound;
	// the dual-bound check must fail rather than fabricate one
	c := &Certificate{
		Kind:      KindFeasible,
		Objective: "0",
		X:         []string{"0"},
		DualY:     []string{"0"},
		Problem: &Problem{
			Obj:  []string{"1"},
			Lo:   []string{"-inf"},
			Hi:   []string{"inf"},
			Rows: []Row{{Idx: []int{0}, Val: []string{"1"}, Lo: "0", Hi: "inf"}},
		},
	}
	c.Check()
	if c.Valid {
		t.Fatal("certificate with an unbounded dual term validated")
	}
}

func TestProblemParseErrors(t *testing.T) {
	bad := []*Problem{
		{Obj: []string{"1"}, Lo: []string{"0"}, Hi: []string{}},                                                         // shape
		{Obj: []string{"inf"}, Lo: []string{"0"}, Hi: []string{"1"}},                                                    // infinite objective
		{Obj: []string{"1"}, Lo: []string{"0"}, Hi: []string{"1"}, Rows: []Row{{Idx: []int{3}, Val: []string{"1"}}}},    // index range
		{Obj: []string{"1"}, Lo: []string{"0"}, Hi: []string{"1"}, Rows: []Row{{Idx: []int{0}, Val: []string{"x"}}}},    // bad rational
		{Obj: []string{"1"}, Lo: []string{"0"}, Hi: []string{"1"}, Rows: []Row{{Idx: []int{0, 1}, Val: []string{"1"}}}}, // idx/val mismatch
	}
	for i, p := range bad {
		if _, err := p.parse(); err == nil {
			t.Errorf("case %d: parse should fail", i)
		}
	}
}
