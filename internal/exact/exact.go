// Package exact is the certification layer of the MILP pipeline: it
// re-verifies solver verdicts in exact rational arithmetic
// (math/big.Rat), independently of the floating-point tableau that
// produced them.
//
// The package is deliberately dependency-free (standard library only)
// so every layer — lp, milp, core, trace, service, the command-line
// tools — can attach, serialize and re-check certificates without
// import cycles. The bridge to the LP data model is the Source
// interface, which *lp.Problem satisfies structurally.
//
// Everything a certificate needs is embedded in the certificate
// itself: a rational snapshot of the problem data plus the witnesses
// (incumbent point, dual multipliers, Farkas ray, terminal basis), so
// a certificate decoded from a flight recording can be re-verified
// offline, byte-for-byte, with no access to the original model.
//
// All numbers are serialized as exact rational strings ("3", "-7/2"),
// with "inf"/"-inf" for unbounded sides: float64 -> big.Rat conversion
// is exact, so no precision is lost in either direction.
package exact

import (
	"fmt"
	"math"
	"math/big"
	"strings"
)

// Source is the read-only view of a linear program the snapshotter
// needs. *lp.Problem satisfies it; the indirection keeps this package
// free of internal imports so trace and service can depend on it.
type Source interface {
	NumVars() int
	NumRows() int
	Obj(j int) float64
	Bounds(j int) (lo, hi float64)
	Row(i int) (idx []int, val []float64)
	RowRange(i int) (lo, hi float64)
}

// Problem is the exact rational snapshot of an LP: objective,
// variable bounds and rows, every number an exact rational string.
type Problem struct {
	Obj  []string `json:"obj"`
	Lo   []string `json:"lo"`
	Hi   []string `json:"hi"`
	Rows []Row    `json:"rows"`
}

// Row is one range constraint Lo <= sum Val_k * x_{Idx_k} <= Hi.
type Row struct {
	Idx []int    `json:"idx"`
	Val []string `json:"val"`
	Lo  string   `json:"lo"`
	Hi  string   `json:"hi"`
}

// Snapshot captures src exactly. The snapshot is self-contained: later
// changes to src are not seen.
func Snapshot(src Source) *Problem {
	n, m := src.NumVars(), src.NumRows()
	p := &Problem{
		Obj:  make([]string, n),
		Lo:   make([]string, n),
		Hi:   make([]string, n),
		Rows: make([]Row, m),
	}
	for j := 0; j < n; j++ {
		p.Obj[j] = FloatString(src.Obj(j))
		lo, hi := src.Bounds(j)
		p.Lo[j], p.Hi[j] = FloatString(lo), FloatString(hi)
	}
	for i := 0; i < m; i++ {
		idx, val := src.Row(i)
		r := Row{Idx: append([]int(nil), idx...), Val: make([]string, len(val))}
		for k, v := range val {
			r.Val[k] = FloatString(v)
		}
		lo, hi := src.RowRange(i)
		r.Lo, r.Hi = FloatString(lo), FloatString(hi)
		p.Rows[i] = r
	}
	return p
}

// FloatString renders v as an exact rational string: big.Rat.SetFloat64
// is exact for every finite float64, and the unbounded sides map to
// "inf"/"-inf". NaN (which no healthy solve produces) renders as "nan"
// and fails parsing, so it surfaces as a failed certificate check
// rather than a silent zero.
func FloatString(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	}
	return new(big.Rat).SetFloat64(v).RatString()
}

// FloatVec converts a float vector with FloatString; nil in, nil out.
func FloatVec(v []float64) []string {
	if v == nil {
		return nil
	}
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = FloatString(x)
	}
	return out
}

// num is a parsed extended rational: a finite value (inf == 0) or an
// infinity (inf == ±1, r nil).
type num struct {
	r   *big.Rat
	inf int
}

func (v num) finite() bool { return v.inf == 0 }

func (v num) String() string {
	switch v.inf {
	case 1:
		return "inf"
	case -1:
		return "-inf"
	}
	return v.r.RatString()
}

func parseNum(s string) (num, error) {
	switch strings.TrimSpace(s) {
	case "inf", "+inf":
		return num{inf: 1}, nil
	case "-inf":
		return num{inf: -1}, nil
	}
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return num{}, fmt.Errorf("exact: not a rational: %q", s)
	}
	return num{r: r}, nil
}

// parsed is the in-memory rational form of a Problem, built once per
// Check call.
type parsed struct {
	n    int
	obj  []*big.Rat
	lo   []num
	hi   []num
	rows []prow
}

type prow struct {
	idx []int
	val []*big.Rat
	lo  num
	hi  num
}

func (p *Problem) parse() (*parsed, error) {
	n := len(p.Obj)
	if len(p.Lo) != n || len(p.Hi) != n {
		return nil, fmt.Errorf("exact: problem snapshot shape mismatch: %d obj, %d lo, %d hi", n, len(p.Lo), len(p.Hi))
	}
	out := &parsed{n: n, obj: make([]*big.Rat, n), lo: make([]num, n), hi: make([]num, n)}
	for j := 0; j < n; j++ {
		o, err := parseNum(p.Obj[j])
		if err != nil || !o.finite() {
			return nil, fmt.Errorf("exact: objective coefficient %d: %q", j, p.Obj[j])
		}
		out.obj[j] = o.r
		if out.lo[j], err = parseNum(p.Lo[j]); err != nil {
			return nil, err
		}
		if out.hi[j], err = parseNum(p.Hi[j]); err != nil {
			return nil, err
		}
	}
	out.rows = make([]prow, len(p.Rows))
	for i, r := range p.Rows {
		if len(r.Idx) != len(r.Val) {
			return nil, fmt.Errorf("exact: row %d: %d indices vs %d values", i, len(r.Idx), len(r.Val))
		}
		pr := prow{idx: r.Idx, val: make([]*big.Rat, len(r.Val))}
		for k, s := range r.Val {
			v, err := parseNum(s)
			if err != nil || !v.finite() {
				return nil, fmt.Errorf("exact: row %d coefficient %d: %q", i, k, s)
			}
			if r.Idx[k] < 0 || r.Idx[k] >= n {
				return nil, fmt.Errorf("exact: row %d references variable %d (have %d)", i, r.Idx[k], n)
			}
			pr.val[k] = v.r
		}
		var err error
		if pr.lo, err = parseNum(r.Lo); err != nil {
			return nil, err
		}
		if pr.hi, err = parseNum(r.Hi); err != nil {
			return nil, err
		}
		out.rows[i] = pr
	}
	return out, nil
}

// parseVec parses a witness vector of rational strings.
func parseVec(ss []string) ([]*big.Rat, error) {
	out := make([]*big.Rat, len(ss))
	for i, s := range ss {
		v, err := parseNum(s)
		if err != nil || !v.finite() {
			return nil, fmt.Errorf("exact: witness entry %d: %q", i, s)
		}
		out[i] = v.r
	}
	return out, nil
}

// ceilRat returns ceil(v) as a rational (exact integer rounding toward
// +infinity).
func ceilRat(v *big.Rat) *big.Rat {
	if v.IsInt() {
		return new(big.Rat).Set(v)
	}
	q := new(big.Int).Quo(v.Num(), v.Denom())
	// Quo truncates toward zero: for positive non-integers add one
	if v.Sign() > 0 {
		q.Add(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}

// snapRat returns the exact value of v snapped to the nearest integer
// when v is within tol of it, and whether the snap applied.
func snapRat(v float64, tol float64) (*big.Rat, bool) {
	r := math.Round(v)
	if math.Abs(v-r) <= tol {
		return new(big.Rat).SetInt64(int64(r)), true
	}
	return new(big.Rat).SetFloat64(v), false
}
