// Package partition defines the result of combined temporal
// partitioning and synthesis — task-to-segment assignment, operation
// schedule and functional-unit binding — together with an independent
// constraint verifier used as the oracle in tests and as a safety net
// after every ILP solve.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/library"
)

// Solution is a complete temporal partitioning and synthesis result.
type Solution struct {
	// N is the number of temporal segments made available to the
	// solution (the upper bound of the formulation). Segment indices
	// are 1..N; fewer than N may actually be used.
	N int
	// TaskPartition[t] is the 1-based segment of task t.
	TaskPartition []int
	// OpStep[i] is the 1-based control step operation i starts in.
	OpStep []int
	// OpUnit[i] is the FU instance operation i is bound to.
	OpUnit []int
	// Comm is the objective value: total data units stored across all
	// segment boundaries (eq. 14).
	Comm int
}

// UsedPartitions returns the number of distinct segments in use.
func (s *Solution) UsedPartitions() int {
	seen := map[int]bool{}
	for _, p := range s.TaskPartition {
		seen[p] = true
	}
	return len(seen)
}

// CommCost recomputes the objective from the task assignment.
func (s *Solution) CommCost(g *graph.Graph) int {
	cost := 0
	for _, e := range g.TaskEdges() {
		if d := s.TaskPartition[e.To] - s.TaskPartition[e.From]; d > 0 {
			cost += e.Bandwidth * d
		}
	}
	return cost
}

// MemoryAt returns the scratch-memory demand at segment boundary p
// (data live across the cut between segments p-1 and p).
func (s *Solution) MemoryAt(g *graph.Graph, p int) int {
	m := 0
	for _, e := range g.TaskEdges() {
		if s.TaskPartition[e.From] < p && s.TaskPartition[e.To] >= p {
			m += e.Bandwidth
		}
	}
	return m
}

// SegmentTasks returns the task IDs of segment p in ascending order.
func (s *Solution) SegmentTasks(p int) []int {
	var out []int
	for t, sp := range s.TaskPartition {
		if sp == p {
			out = append(out, t)
		}
	}
	return out
}

// SegmentUnits returns the FU instance IDs actually used by segment p.
func (s *Solution) SegmentUnits(g *graph.Graph, p int) []int {
	seen := map[int]bool{}
	for i := range s.OpStep {
		if s.TaskPartition[g.Op(i).Task] == p && s.OpUnit[i] >= 0 {
			seen[s.OpUnit[i]] = true
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// SegmentFG returns the FG footprint of the units used by segment p.
func (s *Solution) SegmentFG(g *graph.Graph, alloc *library.Allocation, p int) int {
	fg := 0
	for _, u := range s.SegmentUnits(g, p) {
		fg += alloc.Unit(u).Type.FG
	}
	return fg
}

// Report renders a human-readable summary.
func (s *Solution) Report(g *graph.Graph, alloc *library.Allocation) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "solution: %d/%d segments used, comm cost %d\n", s.UsedPartitions(), s.N, s.Comm)
	for p := 1; p <= s.N; p++ {
		tasks := s.SegmentTasks(p)
		if len(tasks) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "segment %d: tasks %v, %d FG", p, tasks, s.SegmentFG(g, alloc, p))
		if p >= 2 {
			fmt.Fprintf(&sb, ", %d data units in", s.MemoryAt(g, p))
		}
		sb.WriteByte('\n')
		var ops []int
		for _, t := range tasks {
			ops = append(ops, g.Task(t).Ops...)
		}
		sort.Slice(ops, func(a, b int) bool {
			if s.OpStep[ops[a]] != s.OpStep[ops[b]] {
				return s.OpStep[ops[a]] < s.OpStep[ops[b]]
			}
			return ops[a] < ops[b]
		})
		for _, o := range ops {
			fmt.Fprintf(&sb, "  step %2d  op %3d (%-4s)  on %s\n",
				s.OpStep[o], o, g.Op(o).Kind, alloc.Unit(s.OpUnit[o]).Name)
		}
	}
	return sb.String()
}
