package partition

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/sched"
)

// VerifyOptions parameterize the constraint check.
type VerifyOptions struct {
	// L is the latency relaxation used when the solution was produced.
	L int
	// Windows are the mobility windows of the instance; nil recomputes
	// them with unit durations.
	Windows *sched.Windows
	// Multicycle honors FU latencies (>1) in dependency and occupancy
	// checks; otherwise every op takes one step.
	Multicycle bool
}

// Verify checks a solution against every constraint of the formulation
// from first principles — independently of the ILP model:
//
//	uniqueness (1), temporal order (2), scratch memory (3), unique op
//	assignment (6), FU conflicts (7), dependencies (8), resource
//	capacity (11), control-step ownership (12)+(13), and window/
//	compatibility consistency.
//
// It also recomputes the communication cost and compares it with
// s.Comm.
func Verify(g *graph.Graph, alloc *library.Allocation, dev library.Device, s *Solution, opt VerifyOptions) error {
	nt, no := g.NumTasks(), g.NumOps()
	if len(s.TaskPartition) != nt || len(s.OpStep) != no || len(s.OpUnit) != no {
		return fmt.Errorf("partition: solution shape mismatch")
	}
	// (1) uniqueness: every task has a segment in 1..N
	for t, p := range s.TaskPartition {
		if p < 1 || p > s.N {
			return fmt.Errorf("partition: task %d in segment %d outside 1..%d", t, p, s.N)
		}
	}
	// (2) temporal order
	for _, e := range g.TaskEdges() {
		if s.TaskPartition[e.From] > s.TaskPartition[e.To] {
			return fmt.Errorf("partition: task order violated: %d (seg %d) -> %d (seg %d)",
				e.From, s.TaskPartition[e.From], e.To, s.TaskPartition[e.To])
		}
	}
	// (3) scratch memory at every boundary
	for p := 2; p <= s.N; p++ {
		if m := s.MemoryAt(g, p); m > dev.ScratchMem {
			return fmt.Errorf("partition: boundary %d stores %d > Ms=%d", p, m, dev.ScratchMem)
		}
	}
	w := opt.Windows
	if w == nil {
		var err error
		dur := sched.UnitDuration
		if opt.Multicycle {
			dur = MinLatencyDuration(g, alloc)
		}
		if w, err = sched.ComputeWindows(g, dur); err != nil {
			return err
		}
	}
	durOf := func(i int) int {
		if !opt.Multicycle {
			return 1
		}
		return alloc.Unit(s.OpUnit[i]).Type.Latency
	}
	// (6) + windows + compatibility
	maxStep := w.MaxStep(opt.L)
	for i := 0; i < no; i++ {
		j, k := s.OpStep[i], s.OpUnit[i]
		if j < w.ASAP[i] || j > w.ALAP[i]+opt.L {
			return fmt.Errorf("partition: op %d at step %d outside window [%d,%d]", i, j, w.ASAP[i], w.ALAP[i]+opt.L)
		}
		if k < 0 || k >= alloc.NumUnits() {
			return fmt.Errorf("partition: op %d bound to invalid unit %d", i, k)
		}
		if !alloc.Unit(k).Type.CanExecute(g.Op(i).Kind) {
			return fmt.Errorf("partition: op %d (%s) bound to incompatible unit %s", i, g.Op(i).Kind, alloc.Unit(k).Name)
		}
		if j+durOf(i)-1 > maxStep {
			return fmt.Errorf("partition: op %d finishes at %d past last step %d", i, j+durOf(i)-1, maxStep)
		}
	}
	// (7) FU occupancy conflicts
	for i1 := 0; i1 < no; i1++ {
		for i2 := i1 + 1; i2 < no; i2++ {
			if s.OpUnit[i1] != s.OpUnit[i2] {
				continue
			}
			ft := alloc.Unit(s.OpUnit[i1]).Type
			if ft.Pipelined || !opt.Multicycle {
				if s.OpStep[i1] == s.OpStep[i2] {
					return fmt.Errorf("partition: ops %d and %d share unit %s at step %d", i1, i2, alloc.Unit(s.OpUnit[i1]).Name, s.OpStep[i1])
				}
				continue
			}
			a1, b1 := s.OpStep[i1], s.OpStep[i1]+ft.Latency-1
			a2, b2 := s.OpStep[i2], s.OpStep[i2]+ft.Latency-1
			if a1 <= b2 && a2 <= b1 {
				return fmt.Errorf("partition: ops %d and %d overlap on unit %s", i1, i2, alloc.Unit(s.OpUnit[i1]).Name)
			}
		}
	}
	// (8) dependencies
	for _, e := range g.OpEdges() {
		if s.OpStep[e.To] < s.OpStep[e.From]+durOf(e.From) {
			return fmt.Errorf("partition: dependency %d->%d violated: steps %d,%d (dur %d)",
				e.From, e.To, s.OpStep[e.From], s.OpStep[e.To], durOf(e.From))
		}
	}
	// (11) resource capacity per segment
	for p := 1; p <= s.N; p++ {
		if fg := s.SegmentFG(g, alloc, p); !dev.Fits(fg) {
			return fmt.Errorf("partition: segment %d uses %d FG, effective %.1f > C=%d",
				p, fg, dev.EffectiveFG(fg), dev.CapacityFG)
		}
	}
	// (12)+(13): every control step belongs to at most one segment
	stepOwner := map[int]int{}
	for i := 0; i < no; i++ {
		p := s.TaskPartition[g.Op(i).Task]
		for j := s.OpStep[i]; j <= s.OpStep[i]+durOf(i)-1; j++ {
			if q, ok := stepOwner[j]; ok && q != p {
				return fmt.Errorf("partition: step %d used by segments %d and %d", j, q, p)
			}
			stepOwner[j] = p
		}
	}
	// objective consistency
	if got := s.CommCost(g); got != s.Comm {
		return fmt.Errorf("partition: stored comm %d != recomputed %d", s.Comm, got)
	}
	return nil
}

// MinLatencyDuration returns a Duration giving each op the minimum
// latency over the allocation units able to execute it — the valid
// lower bound used for mobility windows in multicycle mode.
func MinLatencyDuration(g *graph.Graph, alloc *library.Allocation) sched.Duration {
	return func(i int) int {
		best := 0
		for _, u := range alloc.UnitsFor(g.Op(i).Kind) {
			if l := alloc.Unit(u).Type.Latency; best == 0 || l < best {
				best = l
			}
		}
		if best == 0 {
			best = 1
		}
		return best
	}
}
