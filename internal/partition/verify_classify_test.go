package partition

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/library"
)

// TestVerifyErrorClassification pins the failure CLASS each corruption
// reports, not just that Verify rejects it: downstream callers (the
// extraction audit in core, test triage, bug reports) read these
// messages to tell a scheduling bug from a capacity bug from a
// bookkeeping bug, so the classes are contract, not cosmetics.
func TestVerifyErrorClassification(t *testing.T) {
	g, alloc, dev := fixture(t)
	cases := []struct {
		name   string
		mutate func(*Solution, *library.Device)
		opt    VerifyOptions
		want   string
	}{
		{"shape", func(s *Solution, _ *library.Device) { s.OpStep = s.OpStep[:2] },
			VerifyOptions{}, "solution shape mismatch"},
		{"segment range", func(s *Solution, _ *library.Device) { s.TaskPartition[0] = 3 },
			VerifyOptions{}, "outside 1..2"},
		{"task order", func(s *Solution, _ *library.Device) { s.TaskPartition[0] = 2; s.TaskPartition[1] = 1 },
			VerifyOptions{}, "task order violated"},
		{"boundary memory", func(s *Solution, d *library.Device) {
			s.TaskPartition[1] = 2
			s.Comm = 4
			d.ScratchMem = 3 // the crossing edge stores 4 > Ms
		}, VerifyOptions{}, "> Ms=3"},
		{"op window", func(s *Solution, _ *library.Device) { s.OpStep[0] = 2 },
			VerifyOptions{}, "outside window"},
		{"invalid unit", func(s *Solution, _ *library.Device) { s.OpUnit[0] = 99 },
			VerifyOptions{}, "invalid unit 99"},
		{"incompatible unit", func(s *Solution, _ *library.Device) { s.OpUnit[0] = 1 },
			VerifyOptions{}, "incompatible unit"},
		{"dependency", func(s *Solution, _ *library.Device) { s.OpStep[0] = 2 },
			VerifyOptions{L: 1}, "violated: steps"}, // a@2, b@2: both in window, order broken
		{"capacity", func(_ *Solution, d *library.Device) { d.CapacityFG = 50 },
			VerifyOptions{}, "> C=50"},
		{"comm bookkeeping", func(s *Solution, _ *library.Device) { s.Comm = 99 },
			VerifyOptions{}, "stored comm 99 != recomputed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, d := goodSolution(), dev
			tc.mutate(s, &d)
			err := Verify(g, alloc, d, s, tc.opt)
			if err == nil {
				t.Fatal("corrupted solution accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error class drifted:\n  got  %q\n  want substring %q", err, tc.want)
			}
		})
	}
}

// TestVerifyUnitShareClassification: two same-kind ops on one unit at
// one step is reported as unit sharing, distinct from the window and
// dependency classes.
func TestVerifyUnitShareClassification(t *testing.T) {
	g := graph.New("c")
	t0 := g.AddTask("t0")
	g.AddOp(t0, graph.OpAdd, "")
	g.AddOp(t0, graph.OpAdd, "")
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solution{
		N:             1,
		TaskPartition: []int{1},
		OpStep:        []int{1, 1},
		OpUnit:        []int{0, 0},
		Comm:          0,
	}
	verr := Verify(g, alloc, library.XC4025(), s, VerifyOptions{L: 1})
	if verr == nil {
		t.Fatal("unit conflict accepted")
	}
	if !strings.Contains(verr.Error(), "share unit") {
		t.Fatalf("error class drifted: %q", verr)
	}
}
