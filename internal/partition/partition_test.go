package partition

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/library"
)

// fixture: two tasks, t0 (add, mul) -> t1 (sub) with bandwidth 4.
func fixture(t *testing.T) (*graph.Graph, *library.Allocation, library.Device) {
	t.Helper()
	g := graph.New("fx")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "a")
	b := g.AddOp(t0, graph.OpMul, "b")
	c := g.AddOp(t1, graph.OpSub, "c")
	g.AddOpEdge(a, b)
	g.Connect(b, c, 4)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, alloc, library.XC4025()
}

// goodSolution: both tasks in segment 1, schedule a@1, b@2, c@3.
func goodSolution() *Solution {
	return &Solution{
		N:             2,
		TaskPartition: []int{1, 1},
		OpStep:        []int{1, 2, 3},
		OpUnit:        []int{0, 1, 2}, // add16#0, mul16#0, sub16#0
		Comm:          0,
	}
}

func TestVerifyAccepts(t *testing.T) {
	g, alloc, dev := fixture(t)
	if err := Verify(g, alloc, dev, goodSolution(), VerifyOptions{L: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySplitSolution(t *testing.T) {
	g, alloc, dev := fixture(t)
	s := &Solution{
		N:             2,
		TaskPartition: []int{1, 2},
		OpStep:        []int{1, 2, 3},
		OpUnit:        []int{0, 1, 2},
		Comm:          4,
	}
	if err := Verify(g, alloc, dev, s, VerifyOptions{L: 0}); err != nil {
		t.Fatal(err)
	}
	if s.UsedPartitions() != 2 {
		t.Fatal("used partitions")
	}
	if s.MemoryAt(g, 2) != 4 {
		t.Fatalf("memory at 2 = %d", s.MemoryAt(g, 2))
	}
}

func TestVerifyRejections(t *testing.T) {
	g, alloc, dev := fixture(t)
	cases := []struct {
		name   string
		mutate func(*Solution)
		opt    VerifyOptions
	}{
		{"segment out of range", func(s *Solution) { s.TaskPartition[0] = 3 }, VerifyOptions{}},
		{"order violated", func(s *Solution) { s.TaskPartition[0] = 2; s.TaskPartition[1] = 1 }, VerifyOptions{}},
		{"window violated", func(s *Solution) { s.OpStep[0] = 2 }, VerifyOptions{}}, // op a has window [1,1] at L=0
		{"bad unit", func(s *Solution) { s.OpUnit[0] = 99 }, VerifyOptions{}},
		{"incompatible unit", func(s *Solution) { s.OpUnit[0] = 1 }, VerifyOptions{}},
		{"dependency violated", func(s *Solution) { s.OpStep[1] = 1; s.OpUnit[1] = 1 }, VerifyOptions{L: 1}},
		{"comm mismatch", func(s *Solution) { s.Comm = 99 }, VerifyOptions{}},
		{"shape mismatch", func(s *Solution) { s.OpStep = s.OpStep[:2] }, VerifyOptions{}},
	}
	for _, tc := range cases {
		s := goodSolution()
		tc.mutate(s)
		if err := Verify(g, alloc, dev, s, tc.opt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestVerifyUnitConflict(t *testing.T) {
	g := graph.New("c")
	t0 := g.AddTask("t0")
	g.AddOp(t0, graph.OpAdd, "")
	g.AddOp(t0, graph.OpAdd, "")
	alloc, _ := library.PaperAllocation(library.DefaultLibrary(), 1, 0, 0)
	s := &Solution{
		N:             1,
		TaskPartition: []int{1},
		OpStep:        []int{1, 1},
		OpUnit:        []int{0, 0},
		Comm:          0,
	}
	if err := Verify(g, alloc, library.XC4025(), s, VerifyOptions{L: 1}); err == nil {
		t.Fatal("same (step,unit) accepted")
	}
	s.OpStep[1] = 2
	if err := Verify(g, alloc, library.XC4025(), s, VerifyOptions{L: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyStepOwnership(t *testing.T) {
	// two independent tasks in different segments must not share steps
	g := graph.New("o")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	g.AddOp(t0, graph.OpAdd, "")
	g.AddOp(t1, graph.OpAdd, "")
	alloc, _ := library.PaperAllocation(library.DefaultLibrary(), 2, 0, 0)
	s := &Solution{
		N:             2,
		TaskPartition: []int{1, 2},
		OpStep:        []int{1, 1},
		OpUnit:        []int{0, 1},
		Comm:          0,
	}
	if err := Verify(g, alloc, library.XC4025(), s, VerifyOptions{L: 1}); err == nil {
		t.Fatal("shared step across segments accepted")
	}
	s.OpStep[1] = 2
	if err := Verify(g, alloc, library.XC4025(), s, VerifyOptions{L: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMemoryLimit(t *testing.T) {
	g, alloc, _ := fixture(t)
	dev := library.Device{Name: "small", CapacityFG: 400, Alpha: 0.7, ScratchMem: 3}
	s := &Solution{
		N:             2,
		TaskPartition: []int{1, 2},
		OpStep:        []int{1, 2, 3},
		OpUnit:        []int{0, 1, 2},
		Comm:          4,
	}
	if err := Verify(g, alloc, dev, s, VerifyOptions{L: 0}); err == nil {
		t.Fatal("memory overflow accepted")
	}
}

func TestVerifyResourceLimit(t *testing.T) {
	g, alloc, _ := fixture(t)
	dev := library.Device{Name: "small", CapacityFG: 40, Alpha: 1.0, ScratchMem: 64}
	// segment 1 uses add16 (16) + mul16 (96) = 112 FG > 40
	if err := Verify(g, alloc, dev, goodSolution(), VerifyOptions{L: 0}); err == nil {
		t.Fatal("resource overflow accepted")
	}
}

func TestVerifyMulticycle(t *testing.T) {
	lib := library.DefaultLibrary()
	alloc, err := library.NewAllocation(lib, map[string]int{"mul16x2": 1, "add16": 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New("mc")
	t0 := g.AddTask("t0")
	m := g.AddOp(t0, graph.OpMul, "")
	a := g.AddOp(t0, graph.OpAdd, "")
	g.AddOpEdge(m, a)
	// mul takes 2 cycles on mul16x2 (unit 1); add16 is unit 0
	s := &Solution{
		N:             1,
		TaskPartition: []int{1},
		OpStep:        []int{1, 3},
		OpUnit:        []int{1, 0},
		Comm:          0,
	}
	if err := Verify(g, alloc, library.XC4025(), s, VerifyOptions{L: 0, Multicycle: true}); err != nil {
		t.Fatal(err)
	}
	// starting the add at step 2 violates the 2-cycle latency
	s.OpStep[1] = 2
	if err := Verify(g, alloc, library.XC4025(), s, VerifyOptions{L: 0, Multicycle: true}); err == nil {
		t.Fatal("latency violation accepted")
	}
}

func TestReport(t *testing.T) {
	g, alloc, _ := fixture(t)
	s := goodSolution()
	rep := s.Report(g, alloc)
	for _, want := range []string{"segment 1", "add16#0", "mul16#0", "comm cost 0"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSegmentQueries(t *testing.T) {
	g, alloc, _ := fixture(t)
	s := &Solution{
		N:             2,
		TaskPartition: []int{1, 2},
		OpStep:        []int{1, 2, 3},
		OpUnit:        []int{0, 1, 2},
		Comm:          4,
	}
	if got := s.SegmentTasks(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("SegmentTasks(1) = %v", got)
	}
	if got := s.SegmentUnits(g, 1); len(got) != 2 {
		t.Fatalf("SegmentUnits(1) = %v", got)
	}
	if fg := s.SegmentFG(g, alloc, 1); fg != 16+96 {
		t.Fatalf("SegmentFG(1) = %d", fg)
	}
	if c := s.CommCost(g); c != 4 {
		t.Fatalf("CommCost = %d", c)
	}
}
