package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestTableDefinitions(t *testing.T) {
	for name, gen := range Tables {
		rows := gen()
		if len(rows) == 0 {
			t.Errorf("table %s has no rows", name)
		}
		for _, r := range rows {
			if r.GraphNum < 1 || r.GraphNum > 6 {
				t.Errorf("table %s row %q: graph %d", name, r.Label, r.GraphNum)
			}
			if r.N < 1 || r.L < 0 || r.A < 0 || r.M < 0 || r.S < 0 {
				t.Errorf("table %s row %q: bad config %+v", name, r.Label, r)
			}
			if r.Label == "" {
				t.Errorf("table %s has unlabeled row", name)
			}
		}
	}
}

func TestTable1And2ShareConfigs(t *testing.T) {
	t1, t2 := Table1(), Table2()
	if len(t1) != len(t2) {
		t.Fatalf("row counts differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i].GraphNum != t2[i].GraphNum || t1[i].N != t2[i].N || t1[i].L != t2[i].L {
			t.Errorf("row %d configs differ", i)
		}
		if t1[i].Opt.Tightened || !t2[i].Opt.Tightened {
			t.Errorf("row %d: tightening flags wrong", i)
		}
		if !t1[i].Opt.WPerProduct {
			t.Errorf("row %d: table 1 must use per-product w", i)
		}
	}
}

func TestFormat(t *testing.T) {
	r := &Result{
		Row:      Row{Label: "x", GraphNum: 1, N: 2, L: 1, A: 2, M: 2, S: 1},
		Feasible: true, Optimal: true, Comm: 7, Used: 2,
		Runtime: 1500 * time.Millisecond,
	}
	out := Format(r)
	for _, want := range []string{"Yes", "7(u2)", "1.50s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q: %s", want, out)
		}
	}
	r.Optimal = false
	if out := Format(r); !strings.Contains(out, ">") || !strings.Contains(out, "Yes*") {
		t.Errorf("non-optimal row must be marked: %s", out)
	}
	r.Feasible = false
	if out := Format(r); !strings.Contains(out, "?") {
		t.Errorf("unresolved row must be marked: %s", out)
	}
}

func TestRunSmallRow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// generous config on graph 1: the exact sweep settles it instantly
	res, err := Run(Row{
		Label: "smoke", GraphNum: 1, N: 2, L: 4, A: 2, M: 2, S: 1,
		Opt:       core.Options{Tightened: true, ExactSweep: true},
		TimeLimit: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible")
	}
	if res.Stats.Vars == 0 || res.Stats.Rows == 0 {
		t.Fatal("missing stats")
	}
}
