package experiments

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/library"
	"repro/internal/randgraph"
	"repro/internal/sched"
)

func TestScanProfile1(t *testing.T) {
	if os.Getenv("TPSYN_PROBE") == "" {
		t.Skip("probe")
	}
	alloc, _ := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 1)
	dev := Device()
	found := 0
	for seed := int64(100); seed < 500 && found < 12; seed++ {
		g, err := randgraph.Generate(randgraph.Config{Name: "g1", Tasks: 5, Ops: 22}, seed)
		if err != nil {
			continue
		}
		w, _ := sched.ComputeWindows(g, nil)
		// build the grid: for L=0..4, N=1..3 heuristic feasibility
		grid := ""
		interesting := false
		forcedAtSomeL := false
		singleAtSomeL := false
		infAtL0 := kindInfeasible(g, w.CriticalPath, 2, 2, 1)
		for L := 0; L <= 4; L++ {
			steps := w.CriticalPath + L
			if kindInfeasible(g, steps, 2, 2, 1) {
				grid += fmt.Sprintf("L%d:INF ", L)
				continue
			}
			cell := fmt.Sprintf("L%d:", L)
			for N := 1; N <= 3; N++ {
				h, err := heuristic.Solve(g, alloc, dev, N, L)
				if err != nil || !h.Feasible {
					cell += "-"
					continue
				}
				if h.Comm == 0 {
					cell += "0"
					singleAtSomeL = true
				} else if singlePartitionImpossible(g, alloc, dev, steps) {
					cell += "!"
					forcedAtSomeL = true
				} else {
					cell += "+"
				}
			}
			grid += cell + " "
		}
		interesting = infAtL0 && forcedAtSomeL && singleAtSomeL
		if forcedAtSomeL {
			fmt.Printf("seed %3d CP=%d %v %s int=%v\n", seed, w.CriticalPath, counts(g), grid, interesting)
			found++
		}
	}
}

func counts(g *graph.Graph) string {
	k := g.CountKinds()
	return fmt.Sprintf("A%d/M%d/S%d", k[graph.OpAdd], k[graph.OpMul], k[graph.OpSub])
}
