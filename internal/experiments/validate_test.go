package experiments

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/randgraph"
)

func TestValidateSeed(t *testing.T) {
	if os.Getenv("TPSYN_PROBE") == "" {
		t.Skip("probe")
	}
	g, err := randgraph.Generate(randgraph.Config{Name: "g1", Tasks: 5, Ops: 22}, 126)
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 1)
	for _, cfg := range []struct{ N, L int }{{3, 0}, {3, 3}, {2, 3}, {2, 4}, {1, 4}} {
		start := time.Now()
		res, err := core.SolveInstance(core.Instance{Graph: g, Alloc: alloc, Device: Device()},
			core.Options{N: cfg.N, L: cfg.L, Tightened: true, TimeLimit: 120 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		comm, used := -1, 0
		if res.Feasible {
			comm, used = res.Solution.Comm, res.Solution.UsedPartitions()
		}
		fmt.Printf("(%d,%d): %+v feas=%v opt=%v comm=%d used=%d nodes=%d t=%v\n",
			cfg.N, cfg.L, res.Stats, res.Feasible, res.Optimal, comm, used, res.Nodes,
			time.Since(start).Round(time.Millisecond))
	}
}
