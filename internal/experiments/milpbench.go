package experiments

// The serial-vs-parallel branch-and-bound benchmark suite behind
// cmd/tptables -benchmilp and BenchmarkMILPParallel: named
// internal/benchmarks instances with the scheduling probe disabled, so
// the solves exercise the real LP-driven search tree that
// milp.Options.Parallelism partitions across workers.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/library"
)

// MILPBenchEntry is one named instance of the parallel-search suite.
type MILPBenchEntry struct {
	Name string
	Inst core.Instance
	Opt  core.Options
}

// MILPRunStats records one solve of a suite entry. PivotsPerSec and
// NSPerPivot are the derived pivot-throughput numbers the trajectory
// series tracks across engine changes; Engine names the LP engine the
// run selected (dense tableau or sparse revised simplex).
type MILPRunStats struct {
	NS           int64   `json:"ns"`
	Nodes        int     `json:"nodes"`
	LPPivots     int     `json:"lp_pivots"`
	PivotsPerSec float64 `json:"pivots_per_sec,omitempty"`
	NSPerPivot   float64 `json:"ns_per_pivot,omitempty"`
	Engine       string  `json:"engine,omitempty"`
	Comm         int     `json:"comm"`
	Feasible     bool    `json:"feasible"`
	Optimal      bool    `json:"optimal"`
	// Mode names the search mode the solve resolved to ("serial",
	// "steal", "portfolio"); the parallel legs of the suite request the
	// work-stealing pool explicitly.
	Mode string `json:"mode,omitempty"`
	// Steals counts work transfers between the pool's workers.
	Steals int64 `json:"steals,omitempty"`
	// Cuts is the number of root cutting planes applied.
	Cuts int `json:"cuts,omitempty"`
	// FirstIncNodes/FirstIncMS locate the first incumbent (0 nodes
	// means the root dive found it before the tree search started).
	FirstIncNodes int64   `json:"nodes_to_first_incumbent,omitempty"`
	FirstIncMS    float64 `json:"ms_to_first_incumbent,omitempty"`
	// ProofMS is the wall time to a proved verdict; 0 when a limit
	// stopped the run.
	ProofMS float64 `json:"ms_to_proof,omitempty"`
}

// MILPBenchResult pairs the serial and parallel solves of one entry.
// Speedup is serial time over parallel time; Comm/Feasible/Optimal must
// agree between the two runs (RunMILPBench errors otherwise).
type MILPBenchResult struct {
	Name     string       `json:"name"`
	Serial   MILPRunStats `json:"serial"`
	Parallel MILPRunStats `json:"parallel"`
	Speedup  float64      `json:"speedup"`
}

// MILPBenchReport is the schema of BENCH_milp.json.
type MILPBenchReport struct {
	// GOMAXPROCS records the CPUs actually available to the run: with
	// one CPU the parallel workers time-slice a single core and the
	// speedup column measures overhead, not parallelism.
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Parallelism int               `json:"parallelism"`
	Entries     []MILPBenchResult `json:"entries"`
}

// milpBenchAlloc builds the exploration set used by the suite: one
// adder and two multipliers (plus a subtracter and comparator for the
// differential-equation benchmark, which needs them).
func milpBenchAlloc(name string) (*library.Allocation, error) {
	counts := map[string]int{"add16": 1, "mul16": 2}
	if name == "diffeq" {
		counts = map[string]int{"add16": 1, "sub16": 1, "mul16": 2, "cmp16": 1}
	}
	return library.NewAllocation(library.DefaultLibrary(), counts)
}

// MILPBench returns the suite, easiest first. Every entry disables the
// exact-scheduling probe: the probe collapses these trees to a handful
// of nodes, and the point of the suite is the branch-and-bound search
// itself. The fir16 L=3 entry is the hardest (deepest tree, most LP
// pivots).
func MILPBench() ([]MILPBenchEntry, error) {
	all := benchmarks.All()
	var suite []MILPBenchEntry
	for _, cfg := range []struct {
		graph string
		l     int
	}{
		{"diffeq", 2},
		{"ewf", 2},
		{"fir16", 2},
		{"ewf", 3},
		{"fir16", 3},
	} {
		alloc, err := milpBenchAlloc(cfg.graph)
		if err != nil {
			return nil, err
		}
		suite = append(suite, MILPBenchEntry{
			Name: fmt.Sprintf("%s/N2L%d", cfg.graph, cfg.l),
			Inst: core.Instance{
				Graph:  all[cfg.graph](),
				Alloc:  alloc,
				Device: library.XC4010(),
			},
			Opt: core.Options{
				N: 2, L: cfg.l, Tightened: true, DisableProbe: true,
				TimeLimit: DefaultTimeLimit,
			},
		})
	}
	return suite, nil
}

// runMILPEntry solves one entry at the given parallelism. The parallel
// leg disables the root-size gate and requests the work-stealing mode
// with root strengthening: the suite exists to measure the true
// serial-vs-parallel cost (including the overhead the gate hides), so
// a gated fallback would silently benchmark serial against serial.
func runMILPEntry(e MILPBenchEntry, parallelism int) (MILPRunStats, error) {
	opt := e.Opt
	opt.Parallelism = parallelism
	if parallelism > 1 {
		opt.Search = &core.SearchOptions{
			Parallelism: parallelism,
			Threshold:   -1,
			Mode:        core.SearchSteal,
			Cuts:        core.ToggleOn,
			Dive:        core.ToggleOn,
		}
	}
	start := time.Now()
	res, err := core.SolveInstance(e.Inst, opt)
	if err != nil {
		return MILPRunStats{}, err
	}
	st := MILPRunStats{
		NS:            time.Since(start).Nanoseconds(),
		Nodes:         res.Nodes,
		LPPivots:      res.LPIterations,
		Engine:        res.LPEngine,
		Feasible:      res.Feasible,
		Optimal:       res.Optimal,
		Mode:          res.SearchMode,
		Steals:        res.Steals,
		Cuts:          res.CutsApplied,
		FirstIncNodes: res.FirstIncumbentNodes,
		FirstIncMS:    float64(res.TimeToFirstIncumbent.Nanoseconds()) / 1e6,
		ProofMS:       float64(res.TimeToProof.Nanoseconds()) / 1e6,
	}
	if st.NS > 0 && st.LPPivots > 0 {
		st.PivotsPerSec = float64(st.LPPivots) / (float64(st.NS) / 1e9)
		st.NSPerPivot = float64(st.NS) / float64(st.LPPivots)
	}
	if res.Feasible {
		st.Comm = res.Solution.Comm
	}
	return st, nil
}

// RunMILPBench solves every suite entry serially and with the given
// parallelism (0 means GOMAXPROCS, floored at 2 so the parallel path is
// always exercised) and cross-checks that both solves agree on
// feasibility, optimality and the communication cost — the equivalence
// contract of milp.Options.Parallelism.
func RunMILPBench(parallelism int) (MILPBenchReport, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
		if parallelism < 2 {
			parallelism = 2
		}
	}
	rep := MILPBenchReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: parallelism,
	}
	suite, err := MILPBench()
	if err != nil {
		return rep, err
	}
	for _, e := range suite {
		serial, err := runMILPEntry(e, 0)
		if err != nil {
			return rep, fmt.Errorf("%s serial: %w", e.Name, err)
		}
		par, err := runMILPEntry(e, parallelism)
		if err != nil {
			return rep, fmt.Errorf("%s parallel: %w", e.Name, err)
		}
		if serial.Feasible != par.Feasible || serial.Optimal != par.Optimal || serial.Comm != par.Comm {
			return rep, fmt.Errorf("%s: serial (feas=%v opt=%v comm=%d) != parallel (feas=%v opt=%v comm=%d)",
				e.Name, serial.Feasible, serial.Optimal, serial.Comm,
				par.Feasible, par.Optimal, par.Comm)
		}
		r := MILPBenchResult{Name: e.Name, Serial: serial, Parallel: par}
		if par.NS > 0 {
			r.Speedup = float64(serial.NS) / float64(par.NS)
		}
		rep.Entries = append(rep.Entries, r)
	}
	return rep, nil
}
