package experiments

import (
	"fmt"

	"repro/internal/core"
)

// Table1 reproduces the paper's Table 1: the preliminary, untightened
// formulation (per-product w linearization, no cuts) on graph 1 and
// graph 3. In the paper three of the four rows exceeded two hours; the
// reproduction reports ">limit" for rows that exceed the time budget.
func Table1() []Row {
	rows := table12Configs()
	for i := range rows {
		rows[i].Label = fmt.Sprintf("T1 base g%d N%d L%d", rows[i].GraphNum, rows[i].N, rows[i].L)
		rows[i].Opt.Tightened = false
		rows[i].Opt.WPerProduct = true
		// the preliminary experiments predate the branching heuristic,
		// and the probe is this reproduction's addition: both off for
		// a paper-faithful baseline
		rows[i].Opt.Branch = core.BranchFirstFrac
		rows[i].Opt.DisableProbe = true
	}
	return rows
}

// Table2 reproduces the paper's Table 2: the same configurations with
// the tightening cuts (28)-(30), (32) and the compact w linearization
// (31); still the naive branching rule.
func Table2() []Row {
	rows := table12Configs()
	for i := range rows {
		rows[i].Label = fmt.Sprintf("T2 tight g%d N%d L%d", rows[i].GraphNum, rows[i].N, rows[i].L)
		rows[i].Opt.Tightened = true
		rows[i].Opt.Branch = core.BranchFirstFrac
		rows[i].Opt.DisableProbe = true
	}
	return rows
}

// table12Configs are the four configurations shared by Tables 1 and 2:
// graph 1 at (N=3,L=1), (N=2,L=2), (N=2,L=3) and graph 3 at (N=3,L=1),
// with the paper's FU mixes.
// The L values are adapted to the seeded instances (the paper's exact
// random graphs are lost); the configurations keep the paper's shape:
// three graph-1 rows spanning the N/L trade-off plus one graph-3 row.
func table12Configs() []Row {
	return []Row{
		{GraphNum: 1, N: 3, L: 3, A: 2, M: 2, S: 1},
		{GraphNum: 1, N: 2, L: 3, A: 2, M: 2, S: 1},
		{GraphNum: 1, N: 2, L: 4, A: 2, M: 2, S: 1},
		{GraphNum: 3, N: 3, L: 2, A: 2, M: 2, S: 2},
	}
}

// Table3 reproduces the paper's Table 3: the latency/partition sweep
// on graph 1 with 2 adders, 2 multipliers and 1 subtracter. The shape
// to reproduce: no relaxation is infeasible; one extra step makes N=3
// feasible; more relaxation lets the design collapse onto fewer
// partitions.
func Table3() []Row {
	var rows []Row
	// L values adapted to the seeded graph 1; same cascade as the
	// paper's Table 3: too tight -> infeasible; +relax -> optimal on 3
	// segments; N=2 works too; one more step collapses the design onto
	// a single configuration.
	for _, cfg := range []struct{ N, L int }{{3, 0}, {3, 3}, {2, 3}, {2, 4}} {
		rows = append(rows, Row{
			Label:    fmt.Sprintf("T3 g1 N%d L%d", cfg.N, cfg.L),
			GraphNum: 1, N: cfg.N, L: cfg.L, A: 2, M: 2, S: 1,
			Opt: core.Options{Tightened: true, Branch: core.BranchPaper, ExactSweep: true},
		})
	}
	return rows
}

// Table4 reproduces the paper's Table 4: the full results over
// benchmark graphs 1-6 with the paper's N, L and FU mixes, tightened
// model and the paper's branching heuristic.
func Table4() []Row {
	cfgs := []struct {
		g, n, l, a, m, s int
	}{
		{1, 3, 3, 2, 2, 1},
		{2, 4, 2, 3, 2, 2},
		{3, 3, 2, 2, 2, 2},
		{4, 2, 1, 2, 2, 2},
		{4, 3, 0, 2, 2, 2},
		{5, 3, 0, 2, 2, 2},
		{5, 2, 2, 2, 2, 2},
		{6, 3, 0, 2, 2, 2},
		{6, 2, 1, 2, 2, 2},
	}
	var rows []Row
	for _, c := range cfgs {
		rows = append(rows, Row{
			Label:    fmt.Sprintf("T4 g%d N%d L%d", c.g, c.n, c.l),
			GraphNum: c.g, N: c.n, L: c.l, A: c.a, M: c.m, S: c.s,
			Opt: core.Options{Tightened: true, Branch: core.BranchPaper, ExactSweep: true},
		})
	}
	return rows
}

// AblationLinearization compares Fortet vs. Glover product
// linearization (Section 4's claim that Glover's is tighter).
func AblationLinearization() []Row {
	var rows []Row
	for _, lin := range []core.Linearization{core.LinGlover, core.LinFortet} {
		for _, cfg := range []struct{ g, n, l int }{{1, 3, 3}, {1, 2, 4}} {
			rows = append(rows, Row{
				Label:    fmt.Sprintf("lin %s g%d N%d L%d", lin, cfg.g, cfg.n, cfg.l),
				GraphNum: cfg.g, N: cfg.n, L: cfg.l, A: 2, M: 2, S: 1,
				Opt: core.Options{Tightened: true, Linearization: lin, WPerProduct: true, PrimeHeuristic: true},
			})
		}
	}
	return rows
}

// AblationBranching compares the paper's variable-selection heuristic
// against the naive rules (Section 8 / Section 9).
func AblationBranching() []Row {
	var rows []Row
	for _, br := range []core.BranchRule{core.BranchPaper, core.BranchFirstFrac, core.BranchMostFrac} {
		for _, cfg := range []struct{ g, n, l, a, m, s int }{
			{1, 2, 4, 2, 2, 1}, // solvable row: rules differentiate here
			{1, 3, 3, 2, 2, 1},
			{3, 3, 2, 2, 2, 2},
		} {
			rows = append(rows, Row{
				Label:    fmt.Sprintf("branch %s g%d N%d L%d", br, cfg.g, cfg.n, cfg.l),
				GraphNum: cfg.g, N: cfg.n, L: cfg.l, A: cfg.a, M: cfg.m, S: cfg.s,
				// probe off so the rows measure the LP-driven search the
				// rules actually steer; primed so all rules chase the
				// same incumbent
				Opt: core.Options{Tightened: true, Branch: br, PrimeHeuristic: true, DisableProbe: true},
			})
		}
	}
	return rows
}

// AblationTightening drops one cut family at a time (Section 6).
func AblationTightening() []Row {
	cases := []struct {
		label string
		cuts  core.CutSet
	}{
		{"all cuts", core.CutsAll},
		{"no (28)", core.CutsAll &^ core.Cut28},
		{"no (29)", core.CutsAll &^ core.Cut29},
		{"no (30)", core.CutsAll &^ core.Cut30},
		{"no (32)", core.CutsAll &^ core.Cut32},
	}
	var rows []Row
	for _, c := range cases {
		rows = append(rows, Row{
			Label:    "tighten " + c.label,
			GraphNum: 1, N: 3, L: 3, A: 2, M: 2, S: 1,
			Opt: core.Options{Tightened: true, Cuts: c.cuts, Branch: core.BranchPaper, PrimeHeuristic: true},
		})
	}
	return rows
}

// Tables maps table names to row generators for cmd/tptables.
var Tables = map[string]func() []Row{
	"1":         Table1,
	"2":         Table2,
	"3":         Table3,
	"4":         Table4,
	"lin":       AblationLinearization,
	"branching": AblationBranching,
	"tighten":   AblationTightening,
}
