package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func trajectoryReport(serialNS, parNS int64) MILPBenchReport {
	return MILPBenchReport{
		GOMAXPROCS:  8,
		Parallelism: 4,
		Entries: []MILPBenchResult{{
			Name:     "fir16/N2L3",
			Serial:   MILPRunStats{NS: serialNS, Nodes: 120, LPPivots: 9000, Comm: 3, Feasible: true, Optimal: true},
			Parallel: MILPRunStats{NS: parNS, Nodes: 140, LPPivots: 9500, Comm: 3, Feasible: true, Optimal: true},
			Speedup:  float64(serialNS) / float64(parNS),
		}},
	}
}

// TestAppendTrajectory checks the series lifecycle: a missing file
// starts a new series, repeated appends grow it in order, and the
// distillation keeps the tracked numbers.
func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")

	if err := AppendTrajectory(path, "2026-08-04", trajectoryReport(2e9, 1e9)); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(path, "2026-08-05", trajectoryReport(18e8, 8e8)); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var series []TrajectoryEntry
	if err := json.Unmarshal(raw, &series); err != nil {
		t.Fatalf("series not valid JSON: %v\n%s", err, raw)
	}
	if len(series) != 2 {
		t.Fatalf("series length %d, want 2", len(series))
	}
	if series[0].Date != "2026-08-04" || series[1].Date != "2026-08-05" {
		t.Fatalf("dates out of order: %s, %s", series[0].Date, series[1].Date)
	}
	e := series[0]
	if e.GOMAXPROCS != 8 || e.Parallelism != 4 || len(e.Results) != 1 {
		t.Fatalf("entry shape wrong: %+v", e)
	}
	r := e.Results[0]
	if r.Name != "fir16/N2L3" || r.SerialMS != 2000 || r.ParallelMS != 1000 || r.Speedup != 2 || r.Nodes != 120 {
		t.Fatalf("distillation wrong: %+v", r)
	}
}

// TestAppendSweepTrajectory checks that a sweep distillation can be
// appended to a series started by the benchmilp distillation, and that
// the two entry shapes coexist in one file.
func TestAppendSweepTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")

	if err := AppendTrajectory(path, "2026-08-07", trajectoryReport(2e9, 1e9)); err != nil {
		t.Fatal(err)
	}
	sweep := SweepBenchReport{
		GOMAXPROCS: 8,
		Graph:      "diffeq",
		N:          2, L: 2,
		Points: []SweepBenchPoint{
			{Alpha: 0.7, WarmNS: 5e8, ColdNS: 1e9, Path: "cold"},
			{Alpha: 0.8, WarmNS: 1e8, ColdNS: 1e9, Path: "warm"},
		},
		WarmNS: 6e8, ColdNS: 2e9, Speedup: 2e9 / 6e8,
		Warm: 1, Cold: 1,
	}
	if err := AppendSweepTrajectory(path, "2026-08-08", sweep); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var series []TrajectoryEntry
	if err := json.Unmarshal(raw, &series); err != nil {
		t.Fatalf("series not valid JSON: %v\n%s", err, raw)
	}
	if len(series) != 2 {
		t.Fatalf("series length %d, want 2", len(series))
	}
	if series[0].Sweep != nil {
		t.Fatalf("benchmilp entry grew a sweep: %+v", series[0].Sweep)
	}
	e := series[1]
	if e.Date != "2026-08-08" || e.GOMAXPROCS != 8 || len(e.Results) != 0 {
		t.Fatalf("sweep entry shape wrong: %+v", e)
	}
	if e.Sweep == nil {
		t.Fatal("sweep entry missing Sweep distillation")
	}
	s := *e.Sweep
	if s.Graph != "diffeq" || s.Points != 2 || s.WarmMS != 600 || s.ColdMS != 2000 || s.Warm != 1 || s.Reuse != 0 {
		t.Fatalf("sweep distillation wrong: %+v", s)
	}
	if s.Speedup < 3.3 || s.Speedup > 3.4 {
		t.Fatalf("speedup %v, want 2000/600", s.Speedup)
	}
}

// TestAppendTrajectoryRejectsCorrupt refuses to overwrite a file that
// is not a trajectory series.
func TestAppendTrajectoryRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(path, "2026-08-05", trajectoryReport(1, 1)); err == nil {
		t.Fatal("corrupt series accepted")
	}
	raw, _ := os.ReadFile(path)
	if string(raw) != "{not json" {
		t.Fatalf("corrupt file was rewritten to %q", raw)
	}
}
