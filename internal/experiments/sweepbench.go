package experiments

// The warm-vs-cold design-space sweep benchmark behind cmd/tptables
// -sweepbench: one benchmark instance swept over an α grid twice —
// once chained through the delta engine (each point warm-starting or
// conclusion-reusing from its neighbor) and once solved cold from
// scratch — with a per-point verdict cross-check. The speedup column
// is the amend subsystem's headline number.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/library"
)

// SweepBenchPoint is one grid point timed both ways.
type SweepBenchPoint struct {
	Alpha float64 `json:"alpha"`
	// WarmNS is the delta-engine chained solve, ColdNS the from-scratch
	// solve of the identical instance.
	WarmNS int64 `json:"warm_ns"`
	ColdNS int64 `json:"cold_ns"`
	// Class and Path report the engine's dispatch against the previous
	// grid point.
	Class    string `json:"class,omitempty"`
	Path     string `json:"path"`
	Feasible bool   `json:"feasible"`
	Comm     int    `json:"comm,omitempty"`
}

// SweepBenchReport is the schema of the -sweepbench JSON report.
type SweepBenchReport struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	Graph      string            `json:"graph"`
	N          int               `json:"n"`
	L          int               `json:"l"`
	Points     []SweepBenchPoint `json:"points"`
	WarmNS     int64             `json:"warm_ns"`
	ColdNS     int64             `json:"cold_ns"`
	// Speedup is total cold time over total warm time across the grid.
	Speedup float64 `json:"speedup"`
	Warm    int     `json:"warm"`
	Reuse   int     `json:"reuse"`
	Cold    int     `json:"cold"`
}

// sweepBenchAlphas is the scanned α grid, ascending: each step
// tightens the capacity row (rhs C/α shrinks), so the chain exercises
// both the warm-restart and the monotone conclusion-reuse paths.
var sweepBenchAlphas = []float64{0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0}

// RunSweepBench sweeps the diffeq benchmark over the α grid warm and
// cold and cross-checks that every point agrees on feasibility and
// communication cost — the differential contract of the delta engine.
func RunSweepBench() (SweepBenchReport, error) {
	rep := SweepBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Graph:      "diffeq",
		N:          2,
		L:          2,
	}
	alloc, err := milpBenchAlloc("diffeq")
	if err != nil {
		return rep, err
	}
	g := benchmarks.All()["diffeq"]()
	opt := core.Options{
		N: rep.N, L: rep.L, Tightened: true, DisableProbe: true,
		TimeLimit: DefaultTimeLimit,
	}
	eng := delta.NewEngine(delta.Config{})
	ctx := context.Background()
	prevKey := ""
	for i, a := range sweepBenchAlphas {
		dev := library.XC4010()
		dev.Alpha = a
		inst := core.Instance{Graph: g, Alloc: alloc, Device: dev}

		key := fmt.Sprintf("sweep-%d", i)
		start := time.Now()
		warm, info, err := eng.Solve(ctx, key, prevKey, inst, opt)
		warmNS := time.Since(start).Nanoseconds()
		if err != nil {
			return rep, fmt.Errorf("alpha %g warm: %w", a, err)
		}
		prevKey = key

		start = time.Now()
		cold, err := core.SolveInstance(inst, opt)
		coldNS := time.Since(start).Nanoseconds()
		if err != nil {
			return rep, fmt.Errorf("alpha %g cold: %w", a, err)
		}

		if warm.Feasible != cold.Feasible || warm.Optimal != cold.Optimal {
			return rep, fmt.Errorf("alpha %g: warm (feas=%v opt=%v) != cold (feas=%v opt=%v)",
				a, warm.Feasible, warm.Optimal, cold.Feasible, cold.Optimal)
		}
		pt := SweepBenchPoint{
			Alpha: a, WarmNS: warmNS, ColdNS: coldNS,
			Class: info.Class, Path: info.Path, Feasible: warm.Feasible,
		}
		if warm.Feasible {
			if warm.Solution.Comm != cold.Solution.Comm {
				return rep, fmt.Errorf("alpha %g: warm comm %d != cold comm %d",
					a, warm.Solution.Comm, cold.Solution.Comm)
			}
			pt.Comm = warm.Solution.Comm
		}
		switch info.Path {
		case delta.PathWarm:
			rep.Warm++
		case delta.PathReuse:
			rep.Reuse++
		default:
			rep.Cold++
		}
		rep.Points = append(rep.Points, pt)
		rep.WarmNS += warmNS
		rep.ColdNS += coldNS
	}
	if rep.WarmNS > 0 {
		rep.Speedup = float64(rep.ColdNS) / float64(rep.WarmNS)
	}
	return rep, nil
}
