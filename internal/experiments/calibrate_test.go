package experiments

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/library"
	"repro/internal/randgraph"
	"repro/internal/sched"
)

// kindInfeasible reports a certificate that the instance cannot fit
// the step budget at all (some kind exceeds its total slots).
func kindInfeasible(g *graph.Graph, steps int, a, m, s int) bool {
	k := g.CountKinds()
	return k[graph.OpAdd] > a*steps || k[graph.OpMul] > m*steps || k[graph.OpSub] > s*steps
}

// singlePartitionImpossible reports a certificate that no FU subset
// fitting the device can execute all ops within the budget, proving
// any feasible solution uses >= 2 partitions (comm > 0 for connected
// graphs).
func singlePartitionImpossible(g *graph.Graph, alloc *library.Allocation, dev library.Device, steps int) bool {
	k := g.CountKinds()
	n := alloc.NumUnits()
	for mask := 1; mask < 1<<n; mask++ {
		fg := 0
		cnt := map[graph.OpKind]int{}
		for u := 0; u < n; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			fg += alloc.Unit(u).Type.FG
			for _, kind := range alloc.Unit(u).Type.Ops {
				cnt[kind]++
			}
		}
		if !dev.Fits(fg) {
			continue
		}
		ok := true
		for kind, need := range k {
			if need > cnt[kind]*steps {
				ok = false
				break
			}
		}
		if ok {
			return false // this subset might work
		}
	}
	return true
}

// TestCalibrate prints, per profile and seed, the heuristic
// feasibility grid over (N, L) used to select the benchmark seeds
// compiled into internal/randgraph. Gated behind TPSYN_PROBE because
// it is a calibration tool, not a correctness test; rerun it when
// changing generator parameters and update paperSeeds accordingly.
func TestCalibrate(t *testing.T) {
	if os.Getenv("TPSYN_PROBE") == "" {
		t.Skip("probe: set TPSYN_PROBE=1")
	}
	dev := Device()
	lib := library.DefaultLibrary()
	profiles := []struct {
		gnum, tasks, ops, a, m, s int
		chain                     float64
		maxN                      int
	}{
		{3, 10, 45, 2, 2, 2, 0.65, 3},
		{5, 10, 65, 2, 2, 2, 0.8, 3},
		{6, 10, 72, 2, 2, 2, 0.8, 3},
	}
	for _, pr := range profiles {
		alloc, err := library.PaperAllocation(lib, pr.a, pr.m, pr.s)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("== graph %d profile (%d/%d ops, %d+%d+%d, chain %.2f)\n",
			pr.gnum, pr.tasks, pr.ops, pr.a, pr.m, pr.s, pr.chain)
		shown := 0
		for seed := int64(100 * pr.gnum); seed < int64(100*pr.gnum)+120 && shown < 8; seed++ {
			g, err := randgraph.Generate(randgraph.Config{
				Name: fmt.Sprintf("g%d", pr.gnum), Tasks: pr.tasks, Ops: pr.ops,
				ChainProb: pr.chain}, seed)
			if err != nil {
				continue
			}
			w, _ := sched.ComputeWindows(g, nil)
			grid := ""
			anyFeasible := false
			for L := 0; L <= 2; L++ {
				steps := w.CriticalPath + L
				if kindInfeasible(g, steps, pr.a, pr.m, pr.s) {
					grid += fmt.Sprintf("L%d:INF ", L)
					continue
				}
				cell := fmt.Sprintf("L%d:", L)
				for N := 1; N <= pr.maxN; N++ {
					h, err := heuristic.Solve(g, alloc, dev, N, L)
					if err != nil || !h.Feasible {
						cell += "-"
						continue
					}
					anyFeasible = true
					switch {
					case h.Comm == 0:
						cell += "0"
					case singlePartitionImpossible(g, alloc, dev, steps):
						cell += "!"
					default:
						cell += "+"
					}
				}
				grid += cell + " "
			}
			if anyFeasible {
				k := g.CountKinds()
				fmt.Printf("seed %3d CP=%2d A%d/M%d/S%d %s\n", seed, w.CriticalPath,
					k[graph.OpAdd], k[graph.OpMul], k[graph.OpSub], grid)
				shown++
			}
		}
	}
}
