package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestBenchSuiteCertifies is the acceptance gate of the certification
// layer: every instance of the MILP benchmark suite, solved with
// Certify on, must come back with a certificate that re-verifies in
// exact arithmetic. Skipped under -short — the suite is the full
// branch-and-bound workload.
func TestBenchSuiteCertifies(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-suite solves are long")
	}
	suite, err := MILPBench()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range suite {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			opt := e.Opt
			opt.Certify = true
			res, err := core.SolveInstance(e.Inst, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Optimal {
				t.Fatalf("suite instance did not solve to optimality: %+v", res)
			}
			c := res.Certificate
			if c == nil {
				t.Fatal("certified solve attached no certificate")
			}
			if !c.Valid {
				t.Fatalf("certificate failed: %v\n%+v", c.Err(), c.Checks)
			}
			c.Check() // idempotent: re-checking must not flip the verdict
			if !c.Valid {
				t.Fatal("certificate invalid on re-check")
			}
		})
	}
}
