package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
)

// TestSuiteSelectsRevisedEngine pins the engine gate to the suite: every
// generated suite model is large and sparse (density around 1-3%), so
// lp.ChooseEngine must route all of them to the sparse revised engine —
// the instances the dense->revised migration was built for. A gate
// regression (e.g. a threshold change that silently sends fir16 back to
// the dense tableau) fails here, not in a wall-time chart.
func TestSuiteSelectsRevisedEngine(t *testing.T) {
	suite, err := MILPBench()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range suite {
		m, err := core.Build(e.Inst, e.Opt)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		st := m.Stats()
		if eng := lp.ChooseEngine(st.Vars, st.Rows, st.NNZ); eng != lp.EngineRevised {
			t.Errorf("%s (vars=%d rows=%d nnz=%d): ChooseEngine = %v, want revised",
				e.Name, st.Vars, st.Rows, st.NNZ, eng)
		}
	}
}

// TestEnginesAgreeOnSuiteInstance solves the easiest suite entry with
// both engines forced and cross-checks the verdict — the end-to-end
// companion of internal/lp's differential fuzz, through model build,
// branch and bound and solution extraction.
func TestEnginesAgreeOnSuiteInstance(t *testing.T) {
	suite, err := MILPBench()
	if err != nil {
		t.Fatal(err)
	}
	e := suite[0] // diffeq/N2L2
	type verdict struct {
		feasible, optimal bool
		comm, nodes       int
	}
	got := map[string]verdict{}
	for _, eng := range []string{"dense", "revised"} {
		opt := e.Opt
		opt.LPEngine = eng
		res, err := core.SolveInstance(e.Inst, opt)
		if err != nil {
			t.Fatalf("%s %s: %v", e.Name, eng, err)
		}
		if res.LPEngine != eng {
			t.Fatalf("%s: forced engine %q but solve reports %q", e.Name, eng, res.LPEngine)
		}
		v := verdict{feasible: res.Feasible, optimal: res.Optimal, nodes: res.Nodes}
		if res.Solution != nil {
			v.comm = res.Solution.Comm
		}
		got[eng] = v
	}
	d, r := got["dense"], got["revised"]
	if d.feasible != r.feasible || d.optimal != r.optimal || d.comm != r.comm {
		t.Fatalf("engines disagree on %s: dense %+v, revised %+v", e.Name, d, r)
	}
}
