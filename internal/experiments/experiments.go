// Package experiments defines the benchmark rows that regenerate every
// table and figure of the paper's evaluation, plus the ablations
// DESIGN.md calls out. The same row definitions drive cmd/tptables and
// the root-level testing.B benchmarks, so EXPERIMENTS.md numbers are
// reproducible from either entry point.
//
// The paper ran lp_solve on a 175 MHz UltraSparc; absolute runtimes are
// not comparable. What the rows preserve is the paper's shape: which
// configurations are feasible, the optimal communication costs, model
// growth with graph size, the speedup from the tightening cuts, and
// the node-count advantage of the paper's branching heuristic.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/lp"
	"repro/internal/randgraph"
)

// DefaultTimeLimit bounds each row's solve; rows that exceed it are
// reported like the paper's ">7200" entries.
const DefaultTimeLimit = 90 * time.Second

// Row is one experiment configuration (one table row).
type Row struct {
	// Label names the row in reports.
	Label string
	// GraphNum selects benchmark graph 1..6.
	GraphNum int
	// N, L are the partition bound and latency relaxation.
	N, L int
	// A, M, S is the FU exploration mix (adders+multipliers+subtracters).
	A, M, S int
	// Opt carries formulation switches; N/L/TimeLimit are overwritten.
	Opt core.Options
	// TimeLimit overrides DefaultTimeLimit when nonzero.
	TimeLimit time.Duration
}

// Result is the outcome of running a row.
type Result struct {
	Row      Row
	Stats    lp.Stats
	Feasible bool
	Optimal  bool
	Comm     int
	Used     int
	Nodes    int
	LPIter   int
	Runtime  time.Duration
}

// Device returns the target device used by all experiments: the
// XC4010-flavor part whose capacity cannot hold the full exploration
// set at once, making temporal partitioning meaningful.
func Device() library.Device { return library.XC4010() }

// Run executes one row.
func Run(r Row) (*Result, error) {
	g, err := randgraph.Paper(r.GraphNum)
	if err != nil {
		return nil, err
	}
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), r.A, r.M, r.S)
	if err != nil {
		return nil, err
	}
	opt := r.Opt
	opt.N, opt.L = r.N, r.L
	opt.TimeLimit = r.TimeLimit
	if opt.TimeLimit == 0 {
		opt.TimeLimit = DefaultTimeLimit
	}
	res, err := core.SolveInstance(core.Instance{Graph: g, Alloc: alloc, Device: Device()}, opt)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Row:      r,
		Stats:    res.Stats,
		Feasible: res.Feasible,
		Optimal:  res.Optimal,
		Nodes:    res.Nodes,
		LPIter:   res.LPIterations,
		Runtime:  res.Runtime,
	}
	if res.Feasible {
		out.Comm = res.Solution.Comm
		out.Used = res.Solution.UsedPartitions()
	}
	return out, nil
}

// RunAll executes rows in order, writing a table to w as it goes (pass
// nil to suppress output).
func RunAll(rows []Row, w io.Writer) ([]*Result, error) {
	if w != nil {
		fmt.Fprintf(w, "%-28s %5s %5s | %4s %2s %6s | %8s %8s %5s %4s %10s\n",
			"label", "graph", "N/L", "A+M+S", "", "", "Var", "Const", "Feas", "Comm", "RunTime")
	}
	var out []*Result
	var firstErr error
	for _, r := range rows {
		res, err := Run(r)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: row %q: %w", r.Label, err)
			}
			if w != nil {
				fmt.Fprintf(w, "%-28s ERROR: %v\n", r.Label, err)
			}
			continue // keep collecting the remaining rows
		}
		out = append(out, res)
		if w != nil {
			fmt.Fprint(w, Format(res))
		}
	}
	return out, firstErr
}

// Format renders one result row.
func Format(r *Result) string {
	feas := "No"
	if r.Feasible {
		feas = "Yes"
	}
	runtime := fmt.Sprintf("%.2fs", r.Runtime.Seconds())
	if !r.Optimal {
		runtime = ">" + runtime // limit hit, as in the paper's >7200 rows
		if r.Feasible {
			feas = "Yes*" // incumbent found, optimality unproved
		} else {
			feas = "?"
		}
	}
	comm := "-"
	if r.Feasible {
		comm = fmt.Sprintf("%d(u%d)", r.Comm, r.Used)
	}
	return fmt.Sprintf("%-28s %5d %2d/%-2d | %d+%d+%d    | %8d %8d %5s %4s %10s  nodes=%d\n",
		r.Row.Label, r.Row.GraphNum, r.Row.N, r.Row.L,
		r.Row.A, r.Row.M, r.Row.S,
		r.Stats.Vars, r.Stats.Rows, feas, comm, runtime, r.Nodes)
}
