package experiments

// The performance trajectory: a dated, append-only distillation of the
// serial-vs-parallel suite kept in BENCH_trajectory.json at the repo
// root. Each CI bench-smoke run appends one entry, so regressions show
// up as a time series rather than a single overwritten snapshot.

import (
	"encoding/json"
	"fmt"
	"os"
)

// TrajectoryResult is one suite entry distilled to the numbers worth
// tracking over time.
type TrajectoryResult struct {
	Name       string  `json:"name"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// Nodes is the serial node count: a model or solver change that
	// alters the search tree shows here even when wall time hides it.
	Nodes int `json:"nodes"`
	// Pivots, PivotsPerSec and NSPerPivot track the serial run's simplex
	// throughput — the numbers an LP-engine change (dense tableau vs
	// sparse revised simplex) moves even when the tree is unchanged.
	// Engine names the LP engine the serial run selected.
	Pivots       int     `json:"pivots,omitempty"`
	PivotsPerSec float64 `json:"pivots_per_sec,omitempty"`
	NSPerPivot   float64 `json:"ns_per_pivot,omitempty"`
	Engine       string  `json:"engine,omitempty"`
}

// SweepTrajectory distills one -sweepbench run: total warm-chained vs
// cold wall time over the α grid and the path mix.
type SweepTrajectory struct {
	Graph   string  `json:"graph"`
	Points  int     `json:"points"`
	WarmMS  float64 `json:"warm_ms"`
	ColdMS  float64 `json:"cold_ms"`
	Speedup float64 `json:"speedup"`
	Warm    int     `json:"warm"`
	Reuse   int     `json:"reuse"`
}

// LoadTrajectory distills one cmd/tpload run against a live tpserve:
// client-observed throughput and latency percentiles, the shed and
// warm accounting, and — in compare mode — the batch/warm-chain
// speedup over cold individual submissions of the same workload.
type LoadTrajectory struct {
	Mode     string  `json:"mode"`
	Requests int     `json:"requests"`
	Workers  int     `json:"workers"`
	RPS      float64 `json:"rps"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	// Shed counts 429 responses, Malformed responses that violated the
	// envelope/header contract (must be 0 on a healthy server).
	Shed      int `json:"shed"`
	Malformed int `json:"malformed"`
	// Warm/Reuse/Cold are the server's delta-path accounting deltas
	// over the run.
	Warm  int `json:"warm,omitempty"`
	Reuse int `json:"reuse,omitempty"`
	Cold  int `json:"cold,omitempty"`
	// ColdMS/BatchMS and Speedup are compare-mode only: summed
	// per-request solve time of the individual-cold phase vs the
	// batch/warm-chain phase of the same neighboring-instance workload.
	ColdMS  float64 `json:"cold_ms,omitempty"`
	BatchMS float64 `json:"batch_ms,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
}

// TrajectoryEntry is one dated point of the series: a serial-vs-
// parallel suite distillation, a warm-vs-cold sweep distillation, a
// tpload traffic distillation, or any combination.
type TrajectoryEntry struct {
	// Date is the run date, YYYY-MM-DD.
	Date        string             `json:"date"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Parallelism int                `json:"parallelism,omitempty"`
	Results     []TrajectoryResult `json:"results,omitempty"`
	// Sweep is the warm-vs-cold design-space sweep distillation
	// appended by tptables -sweepbench.
	Sweep *SweepTrajectory `json:"sweep,omitempty"`
	// Load is the tpload traffic-harness distillation appended by
	// tpload -trajectory.
	Load *LoadTrajectory `json:"load,omitempty"`
}

// distillTrajectory reduces a full suite report to a trajectory entry.
func distillTrajectory(date string, rep MILPBenchReport) TrajectoryEntry {
	e := TrajectoryEntry{
		Date:        date,
		GOMAXPROCS:  rep.GOMAXPROCS,
		Parallelism: rep.Parallelism,
	}
	for _, r := range rep.Entries {
		e.Results = append(e.Results, TrajectoryResult{
			Name:         r.Name,
			SerialMS:     float64(r.Serial.NS) / 1e6,
			ParallelMS:   float64(r.Parallel.NS) / 1e6,
			Speedup:      r.Speedup,
			Nodes:        r.Serial.Nodes,
			Pivots:       r.Serial.LPPivots,
			PivotsPerSec: r.Serial.PivotsPerSec,
			NSPerPivot:   r.Serial.NSPerPivot,
			Engine:       r.Serial.Engine,
		})
	}
	return e
}

// AppendTrajectory appends a dated distillation of rep to the JSON
// array at path. A missing file starts a new series; a corrupt one is
// an error, never silently overwritten.
func AppendTrajectory(path, date string, rep MILPBenchReport) error {
	return appendTrajectoryEntry(path, distillTrajectory(date, rep))
}

// AppendSweepTrajectory appends a dated distillation of a -sweepbench
// run to the same series file the -benchmilp distillations land in.
func AppendSweepTrajectory(path, date string, rep SweepBenchReport) error {
	return appendTrajectoryEntry(path, TrajectoryEntry{
		Date:       date,
		GOMAXPROCS: rep.GOMAXPROCS,
		Sweep: &SweepTrajectory{
			Graph:   rep.Graph,
			Points:  len(rep.Points),
			WarmMS:  float64(rep.WarmNS) / 1e6,
			ColdMS:  float64(rep.ColdNS) / 1e6,
			Speedup: rep.Speedup,
			Warm:    rep.Warm,
			Reuse:   rep.Reuse,
		},
	})
}

// AppendLoadTrajectory appends a dated tpload distillation to the same
// series file the bench distillations land in.
func AppendLoadTrajectory(path, date string, gomaxprocs int, load LoadTrajectory) error {
	return appendTrajectoryEntry(path, TrajectoryEntry{
		Date:       date,
		GOMAXPROCS: gomaxprocs,
		Load:       &load,
	})
}

func appendTrajectoryEntry(path string, entry TrajectoryEntry) error {
	var series []TrajectoryEntry
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &series); err != nil {
			return fmt.Errorf("experiments: %s is not a trajectory series: %w", path, err)
		}
	case os.IsNotExist(err):
		// first run: start the series
	default:
		return err
	}
	series = append(series, entry)
	out, err := json.MarshalIndent(series, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
