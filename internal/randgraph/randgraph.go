// Package randgraph generates seeded random task graphs. The paper
// evaluates on six random graphs characterized only by task and
// operation counts (Table 4); this package reconstructs instances with
// the same profile, deterministically, so every table in the benchmark
// harness is reproducible run to run.
package randgraph

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Config parameterizes generation.
type Config struct {
	// Name labels the generated graph.
	Name string
	// Tasks and Ops set the size profile.
	Tasks, Ops int
	// TaskEdgeProb is the probability of a dependency between a task
	// and each later task (a DAG by construction). Defaults to 0.3.
	TaskEdgeProb float64
	// OpEdgeProb is the probability of an intra-task dependency
	// between an op and each later op of the same task. Defaults 0.4.
	OpEdgeProb float64
	// ChainProb is the probability that an op depends on the
	// immediately preceding op of its task, deepening the graph:
	// higher values produce more serial specifications. Default 0.
	ChainProb float64
	// MaxBandwidth bounds task-edge bandwidths (uniform 1..Max).
	// Defaults to 8.
	MaxBandwidth int
	// Kinds is the operation-kind palette with weights; nil uses a
	// DSP-flavored add/sub/mul mix.
	Kinds []WeightedKind
}

// WeightedKind pairs an operation kind with a sampling weight.
type WeightedKind struct {
	Kind   graph.OpKind
	Weight int
}

func (c *Config) defaults() {
	if c.TaskEdgeProb == 0 {
		c.TaskEdgeProb = 0.15
	}
	if c.OpEdgeProb == 0 {
		c.OpEdgeProb = 0.2
	}
	if c.MaxBandwidth == 0 {
		c.MaxBandwidth = 8
	}
	if c.Kinds == nil {
		c.Kinds = []WeightedKind{
			{graph.OpAdd, 45},
			{graph.OpSub, 15},
			{graph.OpMul, 40},
		}
	}
}

// Generate builds a random graph from the config and seed. The same
// (config, seed) always yields the same graph.
func Generate(cfg Config, seed int64) (*graph.Graph, error) {
	cfg.defaults()
	if cfg.Tasks < 1 || cfg.Ops < cfg.Tasks {
		return nil, fmt.Errorf("randgraph: need >=1 task and ops >= tasks (got %d/%d)", cfg.Tasks, cfg.Ops)
	}
	r := rand.New(rand.NewSource(seed))
	g := graph.New(cfg.Name)

	totalWeight := 0
	for _, wk := range cfg.Kinds {
		totalWeight += wk.Weight
	}
	pick := func() graph.OpKind {
		v := r.Intn(totalWeight)
		for _, wk := range cfg.Kinds {
			if v < wk.Weight {
				return wk.Kind
			}
			v -= wk.Weight
		}
		return cfg.Kinds[len(cfg.Kinds)-1].Kind
	}

	// distribute ops over tasks: one guaranteed each, remainder random
	opsOf := make([]int, cfg.Tasks)
	for t := range opsOf {
		opsOf[t] = 1
	}
	for n := cfg.Tasks; n < cfg.Ops; n++ {
		opsOf[r.Intn(cfg.Tasks)]++
	}
	taskOps := make([][]int, cfg.Tasks)
	for t := 0; t < cfg.Tasks; t++ {
		id := g.AddTask(fmt.Sprintf("t%d", t))
		for n := 0; n < opsOf[t]; n++ {
			taskOps[t] = append(taskOps[t], g.AddOp(id, pick(), ""))
		}
	}
	// intra-task DAG, kept wide: each op other than the task's first
	// draws at most a couple of predecessors among earlier ops, so
	// tasks expose parallelism instead of degenerating into chains.
	for t := 0; t < cfg.Tasks; t++ {
		ops := taskOps[t]
		for b := 1; b < len(ops); b++ {
			if r.Float64() < cfg.ChainProb {
				g.AddOpEdge(ops[b-1], ops[b])
			}
			for tries := 0; tries < 2; tries++ {
				if r.Float64() < cfg.OpEdgeProb {
					g.AddOpEdge(ops[r.Intn(b)], ops[b])
				}
			}
		}
	}
	// inter-task edges t1 -> t2 for t1 < t2, realized op-to-op.
	// Weak connectivity comes from a random predecessor tree (every
	// task after the first links back to one earlier task), which
	// keeps the task graph branchy rather than a deep chain.
	for t2 := 1; t2 < cfg.Tasks; t2++ {
		parent := r.Intn(t2)
		for t1 := 0; t1 < t2; t1++ {
			force := t1 == parent
			if !force && r.Float64() >= cfg.TaskEdgeProb {
				continue
			}
			from := taskOps[t1][r.Intn(len(taskOps[t1]))]
			to := taskOps[t2][r.Intn(len(taskOps[t2]))]
			g.Connect(from, to, 1+r.Intn(cfg.MaxBandwidth))
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("randgraph: generated invalid graph: %w", err)
	}
	return g, nil
}

// paperProfiles reproduce the Tasks/Opers columns of the paper's
// Table 4 for graphs 1-6.
// Depth (ChainProb) grows with size so that critical paths scale
// roughly like ops/4 — the regime in which the paper's FU mixes are
// neither trivially sequential nor hopelessly over-parallel.
var paperProfiles = []Config{
	{Name: "graph1", Tasks: 5, Ops: 22},
	{Name: "graph2", Tasks: 10, Ops: 37, ChainProb: 0.45},
	{Name: "graph3", Tasks: 10, Ops: 45, ChainProb: 0.65},
	{Name: "graph4", Tasks: 10, Ops: 44, ChainProb: 0.55},
	{Name: "graph5", Tasks: 10, Ops: 65, ChainProb: 0.8},
	{Name: "graph6", Tasks: 10, Ops: 72, ChainProb: 0.8},
}

// paperSeeds fix the six instances. They were selected by a
// calibration pass (see DESIGN.md): each graph exhibits the regime its
// paper counterpart needs — graph 1 shows the Table 3 cascade
// (infeasible when tight, forced multi-segment split, single-segment
// collapse), graphs 2 and 3 have provably forced splits, graphs 4-6
// are feasible at the paper's configurations. Changing generator
// parameters invalidates these seeds.
var paperSeeds = []int64{126, 241, 374, 409, 574, 604}

// NumPaperGraphs is the number of benchmark graphs (6, as in Table 4).
const NumPaperGraphs = 6

// Paper returns benchmark graph n (1-based, 1..6) with the paper's
// task/op profile.
func Paper(n int) (*graph.Graph, error) {
	if n < 1 || n > len(paperProfiles) {
		return nil, fmt.Errorf("randgraph: no paper graph %d", n)
	}
	return Generate(paperProfiles[n-1], paperSeeds[n-1])
}

// MustPaper is Paper that panics on error, for benchmarks and examples.
func MustPaper(n int) *graph.Graph {
	g, err := Paper(n)
	if err != nil {
		panic(err)
	}
	return g
}

// Tiny generates a small instance suitable for the exhaustive oracle:
// up to 4 tasks and 8 ops.
func Tiny(seed int64) (*graph.Graph, error) {
	r := rand.New(rand.NewSource(seed))
	tasks := 2 + r.Intn(3)
	ops := tasks + r.Intn(8-tasks+1)
	return Generate(Config{
		Name:         fmt.Sprintf("tiny%d", seed),
		Tasks:        tasks,
		Ops:          ops,
		TaskEdgeProb: 0.4,
		OpEdgeProb:   0.5,
		MaxBandwidth: 5,
	}, seed*7919+13)
}
