package randgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "d", Tasks: 6, Ops: 20}
	a, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different graphs")
	}
	c, err := Generate(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateProfile(t *testing.T) {
	g, err := Generate(Config{Name: "p", Tasks: 7, Ops: 31}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 7 || g.NumOps() != 31 {
		t.Fatalf("profile = %d/%d, want 7/31", g.NumTasks(), g.NumOps())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Tasks: 0, Ops: 5}, 1); err == nil {
		t.Error("0 tasks accepted")
	}
	if _, err := Generate(Config{Tasks: 5, Ops: 3}, 1); err == nil {
		t.Error("ops < tasks accepted")
	}
}

func TestPaperGraphs(t *testing.T) {
	wantTasks := []int{5, 10, 10, 10, 10, 10}
	wantOps := []int{22, 37, 45, 44, 65, 72}
	for n := 1; n <= NumPaperGraphs; n++ {
		g, err := Paper(n)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumTasks() != wantTasks[n-1] || g.NumOps() != wantOps[n-1] {
			t.Errorf("graph %d: %d/%d, want %d/%d", n, g.NumTasks(), g.NumOps(), wantTasks[n-1], wantOps[n-1])
		}
		if err := g.Validate(); err != nil {
			t.Errorf("graph %d: %v", n, err)
		}
		// tree connectivity: every task after the first has a
		// predecessor
		for tk := 1; tk < g.NumTasks(); tk++ {
			if len(g.TaskPred(tk)) == 0 {
				t.Errorf("graph %d: task %d has no predecessor", n, tk)
			}
		}
	}
	if _, err := Paper(0); err == nil {
		t.Error("graph 0 accepted")
	}
	if _, err := Paper(7); err == nil {
		t.Error("graph 7 accepted")
	}
}

func TestTinyWithinOracleLimits(t *testing.T) {
	f := func(seed int64) bool {
		g, err := Tiny(seed)
		if err != nil {
			return false
		}
		return g.NumTasks() <= 4 && g.NumOps() <= 8 && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCustomKinds(t *testing.T) {
	g, err := Generate(Config{
		Name: "k", Tasks: 3, Ops: 12,
		Kinds: []WeightedKind{{graph.OpDiv, 1}},
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range g.Ops() {
		if op.Kind != graph.OpDiv {
			t.Fatalf("op %d kind %s, want div only", op.ID, op.Kind)
		}
	}
}
