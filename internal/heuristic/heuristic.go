// Package heuristic implements a fast, non-optimal temporal
// partitioning flow: it enumerates task-to-segment assignments with
// order/memory/cost pruning and certifies each candidate with the
// resource-constrained list scheduler. It serves three roles:
//
//   - the fast baseline the ILP's optimal results are contrasted with,
//   - an upper-bound provider (a heuristic-feasible design is
//     ILP-feasible by construction, so its cost can prime the
//     branch-and-bound incumbent),
//   - the estimator behind the N-segment bound of the paper's flow.
package heuristic

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/sched"
)

// Result is the outcome of a heuristic solve.
type Result struct {
	// Feasible reports whether any enumerated assignment schedules
	// within the step budget. The heuristic scheduler is not exact:
	// Feasible=false does NOT prove ILP infeasibility.
	Feasible bool
	// Segment is the best task-to-segment assignment found (1-based).
	Segment []int
	// Comm is its communication cost (an upper bound on the optimum).
	Comm int
	// Steps is the total schedule length of the best assignment.
	Steps int
	// Explored counts enumerated assignments.
	Explored int
}

// Solve enumerates assignments of tasks to at most N segments and
// returns the cheapest one the list scheduler can realize within the
// CP+L step budget. Enumeration is pruned by task order, scratch
// memory, and the best cost found so far.
func Solve(g *graph.Graph, alloc *library.Allocation, dev library.Device, N, L int) (*Result, error) {
	return SolveBudget(g, alloc, dev, N, L, 0)
}

// SolveBudget is Solve with a cap on evaluated leaf assignments
// (0 = unlimited). A capped run still returns a valid (possibly
// non-minimal) feasible assignment when one was found before the cap.
func SolveBudget(g *graph.Graph, alloc *library.Allocation, dev library.Device, N, L, maxLeaves int) (*Result, error) {
	if k, ok := alloc.Covers(g); !ok {
		return nil, fmt.Errorf("heuristic: no unit executes %q", k)
	}
	w, err := sched.ComputeWindows(g, nil)
	if err != nil {
		return nil, err
	}
	order, err := g.TopoTasks()
	if err != nil {
		return nil, err
	}
	res := &Result{}
	nt := g.NumTasks()
	assign := make([]int, nt)
	pos := make([]int, nt) // task -> position in topo order
	for i, t := range order {
		pos[t] = i
	}
	bestComm := -1
	bestSteps := 0
	var bestAssign []int
	budget := w.MaxStep(L)

	var rec func(idx int, partial int)
	rec = func(idx, partial int) {
		if maxLeaves > 0 && res.Explored >= maxLeaves {
			return // leaf budget exhausted; keep the best found so far
		}
		if bestComm >= 0 && partial >= bestComm {
			return // cannot beat the incumbent
		}
		if idx == nt {
			res.Explored++
			// memory check at every boundary
			for p := 2; p <= N; p++ {
				if sched.MemoryAt(g, assign, p) > dev.ScratchMem {
					return
				}
			}
			steps, ok := schedulable(g, alloc, dev, w, assign, N, budget)
			if !ok {
				return
			}
			bestComm = partial
			bestSteps = steps
			bestAssign = append(bestAssign[:0], assign...)
			return
		}
		t := order[idx]
		lo := 1
		for _, pr := range g.TaskPred(t) {
			if assign[pr] > lo {
				lo = assign[pr] // predecessors are earlier in topo order
			}
		}
		for p := lo; p <= N; p++ {
			assign[t] = p
			// incremental comm: edges from already-assigned preds
			delta := 0
			for _, pr := range g.TaskPred(t) {
				delta += g.Bandwidth(pr, t) * (p - assign[pr])
			}
			rec(idx+1, partial+delta)
		}
		assign[t] = 0
	}
	rec(0, 0)
	if bestComm >= 0 {
		res.Feasible = true
		res.Comm = bestComm
		res.Steps = bestSteps
		res.Segment = bestAssign
	}
	return res, nil
}

// schedulable list-schedules every segment of the assignment and
// reports the total step count and whether it fits the budget.
func schedulable(g *graph.Graph, alloc *library.Allocation, dev library.Device, w *sched.Windows, assign []int, N, budget int) (int, bool) {
	plan := &sched.SegmentPlan{Segment: assign, N: N}
	asg, err := sched.HeuristicSchedule(g, alloc, dev, w, plan)
	if err != nil {
		return 0, false
	}
	return asg.Span, asg.Span <= budget
}
