package heuristic_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/library"
	"repro/internal/randgraph"
)

func TestSolveSimpleSplit(t *testing.T) {
	g := graph.New("s")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t1, graph.OpMul, "")
	g.Connect(a, b, 3)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// device fits only one FU kind at a time -> forced split, comm 3
	dev := library.Device{Name: "tiny", CapacityFG: 96, Alpha: 1.0, ScratchMem: 64}
	res, err := heuristic.Solve(g, alloc, dev, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Comm != 3 {
		t.Fatalf("feasible=%v comm=%d, want true/3", res.Feasible, res.Comm)
	}
	// with a roomy device everything shares one segment: comm 0
	res, err = heuristic.Solve(g, alloc, library.XC4025(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Comm != 0 {
		t.Fatalf("feasible=%v comm=%d, want true/0", res.Feasible, res.Comm)
	}
}

func TestSolveInfeasibleBudget(t *testing.T) {
	// 4 muls on 1 multiplier: CP=1 but 4 steps needed; L=0 budget is 1
	g := graph.New("m")
	t0 := g.AddTask("t0")
	for i := 0; i < 4; i++ {
		g.AddOp(t0, graph.OpMul, "")
	}
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := heuristic.Solve(g, alloc, library.XC4025(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("4 muls cannot fit 1 step on 1 multiplier")
	}
	res, err = heuristic.Solve(g, alloc, library.XC4025(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Steps != 4 {
		t.Fatalf("feasible=%v steps=%d, want true/4", res.Feasible, res.Steps)
	}
}

// The heuristic's cost upper-bounds the ILP optimum, and a
// heuristic-feasible instance is ILP-feasible.
func TestHeuristicUpperBoundsOptimum(t *testing.T) {
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev := library.Device{Name: "d", CapacityFG: 130, Alpha: 1.0, ScratchMem: 64}
	for seed := int64(1); seed <= 12; seed++ {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Fatal(err)
		}
		h, err := heuristic.Solve(g, alloc, dev, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.SolveInstance(
			core.Instance{Graph: g, Alloc: alloc, Device: dev},
			core.Options{N: 2, L: 1, Tightened: true})
		if err != nil {
			t.Fatal(err)
		}
		if h.Feasible && !res.Feasible {
			t.Fatalf("seed %d: heuristic feasible but ILP infeasible", seed)
		}
		if h.Feasible && res.Feasible && res.Solution.Comm > h.Comm {
			t.Fatalf("seed %d: optimum %d > heuristic %d", seed, res.Solution.Comm, h.Comm)
		}
	}
}
