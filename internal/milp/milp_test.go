package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
)

// knapsack builds max sum v_j x_j s.t. sum w_j x_j <= cap as a
// minimization problem (costs negated).
func knapsack(values, weights []float64, cap float64) (*lp.Problem, []int) {
	p := &lp.Problem{}
	var cols []int
	for j := range values {
		cols = append(cols, p.AddBinary("x", -values[j]))
	}
	_ = p.AddLE("cap", cols, weights, cap)
	return p, cols
}

// bruteKnapsack returns the optimal (maximal) value by enumeration.
func bruteKnapsack(values, weights []float64, cap float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		v, w := 0.0, 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				v += values[j]
				w += weights[j]
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackSmall(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5}
	weights := []float64{2, 3, 2, 5, 1}
	p, cols := knapsack(values, weights, 7)
	res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	want := bruteKnapsack(values, weights, 7)
	if math.Abs(-res.Objective-want) > 1e-6 {
		t.Fatalf("objective = %v, want %v", -res.Objective, want)
	}
	// solution must be integral and feasible
	if err := p.Feasible(res.X, 1e-6); err != nil {
		t.Fatal(err)
	}
	for _, j := range cols {
		if f := math.Abs(res.X[j] - math.Round(res.X[j])); f > 1e-6 {
			t.Fatalf("x[%d] = %v not integral", j, res.X[j])
		}
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := &lp.Problem{}
	x := p.AddBinary("x", 1)
	y := p.AddBinary("y", 1)
	// x + y >= 3 is impossible for binaries
	_ = p.AddGE("g", []int{x, y}, []float64{1, 1}, 3)
	res, err := Solve(p, Options{IntVars: []int{x, y}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v", res.Status)
	}
}

// fractional LP, integral ILP: LP optimum 0.5/0.5, ILP must pick a vertex.
func TestIntegralityGap(t *testing.T) {
	p := &lp.Problem{}
	x := p.AddBinary("x", -1)
	y := p.AddBinary("y", -1)
	_ = p.AddLE("c", []int{x, y}, []float64{2, 2}, 2) // x + y <= 1 effectively
	res, err := Solve(p, Options{IntVars: []int{x, y}, ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-1)) > 1e-9 {
		t.Fatalf("objective = %v, want -1", res.Objective)
	}
}

func TestAllBranchersAgree(t *testing.T) {
	values := []float64{7, 2, 9, 4, 6, 3, 8}
	weights := []float64{3, 1, 4, 2, 3, 1, 4}
	want := bruteKnapsack(values, weights, 9)
	p, cols := knapsack(values, weights, 9)
	branchers := map[string]Brancher{
		"default(nil)":   nil,
		"first-frac":     FirstFractional(cols),
		"most-frac":      MostFractional(cols),
		"priority":       PriorityBrancher(cols),
		"priority-tiers": PriorityBrancher(cols[:3], cols[3:]),
	}
	for name, br := range branchers {
		res, err := Solve(p, Options{IntVars: cols, Brancher: br, ObjIntegral: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Status != StatusOptimal {
			t.Fatalf("%s: status = %v", name, res.Status)
		}
		if math.Abs(-res.Objective-want) > 1e-6 {
			t.Fatalf("%s: objective = %v, want %v", name, -res.Objective, want)
		}
	}
}

func TestInitialUpperPrunes(t *testing.T) {
	values := []float64{5, 4, 3}
	weights := []float64{2, 2, 2}
	p, cols := knapsack(values, weights, 4)
	// optimum is -9; an initial upper of -9 means nothing strictly
	// better exists -> StatusInfeasible with nil X.
	res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true, InitialUpper: -9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible || res.X != nil {
		t.Fatalf("status = %v X=%v, want infeasible/nil", res.Status, res.X)
	}
	// a looser initial upper still lets the solver find -9.
	res, err = Solve(p, Options{IntVars: cols, ObjIntegral: true, InitialUpper: -8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Objective-(-9)) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal -9", res.Status, res.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	// a knapsack large enough to need more than 2 nodes
	values := []float64{10, 13, 8, 21, 5, 7, 9, 12}
	weights := []float64{2, 3, 2, 5, 1, 2, 3, 4}
	p, cols := knapsack(values, weights, 10)
	res, err := Solve(p, Options{IntVars: cols, MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusOptimal {
		t.Fatalf("optimal claimed under MaxNodes=2 (nodes=%d)", res.Nodes)
	}
}

func TestTimeLimitRespected(t *testing.T) {
	values := make([]float64, 24)
	weights := make([]float64, 24)
	r := rand.New(rand.NewSource(7))
	for i := range values {
		values[i] = 1 + float64(r.Intn(100))
		weights[i] = 1 + float64(r.Intn(50))
	}
	p, cols := knapsack(values, weights, 200)
	start := time.Now()
	res, err := Solve(p, Options{IntVars: cols, TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("time limit ignored: ran %v", el)
	}
	_ = res
}

func TestOptionValidation(t *testing.T) {
	p := &lp.Problem{}
	x := p.AddBinary("x", 1)
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("empty IntVars accepted")
	}
	if _, err := Solve(p, Options{IntVars: []int{5}}); err == nil {
		t.Error("out-of-range int var accepted")
	}
	p2 := &lp.Problem{}
	y := p2.AddVar("y", 1, 0, 3)
	if _, err := Solve(p2, Options{IntVars: []int{y}}); err == nil {
		t.Error("non-binary int var accepted")
	}
	_ = x
}

func TestUnboundedRejected(t *testing.T) {
	p := &lp.Problem{}
	x := p.AddBinary("x", 0)
	f := p.AddVar("f", -1, 0, lp.Inf)
	_ = p.AddGE("g", []int{x, f}, []float64{1, 1}, 0)
	if _, err := Solve(p, Options{IntVars: []int{x}}); err == nil {
		t.Error("unbounded relaxation accepted")
	}
}

// Property: MILP optimum equals brute force on random small knapsacks
// with an extra side constraint.
func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		values := make([]float64, n)
		weights := make([]float64, n)
		conflictA, conflictB := -1, -1
		for j := range values {
			values[j] = float64(1 + r.Intn(20))
			weights[j] = float64(1 + r.Intn(8))
		}
		if n >= 2 {
			conflictA, conflictB = r.Intn(n), r.Intn(n)
			if conflictA == conflictB {
				conflictB = (conflictA + 1) % n
			}
		}
		cap := 1 + float64(r.Intn(20))
		p, cols := knapsack(values, weights, cap)
		if conflictA >= 0 {
			_ = p.AddLE("conflict", []int{cols[conflictA], cols[conflictB]}, []float64{1, 1}, 1)
		}
		res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true})
		if err != nil || res.Status != StatusOptimal {
			return false
		}
		// brute force with the conflict constraint
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			if conflictA >= 0 && mask&(1<<conflictA) != 0 && mask&(1<<conflictB) != 0 {
				continue
			}
			v, w := 0.0, 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					v += values[j]
					w += weights[j]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		if math.Abs(-res.Objective-best) > 1e-6 {
			return false
		}
		return p.Feasible(res.X, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusOptimal.String() != "optimal" || StatusInfeasible.String() != "infeasible" ||
		StatusFeasible.String() != "feasible" || StatusLimit.String() != "limit" {
		t.Fatal("bad status strings")
	}
}

func TestProbeIncumbentAndPrune(t *testing.T) {
	// max x0+x1 s.t. x0+x1 <= 1 (as min of negation); optimum -1.
	p := &lp.Problem{}
	x0 := p.AddBinary("x0", -1)
	x1 := p.AddBinary("x1", -1)
	_ = p.AddLE("c", []int{x0, x1}, []float64{1, 1}, 1)
	probed := 0
	probe := func(x []float64, bound func(int) (float64, float64)) ([]float64, bool) {
		probed++
		// hand the solver a known optimal point
		return []float64{1, 0}, false
	}
	res, err := Solve(p, Options{IntVars: []int{x0, x1}, ObjIntegral: true, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Objective-(-1)) > 1e-9 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	if probed == 0 {
		t.Fatal("probe never called")
	}
	if res.Nodes != 1 {
		t.Fatalf("nodes = %d, want 1 (root fathomed by probe)", res.Nodes)
	}
}

func TestProbeExhaustedPrunes(t *testing.T) {
	// feasible problem, but a probe that declares every node exhausted
	// forces an (incorrectly) empty search: the solver must trust it.
	p := &lp.Problem{}
	x0 := p.AddBinary("x0", -1)
	_ = p.AddLE("c", []int{x0}, []float64{1}, 1)
	probe := func(x []float64, bound func(int) (float64, float64)) ([]float64, bool) {
		return nil, true
	}
	res, err := Solve(p, Options{IntVars: []int{x0}, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible (probe pruned everything)", res.Status)
	}
}

func TestProbeRejectsBadCandidate(t *testing.T) {
	p := &lp.Problem{}
	x0 := p.AddBinary("x0", -1)
	x1 := p.AddBinary("x1", -1)
	_ = p.AddLE("c", []int{x0, x1}, []float64{1, 1}, 1)
	probe := func(x []float64, bound func(int) (float64, float64)) ([]float64, bool) {
		return []float64{1, 1}, false // violates the constraint
	}
	res, err := Solve(p, Options{IntVars: []int{x0, x1}, ObjIntegral: true, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	// the bogus candidate must be ignored; branching finds the optimum
	if res.Status != StatusOptimal || math.Abs(res.Objective-(-1)) > 1e-9 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
}

func TestPseudoCostBrancher(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5, 7}
	weights := []float64{2, 3, 2, 5, 1, 2}
	want := bruteKnapsack(values, weights, 8)
	p, cols := knapsack(values, weights, 8)
	pc := NewPseudoCost(cols)
	res, err := Solve(p, Options{IntVars: cols, Brancher: pc, ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(-res.Objective-want) > 1e-6 {
		t.Fatalf("status=%v obj=%v want %v", res.Status, -res.Objective, want)
	}
	// learning improves estimates without breaking optimality
	pc.Observe(cols[0], true, -30, -25)
	pc.Observe(cols[0], false, -30, -28)
	res, err = Solve(p, Options{IntVars: cols, Brancher: pc, ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(-res.Objective-want) > 1e-6 {
		t.Fatalf("after learning: status=%v obj=%v", res.Status, -res.Objective)
	}
}

func TestProbeSeesBranchingBounds(t *testing.T) {
	sawFixed := false
	p2 := &lp.Problem{}
	y0 := p2.AddBinary("y0", -1)
	y1 := p2.AddBinary("y1", -1)
	_ = p2.AddLE("c", []int{y0, y1}, []float64{2, 2}, 3) // y0+y1 <= 1.5: fractional vertex
	res, err := Solve(p2, Options{
		IntVars:  []int{y0, y1},
		Brancher: FirstFractional([]int{y0, y1}),
		Probe: func(x []float64, bound func(int) (float64, float64)) ([]float64, bool) {
			lo, hi := bound(y0)
			if hi-lo < 1e-9 {
				sawFixed = true
			}
			return nil, false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if !sawFixed {
		t.Fatal("probe never observed a branching-fixed bound")
	}
}
