package milp

import (
	"math"
	"sync/atomic"
	"time"
)

// Worker phases for the live-introspection surface: the coarse state of
// each branch-and-bound worker, updated at subproblem granularity (not
// per node) so the node loop stays untouched.
const (
	wpIdle   int32 = iota // not yet started
	wpSearch              // exploring a subtree
	wpWait                // blocked waiting for work to steal
	wpDone                // finished
)

var workerPhaseNames = [...]string{"idle", "search", "wait", "done"}

// SearchStatus is a live handle onto an in-flight solve. A caller
// passes one through Options.Status; SolveContext attaches it once the
// search plan is decided and marks it finished on return, and Snapshot
// may be polled from any goroutine while the solve runs — every figure
// is read from the atomic mirrors the search already maintains (the
// global node counter, the CAS incumbent and display-bound channels,
// the steal pool's open/steal/pick counters and the per-worker phase
// slots), so polling costs the solve nothing.
//
// The zero value is ready to use; a nil *SearchStatus is the valid
// "off" state (Snapshot reports ok=false).
type SearchStatus struct {
	live atomic.Pointer[liveSearch]
}

// NewSearchStatus returns an empty handle to pass as Options.Status.
func NewSearchStatus() *SearchStatus { return &SearchStatus{} }

type liveSearch struct {
	sh      *shared
	mode    SearchMode
	workers int
	start   time.Time
	done    atomic.Bool
}

// SearchSnapshot is one poll of a live search — the JSON-stable row of
// the service's /v1/debug/solves report. Gap is the relative
// optimality gap (gapOf) when both an incumbent and a bound exist and
// -1 ("unknown") otherwise, so the field is always present for
// monitoring scrapes. WorkerPhases[0] is the serial/coordinator slot;
// slots 1..Workers are the parallel workers.
type SearchSnapshot struct {
	Running      bool     `json:"running"`
	Mode         string   `json:"mode"`
	Workers      int      `json:"workers"`
	ElapsedMS    float64  `json:"elapsed_ms"`
	Nodes        int64    `json:"nodes"`
	HasIncumbent bool     `json:"has_incumbent"`
	Incumbent    float64  `json:"incumbent,omitempty"`
	HasBound     bool     `json:"has_bound"`
	Bound        float64  `json:"bound,omitempty"`
	Gap          float64  `json:"gap"`
	Open         int64    `json:"open"`
	Steals       int64    `json:"steals"`
	Picks        int64    `json:"picks"`
	WorkerPhases []string `json:"worker_phases,omitempty"`
}

// Snapshot reads the live figures; ok is false until a solve attaches
// the handle (and on a nil receiver).
func (st *SearchStatus) Snapshot() (SearchSnapshot, bool) {
	if st == nil {
		return SearchSnapshot{}, false
	}
	ls := st.live.Load()
	if ls == nil {
		return SearchSnapshot{}, false
	}
	sh := ls.sh
	snap := SearchSnapshot{
		Running:   !ls.done.Load(),
		Mode:      ls.mode.String(),
		Workers:   ls.workers,
		ElapsedMS: float64(time.Since(ls.start)) / float64(time.Millisecond),
		Nodes:     sh.nodes.Load(),
		Gap:       -1,
	}
	inc := sh.incumbent()
	if !math.IsInf(inc, 0) && !math.IsNaN(inc) {
		snap.HasIncumbent, snap.Incumbent = true, inc
	}
	b := sh.displayBound()
	if !math.IsInf(b, 0) && !math.IsNaN(b) {
		snap.HasBound, snap.Bound = true, b
		if snap.HasIncumbent {
			snap.Gap = gapOf(inc, b)
		}
	}
	if pl := sh.pool.Load(); pl != nil {
		snap.Open = pl.openA.Load()
		snap.Steals = pl.steals.Load()
		snap.Picks = pl.picks.Load()
	}
	if ph := sh.wphase; ph != nil {
		snap.WorkerPhases = make([]string, len(ph))
		for i := range ph {
			p := ph[i].Load()
			if p < 0 || int(p) >= len(workerPhaseNames) {
				p = wpIdle
			}
			snap.WorkerPhases[i] = workerPhaseNames[p]
		}
	}
	return snap, true
}

func (st *SearchStatus) attach(ls *liveSearch) {
	if st == nil {
		return
	}
	st.live.Store(ls)
}

func (st *SearchStatus) finish() {
	if st == nil {
		return
	}
	if ls := st.live.Load(); ls != nil {
		ls.done.Store(true)
	}
}
