package milp

import (
	"math"

	"repro/internal/exact"
	"repro/internal/lp"
	"repro/internal/trace"
)

// rootWitness holds the floating-point witnesses captured from the
// root LP solve before branch and bound mutates the solver in place:
// the row duals behind the safe dual bound, the terminal root basis
// (only on models small enough for the O(m^3) exact factorization) and
// the Farkas multipliers of a root infeasibility.
type rootWitness struct {
	duals  []float64
	basis  []int
	varPos []int8
	farkas []float64
}

// attachCertificate builds the exact certificate for res, checks it,
// and attaches it to the result, the flight recorder and the trace
// stream. Limit outcomes without an incumbent carry nothing
// certifiable and get no certificate.
func (s *solver) attachCertificate(p *lp.Problem, res *Result, rw rootWitness) {
	c := buildCertificate(p, &s.opt, res, rw)
	if c == nil {
		return
	}
	if !c.Valid && c.Kind == exact.KindInfeasible && rw.duals == nil {
		// Root infeasibility whose tableau ray failed exact replay (or
		// escaped capture entirely): re-derive the ray from the elastic
		// feasibility relaxation, whose optimal duals come from a clean
		// basis instead of a drifted tableau, and re-check. A near-zero
		// violation means the claim is not exactly provable; the
		// original (invalid) certificate then stands — honestly.
		if ray, viol, err := lp.FarkasRepair(p); err == nil && viol > 0 {
			rw.farkas = ray
			if repaired := buildCertificate(p, &s.opt, res, rw); repaired != nil && repaired.Valid {
				c = repaired
			}
		}
	}
	res.Certificate = c
	s.rec.SetCertificate(c) // nil-receiver safe
	if s.sh != nil && s.sh.tr != nil {
		s.sh.tr.Emit(trace.Event{Kind: trace.KindCertificate, Status: c.Kind, Msg: c.Summary()})
	}
	if !c.Valid && s.bb != nil {
		// A failed certification is exactly the anomaly the black box
		// exists for: the verdict is suspect, keep the recent history.
		s.bb.Record(trace.BBEvent{Kind: trace.BBCertify, Msg: "certificate invalid: " + c.Summary()})
		s.bb.Flush("certify-failed")
	}
}

// buildCertificate assembles and checks the certificate for a finished
// solve. The problem snapshot is taken from the solver's own input p —
// upstream model construction and presolve are deliberately outside the
// certified boundary and listed in Trusted.
func buildCertificate(p *lp.Problem, opt *Options, res *Result, rw rootWitness) *exact.Certificate {
	c := &exact.Certificate{
		Version:     1,
		ObjIntegral: opt.ObjIntegral,
		Problem:     exact.Snapshot(p),
		Trusted: []string{
			"model construction and presolve transformations upstream of the MILP (checks run against the solver's own row data)",
		},
	}
	switch res.Status {
	case StatusOptimal:
		c.Kind = exact.KindOptimal
		c.Trusted = append(c.Trusted,
			"branch-and-bound pruning and tree exhaustion (the gap between the certified root bound and the incumbent)")
	case StatusInfeasible:
		c.Kind = exact.KindInfeasible
		switch {
		case len(rw.farkas) > 0:
			c.Search = "farkas"
		case rw.duals != nil:
			// the search ran and exhausted the tree; the root duals
			// back the exactly-certified bound the witness check needs
			c.Search = "exhausted"
			c.Trusted = append(c.Trusted, "branch-and-bound subtree exhaustion")
		default:
			// a root infeasibility that escaped Farkas capture: there is
			// no exact witness, and the certificate must say so rather
			// than masquerade as an exhausted search (fuzzer-found)
			c.Search = "uncertified"
		}
	case StatusFeasible, StatusNodeLimit, StatusCancelled:
		if res.X == nil {
			return nil
		}
		c.Kind = exact.KindFeasible
		c.Trusted = append(c.Trusted, "the claimed best bound beyond the certified root bound")
	default: // StatusLimit: no incumbent, no proof — nothing to certify
		return nil
	}
	if res.CutsApplied > 0 {
		// the certificate proves bound and feasibility for the
		// cut-augmented model it snapshots; the cuts' own validity for
		// the integer hull is a float-arithmetic separation argument
		c.Trusted = append(c.Trusted,
			"validity of the root cutting planes (float-separated Gomory/cover cuts included in the certified model)")
	}
	if res.X != nil {
		c.X = exact.FloatVec(res.X)
		c.Objective = exact.FloatString(res.Objective)
		c.IntVars = append([]int(nil), opt.IntVars...)
	}
	if !math.IsInf(res.BestBound, -1) {
		c.Bound = exact.FloatString(res.BestBound)
	}
	if opt.InitialUpper != 0 && !math.IsInf(opt.InitialUpper, 1) {
		// an exhausted search primed with InitialUpper proves "nothing
		// strictly better than this exists", not plain infeasibility
		c.InitialUpper = exact.FloatString(opt.InitialUpper)
	}
	c.FarkasY = exact.FloatVec(rw.farkas)
	c.DualY = exact.FloatVec(rw.duals)
	c.Basis = rw.basis
	c.VarPos = rw.varPos
	c.Check()
	return c
}
