package milp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

// recordedSolve runs a solve with a fresh recorder attached and returns
// the result plus the recording snapshot.
func recordedSolve(t *testing.T, opt Options) (*Result, *trace.Recording) {
	t.Helper()
	p, ints := buildKnapsack(t)
	opt.IntVars = ints
	opt.Record = trace.NewRecorder(0)
	res, err := Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res, opt.Record.Snapshot()
}

// identity strips the timing fields from a node record so deterministic
// replays can be compared: two serial solves of the same instance must
// agree on everything — including pivot counts — except wall-clock
// noise.
func identity(n trace.NodeRec) trace.NodeRec {
	n.NS = 0
	n.TMS = 0
	return n
}

// TestRecordReplayDeterminism is the replay contract: a serial solve is
// deterministic, so recording it twice yields identical node and
// incumbent sequences (ids, lineage edges, LP statuses, objectives,
// bounds, pivot counts), and the codec round-trips that sequence
// bit-for-bit.
func TestRecordReplayDeterminism(t *testing.T) {
	res1, rec1 := recordedSolve(t, Options{})
	res2, rec2 := recordedSolve(t, Options{})
	if res1.Status != res2.Status || res1.Objective != res2.Objective || res1.Nodes != res2.Nodes {
		t.Fatalf("serial solve not deterministic: %+v vs %+v", res1, res2)
	}
	if len(rec1.Nodes) != len(rec2.Nodes) {
		t.Fatalf("recorded %d nodes, replay recorded %d", len(rec1.Nodes), len(rec2.Nodes))
	}
	if len(rec1.Nodes) != res1.Nodes {
		t.Fatalf("recording has %d nodes, result explored %d", len(rec1.Nodes), res1.Nodes)
	}
	for i := range rec1.Nodes {
		a, b := identity(rec1.Nodes[i]), identity(rec2.Nodes[i])
		if a != b {
			t.Fatalf("node %d diverged between identical solves:\n%+v\n%+v", i, a, b)
		}
	}
	if len(rec1.Incumbents) == 0 || len(rec1.Incumbents) != len(rec2.Incumbents) {
		t.Fatalf("incumbent sequences: %d vs %d (want equal, nonzero)",
			len(rec1.Incumbents), len(rec2.Incumbents))
	}
	for i := range rec1.Incumbents {
		if rec1.Incumbents[i].Node != rec2.Incumbents[i].Node ||
			rec1.Incumbents[i].Obj != rec2.Incumbents[i].Obj {
			t.Fatalf("incumbent %d diverged: %+v vs %+v", i, rec1.Incumbents[i], rec2.Incumbents[i])
		}
	}
	// the last incumbent is the optimum
	if last := rec1.Incumbents[len(rec1.Incumbents)-1]; last.Obj != res1.Objective {
		t.Fatalf("final recorded incumbent %v, result objective %v", last.Obj, res1.Objective)
	}
	// codec round trip preserves the replayed sequence
	var buf bytes.Buffer
	if err := rec1.Encode(&buf, true); err != nil {
		t.Fatal(err)
	}
	back, err := trace.DecodeRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(rec1.Nodes) || back.Status != rec1.Status {
		t.Fatalf("codec round trip lost data: %d nodes/%q vs %d/%q",
			len(back.Nodes), back.Status, len(rec1.Nodes), rec1.Status)
	}
	for i := range back.Nodes {
		if back.Nodes[i] != rec1.Nodes[i] {
			t.Fatalf("node %d changed in round trip", i)
		}
	}
}

// checkLineage verifies the structural recording invariants: ids are
// unique, the root is node 1 with col=-1, and every other node's parent
// was recorded with a smaller id (the atomic node counter orders
// parents before children even across workers).
func checkLineage(t *testing.T, rec *trace.Recording) {
	t.Helper()
	seen := make(map[int64]bool, len(rec.Nodes))
	for _, n := range rec.Nodes {
		if seen[n.ID] {
			t.Fatalf("duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
		if n.Parent == 0 {
			if n.Col != -1 {
				t.Fatalf("root node %d has branching col %d, want -1", n.ID, n.Col)
			}
			continue
		}
		if n.Parent >= n.ID {
			t.Fatalf("node %d has parent %d >= its own id", n.ID, n.Parent)
		}
		if !seen[n.Parent] {
			t.Fatalf("node %d references unrecorded parent %d", n.ID, n.Parent)
		}
	}
}

func TestRecordSerialLineage(t *testing.T) {
	res, rec := recordedSolve(t, Options{})
	checkLineage(t, rec)
	if rec.Status != res.Status.String() {
		t.Fatalf("footer status %q, result %v", rec.Status, res.Status)
	}
	if rec.TotalNodes != int64(res.Nodes) || rec.Pivots != int64(res.LPIterations) {
		t.Fatalf("footer totals %d/%d, result %d/%d",
			rec.TotalNodes, rec.Pivots, res.Nodes, res.LPIterations)
	}
}

// TestRecordParallelLineage runs a genuinely parallel recorded solve
// (gate disabled) and checks that the merged recording is still a valid
// tree: worker pickups re-parent onto split-time nodes, ids stay unique
// under the atomic counter, and worker attribution appears.
func TestRecordParallelLineage(t *testing.T) {
	p, cols := parityTrap(13)
	rec := trace.NewRecorder(0)
	res, err := Solve(p, Options{
		IntVars: cols, Parallelism: 4, ParallelThreshold: -1, Record: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible (parity trap)", res.Status)
	}
	snap := rec.Snapshot()
	checkLineage(t, snap)
	if snap.TotalNodes != int64(res.Nodes) {
		t.Fatalf("footer says %d nodes, result %d", snap.TotalNodes, res.Nodes)
	}
	workers := false
	for _, n := range snap.Nodes {
		if n.Worker > 0 {
			workers = true
			break
		}
	}
	if !workers {
		t.Fatal("no node attributed to a parallel worker")
	}
	if len(snap.Phases) == 0 {
		t.Fatal("recording footer carries no phase histograms")
	}
}

// TestParallelGateFallsBackSerial: a small instance with the gate at
// its default must refuse the parallel request, run serially, emit a
// plan event saying why, and never spin up workers.
func TestParallelGateFallsBackSerial(t *testing.T) {
	p, ints := buildKnapsack(t)
	ref, err := Solve(p, Options{IntVars: ints})
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(256)
	tr := trace.New(ring)
	res, err := Solve(p, Options{IntVars: ints, Parallelism: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ref.Status || res.Objective != ref.Objective || res.Nodes != ref.Nodes {
		t.Fatalf("gated solve diverged from serial: %+v vs %+v", res, ref)
	}
	var plan *trace.Event
	for _, e := range ring.Snapshot() {
		e := e
		switch e.Kind {
		case trace.KindPlan:
			plan = &e
		case trace.KindWorker:
			t.Fatalf("worker event after serial fallback: %+v", e)
		}
	}
	if plan == nil {
		t.Fatal("no plan event recorded for the gate decision")
	}
	if plan.Msg == "" || plan.Msg == "parallel search" {
		t.Fatalf("plan event does not explain the fallback: %+v", plan)
	}
}

// TestParallelGateHonorsLargeRequest: with the gate disabled via the
// negative sentinel the same tiny instance does go parallel (worker
// events appear), proving the fallback above is the gate's doing.
func TestParallelGateHonorsLargeRequest(t *testing.T) {
	p, ints := parityTrap(13)
	ring := trace.NewRing(1024)
	tr := trace.New(ring)
	if _, err := Solve(p, Options{IntVars: ints, Parallelism: 4, ParallelThreshold: -1, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	sawPlan, sawWorker := false, false
	for _, e := range ring.Snapshot() {
		switch e.Kind {
		case trace.KindPlan:
			sawPlan = true
			if !strings.HasPrefix(e.Msg, "mode=steal") {
				t.Fatalf("plan event %+v, want a mode=steal decision", e)
			}
		case trace.KindWorker:
			sawWorker = true
		}
	}
	if !sawPlan || !sawWorker {
		t.Fatalf("plan=%v worker=%v, want both", sawPlan, sawWorker)
	}
}

// TestRecordingImpliesProfile: attaching only a Recorder still yields
// phase attribution in the footer, with node-lp dominating a solve that
// does nothing but LP work, and the node-level phases covering most of
// the recorded wall time.
func TestRecordingImpliesProfile(t *testing.T) {
	_, rec := recordedSolve(t, Options{})
	if len(rec.Phases) == 0 {
		t.Fatal("no phases in recording footer")
	}
	var nodeLP bool
	var nodeLevelNS int64
	for _, ph := range rec.Phases {
		p, ok := trace.ParsePhase(ph.Name)
		if !ok {
			t.Fatalf("footer phase %q unknown", ph.Name)
		}
		if p == trace.PhaseNodeLP {
			nodeLP = ph.Count > 0
		}
		if p.NodeLevel() {
			nodeLevelNS += ph.SumNS
		}
	}
	if !nodeLP {
		t.Fatal("node-lp phase absent or empty")
	}
	if rec.WallNS > 0 {
		cov := float64(nodeLevelNS) / float64(rec.WallNS)
		// the tree is tiny, so allow generous slack; the real >=90%
		// acceptance check runs on fir16 via cmd/tpreplay
		if cov <= 0 || math.IsNaN(cov) {
			t.Fatalf("phase coverage %v of wall, want > 0", cov)
		}
	}
}
