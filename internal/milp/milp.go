// Package milp implements a branch-and-bound solver for mixed 0-1
// linear programs over the internal/lp simplex engine.
//
// The solver follows the scheme of Kaul & Vemuri (DATE 1998, Section
// 8): depth-first search over LP relaxations, warm-started by bound
// changes (dual simplex on dives, primal clean-up on backtracks), with
// a pluggable branching rule. The paper's contribution — branching on
// fractional y_tp variables in topological priority order with the
// 1-branch explored first, then on u_pk — is provided by the core
// package as a PriorityBrancher; this package also ships naive rules
// used as ablation baselines.
package milp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/exact"
	"repro/internal/lp"
	"repro/internal/trace"
)

// Status is the outcome of a MILP solve.
//
// Incumbent contract: every status except StatusInfeasible may carry
// an incumbent. When the search is stopped early — StatusFeasible,
// StatusLimit, StatusNodeLimit or StatusCancelled — Result.X still
// holds the best integer-feasible solution found so far (nil when none
// was found) and Result.BestBound the proved lower bound, so callers
// can always salvage partial work from an interrupted solve.
type Status int

const (
	// StatusOptimal means the incumbent is proved optimal.
	StatusOptimal Status = iota
	// StatusInfeasible means no integer-feasible solution exists.
	StatusInfeasible
	// StatusFeasible means an incumbent exists but the time limit (or
	// an LP iteration cap) stopped the proof of optimality.
	StatusFeasible
	// StatusLimit means the time limit (or an LP iteration cap)
	// stopped the search before any incumbent was found.
	StatusLimit
	// StatusNodeLimit means Options.MaxNodes stopped the search. The
	// incumbent found so far, if any, is still returned in Result.X.
	StatusNodeLimit
	// StatusCancelled means the caller's context was cancelled. The
	// incumbent found so far, if any, is still returned in Result.X.
	StatusCancelled
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusFeasible:
		return "feasible"
	case StatusNodeLimit:
		return "node-limit"
	case StatusCancelled:
		return "cancelled"
	default:
		return "limit"
	}
}

// Stopped reports whether a limit or cancellation cut the search short
// before it could prove optimality or infeasibility.
func (s Status) Stopped() bool {
	return s == StatusFeasible || s == StatusLimit || s == StatusNodeLimit || s == StatusCancelled
}

// intTol is the integrality tolerance.
const intTol = 1e-6

// SearchMode selects the scheduler of a parallel solve.
type SearchMode int

const (
	// ModeAuto lets the solver pick: the root-size gate (see
	// ParallelThreshold) decides between the serial search and the
	// work-stealing pool.
	ModeAuto SearchMode = iota
	// ModeSerial forces the serial depth-first search regardless of
	// Parallelism.
	ModeSerial
	// ModeSteal runs the work-stealing node pool: per-worker deques,
	// adaptive second-child donation, best-bound victim selection.
	ModeSteal
	// ModePortfolio races Parallelism complete searches with diverse
	// branching strategies over the same tree, sharing incumbents; the
	// first to exhaust its pruned tree proves the verdict.
	ModePortfolio
)

func (m SearchMode) String() string {
	switch m {
	case ModeSerial:
		return "serial"
	case ModeSteal:
		return "steal"
	case ModePortfolio:
		return "portfolio"
	default:
		return "auto"
	}
}

// Brancher selects the variable to branch on. x is the structural LP
// solution of the current node and bound reports the node's current
// variable bounds. It returns the column to branch on and whether the
// 1-branch is explored first; col < 0 delegates to the default
// most-fractional rule over the declared integer variables.
type Brancher interface {
	Select(x []float64, bound func(col int) (lo, hi float64)) (col int, oneFirst bool)
}

// BrancherFunc adapts a function to the Brancher interface.
type BrancherFunc func(x []float64, bound func(col int) (lo, hi float64)) (int, bool)

// Select implements Brancher.
func (f BrancherFunc) Select(x []float64, bound func(col int) (lo, hi float64)) (int, bool) {
	return f(x, bound)
}

// Options configure a solve.
type Options struct {
	// IntVars lists the columns that must be integral (0-1 variables;
	// general integers are not supported). Must be non-empty.
	IntVars []int
	// Brancher selects branching variables; nil uses most-fractional.
	Brancher Brancher
	// ObjIntegral declares that every integer-feasible solution has an
	// integral objective, enabling ceil-rounding of LP bounds.
	ObjIntegral bool
	// InitialUpper primes the incumbent objective with the objective
	// of a known feasible solution, e.g. from a heuristic (+Inf when
	// 0). Subtrees that cannot beat it are pruned; if nothing beats
	// it, the result is StatusInfeasible with a nil X, meaning "no
	// solution strictly better than InitialUpper exists".
	InitialUpper float64
	// MaxNodes limits explored nodes; 0 means no limit.
	MaxNodes int
	// TimeLimit bounds wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// Complete, when set, is called after the Brancher reports no
	// fractional variable among the columns it watches. It derives the
	// values of auxiliary integer variables implied by the decision
	// variables and returns the completed solution (or nil to decline).
	// A feasible completed point becomes the incumbent immediately,
	// avoiding branching on implied variables. The solver verifies
	// feasibility and integrality of the returned point independently.
	Complete func(x []float64) []float64
	// Probe, when set, is called at every node before branching with
	// the LP solution and an accessor for the node's variable bounds.
	// It may return a candidate solution xc (feasible for the ORIGINAL
	// problem — the solver validates feasibility and integrality but
	// not the node's branching bounds, since any global feasible point
	// is a valid incumbent), and/or exhausted=true asserting that the
	// node's subtree provably contains no feasible point. Returning
	// exhausted without such a proof makes the search unsound.
	// Under Parallelism > 1 the Probe is invoked concurrently from
	// every worker and must be safe for that.
	Probe func(x []float64, bound func(col int) (lo, hi float64)) (xc []float64, exhausted bool)
	// Parallelism sets the number of branch-and-bound workers. 0 or 1
	// keeps today's serial depth-first search, pivot for pivot. Higher
	// values split the tree near the root into independent subproblems
	// (branching-bound prefixes) solved by that many goroutines, each
	// owning a clone of the LP solver and pruning against a shared
	// atomic incumbent. The returned Objective, X feasibility and
	// Status are identical to the serial solve — only Nodes,
	// LPIterations and the traversal order may differ. Stateful
	// Branchers must implement Forker to get a per-worker instance;
	// Probe and Complete hooks must be concurrency-safe.
	Parallelism int
	// Trace receives structured search events: the root bound, sampled
	// node progress (every Trace.SampleEvery() nodes), incumbent
	// installs, best-bound moves, worker subproblem pickups and the
	// terminal status with LP engine counters. Nil disables tracing at
	// zero cost — the hot node loop gates on a single pointer compare.
	Trace *trace.Tracer
	// Record, when set, captures the full search lineage into the
	// flight recorder: every explored node with its id/parent, the
	// branching edge (column and direction), LP status, local objective,
	// global bound and incumbent at entry, and per-node pivot/wall-time
	// cost, plus incumbent installs and a terminal footer — for both
	// serial and parallel solves. Recording implies phase profiling:
	// when Profile is nil a private profile is created and attached to
	// the recording footer. Nil disables recording at zero cost, like
	// Trace.
	Record *trace.Recorder
	// Profile, when set, receives per-phase wall-time attribution: the
	// node-level phases of this package (node-lp, probe, complete,
	// branch-select, verify) and, through lp.Solver.Prof, the engine's
	// internal phases (pricing, ratio-test, pivot-update, refactorize,
	// farkas). The profile is shared by all parallel workers — its
	// buckets are atomic. Nil keeps every clock read out of the loops.
	Profile *trace.Profile
	// Certify, when set, attaches an exact-arithmetic certificate of
	// the verdict to Result.Certificate (and to the flight recording
	// when Record is on): the incumbent is re-verified in rational
	// arithmetic against the solver's own row data, a root infeasibility
	// replays its Farkas certificate exactly, and the root LP bound is
	// re-proved from the root duals (plus an exact basis certification
	// on small models). See internal/exact for what is certified versus
	// trusted. Off (the default) the solve paths perform no extra work
	// and no allocations.
	Certify bool
	// Warm, when set, is used as the root LP solver instead of a fresh
	// lp.NewSolver(p): the root relaxation is re-optimized from the
	// solver's current basis (dual simplex after bound edits, primal
	// after objective edits) rather than solved cold. The caller owns
	// the contract that the solver REPRESENTS p — same columns and rows,
	// with any bound, row-range or objective edits already applied via
	// SetBound/SetRowBounds/SetObj — because every downstream judgement
	// (node feasibility checks, incumbent validation, exact
	// certification) is rendered against p itself, so a violated
	// contract surfaces as a failed solve, not a wrong answer. The
	// solver is mutated by the search, like a fresh one would be; pass a
	// Clone to keep the original reusable. Dimensions are validated.
	Warm *lp.Solver
	// OnRoot, when set, receives the root LP solver right after the
	// root relaxation solves to optimality and before the search
	// mutates it — the hook the delta re-solve layer uses to capture a
	// reusable root basis (via Clone) with zero extra LP work. Called
	// synchronously; not called when the root is infeasible or hits a
	// limit.
	OnRoot func(*lp.Solver)
	// Engine selects the LP engine for the solver built here (ignored
	// when Warm supplies one): the zero value lp.EngineAuto applies the
	// density × size heuristic of lp.ChooseEngine, picking the sparse
	// revised engine for large sparse models and the dense tableau —
	// also the differential-fuzz oracle — for small or dense ones.
	// lp.EngineDense / lp.EngineRevised force either. The engine that
	// actually ran is reported in Result.LPEngine and on the terminal
	// status trace event.
	Engine lp.Engine
	// ParallelThreshold gates Parallelism behind a cheap root-size
	// estimate: when the root tableau has fewer than this many cells
	// (rows × (rows + columns)), or GOMAXPROCS < 2, or the root LP has
	// too few fractional integers to split a meaningful tree, the solve
	// falls back to the serial search — measurements (BENCH_milp.json)
	// show the clone/split overhead hurting small instances. The
	// decision either way is emitted as a "plan" trace event. 0 means
	// DefaultParallelThreshold; negative disables the gate entirely so
	// a parallel request is always honored.
	ParallelThreshold int
	// Mode selects the parallel scheduler. The zero value ModeAuto
	// applies the ParallelThreshold gate and picks work-stealing;
	// ModeSteal and ModePortfolio bypass the gate (an explicit request
	// is honored, like a negative ParallelThreshold); ModeSerial forces
	// the serial search. Ignored when Parallelism <= 1. The resolved
	// mode is reported in Result.Mode and on the "plan" trace event.
	Mode SearchMode
	// RootCuts enables root-node strengthening: cover cuts separated
	// from the row data plus Gomory fractional cuts from the optimal
	// root tableau (dense engine only) are appended to a private clone
	// of the model and the root is re-optimized before the search. The
	// caller's Problem is never mutated. Ignored under Warm (the warm
	// solver's basis describes the un-augmented model).
	RootCuts bool
	// Dive enables the root diving heuristic: one root-to-leaf
	// rounding dive that usually produces an early incumbent, seeding
	// the pruning bound before any worker starts. Ignored under Warm.
	Dive bool
	// Span, when set, is the parent under which the solve opens its
	// stage spans (root-lp, cuts, dive, search with per-worker
	// children, certify), annotated with node/pivot counts and the LP
	// engine counters. Nil disables span tracking at zero cost — the
	// node loop never touches spans, so the off path stays
	// allocation-free like Trace.
	Span *trace.Span
	// BlackBox, when set, receives a keep-last stream of flat per-node
	// events plus incumbent installs, and is flushed automatically on
	// anomalies: a recovered worker panic, a deadline/cancellation
	// stop, or a failed certification. The service keeps one per job
	// (always on); nil disables it behind a single pointer compare.
	BlackBox *trace.BlackBox
	// Status, when set, is attached to the running search so callers
	// can poll live progress (nodes, incumbent, bound, gap, open
	// subproblems, steals, per-worker phases) from the search's atomic
	// mirrors without perturbing it. Nil is the off state.
	Status *SearchStatus
	// PanicNode, when positive, makes the worker that explores the
	// node with this global index panic — a fault-injection hook for
	// exercising the panic-recovery and black-box flush paths in
	// tests. The off check is two compares per node.
	PanicNode int64
	// NodeDelay adds a sleep to every explored node — a test hook that
	// keeps small instances in flight long enough for live
	// introspection assertions. Zero (off) costs one compare per node.
	NodeDelay time.Duration
}

// Result reports a solve.
type Result struct {
	Status Status
	// X is the incumbent solution: the best integer-feasible point
	// found, even when a limit or cancellation stopped the search (see
	// the Status incumbent contract). Nil when none was found.
	X         []float64
	Objective float64
	// Nodes is the number of branch-and-bound nodes whose LP was solved.
	Nodes int
	// LPIterations is the total simplex pivot count (LP
	// re-optimizations across all nodes).
	LPIterations int
	// Runtime is the wall-clock duration of the solve.
	Runtime time.Duration
	// BestBound is the proved lower bound on the optimum.
	BestBound float64
	// Certificate is the exact-arithmetic certificate of the verdict,
	// present when Options.Certify was set and the outcome was
	// certifiable (limit statuses without an incumbent carry none). It
	// has already been checked; inspect Certificate.Valid / Err().
	Certificate *exact.Certificate
	// LPEngine is the LP engine the search ran on (dense tableau or
	// sparse revised simplex) — the resolution of Options.Engine's auto
	// heuristic, or the engine of the Warm solver.
	LPEngine lp.Engine
	// Mode is the scheduler that actually ran: the resolution of
	// Options.Mode (never ModeAuto on a completed solve).
	Mode SearchMode
	// Steals counts subproblems taken from another worker's deque
	// (work-stealing mode only).
	Steals int64
	// CutsApplied counts the root-strengthening cuts appended to the
	// search's model (0 when RootCuts is off or nothing violated).
	CutsApplied int
	// FirstIncumbentNodes is the global node count when the first
	// incumbent was installed, and FirstIncumbent the elapsed time; both
	// zero when the search found none (a primed InitialUpper does not
	// count, and an incumbent from the root dive reports 0 nodes).
	FirstIncumbentNodes int64
	FirstIncumbent      time.Duration
	// TimeToProof is the wall-clock time to a *proved* verdict — equal
	// to Runtime when the status is optimal or infeasible, 0 when a
	// limit stopped the search first.
	TimeToProof time.Duration
}

// stopReason records why the search stopped early, so the final status
// can distinguish cancellation from node and time limits.
type stopReason int

const (
	reasonNone  stopReason = iota
	reasonTime             // deadline or LP iteration cap
	reasonNodes            // Options.MaxNodes
	reasonCtx              // context cancelled by the caller
)

// solver is the per-goroutine search state: the serial solve uses one,
// a parallel solve uses one per worker plus one for the root split.
// Everything cross-worker lives in the shared struct.
type solver struct {
	lps      *lp.Solver
	prob     *lp.Problem
	opt      Options
	ctx      context.Context
	isInt    []bool
	sh       *shared
	brancher Brancher
	observer BoundObserver
	local    int // nodes explored by this worker (drives ctx-poll cadence)
	reason   stopReason
	worker   int // 0 for the serial search, 1-based for parallel workers

	// Observability state. rec/prof mirror Options.Record/Profile after
	// SolveContext resolves the record-implies-profile rule; both are
	// shared across parallel workers. curNode is the recorder id of the
	// node this goroutine is currently exploring, so incumbent installs
	// from candidate hooks can be attributed to the right node.
	rec     *trace.Recorder
	prof    *trace.Profile
	curNode int64
	// bb mirrors Options.BlackBox (shared across workers); span is the
	// search-stage span under which parallel modes open their
	// per-worker children. Both nil when off.
	bb   *trace.BlackBox
	span *trace.Span

	// work-stealing state (see steal.go): pool is non-nil on the
	// workers of a steal-mode solve, wslot is the worker's 0-based pool
	// slot, and path tracks the branching fixes from the root to the
	// current node so donated subproblems carry their full prefix.
	pool  *stealPool
	wslot int
	path  []fix
}

// nodeMeta carries the recorder-facing identity of a node into
// branch(): the lineage edge that created it (parent id, branching
// column and direction) and the cost of the LP re-optimization that
// entered it (pivots, wall nanoseconds). Zero-valued except col=-1 at
// the root; cheap to build even when recording is off.
type nodeMeta struct {
	parent int64
	col    int32
	dir    int8
	pivots int64
	ns     int64
}

// Solve runs branch and bound on p without external cancellation.
func Solve(p *lp.Problem, opt Options) (*Result, error) {
	return SolveContext(context.Background(), p, opt)
}

// SolveContext runs branch and bound on p under ctx. Cancelling ctx
// cooperatively stops the search within a bounded number of pivots and
// yields StatusCancelled; Options.TimeLimit is applied as a context
// deadline internally, so an expired deadline (from either source)
// yields the time-limit statuses. In both cases the incumbent found so
// far is still returned (see Status).
func SolveContext(ctx context.Context, p *lp.Problem, opt Options) (*Result, error) {
	if len(opt.IntVars) == 0 {
		return nil, fmt.Errorf("milp: no integer variables declared")
	}
	lps := opt.Warm
	if lps != nil {
		if n, m := lps.Dims(); n != p.NumVars() || m != p.NumRows() {
			return nil, fmt.Errorf("milp: warm solver is %dx%d, problem is %dx%d",
				m, n, p.NumRows(), p.NumVars())
		}
	} else {
		var err error
		if lps, err = lp.NewSolverEngine(p, opt.Engine); err != nil {
			return nil, err
		}
	}
	// An infeasible root must keep its Farkas multipliers for the exact
	// replay; turned back off after the root solve so tree nodes pay
	// nothing (node infeasibility is pruning, not a shipped verdict).
	lps.CaptureFarkas = opt.Certify
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if opt.TimeLimit > 0 {
		// the time limit is a context deadline internally, so LP
		// solves, the node loop and callers all observe one signal
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(opt.TimeLimit))
		defer cancel()
	}
	s := &solver{lps: lps, prob: p, opt: opt, ctx: ctx, isInt: make([]bool, p.NumVars())}
	for _, j := range opt.IntVars {
		if j < 0 || j >= p.NumVars() {
			return nil, fmt.Errorf("milp: integer variable %d out of range", j)
		}
		lo, hi := p.Bounds(j)
		if lo < -intTol || hi > 1+intTol {
			return nil, fmt.Errorf("milp: integer variable %d (%s) must be 0-1, bounds [%v,%v]", j, p.VarName(j), lo, hi)
		}
		s.isInt[j] = true
	}
	upper := math.Inf(1)
	if opt.InitialUpper != 0 && !math.IsInf(opt.InitialUpper, 1) {
		upper = opt.InitialUpper
	}
	s.sh = newShared(upper, opt.Trace, start)
	s.sh.bb = opt.BlackBox
	s.bb = opt.BlackBox
	s.brancher = opt.Brancher
	s.observer = observerOf(opt.Brancher)
	lps.Ctx = ctx // bound individual LP solves too
	if opt.Status != nil {
		// Attach the live handle before any LP work so pollers see the
		// solve from its first node; re-attached with the resolved mode
		// once the plan is decided, marked finished on every return.
		nw := opt.Parallelism
		if nw < 1 {
			nw = 1
		}
		s.sh.wphase = make([]atomic.Int32, nw+1)
		opt.Status.attach(&liveSearch{sh: s.sh, mode: opt.Mode, workers: nw, start: start})
		defer opt.Status.finish()
	}

	// Recording implies profiling so the recording footer always carries
	// a phase breakdown; a caller-supplied Profile is reused as-is.
	s.rec, s.prof = opt.Record, opt.Profile
	if s.rec.Enabled() && s.prof == nil {
		s.prof = trace.NewProfile()
	}
	s.rec.SetProfile(s.prof) // nil-receiver safe
	lps.Prof = s.prof

	if err := ctx.Err(); err != nil {
		// cancelled before any work: report it without touching the
		// problem (a dead context must not race root-LP infeasibility)
		res := &Result{BestBound: math.Inf(-1), Status: StatusLimit, LPEngine: lps.EngineKind()}
		if context.Cause(ctx) == context.Canceled {
			res.Status = StatusCancelled
		}
		return res, nil
	}

	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	rootSpan := opt.Span.Child("root-lp") // nil-safe: nil when spans are off
	var rootStatus lp.Status
	if opt.Warm != nil {
		rootStatus = lps.ReOptimize()
	} else {
		rootStatus = lps.Solve()
	}
	rootMeta := nodeMeta{col: -1, pivots: int64(lps.Iterations)}
	if s.prof != nil {
		rootMeta.ns = time.Since(t0).Nanoseconds()
		s.prof.Observe(trace.PhaseNodeLP, rootMeta.ns)
	}
	rootSpan.SetStr("status", rootStatus.String())
	rootSpan.SetStr("engine", lps.EngineKind().String())
	rootSpan.SetNum("pivots", float64(lps.Iterations))
	lps.Counters.AnnotateSpan(rootSpan)
	rootSpan.End()
	res := &Result{BestBound: math.Inf(-1), LPEngine: lps.EngineKind()}
	switch rootStatus {
	case lp.StatusInfeasible:
		res.Status = StatusInfeasible
		res.Runtime = time.Since(start)
		res.LPIterations = lps.Iterations
		if opt.Certify {
			s.attachCertificate(p, res, rootWitness{farkas: lps.FarkasRay()})
		}
		if s.rec.Enabled() {
			s.rec.Node(trace.NodeRec{ID: 1, Col: -1, LP: "infeasible",
				Pivots: rootMeta.pivots, NS: rootMeta.ns})
			s.rec.SetLPStat(lpStatOf(lps))
			s.rec.Finalize(res.Status.String(), res.Runtime, 1, int64(res.LPIterations))
		}
		return res, nil
	case lp.StatusUnbounded:
		return nil, fmt.Errorf("milp: LP relaxation is unbounded")
	case lp.StatusIterLimit:
		// cancellation, deadline or iteration cap during the root
		// solve: report an inconclusive run instead of an error
		res.Status = StatusLimit
		reason := "deadline"
		if context.Cause(ctx) == context.Canceled {
			res.Status = StatusCancelled
			reason = "cancelled"
		}
		if s.bb != nil {
			s.bb.Record(trace.BBEvent{Kind: trace.BBDeadline, Msg: "root LP stopped: " + reason})
			s.bb.Flush(reason)
		}
		res.Runtime = time.Since(start)
		res.LPIterations = lps.Iterations
		if s.rec.Enabled() {
			s.rec.Node(trace.NodeRec{ID: 1, Col: -1, LP: "iteration-limit",
				Pivots: rootMeta.pivots, NS: rootMeta.ns})
			s.rec.SetLPStat(lpStatOf(lps))
			s.rec.Finalize(res.Status.String(), res.Runtime, 1, int64(res.LPIterations))
		}
		return res, nil
	}
	// The OnRoot hook fires before any strengthening: the delta re-solve
	// layer captures a basis for the UN-augmented model (its warm
	// re-solves replay amendments against the original row set).
	if opt.OnRoot != nil {
		opt.OnRoot(lps)
	}
	if opt.RootCuts && opt.Warm == nil {
		cutSpan := opt.Span.Child("cuts")
		n, err := s.applyRootCuts()
		if err != nil {
			cutSpan.End()
			return nil, err
		}
		res.CutsApplied = n
		cutSpan.SetNum("applied", float64(n))
		cutSpan.End()
		lps = s.lps // a discarded cut round may have rebuilt the solver
	}
	// Root witnesses for certification must be taken now — after the
	// cuts, so the duals and basis describe the (possibly augmented)
	// root the search actually runs on: the search below re-optimizes
	// lps in place (serial mode), so its terminal duals and basis
	// describe the last node visited, not the root.
	var rw rootWitness
	if opt.Certify {
		rw.duals = lps.Duals()
		// The exact basis factorization demands exactly-signed reduced
		// costs; a cut-augmented basis reached by a warm append carries
		// ~1e-15 dual noise that fails that bar, so cuts fall back to
		// the safe dual-bound certificate alone.
		if res.CutsApplied == 0 && s.prob.NumRows() <= exact.BasisCertLimit {
			rw.basis = lps.BasisRows()
			rw.varPos = lps.VarPositions()
		}
		lps.CaptureFarkas = false // root is done; nodes don't capture
	}
	res.BestBound = lps.Objective()
	s.sh.raiseBound(res.BestBound)
	if s.sh.tr != nil {
		s.sh.tr.Emit(trace.Event{Kind: trace.KindRoot, Bound: res.BestBound,
			Pivots: int64(lps.Iterations)})
	}
	if opt.Dive && opt.Warm == nil {
		diveSpan := opt.Span.Child("dive")
		s.dive()
		if inc := s.sh.incumbent(); !math.IsInf(inc, 0) {
			diveSpan.SetNum("incumbent", inc)
		}
		diveSpan.End()
	}
	mode, why := s.planMode()
	res.Mode = mode
	if opt.Status != nil {
		nw := 1
		if mode == ModeSteal || mode == ModePortfolio {
			nw = opt.Parallelism
		}
		opt.Status.attach(&liveSearch{sh: s.sh, mode: mode, workers: nw, start: start})
	}
	if opt.Parallelism > 1 && s.sh.tr != nil {
		e := trace.Event{Kind: trace.KindPlan, Bound: res.BestBound, Worker: opt.Parallelism}
		if why != "" {
			e.Msg = "serial fallback: " + why
		} else {
			e.Msg = fmt.Sprintf("mode=%s workers=%d cuts=%d", mode, opt.Parallelism, res.CutsApplied)
		}
		s.sh.tr.Emit(e)
	}
	searchSpan := opt.Span.Child("search")
	searchSpan.SetStr("mode", mode.String())
	s.span = searchSpan
	switch mode {
	case ModeSteal:
		s.solveSteal(res, rootMeta)
	case ModePortfolio:
		s.solvePortfolio(rootMeta)
	default:
		s.sh.setPhase(0, wpSearch)
		s.guard(func() { s.branch(lp.StatusOptimal, 0, rootMeta) })
		s.sh.setPhase(0, wpDone)
	}
	searchSpan.SetNum("nodes", float64(s.sh.nodes.Load()))
	searchSpan.SetNum("pivots", float64(lps.Iterations))
	searchSpan.SetNum("steals", float64(res.Steals))
	lps.Counters.AnnotateSpan(searchSpan)
	searchSpan.End()
	if msg, node, ok := s.sh.panicked(); ok {
		// The black box was flushed at recovery time and stays with the
		// caller (the service serves it on the failed job); the solve
		// itself is not trustworthy past the crash, so it is an error,
		// never a Result.
		return nil, fmt.Errorf("milp: worker panic at node %d: %s", node, msg)
	}

	incObj, incX := s.sh.best()
	res.Nodes = int(s.sh.nodes.Load())
	res.LPIterations = lps.Iterations
	res.Runtime = time.Since(start)
	switch {
	case s.reason == reasonCtx:
		res.Status = StatusCancelled
	case s.reason == reasonNodes:
		res.Status = StatusNodeLimit
	case incX == nil && s.reason != reasonNone:
		res.Status = StatusLimit
	case incX == nil:
		res.Status = StatusInfeasible
	case s.reason != reasonNone:
		res.Status = StatusFeasible
	default:
		res.Status = StatusOptimal
	}
	if incX != nil {
		res.X = incX
		res.Objective = incObj
		if s.reason == reasonNone {
			res.BestBound = incObj
		} else if res.BestBound > incObj {
			res.BestBound = incObj
		}
	}
	if s.sh.firstInc.Load() {
		res.FirstIncumbentNodes = s.sh.firstIncNode.Load()
		res.FirstIncumbent = time.Duration(s.sh.firstIncNS.Load())
	}
	// A deadline or cancellation is an anomaly worth a post-mortem:
	// freeze the black box so "what was the search doing when it was
	// cut off" stays answerable after the job is gone.
	if s.bb != nil && (s.reason == reasonTime || s.reason == reasonCtx) {
		reason := "deadline"
		if s.reason == reasonCtx {
			reason = "cancelled"
		}
		s.bb.Record(trace.BBEvent{Kind: trace.BBDeadline, Node: int64(res.Nodes),
			Incumbent: incObj, Bound: res.BestBound, Msg: "search stopped: " + reason})
		s.bb.Flush(reason)
	}
	if res.Status == StatusOptimal || res.Status == StatusInfeasible {
		res.TimeToProof = res.Runtime
	}
	if opt.Certify {
		// certify against the (possibly cut-augmented) model the search
		// ran on — s.prob, not the caller's p
		certSpan := opt.Span.Child("certify")
		s.attachCertificate(s.prob, res, rw)
		if c := res.Certificate; c != nil {
			certSpan.SetStr("kind", c.Kind)
			if !c.Valid {
				certSpan.SetStr("invalid", "true")
			}
		}
		certSpan.End()
	}
	if s.rec.Enabled() {
		s.rec.SetLPStat(lpStatOf(lps))
		s.rec.SetSearchStats(res.Mode.String(), res.Steals,
			res.FirstIncumbentNodes, int64(res.FirstIncumbent))
		s.rec.Finalize(res.Status.String(), res.Runtime, int64(res.Nodes), int64(res.LPIterations))
	}
	if s.sh.tr != nil {
		s.sh.raiseBound(res.BestBound)
		e := trace.Event{
			Kind:             trace.KindStatus,
			Status:           res.Status.String(),
			Nodes:            int64(res.Nodes),
			Pivots:           int64(res.LPIterations),
			Refactorizations: lps.Counters.Refactorizations,
			FarkasChecks:     lps.Counters.FarkasChecks,
			FarkasRejected:   lps.Counters.FarkasRejected,
			WindowScans:      lps.Counters.WindowScans,
			CandidateHits:    lps.Counters.CandidateHits,
			Engine:           lps.EngineKind().String(),
			Factorizations:   lps.Counters.Factorizations,
			FTRANs:           lps.Counters.FTRANs,
			BTRANs:           lps.Counters.BTRANs,
			EtaNNZ:           lps.Counters.EtaNNZ,
			BasisNNZ:         lps.Counters.BasisNNZ,
			FactorNNZ:        lps.Counters.FactorNNZ,
			Bound:            s.sh.displayBound(),
		}
		if lps.Counters.BasisNNZ > 0 {
			e.FillIn = float64(lps.Counters.FactorNNZ) / float64(lps.Counters.BasisNNZ)
		}
		if res.X != nil {
			e.HasIncumbent = true
			e.Incumbent = res.Objective
			e.Gap = gapOf(res.Objective, e.Bound)
		}
		s.sh.tr.Emit(e)
	}
	return res, nil
}

// lpStatOf summarizes the LP engine that ran — its kind and the
// factorization/solve counters — for the recording footer (replay
// tools derive fill-in and the realized refactorization interval from
// it offline).
func lpStatOf(lps *lp.Solver) trace.LPStat {
	return trace.LPStat{
		Engine:         lps.EngineKind().String(),
		Factorizations: lps.Counters.Factorizations,
		FTRANs:         lps.Counters.FTRANs,
		BTRANs:         lps.Counters.BTRANs,
		EtaNNZ:         lps.Counters.EtaNNZ,
		BasisNNZ:       lps.Counters.BasisNNZ,
		FactorNNZ:      lps.Counters.FactorNNZ,
	}
}

// bound returns the pruning bound of the current LP objective,
// ceil-rounded when the objective is known integral.
func (s *solver) bound(z float64) float64 {
	if s.opt.ObjIntegral {
		return math.Ceil(z - 1e-6)
	}
	return z
}

// branch explores the current node (whose LP relaxation has already
// been solved with the given status) and its subtree, restoring all
// bound changes before returning. depth is the number of branching
// fixes between the root and this node; it only matters in the
// root-split collection mode of a parallel solve. meta identifies the
// node to the flight recorder (lineage edge and entry-LP cost).
func (s *solver) branch(st lp.Status, depth int, meta nodeMeta) {
	s.local++
	total := s.sh.nodes.Add(1)
	if s.rec != nil {
		nr := trace.NodeRec{
			ID: total, Parent: meta.parent, Worker: int32(s.worker),
			Depth: int32(depth), Col: meta.col, Dir: meta.dir,
			LP: st.String(), Pivots: meta.pivots, NS: meta.ns,
		}
		if b := s.sh.displayBound(); !math.IsInf(b, 0) {
			nr.Best = b
		}
		if inc := s.sh.incumbent(); !math.IsInf(inc, 0) {
			nr.Inc, nr.HasInc = inc, true
		}
		if st == lp.StatusOptimal {
			nr.Obj, nr.HasObj = s.lps.Objective(), true
		}
		s.rec.Node(nr)
		s.curNode = total
	}
	if s.bb != nil {
		e := trace.BBEvent{Kind: trace.BBNode, Node: total, Worker: s.worker,
			Depth: depth, Col: int(meta.col),
			Bound: s.sh.displayBound(), Incumbent: s.sh.incumbent()}
		if st == lp.StatusOptimal {
			e.Obj = s.lps.Objective()
		}
		s.bb.Record(e)
	}
	if s.opt.PanicNode > 0 && total == s.opt.PanicNode {
		panic(fmt.Sprintf("injected fault: PanicNode hit at node %d (worker %d, depth %d)",
			total, s.worker, depth))
	}
	if s.opt.NodeDelay > 0 {
		time.Sleep(s.opt.NodeDelay)
	}
	if r := s.limitHit(total); r != reasonNone {
		s.reason = r
		return
	}
	if s.sh.tr != nil && total%s.sh.sample == 0 {
		s.sh.emitProgress(trace.KindNode, s.worker, 0)
	}
	if st == lp.StatusInfeasible {
		return
	}
	if st == lp.StatusIterLimit {
		// treat as unresolved: cannot prune, cannot trust; re-solve
		// from scratch once, then give up on this subtree if it
		// persists (counted as a stop so optimality is not claimed).
		if s.resolveNodeLP() == lp.StatusIterLimit {
			s.reason = reasonTime
			if context.Cause(s.ctx) == context.Canceled {
				s.reason = reasonCtx
			}
			return
		}
		st = s.lps.Status()
		if st == lp.StatusInfeasible {
			return
		}
	}
	z := s.lps.Objective()
	if s.bound(z) >= s.sh.incumbent()-1e-9 {
		return // dominated
	}
	x := s.lps.Solution()
	if s.opt.Probe != nil {
		var t0 time.Time
		if s.prof != nil {
			t0 = time.Now()
		}
		xc, exhausted := s.opt.Probe(x, s.lps.Bound)
		if s.prof != nil {
			s.prof.Observe(trace.PhaseProbe, time.Since(t0).Nanoseconds())
		}
		if xc != nil && s.acceptCandidate(xc, z, false) {
			return // candidate matches the node bound: subtree fathomed
		}
		if exhausted {
			return
		}
	}
	col, oneFirst := -1, true
	if s.brancher != nil {
		var t0 time.Time
		if s.prof != nil {
			t0 = time.Now()
		}
		col, oneFirst = s.brancher.Select(x, s.lps.Bound)
		if s.prof != nil {
			s.prof.Observe(trace.PhaseBranchSelect, time.Since(t0).Nanoseconds())
		}
	}
	if col < 0 && s.opt.Complete != nil {
		var t0 time.Time
		if s.prof != nil {
			t0 = time.Now()
		}
		xc := s.opt.Complete(x)
		if s.prof != nil {
			s.prof.Observe(trace.PhaseComplete, time.Since(t0).Nanoseconds())
		}
		if xc != nil && s.acceptCandidate(xc, z, true) {
			return
		}
	}
	if col < 0 {
		col, oneFirst = s.mostFractional(x)
	}
	if col < 0 {
		// integer feasible: new incumbent. Guard against numerical
		// drift of the incrementally-updated tableau by re-checking
		// the point against the original problem data; on failure,
		// re-solve this node's LP from a fresh basis once and resume
		// (the fresh vertex may be fractional again, so re-branch).
		if err := s.checkFeasible(x, 1e-5); err != nil {
			switch s.resolveNodeLP() {
			case lp.StatusInfeasible:
				return
			case lp.StatusOptimal:
				x = s.lps.Solution()
				z = s.lps.Objective()
				if s.checkFeasible(x, 1e-5) != nil {
					return // still inconsistent: do not trust this node
				}
				if s.bound(z) >= s.sh.incumbent()-1e-9 {
					return
				}
				col, oneFirst = s.mostFractional(x)
			default:
				return
			}
		}
		if col < 0 {
			obj := z
			if s.opt.ObjIntegral {
				obj = math.Round(obj)
			}
			if s.sh.install(obj, x, s.worker) && s.rec != nil {
				s.rec.Incumbent(s.curNode, obj)
			}
			return
		}
	}
	first, second := 1.0, 0.0
	if !oneFirst {
		first, second = 0.0, 1.0
	}
	// Work-stealing donation: when some worker is hungry, hand the
	// second child to the pool BEFORE descending into the first, so the
	// leftmost dive of a fresh solve peels off a subproblem per level
	// and the pool fills within the first few nodes. The donated
	// subproblem is this node's branching prefix plus the second fix;
	// its bound is this node's LP bound (a valid bound on any child).
	// parent=total makes the taker's pickup re-solve a recorded child
	// of this node.
	donated := false
	if s.pool != nil && depth < donateDepth && s.pool.hungry() {
		lo, hi := s.lps.Bound(col)
		if second >= lo-intTol && second <= hi+intTol {
			fixes := make([]fix, len(s.path)+1)
			copy(fixes, s.path)
			fixes[len(s.path)] = fix{col: col, val: second}
			s.pool.donate(s.wslot, subproblem{fixes: fixes, bound: s.bound(z), parent: total})
			donated = true
		}
	}
	for vi, v := range [2]float64{first, second} {
		if vi == 1 && donated {
			continue // handed to the pool
		}
		lo, hi := s.lps.Bound(col)
		if v < lo-intTol || v > hi+intTol {
			continue // value already excluded on this path
		}
		s.lps.SetBound(col, v, v)
		s.path = append(s.path, fix{col: col, val: v})
		cm := nodeMeta{parent: total, col: int32(col)}
		if v >= 0.5 {
			cm.dir = 1
		}
		var t0 time.Time
		var piv0 int
		if s.prof != nil {
			t0, piv0 = time.Now(), s.lps.Iterations
		}
		cst := s.lps.ReOptimize()
		if s.prof != nil {
			cm.ns = time.Since(t0).Nanoseconds()
			cm.pivots = int64(s.lps.Iterations - piv0)
			s.prof.Observe(trace.PhaseNodeLP, cm.ns)
		}
		if s.observer != nil && cst == lp.StatusOptimal {
			s.observer.Observe(col, v >= 0.5, z, s.lps.Objective())
		}
		s.branch(cst, depth+1, cm)
		s.path = s.path[:len(s.path)-1]
		s.lps.SetBound(col, lo, hi)
		if s.reason != reasonNone {
			return
		}
	}
}

// resolveNodeLP re-solves the current node's LP from a fresh basis
// (drift recovery and iteration-limit retries), attributing the work to
// the node-lp phase.
func (s *solver) resolveNodeLP() lp.Status {
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	st := s.lps.Solve()
	if s.prof != nil {
		s.prof.Observe(trace.PhaseNodeLP, time.Since(t0).Nanoseconds())
	}
	return st
}

// checkFeasible verifies a point against the original problem data,
// attributing the row scan to the verify phase.
func (s *solver) checkFeasible(x []float64, tol float64) error {
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	err := s.prob.Feasible(x, tol)
	if s.prof != nil {
		s.prof.Observe(trace.PhaseVerify, time.Since(t0).Nanoseconds())
	}
	return err
}

// acceptCandidate validates a candidate point and installs it as the
// incumbent when it is integral, feasible and improving. It reports
// whether the subtree is fathomed: the point must be valid AND its
// objective must match the node's LP bound (otherwise a better integer
// point could hide below it and branching must continue). When
// inNode is set the candidate must also respect the node's branching
// bounds (the Complete contract); Probe candidates only need global
// feasibility.
func (s *solver) acceptCandidate(xc []float64, nodeBound float64, inNode bool) bool {
	if len(xc) != len(s.isInt) {
		return false
	}
	for j, isInt := range s.isInt {
		if isInt && isFrac(xc[j]) {
			return false
		}
	}
	if inNode {
		// Feasible checks only the problem's original bounds, so check
		// the solver's current (branching) ones too.
		for j := range xc {
			lo, hi := s.lps.Bound(j)
			if xc[j] < lo-intTol || xc[j] > hi+intTol {
				return false
			}
		}
	}
	if err := s.checkFeasible(xc, 1e-6); err != nil {
		return false
	}
	obj := s.prob.Objective(xc)
	if s.opt.ObjIntegral {
		obj = math.Round(obj)
	}
	if s.sh.install(obj, xc, s.worker) && s.rec != nil {
		s.rec.Incumbent(s.curNode, obj)
	}
	return obj <= nodeBound+1e-6*(1+math.Abs(nodeBound))
}

// DefaultParallelThreshold is the root-tableau cell count — rows times
// (rows + columns), the per-pivot work of the dense engine — below
// which a parallel request falls back to the serial search when
// Options.ParallelThreshold is 0. Recalibrated for the work-stealing
// scheduler, whose fixed overhead (one LP clone per worker, a mutexed
// pool) is far smaller than the old static split's: instances under
// this size solve in under a millisecond, where even a clone is not
// worth it. The old static-split threshold was 1<<19.
const DefaultParallelThreshold = 1 << 16

// planMode resolves the scheduler for this solve: the serial search
// for Parallelism <= 1 or an explicit ModeSerial, the requested mode
// for an explicit ModeSteal/ModePortfolio (an explicit request bypasses
// the gate, like a negative ParallelThreshold), and the gate's verdict
// — work-stealing or the serial fallback — for ModeAuto. The returned
// reason is non-empty when a Parallelism > 1 request falls back.
func (s *solver) planMode() (SearchMode, string) {
	if s.opt.Parallelism <= 1 {
		return ModeSerial, ""
	}
	switch s.opt.Mode {
	case ModeSerial:
		return ModeSerial, "serial mode requested"
	case ModeSteal, ModePortfolio:
		return s.opt.Mode, ""
	}
	if why := s.serialFallback(); why != "" {
		return ModeSerial, why
	}
	return ModeSteal, ""
}

// serialFallback decides the parallel gate: it returns a non-empty
// human-readable reason when a Parallelism > 1 request should run the
// serial search instead, and "" to honor the parallel request. Called
// with the root LP solved to optimality. The old gate also required a
// minimum number of fractional integers at the root; the work-stealing
// pool splits adaptively wherever the tree actually branches, so a
// thin root no longer matters.
func (s *solver) serialFallback() string {
	th := s.opt.ParallelThreshold
	if th < 0 {
		return "" // gate disabled
	}
	if th == 0 {
		th = DefaultParallelThreshold
	}
	if p := runtime.GOMAXPROCS(0); p < 2 {
		return fmt.Sprintf("GOMAXPROCS=%d: workers would time-slice one core", p)
	}
	m, n := s.prob.NumRows(), s.prob.NumVars()
	cells := int64(m) * int64(m+n)
	if cells < int64(th) {
		return fmt.Sprintf("root tableau %dx%d (%d cells) under threshold %d", m, m+n, cells, th)
	}
	return ""
}

// mostFractional picks the declared integer variable whose value is
// closest to 0.5, preferring the 1-branch when the fraction is >= 0.5.
func (s *solver) mostFractional(x []float64) (int, bool) {
	best, bestDist := -1, 0.5-intTol
	oneFirst := true
	for j, isInt := range s.isInt {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		frac := math.Min(f, 1-f)
		if frac <= intTol {
			continue
		}
		d := 0.5 - frac // smaller = more fractional
		if best < 0 || d < bestDist {
			best, bestDist = j, d
			oneFirst = x[j] >= 0.5
		}
	}
	return best, oneFirst
}

// limitHit reports why the node loop must stop. total is the global
// node count including this node, so MaxNodes is enforced across all
// workers of a parallel solve, not per goroutine; a stop requested by
// any other worker is observed here too. The context is polled every
// 16 locally-explored nodes so cancellation latency stays bounded.
func (s *solver) limitHit(total int64) stopReason {
	if r := s.sh.stopRequested(); r != reasonNone {
		return r
	}
	if s.opt.MaxNodes > 0 && total > int64(s.opt.MaxNodes) {
		return reasonNodes
	}
	if s.local%16 == 0 && s.ctx.Err() != nil {
		if context.Cause(s.ctx) == context.Canceled {
			return reasonCtx
		}
		return reasonTime
	}
	return reasonNone
}

// FirstFractional returns a Brancher that picks the lowest-index
// fractional variable among cols — the "leave it to the solver" naive
// baseline of the paper's Section 8 comparison.
func FirstFractional(cols []int) Brancher {
	watch := append([]int(nil), cols...)
	return BrancherFunc(func(x []float64, _ func(int) (float64, float64)) (int, bool) {
		for _, j := range watch {
			if isFrac(x[j]) {
				return j, x[j] >= 0.5
			}
		}
		return -1, true
	})
}

// MostFractional returns a Brancher picking the variable closest to
// 0.5 among cols.
func MostFractional(cols []int) Brancher {
	watch := append([]int(nil), cols...)
	return BrancherFunc(func(x []float64, _ func(int) (float64, float64)) (int, bool) {
		best, bestFrac := -1, intTol
		for _, j := range watch {
			f := x[j] - math.Floor(x[j])
			frac := math.Min(f, 1-f)
			if frac > bestFrac {
				best, bestFrac = j, frac
			}
		}
		if best < 0 {
			return -1, true
		}
		return best, x[best] >= 0.5
	})
}

// PriorityBrancher branches on the first fractional variable in tiers:
// tier order first, then position within the tier, always taking the
// 1-branch first — the generalization of the paper's y-then-u rule.
func PriorityBrancher(tiers ...[]int) Brancher {
	copied := make([][]int, len(tiers))
	for i, t := range tiers {
		copied[i] = append([]int(nil), t...)
	}
	return BrancherFunc(func(x []float64, _ func(int) (float64, float64)) (int, bool) {
		for _, tier := range copied {
			for _, j := range tier {
				if isFrac(x[j]) {
					return j, true // paper: always explore the 1-branch first
				}
			}
		}
		return -1, true
	})
}

func isFrac(v float64) bool {
	f := v - math.Floor(v)
	if f > 0.5 {
		f = 1 - f
	}
	return f > intTol
}
