package milp

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// buildRandomMILP generates a random knapsack instance sized so branch
// and bound does real work in both modes but stays fast.
func buildRandomMILP(r *rand.Rand) (values, weights []float64, capacity float64) {
	n := 8 + r.Intn(8)
	values = make([]float64, n)
	weights = make([]float64, n)
	total := 0.0
	for j := 0; j < n; j++ {
		values[j] = float64(1 + r.Intn(20))
		weights[j] = float64(1 + r.Intn(9))
		total += weights[j]
	}
	capacity = math.Floor(total * (0.3 + 0.4*r.Float64()))
	return values, weights, capacity
}

// TestPropertyParallelMatchesSerial is the core determinism contract:
// for random instances, a parallel solve must report the same Status
// and Objective as the serial one — only Nodes/LPIterations may vary.
func TestPropertyParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		values, weights, capacity := buildRandomMILP(r)
		p1, cols1 := knapsack(values, weights, capacity)
		p2, cols2 := knapsack(values, weights, capacity)
		serial, err := Solve(p1, Options{IntVars: cols1, ObjIntegral: true})
		if err != nil {
			return false
		}
		par, err := Solve(p2, Options{IntVars: cols2, ObjIntegral: true, Parallelism: 4, ParallelThreshold: -1})
		if err != nil {
			return false
		}
		if serial.Status != par.Status {
			t.Logf("seed %d: status %v != %v", seed, serial.Status, par.Status)
			return false
		}
		if serial.Status == StatusOptimal {
			if math.Abs(serial.Objective-par.Objective) > 1e-9 {
				t.Logf("seed %d: objective %v != %v", seed, serial.Objective, par.Objective)
				return false
			}
			if math.Abs(par.BestBound-par.Objective) > 1e-9 {
				t.Logf("seed %d: bound %v != obj %v", seed, par.BestBound, par.Objective)
				return false
			}
			if err := p2.Feasible(par.X, 1e-6); err != nil {
				t.Logf("seed %d: parallel X infeasible: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelProvesInfeasibility(t *testing.T) {
	// parity trap: the whole tree must be searched to prove there is no
	// solution, which exercises subproblem hand-off and completion
	p, cols := parityTrap(13)
	res, err := Solve(p, Options{IntVars: cols, Parallelism: 4, ParallelThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want %v", res.Status, StatusInfeasible)
	}
	p2, cols2 := parityTrap(13)
	ser, err := Solve(p2, Options{IntVars: cols2})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Status != res.Status {
		t.Fatalf("serial status %v != parallel %v", ser.Status, res.Status)
	}
}

func TestParallelCancelMidSolve(t *testing.T) {
	p, cols := parityTrap(40)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := SolveContext(ctx, p, Options{IntVars: cols, Parallelism: 4, ParallelThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v, want %v (nodes=%d)", res.Status, StatusCancelled, res.Nodes)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if res.Nodes == 0 {
		t.Fatal("no nodes explored before cancellation")
	}
}

// TestParallelCancelStress hammers concurrent cancellation while
// workers are mid-subproblem; primarily a -race target.
func TestParallelCancelStress(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		p, cols := parityTrap(40)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(d time.Duration) {
				defer wg.Done()
				time.Sleep(d)
				cancel()
			}(time.Duration(5+3*trial) * time.Millisecond)
		}
		res, err := SolveContext(ctx, p, Options{IntVars: cols, Parallelism: 4, ParallelThreshold: -1})
		wg.Wait()
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusCancelled {
			t.Fatalf("trial %d: status = %v", trial, res.Status)
		}
	}
}

func TestParallelNodeLimitShared(t *testing.T) {
	p, cols := parityTrap(40)
	res, err := Solve(p, Options{IntVars: cols, MaxNodes: 200, Parallelism: 4, ParallelThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNodeLimit {
		t.Fatalf("status = %v, want %v", res.Status, StatusNodeLimit)
	}
	// the counter is global, so the overshoot is bounded by the worker
	// count (each may be past the check when the limit trips), not by
	// workers * MaxNodes as a per-goroutine counter would allow
	if res.Nodes > 200+8 {
		t.Fatalf("nodes = %d: MaxNodes not enforced across workers", res.Nodes)
	}
}

func TestParallelKeepsIncumbentOnLimit(t *testing.T) {
	n := 20
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i], weights[i] = 3, 3
	}
	p, cols := knapsack(values, weights, 25)
	res, err := Solve(p, Options{IntVars: cols, MaxNodes: 120, Parallelism: 4, ParallelThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNodeLimit {
		t.Fatalf("status = %v, want %v", res.Status, StatusNodeLimit)
	}
	if res.X == nil {
		t.Fatal("incumbent dropped on node limit")
	}
	if err := p.Feasible(res.X, 1e-6); err != nil {
		t.Fatalf("incumbent infeasible: %v", err)
	}
	if res.BestBound > res.Objective+1e-9 {
		t.Fatalf("BestBound %v exceeds incumbent %v", res.BestBound, res.Objective)
	}
}

func TestParallelTimeLimitBestBound(t *testing.T) {
	p, cols := parityTrap(40)
	res, err := Solve(p, Options{IntVars: cols, TimeLimit: 50 * time.Millisecond, Parallelism: 4, ParallelThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusCancelled || res.Status == StatusOptimal {
		t.Fatalf("status = %v after time limit", res.Status)
	}
	// the aggregated best bound must stay a valid lower bound for the
	// (infeasible) problem: anything finite is fine, +Inf is not
	if math.IsInf(res.BestBound, 1) {
		t.Fatalf("BestBound = +Inf")
	}
}

func TestParallelInitialUpperPrunes(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5, 7}
	weights := []float64{2, 3, 2, 5, 1, 2}
	want := bruteKnapsack(values, weights, 8)
	p, cols := knapsack(values, weights, 8)
	// an unbeatable initial upper bound: parallel search must agree with
	// the serial contract and report infeasible-with-nil-X
	res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true, InitialUpper: -want - 1, Parallelism: 4, ParallelThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible || res.X != nil {
		t.Fatalf("status=%v X=%v, want infeasible with nil X", res.Status, res.X)
	}
}

func TestParallelPseudoCostForks(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5, 7, 9, 4, 11, 6}
	weights := []float64{2, 3, 2, 5, 1, 2, 3, 1, 4, 2}
	want := bruteKnapsack(values, weights, 12)
	p, cols := knapsack(values, weights, 12)
	pc := NewPseudoCost(cols)
	res, err := Solve(p, Options{IntVars: cols, Brancher: pc, ObjIntegral: true, Parallelism: 4, ParallelThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(-res.Objective-want) > 1e-6 {
		t.Fatalf("status=%v obj=%v want %v", res.Status, -res.Objective, want)
	}
}

// TestObserveWiredIntoSearch checks the satellite fix: the solver now
// feeds branch outcomes to a BoundObserver brancher, so a serial solve
// with a PseudoCost brancher accumulates statistics by itself.
func TestObserveWiredIntoSearch(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5, 7}
	weights := []float64{2, 3, 2, 5, 1, 2}
	p, cols := knapsack(values, weights, 8)
	pc := NewPseudoCost(cols)
	res, err := Solve(p, Options{IntVars: cols, Brancher: pc, ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Nodes > 1 && len(pc.upCount) == 0 && len(pc.downCount) == 0 {
		t.Fatal("PseudoCost.Observe never called during the search")
	}
}

func TestPseudoCostForkIsIndependent(t *testing.T) {
	pc := NewPseudoCost([]int{0, 1})
	pc.lastCol, pc.lastFrac = 0, 0.5
	pc.Observe(0, true, -10, -8)
	fork := pc.Fork().(*PseudoCost)
	if fork.upCount[0] != 1 {
		t.Fatalf("fork lost learned stats: %v", fork.upCount)
	}
	fork.lastCol, fork.lastFrac = 1, 0.5
	fork.Observe(1, false, -10, -9)
	if pc.downCount[1] != 0 {
		t.Fatal("fork writes leaked into the parent brancher")
	}
}
