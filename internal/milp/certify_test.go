package milp

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/lp"
	"repro/internal/trace"
)

// TestCertifyOptimalKnapsack: a Certify solve of an optimal MILP must
// attach a valid optimal certificate whose exact objective matches the
// float verdict.
func TestCertifyOptimalKnapsack(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5}
	weights := []float64{2, 3, 2, 5, 1}
	p, cols := knapsack(values, weights, 7)
	res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	c := res.Certificate
	if c == nil {
		t.Fatal("no certificate attached")
	}
	if c.Kind != exact.KindOptimal {
		t.Fatalf("kind = %q", c.Kind)
	}
	if !c.Valid {
		t.Fatalf("certificate invalid: %v\n%+v", c.Err(), c.Checks)
	}
	if c.ExactObjective != exact.FloatString(res.Objective) {
		t.Errorf("exact objective %q vs float %v", c.ExactObjective, res.Objective)
	}
	if len(c.Trusted) == 0 {
		t.Error("trust boundary not documented on the certificate")
	}
}

// TestCertifyInfeasibleFarkas: a root-infeasible MILP must carry an
// exactly-replayed Farkas certificate.
func TestCertifyInfeasibleFarkas(t *testing.T) {
	p := &lp.Problem{}
	x := p.AddBinary("x", 1)
	y := p.AddBinary("y", 1)
	_ = p.AddGE("g", []int{x, y}, []float64{1, 1}, 3)
	res, err := Solve(p, Options{IntVars: []int{x, y}, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v", res.Status)
	}
	c := res.Certificate
	if c == nil {
		t.Fatal("no certificate attached to the infeasibility verdict")
	}
	if c.Kind != exact.KindInfeasible || c.Search != "farkas" {
		t.Fatalf("kind=%q search=%q, want infeasible/farkas", c.Kind, c.Search)
	}
	if !c.Valid {
		t.Fatalf("Farkas certificate invalid: %v\n%+v", c.Err(), c.Checks)
	}
}

// TestCertifyOffAttachesNothing: without Certify the result must stay
// certificate-free — the audit mode is strictly opt-in.
func TestCertifyOffAttachesNothing(t *testing.T) {
	values := []float64{10, 13, 8}
	weights := []float64{2, 3, 2}
	p, cols := knapsack(values, weights, 4)
	res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certificate != nil {
		t.Fatalf("certificate attached without Certify: %+v", res.Certificate)
	}
}

// TestCertifyEmitsTraceEventAndRecordingLine: certification surfaces
// on both observability channels — a trace event of KindCertificate
// and a certificate embedded in the flight recording.
func TestCertifyEmitsTraceEventAndRecordingLine(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5}
	weights := []float64{2, 3, 2, 5, 1}
	p, cols := knapsack(values, weights, 7)
	ring := trace.NewRing(256)
	rec := trace.NewRecorder(0)
	_, err := Solve(p, Options{
		IntVars: cols, ObjIntegral: true, Certify: true,
		Trace: trace.New(ring), Record: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.KindCertificate {
			found = true
			if e.Status != exact.KindOptimal || e.Msg == "" {
				t.Fatalf("certificate event malformed: %+v", e)
			}
		}
	}
	if !found {
		t.Error("no certificate trace event emitted")
	}
	snap := rec.Snapshot()
	if snap.Certificate == nil {
		t.Fatal("recording carries no certificate")
	}
	snap.Certificate.Check()
	if !snap.Certificate.Valid {
		t.Fatalf("recorded certificate failed re-verification: %v", snap.Certificate.Err())
	}
}

// TestCertifyExhaustedWithInitialUpper: a search primed with an
// initial upper bound that excludes every solution ends infeasible by
// exhaustion; the certificate leans on the exactly-certified root
// bound and records the priming bound.
func TestCertifyExhaustedWithInitialUpper(t *testing.T) {
	// min x+y s.t. x+y >= 1: optimum 1, so "strictly better than 1"
	// is unachievable and the primed search exhausts
	p := &lp.Problem{}
	x := p.AddBinary("x", 1)
	y := p.AddBinary("y", 1)
	_ = p.AddGE("cover", []int{x, y}, []float64{1, 1}, 1)
	res, err := Solve(p, Options{IntVars: []int{x, y}, ObjIntegral: true, InitialUpper: 1, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible (nothing beats the primed bound)", res.Status)
	}
	c := res.Certificate
	if c == nil {
		t.Fatal("no certificate attached")
	}
	if c.Search == "farkas" {
		// the root LP (optimum 1 > upper cutoff) may or may not be cut
		// off as infeasible depending on the cutoff row; both proofs are
		// acceptable, but whichever is claimed must verify
		t.Logf("root cutoff produced a Farkas proof")
	}
	if !c.Valid {
		t.Fatalf("exhausted certificate invalid: %v\n%+v", c.Err(), c.Checks)
	}
	if c.InitialUpper == "" {
		t.Error("priming bound not recorded on the certificate")
	}
}

// TestCertifyParallelMatchesSerial: certification is captured at the
// root before workers fork, so a parallel solve must certify exactly
// like the serial one.
func TestCertifyParallelMatchesSerial(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5, 7, 9, 4}
	weights := []float64{2, 3, 2, 5, 1, 2, 3, 1}
	build := func() (*lp.Problem, []int) { return knapsack(values, weights, 9) }

	ps, cs := build()
	serial, err := Solve(ps, Options{IntVars: cs, ObjIntegral: true, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	pp, cp := build()
	par, err := Solve(pp, Options{IntVars: cp, ObjIntegral: true, Certify: true,
		Parallelism: 4, ParallelThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{serial, par} {
		if res.Status != StatusOptimal {
			t.Fatalf("status = %v", res.Status)
		}
		if res.Certificate == nil || !res.Certificate.Valid {
			t.Fatalf("certificate missing or invalid: %+v", res.Certificate)
		}
	}
	if serial.Certificate.ExactObjective != par.Certificate.ExactObjective {
		t.Fatalf("serial and parallel certified objectives diverge: %q vs %q",
			serial.Certificate.ExactObjective, par.Certificate.ExactObjective)
	}
}
