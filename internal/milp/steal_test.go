package milp

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
	"repro/internal/trace"
)

// TestPropertyStealMatchesSerialWithStrengthening extends the core
// determinism contract to the full strengthened pipeline: root cuts,
// the diving heuristic and the work-stealing scheduler together must
// report exactly the serial objective and status.
func TestPropertyStealMatchesSerialWithStrengthening(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		values, weights, capacity := buildRandomMILP(r)
		p1, cols1 := knapsack(values, weights, capacity)
		p2, cols2 := knapsack(values, weights, capacity)
		serial, err := Solve(p1, Options{IntVars: cols1, ObjIntegral: true})
		if err != nil {
			return false
		}
		par, err := Solve(p2, Options{IntVars: cols2, ObjIntegral: true,
			Parallelism: 4, ParallelThreshold: -1, Mode: ModeSteal,
			RootCuts: true, Dive: true})
		if err != nil {
			return false
		}
		if par.Mode != ModeSteal {
			t.Logf("seed %d: mode %v, want steal", seed, par.Mode)
			return false
		}
		if serial.Status != par.Status {
			t.Logf("seed %d: status %v != %v", seed, serial.Status, par.Status)
			return false
		}
		if serial.Status == StatusOptimal {
			if math.Abs(serial.Objective-par.Objective) > 1e-9 {
				t.Logf("seed %d: objective %v != %v", seed, serial.Objective, par.Objective)
				return false
			}
			if err := p2.Feasible(par.X, 1e-6); err != nil {
				t.Logf("seed %d: steal X infeasible: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPortfolioDeterministicOptimum runs the portfolio race repeatedly
// on one instance: the reported optimum must equal the serial one on
// every run, no matter which seat wins the race.
func TestPortfolioDeterministicOptimum(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5, 7, 9, 4, 11, 6, 3, 14}
	weights := []float64{2, 3, 2, 5, 1, 2, 3, 1, 4, 2, 1, 4}
	p0, cols0 := knapsack(values, weights, 14)
	serial, err := Solve(p0, Options{IntVars: cols0, ObjIntegral: true})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		p, cols := knapsack(values, weights, 14)
		res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true,
			Parallelism: 4, ParallelThreshold: -1, Mode: ModePortfolio})
		if err != nil {
			t.Fatal(err)
		}
		if res.Mode != ModePortfolio {
			t.Fatalf("run %d: mode %v, want portfolio", run, res.Mode)
		}
		if res.Status != StatusOptimal || math.Abs(res.Objective-serial.Objective) > 1e-9 {
			t.Fatalf("run %d: status=%v obj=%v, want optimal %v",
				run, res.Status, res.Objective, serial.Objective)
		}
		if err := p.Feasible(res.X, 1e-6); err != nil {
			t.Fatalf("run %d: incumbent infeasible: %v", run, err)
		}
	}
}

// TestPortfolioProvesInfeasibility: each seat explores the full tree,
// so the race must also prove pure infeasibility.
func TestPortfolioProvesInfeasibility(t *testing.T) {
	p, cols := parityTrap(13)
	res, err := Solve(p, Options{IntVars: cols, Parallelism: 3,
		ParallelThreshold: -1, Mode: ModePortfolio})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want %v", res.Status, StatusInfeasible)
	}
}

// TestStealStormCancel hammers cancellation while many workers donate
// and steal mid-tree; primarily a -race target for the pool's
// termination protocol under abort.
func TestStealStormCancel(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		p, cols := parityTrap(40)
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(4+5*trial) * time.Millisecond)
		res, err := SolveContext(ctx, p, Options{IntVars: cols, Parallelism: 8,
			ParallelThreshold: -1, Mode: ModeSteal})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusCancelled && res.Status != StatusInfeasible {
			t.Fatalf("trial %d: status = %v", trial, res.Status)
		}
	}
}

// TestStealEmitsStealEvents: on a tree big enough to keep 4 workers
// busy, the pool must actually steal (and report it in Result.Steals
// and as steal trace events), not just run 4 serial searches.
func TestStealEmitsStealEvents(t *testing.T) {
	// On one scheduler thread the seeding worker can exhaust the whole
	// tree before any peer wakes; two threads make the race real.
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(old)
	}
	p, cols := parityTrap(17)
	ring := trace.NewRing(4096)
	res, err := Solve(p, Options{IntVars: cols, Parallelism: 4,
		ParallelThreshold: -1, Mode: ModeSteal, Trace: trace.New(ring)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Fatal("work-stealing solve reported zero steals on a deep tree")
	}
	sawSteal := false
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.KindSteal {
			sawSteal = true
			if e.Worker == 0 || e.Msg == "" {
				t.Fatalf("steal event missing thief/victim: %+v", e)
			}
		}
	}
	if !sawSteal {
		t.Fatal("no steal trace events emitted")
	}
}

// TestCoverCutsValidBruteForce separates cover cuts on random binary
// knapsack LPs and brute-forces every feasible 0-1 point against them:
// the combinatorial validity argument must hold exactly.
func TestCoverCutsValidBruteForce(t *testing.T) {
	cutsSeen := 0
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		values, weights, capacity := buildRandomMILP(r)
		if len(values) > 12 {
			continue
		}
		p, cols := knapsack(values, weights, capacity)
		lps, err := lp.NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		if lps.Solve() != lp.StatusOptimal {
			continue
		}
		s := &solver{prob: p, lps: lps, isInt: make([]bool, p.NumVars())}
		for _, j := range cols {
			s.isInt[j] = true
		}
		cuts := s.coverCuts(lps.Solution(), maxCoverCuts)
		cutsSeen += len(cuts)
		n := len(cols)
		x := make([]float64, p.NumVars())
		for bits := 0; bits < 1<<n; bits++ {
			for j := 0; j < n; j++ {
				x[j] = float64((bits >> j) & 1)
			}
			if p.Feasible(x, 1e-9) != nil {
				continue
			}
			for _, c := range cuts {
				lhs := 0.0
				for k, j := range c.Idx {
					lhs += c.Val[k] * x[j]
				}
				if lhs > c.Hi+1e-9 {
					t.Fatalf("seed %d: cover cut %s cuts off feasible point %v (lhs %v > hi %v)",
						seed, c.Name, x[:n], lhs, c.Hi)
				}
			}
		}
	}
	if cutsSeen == 0 {
		t.Fatal("no cover cuts generated across 300 seeds; separator is dead")
	}
	t.Logf("verified %d cover cuts by brute force", cutsSeen)
}

// TestCutAugmentedVerdictCertifies: a solve with root cuts and Certify
// on must produce a checked, valid certificate — the exact layer
// verifies the verdict against the cut-augmented model.
func TestCutAugmentedVerdictCertifies(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		values, weights, capacity := buildRandomMILP(r)
		p, cols := knapsack(values, weights, capacity)
		res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true,
			RootCuts: true, Dive: true, Certify: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOptimal {
			continue
		}
		if res.Certificate == nil {
			t.Fatalf("seed %d: no certificate", seed)
		}
		if !res.Certificate.Valid {
			t.Fatalf("seed %d (cuts=%d): certificate invalid: %v",
				seed, res.CutsApplied, res.Certificate.Err())
		}
	}
}

// TestCutsRecordedAndReplayable: applied cuts must land in the flight
// recording and survive the NDJSON round trip, alongside the search
// stats footer.
func TestCutsRecordedAndReplayable(t *testing.T) {
	var res *Result
	var rec *trace.Recorder
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		values, weights, capacity := buildRandomMILP(r)
		p, cols := knapsack(values, weights, capacity)
		rec = trace.NewRecorder(1 << 16)
		var err error
		res, err = Solve(p, Options{IntVars: cols, ObjIntegral: true,
			RootCuts: true, Dive: true, Record: rec})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutsApplied > 0 {
			break
		}
	}
	if res == nil || res.CutsApplied == 0 {
		t.Skip("no instance produced cuts (separator thresholds)")
	}
	snap := rec.Snapshot()
	if len(snap.Cuts) != res.CutsApplied {
		t.Fatalf("recording carries %d cuts, result says %d", len(snap.Cuts), res.CutsApplied)
	}
	if snap.Mode != "serial" {
		t.Fatalf("recording mode %q, want serial", snap.Mode)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf, false); err != nil {
		t.Fatal(err)
	}
	back, err := trace.DecodeRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cuts) != len(snap.Cuts) {
		t.Fatalf("round trip lost cuts: %d -> %d", len(snap.Cuts), len(back.Cuts))
	}
	for i := range back.Cuts {
		if back.Cuts[i].Name != snap.Cuts[i].Name || len(back.Cuts[i].Idx) != len(snap.Cuts[i].Idx) {
			t.Fatalf("cut %d mismatch after round trip: %+v vs %+v", i, back.Cuts[i], snap.Cuts[i])
		}
	}
	if back.Mode != snap.Mode || back.FirstIncNodes != snap.FirstIncNodes {
		t.Fatalf("search stats lost in round trip: %+v vs %+v", back, snap)
	}
}

// TestDiveSeedsIncumbent: on an instance with an integral-friendly
// structure the dive must install an incumbent before the tree search
// explores a single node.
func TestDiveSeedsIncumbent(t *testing.T) {
	values := []float64{10, 13, 8, 21, 5, 7, 9, 4}
	weights := []float64{2, 3, 2, 5, 1, 2, 3, 1}
	p, cols := knapsack(values, weights, 9)
	res, err := Solve(p, Options{IntVars: cols, ObjIntegral: true, Dive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.FirstIncumbent == 0 && res.X != nil {
		t.Fatal("no first-incumbent timestamp recorded")
	}
	if res.FirstIncumbentNodes != 0 {
		t.Fatalf("first incumbent at node %d, want 0 (dive)", res.FirstIncumbentNodes)
	}
}
