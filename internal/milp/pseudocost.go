package milp

import "math"

// PseudoCost is a stateful brancher implementing classic pseudo-cost
// branching: it learns, per column, how much the LP bound degrades
// when branching that column up or down, and picks the fractional
// column with the best expected degradation product. Columns without
// history fall back to most-fractional scoring. The solver feeds it
// observations through the BoundObserver interface after every branch.
//
// A PseudoCost value must not be shared between concurrent solves or
// goroutines: it implements Forker, so under Options.Parallelism > 1
// every worker branches with its own copy seeded from the statistics
// learned up to the fork point.
type PseudoCost struct {
	watch []int
	// learned sums and counts per column
	upSum, downSum     map[int]float64
	upCount, downCount map[int]int

	// bookkeeping for the observation hook
	lastCol   int
	lastFrac  float64
	lastBound float64
}

// NewPseudoCost creates a pseudo-cost brancher over the given columns.
func NewPseudoCost(cols []int) *PseudoCost {
	return &PseudoCost{
		watch:     append([]int(nil), cols...),
		upSum:     map[int]float64{},
		downSum:   map[int]float64{},
		upCount:   map[int]int{},
		downCount: map[int]int{},
		lastCol:   -1,
	}
}

// Select implements Brancher.
func (pc *PseudoCost) Select(x []float64, _ func(int) (float64, float64)) (int, bool) {
	best, bestScore := -1, -1.0
	for _, j := range pc.watch {
		f := x[j] - math.Floor(x[j])
		frac := math.Min(f, 1-f)
		if frac <= intTol {
			continue
		}
		up := pc.estimate(pc.upSum[j], pc.upCount[j])
		down := pc.estimate(pc.downSum[j], pc.downCount[j])
		// product rule with epsilon guard (Achterberg's score)
		score := math.Max(up*(1-f), 1e-6) * math.Max(down*f, 1e-6) * (0.5 + frac)
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	if best >= 0 {
		pc.lastCol = best
		pc.lastFrac = x[best] - math.Floor(x[best])
	}
	return best, best >= 0 && x[best] >= 0.5
}

func (pc *PseudoCost) estimate(sum float64, count int) float64 {
	if count == 0 {
		return 1 // uninformed prior
	}
	return sum / float64(count)
}

// Fork implements Forker: each parallel worker gets an independent
// brancher primed with the statistics learned so far, so forked
// workers start informed but never race on the maps.
func (pc *PseudoCost) Fork() Brancher {
	c := NewPseudoCost(pc.watch)
	for k, v := range pc.upSum {
		c.upSum[k] = v
	}
	for k, v := range pc.downSum {
		c.downSum[k] = v
	}
	for k, v := range pc.upCount {
		c.upCount[k] = v
	}
	for k, v := range pc.downCount {
		c.downCount[k] = v
	}
	return c
}

// Observe implements BoundObserver: it records the LP bound
// degradation of the child of the last selected column. up reports
// whether the 1-branch was taken; parent and child are the LP bounds
// before and after. The solver wires this up automatically; the
// brancher also works without observations, degrading to
// most-fractional behavior.
func (pc *PseudoCost) Observe(col int, up bool, parent, child float64) {
	gain := child - parent
	if gain < 0 {
		gain = 0
	}
	if up {
		denom := 1 - pc.lastFrac
		if col == pc.lastCol && denom > intTol {
			pc.upSum[col] += gain / denom
			pc.upCount[col]++
		}
		return
	}
	if col == pc.lastCol && pc.lastFrac > intTol {
		pc.downSum[col] += gain / pc.lastFrac
		pc.downCount[col]++
	}
}
