package milp

import (
	"math"
	"strconv"
	"time"

	"repro/internal/lp"
	"repro/internal/trace"
)

// Cut-generation budgets. A handful of strong cuts tightens the root
// bound where it matters; large cut loops would bloat every node LP of
// the search that follows.
const (
	maxCoverCuts  = 16
	maxGomoryCuts = 8
)

// coverCuts separates minimal-cover inequalities from the knapsack-like
// rows of the problem: for an LE row sum a_j x_j <= b over binary
// columns with positive coefficients, any minimal set C with
// sum_{j in C} a_j > b admits the valid cut sum_{j in C} x_j <= |C|-1.
// Unlike Gomory cuts these are exactly valid by combinatorial argument
// — no tableau arithmetic involved — so they are certification-safe on
// any engine. x is the fractional root LP point; only cuts it violates
// by at least 1e-4 are returned.
func (s *solver) coverCuts(x []float64, limit int) []lp.CutRow {
	var out []lp.CutRow
	for i := 0; i < s.prob.NumRows() && len(out) < limit; i++ {
		lo, hi := s.prob.RowRange(i)
		if !math.IsInf(lo, -1) || math.IsInf(hi, 1) || hi < 0 {
			continue
		}
		idx, val := s.prob.Row(i)
		total := 0.0
		ok := len(idx) >= 2
		for k, j := range idx {
			if !s.isInt[j] || val[k] <= 0 {
				ok = false
				break
			}
			if l, h := s.prob.Bounds(j); l < -intTol || h > 1+intTol {
				ok = false
				break
			}
			total += val[k]
		}
		if !ok || total <= hi {
			continue
		}
		// Greedy cover: take columns by descending x_j until the weights
		// exceed the capacity, then minimalize by dropping redundant
		// members (largest weight first — dropping only strengthens the
		// cut, since each removal trades a -1 on the rhs for a -x_j <= 1
		// on the lhs).
		order := make([]int, len(idx))
		for k := range order {
			order[k] = k
		}
		for a := 1; a < len(order); a++ {
			for b := a; b > 0 && x[idx[order[b]]] > x[idx[order[b-1]]]; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		cover := order[:0]
		sum := 0.0
		for _, k := range order {
			cover = append(cover, k)
			sum += val[k]
			if sum > hi {
				break
			}
		}
		if sum <= hi {
			continue
		}
		for a := 0; a < len(cover); {
			if sum-val[cover[a]] > hi {
				sum -= val[cover[a]]
				cover = append(cover[:a], cover[a+1:]...)
				continue
			}
			a++
		}
		lhs := 0.0
		cols := make([]int, len(cover))
		ones := make([]float64, len(cover))
		for a, k := range cover {
			cols[a] = idx[k]
			ones[a] = 1
			lhs += x[idx[k]]
		}
		rhs := float64(len(cover) - 1)
		if lhs < rhs+1e-4 {
			continue // not violated at the root point
		}
		for a := 1; a < len(cols); a++ {
			for b := a; b > 0 && cols[b] < cols[b-1]; b-- {
				cols[b], cols[b-1] = cols[b-1], cols[b]
			}
		}
		out = append(out, lp.CutRow{
			Name: "cover[" + s.prob.RowName(i) + "]",
			Idx:  cols, Val: ones, Lo: math.Inf(-1), Hi: rhs,
		})
	}
	return out
}

// applyRootCuts strengthens the root relaxation in place: it separates
// cover cuts from the row data and Gomory fractional cuts from the
// optimal tableau (dense engine only), appends them to the live solver
// via lp.AppendRows, re-optimizes, and — on success — swaps s.prob for
// a cut-augmented clone so every downstream judgement (node
// feasibility checks, incumbent validation, exact certification) is
// rendered against the model the search actually runs on. The caller's
// problem is never mutated.
//
// On any numerical trouble the cuts are discarded: the solver is
// rebuilt cold on the original model and 0 is returned. Returns the
// number of cuts applied.
func (s *solver) applyRootCuts() (int, error) {
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	x := s.lps.Solution()
	cuts := s.coverCuts(x, maxCoverCuts)
	cuts = append(cuts, s.lps.GomoryCuts(s.isInt, maxGomoryCuts)...) // nil on the revised engine
	applied := 0
	defer func() {
		if s.prof != nil {
			s.prof.Observe(trace.PhaseCutGen, time.Since(t0).Nanoseconds())
		}
	}()
	if len(cuts) == 0 {
		return 0, nil
	}
	pc := s.prob.Clone()
	for _, c := range cuts {
		if err := pc.AddRow(c.Name, c.Idx, c.Val, c.Lo, c.Hi); err != nil {
			return 0, nil // malformed cut: keep the original model
		}
	}
	before := s.lps.Objective()
	discard := func() error {
		fresh, err := lp.NewSolverEngine(s.prob, s.opt.Engine)
		if err != nil {
			return err
		}
		fresh.Ctx = s.ctx
		fresh.Prof = s.prof
		if st := fresh.Solve(); st != lp.StatusOptimal {
			// the original root solved optimally moments ago; a cold
			// re-solve can only fail on cancellation
			s.lps = fresh
			return s.ctx.Err()
		}
		s.lps = fresh
		return nil
	}
	if err := s.lps.AppendRows(cuts); err != nil {
		return 0, discard()
	}
	if st := s.lps.ReOptimize(); st != lp.StatusOptimal {
		return 0, discard()
	}
	s.prob = pc
	applied = len(cuts)
	if s.sh.tr != nil || s.rec.Enabled() {
		for _, c := range cuts {
			if s.sh.tr != nil {
				s.sh.tr.Emit(trace.Event{Kind: trace.KindCut, NNZ: len(c.Idx),
					Bound: s.lps.Objective(), Msg: c.Name})
			}
			cr := trace.CutRec{Name: c.Name,
				Idx: append([]int(nil), c.Idx...), Val: append([]float64(nil), c.Val...)}
			if !math.IsInf(c.Lo, -1) {
				lo := c.Lo
				cr.Lo = &lo
			}
			if !math.IsInf(c.Hi, 1) {
				hi := c.Hi
				cr.Hi = &hi
			}
			s.rec.Cut(cr)
		}
		if s.sh.tr != nil {
			s.sh.tr.Emit(trace.Event{Kind: trace.KindCut, NNZ: applied,
				Bound: s.lps.Objective(),
				Msg:   "root strengthened: " + trimFloat(before) + " -> " + trimFloat(s.lps.Objective())})
		}
	}
	return applied, nil
}

// trimFloat formats a bound for the cut-summary event message.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
