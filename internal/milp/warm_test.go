package milp

import (
	"math"
	"testing"

	"repro/internal/lp"
)

// TestWarmRootMatchesCold solves a knapsack cold, captures the root
// basis via OnRoot, edits the capacity on a clone with SetRowBounds,
// and checks the warm re-solve agrees with a cold solve of the edited
// problem — the exact loop the delta engine runs.
func TestWarmRootMatchesCold(t *testing.T) {
	vals := []float64{10, 7, 5, 4, 3, 6, 8, 2}
	weights := []float64{5, 4, 3, 2, 2, 4, 5, 1}
	p, cols := knapsack(vals, weights, 11)

	var root *lp.Solver
	res, err := Solve(p, Options{IntVars: cols, OnRoot: func(s *lp.Solver) { root = s.Clone() }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("base status %v", res.Status)
	}
	if root == nil {
		t.Fatal("OnRoot never fired")
	}

	for _, newCap := range []float64{9, 13, 11, 6, 16} {
		p2, cols2 := knapsack(vals, weights, newCap)
		cold, err := Solve(p2, Options{IntVars: cols2})
		if err != nil {
			t.Fatal(err)
		}
		ws := root.Clone()
		ws.SetRowBounds(0, math.Inf(-1), newCap)
		warm, err := Solve(p2, Options{IntVars: cols2, Warm: ws})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("cap %v: warm status %v, cold %v", newCap, warm.Status, cold.Status)
		}
		if warm.Status == StatusOptimal && math.Abs(warm.Objective-cold.Objective) > 1e-9 {
			t.Fatalf("cap %v: warm objective %v, cold %v", newCap, warm.Objective, cold.Objective)
		}
	}
}

// TestWarmDimensionMismatch pins the contract violation error.
func TestWarmDimensionMismatch(t *testing.T) {
	p, cols := knapsack([]float64{1, 2}, []float64{1, 1}, 1)
	s, err := lp.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, cols2 := knapsack([]float64{1, 2, 3}, []float64{1, 1, 1}, 2)
	if _, err := Solve(p2, Options{IntVars: cols2, Warm: s}); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	_ = cols
}

// TestWarmCertified checks that a certified warm solve still renders a
// valid certificate against the edited problem.
func TestWarmCertified(t *testing.T) {
	vals := []float64{9, 7, 6, 3}
	weights := []float64{4, 3, 3, 2}
	p, cols := knapsack(vals, weights, 7)
	var root *lp.Solver
	if _, err := Solve(p, Options{IntVars: cols, OnRoot: func(s *lp.Solver) { root = s.Clone() }}); err != nil {
		t.Fatal(err)
	}
	p2, cols2 := knapsack(vals, weights, 5)
	ws := root.Clone()
	ws.SetRowBounds(0, math.Inf(-1), 5)
	warm, err := Solve(p2, Options{IntVars: cols2, Warm: ws, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal {
		t.Fatalf("status %v", warm.Status)
	}
	if warm.Certificate == nil {
		t.Fatal("no certificate attached")
	}
	if !warm.Certificate.Valid {
		t.Fatalf("certificate invalid: %v", warm.Certificate.Err())
	}
}
