package milp

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"

	"repro/internal/lp"
)

// reasonDone is the internal stop reason a portfolio worker raises
// when it finishes its whole tree: the race is decided, the losers
// should stop. It never leaks into a Result — a raised reasonDone
// implies some worker completed its proof, and solvePortfolio maps
// that back to reasonNone (the clean-finish state).
const reasonDone stopReason = reasonCtx + 1

// reasonPanic is raised when a worker goroutine panicked and was
// recovered (see shared.recordPanic): the search stops everywhere and
// SolveContext converts the solve into an error, so it never surfaces
// as a Result status either.
const reasonPanic stopReason = reasonDone + 1

// flipBrancher inverts the child order of an inner brancher (0-branch
// first where the inner rule says 1-first), preserving its Forker and
// BoundObserver behavior — the cheapest way to diversify a portfolio
// seat beyond the distinct selection rules.
type flipBrancher struct{ inner Brancher }

func (f flipBrancher) Select(x []float64, bound func(col int) (lo, hi float64)) (int, bool) {
	col, oneFirst := f.inner.Select(x, bound)
	return col, !oneFirst
}

func (f flipBrancher) Fork() Brancher { return flipBrancher{forkBrancher(f.inner)} }

func (f flipBrancher) Observe(col int, up bool, parent, child float64) {
	if o := observerOf(f.inner); o != nil {
		o.Observe(col, up, parent, child)
	}
}

// portfolioSeats builds the strategy line-up: seat 0 runs the
// configured brancher (the paper's priority rule in production), later
// seats run pseudo-cost, most-fractional, the flipped configured rule
// and first-fractional, cycling with flipped variants beyond that.
// Every seat explores the FULL tree — diversity comes from traversal
// order, and the shared incumbent turns any seat's find into pruning
// for all.
func (s *solver) portfolioSeats(workers int) []Brancher {
	intCols := append([]int(nil), s.opt.IntVars...)
	configured := s.brancher
	if configured == nil {
		configured = MostFractional(intCols) // the solver's default rule
	}
	base := []Brancher{
		forkBrancher(configured),
		NewPseudoCost(intCols),
		MostFractional(intCols),
		flipBrancher{forkBrancher(configured)},
		FirstFractional(intCols),
		flipBrancher{NewPseudoCost(intCols)},
		flipBrancher{MostFractional(intCols)},
		flipBrancher{FirstFractional(intCols)},
	}
	seats := make([]Brancher, workers)
	for w := range seats {
		seats[w] = forkBrancher(base[w%len(base)])
	}
	return seats
}

// solvePortfolio races Options.Parallelism complete searches over the
// same tree, one strategy per worker, sharing the incumbent through
// the same CAS channel the work-stealing mode uses: a strong incumbent
// found by any seat immediately prunes every other seat's tree. The
// first seat to exhaust its (pruned) tree ends the race — its full
// depth-first traversal is a standalone optimality proof, so the
// result is exactly the serial verdict, just proved by whichever
// strategy got there first.
//
// The reported optimum is deterministic for a fixed instance: every
// seat prunes with strict improvement against the shared incumbent, so
// the final incumbent is the true optimum no matter which seat wins or
// how installs interleave.
func (s *solver) solvePortfolio(rootMeta nodeMeta) {
	workers := s.opt.Parallelism
	seats := s.portfolioSeats(workers)
	ws := make([]*solver, workers)
	for w := range ws {
		ws[w] = &solver{
			lps:      s.lps.Clone(),
			prob:     s.prob,
			opt:      s.opt,
			ctx:      s.ctx,
			isInt:    s.isInt,
			sh:       s.sh,
			brancher: seats[w],
			worker:   w + 1,
			rec:      s.rec,
			prof:     s.prof,
			bb:       s.bb,
			span:     s.span,
		}
		ws[w].observer = observerOf(ws[w].brancher)
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *solver) {
			defer wg.Done()
			wsp := w.span.Child("worker")
			wsp.SetWorker(w.worker)
			defer wsp.End()
			pprof.Do(s.ctx, pprof.Labels("tp_worker", strconv.Itoa(w.worker)), func(context.Context) {
				w.sh.setPhase(w.worker, wpSearch)
				defer w.sh.setPhase(w.worker, wpDone)
				w.guard(func() {
					w.branch(lp.StatusOptimal, 0, rootMeta)
				})
				if w.reason == reasonNone {
					// race decided: this seat's traversal is a complete
					// proof; stop the losers
					w.sh.requestStop(reasonDone)
					return
				}
				if w.reason != reasonDone {
					w.sh.requestStop(w.reason)
				}
			})
			wsp.SetNum("nodes", float64(w.local))
			wsp.SetNum("pivots", float64(w.lps.Iterations))
		}(w)
	}
	wg.Wait()
	for _, w := range ws {
		s.lps.Iterations += w.lps.Iterations
		s.lps.Counters.Add(w.lps.Counters)
	}
	// A seat that finished cleanly proved the verdict regardless of what
	// stopped the others; only when every seat was interrupted by a real
	// limit does the solve report a stopped status.
	s.reason = reasonTime
	for _, w := range ws {
		if w.reason == reasonNone {
			s.reason = reasonNone
			break
		}
	}
	if s.reason != reasonNone {
		if r := s.sh.stopRequested(); r != reasonNone && r != reasonDone {
			s.reason = r
		}
	}
	// BestBound stays the root bound; finalization clamps it to the
	// incumbent (a clean finish proves optimality, a stopped race keeps
	// the root bound as the proved one).
}
