package milp

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// hardKnapsack returns a knapsack instance large enough to force a real
// branch-and-bound tree (tens of nodes) under any search mode.
func hardKnapsack(seed int64) ([]float64, []float64, float64) {
	r := rand.New(rand.NewSource(seed))
	n := 16
	values := make([]float64, n)
	weights := make([]float64, n)
	var wsum float64
	for j := 0; j < n; j++ {
		values[j] = 1 + float64(r.Intn(40))
		weights[j] = 1 + float64(r.Intn(20))
		wsum += weights[j]
	}
	return values, weights, wsum * 0.4
}

// TestPanicNodeFlushesBlackBox injects a deliberate worker panic at a
// known node and verifies the contract end to end: the solve fails with
// an error naming the node (never a partial result), and the black box
// froze at the panic with a dump whose tail identifies the failing node
// and carries the stack.
func TestPanicNodeFlushesBlackBox(t *testing.T) {
	for _, mode := range []struct {
		name string
		opt  Options
	}{
		{"serial", Options{}},
		{"steal", Options{Parallelism: 4, ParallelThreshold: -1, Mode: ModeSteal}},
		{"portfolio", Options{Parallelism: 3, ParallelThreshold: -1, Mode: ModePortfolio}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			values, weights, capacity := hardKnapsack(7)
			p, cols := knapsack(values, weights, capacity)
			bb := trace.NewBlackBox(64)
			opt := mode.opt
			opt.IntVars = cols
			opt.ObjIntegral = true
			opt.BlackBox = bb
			opt.PanicNode = 3
			res, err := Solve(p, opt)
			if err == nil {
				t.Fatalf("panicked solve returned a result: %+v", res)
			}
			if !strings.Contains(err.Error(), "worker panic at node 3") {
				t.Fatalf("error %q does not name the failing node", err)
			}
			reason, ok := bb.Flushed()
			if !ok || reason != "worker-panic" {
				t.Fatalf("black box flushed = %q, %v; want worker-panic", reason, ok)
			}
			d := bb.Dump()
			if !d.Flushed || len(d.Events) == 0 {
				t.Fatalf("dump = %+v", d)
			}
			last := d.Events[len(d.Events)-1]
			if last.Kind != trace.BBPanic || last.Node != 3 {
				t.Fatalf("last event = %+v, want panic at node 3", last)
			}
			if !strings.Contains(last.Msg, "injected fault") || !strings.Contains(last.Msg, "goroutine") {
				t.Fatalf("panic event msg lacks the value and stack: %q", last.Msg)
			}
			// the node trail before the panic localizes the crash
			var sawNode bool
			for _, e := range d.Events {
				if e.Kind == trace.BBNode {
					sawNode = true
				}
			}
			if !sawNode {
				t.Fatal("dump has no node trail before the panic")
			}
		})
	}
}

// TestSearchStatusSnapshotLive polls the live handle while a slowed
// parallel solve runs and verifies the introspection figures move:
// running with nodes explored mid-flight, not running once done.
func TestSearchStatusSnapshotLive(t *testing.T) {
	values, weights, capacity := hardKnapsack(11)
	p, cols := knapsack(values, weights, capacity)
	st := NewSearchStatus()
	if _, ok := st.Snapshot(); ok {
		t.Fatal("unattached handle reported ok")
	}
	done := make(chan error, 1)
	go func() {
		_, err := Solve(p, Options{IntVars: cols, ObjIntegral: true,
			Parallelism: 4, ParallelThreshold: -1, Mode: ModeSteal,
			Status: st, NodeDelay: 2 * time.Millisecond})
		done <- err
	}()
	var live SearchSnapshot
	deadline := time.After(10 * time.Second)
	for {
		if snap, ok := st.Snapshot(); ok && snap.Running && snap.Nodes > 0 {
			live = snap
			break
		}
		select {
		case err := <-done:
			t.Fatalf("solve finished before a live snapshot was seen (err=%v)", err)
		case <-deadline:
			t.Fatal("no live snapshot within 10s")
		case <-time.After(time.Millisecond):
		}
	}
	if live.Mode != "steal" || live.Workers != 4 {
		t.Fatalf("live snapshot mode/workers = %q/%d", live.Mode, live.Workers)
	}
	if live.Gap == 0 {
		t.Fatalf("gap = 0 in a live snapshot; want -1 (unknown) or a positive gap: %+v", live)
	}
	if len(live.WorkerPhases) != 5 {
		t.Fatalf("worker phases = %v, want 5 slots (coordinator + 4 workers)", live.WorkerPhases)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	after, ok := st.Snapshot()
	if !ok || after.Running {
		t.Fatalf("post-solve snapshot = %+v, ok=%v; want attached but not running", after, ok)
	}
	if after.Nodes < live.Nodes {
		t.Fatalf("node counter went backwards: %d -> %d", live.Nodes, after.Nodes)
	}
}

// TestSpanTreeFromSolve runs a traced solve and checks the span tree
// has the documented shape: root-lp and search under the caller's span,
// per-worker children under search, annotated with node counts.
func TestSpanTreeFromSolve(t *testing.T) {
	values, weights, capacity := hardKnapsack(13)
	p, cols := knapsack(values, weights, capacity)
	sc := trace.NewSpans("")
	root := sc.Root("solve")
	_, err := Solve(p, Options{IntVars: cols, ObjIntegral: true,
		Parallelism: 4, ParallelThreshold: -1, Mode: ModeSteal, Span: root})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if n := sc.Open(); n != 0 {
		t.Fatalf("%d spans left open", n)
	}
	byName := map[string][]trace.SpanRec{}
	for _, r := range sc.Snapshot() {
		byName[r.Name] = append(byName[r.Name], r)
	}
	for _, want := range []string{"root-lp", "search"} {
		if len(byName[want]) != 1 {
			t.Fatalf("span %q appears %d times, want 1", want, len(byName[want]))
		}
	}
	search := byName["search"][0]
	if search.Str["mode"] != "steal" {
		t.Fatalf("search mode attr = %q", search.Str["mode"])
	}
	if search.Num["nodes"] <= 0 {
		t.Fatalf("search nodes attr = %v", search.Num["nodes"])
	}
	workers := byName["worker"]
	if len(workers) != 4 {
		t.Fatalf("%d worker spans, want 4", len(workers))
	}
	var workerNodes float64
	for _, w := range workers {
		if w.ParentID != search.SpanID {
			t.Fatalf("worker span parented to %q, not search", w.ParentID)
		}
		if w.Worker == 0 {
			t.Fatal("worker span missing its worker id")
		}
		workerNodes += w.Num["nodes"]
	}
	if workerNodes <= 0 {
		t.Fatal("worker spans carry no node counts")
	}
}
