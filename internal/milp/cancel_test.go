package milp

import (
	"context"
	"testing"
	"time"

	"repro/internal/lp"
)

// parityTrap builds an infeasible problem whose LP relaxation is
// feasible everywhere: sum 2*x_i == 25 over binaries. Every integer
// assignment has an even left side, but fractional points satisfy the
// row exactly, so branch and bound must grind through an exponential
// tree before it can prove infeasibility — a reliable way to keep the
// solver busy for cancellation and limit tests.
func parityTrap(n int) (*lp.Problem, []int) {
	p := &lp.Problem{}
	cols := make([]int, n)
	coef := make([]float64, n)
	for i := range cols {
		cols[i] = p.AddBinary("x", 0)
		coef[i] = 2
	}
	_ = p.AddEQ("odd", cols, coef, 25)
	return p, cols
}

func TestCancelReturnsStatusCancelled(t *testing.T) {
	p, cols := parityTrap(40)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := SolveContext(ctx, p, Options{IntVars: cols})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v, want %v (nodes=%d)", res.Status, StatusCancelled, res.Nodes)
	}
	if !res.Status.Stopped() {
		t.Fatalf("StatusCancelled.Stopped() = false")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if res.Nodes == 0 {
		t.Fatalf("no nodes explored before cancellation")
	}
}

func TestDeadlineIsNotCancellation(t *testing.T) {
	// an expired TimeLimit must keep reporting the limit statuses, not
	// StatusCancelled: only explicit caller cancellation maps there.
	p, cols := parityTrap(40)
	res, err := Solve(p, Options{IntVars: cols, TimeLimit: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusCancelled || res.Status == StatusOptimal || res.Status == StatusInfeasible {
		t.Fatalf("status = %v after time limit", res.Status)
	}
}

func TestNodeLimitStatus(t *testing.T) {
	p, cols := parityTrap(40)
	res, err := Solve(p, Options{IntVars: cols, MaxNodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNodeLimit {
		t.Fatalf("status = %v, want %v", res.Status, StatusNodeLimit)
	}
	if res.Nodes > 50+1 {
		t.Fatalf("nodes = %d exceeds MaxNodes", res.Nodes)
	}
}

func TestNodeLimitKeepsIncumbent(t *testing.T) {
	// interrupt a knapsack after it has an incumbent: the documented
	// contract is that Result.X still holds the best solution found.
	// All values equal all weights, and no subset hits the capacity
	// exactly, so the LP bound never prunes: the first dive yields an
	// incumbent and the tree keeps growing until the node limit.
	n := 20
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i], weights[i] = 3, 3
	}
	p, cols := knapsack(values, weights, 25)
	res, err := Solve(p, Options{IntVars: cols, MaxNodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNodeLimit {
		t.Fatalf("status = %v, want %v", res.Status, StatusNodeLimit)
	}
	if res.X == nil {
		t.Fatal("incumbent dropped on node limit")
	}
	if err := p.Feasible(res.X, 1e-6); err != nil {
		t.Fatalf("incumbent infeasible: %v", err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	p, cols := parityTrap(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveContext(ctx, p, Options{IntVars: cols})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v, want %v", res.Status, StatusCancelled)
	}
}
