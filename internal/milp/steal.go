package milp

import (
	"context"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// donateDepth bounds how deep in the tree a worker still donates its
// second child to the pool: a donated subproblem is replayed from the
// root basis by its taker (one SetBound per fix plus a dual-simplex
// re-optimization), so handing off very deep nodes costs more than
// exploring them in place.
const donateDepth = 24

// stealPool is the work-stealing scheduler of a parallel solve: one
// deque of unexplored subproblems per worker, a condition variable for
// idle workers, and an open-work counter for termination. A worker
// pops its own deque LIFO (depth-first locality: the replayed prefix
// shares most of its fixes with the subtree just explored) and steals
// FIFO from the victim whose oldest — shallowest, hence largest —
// subproblem has the best (lowest) bound, which is the best-bound
// victim-selection rule.
//
// All queue state is guarded by one mutex: donations and pickups are
// rare next to node LP solves, so contention is negligible, and the
// single lock makes the termination protocol (open == 0 with all
// queues empty means the tree is exhausted) trivially correct. The
// hot-path question "does anyone need work?" is answered lock-free
// from two mirrors (hungryA, openA) so branch() never takes the lock
// just to decide not to donate.
type stealPool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   [][]subproblem // per-worker deques
	curBound []float64      // bound of each worker's in-flight subproblem (+Inf when idle)
	open     int  // queued + in-flight subproblems
	waiting  int  // workers blocked in next()
	stopped  bool

	workers int
	hungryA atomic.Bool  // mirror: waiting > 0
	openA   atomic.Int64 // mirror: open
	// steals/picks are atomics (though only written under mu) so the
	// live-introspection snapshot reads them without taking the lock.
	steals atomic.Int64
	picks  atomic.Int64
}

func newStealPool(workers int) *stealPool {
	pl := &stealPool{
		queues:   make([][]subproblem, workers),
		curBound: make([]float64, workers),
		workers:  workers,
	}
	pl.cond = sync.NewCond(&pl.mu)
	for i := range pl.curBound {
		pl.curBound[i] = math.Inf(1)
	}
	return pl
}

// hungry reports, lock-free, whether donating a subproblem would help:
// a worker is idle-waiting, or there is less open work than workers.
func (pl *stealPool) hungry() bool {
	return pl.hungryA.Load() || pl.openA.Load() < int64(pl.workers)
}

// seed enqueues the root subproblem before the workers start.
func (pl *stealPool) seed(sp subproblem) {
	pl.queues[0] = append(pl.queues[0], sp)
	pl.open = 1
	pl.openA.Store(1)
}

// donate pushes a subproblem onto worker w's own deque and wakes one
// idle worker.
func (pl *stealPool) donate(w int, sp subproblem) {
	pl.mu.Lock()
	pl.queues[w] = append(pl.queues[w], sp)
	pl.open++
	pl.openA.Store(int64(pl.open))
	pl.mu.Unlock()
	pl.cond.Signal()
}

// next blocks until worker w has a subproblem to run. It returns the
// subproblem, the victim slot it was stolen from (-1 for the worker's
// own deque) and ok=false when the search is over — the pool was
// aborted, or no open work remains anywhere.
func (pl *stealPool) next(w int) (sp subproblem, victim int, ok bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for {
		if pl.stopped {
			return subproblem{}, -1, false
		}
		if q := pl.queues[w]; len(q) > 0 { // own deque, LIFO
			sp = q[len(q)-1]
			q[len(q)-1] = subproblem{}
			pl.queues[w] = q[:len(q)-1]
			pl.curBound[w] = sp.bound
			pl.picks.Add(1)
			return sp, -1, true
		}
		best, bestB := -1, math.Inf(1)
		for v := range pl.queues {
			if v == w || len(pl.queues[v]) == 0 {
				continue
			}
			if b := pl.queues[v][0].bound; best < 0 || b < bestB {
				best, bestB = v, b
			}
		}
		if best >= 0 { // steal FIFO from the best-bound victim
			sp = pl.queues[best][0]
			pl.queues[best][0] = subproblem{}
			pl.queues[best] = pl.queues[best][1:]
			pl.curBound[w] = sp.bound
			pl.steals.Add(1)
			pl.picks.Add(1)
			return sp, best, true
		}
		if pl.open == 0 {
			return subproblem{}, -1, false
		}
		pl.waiting++
		pl.hungryA.Store(true)
		pl.cond.Wait()
		pl.waiting--
		if pl.waiting == 0 {
			pl.hungryA.Store(false)
		}
	}
}

// done retires worker w's in-flight subproblem and returns the proved
// lower bound over all still-open work (+Inf when the tree is
// exhausted). The last retirement wakes every waiter so they can
// observe termination.
func (pl *stealPool) done(w int) (openMin float64) {
	pl.mu.Lock()
	pl.curBound[w] = math.Inf(1)
	pl.open--
	pl.openA.Store(int64(pl.open))
	openMin = pl.openBoundLocked()
	finished := pl.open == 0
	pl.mu.Unlock()
	if finished {
		pl.cond.Broadcast()
	}
	return openMin
}

// abort stops the pool: next() returns false everywhere. In-flight
// subproblems keep their curBound entry, so openBound still covers the
// subtrees the stop interrupted.
func (pl *stealPool) abort() {
	pl.mu.Lock()
	pl.stopped = true
	pl.mu.Unlock()
	pl.cond.Broadcast()
}

// openBound returns the minimum bound over queued and in-flight
// subproblems: a valid lower bound on everything the search has not
// finished (children bounds only tighten, so each open subtree is
// covered by its recorded root bound).
func (pl *stealPool) openBound() float64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.openBoundLocked()
}

func (pl *stealPool) openBoundLocked() float64 {
	open := math.Inf(1)
	for _, q := range pl.queues {
		for i := range q {
			if q[i].bound < open {
				open = q[i].bound
			}
		}
	}
	for _, b := range pl.curBound {
		if b < open {
			open = b
		}
	}
	return open
}

func (pl *stealPool) stealCount() int64 { return pl.steals.Load() }

// solveSteal runs the work-stealing parallel search: the root
// subproblem is seeded into the pool, Options.Parallelism workers —
// each owning a clone of the root-optimal LP solver — pick up
// subproblems, and every explored node with two live children donates
// its second child whenever some worker is hungry (branch() calls
// pool.hungry()), so the tree splits itself adaptively instead of
// along a fixed depth. Called with the root LP solved to optimality;
// res.BestBound holds the root bound and is tightened here when the
// search is stopped early.
func (s *solver) solveSteal(res *Result, rootMeta nodeMeta) {
	workers := s.opt.Parallelism
	pl := newStealPool(workers)
	pl.seed(subproblem{bound: s.bound(s.lps.Objective())})
	s.sh.pool.Store(pl) // publish for live snapshots
	ws := make([]*solver, workers)
	for w := range ws {
		ws[w] = &solver{
			lps:      s.lps.Clone(), // clone carries Prof: workers share the profile
			prob:     s.prob,
			opt:      s.opt,
			ctx:      s.ctx,
			isInt:    s.isInt,
			sh:       s.sh,
			brancher: forkBrancher(s.brancher),
			worker:   w + 1,
			wslot:    w,
			pool:     pl,
			rec:      s.rec,
			prof:     s.prof,
			bb:       s.bb,
			span:     s.span,
		}
		ws[w].observer = observerOf(ws[w].brancher)
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *solver) {
			defer wg.Done()
			wsp := w.span.Child("worker") // nil-safe: nil when spans are off
			wsp.SetWorker(w.worker)
			defer wsp.End()
			// label the goroutine so CPU profiles slice by worker
			pprof.Do(s.ctx, pprof.Labels("tp_worker", strconv.Itoa(w.worker)), func(context.Context) {
				w.guard(func() { w.stealLoop(rootMeta) })
			})
			wsp.SetNum("nodes", float64(w.local))
			wsp.SetNum("pivots", float64(w.lps.Iterations))
		}(w)
	}
	wg.Wait()
	for _, w := range ws {
		s.lps.Iterations += w.lps.Iterations
		s.lps.Counters.Add(w.lps.Counters)
	}
	res.Steals = pl.stealCount()
	if r := s.sh.stopRequested(); r != reasonNone {
		s.reason = r
		// best-bound aggregation over the work the stop left open; the
		// incumbent clamp happens in the caller's finalization.
		if open := pl.openBound(); !math.IsInf(open, 1) && open > res.BestBound {
			res.BestBound = open
		}
	}
}

// stealLoop is a work-stealing worker's main loop: claim a subproblem
// (own deque or steal), re-anchor the cloned LP at the root basis,
// replay the branching prefix and explore the subtree — donating
// second children back to the pool along the way.
func (w *solver) stealLoop(rootMeta nodeMeta) {
	// re-anchor at the root-optimal basis before every subproblem:
	// cheaper than a fresh Clone and it discards any numerical drift
	// from the previous subtree
	snap := w.lps.Snapshot()
	defer w.sh.setPhase(w.worker, wpDone)
	for {
		if w.sh.stopRequested() != reasonNone {
			return
		}
		w.sh.setPhase(w.worker, wpWait)
		sp, victim, ok := w.pool.next(w.wslot)
		if !ok {
			return
		}
		w.sh.setPhase(w.worker, wpSearch)
		if victim >= 0 && w.sh.tr != nil {
			w.sh.tr.Emit(trace.Event{Kind: trace.KindSteal, Worker: w.worker,
				Nodes: w.sh.nodes.Load(), Bound: sp.bound,
				Msg: "steal from w" + strconv.Itoa(victim+1)})
		}
		if sp.bound >= w.sh.incumbent()-1e-9 {
			// dominated since it was donated: retire without LP work
			w.finishSub()
			continue
		}
		if w.sh.tr != nil {
			w.sh.tr.Emit(trace.Event{Kind: trace.KindWorker, Worker: w.worker,
				Nodes: w.sh.nodes.Load(), Msg: "pickup"})
		}
		w.lps.Restore(snap)
		for _, f := range sp.fixes {
			w.lps.SetBound(f.col, f.val, f.val)
		}
		w.path = append(w.path[:0], sp.fixes...)
		m := nodeMeta{parent: sp.parent, col: -1}
		if n := len(sp.fixes); n > 0 {
			m.col = int32(sp.fixes[n-1].col)
			if sp.fixes[n-1].val >= 0.5 {
				m.dir = 1
			}
		} else {
			m = rootMeta // the root subproblem: keep the root-LP lineage
		}
		var t0 time.Time
		var piv0 int
		if w.prof != nil {
			t0, piv0 = time.Now(), w.lps.Iterations
		}
		cst := w.lps.ReOptimize()
		if w.prof != nil {
			m.ns = time.Since(t0).Nanoseconds()
			m.pivots = int64(w.lps.Iterations - piv0)
			w.prof.Observe(trace.PhaseNodeLP, m.ns)
		}
		w.branch(cst, len(sp.fixes), m)
		if w.reason != reasonNone {
			w.sh.requestStop(w.reason)
			w.pool.abort()
			return
		}
		w.finishSub()
	}
}

// finishSub retires the worker's in-flight subproblem and ratchets the
// streamed best bound: the proved bound is the min over still-open
// work, clamped to the incumbent (the monotone ratchet keeps the
// streamed sequence non-decreasing).
func (w *solver) finishSub() {
	open := w.pool.done(w.wslot)
	if w.sh.tr == nil {
		return
	}
	if inc := w.sh.incumbent(); open > inc {
		open = inc
	}
	if w.sh.raiseBound(open) {
		w.sh.emitProgress(trace.KindBound, w.worker, 0)
	}
}
