package milp

import (
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/trace"
)

// dive runs the root diving heuristic: starting from the root-optimal
// LP, it repeatedly fixes the brancher's chosen column to its nearest
// integer and re-optimizes, descending one root-to-leaf path of the
// tree. An integral, feasible end point becomes the first incumbent —
// found for the cost of one dive instead of a whole subtree — which
// seeds the pruning bound for every worker of the search that follows.
// On the paper's models, where the optimum usually has zero
// communication cost, the dive routinely lands on an optimal point and
// the search degenerates to a pure optimality proof.
//
// The dive is purely heuristic: an infeasible fix is flipped once to
// the opposite bound, and a second failure (or a dominated bound)
// abandons the dive. The solver state is snapshotted before and
// restored after, so the search starts from the untouched root basis.
// Incumbent installation goes through acceptCandidate, which
// re-validates integrality and feasibility against the problem's own
// row data — the dive cannot install an invalid point.
func (s *solver) dive() {
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	snap := s.lps.Snapshot()
	found := false
	x := s.lps.Solution()
	for step := 0; step <= len(s.opt.IntVars); step++ {
		if s.ctx.Err() != nil {
			break
		}
		z := s.lps.Objective()
		if s.bound(z) >= s.sh.incumbent()-1e-9 {
			break // the path is already dominated
		}
		col := -1
		if s.brancher != nil {
			col, _ = s.brancher.Select(x, s.lps.Bound)
		}
		if col < 0 {
			col, _ = s.mostFractional(x)
		}
		if col < 0 {
			// integral over the watched and declared columns: complete
			// auxiliary variables if the model needs it, then install
			xc := x
			if s.opt.Complete != nil {
				if c := s.opt.Complete(x); c != nil {
					xc = c
				}
			}
			before := s.sh.incumbent()
			s.acceptCandidate(xc, math.Inf(-1), false)
			found = s.sh.incumbent() < before-1e-9
			break
		}
		v := 0.0
		if x[col] >= 0.5 {
			v = 1
		}
		lo, hi := s.lps.Bound(col)
		s.lps.SetBound(col, v, v)
		if s.lps.ReOptimize() != lp.StatusOptimal {
			// flip once, then give up
			s.lps.SetBound(col, 1-v, 1-v)
			if s.lps.ReOptimize() != lp.StatusOptimal {
				s.lps.SetBound(col, lo, hi)
				break
			}
		}
		x = s.lps.Solution()
	}
	s.lps.Restore(snap)
	if s.prof != nil {
		s.prof.Observe(trace.PhaseDive, time.Since(t0).Nanoseconds())
	}
	if s.sh.tr != nil {
		msg := "dive: no incumbent"
		if found {
			msg = "dive: incumbent found"
		}
		e := trace.Event{Kind: trace.KindDive, Msg: msg}
		if inc := s.sh.incumbent(); !math.IsInf(inc, 0) {
			e.HasIncumbent, e.Incumbent = true, inc
		}
		s.sh.tr.Emit(e)
	}
}
