package milp

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/trace"
)

// buildKnapsack returns a tiny 0-1 problem with a nontrivial search
// tree: minimize -(5x+4y+3z) subject to 2x+3y+z <= 5.
func buildKnapsack(t *testing.T) (*lp.Problem, []int) {
	t.Helper()
	p := &lp.Problem{}
	x := p.AddBinary("x", -5)
	y := p.AddBinary("y", -4)
	z := p.AddBinary("z", -3)
	if err := p.AddRow("cap", []int{x, y, z}, []float64{2, 3, 1}, -lp.Inf, 5); err != nil {
		t.Fatal(err)
	}
	return p, []int{x, y, z}
}

func TestTraceEventsSerial(t *testing.T) {
	p, ints := buildKnapsack(t)

	// reference solve without tracing
	ref, err := Solve(p, Options{IntVars: ints})
	if err != nil {
		t.Fatal(err)
	}

	ring := trace.NewRing(256)
	tr := trace.New(ring)
	tr.SetSampleEvery(1) // every node, so the tiny tree still emits
	res, err := Solve(p, Options{IntVars: ints, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ref.Status || res.Objective != ref.Objective {
		t.Fatalf("traced solve diverged: %+v vs %+v", res, ref)
	}

	evs := ring.Snapshot()
	if len(evs) == 0 {
		t.Fatal("no events emitted")
	}
	var roots, nodes, incumbents int
	lastBound := math.Inf(-1)
	lastNodes := int64(0)
	for _, e := range evs {
		switch e.Kind {
		case trace.KindRoot:
			roots++
			if e.Bound == 0 {
				t.Fatalf("root event carries no bound: %+v", e)
			}
		case trace.KindNode:
			nodes++
			if e.Nodes < lastNodes {
				t.Fatalf("node counter regressed: %d after %d", e.Nodes, lastNodes)
			}
			lastNodes = e.Nodes
			if e.Bound != 0 && e.Bound < lastBound {
				t.Fatalf("display bound regressed: %v after %v", e.Bound, lastBound)
			}
			if e.Bound != 0 {
				lastBound = e.Bound
			}
		case trace.KindIncumbent:
			incumbents++
			if !e.HasIncumbent {
				t.Fatalf("incumbent event without incumbent: %+v", e)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("got %d root events, want 1", roots)
	}
	if nodes == 0 {
		t.Fatal("no node events despite SampleEvery(1)")
	}
	if incumbents == 0 {
		t.Fatal("no incumbent events")
	}

	last := evs[len(evs)-1]
	if last.Kind != trace.KindStatus {
		t.Fatalf("last event is %q, want status", last.Kind)
	}
	if last.Status != "optimal" {
		t.Fatalf("terminal status %q, want optimal", last.Status)
	}
	if !last.HasIncumbent || last.Incumbent != ref.Objective {
		t.Fatalf("terminal incumbent %v, want %v", last.Incumbent, ref.Objective)
	}
	if int(last.Nodes) != res.Nodes || int(last.Pivots) != res.LPIterations {
		t.Fatalf("terminal counters %d/%d, result says %d/%d",
			last.Nodes, last.Pivots, res.Nodes, res.LPIterations)
	}
	if last.WindowScans == 0 {
		t.Fatalf("terminal event carries no LP counters: %+v", last)
	}
	if last.Gap != 0 {
		t.Fatalf("optimal solve reports gap %v, want 0", last.Gap)
	}
}

func TestTraceEventsParallelMonotoneBound(t *testing.T) {
	p, ints := buildKnapsack(t)
	ring := trace.NewRing(1024)
	tr := trace.New(ring)
	tr.SetSampleEvery(1)
	res, err := Solve(p, Options{IntVars: ints, Parallelism: 4, ParallelThreshold: -1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	lastBound := math.Inf(-1)
	for _, e := range ring.Snapshot() {
		if e.Kind != trace.KindNode && e.Kind != trace.KindBound && e.Kind != trace.KindStatus {
			continue
		}
		if e.Bound != 0 && e.Bound < lastBound-1e-9 {
			t.Fatalf("bound regressed to %v after %v in %q event", e.Bound, lastBound, e.Kind)
		}
		if e.Bound != 0 {
			lastBound = e.Bound
		}
	}
}
