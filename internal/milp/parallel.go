package milp

import (
	"context"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lp"
	"repro/internal/trace"
)

// shared is the cross-worker state of a solve. The serial path uses it
// too (with exactly one goroutine), so there is a single code path for
// incumbent handling.
//
// The incumbent objective is mirrored in incBits as raw float64 bits
// so the hot pruning test in branch() is a single atomic load with no
// lock. The CAS-min loop keeps it monotonically decreasing; a reader
// seeing a slightly stale (larger) value prunes less, never wrongly,
// which is what makes the parallel objective provably identical to the
// serial one: any subtree discarded against a bound that held at some
// point in time also fails against the final, smaller incumbent.
type shared struct {
	nodes   atomic.Int64  // global explored-node counter (MaxNodes)
	stop    atomic.Int32  // sticky stopReason; first writer wins
	incBits atomic.Uint64 // math.Float64bits of the incumbent objective

	// Tracing state. tr is nil when tracing is off; sample is always a
	// positive interval so the node-loop modulo never divides by zero.
	// dispBits is the monotone display bound: a CAS-max ratchet over
	// math.Float64bits, seeded with -Inf, raised by the root bound and
	// by the parallel best-bound aggregation, so streamed bound events
	// never regress even though per-subtree LP bounds move both ways.
	tr       *trace.Tracer
	sample   int64
	dispBits atomic.Uint64

	mu     sync.Mutex // guards incObj/incX (the authoritative pair)
	incObj float64
	incX   []float64
}

func newShared(upper float64, tr *trace.Tracer) *shared {
	sh := &shared{incObj: upper, tr: tr, sample: tr.SampleEvery()}
	sh.incBits.Store(math.Float64bits(upper))
	sh.dispBits.Store(math.Float64bits(math.Inf(-1)))
	return sh
}

// incumbent returns the current incumbent objective for pruning.
func (sh *shared) incumbent() float64 {
	return math.Float64frombits(sh.incBits.Load())
}

// install makes (obj, x) the incumbent if it improves on the current
// one by more than the solver's comparison tolerance, reporting whether
// it became the authoritative incumbent (so callers can record the
// install). x is copied. worker attributes the resulting incumbent
// trace event.
func (sh *shared) install(obj float64, x []float64, worker int) bool {
	for {
		old := sh.incBits.Load()
		if obj >= math.Float64frombits(old)-1e-9 {
			return false
		}
		if sh.incBits.CompareAndSwap(old, math.Float64bits(obj)) {
			break
		}
	}
	sh.mu.Lock()
	improved := false
	if obj < sh.incObj-1e-9 {
		sh.incObj = obj
		sh.incX = append([]float64(nil), x...)
		improved = true
	}
	sh.mu.Unlock()
	if improved {
		sh.emitProgress(trace.KindIncumbent, worker, 0)
	}
	return improved
}

// best returns the final incumbent pair (nil X when none was found).
func (sh *shared) best() (float64, []float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.incObj, sh.incX
}

// requestStop records the first stop reason; later ones are ignored.
func (sh *shared) requestStop(r stopReason) {
	sh.stop.CompareAndSwap(int32(reasonNone), int32(r))
}

func (sh *shared) stopRequested() stopReason {
	return stopReason(sh.stop.Load())
}

// raiseBound lifts the monotone display bound to v if it improves it,
// reporting whether it moved. Safe under concurrent callers: the
// CAS-max loop keeps dispBits non-decreasing.
func (sh *shared) raiseBound(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	for {
		old := sh.dispBits.Load()
		if v <= math.Float64frombits(old) {
			return false
		}
		if sh.dispBits.CompareAndSwap(old, math.Float64bits(v)) {
			return true
		}
	}
}

// displayBound returns the current monotone display bound (-Inf until
// the root LP is solved).
func (sh *shared) displayBound() float64 {
	return math.Float64frombits(sh.dispBits.Load())
}

// emitProgress emits a search-progress event carrying the global node
// count, the incumbent (when one exists), the display bound and the
// relative gap. No-op when tracing is off.
func (sh *shared) emitProgress(kind trace.Kind, worker, sub int) {
	if sh.tr == nil {
		return
	}
	e := trace.Event{Kind: kind, Nodes: sh.nodes.Load(), Worker: worker, Subproblem: sub}
	inc := sh.incumbent()
	if !math.IsInf(inc, 0) && !math.IsNaN(inc) {
		e.HasIncumbent = true
		e.Incumbent = inc
	}
	b := sh.displayBound()
	if !math.IsInf(b, 0) && !math.IsNaN(b) {
		e.Bound = b
		if e.HasIncumbent {
			e.Gap = gapOf(inc, b)
		}
	}
	sh.tr.Emit(e)
}

// gapOf is the relative optimality gap between an incumbent objective
// and a proved lower bound, clamped at 0 and scaled by max(1, |inc|).
func gapOf(inc, bound float64) float64 {
	g := inc - bound
	if g < 0 {
		g = 0
	}
	d := math.Abs(inc)
	if d < 1 {
		d = 1
	}
	return g / d
}

// fix is one branching-bound assignment on the path from the root.
type fix struct {
	col int
	val float64
}

// subproblem is an unexplored subtree handed to a worker: the branching
// prefix that defines it, its parent LP bound (already ceil-rounded
// when the objective is integral) used for best-bound aggregation when
// the search stops early, and the recorder node id of the split-phase
// node it was collected at, so the worker's pickup re-solve appears as
// that node's child in a recording.
type subproblem struct {
	fixes  []fix
	bound  float64
	parent int64
}

// splitFactor subproblems per worker keeps the queue long enough that
// an early-finishing worker always finds more work.
const splitFactor = 4

// solveParallel runs the parallel search: expand the tree serially
// until enough independent subproblems exist, then let
// Options.Parallelism workers — each owning a cloned LP solver — drain
// them, pruning against the shared incumbent. Called with the root LP
// already solved to optimality; res.BestBound holds the root bound and
// is tightened here when the search is stopped early.
func (s *solver) solveParallel(res *Result, rootMeta nodeMeta) {
	workers := s.opt.Parallelism
	target := workers * splitFactor
	depth := 1
	for 1<<depth < target && depth < 16 {
		depth++
	}
	var subs []subproblem
	s.splitDepth = depth
	s.collect = &subs
	s.branch(lp.StatusOptimal, 0, rootMeta)
	s.collect = nil
	if s.reason != reasonNone || len(subs) == 0 {
		// a limit hit during the split, or the split alone finished the
		// tree — either way the serial finalization applies as-is
		return
	}

	var next atomic.Int64
	completed := make([]atomic.Bool, len(subs))
	ws := make([]*solver, workers)
	for w := range ws {
		ws[w] = &solver{
			lps:      s.lps.Clone(), // clone carries Prof: workers share the profile
			prob:     s.prob,
			opt:      s.opt,
			ctx:      s.ctx,
			isInt:    s.isInt,
			sh:       s.sh,
			brancher: forkBrancher(s.brancher),
			worker:   w + 1,
			rec:      s.rec,
			prof:     s.prof,
		}
		ws[w].observer = observerOf(ws[w].brancher)
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *solver) {
			defer wg.Done()
			// label the goroutine so CPU profiles slice by worker
			pprof.Do(s.ctx, pprof.Labels("tp_worker", strconv.Itoa(w.worker)), func(context.Context) {
				w.drain(subs, &next, completed)
			})
		}(w)
	}
	wg.Wait()
	for _, w := range ws {
		s.lps.Iterations += w.lps.Iterations
		s.lps.Counters.Add(w.lps.Counters)
	}
	if r := s.sh.stopRequested(); r != reasonNone {
		s.reason = r
		// best-bound aggregation: the proved lower bound is the minimum
		// over the subproblems that were not fully explored (children
		// bounds only tighten, so each open subtree is covered by its
		// recorded root bound). The incumbent clamp happens in the
		// caller's finalization.
		open := math.Inf(1)
		for i := range subs {
			if !completed[i].Load() && subs[i].bound < open {
				open = subs[i].bound
			}
		}
		if !math.IsInf(open, 1) && open > res.BestBound {
			res.BestBound = open
		}
	}
}

// drain is a parallel worker's main loop: claim the next subproblem,
// re-anchor the cloned LP at the root basis, replay the branching
// prefix and explore the subtree.
func (w *solver) drain(subs []subproblem, next *atomic.Int64, completed []atomic.Bool) {
	// re-anchor at the root-optimal basis before every
	// subproblem: cheaper than a fresh Clone and it discards
	// any numerical drift from the previous subtree
	snap := w.lps.Snapshot()
	for {
		if w.sh.stopRequested() != reasonNone {
			return
		}
		i := int(next.Add(1)) - 1
		if i >= len(subs) {
			return
		}
		if w.sh.tr != nil {
			w.sh.tr.Emit(trace.Event{Kind: trace.KindWorker,
				Worker: w.worker, Subproblem: i + 1,
				Nodes: w.sh.nodes.Load(), Msg: "pickup"})
		}
		sp := subs[i]
		w.lps.Restore(snap)
		for _, f := range sp.fixes {
			w.lps.SetBound(f.col, f.val, f.val)
		}
		m := nodeMeta{parent: sp.parent, col: -1}
		if n := len(sp.fixes); n > 0 {
			m.col = int32(sp.fixes[n-1].col)
			if sp.fixes[n-1].val >= 0.5 {
				m.dir = 1
			}
		}
		var t0 time.Time
		var piv0 int
		if w.prof != nil {
			t0, piv0 = time.Now(), w.lps.Iterations
		}
		cst := w.lps.ReOptimize()
		if w.prof != nil {
			m.ns = time.Since(t0).Nanoseconds()
			m.pivots = int64(w.lps.Iterations - piv0)
			w.prof.Observe(trace.PhaseNodeLP, m.ns)
		}
		w.branch(cst, len(sp.fixes), m)
		if w.reason != reasonNone {
			w.sh.requestStop(w.reason)
			return
		}
		completed[i].Store(true)
		if w.sh.tr != nil {
			// the proved bound is min over still-open subproblem
			// bounds, clamped to the incumbent; the ratchet keeps
			// the streamed sequence monotone (open-min only grows
			// as subproblems finish, and the incumbent can never
			// fall below a valid proved bound).
			open := math.Inf(1)
			for j := range subs {
				if !completed[j].Load() && subs[j].bound < open {
					open = subs[j].bound
				}
			}
			if inc := w.sh.incumbent(); open > inc {
				open = inc
			}
			if w.sh.raiseBound(open) {
				w.sh.emitProgress(trace.KindBound, w.worker, i+1)
			}
		}
	}
}

// Forker is implemented by stateful Branchers that can produce an
// independent instance per parallel worker. Under
// Options.Parallelism > 1 the solver forks the configured Brancher for
// every worker through this interface; a stateful brancher (such as
// *PseudoCost) that does not implement it would be shared across
// goroutines and must not be used in a parallel solve. Stateless
// branchers (BrancherFunc closures over immutable data, like
// FirstFractional or PriorityBrancher) are safe to share and need not
// implement Forker.
type Forker interface {
	Fork() Brancher
}

func forkBrancher(b Brancher) Brancher {
	if f, ok := b.(Forker); ok {
		return f.Fork()
	}
	return b
}

// BoundObserver is implemented by branchers that learn from LP bound
// degradations (pseudo-cost branching). When the configured Brancher
// implements it, the solver reports every branch it takes: col and up
// identify the child, parent and child are the LP objectives before
// and after the branching fix. Observations stay within one worker —
// each forked brancher sees only its own subtree's bounds.
type BoundObserver interface {
	Observe(col int, up bool, parent, child float64)
}

func observerOf(b Brancher) BoundObserver {
	if o, ok := b.(BoundObserver); ok {
		return o
	}
	return nil
}
