package milp

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// shared is the cross-worker state of a solve. The serial path uses it
// too (with exactly one goroutine), so there is a single code path for
// incumbent handling.
//
// The incumbent objective is mirrored in incBits as raw float64 bits
// so the hot pruning test in branch() is a single atomic load with no
// lock. The CAS-min loop keeps it monotonically decreasing; a reader
// seeing a slightly stale (larger) value prunes less, never wrongly,
// which is what makes the parallel objective provably identical to the
// serial one: any subtree discarded against a bound that held at some
// point in time also fails against the final, smaller incumbent.
type shared struct {
	nodes   atomic.Int64  // global explored-node counter (MaxNodes)
	stop    atomic.Int32  // sticky stopReason; first writer wins
	incBits atomic.Uint64 // math.Float64bits of the incumbent objective

	// Tracing state. tr is nil when tracing is off; sample is always a
	// positive interval so the node-loop modulo never divides by zero.
	// dispBits is the monotone display bound: a CAS-max ratchet over
	// math.Float64bits, seeded with -Inf, raised by the root bound and
	// by the parallel best-bound aggregation, so streamed bound events
	// never regress even though per-subtree LP bounds move both ways.
	tr       *trace.Tracer
	sample   int64
	dispBits atomic.Uint64

	// First-incumbent bookkeeping for the time-to-first-solution
	// experiment columns: firstInc flips once, on the first install that
	// actually improved the incumbent (a primed InitialUpper does not
	// count), stamping the global node count and the elapsed time.
	start        time.Time
	firstInc     atomic.Bool
	firstIncNode atomic.Int64
	firstIncNS   atomic.Int64

	mu     sync.Mutex // guards incObj/incX (the authoritative pair)
	incObj float64
	incX   []float64

	// Observability extensions (all optional; nil/empty when off).
	// bb is the per-solve black box — shared so incumbent installs and
	// worker panics land in the same ring as the node stream. pool is
	// published by solveSteal so live snapshots can read the open/steal
	// counters lock-free. wphase holds one coarse phase slot per worker
	// (index 0 = serial/coordinator), allocated only when a
	// SearchStatus is attached. The panic fields keep the first
	// recovered worker panic for the terminal error.
	bb     *trace.BlackBox
	pool   atomic.Pointer[stealPool]
	wphase []atomic.Int32

	panicMu   sync.Mutex
	panicMsg  string
	panicNode int64
}

func newShared(upper float64, tr *trace.Tracer, start time.Time) *shared {
	sh := &shared{incObj: upper, tr: tr, sample: tr.SampleEvery(), start: start}
	sh.incBits.Store(math.Float64bits(upper))
	sh.dispBits.Store(math.Float64bits(math.Inf(-1)))
	return sh
}

// incumbent returns the current incumbent objective for pruning.
func (sh *shared) incumbent() float64 {
	return math.Float64frombits(sh.incBits.Load())
}

// install makes (obj, x) the incumbent if it improves on the current
// one by more than the solver's comparison tolerance, reporting whether
// it became the authoritative incumbent (so callers can record the
// install). x is copied. worker attributes the resulting incumbent
// trace event.
func (sh *shared) install(obj float64, x []float64, worker int) bool {
	for {
		old := sh.incBits.Load()
		if obj >= math.Float64frombits(old)-1e-9 {
			return false
		}
		if sh.incBits.CompareAndSwap(old, math.Float64bits(obj)) {
			break
		}
	}
	sh.mu.Lock()
	improved := false
	if obj < sh.incObj-1e-9 {
		sh.incObj = obj
		sh.incX = append([]float64(nil), x...)
		improved = true
	}
	sh.mu.Unlock()
	if improved {
		if sh.firstInc.CompareAndSwap(false, true) {
			sh.firstIncNode.Store(sh.nodes.Load())
			sh.firstIncNS.Store(time.Since(sh.start).Nanoseconds())
		}
		if sh.bb != nil {
			sh.bb.Record(trace.BBEvent{Kind: trace.BBIncumbent, Worker: worker,
				Node: sh.nodes.Load(), Incumbent: obj, Bound: sh.displayBound()})
		}
		sh.emitProgress(trace.KindIncumbent, worker, 0)
	}
	return improved
}

// best returns the final incumbent pair (nil X when none was found).
func (sh *shared) best() (float64, []float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.incObj, sh.incX
}

// requestStop records the first stop reason; later ones are ignored.
func (sh *shared) requestStop(r stopReason) {
	sh.stop.CompareAndSwap(int32(reasonNone), int32(r))
}

func (sh *shared) stopRequested() stopReason {
	return stopReason(sh.stop.Load())
}

// raiseBound lifts the monotone display bound to v if it improves it,
// reporting whether it moved. Safe under concurrent callers: the
// CAS-max loop keeps dispBits non-decreasing.
func (sh *shared) raiseBound(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	for {
		old := sh.dispBits.Load()
		if v <= math.Float64frombits(old) {
			return false
		}
		if sh.dispBits.CompareAndSwap(old, math.Float64bits(v)) {
			return true
		}
	}
}

// displayBound returns the current monotone display bound (-Inf until
// the root LP is solved).
func (sh *shared) displayBound() float64 {
	return math.Float64frombits(sh.dispBits.Load())
}

// emitProgress emits a search-progress event carrying the global node
// count, the incumbent (when one exists), the display bound and the
// relative gap. No-op when tracing is off.
func (sh *shared) emitProgress(kind trace.Kind, worker, sub int) {
	if sh.tr == nil {
		return
	}
	e := trace.Event{Kind: kind, Nodes: sh.nodes.Load(), Worker: worker, Subproblem: sub}
	inc := sh.incumbent()
	if !math.IsInf(inc, 0) && !math.IsNaN(inc) {
		e.HasIncumbent = true
		e.Incumbent = inc
	}
	b := sh.displayBound()
	if !math.IsInf(b, 0) && !math.IsNaN(b) {
		e.Bound = b
		if e.HasIncumbent {
			e.Gap = gapOf(inc, b)
		}
	}
	sh.tr.Emit(e)
}

// setPhase publishes worker's coarse phase for live snapshots; no-op
// unless a SearchStatus allocated the phase slots. Called at
// subproblem granularity, never per node.
func (sh *shared) setPhase(worker int, p int32) {
	if sh.wphase == nil || worker < 0 || worker >= len(sh.wphase) {
		return
	}
	sh.wphase[worker].Store(p)
}

// recordPanic captures a recovered worker panic: the first one wins
// the terminal error, every one lands in the black box (with the
// goroutine stack) and the trace, and the black box is flushed so the
// events leading up to the crash survive. Safe from any worker.
func (sh *shared) recordPanic(worker int, r any) {
	msg := fmt.Sprint(r)
	node := sh.nodes.Load()
	sh.panicMu.Lock()
	if sh.panicMsg == "" {
		sh.panicMsg = msg
		sh.panicNode = node
	}
	sh.panicMu.Unlock()
	if sh.bb != nil {
		sh.bb.Record(trace.BBEvent{Kind: trace.BBPanic, Worker: worker, Node: node,
			Incumbent: sh.incumbent(), Bound: sh.displayBound(),
			Msg: msg + "\n" + string(debug.Stack())})
		sh.bb.Flush("worker-panic")
	}
	if sh.tr != nil {
		sh.tr.Emit(trace.Event{Kind: trace.KindPanic, Worker: worker, Nodes: node, Msg: msg})
	}
}

// panicked reports the first recovered panic, if any.
func (sh *shared) panicked() (msg string, node int64, ok bool) {
	sh.panicMu.Lock()
	defer sh.panicMu.Unlock()
	return sh.panicMsg, sh.panicNode, sh.panicMsg != ""
}

// guard runs fn, converting a panic into a recorded anomaly: the
// shared state remembers it, the black box flushes, the search stops
// everywhere and the pool (if any) aborts so no worker blocks on the
// crashed one's unfinished subproblem. This wraps every worker
// goroutine of the parallel modes and the serial dispatch, so a
// programming error in a brancher, probe or the solver itself fails
// the one solve instead of the process.
func (w *solver) guard(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			w.sh.recordPanic(w.worker, r)
			w.reason = reasonPanic
			w.sh.requestStop(reasonPanic)
			if w.pool != nil {
				w.pool.abort()
			}
		}
	}()
	fn()
}

// gapOf is the relative optimality gap between an incumbent objective
// and a proved lower bound, clamped at 0 and scaled by max(1, |inc|).
func gapOf(inc, bound float64) float64 {
	g := inc - bound
	if g < 0 {
		g = 0
	}
	d := math.Abs(inc)
	if d < 1 {
		d = 1
	}
	return g / d
}

// fix is one branching-bound assignment on the path from the root.
type fix struct {
	col int
	val float64
}

// subproblem is an unexplored subtree handed to a worker: the branching
// prefix that defines it, its parent LP bound (already ceil-rounded
// when the objective is integral) used for best-bound aggregation when
// the search stops early, and the recorder node id of the node it was
// donated at, so the worker's pickup re-solve appears as that node's
// child in a recording.
type subproblem struct {
	fixes  []fix
	bound  float64
	parent int64
}

// Forker is implemented by stateful Branchers that can produce an
// independent instance per parallel worker. Under
// Options.Parallelism > 1 the solver forks the configured Brancher for
// every worker through this interface; a stateful brancher (such as
// *PseudoCost) that does not implement it would be shared across
// goroutines and must not be used in a parallel solve. Stateless
// branchers (BrancherFunc closures over immutable data, like
// FirstFractional or PriorityBrancher) are safe to share and need not
// implement Forker.
type Forker interface {
	Fork() Brancher
}

func forkBrancher(b Brancher) Brancher {
	if f, ok := b.(Forker); ok {
		return f.Fork()
	}
	return b
}

// BoundObserver is implemented by branchers that learn from LP bound
// degradations (pseudo-cost branching). When the configured Brancher
// implements it, the solver reports every branch it takes: col and up
// identify the child, parent and child are the LP objectives before
// and after the branching fix. Observations stay within one worker —
// each forked brancher sees only its own subtree's bounds.
type BoundObserver interface {
	Observe(col int, up bool, parent, child float64)
}

func observerOf(b Brancher) BoundObserver {
	if o, ok := b.(BoundObserver); ok {
		return o
	}
	return nil
}
