// Package viz renders temporal partitioning solutions as SVG Gantt
// charts: one row per functional unit, one box per scheduled
// operation, segments separated by reconfiguration bands — the
// pictures HLS papers draw by hand.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/partition"
)

const (
	cellW    = 64
	cellH    = 28
	leftPad  = 96
	topPad   = 44
	gapW     = 18 // reconfiguration band width
	fontSize = 11
)

// segment color palette (fill, darker border), cycled per segment.
var palette = [][2]string{
	{"#cfe3ff", "#3069b0"},
	{"#ffe3c2", "#b06a1a"},
	{"#d6f5d0", "#2e8540"},
	{"#f3d1f0", "#8d3b86"},
	{"#f5f0bb", "#8a7d14"},
}

// WriteSVG renders the solution's schedule as an SVG document.
func WriteSVG(w io.Writer, g *graph.Graph, alloc *library.Allocation, sol *partition.Solution) error {
	// order segments and compute their step spans
	type seg struct {
		p           int
		first, last int
		ops         []int
	}
	byP := map[int]*seg{}
	for i := 0; i < g.NumOps(); i++ {
		p := sol.TaskPartition[g.Op(i).Task]
		s, ok := byP[p]
		if !ok {
			s = &seg{p: p, first: sol.OpStep[i], last: sol.OpStep[i]}
			byP[p] = s
		}
		if sol.OpStep[i] < s.first {
			s.first = sol.OpStep[i]
		}
		if sol.OpStep[i] > s.last {
			s.last = sol.OpStep[i]
		}
		s.ops = append(s.ops, i)
	}
	segs := make([]*seg, 0, len(byP))
	for _, s := range byP {
		segs = append(segs, s)
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].p < segs[b].p })

	nu := alloc.NumUnits()
	totalSteps := 0
	for _, s := range segs {
		totalSteps += s.last - s.first + 1
	}
	width := leftPad + totalSteps*cellW + (len(segs)-1)*gapW + 16
	height := topPad + nu*cellH + 40

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="%d">`+"\n",
		width, height, fontSize)
	fmt.Fprintf(&sb, `<text x="%d" y="16" font-size="13">%s — %d segments, comm cost %d</text>`+"\n",
		leftPad, escape(g.Name), len(segs), sol.Comm)

	// unit rows
	for u := 0; u < nu; u++ {
		y := topPad + u*cellH
		fmt.Fprintf(&sb, `<text x="6" y="%d">%s</text>`+"\n", y+cellH/2+4, escape(alloc.Unit(u).Name))
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			leftPad, y, width-8, y)
	}

	// segments left to right in execution order
	x := leftPad
	for si, s := range segs {
		col := palette[si%len(palette)]
		segW := (s.last - s.first + 1) * cellW
		// header + background
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" opacity="0.25"/>`+"\n",
			x, topPad, segW, nu*cellH, col[0])
		fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="%s">segment %d</text>`+"\n",
			x+4, topPad-8, col[1], s.p)
		// step ticks
		for j := 0; j <= s.last-s.first+1; j++ {
			fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n",
				x+j*cellW, topPad, x+j*cellW, topPad+nu*cellH)
		}
		for j := s.first; j <= s.last; j++ {
			fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="#888">%d</text>`+"\n",
				x+(j-s.first)*cellW+cellW/2-6, topPad+nu*cellH+16, j)
		}
		// op boxes
		for _, i := range s.ops {
			u := sol.OpUnit[i]
			lat := alloc.Unit(u).Type.Latency
			if lat < 1 {
				lat = 1
			}
			bx := x + (sol.OpStep[i]-s.first)*cellW
			by := topPad + u*cellH
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" rx="3" fill="%s" stroke="%s"/>`+"\n",
				bx+1, by+2, lat*cellW-2, cellH-4, col[0], col[1])
			label := g.Op(i).Label
			if label == "" {
				label = fmt.Sprintf("%s%d", g.Op(i).Kind, i)
			}
			fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="%s">%s</text>`+"\n",
				bx+6, by+cellH/2+4, col[1], escape(trim(label, lat*cellW/8)))
		}
		x += segW
		if si < len(segs)-1 {
			// reconfiguration band
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="#999" opacity="0.5"/>`+"\n",
				x, topPad, gapW, nu*cellH)
			fmt.Fprintf(&sb, `<text x="%d" y="%d" transform="rotate(90 %d %d)" fill="#333">reconfig</text>`+"\n",
				x+13, topPad+4, x+13, topPad+4)
			x += gapW
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trim(s string, max int) string {
	if max < 2 {
		max = 2
	}
	if len(s) > max {
		return s[:max-1] + "…"
	}
	return s
}
