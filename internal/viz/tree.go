package viz

// Search-tree rendering: a flight recording from internal/trace drawn
// as a Graphviz DOT digraph — one node per recorded branch-and-bound
// node, one edge per branching decision. Incumbent-producing nodes are
// doubled, pruned/infeasible nodes grayed, so `dot -Tsvg` gives the
// search-tree pictures MILP papers draw by hand.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
)

// WriteSearchDOT renders the recording's search tree as a DOT digraph.
// Node ids in the output are "n<id>"; the label carries the LP status,
// the objective (when the LP solved) and the solve cost. Edges are
// labeled with the branching decision x<col>=<dir> taken from parent to
// child; parallel pickup re-entries (no single branching edge) get a
// dashed edge instead. Nodes that produced an incumbent are drawn with
// a double border.
func WriteSearchDOT(w io.Writer, rec *trace.Recording) error {
	if rec == nil {
		return fmt.Errorf("viz: nil recording")
	}
	bw := &errWriter{w: w}

	incAt := map[int64]float64{}
	for _, inc := range rec.Incumbents {
		incAt[inc.Node] = inc.Obj
	}

	label := rec.Label
	if label == "" {
		label = "search"
	}
	bw.printf("digraph %q {\n", dotID(label))
	bw.printf("  rankdir=TB;\n")
	bw.printf("  node [shape=box, fontsize=10, fontname=\"Helvetica\"];\n")
	bw.printf("  edge [fontsize=9, fontname=\"Helvetica\"];\n")
	bw.printf("  label=%s;\n  labelloc=t;\n", dotQuote(treeCaption(rec)))

	// stable output: nodes are recorded in exploration order already,
	// but a decoded recording could have been concatenated — sort by id
	nodes := make([]trace.NodeRec, len(rec.Nodes))
	copy(nodes, rec.Nodes)
	sort.Slice(nodes, func(a, b int) bool { return nodes[a].ID < nodes[b].ID })

	for _, n := range nodes {
		attrs := []string{"label=" + dotQuote(nodeCaption(n))}
		switch {
		case strings.Contains(n.LP, "infeasible"):
			attrs = append(attrs, "style=filled", "fillcolor=\"#eeeeee\"", "color=\"#999999\"")
		case n.HasObj:
			attrs = append(attrs, "style=filled", "fillcolor=\"#cfe3ff\"", "color=\"#3069b0\"")
		}
		if _, ok := incAt[n.ID]; ok {
			attrs = append(attrs, "peripheries=2", "penwidth=1.5")
		}
		bw.printf("  n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
	}
	for _, n := range nodes {
		if n.Parent == 0 {
			continue
		}
		if n.Col < 0 {
			// parallel pickup: the worker re-enters at a subproblem whose
			// fix prefix is not a single edge
			bw.printf("  n%d -> n%d [style=dashed, label=\"w%d pickup\"];\n",
				n.Parent, n.ID, n.Worker)
			continue
		}
		bw.printf("  n%d -> n%d [label=\"x%d=%d\"];\n", n.Parent, n.ID, n.Col, n.Dir)
	}
	bw.printf("}\n")
	return bw.err
}

// treeCaption summarizes the recording for the graph title.
func treeCaption(rec *trace.Recording) string {
	var b strings.Builder
	if rec.Label != "" {
		fmt.Fprintf(&b, "%s: ", rec.Label)
	}
	fmt.Fprintf(&b, "%d nodes", rec.TotalNodes)
	if rec.Dropped > 0 {
		fmt.Fprintf(&b, " (%d beyond the recording limit)", rec.Dropped)
	}
	if rec.Status != "" {
		fmt.Fprintf(&b, ", %s", rec.Status)
	}
	if rec.WallNS > 0 {
		fmt.Fprintf(&b, ", %.1f ms", float64(rec.WallNS)/1e6)
	}
	return b.String()
}

// nodeCaption is the multi-line DOT label of one node.
func nodeCaption(n trace.NodeRec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d d%d", n.ID, n.Depth)
	if n.Worker > 0 {
		fmt.Fprintf(&b, " w%d", n.Worker)
	}
	b.WriteString("\\n")
	if n.HasObj {
		fmt.Fprintf(&b, "lp %.4g", n.Obj)
	} else if n.LP != "" {
		b.WriteString(n.LP)
	}
	if n.Pivots > 0 {
		fmt.Fprintf(&b, "\\n%d piv", n.Pivots)
	}
	return b.String()
}

// dotQuote wraps s in DOT double quotes, escaping only the quote
// character: backslash sequences like \n are DOT line-break escapes
// built by the caption builders and must pass through verbatim (%q
// would double-escape them).
func dotQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// dotID sanitizes a label for use as a quoted DOT identifier.
func dotID(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\\' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

// errWriter latches the first write error so the render loop stays
// unconditional.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
