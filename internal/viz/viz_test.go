package viz

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/partition"
)

func fixture(t *testing.T) (*graph.Graph, *library.Allocation, *partition.Solution) {
	t.Helper()
	g := graph.New("viz")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "load")
	b := g.AddOp(t0, graph.OpMul, "")
	c := g.AddOp(t1, graph.OpSub, "store")
	g.AddOpEdge(a, b)
	g.Connect(b, c, 2)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol := &partition.Solution{
		N:             2,
		TaskPartition: []int{1, 2},
		OpStep:        []int{1, 2, 3},
		OpUnit:        []int{0, 1, 2},
		Comm:          2,
	}
	if err := partition.Verify(g, alloc, library.XC4025(), sol, partition.VerifyOptions{L: 1}); err != nil {
		t.Fatal(err)
	}
	return g, alloc, sol
}

func TestWriteSVG(t *testing.T) {
	g, alloc, sol := fixture(t)
	var sb strings.Builder
	if err := WriteSVG(&sb, g, alloc, sol); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>",
		"segment 1", "segment 2",
		"reconfig",
		"add16#0", "mul16#0", "sub16#0",
		"load", "store",
		"comm cost 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<rect") < 5 {
		t.Errorf("too few boxes:\n%s", out)
	}
}

func TestWriteSVGSingleSegmentNoReconfigBand(t *testing.T) {
	g, alloc, sol := fixture(t)
	sol.TaskPartition = []int{1, 1}
	sol.Comm = 0
	var sb strings.Builder
	if err := WriteSVG(&sb, g, alloc, sol); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "reconfig") {
		t.Error("single-segment chart must not contain a reconfiguration band")
	}
}

func TestEscapeAndTrim(t *testing.T) {
	if escape(`a<b>&"c`) != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("escape: %q", escape(`a<b>&"c`))
	}
	if got := trim("abcdefgh", 4); got != "abc…" {
		t.Fatalf("trim: %q", got)
	}
	if got := trim("ab", 8); got != "ab" {
		t.Fatalf("trim short: %q", got)
	}
}
