package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

// treeFixture is a small hand-built recording: a root, two serial
// children (one infeasible), and a parallel pickup re-entry, with one
// incumbent.
func treeFixture() *trace.Recording {
	return &trace.Recording{
		Label: "fixture",
		Nodes: []trace.NodeRec{
			{ID: 1, Col: -1, LP: "optimal", Obj: 3.5, HasObj: true, Pivots: 12},
			{ID: 2, Parent: 1, Depth: 1, Col: 7, Dir: 1, LP: "optimal", Obj: 4, HasObj: true, Pivots: 3},
			{ID: 3, Parent: 1, Depth: 1, Col: 7, Dir: 0, LP: "infeasible"},
			{ID: 4, Parent: 2, Worker: 2, Depth: 2, Col: -1, LP: "optimal", Obj: 4, HasObj: true},
		},
		Incumbents: []trace.IncRec{{Node: 4, Obj: 4}},
		Status:     "optimal",
		WallNS:     1_500_000,
		TotalNodes: 4,
		Pivots:     15,
	}
}

// TestWriteSearchDOT checks the rendered digraph structurally: one DOT
// node per recorded node, one edge per lineage link, branch labels on
// serial edges, dashed pickup edges, incumbent double borders.
func TestWriteSearchDOT(t *testing.T) {
	rec := treeFixture()
	var buf bytes.Buffer
	if err := WriteSearchDOT(&buf, rec); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()

	if !strings.HasPrefix(dot, `digraph "fixture" {`) {
		t.Fatalf("missing digraph header:\n%s", dot)
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("digraph not closed")
	}
	for _, want := range []string{
		"n1 [", "n2 [", "n3 [", "n4 [", // every node declared
		`n1 -> n2 [label="x7=1"]`, // branch edge with decision
		`n1 -> n3 [label="x7=0"]`,
		`n2 -> n4 [style=dashed, label="w2 pickup"]`, // parallel re-entry
		"peripheries=2",                              // incumbent highlight
		"4 nodes",                                    // caption totals
		"optimal",                                    // caption status
		`fillcolor="#ee`,                             // infeasible gray
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if n := strings.Count(dot, "->"); n != 3 {
		t.Errorf("edge count = %d, want 3", n)
	}
}

// TestSearchDOTRoundTrip checks that a recording encoded through the
// wire codec and decoded back renders the identical DOT document — the
// tree survives the codec byte for byte.
func TestSearchDOTRoundTrip(t *testing.T) {
	rec := treeFixture()

	var direct bytes.Buffer
	if err := WriteSearchDOT(&direct, rec); err != nil {
		t.Fatal(err)
	}

	for _, compress := range []bool{false, true} {
		var wire bytes.Buffer
		if err := rec.Encode(&wire, compress); err != nil {
			t.Fatal(err)
		}
		decoded, err := trace.DecodeRecording(&wire)
		if err != nil {
			t.Fatal(err)
		}
		var replayed bytes.Buffer
		if err := WriteSearchDOT(&replayed, decoded); err != nil {
			t.Fatal(err)
		}
		if replayed.String() != direct.String() {
			t.Errorf("compress=%v: DOT differs after codec round trip:\n--- direct ---\n%s\n--- replayed ---\n%s",
				compress, direct.String(), replayed.String())
		}
	}
}

// TestWriteSearchDOTNil rejects a nil recording instead of writing a
// broken document.
func TestWriteSearchDOTNil(t *testing.T) {
	if err := WriteSearchDOT(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil recording accepted")
	}
}
