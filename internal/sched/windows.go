// Package sched provides the scheduling substrate of the temporal
// partitioning system: ASAP/ALAP mobility windows over the combined
// operation graph (the preprocessing step of Kaul & Vemuri, Section 3),
// and a resource-constrained list scheduler used both to estimate the
// number of temporal segments N and as a fast heuristic baseline.
package sched

import (
	"fmt"

	"repro/internal/graph"
)

// Duration maps an operation ID to its length in control steps. The
// base paper model is unit latency; the multicycle extension derives
// durations from the component library.
type Duration func(opID int) int

// UnitDuration is the base-model duration: every operation takes one
// control step.
func UnitDuration(int) int { return 1 }

// Windows holds the ASAP/ALAP mobility analysis of an operation graph.
// Control steps are numbered from 1 as in the paper.
type Windows struct {
	// ASAP[i] is the earliest start step of operation i.
	ASAP []int
	// ALAP[i] is the latest start step of operation i in a schedule of
	// length CriticalPath (before latency relaxation).
	ALAP []int
	// Dur[i] is the duration used for operation i.
	Dur []int
	// CriticalPath is the length of the longest dependency chain in
	// control steps; the minimum feasible schedule length.
	CriticalPath int
}

// ComputeWindows runs ASAP and ALAP longest-path analyses over the
// combined operation graph of g (intra- and inter-task edges). dur may
// be nil for unit latency. It returns an error if the operation graph
// is cyclic or a duration is non-positive.
func ComputeWindows(g *graph.Graph, dur Duration) (*Windows, error) {
	if dur == nil {
		dur = UnitDuration
	}
	n := g.NumOps()
	order, err := g.TopoOps()
	if err != nil {
		return nil, err
	}
	w := &Windows{
		ASAP: make([]int, n),
		ALAP: make([]int, n),
		Dur:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		w.Dur[i] = dur(i)
		if w.Dur[i] <= 0 {
			return nil, fmt.Errorf("sched: non-positive duration %d for op %d", w.Dur[i], i)
		}
	}
	for _, i := range order {
		w.ASAP[i] = 1
		for _, p := range g.OpPred(i) {
			if s := w.ASAP[p] + w.Dur[p]; s > w.ASAP[i] {
				w.ASAP[i] = s
			}
		}
		if end := w.ASAP[i] + w.Dur[i] - 1; end > w.CriticalPath {
			w.CriticalPath = end
		}
	}
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		w.ALAP[i] = w.CriticalPath - w.Dur[i] + 1
		for _, s := range g.OpSucc(i) {
			if l := w.ALAP[s] - w.Dur[i]; l < w.ALAP[i] {
				w.ALAP[i] = l
			}
		}
		if w.ALAP[i] < w.ASAP[i] {
			return nil, fmt.Errorf("sched: inconsistent window for op %d: ASAP %d > ALAP %d", i, w.ASAP[i], w.ALAP[i])
		}
	}
	return w, nil
}

// Steps returns CS(i): the candidate start steps of operation i with
// latency relaxation L, i.e. ASAP(i) .. ALAP(i)+L.
func (w *Windows) Steps(i, L int) []int {
	lo, hi := w.ASAP[i], w.ALAP[i]+L
	out := make([]int, 0, hi-lo+1)
	for j := lo; j <= hi; j++ {
		out = append(out, j)
	}
	return out
}

// MaxStep returns the last usable control step with relaxation L.
func (w *Windows) MaxStep(L int) int { return w.CriticalPath + L }

// Mobility returns ALAP(i)-ASAP(i), the slack of operation i without
// relaxation.
func (w *Windows) Mobility(i int) int { return w.ALAP[i] - w.ASAP[i] }
