package sched

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/library"
)

// ForceDirected implements Paulin & Knight's force-directed scheduling
// under a fixed step budget: operations are placed one at a time at
// the step of minimal "force", where force measures how much a
// placement increases the expected concurrency of its operation kind
// (the distribution-graph value) plus the restriction it imposes on
// predecessors and successors. The result balances kind concurrency
// across steps, which minimizes the number of functional units needed —
// the classic time-constrained HLS objective, complementary to the
// resource-constrained list scheduler.
//
// The returned assignment maps every op to a start step in
// [ASAP, ALAP+L]; units are NOT bound (Unit is -1 throughout) — pair it
// with BindUnits or use it as a schedule seed.
func ForceDirected(g *graph.Graph, w *Windows, L int) (*Assignment, error) {
	no := g.NumOps()
	order, err := g.TopoOps()
	if err != nil {
		return nil, err
	}
	// mutable windows, tightened as ops get fixed
	lo := make([]int, no)
	hi := make([]int, no)
	for i := 0; i < no; i++ {
		lo[i] = w.ASAP[i]
		hi[i] = w.ALAP[i] + L
	}
	fixed := make([]bool, no)
	a := &Assignment{Step: make([]int, no), Unit: make([]int, no)}
	for i := range a.Unit {
		a.Unit[i] = -1
	}

	// distribution graph: for each kind and step, the summed placement
	// probability of unfixed ops (fixed ops contribute 1 at their step)
	maxStep := w.MaxStep(L)
	dg := func(kind graph.OpKind, j int) float64 {
		v := 0.0
		for i := 0; i < no; i++ {
			if g.Op(i).Kind != kind {
				continue
			}
			if j < lo[i] || j > hi[i] {
				continue
			}
			v += 1.0 / float64(hi[i]-lo[i]+1)
		}
		return v
	}
	// selfForce of placing op i at step j: DG increase at j minus the
	// average DG over its current window (standard FDS force)
	selfForce := func(i, j int) float64 {
		kind := g.Op(i).Kind
		avg := 0.0
		for jj := lo[i]; jj <= hi[i]; jj++ {
			avg += dg(kind, jj)
		}
		avg /= float64(hi[i] - lo[i] + 1)
		return dg(kind, j) - avg
	}
	// propagate window tightening after fixing op i at step j;
	// returns false on an emptied window (placement impossible)
	propagate := func() bool {
		changed := true
		for changed {
			changed = false
			for _, i := range order {
				for _, pr := range g.OpPred(i) {
					if m := lo[pr] + w.Dur[pr]; m > lo[i] {
						lo[i] = m
						changed = true
					}
				}
			}
			for k := len(order) - 1; k >= 0; k-- {
				i := order[k]
				for _, sc := range g.OpSucc(i) {
					if m := hi[sc] - w.Dur[i]; m < hi[i] {
						hi[i] = m
						changed = true
					}
				}
			}
		}
		for i := 0; i < no; i++ {
			if lo[i] > hi[i] {
				return false
			}
		}
		return true
	}

	for placed := 0; placed < no; placed++ {
		// pick the unfixed op/step pair with minimal total force,
		// breaking ties toward the most constrained op
		bestOp, bestStep := -1, 0
		bestForce := math.Inf(1)
		for i := 0; i < no; i++ {
			if fixed[i] {
				continue
			}
			for j := lo[i]; j <= hi[i]; j++ {
				f := selfForce(i, j)
				// predecessor/successor force: shrinking their windows
				for _, pr := range g.OpPred(i) {
					if !fixed[pr] && hi[pr] > j-w.Dur[pr] {
						f += 0.5 // penalize restricting the predecessor
					}
				}
				for _, sc := range g.OpSucc(i) {
					if !fixed[sc] && lo[sc] < j+w.Dur[i] {
						f += 0.5
					}
				}
				if f < bestForce-1e-12 ||
					(f < bestForce+1e-12 && bestOp >= 0 && hi[i]-lo[i] < hi[bestOp]-lo[bestOp]) {
					bestOp, bestStep, bestForce = i, j, f
				}
			}
		}
		if bestOp < 0 {
			return nil, fmt.Errorf("sched: force-directed scheduling stalled")
		}
		fixed[bestOp] = true
		lo[bestOp], hi[bestOp] = bestStep, bestStep
		a.Step[bestOp] = bestStep
		if end := bestStep + w.Dur[bestOp] - 1; end > a.Span {
			a.Span = end
		}
		if !propagate() {
			return nil, fmt.Errorf("sched: force-directed placement emptied a window (op %d at %d)", bestOp, bestStep)
		}
	}
	_ = maxStep
	return a, nil
}

// BindUnits assigns functional units to a fixed-step schedule greedily
// (each op takes the lowest-ID compatible unit free at its step),
// returning an error when some step needs more parallel units of a
// kind than the allocation provides.
func BindUnits(g *graph.Graph, alloc *library.Allocation, w *Windows, a *Assignment) error {
	type slot struct{ j, u int }
	busy := map[slot]bool{}
	for i := 0; i < g.NumOps(); i++ {
		bound := false
		for _, u := range alloc.UnitsFor(g.Op(i).Kind) {
			lat := alloc.Unit(u).Type.Latency
			if lat < 1 {
				lat = 1
			}
			occHi := a.Step[i] + lat - 1
			if alloc.Unit(u).Type.Pipelined {
				occHi = a.Step[i]
			}
			free := true
			for j := a.Step[i]; j <= occHi; j++ {
				if busy[slot{j, u}] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			for j := a.Step[i]; j <= occHi; j++ {
				busy[slot{j, u}] = true
			}
			a.Unit[i] = u
			bound = true
			break
		}
		if !bound {
			return fmt.Errorf("sched: no free unit for op %d (%s) at step %d", i, g.Op(i).Kind, a.Step[i])
		}
	}
	return nil
}

// PeakConcurrency returns, per operation kind, the maximum number of
// simultaneously executing ops of that kind in the schedule — the FU
// demand a time-constrained scheduler tries to minimize.
func PeakConcurrency(g *graph.Graph, w *Windows, a *Assignment) map[graph.OpKind]int {
	count := map[graph.OpKind]map[int]int{}
	for i := 0; i < g.NumOps(); i++ {
		kind := g.Op(i).Kind
		if count[kind] == nil {
			count[kind] = map[int]int{}
		}
		for j := a.Step[i]; j <= a.Step[i]+w.Dur[i]-1; j++ {
			count[kind][j]++
		}
	}
	peak := map[graph.OpKind]int{}
	for kind, byStep := range count {
		for _, c := range byStep {
			if c > peak[kind] {
				peak[kind] = c
			}
		}
	}
	return peak
}
