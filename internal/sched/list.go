package sched

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/library"
)

// Assignment is an op -> (start step, FU instance) mapping produced by
// the list scheduler. Steps are local to the scheduled segment,
// starting at 1.
type Assignment struct {
	Step []int // start step per op ID (0 = not scheduled)
	Unit []int // FU instance ID per op ID (-1 = not scheduled)
	Span int   // makespan in steps
}

// ListSchedule performs resource-constrained list scheduling of the
// operations in ops (IDs into g) on the FU instances units (IDs into
// alloc). Priority is least-ALAP-first using the provided windows.
// Non-pipelined multicycle units block for their full latency;
// pipelined units accept one operation per step. It returns an error
// when some operation has no compatible unit.
func ListSchedule(g *graph.Graph, alloc *library.Allocation, w *Windows, ops []int, units []int) (*Assignment, error) {
	inSet := make(map[int]bool, len(ops))
	for _, o := range ops {
		inSet[o] = true
	}
	a := &Assignment{
		Step: make([]int, g.NumOps()),
		Unit: make([]int, g.NumOps()),
	}
	for i := range a.Unit {
		a.Unit[i] = -1
	}
	// compatible units per op, in unit-ID order
	compat := make(map[int][]int, len(ops))
	for _, o := range ops {
		var c []int
		for _, u := range units {
			if alloc.Unit(u).Type.CanExecute(g.Op(o).Kind) {
				c = append(c, u)
			}
		}
		if len(c) == 0 {
			return nil, fmt.Errorf("sched: op %d (%s) has no compatible unit", o, g.Op(o).Kind)
		}
		compat[o] = c
	}
	// busyUntil[u]: first step at which unit u is free to start a new op
	busyUntil := map[int]int{}
	done := make(map[int]int, len(ops)) // op -> finish step (inclusive)
	remaining := len(ops)
	// predecessors restricted to the scheduled set are the only ones
	// that gate readiness inside a segment; callers schedule segments
	// in dependency order so external predecessors already completed.
	preds := func(o int) []int {
		var ps []int
		for _, p := range g.OpPred(o) {
			if inSet[p] {
				ps = append(ps, p)
			}
		}
		return ps
	}
	for step := 1; remaining > 0; step++ {
		if step > len(ops)*maxDur(w, ops)+w.CriticalPath+1 {
			return nil, fmt.Errorf("sched: list scheduler did not converge (internal error)")
		}
		// ready ops, least ALAP first, then op ID
		var ready []int
		for _, o := range ops {
			if a.Step[o] != 0 {
				continue
			}
			ok := true
			for _, p := range preds(o) {
				if a.Step[p] == 0 || done[p] >= step {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, o)
			}
		}
		sort.Slice(ready, func(x, y int) bool {
			if w.ALAP[ready[x]] != w.ALAP[ready[y]] {
				return w.ALAP[ready[x]] < w.ALAP[ready[y]]
			}
			return ready[x] < ready[y]
		})
		for _, o := range ready {
			for _, u := range compat[o] {
				if busyUntil[u] > step {
					continue
				}
				ft := alloc.Unit(u).Type
				d := w.Dur[o]
				a.Step[o] = step
				a.Unit[o] = u
				done[o] = step + d - 1
				if ft.Pipelined {
					busyUntil[u] = step + 1
				} else {
					busyUntil[u] = step + d
				}
				if done[o] > a.Span {
					a.Span = done[o]
				}
				remaining--
				break
			}
		}
	}
	return a, nil
}

func maxDur(w *Windows, ops []int) int {
	m := 1
	for _, o := range ops {
		if w.Dur[o] > m {
			m = w.Dur[o]
		}
	}
	return m
}

// SegmentPlan is a heuristic task-to-segment assignment.
type SegmentPlan struct {
	// Segment[t] is the 1-based segment index of task t.
	Segment []int
	// N is the number of segments used.
	N int
	// Steps[s] is the makespan of 1-based segment s as scheduled by the
	// list scheduler.
	Steps []int
	// Comm is the total inter-segment communication cost of the plan
	// under the paper's objective (eq. 14): each task edge whose
	// endpoints are in different segments contributes
	// Bandwidth * (number of segment boundaries it crosses... counted
	// once per boundary p with seg(t1) < p <= seg(t2)).
	Comm int
}

// EstimateSegments packs tasks into temporal segments in topological
// order, closing a segment when the minimal FU area needed by its tasks
// no longer fits the device (eq. 11 with the cheapest unit per needed
// kind). This is the paper's "fast, heuristic list scheduling technique
// to estimate the number of segments": the returned N upper-bounds the
// number of segments the optimal solution needs.
func EstimateSegments(g *graph.Graph, alloc *library.Allocation, dev library.Device) (*SegmentPlan, error) {
	if k, ok := alloc.Covers(g); !ok {
		return nil, fmt.Errorf("sched: allocation cannot execute op kind %q", k)
	}
	order, err := g.TopoTasks()
	if err != nil {
		return nil, err
	}
	minFG := func(kinds map[graph.OpKind]bool) int {
		// cheapest single unit per needed kind; a unit may cover
		// several kinds, so greedily account each kind with its
		// cheapest server (lower bound on real area).
		sum := 0
		for k := range kinds {
			best := -1
			for _, u := range alloc.UnitsFor(k) {
				fg := alloc.Unit(u).Type.FG
				if best < 0 || fg < best {
					best = fg
				}
			}
			sum += best
		}
		return sum
	}
	plan := &SegmentPlan{Segment: make([]int, g.NumTasks()), N: 1}
	curKinds := map[graph.OpKind]bool{}
	for _, t := range order {
		tk := map[graph.OpKind]bool{}
		for k := range curKinds {
			tk[k] = true
		}
		for _, o := range g.Task(t).Ops {
			tk[g.Op(o).Kind] = true
		}
		if !dev.Fits(minFG(tk)) {
			// close the segment, start a new one with just this task
			plan.N++
			curKinds = map[graph.OpKind]bool{}
			for _, o := range g.Task(t).Ops {
				curKinds[g.Op(o).Kind] = true
			}
			if !dev.Fits(minFG(curKinds)) {
				return nil, fmt.Errorf("sched: task %d alone exceeds device capacity", t)
			}
		} else {
			curKinds = tk
		}
		plan.Segment[t] = plan.N
	}
	plan.Comm = CommCost(g, plan.Segment)
	return plan, nil
}

// CommCost evaluates the paper's objective (eq. 14) for a task-to-
// segment assignment: for every task edge t1->t2 with seg(t1) <
// seg(t2), every boundary p in (seg(t1), seg(t2)] stores the edge's
// bandwidth, so the edge contributes Bandwidth * (seg(t2)-seg(t1)).
func CommCost(g *graph.Graph, segment []int) int {
	cost := 0
	for _, e := range g.TaskEdges() {
		if d := segment[e.To] - segment[e.From]; d > 0 {
			cost += e.Bandwidth * d
		}
	}
	return cost
}

// MemoryAt returns the scratch-memory demand at boundary p (data live
// across the cut between segments p-1 and p, p >= 2), the left side of
// eq. (3).
func MemoryAt(g *graph.Graph, segment []int, p int) int {
	m := 0
	for _, e := range g.TaskEdges() {
		if segment[e.From] < p && segment[e.To] >= p {
			m += e.Bandwidth
		}
	}
	return m
}

// HeuristicSchedule schedules every segment of plan with the list
// scheduler. Each segment uses a demand-aware unit subset: at least
// ceil(ops-of-kind / step-budget) units per kind when they fit, plus
// opportunistic extras for the busiest kinds. It fills plan.Steps and
// returns the per-op assignment with globally numbered steps (segment
// s starts after segment s-1 ends).
func HeuristicSchedule(g *graph.Graph, alloc *library.Allocation, dev library.Device, w *Windows, plan *SegmentPlan) (*Assignment, error) {
	global := &Assignment{
		Step: make([]int, g.NumOps()),
		Unit: make([]int, g.NumOps()),
	}
	for i := range global.Unit {
		global.Unit[i] = -1
	}
	plan.Steps = make([]int, plan.N)
	base := 0
	// optimistic per-segment step budget: the critical path (callers
	// with a latency relaxation have a little more; underestimating
	// only requests more parallel units, never fewer)
	budget := maxInt(w.CriticalPath, 1)
	for s := 1; s <= plan.N; s++ {
		var ops []int
		counts := map[graph.OpKind]int{}
		for _, t := range g.Tasks() {
			if plan.Segment[t.ID] != s {
				continue
			}
			for _, o := range t.Ops {
				ops = append(ops, o)
				counts[g.Op(o).Kind]++
			}
		}
		if len(ops) == 0 {
			continue
		}
		units, err := pickUnits(alloc, dev, counts, budget)
		if err != nil {
			return nil, fmt.Errorf("sched: segment %d: %w", s, err)
		}
		a, err := ListSchedule(g, alloc, w, ops, units)
		if err != nil {
			return nil, fmt.Errorf("sched: segment %d: %w", s, err)
		}
		for _, o := range ops {
			global.Step[o] = base + a.Step[o]
			global.Unit[o] = a.Unit[o]
		}
		plan.Steps[s-1] = a.Span
		base += a.Span
	}
	global.Span = base
	return global, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pickUnits selects a subset of allocation units for a segment whose
// ops are counted per kind. It takes the cheapest unit per kind, grows
// the busiest kinds toward ceil(count/budget) parallel units, then
// fills leftover area in unit-ID order — all without exceeding the
// device capacity.
func pickUnits(alloc *library.Allocation, dev library.Device, counts map[graph.OpKind]int, budget int) ([]int, error) {
	if budget < 1 {
		budget = 1
	}
	chosen := map[int]bool{}
	area := 0
	serving := map[graph.OpKind]int{} // units able to run each kind
	addUnit := func(u int) {
		chosen[u] = true
		area += alloc.Unit(u).Type.FG
		for _, kind := range alloc.Unit(u).Type.Ops {
			serving[kind]++
		}
	}
	sorted := make([]graph.OpKind, 0, len(counts))
	for k := range counts {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// mandatory: cheapest unit per kind
	for _, k := range sorted {
		if serving[k] > 0 {
			continue
		}
		best, bestFG := -1, 0
		for _, u := range alloc.UnitsFor(k) {
			if chosen[u] {
				continue
			}
			if fg := alloc.Unit(u).Type.FG; best == -1 || fg < bestFG {
				best, bestFG = u, fg
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("no unit for kind %q", k)
		}
		addUnit(best)
	}
	if !dev.Fits(area) {
		return nil, fmt.Errorf("minimal unit set (%d FG) exceeds capacity", area)
	}
	// demand-driven growth: kinds needing more parallelism first
	for {
		bestKind := graph.OpKind("")
		bestDeficit := 0
		for _, k := range sorted {
			want := (counts[k] + budget - 1) / budget
			if d := want - serving[k]; d > bestDeficit {
				// only if another unit of this kind exists and fits
				for _, u := range alloc.UnitsFor(k) {
					if !chosen[u] && dev.Fits(area+alloc.Unit(u).Type.FG) {
						bestKind, bestDeficit = k, d
						break
					}
				}
			}
		}
		if bestDeficit == 0 {
			break
		}
		best, bestFG := -1, 0
		for _, u := range alloc.UnitsFor(bestKind) {
			if chosen[u] || !dev.Fits(area+alloc.Unit(u).Type.FG) {
				continue
			}
			if fg := alloc.Unit(u).Type.FG; best == -1 || fg < bestFG {
				best, bestFG = u, fg
			}
		}
		addUnit(best)
	}
	// opportunistic: remaining units in ID order while they fit
	for _, u := range alloc.Units() {
		if chosen[u.ID] {
			continue
		}
		if dev.Fits(area + u.Type.FG) {
			addUnit(u.ID)
		}
	}
	out := make([]int, 0, len(chosen))
	for u := range chosen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out, nil
}
