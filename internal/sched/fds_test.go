package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/library"
)

func TestForceDirectedRespectsWindowsAndDeps(t *testing.T) {
	g, _ := diamondFDS(t)
	w, err := ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ForceDirected(g, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumOps(); i++ {
		if a.Step[i] < w.ASAP[i] || a.Step[i] > w.ALAP[i]+1 {
			t.Errorf("op %d at %d outside [%d,%d]", i, a.Step[i], w.ASAP[i], w.ALAP[i]+1)
		}
	}
	for _, e := range g.OpEdges() {
		if a.Step[e.To] < a.Step[e.From]+1 {
			t.Errorf("dep %d->%d violated: %d, %d", e.From, e.To, a.Step[e.From], a.Step[e.To])
		}
	}
}

func diamondFDS(t *testing.T) (*graph.Graph, []int) {
	t.Helper()
	g := graph.New("fds")
	tk := g.AddTask("t")
	a := g.AddOp(tk, graph.OpMul, "a")
	b := g.AddOp(tk, graph.OpMul, "b")
	c := g.AddOp(tk, graph.OpMul, "c")
	d := g.AddOp(tk, graph.OpAdd, "d")
	g.AddOpEdge(a, d)
	// b, c are free-floating muls that FDS should spread across steps
	return g, []int{a, b, c, d}
}

// FDS balances concurrency: three muls with slack must not all share a
// step when the budget allows spreading.
func TestForceDirectedBalances(t *testing.T) {
	g, _ := diamondFDS(t)
	w, err := ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ForceDirected(g, w, 1) // 3 steps for 3 muls
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakConcurrency(g, w, a)
	if peak[graph.OpMul] > 2 {
		t.Fatalf("mul concurrency = %d, want <= 2 after balancing (steps: %v)",
			peak[graph.OpMul], a.Step)
	}
}

func TestBindUnits(t *testing.T) {
	g, _ := diamondFDS(t)
	w, err := ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ForceDirected(g, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := BindUnits(g, alloc, w, a); err != nil {
		t.Fatal(err)
	}
	booked := map[[2]int]bool{}
	for i := 0; i < g.NumOps(); i++ {
		if a.Unit[i] < 0 {
			t.Fatalf("op %d unbound", i)
		}
		if !alloc.Unit(a.Unit[i]).Type.CanExecute(g.Op(i).Kind) {
			t.Fatalf("op %d on incompatible unit", i)
		}
		key := [2]int{a.Step[i], a.Unit[i]}
		if booked[key] {
			t.Fatalf("double booking at %v", key)
		}
		booked[key] = true
	}
}

func TestBindUnitsFailsWhenOversubscribed(t *testing.T) {
	// 2 muls forced to the same step, only 1 multiplier
	g := graph.New("o")
	tk := g.AddTask("t")
	g.AddOp(tk, graph.OpMul, "")
	g.AddOp(tk, graph.OpMul, "")
	w, err := ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := &Assignment{Step: []int{1, 1}, Unit: []int{-1, -1}, Span: 1}
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := BindUnits(g, alloc, w, a); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

// Property: FDS schedules random DAGs within windows with deps intact,
// and never exceeds the concurrency of the worst (ASAP) schedule.
func TestPropertyForceDirectedValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.New("p")
		tk := g.AddTask("t")
		n := 3 + r.Intn(8)
		kinds := []graph.OpKind{graph.OpAdd, graph.OpMul}
		ops := make([]int, n)
		for i := range ops {
			ops[i] = g.AddOp(tk, kinds[r.Intn(2)], "")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(4) == 0 {
					g.AddOpEdge(ops[i], ops[j])
				}
			}
		}
		w, err := ComputeWindows(g, nil)
		if err != nil {
			return false
		}
		L := r.Intn(3)
		a, err := ForceDirected(g, w, L)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if a.Step[i] < w.ASAP[i] || a.Step[i] > w.ALAP[i]+L {
				return false
			}
		}
		for _, e := range g.OpEdges() {
			if a.Step[e.To] <= a.Step[e.From] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
