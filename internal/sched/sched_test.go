package sched

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/library"
)

// diamond builds one task with ops a -> b, a -> c, b -> d, c -> d.
func diamond(t *testing.T) (*graph.Graph, []int) {
	t.Helper()
	g := graph.New("diamond")
	tk := g.AddTask("t")
	a := g.AddOp(tk, graph.OpAdd, "a")
	b := g.AddOp(tk, graph.OpMul, "b")
	c := g.AddOp(tk, graph.OpAdd, "c")
	d := g.AddOp(tk, graph.OpSub, "d")
	g.AddOpEdge(a, b)
	g.AddOpEdge(a, c)
	g.AddOpEdge(b, d)
	g.AddOpEdge(c, d)
	return g, []int{a, b, c, d}
}

func TestWindowsDiamond(t *testing.T) {
	g, ops := diamond(t)
	w, err := ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, d := ops[0], ops[1], ops[2], ops[3]
	if w.CriticalPath != 3 {
		t.Fatalf("CP = %d, want 3", w.CriticalPath)
	}
	wantASAP := map[int]int{a: 1, b: 2, c: 2, d: 3}
	wantALAP := map[int]int{a: 1, b: 2, c: 2, d: 3}
	for o, want := range wantASAP {
		if w.ASAP[o] != want {
			t.Errorf("ASAP[%d] = %d, want %d", o, w.ASAP[o], want)
		}
	}
	for o, want := range wantALAP {
		if w.ALAP[o] != want {
			t.Errorf("ALAP[%d] = %d, want %d", o, w.ALAP[o], want)
		}
	}
	if m := w.Mobility(b); m != 0 {
		t.Errorf("mobility(b) = %d", m)
	}
}

func TestWindowsSlack(t *testing.T) {
	// chain a->b plus independent e: e has slack CP-1.
	g := graph.New("slack")
	tk := g.AddTask("t")
	a := g.AddOp(tk, graph.OpAdd, "")
	b := g.AddOp(tk, graph.OpAdd, "")
	e := g.AddOp(tk, graph.OpAdd, "")
	g.AddOpEdge(a, b)
	w, err := ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.ASAP[e] != 1 || w.ALAP[e] != 2 {
		t.Fatalf("window(e) = [%d,%d], want [1,2]", w.ASAP[e], w.ALAP[e])
	}
	if got := w.Steps(e, 1); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Steps(e,1) = %v", got)
	}
	if w.MaxStep(2) != 4 {
		t.Fatalf("MaxStep(2) = %d", w.MaxStep(2))
	}
}

func TestWindowsMulticycle(t *testing.T) {
	g := graph.New("mc")
	tk := g.AddTask("t")
	a := g.AddOp(tk, graph.OpMul, "")
	b := g.AddOp(tk, graph.OpAdd, "")
	g.AddOpEdge(a, b)
	dur := func(o int) int {
		if o == a {
			return 2
		}
		return 1
	}
	w, err := ComputeWindows(g, dur)
	if err != nil {
		t.Fatal(err)
	}
	if w.CriticalPath != 3 {
		t.Fatalf("CP = %d, want 3 (2-cycle mul + add)", w.CriticalPath)
	}
	if w.ASAP[b] != 3 {
		t.Fatalf("ASAP[b] = %d, want 3", w.ASAP[b])
	}
	if w.ALAP[a] != 1 {
		t.Fatalf("ALAP[a] = %d, want 1", w.ALAP[a])
	}
}

func TestWindowsErrors(t *testing.T) {
	g, _ := diamond(t)
	if _, err := ComputeWindows(g, func(int) int { return 0 }); err == nil {
		t.Error("zero duration accepted")
	}
	cyc := graph.New("c")
	tk := cyc.AddTask("t")
	a := cyc.AddOp(tk, graph.OpAdd, "")
	b := cyc.AddOp(tk, graph.OpAdd, "")
	cyc.AddOpEdge(a, b)
	cyc.AddOpEdge(b, a)
	if _, err := ComputeWindows(cyc, nil); err == nil {
		t.Error("cycle accepted")
	}
}

func allocAMS(t *testing.T, a, m, s int) *library.Allocation {
	t.Helper()
	al, err := library.PaperAllocation(library.DefaultLibrary(), a, m, s)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

func TestListScheduleRespectsResourceLimit(t *testing.T) {
	// 4 independent adds on 2 adders -> 2 steps.
	g := graph.New("par")
	tk := g.AddTask("t")
	var ops []int
	for i := 0; i < 4; i++ {
		ops = append(ops, g.AddOp(tk, graph.OpAdd, ""))
	}
	w, _ := ComputeWindows(g, nil)
	alloc := allocAMS(t, 2, 0, 0)
	a, err := ListSchedule(g, alloc, w, ops, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Span != 2 {
		t.Fatalf("span = %d, want 2", a.Span)
	}
	// no two ops share (step, unit)
	seen := map[[2]int]bool{}
	for _, o := range ops {
		key := [2]int{a.Step[o], a.Unit[o]}
		if seen[key] {
			t.Fatalf("double booking at %v", key)
		}
		seen[key] = true
	}
}

func TestListScheduleRespectsDependencies(t *testing.T) {
	g, ops := diamond(t)
	w, _ := ComputeWindows(g, nil)
	alloc := allocAMS(t, 2, 1, 1)
	a, err := ListSchedule(g, alloc, w, ops, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.OpEdges() {
		if a.Step[e.From] >= a.Step[e.To] {
			t.Errorf("dependency %d->%d violated: steps %d,%d", e.From, e.To, a.Step[e.From], a.Step[e.To])
		}
	}
	if a.Span != 3 {
		t.Fatalf("span = %d, want 3", a.Span)
	}
}

func TestListScheduleNoCompatibleUnit(t *testing.T) {
	g := graph.New("x")
	tk := g.AddTask("t")
	o := g.AddOp(tk, graph.OpDiv, "")
	w, _ := ComputeWindows(g, nil)
	alloc := allocAMS(t, 1, 0, 0)
	if _, err := ListSchedule(g, alloc, w, []int{o}, []int{0}); err == nil {
		t.Fatal("expected error for div with only adders")
	}
}

func TestListScheduleMulticycleBlocking(t *testing.T) {
	// two muls on one 2-cycle non-pipelined multiplier -> span 4.
	lib := library.DefaultLibrary()
	alloc, err := library.NewAllocation(lib, map[string]int{"mul16x2": 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New("mc")
	tk := g.AddTask("t")
	m1 := g.AddOp(tk, graph.OpMul, "")
	m2 := g.AddOp(tk, graph.OpMul, "")
	w, _ := ComputeWindows(g, func(int) int { return 2 })
	a, err := ListSchedule(g, alloc, w, []int{m1, m2}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Span != 4 {
		t.Fatalf("span = %d, want 4 (blocking multiplier)", a.Span)
	}
}

func TestListSchedulePipelinedOverlap(t *testing.T) {
	// two muls on one 2-stage pipelined multiplier -> span 3.
	lib := library.DefaultLibrary()
	alloc, err := library.NewAllocation(lib, map[string]int{"mul16p": 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New("pipe")
	tk := g.AddTask("t")
	m1 := g.AddOp(tk, graph.OpMul, "")
	m2 := g.AddOp(tk, graph.OpMul, "")
	w, _ := ComputeWindows(g, func(int) int { return 2 })
	a, err := ListSchedule(g, alloc, w, []int{m1, m2}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Span != 3 {
		t.Fatalf("span = %d, want 3 (pipelined issue)", a.Span)
	}
}

// twoHeavyTasks builds two tasks each needing a multiplier, where two
// multipliers do not fit the device together with anything else.
func twoHeavyTasks(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("heavy")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpMul, "")
	b := g.AddOp(t1, graph.OpMul, "")
	g.Connect(a, b, 8)
	return g
}

func TestEstimateSegmentsSplits(t *testing.T) {
	g := twoHeavyTasks(t)
	alloc := allocAMS(t, 0, 2, 0)
	dev := library.Device{Name: "tiny", CapacityFG: 70, Alpha: 0.7, ScratchMem: 64}
	// one mul16 = 96 FG, 0.7*96 = 67.2 <= 70 fits; two tasks need only
	// one mul each (same kind) so they could share -> fits in one seg.
	plan, err := EstimateSegments(g, alloc, dev)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 1 {
		t.Fatalf("N = %d, want 1 (kinds shared)", plan.N)
	}
}

func TestEstimateSegmentsCapacityError(t *testing.T) {
	g := twoHeavyTasks(t)
	alloc := allocAMS(t, 0, 2, 0)
	dev := library.Device{Name: "nano", CapacityFG: 10, Alpha: 1.0, ScratchMem: 64}
	if _, err := EstimateSegments(g, alloc, dev); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestEstimateSegmentsMultiKind(t *testing.T) {
	// task0 uses add, task1 uses mul; device fits only one kind at a
	// time -> 2 segments.
	g := graph.New("mk")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t1, graph.OpMul, "")
	g.Connect(a, b, 3)
	alloc := allocAMS(t, 1, 1, 0)
	dev := library.Device{Name: "tiny", CapacityFG: 96, Alpha: 1.0, ScratchMem: 64}
	plan, err := EstimateSegments(g, alloc, dev)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 2 {
		t.Fatalf("N = %d, want 2", plan.N)
	}
	if plan.Comm != 3 {
		t.Fatalf("Comm = %d, want 3", plan.Comm)
	}
}

func TestCommCostMultiBoundary(t *testing.T) {
	g := graph.New("cc")
	t0 := g.AddTask("")
	t1 := g.AddTask("")
	t2 := g.AddTask("")
	a := g.AddOp(t0, graph.OpAdd, "")
	g.AddOp(t1, graph.OpAdd, "")
	c := g.AddOp(t2, graph.OpAdd, "")
	g.Connect(a, c, 5)
	// t0 in seg 1, t2 in seg 3: the edge is live across boundaries 2
	// and 3 -> cost 10.
	if got := CommCost(g, []int{1, 2, 3}); got != 10 {
		t.Fatalf("CommCost = %d, want 10", got)
	}
	if m := MemoryAt(g, []int{1, 2, 3}, 2); m != 5 {
		t.Fatalf("MemoryAt(2) = %d, want 5", m)
	}
	if m := MemoryAt(g, []int{1, 2, 3}, 3); m != 5 {
		t.Fatalf("MemoryAt(3) = %d, want 5", m)
	}
}

func TestHeuristicSchedule(t *testing.T) {
	g := graph.New("hs")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t0, graph.OpMul, "")
	c := g.AddOp(t1, graph.OpSub, "")
	g.AddOpEdge(a, b)
	g.Connect(b, c, 2)
	alloc := allocAMS(t, 1, 1, 1)
	dev := library.XC4025()
	w, err := ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := EstimateSegments(g, alloc, dev)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := HeuristicSchedule(g, alloc, dev, w, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.OpEdges() {
		if asg.Step[e.From] >= asg.Step[e.To] {
			t.Errorf("dep %d->%d violated", e.From, e.To)
		}
	}
	if asg.Span < 3 {
		t.Fatalf("span = %d, want >= 3", asg.Span)
	}
}

func TestPropertyListScheduleValid(t *testing.T) {
	lib := library.DefaultLibrary()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.New("p")
		tk := g.AddTask("t")
		n := 2 + r.Intn(8)
		kinds := []graph.OpKind{graph.OpAdd, graph.OpSub, graph.OpMul}
		var ops []int
		for i := 0; i < n; i++ {
			ops = append(ops, g.AddOp(tk, kinds[r.Intn(3)], ""))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					g.AddOpEdge(ops[i], ops[j])
				}
			}
		}
		alloc, err := library.PaperAllocation(lib, 1+r.Intn(2), 1+r.Intn(2), 1)
		if err != nil {
			return false
		}
		w, err := ComputeWindows(g, nil)
		if err != nil {
			return false
		}
		units := make([]int, alloc.NumUnits())
		for i := range units {
			units[i] = i
		}
		a, err := ListSchedule(g, alloc, w, ops, units)
		if err != nil {
			return false
		}
		// invariants: all scheduled, deps respected, no double booking,
		// op on compatible unit, span >= critical path
		booked := map[[2]int]bool{}
		for _, o := range ops {
			if a.Step[o] < 1 || a.Unit[o] < 0 {
				return false
			}
			if !alloc.Unit(a.Unit[o]).Type.CanExecute(g.Op(o).Kind) {
				return false
			}
			key := [2]int{a.Step[o], a.Unit[o]}
			if booked[key] {
				return false
			}
			booked[key] = true
		}
		for _, e := range g.OpEdges() {
			if a.Step[e.From] >= a.Step[e.To] {
				return false
			}
		}
		return a.Span >= w.CriticalPath
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
