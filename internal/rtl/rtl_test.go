package rtl

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/partition"
	"repro/internal/randgraph"
)

// fixture: one segment, chain a -> b -> c plus parallel d, on 2 adders.
func fixture(t *testing.T) (*graph.Graph, *library.Allocation, *partition.Solution) {
	t.Helper()
	g := graph.New("fx")
	t0 := g.AddTask("t0")
	a := g.AddOp(t0, graph.OpAdd, "a")
	b := g.AddOp(t0, graph.OpAdd, "b")
	c := g.AddOp(t0, graph.OpAdd, "c")
	d := g.AddOp(t0, graph.OpAdd, "d")
	g.AddOpEdge(a, b)
	g.AddOpEdge(b, c)
	g.AddOpEdge(a, d)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol := &partition.Solution{
		N:             1,
		TaskPartition: []int{1},
		OpStep:        []int{1, 2, 3, 2},
		OpUnit:        []int{0, 0, 0, 1},
		Comm:          0,
	}
	if err := partition.Verify(g, alloc, library.XC4025(), sol, partition.VerifyOptions{L: 0}); err != nil {
		t.Fatal(err)
	}
	return g, alloc, sol
}

func TestBuildNetlist(t *testing.T) {
	g, alloc, sol := fixture(t)
	n, err := Build(g, alloc, sol, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.Steps != 3 {
		t.Errorf("steps = %d, want 3", n.Steps)
	}
	if len(n.Units) != 2 {
		t.Errorf("units = %d, want 2", len(n.Units))
	}
	if n.FG != 32 {
		t.Errorf("FG = %d, want 32", n.FG)
	}
	// lifetimes: a lives 1->2 (consumers b@2, d@2), b lives 2->3.
	// left-edge: a in r0 (1..2), b in r0? b born at 2, r0 death 2 ->
	// cannot reuse (death < birth required): b needs r1? a dies at 2,
	// b born 2 -> overlap at 2, so 2 registers... actually a's last
	// read is step 2 and b is written at 2; left-edge requires
	// death < birth, so r0 cannot take b. Expect 2 registers.
	if len(n.Registers) != 2 {
		t.Errorf("registers = %d, want 2 (%+v)", len(n.Registers), n.Registers)
	}
	if n.MuxInputs() == 0 {
		t.Error("expected mux inputs")
	}
}

func TestBuildEmptySegment(t *testing.T) {
	g, alloc, sol := fixture(t)
	if _, err := Build(g, alloc, sol, 2); err == nil {
		t.Fatal("empty segment accepted")
	}
}

func TestVHDLEmission(t *testing.T) {
	g, alloc, sol := fixture(t)
	n, err := Build(g, alloc, sol, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := n.VHDL()
	for _, want := range []string{"entity fx_seg1", "add16", "signal r0", "fsm", "done"} {
		if !strings.Contains(v, want) {
			t.Errorf("VHDL missing %q:\n%s", want, v)
		}
	}
}

func TestCrossSegmentValues(t *testing.T) {
	// a (seg 1) feeds b (seg 2): a escapes, b's segment restores it.
	g := graph.New("x")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t1, graph.OpMul, "")
	g.Connect(a, b, 2)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol := &partition.Solution{
		N:             2,
		TaskPartition: []int{1, 2},
		OpStep:        []int{1, 2},
		OpUnit:        []int{0, 1},
		Comm:          2,
	}
	n1, err := Build(g, alloc, sol, 1)
	if err != nil {
		t.Fatal(err)
	}
	// a's value escapes -> needs a register to survive to the store
	if len(n1.Registers) != 1 || !n1.Registers[0].Values[0].Escapes {
		t.Fatalf("segment 1 registers = %+v, want escaping value", n1.Registers)
	}
	n2, err := Build(g, alloc, sol, 2)
	if err != nil {
		t.Fatal(err)
	}
	// b restores a's value: one register born at segment entry
	if len(n2.Registers) != 1 || n2.Registers[0].Values[0].Producer != -1 {
		t.Fatalf("segment 2 registers = %+v, want restored value", n2.Registers)
	}
	all, err := BuildAll(g, alloc, sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("BuildAll = %d netlists", len(all))
	}
}

func TestLeftEdgeMinimal(t *testing.T) {
	// three values with disjoint lifetimes pack into one register
	regs := leftEdge([]Value{
		{Producer: 0, Birth: 1, Death: 2},
		{Producer: 1, Birth: 3, Death: 4},
		{Producer: 2, Birth: 5, Death: 6},
	})
	if len(regs) != 1 || len(regs[0].Values) != 3 {
		t.Fatalf("regs = %+v, want one register with 3 values", regs)
	}
	// three overlapping values need three registers
	regs = leftEdge([]Value{
		{Producer: 0, Birth: 1, Death: 5},
		{Producer: 1, Birth: 2, Death: 5},
		{Producer: 2, Birth: 3, Death: 5},
	})
	if len(regs) != 3 {
		t.Fatalf("regs = %d, want 3", len(regs))
	}
}

// Property: on solved random instances, every segment lowers to RTL,
// register lifetimes never overlap within a register, and the FU area
// matches the solution's segment area.
func TestPropertyLowering(t *testing.T) {
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			return false
		}
		dev := library.Device{Name: "d", CapacityFG: 130, Alpha: 1.0, ScratchMem: 64}
		res, err := core.SolveInstance(
			core.Instance{Graph: g, Alloc: alloc, Device: dev},
			core.Options{N: 2, L: 1, Tightened: true})
		if err != nil {
			return false
		}
		if !res.Feasible {
			return true
		}
		nets, err := BuildAll(g, alloc, res.Solution)
		if err != nil {
			return false
		}
		for _, n := range nets {
			if n.FG != res.Solution.SegmentFG(g, alloc, n.Segment) {
				return false
			}
			for _, r := range n.Registers {
				for i := 1; i < len(r.Values); i++ {
					if r.Values[i].Birth <= r.Values[i-1].Death {
						return false // overlapping lifetimes share a register
					}
				}
			}
			if n.VHDL() == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestVerilogEmission(t *testing.T) {
	g, alloc, sol := fixture(t)
	n, err := Build(g, alloc, sol, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := n.Verilog()
	for _, want := range []string{
		"module fx_seg1", "endmodule",
		"add16 u_add16_0();",
		"reg [15:0] r0;",
		"always @(posedge clk)",
		"done <= (step == 3);",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q:\n%s", want, v)
		}
	}
}

func TestStepBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 16: 5}
	for steps, want := range cases {
		if got := stepBits(steps); got != want {
			t.Errorf("stepBits(%d) = %d, want %d", steps, got, want)
		}
	}
}
