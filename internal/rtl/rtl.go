// Package rtl lowers a verified temporal-partitioning solution to a
// per-segment register-transfer-level datapath: the functional units
// the segment uses, registers allocated by the classic left-edge
// algorithm over value lifetimes, input multiplexers, and a
// step-counter FSM controller. A structural VHDL-flavored netlist can
// be emitted for inspection.
//
// The paper's conclusion names register and bus modeling as the
// natural extension of the formulation; this package provides the
// downstream consumer for such estimates.
package rtl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/partition"
)

// Value is a datum that must be held in a register for part of a
// segment's schedule.
type Value struct {
	// Producer is the op producing the value; -1 for values restored
	// from scratch memory at segment entry.
	Producer int
	// Source is the producing op for restored values (Producer -1).
	Source int
	// Birth and Death bound the lifetime in segment-local steps: the
	// value exists after Birth and is last read at Death.
	Birth, Death int
	// Escapes marks values that must survive to the end of the
	// segment to be stored into scratch memory.
	Escapes bool
}

// Register is one physical register with the values packed into it.
type Register struct {
	ID     int
	Values []Value
}

// Mux is an input multiplexer in front of a functional-unit port.
type Mux struct {
	Unit    int   // FU instance
	Port    int   // input port index
	Sources []int // register IDs selectable at this port
}

// Netlist is the RTL structure of one temporal segment.
type Netlist struct {
	Segment   int
	Graph     string
	Units     []library.FU
	Registers []Register
	Muxes     []Mux
	// Steps is the number of control steps of the segment's schedule.
	Steps int
	// FG is the functional-unit area; RegBits/MuxInputs size the
	// register and interconnect estimate the paper's future-work
	// extension would add to eq. (11).
	FG int
}

// MuxInputs returns the total number of mux inputs, a standard proxy
// for interconnect cost.
func (n *Netlist) MuxInputs() int {
	total := 0
	for _, m := range n.Muxes {
		total += len(m.Sources)
	}
	return total
}

// Build lowers segment p of the solution to RTL.
func Build(g *graph.Graph, alloc *library.Allocation, sol *partition.Solution, p int) (*Netlist, error) {
	var ops []int
	for i := 0; i < g.NumOps(); i++ {
		if sol.TaskPartition[g.Op(i).Task] == p {
			ops = append(ops, i)
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("rtl: segment %d is empty", p)
	}
	inSeg := map[int]bool{}
	first, last := sol.OpStep[ops[0]], sol.OpStep[ops[0]]
	for _, i := range ops {
		inSeg[i] = true
		if sol.OpStep[i] < first {
			first = sol.OpStep[i]
		}
		if sol.OpStep[i] > last {
			last = sol.OpStep[i]
		}
	}
	n := &Netlist{Segment: p, Graph: g.Name, Steps: last - first + 1}
	// functional units actually used
	for _, u := range sol.SegmentUnits(g, p) {
		n.Units = append(n.Units, alloc.Unit(u))
		n.FG += alloc.Unit(u).Type.FG
	}
	local := func(step int) int { return step - first + 1 }

	// value lifetimes
	var values []Value
	for _, i := range ops {
		death := local(sol.OpStep[i])
		escapes := false
		for _, s := range g.OpSucc(i) {
			if inSeg[s] {
				if d := local(sol.OpStep[s]); d > death {
					death = d
				}
			} else {
				escapes = true
			}
		}
		if escapes {
			death = n.Steps + 1
		}
		if death > local(sol.OpStep[i]) {
			values = append(values, Value{Producer: i, Birth: local(sol.OpStep[i]), Death: death, Escapes: escapes})
		}
	}
	// restored inputs: external predecessors feed registers from step 0
	restored := map[int]int{} // producer op -> death
	for _, i := range ops {
		for _, pr := range g.OpPred(i) {
			if inSeg[pr] {
				continue
			}
			if d := local(sol.OpStep[i]); d > restored[pr] {
				restored[pr] = d
			}
		}
	}
	for _, pr := range sortedIntKeys(restored) {
		values = append(values, Value{Producer: -1, Source: pr, Birth: 0, Death: restored[pr]})
	}
	n.Registers = leftEdge(values)

	// muxes: for each FU input port, the registers that can feed it
	regOf := map[int]int{} // producer op -> register ID
	for _, r := range n.Registers {
		for _, v := range r.Values {
			key := v.Producer
			if key == -1 {
				key = v.Source
			}
			regOf[key] = r.ID
		}
	}
	type portKey struct{ unit, port int }
	srcs := map[portKey]map[int]bool{}
	for _, i := range ops {
		preds := g.OpPred(i)
		for port, pr := range preds {
			key := portKey{sol.OpUnit[i], port}
			if srcs[key] == nil {
				srcs[key] = map[int]bool{}
			}
			if r, ok := regOf[pr]; ok {
				srcs[key][r] = true
			}
		}
	}
	keys := make([]portKey, 0, len(srcs))
	for k := range srcs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].unit != keys[b].unit {
			return keys[a].unit < keys[b].unit
		}
		return keys[a].port < keys[b].port
	})
	for _, k := range keys {
		n.Muxes = append(n.Muxes, Mux{Unit: k.unit, Port: k.port, Sources: sortedBoolKeys(srcs[k])})
	}
	return n, nil
}

// BuildAll lowers every used segment.
func BuildAll(g *graph.Graph, alloc *library.Allocation, sol *partition.Solution) ([]*Netlist, error) {
	var out []*Netlist
	for p := 1; p <= sol.N; p++ {
		if len(sol.SegmentTasks(p)) == 0 {
			continue
		}
		n, err := Build(g, alloc, sol, p)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// leftEdge packs value lifetimes into a minimal number of registers
// (classic left-edge allocation: sort by birth, greedily reuse the
// first register whose last death precedes the next birth).
func leftEdge(values []Value) []Register {
	sort.Slice(values, func(a, b int) bool {
		if values[a].Birth != values[b].Birth {
			return values[a].Birth < values[b].Birth
		}
		return values[a].Death < values[b].Death
	})
	var regs []Register
	lastDeath := []int{}
	for _, v := range values {
		placed := false
		for r := range regs {
			if lastDeath[r] < v.Birth {
				regs[r].Values = append(regs[r].Values, v)
				lastDeath[r] = v.Death
				placed = true
				break
			}
		}
		if !placed {
			regs = append(regs, Register{ID: len(regs), Values: []Value{v}})
			lastDeath = append(lastDeath, v.Death)
		}
	}
	return regs
}

func sortedIntKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedBoolKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// VHDL emits a structural VHDL-flavored rendering of the netlist.
func (n *Netlist) VHDL() string {
	var sb strings.Builder
	name := fmt.Sprintf("%s_seg%d", sanitize(n.Graph), n.Segment)
	fmt.Fprintf(&sb, "-- generated by rtl: segment %d of %s\n", n.Segment, n.Graph)
	fmt.Fprintf(&sb, "entity %s is\n", name)
	sb.WriteString("  port (clk, rst : in bit;\n        mem_rd, mem_wr : out bit;\n        start : in bit; done : out bit);\n")
	fmt.Fprintf(&sb, "end %s;\n\n", name)
	fmt.Fprintf(&sb, "architecture structural of %s is\n", name)
	for _, u := range n.Units {
		fmt.Fprintf(&sb, "  component %s -- %d FG, %.0f ns\n", u.Type.Name, u.Type.FG, u.Type.DelayNS)
	}
	fmt.Fprintf(&sb, "  signal step : integer range 0 to %d;\n", n.Steps)
	for _, r := range n.Registers {
		fmt.Fprintf(&sb, "  signal r%d : bit_vector(15 downto 0); -- %d values\n", r.ID, len(r.Values))
	}
	sb.WriteString("begin\n")
	for _, u := range n.Units {
		fmt.Fprintf(&sb, "  u_%s : %s;\n", sanitize(u.Name), u.Type.Name)
	}
	for _, m := range n.Muxes {
		srcs := make([]string, len(m.Sources))
		for i, s := range m.Sources {
			srcs[i] = fmt.Sprintf("r%d", s)
		}
		fmt.Fprintf(&sb, "  -- mux fu%d.in%d <= {%s}\n", m.Unit, m.Port, strings.Join(srcs, ", "))
	}
	fmt.Fprintf(&sb, "  fsm : process(clk) -- %d steps\n  begin\n", n.Steps)
	fmt.Fprintf(&sb, "    if rst = '1' then step <= 0;\n")
	fmt.Fprintf(&sb, "    elsif step < %d then step <= step + 1;\n    end if;\n", n.Steps)
	sb.WriteString("  end process;\n")
	fmt.Fprintf(&sb, "  done <= '1' when step = %d else '0';\n", n.Steps)
	sb.WriteString("end structural;\n")
	return sb.String()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}
