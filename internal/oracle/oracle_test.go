package oracle

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/library"
)

func alloc111(t *testing.T) *library.Allocation {
	t.Helper()
	a, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSolveForcedSplit(t *testing.T) {
	g := graph.New("s")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t1, graph.OpMul, "")
	g.Connect(a, b, 3)
	dev := library.Device{Name: "tiny", CapacityFG: 96, Alpha: 1.0, ScratchMem: 64}
	res, err := Solve(g, alloc111(t), dev, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Comm != 3 {
		t.Fatalf("feasible=%v comm=%d, want true/3", res.Feasible, res.Comm)
	}
	if res.Assignments == 0 {
		t.Fatal("no assignments enumerated")
	}
}

func TestSolveSingleSegment(t *testing.T) {
	g := graph.New("s1")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t1, graph.OpSub, "")
	g.Connect(a, b, 5)
	res, err := Solve(g, alloc111(t), library.XC4025(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Comm != 0 {
		t.Fatalf("feasible=%v comm=%d, want true/0", res.Feasible, res.Comm)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// two parallel muls, one multiplier, one step budget
	g := graph.New("inf")
	t0 := g.AddTask("t0")
	g.AddOp(t0, graph.OpMul, "")
	g.AddOp(t0, graph.OpMul, "")
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, alloc, library.XC4025(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("should be infeasible at L=0")
	}
}

func TestSolveMemoryBound(t *testing.T) {
	g := graph.New("m")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t1, graph.OpMul, "")
	g.Connect(a, b, 10)
	// device forces a split but scratch cannot hold the 10 units
	dev := library.Device{Name: "tiny", CapacityFG: 96, Alpha: 1.0, ScratchMem: 4}
	res, err := Solve(g, alloc111(t), dev, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("memory bound should make every split infeasible")
	}
}

func TestSolveRejectsLargeInstances(t *testing.T) {
	g := graph.New("big")
	t0 := g.AddTask("t0")
	for i := 0; i < 20; i++ {
		g.AddOp(t0, graph.OpAdd, "")
	}
	_, err := Solve(g, alloc111(t), library.XC4025(), 2, 1)
	if err == nil {
		t.Fatal("oversized instance accepted")
	}
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("size guard returned %v, want errors.Is(err, ErrTooLarge)", err)
	}
}
