// Package oracle provides an exhaustive optimal solver for tiny
// temporal-partitioning instances. It enumerates every task-to-segment
// assignment and certifies synthesizability by exact backtracking over
// operation placements. Exponential by design — it exists purely to
// certify the ILP pipeline's optimality in tests.
package oracle

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/sched"
)

// Limits guard against accidentally invoking the oracle on instances
// it cannot enumerate.
const (
	maxTasks = 6
	maxOps   = 10
)

// ErrTooLarge is returned (wrapped) by Solve when the instance exceeds
// the enumeration limits. Callers that feed generated instances — the
// differential fuzzer in particular — match it with errors.Is to skip
// oversized cases without string matching.
var ErrTooLarge = errors.New("oracle: instance too large")

// Result is the oracle's verdict.
type Result struct {
	// Feasible reports whether any assignment synthesizes.
	Feasible bool
	// Comm is the minimal communication cost over all feasible
	// assignments (valid only when Feasible).
	Comm int
	// Assignments is the number of task assignments enumerated.
	Assignments int
}

// Solve exhaustively optimizes the instance: N segments, latency
// relaxation L, unit-latency operations.
func Solve(g *graph.Graph, alloc *library.Allocation, dev library.Device, N, L int) (*Result, error) {
	if g.NumTasks() > maxTasks || g.NumOps() > maxOps {
		return nil, fmt.Errorf("%w (%d tasks, %d ops)", ErrTooLarge, g.NumTasks(), g.NumOps())
	}
	w, err := sched.ComputeWindows(g, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	nt := g.NumTasks()
	assign := make([]int, nt)
	var rec func(t int)
	best := -1
	rec = func(t int) {
		if t == nt {
			res.Assignments++
			cost := sched.CommCost(g, assign)
			if best >= 0 && cost >= best {
				return // cannot improve
			}
			if !checkAssignment(g, dev, assign, N) {
				return
			}
			if synthesizable(g, alloc, dev, w, assign, L) {
				best = cost
			}
			return
		}
		for p := 1; p <= N; p++ {
			ok := true
			for _, pred := range g.TaskPred(t) {
				if pred < t && assign[pred] > p {
					ok = false
					break
				}
			}
			// note: predecessors with larger IDs are checked at the leaf
			if !ok {
				continue
			}
			assign[t] = p
			rec(t + 1)
		}
		assign[t] = 0
	}
	rec(0)
	if best >= 0 {
		res.Feasible = true
		res.Comm = best
	}
	return res, nil
}

// checkAssignment verifies order and memory constraints.
func checkAssignment(g *graph.Graph, dev library.Device, assign []int, N int) bool {
	for _, e := range g.TaskEdges() {
		if assign[e.From] > assign[e.To] {
			return false
		}
	}
	for p := 2; p <= N; p++ {
		if sched.MemoryAt(g, assign, p) > dev.ScratchMem {
			return false
		}
	}
	return true
}

// synthesizable runs exact backtracking over (step, unit) placements
// for all operations under the given task assignment.
func synthesizable(g *graph.Graph, alloc *library.Allocation, dev library.Device, w *sched.Windows, assign []int, L int) bool {
	order, err := g.TopoOps()
	if err != nil {
		return false
	}
	no := g.NumOps()
	step := make([]int, no)
	stepOwner := map[int]int{} // step -> partition
	busy := map[[2]int]bool{}  // (step, unit) occupied
	usedFG := make([]int, len(assign)+2)
	partUnits := make([]map[int]bool, len(assign)+2)
	for i := range partUnits {
		partUnits[i] = map[int]bool{}
	}
	var rec func(n int) bool
	rec = func(n int) bool {
		if n == no {
			return true
		}
		i := order[n]
		p := assign[g.Op(i).Task]
		lo := w.ASAP[i]
		for _, pr := range g.OpPred(i) {
			if step[pr]+1 > lo {
				lo = step[pr] + 1
			}
		}
		for j := lo; j <= w.ALAP[i]+L; j++ {
			if q, owned := stepOwner[j]; owned && q != p {
				continue
			}
			for _, k := range alloc.UnitsFor(g.Op(i).Kind) {
				if busy[[2]int{j, k}] {
					continue
				}
				newUnit := !partUnits[p][k]
				if newUnit && !dev.Fits(usedFG[p]+alloc.Unit(k).Type.FG) {
					continue
				}
				// place
				step[i] = j
				_, hadOwner := stepOwner[j]
				stepOwner[j] = p
				busy[[2]int{j, k}] = true
				if newUnit {
					partUnits[p][k] = true
					usedFG[p] += alloc.Unit(k).Type.FG
				}
				if rec(n + 1) {
					return true
				}
				// undo
				if newUnit {
					delete(partUnits[p], k)
					usedFG[p] -= alloc.Unit(k).Type.FG
				}
				delete(busy, [2]int{j, k})
				if !hadOwner {
					delete(stepOwner, j)
				}
			}
		}
		return false
	}
	return rec(0)
}
