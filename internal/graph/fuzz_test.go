package graph

import (
	"strings"
	"testing"
)

// FuzzParse hardens the text-format parser: arbitrary input must never
// panic, and anything that parses must survive a write/parse round
// trip with identical shape.
func FuzzParse(f *testing.F) {
	f.Add(sampleSpec)
	f.Add("graph g\ntask A\nop A a add\n")
	f.Add("task A\ntask B\nop A a mul\nop B b mul\nxdep a b 3\n")
	f.Add("tedge A B 1")
	f.Add("# comment only\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return
		}
		text := g.String()
		g2, err := ParseString(text)
		if err != nil {
			t.Fatalf("re-parse of serialized graph failed: %v\n%s", err, text)
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumOps() != g.NumOps() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumTasks(), g.NumOps(), g2.NumTasks(), g2.NumOps())
		}
		for _, e := range g.TaskEdges() {
			if g2.Bandwidth(e.From, e.To) != e.Bandwidth {
				t.Fatalf("round trip changed bandwidth %d->%d", e.From, e.To)
			}
		}
	})
}

// FuzzParseNoPanics feeds structured-ish garbage lines.
func FuzzParseNoPanics(f *testing.F) {
	f.Add("op", "A", "a", "add", 3)
	f.Fuzz(func(t *testing.T, d1, d2, d3, d4 string, n int) {
		lines := []string{
			"graph " + d1,
			"task " + d2,
			"op " + d2 + " " + d3 + " " + d4,
			"dep " + d3 + " " + d3,
			"xdep " + d3 + " " + d4 + " " + d1,
		}
		_, _ = ParseString(strings.Join(lines, "\n"))
		_ = n
	})
}
