package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The textual specification format is line oriented:
//
//	graph  <name>
//	task   <task>
//	op     <task> <op> <kind>
//	dep    <op> <op>            # same-task dataflow edge
//	xdep   <op> <op> <bw>       # cross-task dataflow edge, bw data units
//	tedge  <task> <task> <bw>   # explicit task edge (rarely needed)
//
// '#' starts a comment; blank lines are ignored. Tasks and ops are
// referred to by their labels, which must be unique.

// Parse reads a specification in the textual format from r.
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	g := New("")
	taskByName := map[string]int{}
	opByName := map[string]int{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(msg string) error {
			return fmt.Errorf("graph: parse line %d: %s", lineno, msg)
		}
		switch fields[0] {
		case "graph":
			if len(fields) != 2 {
				return nil, fail("want: graph <name>")
			}
			g.Name = fields[1]
		case "task":
			if len(fields) != 2 {
				return nil, fail("want: task <name>")
			}
			if _, dup := taskByName[fields[1]]; dup {
				return nil, fail("duplicate task " + fields[1])
			}
			taskByName[fields[1]] = g.AddTask(fields[1])
		case "op":
			if len(fields) != 4 {
				return nil, fail("want: op <task> <name> <kind>")
			}
			t, ok := taskByName[fields[1]]
			if !ok {
				return nil, fail("unknown task " + fields[1])
			}
			if _, dup := opByName[fields[2]]; dup {
				return nil, fail("duplicate op " + fields[2])
			}
			opByName[fields[2]] = g.AddOp(t, OpKind(fields[3]), fields[2])
		case "dep":
			if len(fields) != 3 {
				return nil, fail("want: dep <op> <op>")
			}
			a, ok1 := opByName[fields[1]]
			b, ok2 := opByName[fields[2]]
			if !ok1 || !ok2 {
				return nil, fail("unknown op in dep")
			}
			if g.Op(a).Task != g.Op(b).Task {
				return nil, fail("dep crosses tasks; use xdep with a bandwidth")
			}
			g.AddOpEdge(a, b)
		case "xdep":
			if len(fields) != 4 {
				return nil, fail("want: xdep <op> <op> <bw>")
			}
			a, ok1 := opByName[fields[1]]
			b, ok2 := opByName[fields[2]]
			if !ok1 || !ok2 {
				return nil, fail("unknown op in xdep")
			}
			bw, err := strconv.Atoi(fields[3])
			if err != nil || bw < 0 {
				return nil, fail("bad bandwidth " + fields[3])
			}
			g.Connect(a, b, bw)
		case "tedge":
			if len(fields) != 4 {
				return nil, fail("want: tedge <task> <task> <bw>")
			}
			a, ok1 := taskByName[fields[1]]
			b, ok2 := taskByName[fields[2]]
			if !ok1 || !ok2 {
				return nil, fail("unknown task in tedge")
			}
			bw, err := strconv.Atoi(fields[3])
			if err != nil || bw < 0 {
				return nil, fail("bad bandwidth " + fields[3])
			}
			g.AddTaskEdge(a, b, bw)
		default:
			return nil, fail("unknown directive " + fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: parse: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// Write emits g in the textual format accepted by Parse. Operation
// labels are made unique and non-empty as needed.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	name := g.Name
	if name == "" {
		name = "unnamed"
	}
	fmt.Fprintf(bw, "graph %s\n", sanitize(name))
	tname := func(t int) string {
		if l := g.Task(t).Label; l != "" {
			return sanitize(l)
		}
		return fmt.Sprintf("t%d", t)
	}
	oname := func(i int) string { return fmt.Sprintf("o%d", i) }
	for _, t := range g.Tasks() {
		fmt.Fprintf(bw, "task %s\n", tname(t.ID))
	}
	for _, op := range g.Ops() {
		fmt.Fprintf(bw, "op %s %s %s\n", tname(op.Task), oname(op.ID), op.Kind)
	}
	// Cross-task op edges carry their own weights; re-parsing
	// accumulates them back into task-edge bandwidths.
	carried := map[[2]int]int{}
	for _, e := range g.OpEdges() {
		ft, tt := g.Op(e.From).Task, g.Op(e.To).Task
		if ft == tt {
			fmt.Fprintf(bw, "dep %s %s\n", oname(e.From), oname(e.To))
			continue
		}
		carried[[2]int{ft, tt}] += e.Weight
		fmt.Fprintf(bw, "xdep %s %s %d\n", oname(e.From), oname(e.To), e.Weight)
	}
	// Task edges not fully accounted for by op-edge weights (built via
	// AddTaskEdge directly) get an explicit tedge for the difference.
	for _, e := range g.TaskEdges() {
		if diff := e.Bandwidth - carried[[2]int{e.From, e.To}]; diff > 0 {
			fmt.Fprintf(bw, "tedge %s %s %d\n", tname(e.From), tname(e.To), diff)
		}
	}
	return bw.Flush()
}

// String renders g in the textual format.
func (g *Graph) String() string {
	var sb strings.Builder
	_ = Write(&sb, g)
	return sb.String()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			return r
		}
		return '_'
	}, s)
}

// DOT renders g as a Graphviz digraph with tasks as clusters, operation
// edges solid and task edges dashed (labeled with bandwidth).
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph \"" + sanitize(g.Name) + "\" {\n")
	sb.WriteString("  rankdir=TB;\n")
	for _, t := range g.Tasks() {
		fmt.Fprintf(&sb, "  subgraph cluster_t%d {\n    label=\"%s\";\n", t.ID, labelOr(t.Label, fmt.Sprintf("t%d", t.ID)))
		ops := append([]int(nil), t.Ops...)
		sort.Ints(ops)
		for _, o := range ops {
			op := g.Op(o)
			fmt.Fprintf(&sb, "    o%d [label=\"%s\\n%s\"];\n", o, labelOr(op.Label, fmt.Sprintf("o%d", o)), op.Kind)
		}
		sb.WriteString("  }\n")
	}
	for _, e := range g.OpEdges() {
		fmt.Fprintf(&sb, "  o%d -> o%d;\n", e.From, e.To)
	}
	for _, e := range g.TaskEdges() {
		// Anchor dashed task edges on the first op of each task when
		// available, otherwise skip (pure task edges are rare).
		if len(g.Task(e.From).Ops) > 0 && len(g.Task(e.To).Ops) > 0 {
			fmt.Fprintf(&sb, "  o%d -> o%d [style=dashed, label=\"bw=%d\", constraint=false];\n",
				g.Task(e.From).Ops[0], g.Task(e.To).Ops[0], e.Bandwidth)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func labelOr(l, def string) string {
	if l == "" {
		return def
	}
	return sanitize(l)
}
