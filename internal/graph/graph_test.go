package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// chain3 builds t0 -> t1 -> t2 with one op each and bandwidths 4, 7.
func chain3(t *testing.T) *Graph {
	t.Helper()
	g := New("chain3")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	t2 := g.AddTask("t2")
	a := g.AddOp(t0, OpAdd, "a")
	b := g.AddOp(t1, OpMul, "b")
	c := g.AddOp(t2, OpSub, "c")
	g.Connect(a, b, 4)
	g.Connect(b, c, 7)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestAddAndQuery(t *testing.T) {
	g := chain3(t)
	if g.NumTasks() != 3 || g.NumOps() != 3 {
		t.Fatalf("got %d tasks %d ops, want 3/3", g.NumTasks(), g.NumOps())
	}
	if bw := g.Bandwidth(0, 1); bw != 4 {
		t.Errorf("Bandwidth(0,1) = %d, want 4", bw)
	}
	if bw := g.Bandwidth(1, 0); bw != 0 {
		t.Errorf("Bandwidth(1,0) = %d, want 0", bw)
	}
	if got := g.TaskSucc(0); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("TaskSucc(0) = %v", got)
	}
	if got := g.TaskPred(2); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("TaskPred(2) = %v", got)
	}
	if got := g.OpSucc(0); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("OpSucc(0) = %v", got)
	}
}

func TestBandwidthAccumulates(t *testing.T) {
	g := New("acc")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, OpAdd, "")
	b := g.AddOp(t0, OpAdd, "")
	c := g.AddOp(t1, OpMul, "")
	g.Connect(a, c, 2)
	g.Connect(b, c, 3)
	if bw := g.Bandwidth(t0, t1); bw != 5 {
		t.Fatalf("accumulated bandwidth = %d, want 5", bw)
	}
	if n := len(g.TaskEdges()); n != 1 {
		t.Fatalf("task edges = %d, want 1 (merged)", n)
	}
}

func TestTopoTasks(t *testing.T) {
	g := chain3(t)
	order, err := g.TopoTasks()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("topo = %v", order)
	}
}

func TestTopoDetectsCycle(t *testing.T) {
	g := New("cyc")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	g.AddTaskEdge(t0, t1, 1)
	g.AddTaskEdge(t1, t0, 1)
	if _, err := g.TopoTasks(); err == nil {
		t.Fatal("expected cycle error")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject cyclic task graph")
	}
}

func TestOpCycleDetected(t *testing.T) {
	g := New("opcyc")
	t0 := g.AddTask("t0")
	a := g.AddOp(t0, OpAdd, "")
	b := g.AddOp(t0, OpAdd, "")
	g.AddOpEdge(a, b)
	g.AddOpEdge(b, a)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject cyclic op graph")
	}
}

func TestValidateCrossTaskNeedsTaskEdge(t *testing.T) {
	g := New("x")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, OpAdd, "")
	b := g.AddOp(t1, OpAdd, "")
	g.AddOpEdge(a, b) // no task edge recorded
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should flag cross-task op edge without task edge")
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	g := New("s")
	t0 := g.AddTask("t0")
	g.AddTaskEdge(t0, t0, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject self loop")
	}
}

func TestExplode(t *testing.T) {
	g := chain3(t)
	e := g.Explode(2)
	if e.NumTasks() != g.NumOps() {
		t.Fatalf("exploded tasks = %d, want %d", e.NumTasks(), g.NumOps())
	}
	if e.NumOps() != g.NumOps() {
		t.Fatalf("exploded ops = %d, want %d", e.NumOps(), g.NumOps())
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("exploded Validate: %v", err)
	}
	// Every original op edge must be a task edge with bw 2.
	for _, oe := range g.OpEdges() {
		if bw := e.Bandwidth(oe.From, oe.To); bw != 2 {
			t.Errorf("exploded bandwidth %d->%d = %d, want 2", oe.From, oe.To, bw)
		}
	}
}

func TestOpKindsAndCounts(t *testing.T) {
	g := chain3(t)
	kinds := g.OpKinds()
	want := []OpKind{OpAdd, OpMul, OpSub}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	c := g.CountKinds()
	if c[OpAdd] != 1 || c[OpMul] != 1 || c[OpSub] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

const sampleSpec = `
# sample
graph demo
task A
task B
op A a1 add
op A a2 mul
op B b1 sub
dep a1 a2
xdep a2 b1 5
`

func TestParse(t *testing.T) {
	g, err := ParseString(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" || g.NumTasks() != 2 || g.NumOps() != 3 {
		t.Fatalf("parsed %s: %d tasks %d ops", g.Name, g.NumTasks(), g.NumOps())
	}
	if bw := g.Bandwidth(0, 1); bw != 5 {
		t.Fatalf("bandwidth = %d, want 5", bw)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"task",                           // missing name
		"task A\ntask A",                 // duplicate task
		"op X a add",                     // unknown task
		"task A\nop A a add\nop A a add", // duplicate op
		"task A\nop A a add\ndep a b",    // unknown op
		"task A\ntask B\nop A a add\nop B b add\ndep a b",     // cross-task dep
		"task A\ntask B\nop A a add\nop B b add\nxdep a b -1", // negative bw
		"bogus directive",
		"tedge A B 1", // unknown tasks
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g := chain3(t)
	text := g.String()
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if g2.NumTasks() != g.NumTasks() || g2.NumOps() != g.NumOps() {
		t.Fatalf("round trip size mismatch")
	}
	for _, e := range g.TaskEdges() {
		if got := g2.Bandwidth(e.From, e.To); got != e.Bandwidth {
			t.Errorf("round trip bandwidth %d->%d = %d, want %d", e.From, e.To, got, e.Bandwidth)
		}
	}
}

func TestDOT(t *testing.T) {
	g := chain3(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "cluster_t0", "o0 -> o1", "bw=4"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(r *rand.Rand) *Graph {
	g := New("rand")
	nt := 1 + r.Intn(6)
	kinds := []OpKind{OpAdd, OpSub, OpMul}
	var ops []int
	for t := 0; t < nt; t++ {
		g.AddTask("")
		nops := 1 + r.Intn(4)
		for j := 0; j < nops; j++ {
			ops = append(ops, g.AddOp(t, kinds[r.Intn(len(kinds))], ""))
		}
	}
	// edges only from lower op id to higher, and only lower task to
	// higher task, keeping both graphs acyclic.
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			if g.Op(ops[i]).Task > g.Op(ops[j]).Task {
				continue
			}
			if r.Intn(4) == 0 {
				g.Connect(ops[i], ops[j], 1+r.Intn(3))
			}
		}
	}
	return g
}

func TestPropertyTopoRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)))
		if err := g.Validate(); err != nil {
			return false
		}
		order, err := g.TopoOps()
		if err != nil {
			return false
		}
		pos := make([]int, g.NumOps())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.OpEdges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		torder, err := g.TopoTasks()
		if err != nil {
			return false
		}
		tpos := make([]int, g.NumTasks())
		for i, v := range torder {
			tpos[v] = i
		}
		for _, e := range g.TaskEdges() {
			if tpos[e.From] >= tpos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)))
		g2, err := ParseString(g.String())
		if err != nil {
			return false
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumOps() != g.NumOps() {
			return false
		}
		for _, e := range g.TaskEdges() {
			if g2.Bandwidth(e.From, e.To) != e.Bandwidth {
				return false
			}
		}
		return len(g2.OpEdges()) == len(g.OpEdges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpEdgeWeights(t *testing.T) {
	g := New("w")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, OpAdd, "")
	b := g.AddOp(t0, OpAdd, "")
	c := g.AddOp(t1, OpMul, "")
	g.AddOpEdge(a, b) // weight 1 by default
	g.Connect(b, c, 7)
	edges := g.OpEdges()
	if edges[0].Weight != 1 {
		t.Errorf("AddOpEdge weight = %d, want 1", edges[0].Weight)
	}
	if edges[1].Weight != 7 {
		t.Errorf("Connect weight = %d, want 7", edges[1].Weight)
	}
	if g.Bandwidth(t0, t1) != 7 {
		t.Errorf("task bandwidth = %d, want 7", g.Bandwidth(t0, t1))
	}
	// round trip preserves weights of cross-task edges
	g2, err := ParseString(g.String())
	if err != nil {
		t.Fatal(err)
	}
	var cross *OpEdge
	for i := range g2.OpEdges() {
		e := g2.OpEdges()[i]
		if g2.Op(e.From).Task != g2.Op(e.To).Task {
			cross = &e
		}
	}
	if cross == nil || cross.Weight != 7 {
		t.Fatalf("round-trip cross edge = %+v, want weight 7", cross)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := chain3(t)
	var sb strings.Builder
	if err := WriteJSON(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if g2.Name != g.Name || g2.NumTasks() != g.NumTasks() || g2.NumOps() != g.NumOps() {
		t.Fatal("shape changed")
	}
	for _, e := range g.TaskEdges() {
		if g2.Bandwidth(e.From, e.To) != e.Bandwidth {
			t.Fatalf("bandwidth %d->%d changed", e.From, e.To)
		}
	}
	if len(g2.OpEdges()) != len(g.OpEdges()) {
		t.Fatal("op edge count changed")
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"ops":[{"task":5,"kind":"add"}],"tasks":[{}]}`,           // bad task ref
		`{"ops":[{"task":0,"kind":""}],"tasks":[{}]}`,              // empty kind
		`{"op_edges":[{"from":0,"to":9}],"tasks":[{}],"ops":[]}`,   // bad edge
		`{"task_edges":[{"from":0,"to":9}],"tasks":[{}],"ops":[]}`, // bad task edge
		`{not json`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)))
		var sb strings.Builder
		if err := WriteJSON(&sb, g); err != nil {
			return false
		}
		g2, err := ReadJSON(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumOps() != g.NumOps() {
			return false
		}
		for _, e := range g.TaskEdges() {
			if g2.Bandwidth(e.From, e.To) != e.Bandwidth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
