package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the stable on-disk JSON shape of a specification.
type jsonGraph struct {
	Name      string         `json:"name"`
	Tasks     []jsonTask     `json:"tasks"`
	Ops       []jsonOp       `json:"ops"`
	OpEdges   []jsonOpEdge   `json:"op_edges"`
	TaskEdges []jsonTaskEdge `json:"task_edges,omitempty"`
}

type jsonTask struct {
	Label string `json:"label,omitempty"`
}

type jsonOp struct {
	Task  int    `json:"task"`
	Kind  string `json:"kind"`
	Label string `json:"label,omitempty"`
}

type jsonOpEdge struct {
	From   int `json:"from"`
	To     int `json:"to"`
	Weight int `json:"weight,omitempty"`
}

type jsonTaskEdge struct {
	From      int `json:"from"`
	To        int `json:"to"`
	Bandwidth int `json:"bandwidth"`
}

// MarshalJSON encodes the graph in a stable, self-contained shape.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := jsonGraph{Name: g.Name}
	for _, t := range g.Tasks() {
		out.Tasks = append(out.Tasks, jsonTask{Label: t.Label})
	}
	for _, op := range g.Ops() {
		out.Ops = append(out.Ops, jsonOp{Task: op.Task, Kind: string(op.Kind), Label: op.Label})
	}
	for _, e := range g.OpEdges() {
		out.OpEdges = append(out.OpEdges, jsonOpEdge{From: e.From, To: e.To, Weight: e.Weight})
	}
	// only task edges not implied by op edges (see Write): the
	// decoder rebuilds implied ones from op-edge weights
	implied := map[[2]int]int{}
	for _, e := range g.OpEdges() {
		ft, tt := g.Op(e.From).Task, g.Op(e.To).Task
		if ft != tt {
			implied[[2]int{ft, tt}] += e.Weight
		}
	}
	for _, e := range g.TaskEdges() {
		if diff := e.Bandwidth - implied[[2]int{e.From, e.To}]; diff > 0 {
			out.TaskEdges = append(out.TaskEdges, jsonTaskEdge{From: e.From, To: e.To, Bandwidth: diff})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a graph written by MarshalJSON, validating the
// result.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in jsonGraph
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	ng := New(in.Name)
	for _, t := range in.Tasks {
		ng.AddTask(t.Label)
	}
	for i, op := range in.Ops {
		if op.Task < 0 || op.Task >= ng.NumTasks() {
			return fmt.Errorf("graph: json op %d references task %d", i, op.Task)
		}
		if op.Kind == "" {
			return fmt.Errorf("graph: json op %d has empty kind", i)
		}
		ng.AddOp(op.Task, OpKind(op.Kind), op.Label)
	}
	for _, e := range in.OpEdges {
		if e.From < 0 || e.From >= ng.NumOps() || e.To < 0 || e.To >= ng.NumOps() {
			return fmt.Errorf("graph: json op edge %d->%d out of range", e.From, e.To)
		}
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		ng.Connect(e.From, e.To, w)
	}
	for _, e := range in.TaskEdges {
		if e.From < 0 || e.From >= ng.NumTasks() || e.To < 0 || e.To >= ng.NumTasks() {
			return fmt.Errorf("graph: json task edge %d->%d out of range", e.From, e.To)
		}
		ng.AddTaskEdge(e.From, e.To, e.Bandwidth)
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}

// WriteJSON encodes g to w with indentation.
func WriteJSON(w io.Writer, g *Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON decodes a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	g := New("")
	if err := json.NewDecoder(r).Decode(g); err != nil {
		return nil, err
	}
	return g, nil
}
