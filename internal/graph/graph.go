// Package graph models the behavioral specification accepted by the
// temporal partitioning and synthesis system: a directed acyclic task
// graph whose vertices are tasks, each task holding a DAG of operations.
//
// The structure mirrors Section 3 of Kaul & Vemuri (DATE 1998):
//
//   - Tasks are the unit of temporal partitioning; a task is never split
//     across temporal segments.
//   - Task-graph edges carry Bandwidth(t1,t2), the number of data units
//     that must be stored in scratch memory when the two tasks land in
//     different segments.
//   - Operations are the unit of scheduling and binding; operation edges
//     (within a task or across tasks) carry dataflow dependencies.
package graph

import (
	"fmt"
	"sort"
)

// OpKind identifies the abstract operation an operation node performs.
// Functional units in a component library declare which kinds they can
// execute.
type OpKind string

// Common operation kinds used by the examples, generators and tests.
// The set is open: any non-empty string is a valid OpKind as long as the
// component library can execute it.
const (
	OpAdd OpKind = "add"
	OpSub OpKind = "sub"
	OpMul OpKind = "mul"
	OpDiv OpKind = "div"
	OpCmp OpKind = "cmp"
	OpAnd OpKind = "and"
	OpOr  OpKind = "or"
	OpShl OpKind = "shl"
)

// Op is a single behavioral operation inside a task.
type Op struct {
	// ID is unique across the whole specification (all tasks).
	ID int
	// Task is the ID of the owning task.
	Task int
	// Kind is the abstract operation performed.
	Kind OpKind
	// Label is an optional human-readable name used in reports.
	Label string
}

// Task is a group of operations that must stay together in one temporal
// segment. Tasks in the same segment share control steps and functional
// units.
type Task struct {
	// ID is unique across the specification; IDs are dense 0..NumTasks-1
	// after Graph.Normalize.
	ID int
	// Label is an optional human-readable name used in reports.
	Label string
	// Ops lists the IDs of the operations owned by this task.
	Ops []int
}

// TaskEdge is a data dependency between two tasks. If the tasks are
// placed in different temporal segments, Bandwidth data units must be
// stored in scratch memory across every segment boundary between them.
type TaskEdge struct {
	From, To  int
	Bandwidth int
}

// OpEdge is a dataflow dependency between two operations. The producer
// must complete in a strictly earlier control step than the consumer
// starts (unit-latency model; multicycle latencies widen the gap).
// Weight is the number of data units the dependency carries; when the
// endpoints live in different tasks it contributes Weight to the task
// edge's bandwidth (see Connect).
type OpEdge struct {
	From, To int
	Weight   int
}

// Graph is a complete behavioral specification.
//
// The zero value is an empty specification ready for AddTask / AddOp.
type Graph struct {
	Name string

	tasks    []Task
	ops      []Op
	taskEdge []TaskEdge
	opEdge   []OpEdge

	// adjacency caches, rebuilt lazily
	dirty       bool
	taskSucc    [][]int
	taskPred    [][]int
	opSucc      [][]int
	opPred      [][]int
	taskEdgeIdx map[[2]int]int
}

// New returns an empty named specification.
func New(name string) *Graph {
	return &Graph{Name: name, dirty: true, taskEdgeIdx: map[[2]int]int{}}
}

// AddTask appends a task with the given label and returns its ID.
func (g *Graph) AddTask(label string) int {
	id := len(g.tasks)
	g.tasks = append(g.tasks, Task{ID: id, Label: label})
	g.dirty = true
	return id
}

// AddOp appends an operation of the given kind to task t and returns the
// operation ID. It panics if t is not a valid task ID.
func (g *Graph) AddOp(t int, kind OpKind, label string) int {
	if t < 0 || t >= len(g.tasks) {
		panic(fmt.Sprintf("graph: AddOp: no such task %d", t))
	}
	id := len(g.ops)
	g.ops = append(g.ops, Op{ID: id, Task: t, Kind: kind, Label: label})
	g.tasks[t].Ops = append(g.tasks[t].Ops, id)
	g.dirty = true
	return id
}

// AddTaskEdge records a task-level dependency from -> to with the given
// bandwidth. Adding the same (from,to) pair again accumulates bandwidth.
func (g *Graph) AddTaskEdge(from, to, bandwidth int) {
	if g.taskEdgeIdx == nil {
		g.taskEdgeIdx = map[[2]int]int{}
	}
	if i, ok := g.taskEdgeIdx[[2]int{from, to}]; ok {
		g.taskEdge[i].Bandwidth += bandwidth
		return
	}
	g.taskEdgeIdx[[2]int{from, to}] = len(g.taskEdge)
	g.taskEdge = append(g.taskEdge, TaskEdge{From: from, To: to, Bandwidth: bandwidth})
	g.dirty = true
}

// AddOpEdge records an operation-level dataflow dependency from -> to
// carrying one data unit. If the two operations belong to different
// tasks, the caller is responsible for also recording the task-level
// edge (see Connect for a convenience that does both).
func (g *Graph) AddOpEdge(from, to int) {
	g.opEdge = append(g.opEdge, OpEdge{From: from, To: to, Weight: 1})
	g.dirty = true
}

// Connect records an operation dependency carrying bandwidth data
// units and, when the endpoints live in different tasks, accumulates
// the same amount on the corresponding task edge, keeping op-level and
// task-level accounting consistent. It is the preferred way to wire
// cross-task dataflow.
func (g *Graph) Connect(fromOp, toOp, bandwidth int) {
	g.opEdge = append(g.opEdge, OpEdge{From: fromOp, To: toOp, Weight: bandwidth})
	g.dirty = true
	ft, tt := g.ops[fromOp].Task, g.ops[toOp].Task
	if ft != tt {
		g.AddTaskEdge(ft, tt, bandwidth)
	}
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumOps returns the number of operations.
func (g *Graph) NumOps() int { return len(g.ops) }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) Task { return g.tasks[id] }

// Op returns the operation with the given ID.
func (g *Graph) Op(id int) Op { return g.ops[id] }

// Tasks returns all tasks in ID order. The returned slice is shared;
// callers must not mutate it.
func (g *Graph) Tasks() []Task { return g.tasks }

// Ops returns all operations in ID order. The returned slice is shared;
// callers must not mutate it.
func (g *Graph) Ops() []Op { return g.ops }

// TaskEdges returns all task edges. The returned slice is shared;
// callers must not mutate it.
func (g *Graph) TaskEdges() []TaskEdge { return g.taskEdge }

// OpEdges returns all operation edges. The returned slice is shared;
// callers must not mutate it.
func (g *Graph) OpEdges() []OpEdge { return g.opEdge }

// Bandwidth returns the bandwidth of the task edge from -> to, or 0 if
// no such edge exists.
func (g *Graph) Bandwidth(from, to int) int {
	if i, ok := g.taskEdgeIdx[[2]int{from, to}]; ok {
		return g.taskEdge[i].Bandwidth
	}
	return 0
}

func (g *Graph) rebuild() {
	if !g.dirty {
		return
	}
	nt, no := len(g.tasks), len(g.ops)
	g.taskSucc = make([][]int, nt)
	g.taskPred = make([][]int, nt)
	g.opSucc = make([][]int, no)
	g.opPred = make([][]int, no)
	for _, e := range g.taskEdge {
		g.taskSucc[e.From] = append(g.taskSucc[e.From], e.To)
		g.taskPred[e.To] = append(g.taskPred[e.To], e.From)
	}
	for _, e := range g.opEdge {
		g.opSucc[e.From] = append(g.opSucc[e.From], e.To)
		g.opPred[e.To] = append(g.opPred[e.To], e.From)
	}
	for _, adj := range [][][]int{g.taskSucc, g.taskPred, g.opSucc, g.opPred} {
		for i := range adj {
			sort.Ints(adj[i])
		}
	}
	g.dirty = false
}

// TaskSucc returns the IDs of tasks directly dependent on task t,
// sorted ascending.
func (g *Graph) TaskSucc(t int) []int { g.rebuild(); return g.taskSucc[t] }

// TaskPred returns the IDs of tasks task t directly depends on,
// sorted ascending.
func (g *Graph) TaskPred(t int) []int { g.rebuild(); return g.taskPred[t] }

// OpSucc returns the IDs of operations directly dependent on op i,
// sorted ascending.
func (g *Graph) OpSucc(i int) []int { g.rebuild(); return g.opSucc[i] }

// OpPred returns the IDs of operations op i directly depends on,
// sorted ascending.
func (g *Graph) OpPred(i int) []int { g.rebuild(); return g.opPred[i] }

// TopoTasks returns a topological order of the task IDs, preferring
// lower IDs among ready tasks so the order is deterministic. The order
// doubles as the branching priority of the paper's variable-selection
// heuristic (Section 8). It returns an error if the task graph has a
// cycle.
func (g *Graph) TopoTasks() ([]int, error) {
	g.rebuild()
	return topo(len(g.tasks), g.taskPred, g.taskSucc, "task")
}

// TopoOps returns a deterministic topological order of the operation
// IDs, or an error if the operation graph has a cycle.
func (g *Graph) TopoOps() ([]int, error) {
	g.rebuild()
	return topo(len(g.ops), g.opPred, g.opSucc, "operation")
}

func topo(n int, pred, succ [][]int, what string) ([]int, error) {
	indeg := make([]int, n)
	for v := range pred {
		indeg[v] = len(pred[v])
	}
	// min-heap behavior via sorted ready list; n is small in practice.
	var ready []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, n)
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		changed := false
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
				changed = true
			}
		}
		if changed {
			sort.Ints(ready)
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: %s graph contains a cycle", what)
	}
	return order, nil
}

// Validate checks structural invariants: edge endpoints exist, the task
// and operation graphs are acyclic, every cross-task operation edge is
// mirrored by a task edge, task edges are consistent with a task-level
// ordering, and bandwidths are non-negative.
func (g *Graph) Validate() error {
	for _, e := range g.taskEdge {
		if e.From < 0 || e.From >= len(g.tasks) || e.To < 0 || e.To >= len(g.tasks) {
			return fmt.Errorf("graph: task edge %d->%d out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: self-loop task edge on task %d", e.From)
		}
		if e.Bandwidth < 0 {
			return fmt.Errorf("graph: negative bandwidth on task edge %d->%d", e.From, e.To)
		}
	}
	for _, e := range g.opEdge {
		if e.From < 0 || e.From >= len(g.ops) || e.To < 0 || e.To >= len(g.ops) {
			return fmt.Errorf("graph: op edge %d->%d out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: self-loop op edge on op %d", e.From)
		}
	}
	if _, err := g.TopoTasks(); err != nil {
		return err
	}
	if _, err := g.TopoOps(); err != nil {
		return err
	}
	for _, e := range g.opEdge {
		ft, tt := g.ops[e.From].Task, g.ops[e.To].Task
		if ft != tt && g.Bandwidth(ft, tt) == 0 {
			return fmt.Errorf("graph: op edge %d->%d crosses tasks %d->%d with no task edge", e.From, e.To, ft, tt)
		}
	}
	return nil
}

// Explode returns a copy of g in which every operation has been promoted
// to its own single-operation task, enabling operation-granularity
// temporal partitioning (Section 3 of the paper: "each operation in the
// specification may be modeled as a task"). Cross-operation edges become
// task edges; the bandwidth of each new task edge is bw (data units per
// dependency), defaulting to 1 when bw <= 0.
func (g *Graph) Explode(bw int) *Graph {
	if bw <= 0 {
		bw = 1
	}
	out := New(g.Name + "/exploded")
	for _, op := range g.ops {
		t := out.AddTask(fmt.Sprintf("op%d", op.ID))
		out.AddOp(t, op.Kind, op.Label)
	}
	for _, e := range g.opEdge {
		out.AddOpEdge(e.From, e.To)
		out.AddTaskEdge(e.From, e.To, bw)
	}
	return out
}

// OpKinds returns the set of operation kinds present, sorted.
func (g *Graph) OpKinds() []OpKind {
	seen := map[OpKind]bool{}
	for _, op := range g.ops {
		seen[op.Kind] = true
	}
	kinds := make([]OpKind, 0, len(seen))
	for k := range seen {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// CountKinds returns the number of operations of each kind.
func (g *Graph) CountKinds() map[OpKind]int {
	c := map[OpKind]int{}
	for _, op := range g.ops {
		c[op.Kind]++
	}
	return c
}
