package benchmarks

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/rpsim"
	"repro/internal/sched"
)

func TestGraphsAreValid(t *testing.T) {
	for name, build := range All() {
		g := build()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.NumOps() == 0 || g.NumTasks() < 2 {
			t.Errorf("%s: degenerate graph (%d tasks, %d ops)", name, g.NumTasks(), g.NumOps())
		}
	}
}

func TestEWFShape(t *testing.T) {
	g := EWF()
	k := g.CountKinds()
	if k[graph.OpAdd] != 26 || k[graph.OpMul] != 8 {
		t.Fatalf("EWF kinds = %v, want 26 adds / 8 muls", k)
	}
	if g.NumOps() != 34 {
		t.Fatalf("EWF ops = %d, want 34", g.NumOps())
	}
	w, err := sched.ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// the classic EWF critical path is long (>= 14 steps in the
	// unit-latency model); our ladder reconstruction preserves that
	if w.CriticalPath < 14 {
		t.Fatalf("EWF CP = %d, want >= 14", w.CriticalPath)
	}
}

func TestDiffeqShape(t *testing.T) {
	g := Diffeq()
	k := g.CountKinds()
	if k[graph.OpMul] != 6 || k[graph.OpAdd] != 2 || k[graph.OpSub] != 2 || k[graph.OpCmp] != 1 {
		t.Fatalf("diffeq kinds = %v", k)
	}
}

func TestARShape(t *testing.T) {
	g := AR()
	k := g.CountKinds()
	if k[graph.OpMul] != 16 || k[graph.OpAdd] != 12 {
		t.Fatalf("AR kinds = %v, want 16 muls / 12 adds", k)
	}
}

// Diffeq is small enough to optimize quickly end to end.
func TestDiffeqSolves(t *testing.T) {
	g := Diffeq()
	alloc, err := library.NewAllocation(library.DefaultLibrary(), map[string]int{
		"add16": 1, "sub16": 1, "mul16": 2, "cmp16": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SolveInstance(
		core.Instance{Graph: g, Alloc: alloc, Device: library.XC4010()},
		core.Options{N: 2, L: 2, Tightened: true, ExactSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("diffeq should be feasible")
	}
	// partitioned execution matches direct evaluation
	inputs := map[int]int64{}
	for i := 0; i < g.NumOps(); i++ {
		if len(g.OpPred(i)) == 0 {
			inputs[i] = int64(2 + i)
		}
	}
	want, err := rpsim.Direct(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rpsim.Run(g, alloc, library.XC4010(), res.Solution, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: %d != %d", i, got[i], want[i])
		}
	}
}

// FIR16 with a single multiplier needs 16 multiplier steps; the
// estimate and windows must reflect that.
func TestFIR16Pressure(t *testing.T) {
	g := FIR16()
	if g.NumOps() != 32 {
		t.Fatalf("ops = %d, want 32", g.NumOps())
	}
	w, err := sched.ComputeWindows(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := g.CountKinds()
	if k[graph.OpMul] != 16 {
		t.Fatalf("muls = %d", k[graph.OpMul])
	}
	if w.CriticalPath < 16 {
		t.Fatalf("CP = %d, want >= 16 (accumulation chain)", w.CriticalPath)
	}
}
