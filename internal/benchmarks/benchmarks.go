// Package benchmarks provides classic high-level-synthesis benchmark
// dataflow graphs from the literature the paper belongs to, expressed
// as task graphs for the temporal partitioning system. They complement
// the seeded random graphs of internal/randgraph with real kernels:
//
//   - EWF: the fifth-order elliptic wave filter (34 ops), the standard
//     HLS scheduling benchmark of the era,
//   - FIR16: a 16-tap transposed FIR filter,
//   - Diffeq: the HAL differential-equation solver (Paulin & Knight),
//   - AR: the auto-regressive lattice filter (28 ops).
//
// Each builder groups the kernel into tasks along its natural pipeline
// stages so that temporal partitioning has meaningful cut points.
package benchmarks

import (
	"fmt"

	"repro/internal/graph"
)

// EWF builds the fifth-order elliptic wave filter. The classic graph
// has 26 additions and 8 multiplications; tasks follow the four
// sections of the ladder structure. Cross-task bandwidths are one data
// unit per crossing value.
func EWF() *graph.Graph {
	g := graph.New("ewf")
	// sections of the wave filter ladder
	sec := make([]int, 4)
	for i := range sec {
		sec[i] = g.AddTask(fmt.Sprintf("section%d", i))
	}
	add := func(t int, label string) int { return g.AddOp(t, graph.OpAdd, label) }
	mul := func(t int, label string) int { return g.AddOp(t, graph.OpMul, label) }

	// Section 0: input adder chain
	a1 := add(sec[0], "a1")
	a2 := add(sec[0], "a2")
	m1 := mul(sec[0], "m1")
	a3 := add(sec[0], "a3")
	a4 := add(sec[0], "a4")
	g.AddOpEdge(a1, a2)
	g.AddOpEdge(a2, m1)
	g.AddOpEdge(m1, a3)
	g.AddOpEdge(a3, a4)

	// Section 1: first biquad-like block
	a5 := add(sec[1], "a5")
	m2 := mul(sec[1], "m2")
	a6 := add(sec[1], "a6")
	a7 := add(sec[1], "a7")
	m3 := mul(sec[1], "m3")
	a8 := add(sec[1], "a8")
	a9 := add(sec[1], "a9")
	a10 := add(sec[1], "a10")
	g.Connect(a4, a5, 1)
	g.Connect(a2, a6, 1)
	g.AddOpEdge(a5, m2)
	g.AddOpEdge(m2, a7)
	g.AddOpEdge(a6, a7)
	g.AddOpEdge(a7, m3)
	g.AddOpEdge(m3, a8)
	g.AddOpEdge(a8, a9)
	g.AddOpEdge(a6, a10)
	g.AddOpEdge(a9, a10)

	// Section 2: second block
	a11 := add(sec[2], "a11")
	a12 := add(sec[2], "a12")
	m4 := mul(sec[2], "m4")
	a13 := add(sec[2], "a13")
	m5 := mul(sec[2], "m5")
	a14 := add(sec[2], "a14")
	a15 := add(sec[2], "a15")
	a16 := add(sec[2], "a16")
	a17 := add(sec[2], "a17")
	g.Connect(a10, a11, 1)
	g.Connect(a8, a12, 1)
	g.AddOpEdge(a11, m4)
	g.AddOpEdge(a12, a13)
	g.AddOpEdge(m4, a13)
	g.AddOpEdge(a13, m5)
	g.AddOpEdge(m5, a14)
	g.AddOpEdge(a14, a15)
	g.AddOpEdge(a12, a16)
	g.AddOpEdge(a14, a16)
	g.AddOpEdge(a15, a17)
	g.AddOpEdge(a16, a17)

	// Section 3: output block — two parallel scaled branches merged by
	// an adder tree, reflecting the width of the real wave filter
	a18 := add(sec[3], "a18")
	m6 := mul(sec[3], "m6")
	a19 := add(sec[3], "a19")
	m7 := mul(sec[3], "m7")
	a20 := add(sec[3], "a20")
	m8 := mul(sec[3], "m8")
	a21 := add(sec[3], "a21")
	a22 := add(sec[3], "a22")
	a23 := add(sec[3], "a23")
	a24 := add(sec[3], "a24")
	a25 := add(sec[3], "a25")
	a26 := add(sec[3], "a26")
	g.Connect(a17, a18, 1)
	g.Connect(a15, a19, 1)
	g.Connect(a16, a21, 1)
	// branch 1: a18 -> m6 -> a19 -> m7 -> a20
	g.AddOpEdge(a18, m6)
	g.AddOpEdge(m6, a19)
	g.AddOpEdge(a19, m7)
	g.AddOpEdge(m7, a20)
	// branch 2 (parallel): a21 -> m8 -> a22 -> a23
	g.AddOpEdge(a21, m8)
	g.AddOpEdge(m8, a22)
	g.AddOpEdge(a22, a23)
	// merge tree
	g.AddOpEdge(a20, a24)
	g.AddOpEdge(a23, a24)
	g.AddOpEdge(a24, a25)
	g.AddOpEdge(a25, a26)
	return g
}

// FIR16 builds a 16-tap transposed-form FIR filter: 16 coefficient
// multiplications feeding an accumulation chain, grouped into four
// 4-tap tasks.
func FIR16() *graph.Graph {
	g := graph.New("fir16")
	var lastSum int = -1
	for blk := 0; blk < 4; blk++ {
		t := g.AddTask(fmt.Sprintf("taps%d_%d", blk*4, blk*4+3))
		var sums []int
		for i := 0; i < 4; i++ {
			m := g.AddOp(t, graph.OpMul, fmt.Sprintf("m%d", blk*4+i))
			s := g.AddOp(t, graph.OpAdd, fmt.Sprintf("s%d", blk*4+i))
			g.AddOpEdge(m, s)
			if len(sums) > 0 {
				g.AddOpEdge(sums[len(sums)-1], s)
			}
			sums = append(sums, s)
		}
		if lastSum >= 0 {
			g.Connect(lastSum, sums[0], 1)
		}
		lastSum = sums[len(sums)-1]
	}
	return g
}

// Diffeq builds the HAL differential-equation benchmark (Paulin &
// Knight): the loop body computing x' = x + dx, u' and y' with 6
// multiplications, 2 additions, 2 subtractions and a comparison,
// split into a multiply-heavy task and an update task.
func Diffeq() *graph.Graph {
	g := graph.New("diffeq")
	tm := g.AddTask("products")
	tu := g.AddTask("update")

	m1 := g.AddOp(tm, graph.OpMul, "3*x")
	m2 := g.AddOp(tm, graph.OpMul, "u*dx")
	m3 := g.AddOp(tm, graph.OpMul, "3*y")
	m4 := g.AddOp(tm, graph.OpMul, "m1*m2")
	m5 := g.AddOp(tm, graph.OpMul, "dx*m3")
	m6 := g.AddOp(tm, graph.OpMul, "u*dx2")
	g.AddOpEdge(m1, m4)
	g.AddOpEdge(m2, m4)
	g.AddOpEdge(m3, m5)

	s1 := g.AddOp(tu, graph.OpSub, "u-m4")
	s2 := g.AddOp(tu, graph.OpSub, "s1-m5")
	a1 := g.AddOp(tu, graph.OpAdd, "x+dx")
	a2 := g.AddOp(tu, graph.OpAdd, "y+m6")
	c1 := g.AddOp(tu, graph.OpCmp, "x<a")
	g.Connect(m4, s1, 1)
	g.Connect(m5, s2, 1)
	g.AddOpEdge(s1, s2)
	g.Connect(m6, a2, 1)
	g.AddOpEdge(a1, c1)
	return g
}

// AR builds the auto-regressive lattice filter benchmark: 16
// multiplications and 12 additions in four lattice stages.
func AR() *graph.Graph {
	g := graph.New("ar")
	prevOut := make([]int, 0, 2)
	for stage := 0; stage < 4; stage++ {
		t := g.AddTask(fmt.Sprintf("stage%d", stage))
		m1 := g.AddOp(t, graph.OpMul, fmt.Sprintf("k%d_f", stage))
		m2 := g.AddOp(t, graph.OpMul, fmt.Sprintf("k%d_b", stage))
		m3 := g.AddOp(t, graph.OpMul, fmt.Sprintf("q%d_f", stage))
		m4 := g.AddOp(t, graph.OpMul, fmt.Sprintf("q%d_b", stage))
		a1 := g.AddOp(t, graph.OpAdd, fmt.Sprintf("f%d", stage))
		a2 := g.AddOp(t, graph.OpAdd, fmt.Sprintf("b%d", stage))
		a3 := g.AddOp(t, graph.OpAdd, fmt.Sprintf("o%d", stage))
		g.AddOpEdge(m1, a1)
		g.AddOpEdge(m2, a2)
		g.AddOpEdge(m3, a3)
		g.AddOpEdge(m4, a3)
		if len(prevOut) == 2 {
			g.Connect(prevOut[0], m1, 1)
			g.Connect(prevOut[0], m3, 1)
			g.Connect(prevOut[1], m2, 1)
			g.Connect(prevOut[1], m4, 1)
		}
		prevOut = []int{a1, a2}
	}
	return g
}

// All returns every benchmark builder keyed by name.
func All() map[string]func() *graph.Graph {
	return map[string]func() *graph.Graph{
		"ewf":    EWF,
		"fir16":  FIR16,
		"diffeq": Diffeq,
		"ar":     AR,
	}
}
