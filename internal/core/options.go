// Package core builds and solves the 0-1 ILP formulation of combined
// temporal partitioning and high-level synthesis from Kaul & Vemuri,
// "Optimal Temporal Partitioning and Synthesis for Reconfigurable
// Architectures" (DATE 1998).
//
// The nonlinear 0-1 model of the paper (products of partitioning and
// binding variables) is linearized either with Fortet's method or the
// tighter Glover/Woolsey method, optionally strengthened with the
// paper's tightening cuts (eqs. 28-30, 32), and solved by branch and
// bound over LP relaxations with the paper's variable-selection
// heuristic.
//
// Three paper typos are corrected, each marked at the emission site:
// eq. (7) is per (step, FU) rather than per step; eq. (23) caps u_pk
// from above (u <= sum z) so segments can share functional units;
// eq. (29) sums y_{t2,p} for p < p1 and eq. (31) sums y_{t2,p2} up to
// p2 = N (Figure 4 of the paper confirms both).
package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/trace"
)

// Linearization selects how 0-1 products are linearized.
type Linearization int

const (
	// LinGlover uses the Glover/Woolsey linearization: the product
	// variable is continuous in [0,1] with c >= a+b-1, c <= a, c <= b.
	// Tighter LP relaxations; the paper's choice.
	LinGlover Linearization = iota
	// LinFortet uses Fortet's linearization: the product variable is
	// binary with c >= a+b-1 and 2c <= a+b.
	LinFortet
)

func (l Linearization) String() string {
	if l == LinFortet {
		return "fortet"
	}
	return "glover"
}

// ParseLinearization parses a linearization name; "" means the default
// Glover/Woolsey method.
func ParseLinearization(s string) (Linearization, error) {
	switch s {
	case "", "glover":
		return LinGlover, nil
	case "fortet":
		return LinFortet, nil
	}
	return 0, fmt.Errorf("core: unknown linearization %q (want glover or fortet)", s)
}

// MarshalJSON encodes the linearization by name.
func (l Linearization) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.String())
}

// UnmarshalJSON accepts a name ("glover", "fortet") or the numeric
// enum value.
func (l *Linearization) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		if n, nerr := strconv.Atoi(string(b)); nerr == nil && n >= 0 && n <= int(LinFortet) {
			*l = Linearization(n)
			return nil
		}
		return fmt.Errorf("core: invalid linearization %s", b)
	}
	v, err := ParseLinearization(s)
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// CutSet is a bitmask of the tightening-cut families of Section 6.
type CutSet uint8

// Tightening-cut families (paper equation numbers).
const (
	Cut28 CutSet = 1 << iota // w vs. producer placement
	Cut29                    // w vs. consumer placement
	Cut30                    // w vs. co-located tasks
	Cut32                    // o + y - u link
	// CutsAll enables every family (also the meaning of a zero Cuts).
	CutsAll = Cut28 | Cut29 | Cut30 | Cut32
)

// Has reports whether family f is enabled, treating zero as all.
func (c CutSet) Has(f CutSet) bool {
	if c == 0 {
		c = CutsAll
	}
	return c&f != 0
}

// BranchRule selects the branch-and-bound variable-selection strategy.
type BranchRule int

const (
	// BranchPaper is the paper's heuristic (Section 8): fractional
	// y_tp in topological task priority order (lowest t, then lowest
	// p), 1-branch first; then any fractional u_pk; then x_ijk.
	BranchPaper BranchRule = iota
	// BranchFirstFrac picks the first fractional integer variable in
	// column order — the "leave it to the solver" naive baseline.
	BranchFirstFrac
	// BranchMostFrac picks the variable closest to 0.5.
	BranchMostFrac
)

func (b BranchRule) String() string {
	switch b {
	case BranchFirstFrac:
		return "first-fractional"
	case BranchMostFrac:
		return "most-fractional"
	default:
		return "paper"
	}
}

// ParseBranchRule parses a branching-rule name; "" means the paper's
// heuristic.
func ParseBranchRule(s string) (BranchRule, error) {
	switch s {
	case "", "paper":
		return BranchPaper, nil
	case "first", "first-fractional":
		return BranchFirstFrac, nil
	case "most", "most-fractional":
		return BranchMostFrac, nil
	}
	return 0, fmt.Errorf("core: unknown branch rule %q (want paper, first-fractional or most-fractional)", s)
}

// MarshalJSON encodes the branch rule by name.
func (b BranchRule) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.String())
}

// UnmarshalJSON accepts a name or the numeric enum value.
func (b *BranchRule) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		if n, nerr := strconv.Atoi(string(data)); nerr == nil && n >= 0 && n <= int(BranchMostFrac) {
			*b = BranchRule(n)
			return nil
		}
		return fmt.Errorf("core: invalid branch rule %s", data)
	}
	v, err := ParseBranchRule(s)
	if err != nil {
		return err
	}
	*b = v
	return nil
}

// Options configure model generation and solving. It is the one
// canonical option set of the stack: the JSON tags define the wire
// form used by the solve service and the flow front-end, which embed
// this struct rather than re-declaring the knobs.
type Options struct {
	// N is the number of temporal partitions made available (the upper
	// bound of the formulation). 0 estimates N with the list-scheduling
	// heuristic of internal/sched.
	N int `json:"n,omitempty"`
	// L is the user-specified latency relaxation over the maximum ALAP.
	L int `json:"l,omitempty"`
	// Linearization selects Fortet or Glover product linearization.
	Linearization Linearization `json:"linearization,omitempty"`
	// Tightened adds the paper's cuts (28), (29), (30) and (32).
	Tightened bool `json:"tightened,omitempty"`
	// Cuts selects individual tightening families when Tightened is
	// set; the zero value enables all of them. Used by the ablation
	// benchmarks.
	Cuts CutSet `json:"cuts,omitempty"`
	// WPerProduct linearizes the w variables exactly per product term
	// (eqs. 4-5) instead of with the compact eq. (31). The paper's
	// preliminary model (Table 1) uses per-product w; the final model
	// uses the compact form.
	WPerProduct bool `json:"w_per_product,omitempty"`
	// Multicycle honors FU latencies greater than one control step
	// (the paper's Gebotys/OSCAR-style extension).
	Multicycle bool `json:"multicycle,omitempty"`
	// Branch selects the branching rule.
	Branch BranchRule `json:"branch,omitempty"`
	// ExactSweep enumerates task assignments (cost-ordered, pruned)
	// and certifies each with the exact scheduler before branch and
	// bound; when every candidate resolves, optimality is proved
	// without any LP search. Requires at most 12 tasks; implies the
	// heuristic incumbent. Left off by the paper-faithful rows.
	ExactSweep bool `json:"exact_sweep,omitempty"`
	// Presolve runs the LP presolver (row reduction + bound
	// tightening) on the generated model before branch and bound. Off
	// by default so the reported Var/Const counts match the generated
	// formulation, as in the paper's tables.
	Presolve bool `json:"presolve,omitempty"`
	// DisableProbe turns off the exact-scheduling node probe, leaving
	// the pure LP-driven branch and bound of the paper. Useful for
	// runtime comparisons; expect far larger node counts.
	DisableProbe bool `json:"disable_probe,omitempty"`
	// PrimeHeuristic seeds branch and bound with the communication
	// cost of the best list-scheduled solution (internal/heuristic),
	// pruning subtrees that cannot beat it. An extension beyond the
	// paper; off by default so runtimes stay comparable to the
	// paper's algorithm.
	PrimeHeuristic bool `json:"prime_heuristic,omitempty"`
	// MaxNodes limits branch-and-bound nodes (0 = unlimited).
	MaxNodes int `json:"max_nodes,omitempty"`
	// TimeLimit bounds the solve wall-clock time (0 = unlimited). Not
	// part of the wire form: the service expresses it as
	// time_limit_ms so JSON clients never deal in nanoseconds.
	TimeLimit time.Duration `json:"-"`
	// Parallelism sets the number of branch-and-bound workers for the
	// MILP search (milp.Options.Parallelism). 0 or 1 keeps the serial,
	// deterministic search; higher values split the tree across that
	// many goroutines over cloned LP solvers with a shared incumbent.
	// The optimum and its feasibility are identical either way — only
	// node/pivot counts and runtime change.
	Parallelism int `json:"parallelism,omitempty"`
	// ParallelThreshold gates Parallelism behind the root-size estimate
	// of milp.Options.ParallelThreshold: instances whose root tableau
	// falls under the threshold run serially even when Parallelism > 1
	// (the decision is emitted as a "plan" trace event). 0 applies
	// milp.DefaultParallelThreshold; negative disables the gate. Ignored
	// by the service's canonical cache key — like Parallelism, it cannot
	// change the reported solution.
	ParallelThreshold int `json:"parallel_threshold,omitempty"`
	// LPEngine selects the LP engine for the branch-and-bound
	// relaxations: "" or "auto" applies the density × size heuristic of
	// lp.ChooseEngine (sparse revised simplex for large sparse models,
	// dense tableau otherwise), "dense" and "revised" force either.
	// Part of the wire form and the service cache key — the engines
	// agree on verdicts (differentially fuzzed) but not on pivot counts
	// or runtimes, so a forced-engine job is its own cache entry.
	LPEngine string `json:"lp_engine,omitempty"`
	// Search groups every branch-and-bound search knob (workers, gate
	// threshold, mode, branching rule, root cuts, diving) into one
	// object, serialized as options.search. Nil keeps the legacy flat
	// fields (Parallelism, ParallelThreshold, Branch) in charge; when
	// set, its non-zero fields override the flat ones — see
	// EffectiveSearch for the exact merge.
	Search *SearchOptions `json:"search,omitempty"`
	// Certify enables the exact-arithmetic audit mode: the MILP verdict
	// is re-verified in rational arithmetic (internal/exact) and the
	// resulting certificate attached to Result.Certificate, the flight
	// recording and the trace stream. Part of the wire form — a service
	// job requesting certification is a different cache entry from the
	// plain solve, so cached certified results keep their certificates.
	Certify bool `json:"certify,omitempty"`
	// Trace receives structured solve events (model shape, root bound,
	// sampled node progress, incumbents, terminal status) when set.
	// Nil disables tracing at zero cost. Never serialized, and ignored
	// by the service's canonical cache key.
	Trace *trace.Tracer `json:"-"`
	// Record, when set, captures the branch-and-bound search lineage
	// into the flight recorder (milp.Options.Record) for offline replay
	// with cmd/tpreplay. Never serialized; never part of the cache key.
	Record *trace.Recorder `json:"-"`
	// Profile, when set, receives per-phase wall-time attribution from
	// the MILP node loop and the LP engine (milp.Options.Profile). Never
	// serialized; never part of the cache key.
	Profile *trace.Profile `json:"-"`
	// Span, when set, is the parent span of the solve: Build opens a
	// "build" child and the search opens its stage spans under it
	// (milp.Options.Span). Never serialized; never part of the cache
	// key.
	Span *trace.Span `json:"-"`
	// BlackBox, when set, is the per-job keep-last anomaly recorder
	// passed to the search (milp.Options.BlackBox). Never serialized;
	// never part of the cache key.
	BlackBox *trace.BlackBox `json:"-"`
	// Status, when set, is attached to the running search for live
	// introspection (milp.Options.Status). Never serialized; never
	// part of the cache key.
	Status *milp.SearchStatus `json:"-"`
	// PanicNode and NodeDelay are fault-injection test hooks forwarded
	// to milp.Options verbatim (panic at a global node index; sleep
	// per node). Never serialized; never part of the cache key.
	PanicNode int64         `json:"-"`
	NodeDelay time.Duration `json:"-"`
}

// Validate checks the options for values no layer accepts: negative
// sizes and limits, and enum values outside their range. It does not
// enforce instance-dependent conditions (those surface in Build).
func (o Options) Validate() error {
	if o.N < 0 {
		return fmt.Errorf("core: negative partition count N = %d", o.N)
	}
	if o.L < 0 {
		return fmt.Errorf("core: negative latency relaxation L = %d", o.L)
	}
	if o.Linearization < LinGlover || o.Linearization > LinFortet {
		return fmt.Errorf("core: unknown linearization %d", o.Linearization)
	}
	if o.Branch < BranchPaper || o.Branch > BranchMostFrac {
		return fmt.Errorf("core: unknown branch rule %d", o.Branch)
	}
	if o.Cuts > CutsAll {
		return fmt.Errorf("core: unknown cut families in mask %#x", o.Cuts)
	}
	if o.MaxNodes < 0 {
		return fmt.Errorf("core: negative node limit %d", o.MaxNodes)
	}
	if o.TimeLimit < 0 {
		return fmt.Errorf("core: negative time limit %v", o.TimeLimit)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("core: negative parallelism %d", o.Parallelism)
	}
	if _, err := lp.ParseEngine(o.LPEngine); err != nil {
		return err
	}
	if o.Search != nil {
		if err := o.Search.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Instance is a complete problem instance: the behavioral
// specification, the FU exploration set F, and the target device.
type Instance struct {
	Graph  *graph.Graph
	Alloc  *library.Allocation
	Device library.Device
}

// Validate checks that the instance is well formed and solvable in
// principle: valid graph, covering allocation, valid device.
func (in Instance) Validate() error {
	if in.Graph == nil || in.Alloc == nil {
		return fmt.Errorf("core: nil graph or allocation")
	}
	if err := in.Graph.Validate(); err != nil {
		return err
	}
	if err := in.Device.Validate(); err != nil {
		return err
	}
	if k, ok := in.Alloc.Covers(in.Graph); !ok {
		return fmt.Errorf("core: no functional unit executes op kind %q", k)
	}
	return nil
}
