package core
