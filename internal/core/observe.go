package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// familyStats aggregates the generated rows by constraint family — the
// row-name prefix before '[' (uniq, assign, zlo, t28, ...) — so a model
// event reports how large each family of the formulation came out,
// including the tightening-cut rows t28/t29/t30/t32 per CutSet member.
func (m *Model) familyStats() []trace.Family {
	byName := map[string]*trace.Family{}
	for i := 0; i < m.P.NumRows(); i++ {
		name := m.P.RowName(i)
		if cut := strings.IndexByte(name, '['); cut >= 0 {
			name = name[:cut]
		}
		f := byName[name]
		if f == nil {
			f = &trace.Family{Name: name}
			byName[name] = f
		}
		f.Rows++
		f.NNZ += m.P.RowNNZ(i)
	}
	out := make([]trace.Family, 0, len(byName))
	for _, f := range byName {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// emitModelEvent reports the generated model's shape on the configured
// tracer at the end of Build. No-op when tracing is off.
func (m *Model) emitModelEvent() {
	tr := m.Opt.Trace
	if !tr.Enabled() {
		return
	}
	density := 0.0
	if m.stats.Vars > 0 && m.stats.Rows > 0 {
		density = float64(m.stats.NNZ) / (float64(m.stats.Vars) * float64(m.stats.Rows))
	}
	tr.Emit(trace.Event{
		Kind:     trace.KindModel,
		Vars:     m.stats.Vars,
		Rows:     m.stats.Rows,
		NNZ:      m.stats.NNZ,
		Density:  density,
		Families: m.familyStats(),
		Msg: fmt.Sprintf("N=%d L=%d lin=%s tightened=%t",
			m.N, m.Opt.L, m.Opt.Linearization, m.Opt.Tightened),
	})
}

// EmitResult reports a terminal core-level outcome on the configured
// tracer. SolveContext emits its own result; the export exists for the
// delta layer's conclusion-reuse path, which produces a Result without
// entering SolveContext but still owes the job trace its terminal
// result event.
func (m *Model) EmitResult(res *Result) { m.emitResult(res) }

// emitResult reports the terminal core-level outcome — after solution
// extraction and independent verification — on the configured tracer.
func (m *Model) emitResult(res *Result) {
	tr := m.Opt.Trace
	if !tr.Enabled() {
		return
	}
	e := trace.Event{
		Kind:   trace.KindResult,
		Nodes:  int64(res.Nodes),
		Pivots: int64(res.LPIterations),
	}
	switch {
	case res.Cancelled:
		e.Status = "cancelled"
	case res.Optimal && res.Feasible:
		e.Status = "optimal"
	case res.Optimal:
		e.Status = "infeasible"
	case res.Feasible:
		e.Status = "feasible"
	default:
		e.Status = "limit"
	}
	if res.Solution != nil {
		e.HasIncumbent = true
		e.Incumbent = float64(res.Solution.Comm)
	}
	tr.Emit(e)
}
