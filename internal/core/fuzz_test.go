package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/heuristic"
	"repro/internal/library"
	"repro/internal/oracle"
	"repro/internal/randgraph"
)

// FuzzDifferential is the differential harness of the MILP pipeline:
// random tiny instances are solved three ways — the full MILP pipeline
// (with exact certification on), the exhaustive oracle, and the
// list-scheduling heuristic — and the verdicts are cross-checked:
//
//   - MILP and oracle must agree exactly on feasibility and on the
//     optimal communication cost,
//   - the heuristic is one-sided: a constructive heuristic solution
//     proves feasibility and upper-bounds the optimum,
//   - every certificate the pipeline attaches must re-verify.
//
// Disagreements become corpus entries under
// testdata/fuzz/FuzzDifferential; run locally with
//
//	go test -fuzz=FuzzDifferential -fuzztime=60s ./internal/core/
//
// (see EXPERIMENTS.md). CI runs the same invocation for 60 seconds.
func FuzzDifferential(f *testing.F) {
	// seeds mirror the TestOracleCrossCheck sweep corners
	f.Add(int64(1), int64(0), int64(0))
	f.Add(int64(2), int64(1), int64(1))
	f.Add(int64(7), int64(0), int64(1))
	f.Add(int64(13), int64(1), int64(0))
	f.Add(int64(19), int64(42), int64(-3))
	f.Add(int64(25), int64(-8), int64(5))

	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		f.Fatal(err)
	}
	caps := []int{120, 160, 400}
	mems := []int{3, 8, 64}

	f.Fuzz(func(t *testing.T, seed, nRaw, lRaw int64) {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Skip() // degenerate generator parameters
		}
		abs := func(v int64) int64 {
			if v < 0 {
				// min int64 negates to itself; mask below keeps it positive
				v = -v
			}
			return v & 0x7fffffff
		}
		N := 2 + int(abs(nRaw)%2)
		L := int(abs(lRaw) % 3)
		dev := library.Device{
			Name:       "fuzz",
			CapacityFG: caps[abs(seed)%int64(len(caps))],
			Alpha:      1.0,
			ScratchMem: mems[abs(seed/3)%int64(len(mems))],
		}

		want, err := oracle.Solve(g, alloc, dev, N, L)
		if err != nil {
			if errors.Is(err, oracle.ErrTooLarge) {
				t.Skip() // outside the oracle's exhaustive envelope
			}
			t.Fatalf("oracle: %v", err)
		}

		opt := Options{
			N: N, L: L,
			Linearization: LinGlover,
			Tightened:     true,
			Certify:       true,
			TimeLimit:     30 * time.Second,
		}
		res, err := SolveInstance(Instance{Graph: g, Alloc: alloc, Device: dev}, opt)
		if err != nil {
			t.Fatalf("seed %d N=%d L=%d: %v", seed, N, L, err)
		}
		if !res.Optimal {
			t.Skip() // time limit hit: no verdict to compare
		}
		if res.Feasible != want.Feasible {
			t.Fatalf("seed %d N=%d L=%d: milp feasible=%v, oracle=%v",
				seed, N, L, res.Feasible, want.Feasible)
		}
		if res.Feasible && res.Solution.Comm != want.Comm {
			t.Fatalf("seed %d N=%d L=%d: milp comm=%d, oracle=%d",
				seed, N, L, res.Solution.Comm, want.Comm)
		}
		if c := res.Certificate; c != nil && !c.Valid {
			t.Fatalf("seed %d N=%d L=%d: certificate failed: %v", seed, N, L, c.Err())
		}
		if res.Feasible && res.Certificate == nil {
			t.Fatalf("seed %d N=%d L=%d: feasible optimal solve carries no certificate", seed, N, L)
		}

		// heuristic: constructive, so one-sided — may miss solutions but
		// must never beat the proved optimum or invent feasibility
		h, err := heuristic.Solve(g, alloc, dev, N, L)
		if err != nil {
			t.Fatalf("heuristic: %v", err)
		}
		if h.Feasible {
			if !want.Feasible {
				t.Fatalf("seed %d N=%d L=%d: heuristic found a solution on an infeasible instance", seed, N, L)
			}
			if h.Comm < want.Comm {
				t.Fatalf("seed %d N=%d L=%d: heuristic comm %d beats the optimum %d",
					seed, N, L, h.Comm, want.Comm)
			}
		}
	})
}
