package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/lp"
	"repro/internal/oracle"
	"repro/internal/randgraph"
)

func smallAlloc(t *testing.T) *library.Allocation {
	t.Helper()
	a, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestOracleCrossCheck certifies the whole pipeline: on tiny random
// instances, every (linearization x tightening x w-mode) combination
// must agree with the exhaustive oracle on feasibility AND the optimal
// communication cost.
func TestOracleCrossCheck(t *testing.T) {
	alloc := smallAlloc(t)
	caps := []int{120, 160, 400}
	mems := []int{3, 8, 64}
	combos := []Options{
		{Linearization: LinGlover, Tightened: true},
		{Linearization: LinGlover, Tightened: false},
		{Linearization: LinGlover, Tightened: false, WPerProduct: true},
		{Linearization: LinGlover, Tightened: true, WPerProduct: true},
		{Linearization: LinFortet, Tightened: true},
		{Linearization: LinFortet, Tightened: false, WPerProduct: true},
	}
	checked := 0
	for seed := int64(1); seed <= 25; seed++ {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Fatal(err)
		}
		dev := library.Device{
			Name:       "t",
			CapacityFG: caps[int(seed)%len(caps)],
			Alpha:      1.0,
			ScratchMem: mems[int(seed/3)%len(mems)],
		}
		N := 2 + int(seed)%2
		L := int(seed) % 2
		want, err := oracle.Solve(g, alloc, dev, N, L)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		for ci, opt := range combos {
			opt.N, opt.L = N, L
			res, err := SolveInstance(Instance{Graph: g, Alloc: alloc, Device: dev}, opt)
			if err != nil {
				t.Fatalf("seed %d combo %d: %v", seed, ci, err)
			}
			if res.Feasible != want.Feasible {
				t.Fatalf("seed %d combo %d (N=%d L=%d): feasible=%v, oracle=%v",
					seed, ci, N, L, res.Feasible, want.Feasible)
			}
			if res.Feasible && res.Solution.Comm != want.Comm {
				t.Fatalf("seed %d combo %d (N=%d L=%d): comm=%d, oracle=%d\n%s",
					seed, ci, N, L, res.Solution.Comm, want.Comm, res.Solution.Report(g, alloc))
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no instances checked")
	}
}

// TestBranchRulesAgree: all three branching rules find the same optimum.
func TestBranchRulesAgree(t *testing.T) {
	alloc := smallAlloc(t)
	dev := library.Device{Name: "t", CapacityFG: 130, Alpha: 1.0, ScratchMem: 64}
	for seed := int64(1); seed <= 8; seed++ {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Fatal(err)
		}
		inst := Instance{Graph: g, Alloc: alloc, Device: dev}
		var comm [3]int
		var feas [3]bool
		for bi, rule := range []BranchRule{BranchPaper, BranchFirstFrac, BranchMostFrac} {
			res, err := SolveInstance(inst, Options{N: 2, L: 1, Tightened: true, Branch: rule})
			if err != nil {
				t.Fatalf("seed %d rule %v: %v", seed, rule, err)
			}
			feas[bi] = res.Feasible
			if res.Feasible {
				comm[bi] = res.Solution.Comm
			}
		}
		if feas[0] != feas[1] || feas[1] != feas[2] {
			t.Fatalf("seed %d: feasibility disagrees: %v", seed, feas)
		}
		if feas[0] && (comm[0] != comm[1] || comm[1] != comm[2]) {
			t.Fatalf("seed %d: optima disagree: %v", seed, comm)
		}
	}
}

// figure3Instance builds the paper's Figure 3 shape: three tasks in a
// chain with an extra skip edge, forced onto three partitions by
// device capacity.
func figure3Instance(t *testing.T) (Instance, int, int, int) {
	t.Helper()
	g := graph.New("fig3")
	t0 := g.AddTask("t1")
	t1 := g.AddTask("t2")
	t2 := g.AddTask("t3")
	a := g.AddOp(t0, graph.OpMul, "")
	b := g.AddOp(t1, graph.OpMul, "")
	c := g.AddOp(t2, graph.OpMul, "")
	bwAB, bwBC, bwAC := 4, 6, 2
	g.Connect(a, b, bwAB)
	g.Connect(b, c, bwBC)
	g.Connect(a, c, bwAC)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// the mapping t1->p1, t2->p2, t3->p3 is pinned in the test; the
	// device only needs to make that mapping feasible
	return Instance{Graph: g, Alloc: alloc, Device: library.Device{
		Name: "fig3", CapacityFG: 96, Alpha: 1.0, ScratchMem: 64,
	}}, bwAB, bwBC, bwAC
}

// TestFigure3Semantics reproduces Figure 3: with tasks t1,t2,t3 mapped
// to partitions 1,2,3, boundary 2 stores bw(1,2)+bw(1,3) and boundary
// 3 stores bw(2,3)+bw(1,3); the objective charges bw(1,3) twice.
func TestFigure3Semantics(t *testing.T) {
	inst, bwAB, bwBC, bwAC := figure3Instance(t)
	m, err := Build(inst, Options{N: 3, L: 0, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	// pin the Figure 3 mapping y[t0]=1, y[t1]=2, y[t2]=3
	for tk, p := range map[int]int{0: 1, 1: 2, 2: 3} {
		if err := m.P.AddEQ(fmt.Sprintf("pin%d", tk), []int{m.Y[[2]int{tk, p}]}, []float64{1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("pinned Figure 3 mapping infeasible")
	}
	s := res.Solution
	if got := s.MemoryAt(inst.Graph, 2); got != bwAB+bwAC {
		t.Errorf("memory at boundary 2 = %d, want %d", got, bwAB+bwAC)
	}
	if got := s.MemoryAt(inst.Graph, 3); got != bwBC+bwAC {
		t.Errorf("memory at boundary 3 = %d, want %d", got, bwBC+bwAC)
	}
	if want := bwAB + bwBC + 2*bwAC; s.Comm != want {
		t.Errorf("comm = %d, want %d", s.Comm, want)
	}
}

// pinAndProbe builds the 2-task/4-partition Figure 4 model, pins task
// placements, requires w[3] = 1 and reports LP feasibility.
func pinAndProbe(t *testing.T, tightened bool, p1, p2 int) lp.Status {
	t.Helper()
	g := graph.New("fig4")
	t0 := g.AddTask("t1")
	t1 := g.AddTask("t2")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t1, graph.OpAdd, "")
	g.Connect(a, b, 1)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst := Instance{Graph: g, Alloc: alloc, Device: library.Device{
		Name: "fig4", CapacityFG: 400, Alpha: 1.0, ScratchMem: 64,
	}}
	m, err := Build(inst, Options{N: 4, L: 4, Tightened: tightened})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.P.AddEQ("pin1", []int{m.Y[[2]int{0, p1}]}, []float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.P.AddEQ("pin2", []int{m.Y[[2]int{1, p2}]}, []float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	// probe: force w[3,0->1] = 1 and ask the LP if that is possible
	if err := m.P.AddEQ("probe", []int{m.W[[3]int{3, 0, 1}]}, []float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	s, err := lp.NewSolver(m.P)
	if err != nil {
		t.Fatal(err)
	}
	return s.Solve()
}

// TestFigure4Cutoffs reproduces Figure 4: without tightening the
// compact w linearization admits spurious w=1 for placements whose
// products are all 0; the cuts (28)-(30) eliminate each case.
func TestFigure4Cutoffs(t *testing.T) {
	cases := []struct{ p1, p2 int }{
		{1, 2}, // cut by (29): t2 before boundary 3
		{3, 4}, // cut by (28): t1 at/after boundary 3
		{2, 2}, // cut by (30): same partition
	}
	for _, c := range cases {
		if st := pinAndProbe(t, false, c.p1, c.p2); st != lp.StatusOptimal {
			t.Errorf("untightened t1@%d t2@%d: w=1 should be LP-feasible, got %v", c.p1, c.p2, st)
		}
		if st := pinAndProbe(t, true, c.p1, c.p2); st != lp.StatusInfeasible {
			t.Errorf("tightened t1@%d t2@%d: w=1 should be cut off, got %v", c.p1, c.p2, st)
		}
	}
	// sanity: a genuinely crossing placement keeps w=1 feasible even
	// when tightened
	if st := pinAndProbe(t, true, 2, 3); st != lp.StatusOptimal {
		t.Errorf("t1@2 t2@3: w=1 must remain feasible, got %v", st)
	}
}

func TestBuildValidation(t *testing.T) {
	alloc := smallAlloc(t)
	g := graph.New("v")
	tk := g.AddTask("t")
	g.AddOp(tk, graph.OpAdd, "")
	inst := Instance{Graph: g, Alloc: alloc, Device: library.XC4010()}
	if _, err := Build(inst, Options{N: -1}); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := Build(inst, Options{N: 1, L: -1}); err == nil {
		t.Error("negative L accepted")
	}
	if _, err := Build(Instance{Graph: g, Alloc: nil, Device: library.XC4010()}, Options{N: 1}); err == nil {
		t.Error("nil alloc accepted")
	}
	bad := Instance{Graph: g, Alloc: alloc, Device: library.Device{Name: "x", CapacityFG: 0, Alpha: 0.5}}
	if _, err := Build(bad, Options{N: 1}); err == nil {
		t.Error("bad device accepted")
	}
}

func TestBuildEstimatesN(t *testing.T) {
	inst := smokeInstance(t)
	m, err := Build(inst, Options{L: 1, Tightened: true}) // N = 0 -> estimate
	if err != nil {
		t.Fatal(err)
	}
	if m.N < 1 {
		t.Fatalf("estimated N = %d", m.N)
	}
	n, err := EstimateN(inst)
	if err != nil {
		t.Fatal(err)
	}
	if n != m.N {
		t.Fatalf("EstimateN = %d, Build used %d", n, m.N)
	}
}

func TestModelDeterminism(t *testing.T) {
	inst := smokeInstance(t)
	opt := Options{N: 3, L: 1, Tightened: true}
	m1, err := Build(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Stats() != m2.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", m1.Stats(), m2.Stats())
	}
	for i := 0; i < m1.P.NumVars(); i++ {
		if m1.P.VarName(i) != m2.P.VarName(i) {
			t.Fatalf("var %d name %q vs %q", i, m1.P.VarName(i), m2.P.VarName(i))
		}
	}
	for i := 0; i < m1.P.NumRows(); i++ {
		if m1.P.RowName(i) != m2.P.RowName(i) {
			t.Fatalf("row %d name %q vs %q", i, m1.P.RowName(i), m2.P.RowName(i))
		}
	}
}

func TestTightenedModelHasMoreRows(t *testing.T) {
	inst := smokeInstance(t)
	base, err := Build(inst, Options{N: 3, L: 1, Tightened: false})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Build(inst, Options{N: 3, L: 1, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats().Rows <= base.Stats().Rows {
		t.Fatalf("tightened rows %d <= base rows %d", tight.Stats().Rows, base.Stats().Rows)
	}
	if tight.Stats().Vars != base.Stats().Vars {
		t.Fatalf("tightening changed variable count: %d vs %d", tight.Stats().Vars, base.Stats().Vars)
	}
}

func TestInfeasibleByLatency(t *testing.T) {
	// N=2 with L=0: a 2-task chain cannot split across 2 partitions
	// without extra steps (3 ops in a chain, CP=3, splitting needs
	// step-disjoint partitions but CP already uses all steps). It CAN
	// stay in one partition, so force a split with a tiny device.
	g := graph.New("inf")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	a := g.AddOp(t0, graph.OpAdd, "")
	b := g.AddOp(t1, graph.OpMul, "")
	g.Connect(a, b, 2)
	alloc := smallAlloc(t)
	dev := library.Device{Name: "tiny", CapacityFG: 96, Alpha: 1.0, ScratchMem: 64}
	inst := Instance{Graph: g, Alloc: alloc, Device: dev}
	// add16+mul16 = 112 > 96, so tasks must split; CP=2 and the split
	// schedule also needs just 2 steps, so L=0 is feasible here.
	res, err := SolveInstance(inst, Options{N: 2, L: 0, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible split")
	}
	if res.Solution.Comm != 2 {
		t.Fatalf("comm = %d, want 2", res.Solution.Comm)
	}
	// but with N=1 the device cannot hold both FUs: infeasible
	res, err = SolveInstance(inst, Options{N: 1, L: 2, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("N=1 should be infeasible on the tiny device")
	}
}

func TestNodeLimitNeverOverclaims(t *testing.T) {
	// With a node limit the solver may finish (root integral thanks to
	// completion) or stop early; it must never claim optimality after
	// stopping without an incumbent.
	g := randgraph.MustPaper(1)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := Instance{Graph: g, Alloc: alloc, Device: library.XC4025()}
	res, err := SolveInstance(inst, Options{N: 3, L: 1, Tightened: true, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal && !res.Feasible && res.Nodes > 1 {
		t.Fatal("optimal claimed after truncated infeasible search")
	}
	if res.Feasible && res.Solution == nil {
		t.Fatal("feasible without solution")
	}
}
