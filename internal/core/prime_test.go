package core

import (
	"testing"

	"repro/internal/library"
	"repro/internal/oracle"
	"repro/internal/randgraph"
)

// Priming with the heuristic incumbent must never change the reported
// optimum or feasibility, only the search effort.
func TestPrimingPreservesOptimum(t *testing.T) {
	alloc := smallAlloc(t)
	dev := library.Device{Name: "t", CapacityFG: 130, Alpha: 1.0, ScratchMem: 64}
	for seed := int64(1); seed <= 10; seed++ {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Fatal(err)
		}
		inst := Instance{Graph: g, Alloc: alloc, Device: dev}
		plain, err := SolveInstance(inst, Options{N: 2, L: 1, Tightened: true})
		if err != nil {
			t.Fatal(err)
		}
		primed, err := SolveInstance(inst, Options{N: 2, L: 1, Tightened: true, PrimeHeuristic: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Feasible != primed.Feasible {
			t.Fatalf("seed %d: feasibility changed by priming: %v vs %v", seed, plain.Feasible, primed.Feasible)
		}
		if plain.Feasible && plain.Solution.Comm != primed.Solution.Comm {
			t.Fatalf("seed %d: optimum changed by priming: %d vs %d", seed, plain.Solution.Comm, primed.Solution.Comm)
		}
		if primed.Feasible && !primed.Optimal {
			t.Fatalf("seed %d: primed solve lost optimality proof", seed)
		}
	}
}

// When the heuristic already finds the optimum, the primed search
// proves it by exhausting the tree and returns the heuristic solution.
func TestPrimingReturnsHeuristicSolutionWhenOptimal(t *testing.T) {
	g := randgraph.MustPaper(1)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := Instance{Graph: g, Alloc: alloc, Device: library.XC4025()}
	res, err := SolveInstance(inst, Options{N: 2, L: 3, Tightened: true, PrimeHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Optimal || res.Solution == nil {
		t.Fatalf("feas=%v opt=%v sol=%v", res.Feasible, res.Optimal, res.Solution != nil)
	}
}

// Presolve must never change feasibility or the optimum.
func TestPresolvePreservesResults(t *testing.T) {
	alloc := smallAlloc(t)
	dev := library.Device{Name: "t", CapacityFG: 130, Alpha: 1.0, ScratchMem: 8}
	for seed := int64(1); seed <= 10; seed++ {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Fatal(err)
		}
		inst := Instance{Graph: g, Alloc: alloc, Device: dev}
		plain, err := SolveInstance(inst, Options{N: 2, L: 1, Tightened: true})
		if err != nil {
			t.Fatal(err)
		}
		pre, err := SolveInstance(inst, Options{N: 2, L: 1, Tightened: true, Presolve: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Feasible != pre.Feasible {
			t.Fatalf("seed %d: feasibility changed by presolve", seed)
		}
		if plain.Feasible && plain.Solution.Comm != pre.Solution.Comm {
			t.Fatalf("seed %d: optimum changed: %d vs %d", seed, plain.Solution.Comm, pre.Solution.Comm)
		}
	}
}

// The exact sweep must agree with the oracle and the pure ILP.
func TestExactSweepMatchesOracle(t *testing.T) {
	alloc := smallAlloc(t)
	for seed := int64(1); seed <= 15; seed++ {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Fatal(err)
		}
		dev := library.Device{Name: "t", CapacityFG: 130, Alpha: 1.0, ScratchMem: 8}
		want, err := oracle.Solve(g, alloc, dev, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveInstance(Instance{Graph: g, Alloc: alloc, Device: dev},
			Options{N: 2, L: 1, Tightened: true, ExactSweep: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible != want.Feasible {
			t.Fatalf("seed %d: feasible=%v oracle=%v", seed, res.Feasible, want.Feasible)
		}
		if res.Feasible && res.Solution.Comm != want.Comm {
			t.Fatalf("seed %d: comm=%d oracle=%d", seed, res.Solution.Comm, want.Comm)
		}
		if !res.Optimal {
			t.Fatalf("seed %d: sweep did not prove optimality", seed)
		}
	}
}
