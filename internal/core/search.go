package core

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// SearchMode selects the branch-and-bound scheduling strategy of the
// MILP layer (milp.SearchMode, re-declared here so the wire form never
// imports solver internals).
type SearchMode int

const (
	// SearchAuto lets the solver pick: the size gate decides between
	// serial and work-stealing.
	SearchAuto SearchMode = iota
	// SearchSerial forces the single-threaded deterministic search even
	// when Parallelism > 1.
	SearchSerial
	// SearchSteal forces the work-stealing node pool, bypassing the
	// size gate.
	SearchSteal
	// SearchPortfolio races one complete search per worker, each with a
	// different branching strategy, sharing incumbents.
	SearchPortfolio
)

func (m SearchMode) String() string {
	switch m {
	case SearchSerial:
		return "serial"
	case SearchSteal:
		return "steal"
	case SearchPortfolio:
		return "portfolio"
	default:
		return "auto"
	}
}

// ParseSearchMode parses a search-mode name; "" means auto.
func ParseSearchMode(s string) (SearchMode, error) {
	switch s {
	case "", "auto":
		return SearchAuto, nil
	case "serial":
		return SearchSerial, nil
	case "steal":
		return SearchSteal, nil
	case "portfolio":
		return SearchPortfolio, nil
	}
	return 0, fmt.Errorf("core: unknown search mode %q (want auto, serial, steal or portfolio)", s)
}

// MarshalJSON encodes the search mode by name.
func (m SearchMode) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts a name or the numeric enum value.
func (m *SearchMode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		if n, nerr := strconv.Atoi(string(data)); nerr == nil && n >= 0 && n <= int(SearchPortfolio) {
			*m = SearchMode(n)
			return nil
		}
		return fmt.Errorf("core: invalid search mode %s", data)
	}
	v, err := ParseSearchMode(s)
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// Toggle is a three-state switch: auto (defer to the solver's policy),
// on, or off. The zero value is auto, so omitted JSON fields inherit
// the default behavior.
type Toggle int

const (
	// ToggleAuto defers to the solver: root strengthening turns on for
	// parallel searches, off for serial ones.
	ToggleAuto Toggle = iota
	// ToggleOn forces the feature on.
	ToggleOn
	// ToggleOff forces the feature off.
	ToggleOff
)

func (t Toggle) String() string {
	switch t {
	case ToggleOn:
		return "on"
	case ToggleOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseToggle parses a toggle name; "" means auto.
func ParseToggle(s string) (Toggle, error) {
	switch s {
	case "", "auto":
		return ToggleAuto, nil
	case "on", "true", "1":
		return ToggleOn, nil
	case "off", "false", "0":
		return ToggleOff, nil
	}
	return 0, fmt.Errorf("core: unknown toggle %q (want auto, on or off)", s)
}

// MarshalJSON encodes the toggle by name.
func (t Toggle) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON accepts a name ("auto", "on", "off") or the numeric
// enum value.
func (t *Toggle) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		if n, nerr := strconv.Atoi(string(data)); nerr == nil && n >= 0 && n <= int(ToggleOff) {
			*t = Toggle(n)
			return nil
		}
		return fmt.Errorf("core: invalid toggle %s", data)
	}
	v, err := ParseToggle(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// SearchOptions consolidates every branch-and-bound search knob into
// one embeddable group, serialized as the "search" object of the wire
// form. The legacy flat fields of Options (Parallelism,
// ParallelThreshold, Branch) keep working: EffectiveSearch merges the
// two, with explicit SearchOptions fields winning over the flat ones.
type SearchOptions struct {
	// Parallelism is the worker count; see Options.Parallelism. 0
	// inherits the flat field (which itself defaults to serial).
	Parallelism int `json:"parallelism,omitempty"`
	// Threshold gates parallel modes by root size; see
	// Options.ParallelThreshold. 0 inherits the flat field.
	Threshold int `json:"threshold,omitempty"`
	// Mode picks serial, work-stealing or portfolio search; auto (the
	// zero value) lets the size gate decide.
	Mode SearchMode `json:"mode,omitempty"`
	// Branch selects the branching rule; the zero value (the paper's
	// rule, BranchPaper) inherits the flat Options.Branch.
	Branch BranchRule `json:"branch,omitempty"`
	// Cuts controls root-node cut strengthening (Gomory + cover cuts).
	// Auto enables it for parallel searches.
	Cuts Toggle `json:"cuts,omitempty"`
	// Dive controls the root diving heuristic that seeds an early
	// incumbent. Auto enables it for parallel searches.
	Dive Toggle `json:"dive,omitempty"`
}

// Validate checks the search options for values no layer accepts.
func (s SearchOptions) Validate() error {
	if s.Parallelism < 0 {
		return fmt.Errorf("core: negative search parallelism %d", s.Parallelism)
	}
	if s.Mode < SearchAuto || s.Mode > SearchPortfolio {
		return fmt.Errorf("core: unknown search mode %d", s.Mode)
	}
	if s.Branch < BranchPaper || s.Branch > BranchMostFrac {
		return fmt.Errorf("core: unknown branch rule %d", s.Branch)
	}
	if s.Cuts < ToggleAuto || s.Cuts > ToggleOff {
		return fmt.Errorf("core: unknown cuts toggle %d", s.Cuts)
	}
	if s.Dive < ToggleAuto || s.Dive > ToggleOff {
		return fmt.Errorf("core: unknown dive toggle %d", s.Dive)
	}
	return nil
}

// EffectiveSearch resolves the final search configuration: the legacy
// flat fields (Parallelism, ParallelThreshold, Branch) seed the
// result, then any explicitly-set field of Options.Search overrides
// its flat counterpart. A zero SearchOptions field means "inherit the
// flat knob", so existing callers and stored request bodies keep their
// exact behavior.
func (o Options) EffectiveSearch() SearchOptions {
	eff := SearchOptions{
		Parallelism: o.Parallelism,
		Threshold:   o.ParallelThreshold,
		Branch:      o.Branch,
	}
	if s := o.Search; s != nil {
		if s.Parallelism != 0 {
			eff.Parallelism = s.Parallelism
		}
		if s.Threshold != 0 {
			eff.Threshold = s.Threshold
		}
		if s.Mode != SearchAuto {
			eff.Mode = s.Mode
		}
		if s.Branch != BranchPaper {
			eff.Branch = s.Branch
		}
		if s.Cuts != ToggleAuto {
			eff.Cuts = s.Cuts
		}
		if s.Dive != ToggleAuto {
			eff.Dive = s.Dive
		}
	}
	return eff
}
