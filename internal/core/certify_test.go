package core

import (
	"testing"

	"repro/internal/exact"
)

// TestCertifyLabelsGraph: a certified optimal solve at the core layer
// carries a valid certificate labeled with the instance's graph name.
func TestCertifyLabelsGraph(t *testing.T) {
	inst := smokeInstance(t)
	res, err := SolveInstance(inst, Options{N: 2, L: 1, Tightened: true, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Optimal {
		t.Fatalf("feasible=%v optimal=%v", res.Feasible, res.Optimal)
	}
	c := res.Certificate
	if c == nil {
		t.Fatal("no certificate attached")
	}
	if c.Label != "smoke" {
		t.Fatalf("label = %q, want the graph name", c.Label)
	}
	if c.Kind != exact.KindOptimal {
		t.Fatalf("kind = %q", c.Kind)
	}
	if !c.Valid {
		t.Fatalf("certificate failed: %v\n%+v", c.Err(), c.Checks)
	}
}

// TestCertifyInfeasibleInstance: an infeasible instance (the forced
// 3-way split squeezed into 2 partitions) certifies its verdict too.
func TestCertifyInfeasibleInstance(t *testing.T) {
	inst := smokeInstance(t)
	inst.Device.CapacityFG = 100 // mul and add cannot coexist
	res, err := SolveInstance(inst, Options{N: 2, L: 2, Tightened: true, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || !res.Optimal {
		t.Fatalf("feasible=%v optimal=%v, want proven infeasible", res.Feasible, res.Optimal)
	}
	c := res.Certificate
	if c == nil {
		t.Fatal("no certificate attached to the infeasibility verdict")
	}
	if c.Kind != exact.KindInfeasible {
		t.Fatalf("kind = %q", c.Kind)
	}
	if !c.Valid {
		t.Fatalf("certificate failed: %v\n%+v", c.Err(), c.Checks)
	}
}

// TestCertifySweepPathNoCertificate: when the exact sweep settles the
// whole instance the MILP never runs, so there is nothing certified —
// the result must not carry a certificate that was never computed.
func TestCertifySweepPathNoCertificate(t *testing.T) {
	inst := smokeInstance(t)
	res, err := SolveInstance(inst, Options{N: 2, L: 1, Tightened: true, Certify: true, ExactSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Optimal {
		t.Fatalf("feasible=%v optimal=%v", res.Feasible, res.Optimal)
	}
	if res.Nodes == 0 && res.Certificate != nil {
		t.Fatalf("sweep-settled result carries a certificate: %+v", res.Certificate)
	}
}
