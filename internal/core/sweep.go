package core

import (
	"fmt"
	"time"

	"repro/internal/milp"
	"repro/internal/partition"
	"repro/internal/sched"
)

// The exact sweep is an alternative optimality engine for instances
// with few tasks (every benchmark instance qualifies): it enumerates
// order- and memory-valid task assignments with cost-bound pruning and
// certifies each candidate with the budgeted exact scheduler. When
// every candidate below the incumbent resolves, the incumbent is
// provably optimal and branch and bound reduces to a formality; when
// some candidates blow the scheduling budget, they stay in the shared
// probe cache and branch and bound settles only those.
//
// Enabled by Options.ExactSweep; the paper-faithful rows (Tables 1-2,
// the branching ablation) leave it off so they measure the ILP search
// itself.

// sweepResult reports an exact sweep.
type sweepResult struct {
	// best is the best verified solution found (nil when none).
	best *partition.Solution
	// unresolved counts assignments the scheduler could not settle
	// within budget; optimality is proved only when it is zero.
	unresolved int
	// unresolvedParts lists those assignments for targeted settling.
	unresolvedParts [][]int
	// enumerated counts assignments reaching the exact scheduler.
	enumerated int
	// nodes and pivots accumulate the branch-and-bound nodes and
	// simplex iterations spent settling stubborn assignments, so sweep
	// results report solver effort uniformly with the LP search path.
	nodes  int
	pivots int
}

// maxSweepTasks bounds the assignment enumeration.
const maxSweepTasks = 12

// exactSweep enumerates assignments cheaper than the given incumbent
// bound (math-style: comm < bound; bound < 0 means unbounded). The
// deadline bounds the whole enumeration: on expiry every assignment
// not yet settled counts as unresolved, which keeps the result sound
// (optimality is only claimed when unresolved is zero).
func (m *Model) exactSweep(incumbent *partition.Solution, deadline time.Time) sweepResult {
	g := m.Inst.Graph
	res := sweepResult{best: incumbent}
	bound := -1
	if incumbent != nil {
		bound = incumbent.Comm
	}
	order, err := g.TopoTasks()
	if err != nil {
		return res
	}
	nt := g.NumTasks()
	assign := make([]int, nt)
	expired := false
	var rec func(idx, partial int)
	rec = func(idx, partial int) {
		if expired {
			return
		}
		if bound >= 0 && partial >= bound {
			return
		}
		if idx == nt {
			if m.cancelled() || (!deadline.IsZero() && time.Now().After(deadline)) {
				expired = true
				res.unresolved++ // at least this one is unsettled
				return
			}
			// memory check at every boundary
			for p := 2; p <= m.N; p++ {
				if sched.MemoryAt(g, assign, p) > m.Inst.Device.ScratchMem {
					return
				}
			}
			res.enumerated++
			ent := m.scheduleForDeadline(assign, true, deadline)
			switch ent.status {
			case schedFound:
				sol := m.solutionFrom(assign, ent.step, ent.unit)
				if sol != nil && (bound < 0 || sol.Comm < bound) {
					res.best = sol
					bound = sol.Comm
				}
			case schedBudget:
				res.unresolved++
				res.unresolvedParts = append(res.unresolvedParts, append([]int(nil), assign...))
			}
			return
		}
		t := order[idx]
		lo := 1
		for _, pr := range g.TaskPred(t) {
			if assign[pr] > lo {
				lo = assign[pr]
			}
		}
		for p := lo; p <= m.N; p++ {
			assign[t] = p
			delta := 0
			for _, pr := range g.TaskPred(t) {
				delta += g.Bandwidth(pr, t) * (p - assign[pr])
			}
			rec(idx+1, partial+delta)
		}
		assign[t] = 0
	}
	rec(0, 0)
	if expired {
		// signal that the enumeration was cut short
		res.unresolved++
	}
	return res
}

// solutionFrom converts an exact schedule into a verified Solution.
func (m *Model) solutionFrom(part []int, step, unit []int) *partition.Solution {
	sol := &partition.Solution{
		N:             m.N,
		TaskPartition: append([]int(nil), part...),
		OpStep:        append([]int(nil), step...),
		OpUnit:        append([]int(nil), unit...),
	}
	sol.Comm = sol.CommCost(m.Inst.Graph)
	err := partition.Verify(m.Inst.Graph, m.Inst.Alloc, m.Inst.Device, sol, partition.VerifyOptions{
		L:          m.Opt.L,
		Windows:    m.Win,
		Multicycle: m.Opt.Multicycle,
	})
	if err != nil {
		return nil
	}
	return sol
}

// settleUnresolved attacks the assignments the exact scheduler could
// not decide by solving a restricted MILP per assignment (every y
// pinned, so branch and bound works only on the scheduling/binding
// variables). Settled assignments are removed from the unresolved
// count; a strictly better solution updates best. perAssignment bounds
// each restricted solve.
func (m *Model) settleUnresolved(sw *sweepResult, perAssignment time.Duration) {
	if len(sw.unresolvedParts) == 0 {
		return
	}
	// snapshot original y bounds
	type saved struct {
		col    int
		lo, hi float64
	}
	var stash []saved
	for _, col := range m.tierY {
		lo, hi := m.P.Bounds(col)
		stash = append(stash, saved{col, lo, hi})
	}
	restore := func() {
		for _, sv := range stash {
			_ = m.P.SetVarBounds(sv.col, sv.lo, sv.hi)
		}
	}
	defer restore()

	var remaining [][]int
	for i, part := range sw.unresolvedParts {
		if m.cancelled() {
			// hand the leftovers back unsettled; the caller's branch
			// and bound will observe the same cancellation immediately
			remaining = append(remaining, sw.unresolvedParts[i:]...)
			break
		}
		for t := 0; t < m.Inst.Graph.NumTasks(); t++ {
			for p := 1; p <= m.N; p++ {
				v := 0.0
				if part[t] == p {
					v = 1
				}
				_ = m.P.SetVarBounds(m.Y[[2]int{t, p}], v, v)
			}
		}
		res, err := milp.SolveContext(m.solveCtx(), m.P, milp.Options{
			IntVars:     m.intVars,
			Brancher:    milp.BrancherFunc(m.paperBranch),
			ObjIntegral: true,
			TimeLimit:   perAssignment,
			Complete:    m.complete,
			Probe:       m.probe,
		})
		if res != nil {
			sw.nodes += res.Nodes
			sw.pivots += res.LPIterations
		}
		switch {
		case err != nil:
			remaining = append(remaining, part)
		case res.Status == milp.StatusInfeasible:
			// assignment proven unschedulable; cache the proof
			m.cacheProbe(fmt.Sprint(part), probeEntry{status: schedInfeasible, full: true})
		case res.Status == milp.StatusOptimal || res.Status == milp.StatusFeasible:
			// the objective is fixed by the assignment, so any feasible
			// point settles it optimally
			sol, err := m.Extract(res.X)
			if err != nil {
				remaining = append(remaining, part)
				break
			}
			if sw.best == nil || sol.Comm < sw.best.Comm {
				sw.best = sol
			}
			// cache the schedule so later probes fathom this assignment
			m.cacheProbe(fmt.Sprint(part), probeEntry{
				status: schedFound, full: true,
				step: append([]int(nil), sol.OpStep...),
				unit: append([]int(nil), sol.OpUnit...),
			})
		default:
			remaining = append(remaining, part)
		}
	}
	sw.unresolved = len(remaining)
	sw.unresolvedParts = remaining
}
