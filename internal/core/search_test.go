package core

import (
	"encoding/json"
	"testing"
)

// TestEffectiveSearchLegacyMapping pins the backward-compatibility
// contract: the legacy flat knobs and the consolidated search object
// resolve to the same effective configuration, and explicit search
// fields win over flat ones.
func TestEffectiveSearchLegacyMapping(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want SearchOptions
	}{
		{
			name: "zero options stay serial-auto",
			opt:  Options{},
			want: SearchOptions{},
		},
		{
			name: "flat fields seed the effective search",
			opt:  Options{Parallelism: 4, ParallelThreshold: -1, Branch: BranchMostFrac},
			want: SearchOptions{Parallelism: 4, Threshold: -1, Branch: BranchMostFrac},
		},
		{
			name: "search object alone",
			opt: Options{Search: &SearchOptions{
				Parallelism: 3, Mode: SearchPortfolio, Cuts: ToggleOn, Dive: ToggleOff,
			}},
			want: SearchOptions{Parallelism: 3, Mode: SearchPortfolio, Cuts: ToggleOn, Dive: ToggleOff},
		},
		{
			name: "search overrides flat where set, inherits where zero",
			opt: Options{
				Parallelism: 2, ParallelThreshold: 500, Branch: BranchFirstFrac,
				Search: &SearchOptions{Parallelism: 8, Mode: SearchSteal},
			},
			want: SearchOptions{Parallelism: 8, Threshold: 500, Mode: SearchSteal, Branch: BranchFirstFrac},
		},
		{
			name: "empty search object inherits every flat field",
			opt: Options{
				Parallelism: 6, ParallelThreshold: 42, Branch: BranchMostFrac,
				Search: &SearchOptions{},
			},
			want: SearchOptions{Parallelism: 6, Threshold: 42, Branch: BranchMostFrac},
		},
	}
	for _, tc := range cases {
		if got := tc.opt.EffectiveSearch(); got != tc.want {
			t.Errorf("%s: EffectiveSearch() = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestSearchOptionsJSONRoundTrip: the wire form serializes enums by
// name and omits zero fields, and both names and numeric enum values
// decode.
func TestSearchOptionsJSONRoundTrip(t *testing.T) {
	opt := Options{N: 2, Search: &SearchOptions{
		Parallelism: 4, Mode: SearchSteal, Branch: BranchMostFrac,
		Cuts: ToggleOn, Dive: ToggleOff,
	}}
	b, err := json.Marshal(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"n":2,"search":{"parallelism":4,"mode":"steal","branch":"most-fractional","cuts":"on","dive":"off"}}`
	if string(b) != want {
		t.Fatalf("marshal = %s, want %s", b, want)
	}
	var back Options
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Search == nil || *back.Search != *opt.Search {
		t.Fatalf("round trip = %+v, want %+v", back.Search, opt.Search)
	}
	// names and numerics both decode
	var fromNames SearchOptions
	if err := json.Unmarshal([]byte(`{"mode":"portfolio","cuts":"off","dive":"auto"}`), &fromNames); err != nil {
		t.Fatal(err)
	}
	if fromNames.Mode != SearchPortfolio || fromNames.Cuts != ToggleOff || fromNames.Dive != ToggleAuto {
		t.Fatalf("name decode = %+v", fromNames)
	}
	var fromNums SearchOptions
	if err := json.Unmarshal([]byte(`{"mode":2,"cuts":1}`), &fromNums); err != nil {
		t.Fatal(err)
	}
	if fromNums.Mode != SearchSteal || fromNums.Cuts != ToggleOn {
		t.Fatalf("numeric decode = %+v", fromNums)
	}
	if _, err := ParseSearchMode("warp"); err == nil {
		t.Fatal("ParseSearchMode accepted garbage")
	}
	if _, err := ParseToggle("maybe"); err == nil {
		t.Fatal("ParseToggle accepted garbage")
	}
}

// TestSearchOptionsValidate: Options.Validate must reject out-of-range
// search fields through the embedded group.
func TestSearchOptionsValidate(t *testing.T) {
	good := Options{Search: &SearchOptions{Parallelism: 2, Mode: SearchPortfolio}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid search options rejected: %v", err)
	}
	bad := []Options{
		{Search: &SearchOptions{Parallelism: -1}},
		{Search: &SearchOptions{Mode: SearchMode(99)}},
		{Search: &SearchOptions{Branch: BranchRule(7)}},
		{Search: &SearchOptions{Cuts: Toggle(5)}},
		{Search: &SearchOptions{Dive: Toggle(-2)}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid search options %+v passed Validate", i, *o.Search)
		}
	}
}
