package core

import (
	"fmt"
	"sort"
)

// emitConstraints adds every constraint family of the final model
// (Section 6 of the paper): (1), (2), (3), (6), (7), (8), (11), (12),
// (13), the product linearizations (19)-(23) or their Fortet
// equivalents, (26), (27), the w linearization (31) or the exact
// per-product (4)-(5), and — when Tightened — the cuts (28), (29),
// (30), (32).
func (m *Model) emitConstraints() error {
	emit := []func() error{
		m.addUniqueness,     // (1)
		m.addTemporalOrder,  // (2)
		m.addMemoryCapacity, // (3) — uses w columns
		m.addOpAssignment,   // (6)
		m.addFUConflicts,    // (7)
		m.addDependencies,   // (8)
		m.addResourceCap,    // (11)
		m.addStepOwnership,  // (12) + (13)
		m.addZLinearization, // (19)-(21) / Fortet
		m.addULinks,         // (22) + (23, sign-corrected)
		m.addFUUsage,        // (26) + (27)
		m.addWConstraints,   // (31) or (4)-(5)
	}
	if m.Opt.Tightened {
		emit = append(emit, m.addTightening) // (28)-(30) + (32)
	}
	for _, f := range emit {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// addUniqueness emits eq. (1): every task lands in exactly one
// partition.
func (m *Model) addUniqueness() error {
	for t := 0; t < m.Inst.Graph.NumTasks(); t++ {
		cols := make([]int, 0, m.N)
		for p := 1; p <= m.N; p++ {
			cols = append(cols, m.Y[[2]int{t, p}])
		}
		if err := m.P.AddEQ(fmt.Sprintf("uniq[t%d]", t), cols, ones(len(cols)), 1); err != nil {
			return err
		}
	}
	return nil
}

// addTemporalOrder emits eq. (2): a producer task may not be placed in
// a later partition than a consumer.
func (m *Model) addTemporalOrder() error {
	for _, e := range m.Inst.Graph.TaskEdges() {
		for p2 := 1; p2 <= m.N-1; p2++ {
			cols := []int{m.Y[[2]int{e.To, p2}]}
			for p1 := p2 + 1; p1 <= m.N; p1++ {
				cols = append(cols, m.Y[[2]int{e.From, p1}])
			}
			name := fmt.Sprintf("order[%d->%d,p%d]", e.From, e.To, p2)
			if err := m.P.AddLE(name, cols, ones(len(cols)), 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// addMemoryCapacity emits eq. (3): data stored across each boundary
// must fit the scratch memory.
func (m *Model) addMemoryCapacity() error {
	for p := 2; p <= m.N; p++ {
		var cols []int
		var coefs []float64
		for _, e := range m.Inst.Graph.TaskEdges() {
			cols = append(cols, m.W[[3]int{p, e.From, e.To}])
			coefs = append(coefs, float64(e.Bandwidth))
		}
		if len(cols) == 0 {
			continue
		}
		name := fmt.Sprintf("mem[p%d]", p)
		if err := m.P.AddLE(name, cols, coefs, float64(m.Inst.Device.ScratchMem)); err != nil {
			return err
		}
	}
	return nil
}

// addOpAssignment emits eq. (6): each op gets exactly one (step, FU).
func (m *Model) addOpAssignment() error {
	for i := 0; i < m.Inst.Graph.NumOps(); i++ {
		var cols []int
		for _, j := range m.cs[i] {
			for _, k := range m.fu[i] {
				if col, ok := m.X[[3]int{i, j, k}]; ok {
					cols = append(cols, col)
				}
			}
		}
		if len(cols) == 0 {
			return fmt.Errorf("core: op %d has no feasible (step, FU) pair; increase L", i)
		}
		if err := m.P.AddEQ(fmt.Sprintf("assign[i%d]", i), cols, ones(len(cols)), 1); err != nil {
			return err
		}
	}
	return nil
}

// addFUConflicts emits eq. (7) — corrected to per (step, FU): at most
// one op occupies a unit at any control step. Non-pipelined multicycle
// units occupy every step of their latency; pipelined units only the
// issue slot.
func (m *Model) addFUConflicts() error {
	alloc := m.Inst.Alloc
	for k := 0; k < alloc.NumUnits(); k++ {
		pipelined := alloc.Unit(k).Type.Pipelined
		byStep := map[int][]int{}
		for key, col := range m.X {
			if key[2] != k {
				continue
			}
			if pipelined {
				byStep[key[1]] = append(byStep[key[1]], col)
				continue
			}
			for _, jj := range m.occ[col] {
				byStep[jj] = append(byStep[jj], col)
			}
		}
		steps := sortedKeys(toSet(byStep))
		for _, jj := range steps {
			cols := byStep[jj]
			if len(cols) < 2 {
				continue
			}
			sort.Ints(cols)
			name := fmt.Sprintf("fu[k%d,j%d]", k, jj)
			if err := m.P.AddLE(name, cols, ones(len(cols)), 1); err != nil {
				return err
			}
		}
	}
	return nil
}

func toSet(m map[int][]int) map[int]bool {
	s := make(map[int]bool, len(m))
	for k := range m {
		s[k] = true
	}
	return s
}

// addDependencies emits eq. (8): for every operation dependency
// i1 -> i2, forbid schedules where i2 starts before i1 finishes.
// Producer columns are grouped by FU latency so the multicycle
// extension reuses the same emission.
func (m *Model) addDependencies() error {
	for _, e := range m.Inst.Graph.OpEdges() {
		// group producer units by latency
		byLat := map[int][]int{}
		for _, k1 := range m.fu[e.From] {
			byLat[m.latOf(k1)] = append(byLat[m.latOf(k1)], k1)
		}
		lats := sortedKeys(toSetInt(byLat))
		for _, lam := range lats {
			units := byLat[lam]
			for _, j1 := range m.cs[e.From] {
				var prodCols []int
				for _, k1 := range units {
					if col, ok := m.X[[3]int{e.From, j1, k1}]; ok {
						prodCols = append(prodCols, col)
					}
				}
				if len(prodCols) == 0 {
					continue
				}
				for _, j2 := range m.cs[e.To] {
					if j2 >= j1+lam {
						continue // legal placement
					}
					var consCols []int
					for _, k2 := range m.fu[e.To] {
						if col, ok := m.X[[3]int{e.To, j2, k2}]; ok {
							consCols = append(consCols, col)
						}
					}
					if len(consCols) == 0 {
						continue
					}
					cols := append(append([]int{}, prodCols...), consCols...)
					name := fmt.Sprintf("dep[%d@%d->%d@%d,l%d]", e.From, j1, e.To, j2, lam)
					if err := m.P.AddLE(name, cols, ones(len(cols)), 1); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func toSetInt(m map[int][]int) map[int]bool {
	s := make(map[int]bool, len(m))
	for k := range m {
		s[k] = true
	}
	return s
}

// addResourceCap emits eq. (11): alpha-scaled FG area of the units
// used in each partition must fit the device. The row is emitted in
// the equivalent divided form sum_k FG_k u_pk <= C/alpha (alpha > 0 by
// Instance.Validate), keeping both device scalars off the coefficient
// matrix: an alpha or capacity edit then changes only the row's range,
// which the delta re-solve layer can apply to a live solver without a
// refactorization.
func (m *Model) addResourceCap() error {
	alloc, dev := m.Inst.Alloc, m.Inst.Device
	for p := 1; p <= m.N; p++ {
		var cols []int
		var coefs []float64
		for k := 0; k < alloc.NumUnits(); k++ {
			cols = append(cols, m.U[[2]int{p, k}])
			coefs = append(coefs, float64(alloc.Unit(k).Type.FG))
		}
		name := fmt.Sprintf("cap[p%d]", p)
		if err := m.P.AddLE(name, cols, coefs, float64(dev.CapacityFG)/dev.Alpha); err != nil {
			return err
		}
	}
	return nil
}

// addStepOwnership emits eq. (12) — c_tj is forced to 1 when any op of
// task t occupies step j — and eq. (13): tasks sharing a control step
// must share a partition.
func (m *Model) addStepOwnership() error {
	g := m.Inst.Graph
	nt := g.NumTasks()
	// (12), grouped per (op, occupied step): c_tj >= sum_k x (the sum
	// over one op's placements covering j is at most 1 by eq. 6)
	for t := 0; t < nt; t++ {
		for _, i := range g.Task(t).Ops {
			byStep := map[int][]int{}
			for _, j := range m.cs[i] {
				for _, k := range m.fu[i] {
					col, ok := m.X[[3]int{i, j, k}]
					if !ok {
						continue
					}
					for _, jj := range m.occ[col] {
						byStep[jj] = append(byStep[jj], col)
					}
				}
			}
			steps := sortedKeys(toSet(byStep))
			for _, jj := range steps {
				xcols := byStep[jj]
				sort.Ints(xcols)
				cols := append([]int{m.C[[2]int{t, jj}]}, xcols...)
				coefs := make([]float64, len(cols))
				coefs[0] = 1
				for c := 1; c < len(coefs); c++ {
					coefs[c] = -1
				}
				name := fmt.Sprintf("cdef[t%d,i%d,j%d]", t, i, jj)
				if err := m.P.AddGE(name, cols, coefs, 0); err != nil {
					return err
				}
			}
		}
	}
	// (13): c_t1j + y_t1p1 + c_t2j + y_t2p2 <= 3 for t1 < t2 sharing
	// step j and ordered partition pairs p1 != p2
	for t1 := 0; t1 < nt; t1++ {
		for t2 := t1 + 1; t2 < nt; t2++ {
			shared := intersectSorted(m.cSteps[t1], m.cSteps[t2])
			for _, j := range shared {
				c1 := m.C[[2]int{t1, j}]
				c2 := m.C[[2]int{t2, j}]
				for p1 := 1; p1 <= m.N; p1++ {
					for p2 := 1; p2 <= m.N; p2++ {
						if p1 == p2 {
							continue
						}
						cols := []int{c1, m.Y[[2]int{t1, p1}], c2, m.Y[[2]int{t2, p2}]}
						name := fmt.Sprintf("own[t%d,t%d,j%d,p%d,p%d]", t1, t2, j, p1, p2)
						if err := m.P.AddLE(name, cols, ones(4), 3); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// addZLinearization emits the product linearization z_ptk = y_tp*o_tk:
// Glover (19)-(21) or Fortet (15)-(16).
func (m *Model) addZLinearization() error {
	for p := 1; p <= m.N; p++ {
		for t := 0; t < m.Inst.Graph.NumTasks(); t++ {
			for _, k := range m.oPairs[t] {
				y := m.Y[[2]int{t, p}]
				o := m.O[[2]int{t, k}]
				z := m.Z[[3]int{p, t, k}]
				tag := fmt.Sprintf("p%d,t%d,k%d", p, t, k)
				// (19)/(15): y + o - z <= 1
				if err := m.P.AddLE("zlo["+tag+"]", []int{y, o, z}, []float64{1, 1, -1}, 1); err != nil {
					return err
				}
				if m.Opt.Linearization == LinGlover {
					// (20): z <= o, (21): z <= y
					if err := m.P.AddLE("zo["+tag+"]", []int{z, o}, []float64{1, -1}, 0); err != nil {
						return err
					}
					if err := m.P.AddLE("zy["+tag+"]", []int{z, y}, []float64{1, -1}, 0); err != nil {
						return err
					}
				} else {
					// (16): 2z - y - o <= 0
					if err := m.P.AddLE("zhi["+tag+"]", []int{z, y, o}, []float64{2, -1, -1}, 0); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// addULinks emits eq. (22), u_pk >= z_ptk, and eq. (23) with the sign
// corrected so that partitions may share units: u_pk <= sum_t z_ptk
// (the role eq. (10) plays in the nonlinear model — u must be
// witnessed by at least one task).
func (m *Model) addULinks() error {
	nt := m.Inst.Graph.NumTasks()
	for p := 1; p <= m.N; p++ {
		for k := 0; k < m.Inst.Alloc.NumUnits(); k++ {
			u := m.U[[2]int{p, k}]
			var zcols []int
			for t := 0; t < nt; t++ {
				if z, ok := m.Z[[3]int{p, t, k}]; ok {
					zcols = append(zcols, z)
					// (22): z - u <= 0
					name := fmt.Sprintf("uz[p%d,t%d,k%d]", p, t, k)
					if err := m.P.AddLE(name, []int{z, u}, []float64{1, -1}, 0); err != nil {
						return err
					}
				}
			}
			// (23): u - sum_t z <= 0
			cols := append([]int{u}, zcols...)
			coefs := make([]float64, len(cols))
			coefs[0] = 1
			for c := 1; c < len(coefs); c++ {
				coefs[c] = -1
			}
			name := fmt.Sprintf("uwit[p%d,k%d]", p, k)
			if err := m.P.AddLE(name, cols, coefs, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// addFUUsage emits the o_tk derivation: eq. (26) strengthened to one
// row per (op, unit) — o_tk >= sum_j x_ijk, valid because eq. (6)
// bounds the sum by 1 — and eq. (27): o_tk <= total x of the task on k.
func (m *Model) addFUUsage() error {
	g := m.Inst.Graph
	for t := 0; t < g.NumTasks(); t++ {
		for _, k := range m.oPairs[t] {
			o := m.O[[2]int{t, k}]
			var all []int
			for _, i := range g.Task(t).Ops {
				var cols []int
				for _, j := range m.cs[i] {
					if col, ok := m.X[[3]int{i, j, k}]; ok {
						cols = append(cols, col)
					}
				}
				if len(cols) == 0 {
					continue
				}
				all = append(all, cols...)
				// (26, grouped): o - sum_j x_ijk >= 0
				rc := append([]int{o}, cols...)
				coefs := make([]float64, len(rc))
				coefs[0] = 1
				for c := 1; c < len(coefs); c++ {
					coefs[c] = -1
				}
				name := fmt.Sprintf("ousage[t%d,i%d,k%d]", t, i, k)
				if err := m.P.AddGE(name, rc, coefs, 0); err != nil {
					return err
				}
			}
			// (27): sum_{i,j} x - o >= 0
			rc := append([]int{o}, all...)
			coefs := make([]float64, len(rc))
			coefs[0] = -1
			for c := 1; c < len(coefs); c++ {
				coefs[c] = 1
			}
			name := fmt.Sprintf("owit[t%d,k%d]", t, k)
			if err := m.P.AddGE(name, rc, coefs, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// addWConstraints emits the w linearization: the compact eq. (31) —
// w_p >= sum_{p1<p} y_t1p1 + sum_{p2>=p} y_t2p2 - 1 — or, with
// WPerProduct, the exact per-product eqs. (4)-(5).
func (m *Model) addWConstraints() error {
	g := m.Inst.Graph
	if !m.Opt.WPerProduct {
		for p := 2; p <= m.N; p++ {
			for _, e := range g.TaskEdges() {
				w := m.W[[3]int{p, e.From, e.To}]
				cols := []int{w}
				coefs := []float64{-1}
				for p1 := 1; p1 < p; p1++ {
					cols = append(cols, m.Y[[2]int{e.From, p1}])
					coefs = append(coefs, 1)
				}
				for p2 := p; p2 <= m.N; p2++ { // paper prints p2 < N; Figure 4 shows p2 <= N
					cols = append(cols, m.Y[[2]int{e.To, p2}])
					coefs = append(coefs, 1)
				}
				name := fmt.Sprintf("wlin[p%d,%d->%d]", p, e.From, e.To)
				if err := m.P.AddLE(name, cols, coefs, 1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// per-product: v = y_t1p1 * y_t2p2 linearized, then (5):
	// sum_{p1<p<=p2} v = w_p
	for _, e := range g.TaskEdges() {
		for p1 := 1; p1 < m.N; p1++ {
			y1 := m.Y[[2]int{e.From, p1}]
			for p2 := p1 + 1; p2 <= m.N; p2++ {
				y2 := m.Y[[2]int{e.To, p2}]
				v := m.Prod[[4]int{e.From, e.To, p1, p2}]
				tag := fmt.Sprintf("%d@p%d,%d@p%d", e.From, p1, e.To, p2)
				if err := m.P.AddLE("vlo["+tag+"]", []int{y1, y2, v}, []float64{1, 1, -1}, 1); err != nil {
					return err
				}
				if m.Opt.Linearization == LinGlover {
					if err := m.P.AddLE("v1["+tag+"]", []int{v, y1}, []float64{1, -1}, 0); err != nil {
						return err
					}
					if err := m.P.AddLE("v2["+tag+"]", []int{v, y2}, []float64{1, -1}, 0); err != nil {
						return err
					}
				} else {
					if err := m.P.AddLE("vhi["+tag+"]", []int{v, y1, y2}, []float64{2, -1, -1}, 0); err != nil {
						return err
					}
				}
			}
		}
	}
	for p := 2; p <= m.N; p++ {
		for _, e := range g.TaskEdges() {
			w := m.W[[3]int{p, e.From, e.To}]
			cols := []int{w}
			coefs := []float64{-1}
			for p1 := 1; p1 < p; p1++ {
				for p2 := p; p2 <= m.N; p2++ {
					cols = append(cols, m.Prod[[4]int{e.From, e.To, p1, p2}])
					coefs = append(coefs, 1)
				}
			}
			name := fmt.Sprintf("wsum[p%d,%d->%d]", p, e.From, e.To)
			if err := m.P.AddEQ(name, cols, coefs, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// addTightening emits the cuts of Section 6: (28), (29) with the
// off-by-one corrected to p < p1, (30), and (32).
func (m *Model) addTightening() error {
	g := m.Inst.Graph
	cuts := m.Opt.Cuts
	for _, e := range g.TaskEdges() {
		for p1 := 2; p1 <= m.N; p1++ {
			w := m.W[[3]int{p1, e.From, e.To}]
			if cuts.Has(Cut28) {
				// (28): w_p1 + sum_{p1<=p<=N} y_t1p <= 1
				cols := []int{w}
				for p := p1; p <= m.N; p++ {
					cols = append(cols, m.Y[[2]int{e.From, p}])
				}
				name := fmt.Sprintf("t28[p%d,%d->%d]", p1, e.From, e.To)
				if err := m.P.AddLE(name, cols, ones(len(cols)), 1); err != nil {
					return err
				}
			}
			if cuts.Has(Cut29) {
				// (29): w_p1 + sum_{1<=p<p1} y_t2p <= 1
				cols := []int{w}
				for p := 1; p < p1; p++ {
					cols = append(cols, m.Y[[2]int{e.To, p}])
				}
				name := fmt.Sprintf("t29[p%d,%d->%d]", p1, e.From, e.To)
				if err := m.P.AddLE(name, cols, ones(len(cols)), 1); err != nil {
					return err
				}
			}
		}
		if cuts.Has(Cut30) {
			// (30): both tasks in partition p silence every other boundary
			for p := 2; p <= m.N; p++ {
				for p1 := 2; p1 <= m.N; p1++ {
					if p1 == p {
						continue
					}
					cols := []int{m.Y[[2]int{e.From, p}], m.Y[[2]int{e.To, p}], m.W[[3]int{p1, e.From, e.To}]}
					name := fmt.Sprintf("t30[p%d,p%d,%d->%d]", p, p1, e.From, e.To)
					if err := m.P.AddLE(name, cols, ones(3), 2); err != nil {
						return err
					}
				}
			}
		}
	}
	if cuts.Has(Cut32) {
		// (32): o_tk + y_tp - u_pk <= 1
		for t := 0; t < g.NumTasks(); t++ {
			for _, k := range m.oPairs[t] {
				for p := 1; p <= m.N; p++ {
					cols := []int{m.O[[2]int{t, k}], m.Y[[2]int{t, p}], m.U[[2]int{p, k}]}
					name := fmt.Sprintf("t32[t%d,k%d,p%d]", t, k, p)
					if err := m.P.AddLE(name, cols, []float64{1, 1, -1}, 1); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
