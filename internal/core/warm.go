package core

import (
	"repro/internal/lp"
	"repro/internal/partition"
)

// Warm carries re-solve artifacts injected into a Model before
// SolveContext — the bridge the internal/delta subsystem uses to turn a
// cached previous solve into a cheap amended one. Every field is
// optional; a nil Warm (the default) is a cold solve.
type Warm struct {
	// Solver, when set, becomes the MILP root solver (see
	// milp.Options.Warm). It must represent the model's post-presolve
	// problem: same columns and rows, with any bound, row-range or
	// objective edits already applied. The search mutates it.
	Solver *lp.Solver
	// Prime, when non-nil, primes the incumbent: a solution of THIS
	// instance that the caller has already verified (partition.Verify).
	// Subtrees that cannot strictly beat it are pruned, and when
	// nothing does, Prime is reported optimal.
	Prime *partition.Solution
	// OnRoot, when set, is forwarded to milp.Options.OnRoot: it
	// receives the root LP solver right after the root relaxation
	// solves to optimality, before the search mutates it.
	OnRoot func(*lp.Solver)
}

// SetWarm installs re-solve artifacts for the next SolveContext call.
// Passing nil restores a cold solve.
func (m *Model) SetWarm(w *Warm) { m.warm = w }

// ApplyPresolve runs the configured presolve passes (LP presolve plus
// binary-domain tightening) on the model's problem exactly once,
// reporting whether they proved the instance infeasible. SolveContext
// calls it implicitly; the delta layer calls it explicitly first, so
// the problem it diffs against a cached build is the same
// post-presolve problem the solver will see. Idempotent: later calls
// return the recorded verdict without touching the problem again.
func (m *Model) ApplyPresolve() bool {
	if m.presolved {
		return m.presolveInfeasible
	}
	m.presolved = true
	if m.Opt.Presolve {
		if res := m.P.Presolve(); res.Infeasible {
			m.presolveInfeasible = true
		} else if err := m.P.TightenBinary(m.intVars); err != nil {
			// a binary domain emptied: no integer solution exists
			m.presolveInfeasible = true
		}
	}
	return m.presolveInfeasible
}
