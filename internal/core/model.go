package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/lp"
	"repro/internal/sched"
)

// Model is the generated mixed 0-1 linear program for an instance,
// with maps from the paper's indexed decision variables to columns.
type Model struct {
	Inst Instance
	Opt  Options
	Win  *sched.Windows
	P    *lp.Problem
	// N is the resolved number of partitions.
	N int

	// Y maps (t, p) to the column of y_tp.
	Y map[[2]int]int
	// X maps (i, j, k) to the column of x_ijk.
	X map[[3]int]int
	// O maps (t, k) to the column of o_tk.
	O map[[2]int]int
	// U maps (p, k) to the column of u_pk.
	U map[[2]int]int
	// C maps (t, j) to the column of c_tj.
	C map[[2]int]int
	// Z maps (p, t, k) to the column of z_ptk.
	Z map[[3]int]int
	// W maps (p, t1, t2) to the column of w_p,t1,t2.
	W map[[3]int]int
	// Prod maps (t1, t2, p1, p2) to per-product columns (WPerProduct).
	Prod map[[4]int]int

	intVars []int
	tierY   []int // paper branching tier 1, in (topo-priority, p) order
	tierU   []int // tier 2
	tierX   []int // tier 3
	tierR   []int // remaining integral columns

	// fu(i): compatible unit IDs per op; cs(i): candidate start steps.
	fu [][]int
	cs [][]int
	// occ lists, for every x column, the control steps it occupies.
	occ map[int][]int
	// oPairs[t] lists unit IDs k with an o_tk variable, ascending.
	oPairs [][]int
	// cSteps[t] lists steps j with a c_tj variable, ascending.
	cSteps [][]int
	// topoRank[t] is the branching priority of task t (0 = highest).
	topoRank []int
	// stats snapshots the generated model size before any presolve.
	stats lp.Stats
	// presolved / presolveInfeasible record the one-shot outcome of
	// ApplyPresolve so SolveContext and the delta layer can both
	// trigger it without running the passes twice.
	presolved          bool
	presolveInfeasible bool
	// warm holds re-solve artifacts installed with SetWarm (nil for a
	// cold solve).
	warm *Warm
	// probeCache memoizes exact-schedule results per task assignment.
	// Guarded by probeMu: under Options.Parallelism > 1 every branch-
	// and-bound worker probes (and branches) concurrently. Concurrent
	// misses may duplicate an exact-schedule run for the same
	// assignment; the cache stays consistent and the extra work is
	// bounded by the worker count.
	probeMu    sync.Mutex
	probeCache map[string]probeEntry
	// ctx is the cancellation context of the running SolveContext,
	// polled by the exact sweep and the scheduling probes; nil (never
	// cancelled) outside a solve.
	ctx context.Context
}

// Build generates the ILP model for the instance under the options.
// When opt.N is zero, the segment-count estimate of the list-scheduling
// heuristic is used, mirroring the paper's flow (Figure 2).
func Build(inst Instance, opt Options) (*Model, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.N == 0 {
		plan, err := sched.EstimateSegments(inst.Graph, inst.Alloc, inst.Device)
		if err != nil {
			return nil, fmt.Errorf("core: estimating N: %w", err)
		}
		opt.N = plan.N
	}
	if opt.N < 1 {
		return nil, fmt.Errorf("core: N = %d", opt.N)
	}
	dur := sched.UnitDuration
	if opt.Multicycle {
		dur = minLatencyDuration(inst)
	}
	win, err := sched.ComputeWindows(inst.Graph, dur)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Inst: inst, Opt: opt, Win: win, N: opt.N,
		P:    &lp.Problem{},
		Y:    map[[2]int]int{},
		X:    map[[3]int]int{},
		O:    map[[2]int]int{},
		U:    map[[2]int]int{},
		C:    map[[2]int]int{},
		Z:    map[[3]int]int{},
		W:    map[[3]int]int{},
		Prod: map[[4]int]int{},
		occ:  map[int][]int{},
	}
	buildSpan := opt.Span.Child("build") // nil-safe when spans are off
	m.computeRanks()
	m.computeDomains()
	m.createVariables()
	if err := m.emitConstraints(); err != nil {
		buildSpan.End()
		return nil, err
	}
	m.stats = m.P.Stats()
	buildSpan.SetNum("vars", float64(m.stats.Vars))
	buildSpan.SetNum("rows", float64(m.stats.Rows))
	buildSpan.SetNum("nnz", float64(m.stats.NNZ))
	buildSpan.End()
	m.emitModelEvent()
	return m, nil
}

// minLatencyDuration gives each op the minimum latency over compatible
// units, the valid lower bound for mobility windows.
func minLatencyDuration(inst Instance) sched.Duration {
	return func(i int) int {
		best := 0
		for _, u := range inst.Alloc.UnitsFor(inst.Graph.Op(i).Kind) {
			if l := inst.Alloc.Unit(u).Type.Latency; best == 0 || l < best {
				best = l
			}
		}
		if best == 0 {
			best = 1
		}
		return best
	}
}

func (m *Model) computeRanks() {
	order, _ := m.Inst.Graph.TopoTasks() // instance validated: acyclic
	m.topoRank = make([]int, m.Inst.Graph.NumTasks())
	for rank, t := range order {
		m.topoRank[t] = rank
	}
}

// latOf returns the latency of unit k under the active mode.
func (m *Model) latOf(k int) int {
	if !m.Opt.Multicycle {
		return 1
	}
	return m.Inst.Alloc.Unit(k).Type.Latency
}

// computeDomains fills fu, cs, oPairs and cSteps.
func (m *Model) computeDomains() {
	g, alloc := m.Inst.Graph, m.Inst.Alloc
	no, nt := g.NumOps(), g.NumTasks()
	m.fu = make([][]int, no)
	m.cs = make([][]int, no)
	for i := 0; i < no; i++ {
		m.fu[i] = alloc.UnitsFor(g.Op(i).Kind)
		m.cs[i] = m.Win.Steps(i, m.Opt.L)
	}
	m.oPairs = make([][]int, nt)
	m.cSteps = make([][]int, nt)
	maxStep := m.Win.MaxStep(m.Opt.L)
	for t := 0; t < nt; t++ {
		kset := map[int]bool{}
		jset := map[int]bool{}
		for _, i := range g.Task(t).Ops {
			for _, k := range m.fu[i] {
				kset[k] = true
				lat := m.latOf(k)
				for _, j := range m.cs[i] {
					for jj := j; jj <= j+lat-1 && jj <= maxStep; jj++ {
						jset[jj] = true
					}
				}
			}
		}
		m.oPairs[t] = sortedKeys(kset)
		m.cSteps[t] = sortedKeys(jset)
	}
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// createVariables adds all columns in a fixed deterministic order:
// y, x, o, u, c, z, w, prod.
func (m *Model) createVariables() {
	g := m.Inst.Graph
	nt, no := g.NumTasks(), g.NumOps()
	maxStep := m.Win.MaxStep(m.Opt.L)
	for t := 0; t < nt; t++ {
		for p := 1; p <= m.N; p++ {
			col := m.P.AddBinary(fmt.Sprintf("y[t%d,p%d]", t, p), 0)
			m.Y[[2]int{t, p}] = col
			m.intVars = append(m.intVars, col)
		}
	}
	for i := 0; i < no; i++ {
		for _, j := range m.cs[i] {
			for _, k := range m.fu[i] {
				lat := m.latOf(k)
				if j+lat-1 > maxStep {
					continue // cannot finish within the step budget
				}
				col := m.P.AddBinary(fmt.Sprintf("x[i%d,j%d,k%d]", i, j, k), 0)
				m.X[[3]int{i, j, k}] = col
				m.intVars = append(m.intVars, col)
				steps := make([]int, 0, lat)
				for jj := j; jj <= j+lat-1; jj++ {
					steps = append(steps, jj)
				}
				m.occ[col] = steps
			}
		}
	}
	for t := 0; t < nt; t++ {
		for _, k := range m.oPairs[t] {
			col := m.P.AddBinary(fmt.Sprintf("o[t%d,k%d]", t, k), 0)
			m.O[[2]int{t, k}] = col
			m.intVars = append(m.intVars, col)
		}
	}
	for p := 1; p <= m.N; p++ {
		for k := 0; k < m.Inst.Alloc.NumUnits(); k++ {
			col := m.P.AddBinary(fmt.Sprintf("u[p%d,k%d]", p, k), 0)
			m.U[[2]int{p, k}] = col
			m.intVars = append(m.intVars, col)
		}
	}
	for t := 0; t < nt; t++ {
		for _, j := range m.cSteps[t] {
			col := m.P.AddBinary(fmt.Sprintf("c[t%d,j%d]", t, j), 0)
			m.C[[2]int{t, j}] = col
			m.intVars = append(m.intVars, col)
		}
	}
	zBinary := m.Opt.Linearization == LinFortet
	for p := 1; p <= m.N; p++ {
		for t := 0; t < nt; t++ {
			for _, k := range m.oPairs[t] {
				col := m.P.AddVar(fmt.Sprintf("z[p%d,t%d,k%d]", p, t, k), 0, 0, 1)
				m.Z[[3]int{p, t, k}] = col
				if zBinary {
					m.intVars = append(m.intVars, col)
				}
			}
		}
	}
	for p := 2; p <= m.N; p++ {
		for _, e := range g.TaskEdges() {
			col := m.P.AddVar(fmt.Sprintf("w[p%d,%d->%d]", p, e.From, e.To), float64(e.Bandwidth), 0, 1)
			m.W[[3]int{p, e.From, e.To}] = col
		}
	}
	if m.Opt.WPerProduct {
		for _, e := range g.TaskEdges() {
			for p1 := 1; p1 < m.N; p1++ {
				for p2 := p1 + 1; p2 <= m.N; p2++ {
					col := m.P.AddVar(fmt.Sprintf("v[%d@p%d,%d@p%d]", e.From, p1, e.To, p2), 0, 0, 1)
					m.Prod[[4]int{e.From, e.To, p1, p2}] = col
					if zBinary {
						m.intVars = append(m.intVars, col)
					}
				}
			}
		}
	}
	m.buildTiers()
}

// buildTiers prepares the branching tiers of the paper's heuristic.
func (m *Model) buildTiers() {
	g := m.Inst.Graph
	// tier 1: y in (topological priority, partition) order
	taskOrder := make([]int, g.NumTasks())
	for t := range taskOrder {
		taskOrder[t] = t
	}
	sort.Slice(taskOrder, func(a, b int) bool { return m.topoRank[taskOrder[a]] < m.topoRank[taskOrder[b]] })
	for _, t := range taskOrder {
		for p := 1; p <= m.N; p++ {
			m.tierY = append(m.tierY, m.Y[[2]int{t, p}])
		}
	}
	// tier 2: u in (p, k) order
	for p := 1; p <= m.N; p++ {
		for k := 0; k < m.Inst.Alloc.NumUnits(); k++ {
			m.tierU = append(m.tierU, m.U[[2]int{p, k}])
		}
	}
	// tier 3: x in column order
	cols := make([]int, 0, len(m.X))
	for _, col := range m.X {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	m.tierX = cols
	// remainder: every other integral column
	seen := map[int]bool{}
	for _, c := range m.tierY {
		seen[c] = true
	}
	for _, c := range m.tierU {
		seen[c] = true
	}
	for _, c := range m.tierX {
		seen[c] = true
	}
	for _, c := range m.intVars {
		if !seen[c] {
			m.tierR = append(m.tierR, c)
		}
	}
	sort.Ints(m.tierR)
}

// Stats returns the generated model size (the Var/Const columns of the
// paper's tables), as emitted — unaffected by later presolve passes.
func (m *Model) Stats() lp.Stats { return m.stats }
