package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/library"
	"repro/internal/sched"
)

// The node probe is the reproduction's main engineering addition on
// top of the paper's algorithm. At every branch-and-bound node whose
// y_tp values are integral, it tries to solve the remaining
// scheduling/binding subproblem exactly by budgeted backtracking:
//
//   - a schedule found yields an integer-feasible point whose
//     objective equals the node's LP bound (the objective depends only
//     on y), so the subtree is fathomed with a new incumbent;
//   - an exhausted search with every y fixed by branching proves the
//     subtree empty, so it is pruned;
//   - a budget overrun falls back to ordinary x-branching.
//
// This keeps the search effectively over task assignments and avoids
// the x-space thrashing a pure LP-driven dive suffers on instances
// with wide mobility windows. Disable with Options.DisableProbe for
// paper-faithful runtime comparisons.

type schedStatus int

const (
	schedFound schedStatus = iota
	schedInfeasible
	schedBudget
)

// Budgets for the exact scheduler: a cheap pass at every probed node,
// and a moderately deeper pass when the assignment is fully pinned so
// an exhaustion proof can prune the subtree. Budgets stay small on
// purpose: when the exact search is inconclusive, the LP-driven
// branching usually proves infeasibility faster than a deep
// backtracking search would.
const (
	probeBudgetQuick = 150_000
	probeBudgetFull  = 1_500_000
)

type probeEntry struct {
	status schedStatus
	full   bool // proved with the full budget
	step   []int
	unit   []int
}

// probe implements the milp.Options.Probe contract.
func (m *Model) probe(x []float64, bound func(int) (float64, float64)) ([]float64, bool) {
	part, ok := m.integralAssignment(x)
	if !ok {
		return nil, false
	}
	pinned := m.allYFixed(bound)
	ent := m.scheduleFor(part, pinned)
	switch ent.status {
	case schedFound:
		return m.vectorFrom(x, part, ent.step, ent.unit), false
	case schedInfeasible:
		return nil, pinned
	default:
		return nil, false
	}
}

// integralAssignment reads the task assignment from integral y values.
func (m *Model) integralAssignment(x []float64) ([]int, bool) {
	nt := m.Inst.Graph.NumTasks()
	part := make([]int, nt)
	for t := 0; t < nt; t++ {
		for p := 1; p <= m.N; p++ {
			v := x[m.Y[[2]int{t, p}]]
			if v > intFracTol && v < 1-intFracTol {
				return nil, false
			}
			if v >= 1-intFracTol {
				if part[t] != 0 {
					return nil, false
				}
				part[t] = p
			}
		}
		if part[t] == 0 {
			return nil, false
		}
	}
	return part, true
}

const intFracTol = 1e-6

// allYFixed reports whether the node's bounds pin every task's
// assignment: either some y_tp has a lower bound of 1 (eq. (1) then
// forces the rest to 0), or all but one y_tp have an upper bound of 0.
// Only then does "this assignment is infeasible" prove the whole
// subtree empty.
func (m *Model) allYFixed(bound func(int) (float64, float64)) bool {
	for t := 0; t < m.Inst.Graph.NumTasks(); t++ {
		pinned := false
		free := 0
		for p := 1; p <= m.N; p++ {
			lo, hi := bound(m.Y[[2]int{t, p}])
			if lo >= 1-intFracTol {
				pinned = true
				break
			}
			if hi > intFracTol {
				free++
			}
		}
		if !pinned && free > 1 {
			return false
		}
	}
	return true
}

// scheduleFor memoizes exact scheduling per task assignment. deep
// repeats an inconclusive quick search with the full budget.
func (m *Model) scheduleFor(part []int, deep bool) probeEntry {
	return m.scheduleForDeadline(part, deep, time.Time{})
}

// scheduleForDeadline is scheduleFor with a wall-clock cutoff for the
// exact search (zero = none). Deadline-aborted searches are cached as
// budget-inconclusive.
func (m *Model) scheduleForDeadline(part []int, deep bool, deadline time.Time) probeEntry {
	key := fmt.Sprint(part)
	if ent, ok := m.lookupProbe(key); ok {
		if ent.status != schedBudget || ent.full || !deep {
			return ent
		}
	}
	// cheap feasibility witness first: a list schedule within the step
	// budget is already a valid solution
	if step, unit, ok := m.listWitness(part); ok {
		ent := probeEntry{status: schedFound, full: true, step: step, unit: unit}
		m.cacheProbe(key, ent)
		return ent
	}
	budget := probeBudgetQuick
	if deep {
		budget = probeBudgetFull
	}
	ent := m.exactSchedule(part, budget, deadline)
	ent.full = deep && ent.status != schedBudget
	m.cacheProbe(key, ent)
	return ent
}

func (m *Model) lookupProbe(key string) (probeEntry, bool) {
	m.probeMu.Lock()
	ent, ok := m.probeCache[key]
	m.probeMu.Unlock()
	return ent, ok
}

func (m *Model) cacheProbe(key string, ent probeEntry) {
	m.probeMu.Lock()
	if m.probeCache == nil {
		m.probeCache = map[string]probeEntry{}
	}
	if len(m.probeCache) < 200_000 {
		m.probeCache[key] = ent
	}
	m.probeMu.Unlock()
}

// listWitness list-schedules the assignment; success within the step
// budget yields a concrete schedule usable as a feasible witness.
func (m *Model) listWitness(part []int) (step, unit []int, ok bool) {
	if m.Opt.Multicycle {
		return nil, nil, false // the list scheduler assumes unit latency
	}
	plan := &sched.SegmentPlan{Segment: part, N: m.N}
	asg, err := sched.HeuristicSchedule(m.Inst.Graph, m.Inst.Alloc, m.Inst.Device, m.Win, plan)
	if err != nil || asg.Span > m.Win.MaxStep(m.Opt.L) {
		return nil, nil, false
	}
	return asg.Step, asg.Unit, true
}

// exactSchedule backtracks over (step, unit) placements for a fixed
// task assignment, honoring mobility windows, step ownership, FU
// occupancy (incl. multicycle/pipelined) and per-partition area.
func (m *Model) exactSchedule(part []int, budget int, deadline time.Time) probeEntry {
	g, alloc, dev := m.Inst.Graph, m.Inst.Alloc, m.Inst.Device
	// y-level sanity: order and memory (normally guaranteed by the LP)
	for _, e := range g.TaskEdges() {
		if part[e.From] > part[e.To] {
			return probeEntry{status: schedInfeasible}
		}
	}
	for p := 2; p <= m.N; p++ {
		if sched.MemoryAt(g, part, p) > dev.ScratchMem {
			return probeEntry{status: schedInfeasible}
		}
	}
	if !m.kindCoverFits(part) {
		return probeEntry{status: schedInfeasible}
	}
	order, err := g.TopoOps()
	if err != nil {
		return probeEntry{status: schedInfeasible}
	}
	// most-constrained-first: ALAP ascending is still a topological
	// order (a predecessor's ALAP is strictly below its successor's)
	// and makes the backtracking fail early instead of deep.
	sort.SliceStable(order, func(a, b int) bool {
		return m.Win.ALAP[order[a]] < m.Win.ALAP[order[b]]
	})
	no := g.NumOps()
	maxStep := m.Win.MaxStep(m.Opt.L)
	step := make([]int, no)
	unit := make([]int, no)
	endOf := make([]int, no)
	stepOwner := make([]int, maxStep+2) // 0 = free
	type slot struct{ j, k int }
	busy := map[slot]bool{}
	usedFG := make([]int, m.N+1)
	partUnits := make([]map[int]bool, m.N+1)
	for i := range partUnits {
		partUnits[i] = map[int]bool{}
	}
	// kind-capacity pruning state: remaining unplaced ops per kind and
	// occupied slots per unit. Capacity is overcounted (units are
	// counted even for partitions they cannot join), which keeps the
	// prune sound.
	remaining := map[graph.OpKind]int{}
	for i := 0; i < no; i++ {
		remaining[g.Op(i).Kind]++
	}
	usedSlots := make([]int, alloc.NumUnits())
	// remainingPK[p][kind]: unplaced ops of each kind per partition
	remainingPK := make([]map[graph.OpKind]int, m.N+1)
	for p := 1; p <= m.N; p++ {
		remainingPK[p] = map[graph.OpKind]int{}
	}
	for i := 0; i < no; i++ {
		remainingPK[part[g.Op(i).Task]][g.Op(i).Kind]++
	}
	// cheapest unit FG per kind, for the area prune
	minFG := map[graph.OpKind]int{}
	for kind := range remaining {
		for _, u := range alloc.UnitsFor(kind) {
			if fg := alloc.Unit(u).Type.FG; minFG[kind] == 0 || fg < minFG[kind] {
				minFG[kind] = fg
			}
		}
	}
	kindFits := func() bool {
		// global slot capacity per kind (overcounted, hence sound)
		for kind, need := range remaining {
			if need == 0 {
				continue
			}
			free := 0
			for _, u := range alloc.UnitsFor(kind) {
				free += maxStep - usedSlots[u]
			}
			if free < need {
				return false
			}
		}
		// per-partition area: every kind still needed by a partition
		// must have a serving unit there or room to add one
		for p := 1; p <= m.N; p++ {
			for kind, need := range remainingPK[p] {
				if need == 0 {
					continue
				}
				served := false
				for u := range partUnits[p] {
					if alloc.Unit(u).Type.CanExecute(kind) {
						served = true
						break
					}
				}
				if !served && !dev.Fits(usedFG[p]+minFG[kind]) {
					return false
				}
			}
		}
		return true
	}
	var rec func(n int) schedStatus
	rec = func(n int) schedStatus {
		if n == no {
			return schedFound
		}
		if !kindFits() {
			return schedInfeasible
		}
		i := order[n]
		p := part[g.Op(i).Task]
		lo := m.Win.ASAP[i]
		for _, pr := range g.OpPred(i) {
			if endOf[pr]+1 > lo {
				lo = endOf[pr] + 1
			}
		}
		for j := lo; j <= m.Win.ALAP[i]+m.Opt.L; j++ {
			for _, k := range m.fu[i] {
				// symmetry breaking: identical units are interchangeable
				// (same type everywhere in the model), so only the
				// lowest-ID unused unit of a type may be "opened"
				if usedSlots[k] == 0 && hasUnusedTwin(alloc, usedSlots, k) {
					continue
				}
				lat := m.latOf(k)
				if j+lat-1 > maxStep {
					continue
				}
				if budget--; budget <= 0 {
					return schedBudget
				}
				if budget%4096 == 0 {
					// poll the wall clock and the solve context so a
					// deep backtracking run cannot outlive either
					if m.cancelled() || (!deadline.IsZero() && time.Now().After(deadline)) {
						return schedBudget
					}
				}
				ownOK := true
				for jj := j; jj <= j+lat-1; jj++ {
					if stepOwner[jj] != 0 && stepOwner[jj] != p {
						ownOK = false
						break
					}
				}
				if !ownOK {
					continue
				}
				pipelined := alloc.Unit(k).Type.Pipelined
				occLo, occHi := j, j+lat-1
				if pipelined {
					occHi = j // issue slot only
				}
				conflict := false
				for jj := occLo; jj <= occHi; jj++ {
					if busy[slot{jj, k}] {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				newUnit := !partUnits[p][k]
				if newUnit && !dev.Fits(usedFG[p]+alloc.Unit(k).Type.FG) {
					continue
				}
				// place
				step[i], unit[i], endOf[i] = j, k, j+lat-1
				remaining[g.Op(i).Kind]--
				remainingPK[p][g.Op(i).Kind]--
				usedSlots[k] += occHi - occLo + 1
				var owned []int
				for jj := j; jj <= j+lat-1; jj++ {
					if stepOwner[jj] == 0 {
						stepOwner[jj] = p
						owned = append(owned, jj)
					}
				}
				for jj := occLo; jj <= occHi; jj++ {
					busy[slot{jj, k}] = true
				}
				if newUnit {
					partUnits[p][k] = true
					usedFG[p] += alloc.Unit(k).Type.FG
				}
				st := rec(n + 1)
				// undo
				remaining[g.Op(i).Kind]++
				remainingPK[p][g.Op(i).Kind]++
				usedSlots[k] -= occHi - occLo + 1
				if newUnit {
					delete(partUnits[p], k)
					usedFG[p] -= alloc.Unit(k).Type.FG
				}
				for jj := occLo; jj <= occHi; jj++ {
					delete(busy, slot{jj, k})
				}
				for _, jj := range owned {
					stepOwner[jj] = 0
				}
				if st != schedInfeasible {
					return st
				}
			}
		}
		return schedInfeasible
	}
	switch rec(0) {
	case schedFound:
		return probeEntry{status: schedFound, step: step, unit: unit}
	case schedBudget:
		return probeEntry{status: schedBudget}
	default:
		return probeEntry{status: schedInfeasible}
	}
}

// kindCoverFits checks, for every partition of the assignment, that
// some subset of units covers all operation kinds appearing there
// within the device area — a cheap necessary condition that disposes
// of most area-infeasible assignments without any backtracking.
func (m *Model) kindCoverFits(part []int) bool {
	g, alloc, dev := m.Inst.Graph, m.Inst.Alloc, m.Inst.Device
	nu := alloc.NumUnits()
	if nu > 16 {
		return true // subset enumeration too large; let the search decide
	}
	budget := m.Win.MaxStep(m.Opt.L) // steps available to any partition
	countOf := make([]map[graph.OpKind]int, m.N+1)
	for i := 0; i < g.NumOps(); i++ {
		p := part[g.Op(i).Task]
		if countOf[p] == nil {
			countOf[p] = map[graph.OpKind]int{}
		}
		countOf[p][g.Op(i).Kind]++
	}
	for p := 1; p <= m.N; p++ {
		if len(countOf[p]) == 0 {
			continue
		}
		ok := false
		for mask := 1; mask < 1<<nu && !ok; mask++ {
			fg := 0
			for u := 0; u < nu; u++ {
				if mask&(1<<u) != 0 {
					fg += alloc.Unit(u).Type.FG
				}
			}
			if !dev.Fits(fg) {
				continue
			}
			feasible := true
			for kind, need := range countOf[p] {
				units := 0
				for u := 0; u < nu; u++ {
					if mask&(1<<u) != 0 && alloc.Unit(u).Type.CanExecute(kind) {
						units++
					}
				}
				// the partition sees at most the whole step budget, so
				// units*budget is an upper bound on its kind capacity
				if units*budget < need {
					feasible = false
					break
				}
			}
			ok = feasible
		}
		if !ok {
			return false
		}
	}
	return true
}

// hasUnusedTwin reports whether a lower-ID unit of the same type as k
// is still completely unused — in that case opening k first would be a
// symmetric duplicate of opening the twin.
func hasUnusedTwin(alloc *library.Allocation, usedSlots []int, k int) bool {
	typ := alloc.Unit(k).Type.Name
	for u := 0; u < k; u++ {
		if alloc.Unit(u).Type.Name == typ && usedSlots[u] == 0 {
			return true
		}
	}
	return false
}

// vectorFrom assembles a full solution vector from an assignment and
// an exact schedule, deriving every auxiliary variable.
func (m *Model) vectorFrom(x []float64, part []int, step, unit []int) []float64 {
	xc := append([]float64(nil), x...)
	for t := 0; t < m.Inst.Graph.NumTasks(); t++ {
		for p := 1; p <= m.N; p++ {
			if part[t] == p {
				xc[m.Y[[2]int{t, p}]] = 1
			} else {
				xc[m.Y[[2]int{t, p}]] = 0
			}
		}
	}
	for _, col := range m.tierX {
		xc[col] = 0
	}
	for i := 0; i < m.Inst.Graph.NumOps(); i++ {
		col, ok := m.X[[3]int{i, step[i], unit[i]}]
		if !ok {
			return nil // schedule outside the model's windows: decline
		}
		xc[col] = 1
	}
	xc = m.complete(xc)
	if xc == nil {
		return nil
	}
	// guard against drift: the point must really be integral
	for _, col := range m.intVars {
		if f := xc[col] - math.Floor(xc[col]); f > intFracTol && f < 1-intFracTol {
			return nil
		}
	}
	return xc
}

// paperBranch implements the paper's variable-selection heuristic
// (fractional y in topological priority order with the 1-branch first,
// then u, then x) with one refinement: when the LP's y values are
// integral and the probe has already proven that assignment
// unschedulable, the assignment is pinned one task at a time so the
// probe's exhaustion proof can prune the subtree instead of the search
// escaping into the u/x tiers.
func (m *Model) paperBranch(x []float64, bound func(int) (float64, float64)) (int, bool) {
	for _, col := range m.tierY {
		if isFracVal(x[col]) {
			return col, true
		}
	}
	if !m.Opt.DisableProbe {
		if part, ok := m.integralAssignment(x); ok {
			if ent, hit := m.lookupProbe(fmt.Sprint(part)); hit && ent.status != schedFound {
				// the assignment is proven unschedulable (pin so the
				// exhaustion proof prunes) or inconclusive (pin so the
				// fallback x-search stays confined to this assignment)
				for _, col := range m.tierY {
					if x[col] >= 1-intFracTol {
						if lo, hi := bound(col); hi-lo > intFracTol {
							return col, true
						}
					}
				}
			}
		}
	}
	for _, col := range m.tierU {
		if isFracVal(x[col]) {
			return col, true
		}
	}
	for _, col := range m.tierX {
		if isFracVal(x[col]) {
			return col, true
		}
	}
	return -1, true
}

func isFracVal(v float64) bool {
	f := v - math.Floor(v)
	return f > intFracTol && f < 1-intFracTol
}
