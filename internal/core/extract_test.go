package core

import (
	"strings"
	"testing"
)

// extractFixture builds the smoke model plus a known-good integral
// decision vector: all three tasks on partition 1, the chain scheduled
// a@1 (add16), b@2 (mul16), c@3 (add16).
func extractFixture(t *testing.T) (*Model, []float64) {
	t.Helper()
	m, err := Build(smokeInstance(t), Options{N: 2, L: 1, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.P.NumVars())
	setY := func(task, p int) {
		col, ok := m.Y[[2]int{task, p}]
		if !ok {
			t.Fatalf("no y column for task %d partition %d", task, p)
		}
		x[col] = 1
	}
	setX := func(op, step, unit int) {
		col, ok := m.X[[3]int{op, step, unit}]
		if !ok {
			t.Fatalf("no x column for op %d step %d unit %d", op, step, unit)
		}
		x[col] = 1
	}
	for task := 0; task < 3; task++ {
		setY(task, 1)
	}
	setX(0, 1, 0)
	setX(1, 2, 1)
	setX(2, 3, 0)
	return m, x
}

// TestExtractGoodVector: the fixture vector itself must extract and
// verify — the corruption cases below then isolate one defect each.
func TestExtractGoodVector(t *testing.T) {
	m, x := extractFixture(t)
	sol, err := m.Extract(x)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Comm != 0 || sol.UsedPartitions() != 1 {
		t.Fatalf("unexpected solution: %+v", sol)
	}
}

// TestExtractRejectsCorruptVectors: Extract is the audit between the
// float MILP verdict and the partition.Solution handed to callers;
// each corruption class must be rejected with its own classification,
// never silently repaired.
func TestExtractRejectsCorruptVectors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, m *Model, x []float64)
		want   string
	}{
		{"task assigned twice", func(t *testing.T, m *Model, x []float64) {
			x[m.Y[[2]int{0, 2}]] = 1
		}, "task 0 assigned twice"},
		{"task unassigned", func(t *testing.T, m *Model, x []float64) {
			x[m.Y[[2]int{1, 1}]] = 0
		}, "task 1 unassigned"},
		{"op assigned twice", func(t *testing.T, m *Model, x []float64) {
			col, ok := m.X[[3]int{0, 2, 0}]
			if !ok {
				t.Fatal("no second placement column for op 0")
			}
			x[col] = 1
		}, "op 0 assigned twice"},
		{"op unassigned", func(t *testing.T, m *Model, x []float64) {
			x[m.X[[3]int{2, 3, 0}]] = 0
		}, "op 2 unassigned"},
		{"schedule fails verification", func(t *testing.T, m *Model, x []float64) {
			// move a to step 2: inside its widened window, but then a@2
			// cannot precede b@2 — Verify must catch it and Extract must
			// wrap, not swallow, the classification
			x[m.X[[3]int{0, 1, 0}]] = 0
			col, ok := m.X[[3]int{0, 2, 0}]
			if !ok {
				t.Fatal("no step-2 column for op 0")
			}
			x[col] = 1
		}, "failed verification"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, x := extractFixture(t)
			tc.mutate(t, m, x)
			sol, err := m.Extract(x)
			if err == nil {
				t.Fatalf("corrupt vector extracted: %+v", sol)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error class drifted:\n  got  %q\n  want substring %q", err, tc.want)
			}
		})
	}
}
