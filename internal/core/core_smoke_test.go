package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/library"
)

// smokeInstance: 3 tasks in a chain, each one op, tiny device forcing
// a split between the multiplier and the adders.
func smokeInstance(t *testing.T) Instance {
	t.Helper()
	g := graph.New("smoke")
	t0 := g.AddTask("t0")
	t1 := g.AddTask("t1")
	t2 := g.AddTask("t2")
	a := g.AddOp(t0, graph.OpAdd, "a")
	b := g.AddOp(t1, graph.OpMul, "b")
	c := g.AddOp(t2, graph.OpAdd, "c")
	g.Connect(a, b, 3)
	g.Connect(b, c, 5)
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := library.Device{Name: "d", CapacityFG: 200, Alpha: 1.0, ScratchMem: 64}
	return Instance{Graph: g, Alloc: alloc, Device: dev}
}

func TestSmokeSinglePartition(t *testing.T) {
	inst := smokeInstance(t)
	res, err := SolveInstance(inst, Options{N: 2, L: 1, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Optimal {
		t.Fatalf("feasible=%v optimal=%v", res.Feasible, res.Optimal)
	}
	// everything fits on one partition: comm cost 0
	if res.Solution.Comm != 0 {
		t.Fatalf("comm = %d, want 0\n%s", res.Solution.Comm, res.Solution.Report(inst.Graph, inst.Alloc))
	}
	if res.Solution.UsedPartitions() != 1 {
		t.Fatalf("used = %d, want 1", res.Solution.UsedPartitions())
	}
}

func TestSmokeForcedSplit(t *testing.T) {
	inst := smokeInstance(t)
	// adder (16) and multiplier (96) cannot coexist: C=100, alpha=1
	inst.Device.CapacityFG = 100
	res, err := SolveInstance(inst, Options{N: 3, L: 2, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible")
	}
	// optimal split: {t0} | {t1} | {t2} costs 3+5=8, or {t0}|{t1,t2}?
	// t2 is an add; t1 mul + t2 add = 112 > 100, so three partitions:
	// cost 3 + 5 = 8. Alternative {t0,t1} also overflows. So comm=8.
	if res.Solution.Comm != 8 {
		t.Fatalf("comm = %d, want 8\n%s", res.Solution.Comm, res.Solution.Report(inst.Graph, inst.Alloc))
	}
}
