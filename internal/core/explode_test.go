package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/library"
)

// TestOperationGranularityPartitioning exercises the paper's Section 3
// remark: "if it is desired to permit splitting of tasks across
// segments, then each operation in the specification may be modeled as
// a task... the entire formulation will work correctly."
func TestOperationGranularityPartitioning(t *testing.T) {
	// one big task whose ops need two FU kinds that cannot coexist on
	// the device: as a single task it is unsolvable, exploded it splits
	g := graph.New("big")
	t0 := g.AddTask("all")
	a := g.AddOp(t0, graph.OpAdd, "a")
	b := g.AddOp(t0, graph.OpAdd, "b")
	m1 := g.AddOp(t0, graph.OpMul, "m1")
	m2 := g.AddOp(t0, graph.OpMul, "m2")
	g.AddOpEdge(a, m1)
	g.AddOpEdge(b, m2)

	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// adder (16) or multiplier (96) alone fits, together (112) they do
	// not
	dev := library.Device{Name: "tiny", CapacityFG: 100, Alpha: 1.0, ScratchMem: 64}
	inst := Instance{Graph: g, Alloc: alloc, Device: dev}

	// task-granularity: the single task cannot fit any partition
	res, err := SolveInstance(inst, Options{N: 2, L: 2, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("monolithic task should be infeasible on the tiny device")
	}

	// op-granularity: explode and re-solve; adds go to segment 1,
	// muls to segment 2, paying 2 units of communication
	eg := g.Explode(1)
	if err := eg.Validate(); err != nil {
		t.Fatal(err)
	}
	einst := Instance{Graph: eg, Alloc: alloc, Device: dev}
	eres, err := SolveInstance(einst, Options{N: 2, L: 2, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if !eres.Feasible {
		t.Fatal("exploded graph should be feasible")
	}
	if eres.Solution.UsedPartitions() != 2 {
		t.Fatalf("used = %d, want 2", eres.Solution.UsedPartitions())
	}
	if eres.Solution.Comm != 2 {
		t.Fatalf("comm = %d, want 2 (one unit per add->mul edge)", eres.Solution.Comm)
	}
}
