package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/library"
)

// multicycle fixture: chain mul -> add with a 2-cycle multiplier.
func mcAlloc(t *testing.T, mulType string) *library.Allocation {
	t.Helper()
	alloc, err := library.NewAllocation(library.DefaultLibrary(), map[string]int{
		mulType: 1, "add16": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return alloc
}

func TestMulticycleLatencyRespected(t *testing.T) {
	g := graph.New("mc")
	tk := g.AddTask("t")
	m := g.AddOp(tk, graph.OpMul, "")
	a := g.AddOp(tk, graph.OpAdd, "")
	g.AddOpEdge(m, a)
	alloc := mcAlloc(t, "mul16x2")
	inst := Instance{Graph: g, Alloc: alloc, Device: library.XC4025()}
	res, err := SolveInstance(inst, Options{N: 1, L: 0, Multicycle: true, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible (CP = 3 with 2-cycle mul)")
	}
	s := res.Solution
	// add must start 2 steps after the multiply
	if s.OpStep[a]-s.OpStep[m] < 2 {
		t.Fatalf("latency violated: mul@%d add@%d", s.OpStep[m], s.OpStep[a])
	}
}

func TestMulticycleBlockingSerializes(t *testing.T) {
	// two independent muls on one 2-cycle blocking multiplier need 4
	// steps; with L=0 the window is only 2 steps -> infeasible.
	g := graph.New("mc2")
	tk := g.AddTask("t")
	g.AddOp(tk, graph.OpMul, "")
	g.AddOp(tk, graph.OpMul, "")
	alloc := mcAlloc(t, "mul16x2")
	inst := Instance{Graph: g, Alloc: alloc, Device: library.XC4025()}
	res, err := SolveInstance(inst, Options{N: 1, L: 0, Multicycle: true, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("two blocking muls cannot fit 2 steps")
	}
	// with L=2 there are 4 steps: feasible
	res, err = SolveInstance(inst, Options{N: 1, L: 2, Multicycle: true, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible at L=2")
	}
}

func TestPipelinedOverlapAllowed(t *testing.T) {
	// two independent muls on one 2-stage pipelined multiplier can
	// issue back to back: 3 steps total, so L=1 suffices.
	g := graph.New("pipe")
	tk := g.AddTask("t")
	g.AddOp(tk, graph.OpMul, "")
	g.AddOp(tk, graph.OpMul, "")
	alloc := mcAlloc(t, "mul16p")
	inst := Instance{Graph: g, Alloc: alloc, Device: library.XC4025()}
	res, err := SolveInstance(inst, Options{N: 1, L: 1, Multicycle: true, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("pipelined multiplier should allow overlapped issue at L=1")
	}
	// the blocking variant needs 4 steps, so the same L=1 is infeasible
	alloc2 := mcAlloc(t, "mul16x2")
	res, err = SolveInstance(Instance{Graph: g, Alloc: alloc2, Device: library.XC4025()},
		Options{N: 1, L: 1, Multicycle: true, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("blocking multiplier must not fit L=1")
	}
}

// TestHeterogeneousMulExploration exercises the design exploration the
// paper highlights against Gebotys' model: a pipelined and a
// non-pipelined multiplier in the same design.
func TestHeterogeneousMulExploration(t *testing.T) {
	g := graph.New("hetero")
	tk := g.AddTask("t")
	for i := 0; i < 3; i++ {
		g.AddOp(tk, graph.OpMul, "")
	}
	alloc, err := library.NewAllocation(library.DefaultLibrary(), map[string]int{
		"mul16x2": 1, "mul16p": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := Instance{Graph: g, Alloc: alloc, Device: library.XC4025()}
	// 3 muls, CP = 2 (all parallel, 2-cycle): L=1 -> 3 steps.
	// pipelined unit can run two (issue 1,2), blocking unit one.
	res, err := SolveInstance(inst, Options{N: 1, L: 1, Multicycle: true, Tightened: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("heterogeneous multiplier mix should schedule in 3 steps")
	}
	units := map[int]bool{}
	for _, u := range res.Solution.OpUnit {
		units[u] = true
	}
	if len(units) != 2 {
		t.Fatalf("expected both multiplier flavors in use, got units %v", units)
	}
}
