package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/exact"
	"repro/internal/heuristic"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/partition"
	"repro/internal/sched"
)

// Result reports a combined temporal-partitioning-and-synthesis solve.
type Result struct {
	// Feasible reports whether an integer solution exists (the
	// "Feasible" column of the paper's tables).
	Feasible bool
	// Optimal reports whether the solution was proved optimal (false
	// when a node or time limit stopped the search).
	Optimal bool
	// Cancelled reports that the caller's context was cancelled before
	// the search could finish. The best solution found before the
	// cancellation, if any, is still reported in Solution.
	Cancelled bool
	// Solution is the extracted and independently verified solution
	// (nil when infeasible).
	Solution *partition.Solution
	// Stats is the generated model size (Var/Const columns).
	Stats lp.Stats
	// Nodes is the number of branch-and-bound nodes explored,
	// including the restricted settling MILPs of the exact sweep.
	Nodes int
	// LPIterations is the total simplex pivot count (LP
	// re-optimizations), accumulated the same way.
	LPIterations int
	// Runtime is the solver wall-clock time.
	Runtime time.Duration
	// Certificate is the exact-arithmetic certificate of the MILP
	// verdict, present when Options.Certify was set and the main search
	// ran (the exact-sweep early path and the presolve-infeasible path
	// never enter the MILP and carry none). Already checked; see
	// Certificate.Valid / Err().
	Certificate *exact.Certificate
	// LPEngine names the LP engine the branch-and-bound relaxations ran
	// on ("dense" or "revised") — the resolution of Options.LPEngine's
	// auto heuristic. Empty on paths that never enter the MILP search
	// (exact-sweep early exit, presolve-proved infeasibility).
	LPEngine string
	// SearchMode names the branch-and-bound scheduling mode that
	// actually ran ("serial", "steal" or "portfolio") — the resolution
	// of the search options' auto mode and size gate. Empty on paths
	// that never enter the MILP search.
	SearchMode string
	// Steals counts work-stealing transfers between workers (zero for
	// serial and portfolio searches).
	Steals int64
	// CutsApplied is the number of root cutting planes (Gomory + cover)
	// that survived separation and strengthened the root relaxation.
	CutsApplied int
	// FirstIncumbentNodes is the node count at which the MILP search
	// installed its first incumbent (0 when the root dive found it
	// before any node, or when no incumbent exists).
	FirstIncumbentNodes int64
	// TimeToFirstIncumbent is the wall-clock time into the MILP search
	// at the first incumbent install (0 when none was found).
	TimeToFirstIncumbent time.Duration
	// TimeToProof is the MILP wall-clock time to a proved verdict
	// (optimal or infeasible); 0 when the search was stopped by a limit.
	TimeToProof time.Duration
}

// Solve runs branch and bound on the generated model with the
// configured branching rule, then extracts and verifies the solution.
//
// Deprecated: use SolveContext, which supports cancellation and is the
// single solve entry point; Solve remains as a convenience delegate
// with a background context.
func (m *Model) Solve() (*Result, error) {
	return m.SolveContext(context.Background())
}

// SolveContext runs the solve under a context: cancellation
// cooperatively stops the exact sweep, the node probes and the
// branch-and-bound pivot loops, returning a Result with Cancelled set
// (and the best incumbent found so far, when one exists) rather than
// running to completion. A terminal result event is emitted on
// Options.Trace when tracing is on.
func (m *Model) SolveContext(ctx context.Context) (*Result, error) {
	res, err := m.solveContext(ctx)
	if err == nil && res != nil {
		m.emitResult(res)
	}
	return res, err
}

func (m *Model) solveContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m.ctx = ctx
	solveStart := time.Now()
	// All rules watch only the decision variables y, u and x; the
	// auxiliary variables (o, c, z, w, ...) are implied once those are
	// integral and are filled in by the completion hook, so no rule
	// ever branches on them.
	decision := append(append(append([]int{}, m.tierY...), m.tierU...), m.tierX...)
	sort.Ints(decision)
	eff := m.Opt.EffectiveSearch()
	var brancher milp.Brancher
	switch eff.Branch {
	case BranchFirstFrac:
		brancher = milp.FirstFractional(decision)
	case BranchMostFrac:
		brancher = milp.MostFractional(decision)
	default:
		brancher = milp.BrancherFunc(m.paperBranch)
	}
	presolveSpan := m.Opt.Span.Child("presolve") // nil-safe when spans are off
	if m.ApplyPresolve() {
		presolveSpan.SetStr("outcome", "solved")
		presolveSpan.End()
		return &Result{Stats: m.Stats(), Optimal: true}, nil
	}
	presolveSpan.End()
	// Validate rejected unknown names; "" resolves to lp.EngineAuto.
	engine, err := lp.ParseEngine(m.Opt.LPEngine)
	if err != nil {
		return nil, err
	}
	mopt := milp.Options{
		Engine:            engine,
		IntVars:           m.intVars,
		Brancher:          brancher,
		ObjIntegral:       true,
		MaxNodes:          m.Opt.MaxNodes,
		TimeLimit:         m.Opt.TimeLimit,
		Complete:          m.complete,
		Parallelism:       eff.Parallelism,
		ParallelThreshold: eff.Threshold,
		Mode:              searchModeToMILP(eff.Mode),
		Trace:             m.Opt.Trace,
		Record:            m.Opt.Record,
		Profile:           m.Opt.Profile,
		Certify:           m.Opt.Certify,
		Span:              m.Opt.Span,
		BlackBox:          m.Opt.BlackBox,
		Status:            m.Opt.Status,
		PanicNode:         m.Opt.PanicNode,
		NodeDelay:         m.Opt.NodeDelay,
	}
	// Root strengthening: explicit toggles win; auto enables the cuts
	// and the dive exactly when a parallel search was requested (they
	// exist to shrink the shared tree and seed the shared incumbent,
	// and keeping serial solves bit-identical to the paper's algorithm
	// matters more than a marginal serial speedup).
	autoStrength := eff.Parallelism > 1 && eff.Mode != SearchSerial && m.warm == nil
	mopt.RootCuts = eff.Cuts == ToggleOn || (eff.Cuts == ToggleAuto && autoStrength)
	mopt.Dive = eff.Dive == ToggleOn || (eff.Dive == ToggleAuto && autoStrength)
	if !m.Opt.DisableProbe {
		mopt.Probe = m.probe
	}
	var prime *partition.Solution
	if m.warm != nil {
		mopt.Warm = m.warm.Solver
		mopt.OnRoot = m.warm.OnRoot
		prime = m.warm.Prime
	}
	if prime == nil && (m.Opt.PrimeHeuristic || m.Opt.ExactSweep) {
		prime = m.heuristicIncumbent()
	}
	sweepNodes, sweepPivots := 0, 0
	if m.Opt.ExactSweep && m.Inst.Graph.NumTasks() <= maxSweepTasks {
		var sweepDeadline time.Time
		if m.Opt.TimeLimit > 0 {
			sweepDeadline = time.Now().Add(m.Opt.TimeLimit / 2)
		}
		sw := m.exactSweep(prime, sweepDeadline)
		if sw.unresolved > 0 {
			// settle the stubborn assignments with restricted MILPs
			per := 20 * time.Second
			if m.Opt.TimeLimit > 0 {
				if budget := m.Opt.TimeLimit / time.Duration(2*len(sw.unresolvedParts)); budget < per {
					per = budget
				}
			}
			m.settleUnresolved(&sw, per)
		}
		if sw.unresolved == 0 {
			// the sweep settled every candidate: proven result
			out := &Result{
				Stats:        m.Stats(),
				Optimal:      true,
				Nodes:        sw.nodes,
				LPIterations: sw.pivots,
				Runtime:      time.Since(solveStart),
			}
			if sw.best != nil {
				out.Feasible = true
				out.Solution = sw.best
			}
			return out, nil
		}
		if sw.best != nil {
			prime = sw.best // at least as good as the heuristic
		}
		sweepNodes, sweepPivots = sw.nodes, sw.pivots
	}
	if prime != nil {
		// prune anything that cannot strictly beat the incumbent
		mopt.InitialUpper = float64(prime.Comm)
	}
	if m.Opt.TimeLimit > 0 {
		// the sweep and settling may have consumed part of the budget
		remaining := m.Opt.TimeLimit - time.Since(solveStart)
		if remaining < time.Second {
			remaining = time.Second
		}
		mopt.TimeLimit = remaining
	}
	if mopt.Parallelism > 1 {
		// the probe and branching hooks read the graph's lazily-built
		// adjacency caches from every worker; force the rebuild now so
		// concurrent readers never trigger it
		if _, err := m.Inst.Graph.TopoOps(); err != nil {
			return nil, err
		}
	}
	res, err := milp.SolveContext(ctx, m.P, mopt)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Stats:                m.Stats(),
		Nodes:                sweepNodes + res.Nodes,
		LPIterations:         sweepPivots + res.LPIterations,
		Runtime:              time.Since(solveStart), // includes sweep/settle time
		Certificate:          res.Certificate,
		LPEngine:             res.LPEngine.String(),
		SearchMode:           res.Mode.String(),
		Steals:               res.Steals,
		CutsApplied:          res.CutsApplied,
		FirstIncumbentNodes:  res.FirstIncumbentNodes,
		TimeToFirstIncumbent: res.FirstIncumbent,
		TimeToProof:          res.TimeToProof,
	}
	if out.Certificate != nil {
		out.Certificate.Label = m.Inst.Graph.Name
	}
	switch res.Status {
	case milp.StatusInfeasible:
		if prime != nil {
			// nothing beats the heuristic solution: it is optimal
			out.Feasible, out.Optimal, out.Solution = true, true, prime
			return out, nil
		}
		out.Optimal = true
		return out, nil
	case milp.StatusCancelled, milp.StatusNodeLimit, milp.StatusLimit:
		out.Cancelled = res.Status == milp.StatusCancelled
		// salvage the milp incumbent when one was found, otherwise
		// fall back on the heuristic prime
		if res.X != nil {
			if sol, xerr := m.Extract(res.X); xerr == nil {
				out.Feasible, out.Solution = true, sol
			}
		}
		if out.Solution == nil && prime != nil {
			out.Feasible, out.Solution = true, prime
		}
		return out, nil
	case milp.StatusOptimal:
		out.Optimal = true
	}
	out.Feasible = true
	sol, err := m.Extract(res.X)
	if err != nil {
		return nil, err
	}
	if got := int(math.Round(res.Objective)); got != sol.Comm {
		return nil, fmt.Errorf("core: ILP objective %d != extracted comm %d", got, sol.Comm)
	}
	out.Solution = sol
	return out, nil
}

// searchModeToMILP maps the wire-form search mode onto the solver's
// own enum; the two are kept separate so the service API never leaks
// milp internals.
func searchModeToMILP(m SearchMode) milp.SearchMode {
	switch m {
	case SearchSerial:
		return milp.ModeSerial
	case SearchSteal:
		return milp.ModeSteal
	case SearchPortfolio:
		return milp.ModePortfolio
	default:
		return milp.ModeAuto
	}
}

// solveCtx returns the context of the running SolveContext, or a
// background context outside a solve.
func (m *Model) solveCtx() context.Context {
	if m.ctx != nil {
		return m.ctx
	}
	return context.Background()
}

// cancelled reports whether the running solve's context is done; the
// sweep and the exact-scheduling probes poll it so cancellation is
// honored between (and inside) LP solves too.
func (m *Model) cancelled() bool {
	return m.ctx != nil && m.ctx.Err() != nil
}

// heuristicIncumbent runs the list-scheduling baseline and converts its
// best design into a verified Solution usable as a priming incumbent;
// nil when the heuristic finds nothing or verification fails.
func (m *Model) heuristicIncumbent() *partition.Solution {
	if m.Opt.Multicycle {
		return nil // the list-scheduling baseline assumes unit latency
	}
	h, err := heuristic.SolveBudget(m.Inst.Graph, m.Inst.Alloc, m.Inst.Device, m.N, m.Opt.L, 20000)
	if err != nil || !h.Feasible {
		return nil
	}
	w := m.Win
	plan := &sched.SegmentPlan{Segment: h.Segment, N: m.N}
	asg, err := sched.HeuristicSchedule(m.Inst.Graph, m.Inst.Alloc, m.Inst.Device, w, plan)
	if err != nil {
		return nil
	}
	sol := &partition.Solution{
		N:             m.N,
		TaskPartition: append([]int(nil), h.Segment...),
		OpStep:        asg.Step,
		OpUnit:        asg.Unit,
	}
	sol.Comm = sol.CommCost(m.Inst.Graph)
	err = partition.Verify(m.Inst.Graph, m.Inst.Alloc, m.Inst.Device, sol, partition.VerifyOptions{
		L:       m.Opt.L,
		Windows: w,
	})
	if err != nil {
		return nil
	}
	return sol
}

// Extract converts an integral model solution vector into a verified
// partition.Solution.
func (m *Model) Extract(x []float64) (*partition.Solution, error) {
	g := m.Inst.Graph
	sol := &partition.Solution{
		N:             m.N,
		TaskPartition: make([]int, g.NumTasks()),
		OpStep:        make([]int, g.NumOps()),
		OpUnit:        make([]int, g.NumOps()),
	}
	for i := range sol.OpUnit {
		sol.OpUnit[i] = -1
	}
	for t := 0; t < g.NumTasks(); t++ {
		for p := 1; p <= m.N; p++ {
			if x[m.Y[[2]int{t, p}]] > 0.5 {
				if sol.TaskPartition[t] != 0 {
					return nil, fmt.Errorf("core: task %d assigned twice", t)
				}
				sol.TaskPartition[t] = p
			}
		}
		if sol.TaskPartition[t] == 0 {
			return nil, fmt.Errorf("core: task %d unassigned", t)
		}
	}
	for key, col := range m.X {
		if x[col] > 0.5 {
			i := key[0]
			if sol.OpUnit[i] != -1 {
				return nil, fmt.Errorf("core: op %d assigned twice", i)
			}
			sol.OpStep[i] = key[1]
			sol.OpUnit[i] = key[2]
		}
	}
	for i, u := range sol.OpUnit {
		if u == -1 {
			return nil, fmt.Errorf("core: op %d unassigned", i)
		}
	}
	sol.Comm = sol.CommCost(g)
	err := partition.Verify(g, m.Inst.Alloc, m.Inst.Device, sol, partition.VerifyOptions{
		L:          m.Opt.L,
		Windows:    m.Win,
		Multicycle: m.Opt.Multicycle,
	})
	if err != nil {
		return nil, fmt.Errorf("core: extracted solution failed verification: %w", err)
	}
	return sol, nil
}

// complete derives every auxiliary variable from integral y and x
// values: o from bindings, c from step occupancy, z = y*o, u from z,
// w (and per-product terms) from the partition assignment. The result
// is integer feasible whenever the decision variables are — see the
// milp.Options.Complete contract.
func (m *Model) complete(x []float64) []float64 {
	g := m.Inst.Graph
	xc := append([]float64(nil), x...)
	frac := func(v float64) bool { f := v - math.Floor(v); return f > 1e-6 && f < 1-1e-6 }
	for _, col := range m.tierY {
		if frac(xc[col]) {
			return nil
		}
		xc[col] = math.Round(xc[col])
	}
	for _, col := range m.tierX {
		if frac(xc[col]) {
			return nil
		}
		xc[col] = math.Round(xc[col])
	}
	// partitions from y
	part := make([]int, g.NumTasks())
	for t := 0; t < g.NumTasks(); t++ {
		for p := 1; p <= m.N; p++ {
			if xc[m.Y[[2]int{t, p}]] > 0.5 {
				part[t] = p
				break
			}
		}
		if part[t] == 0 {
			return nil
		}
	}
	// o from x
	for key, col := range m.O {
		t, k := key[0], key[1]
		used := 0.0
		for _, i := range g.Task(t).Ops {
			for _, j := range m.cs[i] {
				if xcol, ok := m.X[[3]int{i, j, k}]; ok && xc[xcol] > 0.5 {
					used = 1
				}
			}
		}
		xc[col] = used
	}
	// c from occupied steps
	for key, col := range m.C {
		t, j := key[0], key[1]
		occ := 0.0
		for _, i := range g.Task(t).Ops {
			for _, js := range m.cs[i] {
				for _, k := range m.fu[i] {
					xcol, ok := m.X[[3]int{i, js, k}]
					if !ok || xc[xcol] < 0.5 {
						continue
					}
					for _, jj := range m.occ[xcol] {
						if jj == j {
							occ = 1
						}
					}
				}
			}
		}
		xc[col] = occ
	}
	// z = y*o, u = OR_t z
	for key, col := range m.Z {
		p, t, k := key[0], key[1], key[2]
		xc[col] = xc[m.Y[[2]int{t, p}]] * xc[m.O[[2]int{t, k}]]
	}
	for key, col := range m.U {
		p, k := key[0], key[1]
		v := 0.0
		for t := 0; t < g.NumTasks(); t++ {
			if z, ok := m.Z[[3]int{p, t, k}]; ok && xc[z] > 0.5 {
				v = 1
			}
		}
		xc[col] = v
	}
	// w from the partition assignment
	for key, col := range m.W {
		p, t1, t2 := key[0], key[1], key[2]
		if part[t1] < p && part[t2] >= p {
			xc[col] = 1
		} else {
			xc[col] = 0
		}
	}
	for key, col := range m.Prod {
		t1, t2, p1, p2 := key[0], key[1], key[2], key[3]
		if part[t1] == p1 && part[t2] == p2 {
			xc[col] = 1
		} else {
			xc[col] = 0
		}
	}
	return xc
}

// SolveInstance builds the model and solves it in one call.
func SolveInstance(inst Instance, opt Options) (*Result, error) {
	return SolveInstanceContext(context.Background(), inst, opt)
}

// SolveInstanceContext builds the model and solves it under ctx; see
// Model.SolveContext for the cancellation semantics.
func SolveInstanceContext(ctx context.Context, inst Instance, opt Options) (*Result, error) {
	m, err := Build(inst, opt)
	if err != nil {
		return nil, err
	}
	return m.SolveContext(ctx)
}

// EstimateN exposes the heuristic segment-count estimate used when
// Options.N is zero.
func EstimateN(inst Instance) (int, error) {
	plan, err := sched.EstimateSegments(inst.Graph, inst.Alloc, inst.Device)
	if err != nil {
		return 0, err
	}
	return plan.N, nil
}
