package core

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/library"
)

// benchAlloc builds an allocation covering the named benchmark graph.
func benchAlloc(t *testing.T, name string) *library.Allocation {
	t.Helper()
	lib := library.DefaultLibrary()
	counts := map[string]int{"add16": 1, "mul16": 2}
	if name == "diffeq" {
		counts = map[string]int{"add16": 1, "sub16": 1, "mul16": 2, "cmp16": 1}
	}
	a, err := library.NewAllocation(lib, counts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestParallelMatchesSerialOnBenchmarks is the acceptance test of the
// parallel search at this layer: on every internal/benchmarks
// instance — with the scheduling probe on (tiny trees, hooks shared
// across workers) and off (pure LP search, real trees) — a solve with
// Parallelism=4 must report exactly the same feasibility, optimality
// and communication cost as the serial solve.
func TestParallelMatchesSerialOnBenchmarks(t *testing.T) {
	for name, build := range benchmarks.All() {
		for _, noProbe := range []bool{false, true} {
			label := name
			if noProbe {
				label += "/noprobe"
			}
			t.Run(label, func(t *testing.T) {
				inst := Instance{
					Graph:  build(),
					Alloc:  benchAlloc(t, name),
					Device: library.XC4010(),
				}
				opt := Options{N: 2, L: 2, Tightened: true, DisableProbe: noProbe}
				serial, err := SolveInstance(inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				popt := opt
				popt.Parallelism = 4
				popt.ParallelThreshold = -1 // actually exercise the workers
				par, err := SolveInstance(inst, popt)
				if err != nil {
					t.Fatal(err)
				}
				if serial.Feasible != par.Feasible || serial.Optimal != par.Optimal {
					t.Fatalf("serial feas=%v opt=%v, parallel feas=%v opt=%v",
						serial.Feasible, serial.Optimal, par.Feasible, par.Optimal)
				}
				if serial.Feasible {
					if serial.Solution.Comm != par.Solution.Comm {
						t.Fatalf("comm: serial %d != parallel %d",
							serial.Solution.Comm, par.Solution.Comm)
					}
				}
				t.Logf("%s: comm serial/parallel ok, nodes %d vs %d",
					label, serial.Nodes, par.Nodes)
			})
		}
	}
}
