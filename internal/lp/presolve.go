package lp

import (
	"fmt"
	"math"
)

// PresolveResult summarizes what Presolve changed.
type PresolveResult struct {
	// RowsRemoved counts redundant or converted rows dropped.
	RowsRemoved int
	// BoundsTightened counts variable-bound improvements.
	BoundsTightened int
	// Infeasible is set when presolve proves the problem empty.
	Infeasible bool
}

// Presolve simplifies the problem in place without touching the
// column space, so solvers and callers keep their variable indices:
//
//   - singleton rows become variable bounds and are dropped,
//   - rows whose activity bounds already imply the row are dropped,
//   - activity bounds tighten variable bounds (one propagation pass
//     per round, iterated to a fixed point with a round cap),
//   - contradictions prove infeasibility.
//
// Presolve must run before NewSolver; running it afterwards leaves
// existing solvers unaffected (they snapshot rows at creation).
func (p *Problem) Presolve() PresolveResult {
	var res PresolveResult
	const maxRounds = 20
	for round := 0; round < maxRounds; round++ {
		changed := false
		keep := p.rows[:0]
		keepNames := p.rowNames[:0]
		for i := range p.rows {
			r := p.rows[i]
			switch p.presolveRow(&r, &res) {
			case rowInfeasible:
				res.Infeasible = true
				return res
			case rowDrop:
				res.RowsRemoved++
				changed = true
			case rowKeep:
				keep = append(keep, r)
				keepNames = append(keepNames, p.rowNames[i])
			case rowKeepTightened:
				keep = append(keep, r)
				keepNames = append(keepNames, p.rowNames[i])
				changed = true
			}
		}
		p.rows = keep
		p.rowNames = keepNames
		for j := range p.lo {
			if p.lo[j] > p.hi[j]+feasTol {
				res.Infeasible = true
				return res
			}
		}
		if !changed {
			break
		}
	}
	return res
}

type rowAction int

const (
	rowKeep rowAction = iota
	rowKeepTightened
	rowDrop
	rowInfeasible
)

// presolveRow analyzes one row, possibly tightening variable bounds.
func (p *Problem) presolveRow(r *row, res *PresolveResult) rowAction {
	if len(r.idx) == 0 {
		if r.lo > feasTol || r.hi < -feasTol {
			return rowInfeasible
		}
		return rowDrop
	}
	if len(r.idx) == 1 {
		// singleton: a*x in [lo,hi] <=> x in [lo/a, hi/a] (sign-aware)
		j, a := r.idx[0], r.val[0]
		lo, hi := r.lo/a, r.hi/a
		if a < 0 {
			lo, hi = hi, lo
		}
		if lo > p.lo[j]+feasTol {
			p.lo[j] = lo
			res.BoundsTightened++
		}
		if hi < p.hi[j]-feasTol {
			p.hi[j] = hi
			res.BoundsTightened++
		}
		if p.lo[j] > p.hi[j]+feasTol {
			return rowInfeasible
		}
		return rowDrop
	}
	// activity bounds
	minAct, maxAct := 0.0, 0.0
	for k, j := range r.idx {
		a := r.val[k]
		if a > 0 {
			minAct += a * p.lo[j]
			maxAct += a * p.hi[j]
		} else {
			minAct += a * p.hi[j]
			maxAct += a * p.lo[j]
		}
	}
	if minAct > r.hi+feasTol || maxAct < r.lo-feasTol {
		return rowInfeasible
	}
	if minAct >= r.lo-feasTol && maxAct <= r.hi+feasTol {
		return rowDrop // row can never bind
	}
	// bound propagation: for each var, the row implies
	// a_j x_j in [lo - (maxAct - contribMax), hi - (minAct - contribMin)]
	tightened := false
	for k, j := range r.idx {
		a := r.val[k]
		var cMin, cMax float64
		if a > 0 {
			cMin, cMax = a*p.lo[j], a*p.hi[j]
		} else {
			cMin, cMax = a*p.hi[j], a*p.lo[j]
		}
		restMin, restMax := minAct-cMin, maxAct-cMax
		if math.IsInf(restMin, 0) || math.IsInf(restMax, 0) {
			continue
		}
		implLo, implHi := math.Inf(-1), math.Inf(1)
		if !math.IsInf(r.hi, 1) {
			implHi = r.hi - restMin // a_j x_j <= hi - restMin
		}
		if !math.IsInf(r.lo, -1) {
			implLo = r.lo - restMax // a_j x_j >= lo - restMax
		}
		lo, hi := implLo/a, implHi/a
		if a < 0 {
			lo, hi = hi, lo
		}
		// Significance threshold is the shared feasTol, NOT a private
		// epsilon: propagation used to accept improvements down to 1e-9
		// here while every other presolve step (and the simplex's own
		// feasibility judgment) works at feasTol = 1e-7. Improvements in
		// the gap between the two are below the solver's resolution and
		// applying them just churned BoundsTightened and extra presolve
		// rounds on changes the simplex cannot see.
		if lo > p.lo[j]+feasTol && !math.IsInf(lo, -1) {
			p.lo[j] = lo
			res.BoundsTightened++
			tightened = true
		}
		if hi < p.hi[j]-feasTol && !math.IsInf(hi, 1) {
			p.hi[j] = hi
			res.BoundsTightened++
			tightened = true
		}
	}
	if tightened {
		return rowKeepTightened
	}
	return rowKeep
}

// TightenBinary rounds bounds of 0-1 variables after presolve: a lower
// bound above 0 becomes 1, an upper bound below 1 becomes 0. Returns
// an error when a binary variable's domain empties.
func (p *Problem) TightenBinary(cols []int) error {
	for _, j := range cols {
		if p.lo[j] > feasTol {
			p.lo[j] = 1
		}
		if p.hi[j] < 1-feasTol {
			p.hi[j] = 0
		}
		if p.lo[j] > p.hi[j] {
			return fmt.Errorf("lp: binary variable %d (%s) has empty domain after tightening", j, p.names[j])
		}
	}
	return nil
}
