package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

// FuzzDifferential cross-checks the two simplex engines on random
// sparse bounded-variable LPs: the dense tableau engine is the oracle
// for the revised (LU + eta file) engine. The contract:
//
//   - statuses agree (optimal / infeasible / unbounded),
//   - optimal objectives agree within feasTol (scaled),
//   - each engine's verdict certifies under internal/exact — basis
//     optimality (exact primal/dual feasibility + complementary
//     slackness) for optimal, Farkas-ray replay for infeasible —
//     so BOTH engines must be right, not merely agree.
//
// Crashers land under testdata/fuzz/FuzzDifferential. Run locally with
//
//	go test -fuzz=FuzzDifferential -fuzztime=60s ./internal/lp/
//
// (see EXPERIMENTS.md). CI runs the same invocation for 60 seconds.
func FuzzDifferential(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 7, 13, 42, 1998, 20260808} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkEnginesAgree(t, seed)
	})
}

// TestEnginesAgreeSweep runs the differential body over a fixed seed
// range on every plain `go test`, so engine parity does not depend on
// anyone running the fuzzer.
func TestEnginesAgreeSweep(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		seed := seed
		checkEnginesAgree(t, seed)
	}
}

// randLP generates a small random sparse bounded LP: mixed finite /
// infinite variable bounds, LE/GE/EQ/range rows, small half-integer
// coefficients (exactly representable, so the exact layer snapshots
// them losslessly). Row count stays small: the exact basis check is
// O(m³) in rational arithmetic.
func randLP(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(10)
	m := 1 + rng.Intn(10)
	p := &Problem{}
	half := func(span int) float64 { return float64(rng.Intn(2*span+1)-span) / 2 }
	for j := 0; j < n; j++ {
		lo, hi := 0.0, 0.0
		switch rng.Intn(5) {
		case 0:
			lo, hi = math.Inf(-1), half(8)+8
		case 1:
			lo, hi = half(8)-8, math.Inf(1)
		case 2:
			lo, hi = math.Inf(-1), math.Inf(1)
		case 3:
			lo = half(8)
			hi = lo // fixed
		default:
			lo = half(8) - 4
			hi = lo + float64(rng.Intn(17))/2
		}
		p.AddVar("", half(6), lo, hi)
	}
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(4)
		if k > n {
			k = n
		}
		perm := rng.Perm(n)[:k]
		idx := append([]int(nil), perm...)
		for a := 1; a < len(idx); a++ { // ascending for AddRow
			for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
				idx[b], idx[b-1] = idx[b-1], idx[b]
			}
		}
		val := make([]float64, k)
		for a := range val {
			for val[a] == 0 {
				val[a] = half(6)
			}
		}
		rhs := half(20)
		var err error
		switch rng.Intn(4) {
		case 0:
			err = p.AddLE("", idx, val, rhs)
		case 1:
			err = p.AddGE("", idx, val, rhs)
		case 2:
			err = p.AddEQ("", idx, val, rhs)
		default:
			err = p.AddRow("", idx, val, rhs, rhs+float64(rng.Intn(13))/2)
		}
		if err != nil {
			panic(err)
		}
	}
	return p
}

// certifyFarkas exact-replays a candidate ray, first verbatim, then
// with its multipliers snapped to nearby small rationals
// (RationalizeRay) — the form the true duals of small-rational row data
// take. The exact checker judges both; only candidate generation varies.
func certifyFarkas(p *Problem, ray []float64) bool {
	for _, fy := range [][]string{exact.FloatVec(ray), RationalizeRay(ray, 1<<16)} {
		c := &exact.Certificate{
			Kind:    exact.KindInfeasible,
			Search:  "farkas",
			FarkasY: fy,
			Problem: exact.Snapshot(p),
		}
		c.Check()
		if c.Valid {
			return true
		}
	}
	return false
}

// certifyOptimal exact-replays a solver's optimal basis. The
// certificate carries the basis only — no X (vertex coordinates can
// have denominators a float cannot round-trip; the exact checker
// derives the exact point from the basis instead) and no DualY (the
// basis replay — primal/dual feasibility + slackness — is the complete
// optimality proof; float duals with roundoff-sized reduced costs on
// free variables would only fail the separate safe-dual-bound check
// spuriously).
func certifyOptimal(p *Problem, s *Solver) (bool, *exact.Certificate) {
	c := &exact.Certificate{
		Version:   1,
		Kind:      exact.KindOptimal,
		Objective: exact.FloatString(s.Objective()),
		Basis:     s.BasisRows(),
		VarPos:    s.VarPositions(),
		Problem:   exact.Snapshot(p),
	}
	c.Check()
	return c.Valid, c
}

func checkEnginesAgree(t *testing.T, seed int64) {
	t.Helper()
	p := randLP(seed)
	dense, err := NewSolverEngine(p, EngineDense)
	if err != nil {
		t.Fatalf("seed %d: dense: %v", seed, err)
	}
	revised, err := NewSolverEngine(p, EngineRevised)
	if err != nil {
		t.Fatalf("seed %d: revised: %v", seed, err)
	}
	dense.CaptureFarkas = true
	revised.CaptureFarkas = true
	std := dense.Solve()
	str := revised.Solve()
	if std == StatusIterLimit || str == StatusIterLimit {
		t.Skipf("seed %d: iteration limit (dense %v, revised %v)", seed, std, str)
	}
	if std != str {
		t.Fatalf("seed %d: status mismatch: dense %v, revised %v", seed, std, str)
	}
	switch std {
	case StatusOptimal:
		od, or := dense.Objective(), revised.Objective()
		if tol := feasTol * (1 + math.Abs(od)); math.Abs(od-or) > tol {
			t.Fatalf("seed %d: objective mismatch: dense %v, revised %v", seed, od, or)
		}
		for name, s := range map[string]*Solver{"dense": dense, "revised": revised} {
			if ok, c := certifyOptimal(p, s); !ok {
				t.Fatalf("seed %d: %s basis certificate invalid: %v\n%+v",
					seed, name, c.Err(), c.Checks)
			}
		}
	case StatusInfeasible:
		for name, s := range map[string]*Solver{"dense": dense, "revised": revised} {
			ray := s.FarkasRay()
			if ray == nil {
				t.Fatalf("seed %d: %s verdict infeasible without a ray", seed, name)
			}
			if certifyFarkas(p, ray) {
				continue
			}
			// the raw ray failed exact replay; the pipeline's fallback
			// (milp.attachCertificate) re-derives one from the elastic
			// relaxation — the verdict must be provable through it
			repaired, viol, err := FarkasRepair(p)
			if err != nil || viol <= 0 || !certifyFarkas(p, repaired) {
				t.Fatalf("seed %d: %s infeasibility not exactly provable (repair viol %v, err %v)",
					seed, name, viol, err)
			}
		}
	}
	// warm-edit parity: re-solving after the same bound tightening must
	// again agree (the delta engine's SetBound/ReOptimize path)
	if std == StatusOptimal && p.NumVars() > 0 {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		j := rng.Intn(p.NumVars())
		lo, hi := dense.Bound(j)
		if !math.IsInf(hi, 1) && !math.IsInf(lo, -1) && hi > lo {
			mid := math.Floor(lo + (hi-lo)/2)
			if mid >= lo {
				dense.SetBound(j, lo, mid)
				revised.SetBound(j, lo, mid)
				wd, wr := dense.ReOptimize(), revised.ReOptimize()
				if wd == StatusIterLimit || wr == StatusIterLimit {
					return
				}
				if wd != wr {
					t.Fatalf("seed %d: warm status mismatch on x%d<=%v: dense %v, revised %v",
						seed, j, mid, wd, wr)
				}
				if wd == StatusOptimal {
					od, or := dense.Objective(), revised.Objective()
					if tol := feasTol * (1 + math.Abs(od)); math.Abs(od-or) > tol {
						t.Fatalf("seed %d: warm objective mismatch: dense %v, revised %v", seed, od, or)
					}
				}
			}
		}
	}
}
