package lp

import (
	"fmt"
	"math"
)

// Gomory mixed-integer cut generation from the dense tableau. Each
// maintained tableau row is a valid equation over the full system
// [A | I] z = 0, so for a basic integer variable x_b with fractional
// value the classic GMI rounding applied to the nonbasic shifts
// (t_j = x_j - l_j at lower bound, u_j - x_j at upper) yields a valid
// inequality for every integer-feasible point. The cut is produced in
// t-space, translated back to x-space and the logical-variable terms
// expanded through the original rows (g_i = -a_i·x), so the result is
// a pure structural-variable CutRow ready for AppendRows.
//
// Numerical guard rails: rows with nonbasic free variables or huge
// tableau entries are skipped, the right-hand side gets a relative
// safety margin, tiny structural coefficients are absorbed into the
// right-hand side using the variable's box (conservative), and only
// cuts violated by the current LP point are returned.

// gomoryMaxCoef rejects tableau rows whose entries are too large for a
// trustworthy rounding (drifted or ill-conditioned rows).
const gomoryMaxCoef = 1e7

// GomoryCuts derives Gomory mixed-integer cuts for the fractional basic
// integer variables of the current optimal basis, at most limit of
// them, ordered by tableau row. isInt flags the structural variables
// that are integral in the caller's model; its length must be the
// structural variable count.
//
// Only the dense engine exposes its tableau rows; on the revised engine
// (or a non-optimal solver) the result is nil. Cuts are derived against
// the solver's CURRENT variable bounds, so they are globally valid only
// when generated at the root of a search, before any branching fixes.
func (s *Solver) GomoryCuts(isInt []bool, limit int) []CutRow {
	if s.tab == nil || s.status != StatusOptimal || limit <= 0 || len(isInt) != s.n {
		return nil
	}
	var out []CutRow
	w := make([]float64, s.n)
	for r := 0; r < s.m && len(out) < limit; r++ {
		b := s.basis[r]
		if b >= s.n || !isInt[b] {
			continue
		}
		f0 := s.beta[r] - math.Floor(s.beta[r])
		if f0 < 0.05 || f0 > 0.95 {
			continue // too close to integral: unreliable rounding
		}
		trow := s.tab[r*s.ntot : (r+1)*s.ntot]
		for j := range w {
			w[j] = 0
		}
		rhs := f0
		ok := true
		for j := 0; j < s.ntot; j++ {
			if s.vstat[j] == basic {
				continue
			}
			a := trow[j]
			if math.Abs(a) <= 1e-9 {
				continue
			}
			if math.Abs(a) > gomoryMaxCoef {
				ok = false
				break
			}
			var cj float64
			var upper bool
			switch s.vstat[j] {
			case atLower:
				cj = a
			case atUpper:
				cj, upper = -a, true
			default:
				ok = false // nonbasic free variable: no valid shift
			}
			if !ok {
				break
			}
			var g float64
			if j < s.n && isInt[j] && integralBound(s.lo[j]) && integralBound(s.hi[j]) {
				fj := cj - math.Floor(cj)
				if fj <= f0 {
					g = fj
				} else {
					g = f0 * (1 - fj) / (1 - f0)
				}
			} else if cj >= 0 {
				g = cj
			} else {
				g = f0 * (-cj) / (1 - f0)
			}
			if g <= 1e-12 {
				continue
			}
			// translate gamma_j * t_j back to x-space
			coef, shift := g, g*s.lo[j]
			if upper {
				coef, shift = -g, -g*s.hi[j]
			}
			rhs += shift
			if j < s.n {
				w[j] += coef
			} else {
				// logical variable of row j-n: g_i = -(a_i · x)
				rr := s.origRows[j-s.n]
				for t, col := range rr.idx {
					w[col] -= coef * rr.val[t]
				}
			}
		}
		if !ok {
			continue
		}
		var idx []int
		var val []float64
		for q := 0; q < s.n && ok; q++ {
			v := w[q]
			if v == 0 {
				continue
			}
			if math.Abs(v) < 1e-9 {
				// absorb the tiny coefficient into the right-hand side
				// using the variable's box: sum' >= rhs - max(v*x) stays
				// valid after dropping the term
				worst := math.Max(v*s.lo[q], v*s.hi[q])
				if math.IsInf(worst, 0) || math.IsNaN(worst) {
					ok = false
					break
				}
				rhs -= worst
				continue
			}
			idx = append(idx, q)
			val = append(val, v)
		}
		if !ok || len(idx) == 0 {
			continue
		}
		rhs -= 1e-7 * (1 + math.Abs(rhs)) // safety margin against drift
		lhs := 0.0
		for t, q := range idx {
			lhs += val[t] * s.value(q)
		}
		if rhs-lhs < 1e-4 {
			continue // not (or barely) violated: not worth a row
		}
		out = append(out, CutRow{
			Name: fmt.Sprintf("gomory[%d]", r),
			Idx:  idx, Val: val,
			Lo: rhs, Hi: math.Inf(1),
		})
	}
	return out
}

// integralBound reports whether a finite bound sits on an integer.
func integralBound(v float64) bool {
	return !math.IsInf(v, 0) && math.Abs(v-math.Round(v)) < 1e-9
}
