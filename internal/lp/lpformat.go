package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// WriteLP emits the problem in CPLEX LP format — the human-readable
// sibling of MPS, convenient for eyeballing generated models and for
// feeding external solvers. Range rows are split into two inequalities.
func (p *Problem) WriteLP(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	if name != "" {
		fmt.Fprintf(bw, "\\ %s\n", name)
	}
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	first := true
	for j, c := range p.obj {
		if c == 0 {
			continue
		}
		writeTerm(bw, &first, c, p.colName(j))
	}
	if first {
		fmt.Fprint(bw, " 0 "+p.colName(0))
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "Subject To")
	for i := range p.rows {
		r := p.rows[i]
		if len(r.idx) == 0 {
			continue
		}
		emit := func(op string, rhs float64, suffix string) {
			fmt.Fprintf(bw, " r%d%s:", i, suffix)
			f := true
			for k, j := range r.idx {
				writeTerm(bw, &f, r.val[k], p.colName(j))
			}
			fmt.Fprintf(bw, " %s %.12g\n", op, rhs)
		}
		switch {
		case r.lo == r.hi:
			emit("=", r.lo, "")
		case math.IsInf(r.lo, -1) && !math.IsInf(r.hi, 1):
			emit("<=", r.hi, "")
		case !math.IsInf(r.lo, -1) && math.IsInf(r.hi, 1):
			emit(">=", r.lo, "")
		case !math.IsInf(r.lo, -1) && !math.IsInf(r.hi, 1):
			emit(">=", r.lo, "a")
			emit("<=", r.hi, "b")
		}
	}
	fmt.Fprintln(bw, "Bounds")
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.lo[j], p.hi[j]
		name := p.colName(j)
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			fmt.Fprintf(bw, " %s free\n", name)
		case lo == hi:
			fmt.Fprintf(bw, " %s = %.12g\n", name, lo)
		case math.IsInf(hi, 1):
			fmt.Fprintf(bw, " %.12g <= %s\n", lo, name)
		case math.IsInf(lo, -1):
			fmt.Fprintf(bw, " %s <= %.12g\n", name, hi)
		default:
			fmt.Fprintf(bw, " %.12g <= %s <= %.12g\n", lo, name, hi)
		}
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

func (p *Problem) colName(j int) string { return mpsName(p.names[j], j) }

func writeTerm(w io.Writer, first *bool, c float64, name string) {
	switch {
	case *first && c == 1:
		fmt.Fprintf(w, " %s", name)
	case *first:
		fmt.Fprintf(w, " %.12g %s", c, name)
	case c == 1:
		fmt.Fprintf(w, " + %s", name)
	case c == -1:
		fmt.Fprintf(w, " - %s", name)
	case c < 0:
		fmt.Fprintf(w, " - %.12g %s", -c, name)
	default:
		fmt.Fprintf(w, " + %.12g %s", c, name)
	}
	*first = false
}
