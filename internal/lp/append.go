package lp

import (
	"fmt"
	"math"
)

// CutRow is a valid inequality over the structural variables, destined
// for Solver.AppendRows: Lo <= sum Val[k] * x[Idx[k]] <= Hi. The MILP
// layer's root strengthening (knapsack covers, Gomory rounds) produces
// these; they must be satisfied by every integer-feasible point of the
// model they are appended to, or the search built on them is unsound.
type CutRow struct {
	Name string
	Idx  []int
	Val  []float64
	Lo   float64
	Hi   float64
}

// AppendRows appends extra constraint rows to a solver in place — the
// row-count twin of SetBound/SetRowBounds, extending the live-edit
// surface so a branch-and-bound root can be strengthened with cutting
// planes without rebuilding the solver.
//
// The warm-start contract is preserved: each new row receives a fresh
// logical variable that enters the basis (its column is a unit vector,
// so the basis stays nonsingular), existing reduced costs are untouched
// and the new logicals get reduced cost zero, so a previously
// dual-feasible basis stays dual feasible and ReOptimize repairs any
// primal violation of the new rows with the dual simplex — exactly the
// bound-edit re-optimization pattern. On the dense engine the new
// tableau rows are reduced against the current basis; the revised
// engine rebuilds its column form and refactorizes lazily from the
// extended basis.
//
// The original row data is copied on append, so Clones sharing the old
// row slice are unaffected. Snapshots taken before an append no longer
// match the solver's dimensions and must not be Restored into it.
func (s *Solver) AppendRows(cuts []CutRow) error {
	k := len(cuts)
	if k == 0 {
		return nil
	}
	newRows := make([]row, 0, k)
	for _, c := range cuts {
		if len(c.Idx) != len(c.Val) {
			return fmt.Errorf("lp: AppendRows %q: %d indices vs %d values", c.Name, len(c.Idx), len(c.Val))
		}
		if c.Lo > c.Hi || math.IsNaN(c.Lo) || math.IsNaN(c.Hi) {
			return fmt.Errorf("lp: AppendRows %q: bad range [%v,%v]", c.Name, c.Lo, c.Hi)
		}
		acc := map[int]float64{}
		for t, j := range c.Idx {
			if j < 0 || j >= s.n {
				return fmt.Errorf("lp: AppendRows %q: variable %d out of range", c.Name, j)
			}
			if math.IsInf(c.Val[t], 0) || math.IsNaN(c.Val[t]) {
				return fmt.Errorf("lp: AppendRows %q: non-finite coefficient on variable %d", c.Name, j)
			}
			acc[j] += c.Val[t]
		}
		r := row{lo: c.Lo, hi: c.Hi}
		for j := 0; j < s.n; j++ {
			if v, ok := acc[j]; ok && v != 0 {
				r.idx = append(r.idx, j)
				r.val = append(r.val, v)
			}
		}
		newRows = append(newRows, r)
	}

	// Values the new logicals take at the current point (g = -a·x),
	// computed before any state mutation.
	gval := make([]float64, k)
	for j := range newRows {
		v := 0.0
		for t, col := range newRows[j].idx {
			v += newRows[j].val[t] * s.value(col)
		}
		gval[j] = -v
	}

	// Copy-on-append: Clones share origRows, so the old slice must stay
	// intact for them.
	or := make([]row, 0, s.m+k)
	or = append(or, s.origRows...)
	or = append(or, newRows...)
	s.origRows = or

	m2, ntot2 := s.m+k, s.ntot+k
	if s.tab != nil {
		nt := make([]float64, m2*ntot2)
		for i := 0; i < s.m; i++ {
			copy(nt[i*ntot2:i*ntot2+s.ntot], s.tab[i*s.ntot:(i+1)*s.ntot])
		}
		for j := range newRows {
			tr := nt[(s.m+j)*ntot2 : (s.m+j+1)*ntot2]
			for t, col := range newRows[j].idx {
				tr[col] = newRows[j].val[t]
			}
			tr[s.ntot+j] = 1
			// Reduce against the current basis so the row is a valid
			// B^{-1}-transformed tableau row: basic columns must be zero.
			for i := 0; i < s.m; i++ {
				b := s.basis[i]
				piv := tr[b]
				if piv == 0 {
					continue
				}
				br := nt[i*ntot2 : (i+1)*ntot2]
				for q := 0; q < s.ntot; q++ {
					if br[q] != 0 {
						tr[q] -= piv * br[q]
					}
				}
				tr[b] = 0
			}
		}
		s.tab = nt
	}
	for j := range newRows {
		// logical of new row m+j sits at column n+(m+j) = ntot+j, so all
		// existing structural and logical column indices are unchanged
		s.c = append(s.c, 0)
		s.lo = append(s.lo, -newRows[j].hi)
		s.hi = append(s.hi, -newRows[j].lo)
		s.nbVal = append(s.nbVal, 0)
		s.d = append(s.d, 0) // basic: reduced cost zero by definition
		s.vstat = append(s.vstat, basic)
		s.inRow = append(s.inRow, s.m+j)
		s.basis = append(s.basis, s.ntot+j)
		s.beta = append(s.beta, gval[j])
	}
	s.m, s.ntot = m2, ntot2
	if s.rev != nil {
		rv := newRevisedState(s.n, s.m, buildCSC(s.n, s.origRows))
		for j := range rv.wts {
			rv.wts[j] = 1 // devex frame reseeded for the new dimensions
		}
		rv.stale = true // factorize lazily from the extended basis
		s.rev = rv
	}
	s.status = StatusUnknown
	s.pCand, s.dCand = s.pCand[:0], s.dCand[:0]
	s.pCur, s.dCur = 0, 0
	s.nzbuf, s.fbuf = nil, nil
	s.farkasRay = nil
	return nil
}
