package lp

import "fmt"

// Engine selects the simplex implementation backing a Solver.
//
// The dense engine keeps the full m x (n+m) tableau B^{-1}[A|I] and
// eliminates it on every pivot — O(m·n) per pivot, unbeatable on the
// small dense relaxations branch-and-bound nodes mostly are. The
// revised engine keeps the constraint matrix in sparse column form and
// the basis as a sparse LU factorization updated by an eta file, so a
// pivot costs O(nnz) of the factor solves instead of O(m·n); it wins on
// the larger, sparser models (density of the paper's formulations drops
// well under 1% at fir16-scale instances).
//
// Both engines share every contract of Solver — warm edits, clones,
// snapshots, Farkas certification, deterministic tie-breaking — and are
// cross-checked against each other by FuzzDifferential.
type Engine int

const (
	// EngineAuto picks per problem by the density × size heuristic of
	// ChooseEngine. The default.
	EngineAuto Engine = iota
	// EngineDense forces the dense tableau engine.
	EngineDense
	// EngineRevised forces the sparse revised engine.
	EngineRevised
)

func (e Engine) String() string {
	switch e {
	case EngineDense:
		return "dense"
	case EngineRevised:
		return "revised"
	default:
		return "auto"
	}
}

// ParseEngine parses an engine name; "" means EngineAuto.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "dense":
		return EngineDense, nil
	case "revised":
		return EngineRevised, nil
	}
	return 0, fmt.Errorf("lp: unknown engine %q (want auto, dense or revised)", s)
}

// Engine-selection thresholds for ChooseEngine. A problem must be both
// big enough that the dense pivot's O(m·n) actually hurts and sparse
// enough that the factor solves stay short; measurements on the
// benchmark suite (BENCH_trajectory.json) put the crossover well below
// these values, so the thresholds are conservative: small problems keep
// the dense engine's bit-for-bit historical behavior.
const (
	// engineMinCells is the minimum tableau size m*(n+m) before the
	// revised engine is considered.
	engineMinCells = 1 << 15
	// engineMinRows is the minimum row count — below it the dense
	// elimination fits in cache no matter the column count.
	engineMinRows = 48
	// engineMaxDensity is the maximum nnz/(m*n) fraction: denser
	// matrices fill the LU factors enough that the dense tableau wins.
	engineMaxDensity = 0.25
)

// ChooseEngine is the EngineAuto heuristic: given the model shape it
// returns the engine NewSolver will run. Exported so benchmarks and CI
// smoke tests can assert which engine a model class gets.
func ChooseEngine(vars, rows, nnz int) Engine {
	if rows < engineMinRows || rows*(vars+rows) < engineMinCells {
		return EngineDense
	}
	if vars > 0 && float64(nnz) > engineMaxDensity*float64(rows)*float64(vars) {
		return EngineDense
	}
	return EngineRevised
}

// EngineKind reports the engine actually backing the solver: never
// EngineAuto — auto resolves at NewSolver time.
func (s *Solver) EngineKind() Engine {
	if s.rev != nil {
		return EngineRevised
	}
	return EngineDense
}
