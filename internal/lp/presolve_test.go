package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPresolveSingletonRow(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 10)
	_ = p.AddGE("g", []int{x}, []float64{2}, 6) // x >= 3
	res := p.Presolve()
	if res.Infeasible {
		t.Fatal("feasible problem declared infeasible")
	}
	if p.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", p.NumRows())
	}
	if lo, _ := p.Bounds(x); math.Abs(lo-3) > 1e-9 {
		t.Fatalf("lo = %v, want 3", lo)
	}
}

func TestPresolveSingletonNegativeCoef(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, -10, 10)
	_ = p.AddGE("g", []int{x}, []float64{-1}, 4) // -x >= 4 -> x <= -4
	res := p.Presolve()
	if res.Infeasible {
		t.Fatal("unexpected infeasible")
	}
	if _, hi := p.Bounds(x); math.Abs(hi-(-4)) > 1e-9 {
		t.Fatalf("hi = %v, want -4", hi)
	}
}

func TestPresolveRedundantRow(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 1)
	y := p.AddVar("y", 1, 0, 1)
	_ = p.AddLE("r", []int{x, y}, []float64{1, 1}, 5) // never binds
	res := p.Presolve()
	if p.NumRows() != 0 || res.RowsRemoved != 1 {
		t.Fatalf("rows = %d removed = %d", p.NumRows(), res.RowsRemoved)
	}
}

func TestPresolveDetectsInfeasible(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 1)
	y := p.AddVar("y", 1, 0, 1)
	_ = p.AddGE("g", []int{x, y}, []float64{1, 1}, 3)
	res := p.Presolve()
	if !res.Infeasible {
		t.Fatal("infeasibility missed")
	}
}

func TestPresolvePropagatesBounds(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 10)
	y := p.AddVar("y", 1, 0, 10)
	_ = p.AddLE("r", []int{x, y}, []float64{1, 1}, 4)
	_ = p.AddGE("g", []int{x}, []float64{1}, 3) // singleton: x >= 3
	res := p.Presolve()
	if res.Infeasible {
		t.Fatal("unexpected infeasible")
	}
	// x >= 3 and x + y <= 4 imply y <= 1
	if _, hi := p.Bounds(y); hi > 1+1e-6 {
		t.Fatalf("y hi = %v, want <= 1", hi)
	}
}

func TestPresolveEmptyRow(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 1)
	_ = p.AddLE("z", nil, nil, 1) // 0 <= 1: redundant
	res := p.Presolve()
	if res.Infeasible || p.NumRows() != 0 {
		t.Fatalf("res=%+v rows=%d", res, p.NumRows())
	}
	_ = p.AddGE("z2", nil, nil, 1) // 0 >= 1: impossible
	if res := p.Presolve(); !res.Infeasible {
		t.Fatal("empty impossible row accepted")
	}
	_ = x
}

func TestTightenBinary(t *testing.T) {
	p := &Problem{}
	x := p.AddBinary("x", 1)
	y := p.AddBinary("y", 1)
	p.lo[x] = 0.3 // as if tightened by propagation
	p.hi[y] = 0.6
	if err := p.TightenBinary([]int{x, y}); err != nil {
		t.Fatal(err)
	}
	if lo, _ := p.Bounds(x); lo != 1 {
		t.Fatalf("x lo = %v", lo)
	}
	if _, hi := p.Bounds(y); hi != 0 {
		t.Fatalf("y hi = %v", hi)
	}
	z := p.AddBinary("z", 1)
	p.lo[z], p.hi[z] = 0.3, 0.6
	if err := p.TightenBinary([]int{z}); err == nil {
		t.Fatal("empty binary domain accepted")
	}
}

// Property: presolve preserves the LP optimum on random feasible LPs.
func TestPropertyPresolvePreservesOptimum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p1, _ := randomPrimalDual(r)
		p2, _ := randomPrimalDual(rand.New(rand.NewSource(seed)))
		res := p2.Presolve()
		if res.Infeasible {
			return false // these instances are feasible by construction
		}
		s1, err := NewSolver(p1)
		if err != nil {
			return false
		}
		if p2.NumVars() == 0 {
			return true
		}
		s2, err := NewSolver(p2)
		if err != nil {
			return false
		}
		if s1.Solve() != StatusOptimal || s2.Solve() != StatusOptimal {
			return false
		}
		return math.Abs(s1.Objective()-s2.Objective()) < 1e-5*(1+math.Abs(s1.Objective()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
