package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteMPS emits the problem in fixed MPS format (the interchange
// format of the lp_solve era), so models can be inspected with or
// cross-checked against external solvers. Range constraints are
// emitted via the RANGES section; variable bounds via BOUNDS.
func (p *Problem) WriteMPS(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "REPRO"
	}
	fmt.Fprintf(bw, "NAME          %s\n", mpsName(name, 0))
	// ROWS: objective plus one row per constraint. Row types: N for
	// the objective; E/L/G for equality and one-sided rows; ranges use
	// the primary type plus a RANGES entry.
	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintln(bw, " N  COST")
	type rowInfo struct {
		typ  byte
		rhs  float64
		rng  float64 // 0 = none
		name string
	}
	rows := make([]rowInfo, p.NumRows())
	for i := range p.rows {
		lo, hi := p.rows[i].lo, p.rows[i].hi
		ri := rowInfo{name: fmt.Sprintf("R%d", i)}
		switch {
		case lo == hi:
			ri.typ, ri.rhs = 'E', lo
		case math.IsInf(lo, -1) && !math.IsInf(hi, 1):
			ri.typ, ri.rhs = 'L', hi
		case !math.IsInf(lo, -1) && math.IsInf(hi, 1):
			ri.typ, ri.rhs = 'G', lo
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			ri.typ, ri.rhs = 'N', 0 // free row
		default:
			ri.typ, ri.rhs, ri.rng = 'L', hi, hi-lo
		}
		rows[i] = ri
		fmt.Fprintf(bw, " %c  %s\n", ri.typ, ri.name)
	}
	// COLUMNS
	fmt.Fprintln(bw, "COLUMNS")
	entries := make([][][2]interface{}, p.NumVars())
	for i := range p.rows {
		for k, j := range p.rows[i].idx {
			entries[j] = append(entries[j], [2]interface{}{rows[i].name, p.rows[i].val[k]})
		}
	}
	for j := 0; j < p.NumVars(); j++ {
		col := mpsName(p.names[j], j)
		// always emit the objective entry (even when zero) so every
		// column is declared and column order is preserved on re-read
		fmt.Fprintf(bw, "    %-10s COST      %.12g\n", col, p.obj[j])
		for _, e := range entries[j] {
			fmt.Fprintf(bw, "    %-10s %-9s %.12g\n", col, e[0], e[1])
		}
	}
	// RHS
	fmt.Fprintln(bw, "RHS")
	for i := range rows {
		if rows[i].rhs != 0 {
			fmt.Fprintf(bw, "    RHS        %-9s %.12g\n", rows[i].name, rows[i].rhs)
		}
	}
	// RANGES
	hasRange := false
	for i := range rows {
		if rows[i].rng != 0 {
			if !hasRange {
				fmt.Fprintln(bw, "RANGES")
				hasRange = true
			}
			fmt.Fprintf(bw, "    RNG        %-9s %.12g\n", rows[i].name, rows[i].rng)
		}
	}
	// BOUNDS: default MPS bounds are [0, +inf); emit the rest.
	fmt.Fprintln(bw, "BOUNDS")
	for j := 0; j < p.NumVars(); j++ {
		col := mpsName(p.names[j], j)
		lo, hi := p.lo[j], p.hi[j]
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			fmt.Fprintf(bw, " FR BND        %s\n", col)
		case lo == hi:
			fmt.Fprintf(bw, " FX BND        %-9s %.12g\n", col, lo)
		default:
			if lo != 0 {
				if math.IsInf(lo, -1) {
					fmt.Fprintf(bw, " MI BND        %s\n", col)
				} else {
					fmt.Fprintf(bw, " LO BND        %-9s %.12g\n", col, lo)
				}
			}
			if !math.IsInf(hi, 1) {
				fmt.Fprintf(bw, " UP BND        %-9s %.12g\n", col, hi)
			}
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

// mpsName produces a unique, MPS-safe column name.
func mpsName(name string, j int) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		}
		return -1
	}, name)
	if clean == "" {
		clean = "X"
	}
	if len(clean) > 6 {
		clean = clean[:6]
	}
	return fmt.Sprintf("%s_%d", clean, j)
}

// ReadMPS parses a problem written by WriteMPS (fixed MPS with the
// COST objective row, RHS/RANGES/BOUNDS sections). It is not a fully
// general MPS reader; it accepts the dialect this package writes,
// which is enough for round-tripping and external-solver interchange.
func ReadMPS(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	p := &Problem{}
	type rowSpec struct {
		typ byte
		rhs float64
		rng float64
	}
	rowIdx := map[string]int{}
	var rowSpecs []rowSpec
	var rowNames []string
	colIdx := map[string]int{}
	colEntries := map[int]map[int]float64{} // col -> row -> coef
	colObj := map[int]float64{}
	colLo := map[int]float64{}
	colHi := map[int]float64{}
	section := ""
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if line[0] != ' ' && line[0] != '\t' {
			f := strings.Fields(line)
			section = f[0]
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error { return fmt.Errorf("lp: mps line %d: %s", lineno, msg) }
		switch section {
		case "ROWS":
			if len(f) != 2 {
				return nil, fail("want: <type> <name>")
			}
			if f[1] == "COST" {
				continue
			}
			rowIdx[f[1]] = len(rowSpecs)
			rowSpecs = append(rowSpecs, rowSpec{typ: f[0][0]})
			rowNames = append(rowNames, f[1])
		case "COLUMNS":
			if len(f) < 3 || len(f)%2 == 0 {
				return nil, fail("want: <col> (<row> <val>)+")
			}
			col, ok := colIdx[f[0]]
			if !ok {
				col = len(colIdx)
				colIdx[f[0]] = col
				colEntries[col] = map[int]float64{}
			}
			for k := 1; k < len(f); k += 2 {
				v, err := strconv.ParseFloat(f[k+1], 64)
				if err != nil {
					return nil, fail("bad value " + f[k+1])
				}
				if f[k] == "COST" {
					colObj[col] = v
					continue
				}
				ri, ok := rowIdx[f[k]]
				if !ok {
					return nil, fail("unknown row " + f[k])
				}
				colEntries[col][ri] += v
			}
		case "RHS":
			for k := 1; k < len(f); k += 2 {
				ri, ok := rowIdx[f[k]]
				if !ok {
					return nil, fail("unknown row " + f[k])
				}
				v, err := strconv.ParseFloat(f[k+1], 64)
				if err != nil {
					return nil, fail("bad rhs")
				}
				rowSpecs[ri].rhs = v
			}
		case "RANGES":
			for k := 1; k < len(f); k += 2 {
				ri, ok := rowIdx[f[k]]
				if !ok {
					return nil, fail("unknown row " + f[k])
				}
				v, err := strconv.ParseFloat(f[k+1], 64)
				if err != nil {
					return nil, fail("bad range")
				}
				rowSpecs[ri].rng = v
			}
		case "BOUNDS":
			if len(f) < 3 {
				return nil, fail("short bound")
			}
			col, ok := colIdx[f[2]]
			if !ok {
				return nil, fail("unknown column " + f[2])
			}
			var v float64
			if len(f) > 3 {
				var err error
				if v, err = strconv.ParseFloat(f[3], 64); err != nil {
					return nil, fail("bad bound")
				}
			}
			switch f[0] {
			case "FR":
				colLo[col], colHi[col] = math.Inf(-1), Inf
			case "MI":
				colLo[col] = math.Inf(-1)
			case "FX":
				colLo[col], colHi[col] = v, v
			case "LO":
				colLo[col] = v
			case "UP":
				colHi[col] = v
			default:
				return nil, fail("unsupported bound type " + f[0])
			}
		case "ENDATA":
		default:
			return nil, fail("unknown section " + section)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// materialize columns in first-seen order
	names := make([]string, len(colIdx))
	for n, j := range colIdx {
		names[j] = n
	}
	for j := 0; j < len(names); j++ {
		lo, hi := 0.0, Inf
		if v, ok := colLo[j]; ok {
			lo = v
		}
		if v, ok := colHi[j]; ok {
			hi = v
		}
		p.AddVar(names[j], colObj[j], lo, hi)
	}
	// rows
	for ri, spec := range rowSpecs {
		var idx []int
		var coef []float64
		cols := make([]int, 0)
		for col := range colEntries {
			if _, ok := colEntries[col][ri]; ok {
				cols = append(cols, col)
			}
		}
		sort.Ints(cols)
		for _, col := range cols {
			idx = append(idx, col)
			coef = append(coef, colEntries[col][ri])
		}
		var lo, hi float64
		switch spec.typ {
		case 'E':
			lo, hi = spec.rhs, spec.rhs
		case 'L':
			lo, hi = math.Inf(-1), spec.rhs
			if spec.rng != 0 {
				lo = spec.rhs - math.Abs(spec.rng)
			}
		case 'G':
			lo, hi = spec.rhs, Inf
			if spec.rng != 0 {
				hi = spec.rhs + math.Abs(spec.rng)
			}
		case 'N':
			lo, hi = math.Inf(-1), Inf
		default:
			return nil, fmt.Errorf("lp: mps: unknown row type %c", spec.typ)
		}
		if err := p.AddRow(rowNames[ri], idx, coef, lo, hi); err != nil {
			return nil, err
		}
	}
	return p, nil
}
