package lp

import (
	"math"
	"time"

	"repro/internal/trace"
)

// This file is the revised simplex engine: the same bounded-variable
// primal/dual pivoting rules as simplex.go, but with the basis kept as
// a sparse LU factorization (lu.go) instead of a dense tableau. The
// quantities a pivot needs are recomputed on demand:
//
//	entering column  tab[:,q] = B^{-1} a_q      — one FTRAN
//	pivot row        tab[r,:] = (B^{-T}e_r)^T A' — one BTRAN + row scatter
//
// so a pivot costs O(factor nnz touched + pivot-row nnz) instead of the
// dense engine's O(m·ntot) elimination. Pricing gains devex reference
// weights on the primal side, layered on the same candidate-list /
// rotating-window scheme (and the same full-wrap optimality
// certificate) as the dense engine; the dual side keeps the
// largest-violation rule, whose per-pivot cost was never
// tableau-dependent.
//
// Contract parity with the dense engine is deliberate and test-enforced
// (FuzzDifferential): identical statuses, objectives agreeing within
// feasTol, the same Farkas certification of infeasibility verdicts
// (certifyRay — the revised engine's ray is the BTRAN'd unit vector
// itself), the same degeneracy → Bland escalation, and deterministic
// tie-breaking (ratio tests scan candidates in ascending index order,
// with the dense engine's exact tie rules).

// maxEtas bounds the eta file length before the basis is refactorized;
// the eta-nnz trigger below refactorizes earlier when updates fill in
// faster than the factorization they amend.
const maxEtas = 64

// devexResetThresh: a reference weight beyond it means the frame has
// drifted far from where the weights were seeded; restart them at 1.
const devexResetThresh = 1e12

// revisedState carries everything the revised engine adds to a Solver.
// The dense tableau s.tab is nil when this is non-nil.
type revisedState struct {
	a  *csc     // structural columns of A, immutable, shared by clones
	lu *basisLU // factorized basis + eta file

	col []float64 // m: FTRAN result, the entering tableau column
	rho []float64 // m: BTRAN result, the basis-inverse row (Farkas ray)

	// alpha is the pivot row tab[r,:] scattered from rho. Entries are
	// valid only when stamped with the current generation, so clearing
	// between pivots is O(1).
	alpha []float64
	aseen []int32
	agen  int32
	apat  []int32 // alpha's nonzero pattern, scatter order

	wts        []float64 // devex reference weights, ntot
	devexReset bool      // weights overflowed; reseed at next pricing

	// stale marks factors that no longer reflect s.basis (after Clone,
	// Restore or a failed update); betaStale defers basic-value
	// recomputation across a batch of bound edits made while stale.
	stale     bool
	betaStale bool
}

func newRevisedState(n, m int, a *csc) *revisedState {
	return &revisedState{
		a:     a,
		lu:    newBasisLU(m),
		col:   make([]float64, m),
		rho:   make([]float64, m),
		alpha: make([]float64, n+m),
		aseen: make([]int32, n+m),
		apat:  make([]int32, 0, n+m),
		wts:   make([]float64, n+m),
	}
}

// alphaAt returns pivot-row entry j of the last revPivotRow, 0 when
// untouched by the scatter.
func (rv *revisedState) alphaAt(j int) float64 {
	if rv.aseen[j] == rv.agen {
		return rv.alpha[j]
	}
	return 0
}

// revFactorize rebuilds the LU factors from the current basis, dropping
// the eta file. Returns false when the basis is numerically singular.
func (s *Solver) revFactorize() bool {
	var t0 time.Time
	if s.Prof != nil {
		t0 = time.Now()
	}
	ok := s.rev.lu.factorize(s.basis, s.n, s.rev.a)
	if ok {
		s.Counters.Factorizations++
		s.Counters.BasisNNZ = int64(s.rev.lu.basisNNZ)
		s.Counters.FactorNNZ = int64(s.rev.lu.luNNZ)
		s.rev.stale = false
	}
	if s.Prof != nil {
		s.Prof.Observe(trace.PhaseFactorize, time.Since(t0).Nanoseconds())
	}
	return ok
}

// revEnsure brings the factorization (and, if deferred, the basic
// values) in sync with the logical state — the lazy half of the
// Clone/Snapshot/Restore contract, which copies only logical state and
// marks the factors stale. Returns false when the recorded basis turns
// out numerically singular; the caller falls back to reset().
func (s *Solver) revEnsure() bool {
	rv := s.rev
	if rv.stale {
		if !s.revFactorize() {
			return false
		}
	}
	if rv.betaStale {
		s.revRecomputeBeta()
		rv.betaStale = false
	}
	return true
}

// revReset is reset() for the revised engine: all-logical basis (whose
// factorization is the identity and cannot fail), devex weights
// reseeded, reduced costs d = c.
func (s *Solver) revReset() {
	var t0 time.Time
	if s.Prof != nil {
		t0 = time.Now()
	}
	s.Counters.Refactorizations++
	for i := 0; i < s.m; i++ {
		s.basis[i] = s.n + i
		s.inRow[s.n+i] = i
		s.vstat[s.n+i] = basic
	}
	for j := 0; j < s.n; j++ {
		s.inRow[j] = -1
		s.setNonbasicStart(j)
	}
	copy(s.d, s.c)
	s.status = StatusUnknown
	s.bland = false
	s.degRun = 0
	s.pCand = s.pCand[:0]
	s.pCur = 0
	s.dCand = s.dCand[:0]
	s.dCur = 0
	rv := s.rev
	for j := range rv.wts {
		rv.wts[j] = 1
	}
	rv.devexReset = false
	rv.betaStale = false
	if s.Prof != nil {
		s.Prof.Observe(trace.PhaseRefactorize, time.Since(t0).Nanoseconds())
	}
	s.revFactorize() // identity basis: always succeeds
	s.revRecomputeBeta()
}

// revFtranCol computes the entering tableau column B^{-1} a_q into
// rev.col (dense, position space).
func (s *Solver) revFtranCol(q int) {
	rv := s.rev
	col := rv.col
	for i := range col {
		col[i] = 0
	}
	if q < s.n {
		a := rv.a
		for t := a.ptr[q]; t < a.ptr[q+1]; t++ {
			col[a.row[t]] = a.val[t]
		}
	} else {
		col[q-s.n] = 1
	}
	rv.lu.ftran(col)
	s.Counters.FTRANs++
}

// revPivotRow computes tableau row r: rho = B^{-T} e_r, then
// alpha = rho^T [A|I] scattered across the rows rho touches. alpha is
// read back through alphaAt / apat.
func (s *Solver) revPivotRow(r int) {
	rv := s.rev
	rho := rv.rho
	for i := range rho {
		rho[i] = 0
	}
	rho[r] = 1
	rv.lu.btran(rho)
	s.Counters.BTRANs++
	if rv.agen == math.MaxInt32 {
		for j := range rv.aseen {
			rv.aseen[j] = 0
		}
		rv.agen = 0
	}
	rv.agen++
	rv.apat = rv.apat[:0]
	for i := 0; i < s.m; i++ {
		y := rho[i]
		if y == 0 {
			continue
		}
		rv.addAlpha(s.n+i, y) // logical column e_i
		rr := s.origRows[i]
		for k, j := range rr.idx {
			rv.addAlpha(j, y*rr.val[k])
		}
	}
}

func (rv *revisedState) addAlpha(j int, v float64) {
	if rv.aseen[j] == rv.agen {
		rv.alpha[j] += v
		return
	}
	rv.aseen[j] = rv.agen
	rv.alpha[j] = v
	rv.apat = append(rv.apat, int32(j))
}

// revRecomputeBeta recomputes all basic values from nonbasic values by
// one FTRAN of the aggregated nonbasic activity.
func (s *Solver) revRecomputeBeta() {
	rv := s.rev
	x := rv.col
	for i := range x {
		x[i] = 0
	}
	a := rv.a
	for j := 0; j < s.n; j++ {
		if s.vstat[j] == basic || s.nbVal[j] == 0 {
			continue
		}
		v := s.nbVal[j]
		for t := a.ptr[j]; t < a.ptr[j+1]; t++ {
			x[a.row[t]] -= a.val[t] * v
		}
	}
	for i := 0; i < s.m; i++ {
		if s.vstat[s.n+i] != basic && s.nbVal[s.n+i] != 0 {
			x[i] -= s.nbVal[s.n+i]
		}
	}
	rv.lu.ftran(x)
	s.Counters.FTRANs++
	copy(s.beta, x)
}

// revShiftNonbasic adjusts basic values after nonbasic j moved by
// delta: beta -= delta · B^{-1} a_j. While the factors are stale (bound
// edits right after Clone/Restore), the whole recomputation is deferred
// to revEnsure — one FTRAN for the batch instead of one per edit.
func (s *Solver) revShiftNonbasic(j int, delta float64) {
	rv := s.rev
	if rv.stale || rv.betaStale {
		rv.betaStale = true
		return
	}
	s.revFtranCol(j)
	col := rv.col
	for i := 0; i < s.m; i++ {
		if col[i] != 0 {
			s.beta[i] -= col[i] * delta
		}
	}
}

// revSetObjBasic applies an objective edit on basic variable j to the
// reduced costs: d -= dc · tab[r,:] with r = inRow[j], one BTRAN + row
// scatter. Returns false when the stale factors cannot be rebuilt (the
// caller resets instead).
func (s *Solver) revSetObjBasic(j int, dc float64) bool {
	if s.rev.stale && !s.revEnsure() {
		return false
	}
	s.revPivotRow(s.inRow[j])
	rv := s.rev
	for _, jj := range rv.apat {
		k := int(jj)
		if s.vstat[k] != basic {
			s.d[k] -= dc * rv.alpha[k]
		}
	}
	// basic reduced costs are zero by definition
	for i := 0; i < s.m; i++ {
		s.d[s.basis[i]] = 0
	}
	return true
}

// revRestoreDuals recomputes d = c - c_B^T B^{-1} [A|I] from scratch
// (phase-1 exit): y = B^{-T} c_B by one BTRAN, then a row scatter.
func (s *Solver) revRestoreDuals() {
	rv := s.rev
	y := rv.rho
	any := false
	for i := 0; i < s.m; i++ {
		y[i] = s.c[s.basis[i]]
		if y[i] != 0 {
			any = true
		}
	}
	copy(s.d, s.c)
	if any {
		rv.lu.btran(y)
		s.Counters.BTRANs++
		for i := 0; i < s.m; i++ {
			yi := y[i]
			if yi == 0 {
				continue
			}
			s.d[s.n+i] -= yi
			rr := s.origRows[i]
			for k, j := range rr.idx {
				s.d[j] -= yi * rr.val[k]
			}
		}
	}
	for i := 0; i < s.m; i++ {
		s.d[s.basis[i]] = 0
	}
}

// revPivotAgree cross-checks the pivot element as seen by the FTRAN'd
// column (col[r]) and the BTRAN'd row (alpha[q]). Disagreement flags a
// degraded eta file: the caller refactorizes and redoes the iteration.
func (s *Solver) revPivotAgree(r, q int) bool {
	cv, av := s.rev.col[r], s.rev.alphaAt(q)
	if math.Abs(cv) < pivTol {
		return false
	}
	scale := math.Abs(cv)
	if a := math.Abs(av); a > scale {
		scale = a
	}
	return math.Abs(cv-av) <= 1e-6*(1+scale)
}

// revRefactorDue reports whether the eta file has grown past the
// refactorization policy: a hard count bound, or more update fill than
// a fresh factorization is worth.
func (s *Solver) revRefactorDue() bool {
	f := s.rev.lu
	return f.nEtas() >= maxEtas || f.etaNNZ() > 2*f.luNNZ+s.m
}

// revPricePrimal selects the entering variable under devex pricing:
// among columns whose reduced cost is violated (primalViol > optTol),
// pick the largest viol²/weight. Candidate-list and rotating-window
// structure — and the full-wrap optimality certificate — are identical
// to the dense engine's pricePrimal; Bland's rule bypasses weights
// entirely.
func (s *Solver) revPricePrimal() int {
	if s.bland {
		for j := 0; j < s.ntot; j++ {
			if s.primalViol(j) > optTol {
				return j
			}
		}
		return -1
	}
	rv := s.rev
	if rv.devexReset {
		for j := range rv.wts {
			rv.wts[j] = 1
		}
		rv.devexReset = false
	}
	best, bestScore := -1, 0.0
	keep := s.pCand[:0]
	for _, jj := range s.pCand {
		j := int(jj)
		if viol := s.primalViol(j); viol > optTol {
			keep = append(keep, jj)
			if score := viol * viol / rv.wts[j]; score > bestScore {
				best, bestScore = j, score
			}
		}
	}
	s.pCand = keep
	if best >= 0 {
		s.Counters.CandidateHits++
		return best
	}
	window := s.ntot / 8
	if window < minWindow {
		window = minWindow
	}
	for scanned := 0; scanned < s.ntot; {
		s.Counters.WindowScans++
		for k := 0; k < window && scanned < s.ntot; k++ {
			j := s.pCur
			if s.pCur++; s.pCur == s.ntot {
				s.pCur = 0
			}
			scanned++
			if viol := s.primalViol(j); viol > optTol {
				if len(s.pCand) < candCap {
					s.pCand = append(s.pCand, int32(j))
				}
				if score := viol * viol / rv.wts[j]; score > bestScore {
					best, bestScore = j, score
				}
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1 // full wrap, nothing violated: optimal
}

// revRatioPrimal is ratioPrimal reading the FTRAN'd entering column
// instead of a tableau column; rows are scanned in ascending order with
// the dense engine's exact tie rules, so leaving-row selection is
// deterministic.
func (s *Solver) revRatioPrimal(q int, sigma float64) (leave int, step float64, hitUpper, flip bool) {
	col := s.rev.col
	step = math.Inf(1)
	if !math.IsInf(s.hi[q], 1) && !math.IsInf(s.lo[q], -1) {
		step = s.hi[q] - s.lo[q]
		flip = true
	}
	leave = -1
	bestPiv := 0.0
	for i := 0; i < s.m; i++ {
		a := col[i]
		if a > -pivTol && a < pivTol {
			continue
		}
		rate := -a * sigma
		b := s.basis[i]
		var room float64
		var hitsUpper bool
		if rate > 0 {
			if math.IsInf(s.hi[b], 1) {
				continue
			}
			room = s.hi[b] - s.beta[i]
			hitsUpper = true
		} else {
			if math.IsInf(s.lo[b], -1) {
				continue
			}
			room = s.beta[i] - s.lo[b]
			hitsUpper = false
		}
		if room < 0 {
			room = 0
		}
		r := room / math.Abs(rate)
		better := false
		switch {
		case r < step-tieTol:
			better = true
		case r < step+tieTol && leave < 0:
			better = true
		case r < step+tieTol && leave >= 0:
			if s.bland {
				better = s.basis[i] < s.basis[leave]
			} else {
				aa := math.Abs(a)
				switch {
				case aa > bestPiv+tieTol:
					better = true
				case aa > bestPiv-tieTol:
					better = s.basis[i] < s.basis[leave]
				}
			}
		}
		if better {
			leave, step, hitUpper, flip = i, r, hitsUpper, false
			bestPiv = math.Abs(a)
		}
	}
	if leave < 0 && flip {
		return -1, step, false, true
	}
	return leave, step, hitUpper, false
}

// revRatioDual is ratioDual reading the scattered pivot row alpha; the
// column scan stays a full ascending sweep (exactly the dense cost), so
// entering-column selection is deterministic.
func (s *Solver) revRatioDual(r int, below bool) int {
	rv := s.rev
	q := -1
	bestRatio := math.Inf(1)
	bestPiv := 0.0
	for j := 0; j < s.ntot; j++ {
		if s.vstat[j] == basic || s.lo[j] == s.hi[j] {
			continue
		}
		a := rv.alphaAt(j)
		if a > -pivTol && a < pivTol {
			continue
		}
		eligible := false
		switch s.vstat[j] {
		case atLower:
			eligible = (below && a < 0) || (!below && a > 0)
		case atUpper:
			eligible = (below && a > 0) || (!below && a < 0)
		case atFree:
			eligible = true
		}
		if !eligible {
			continue
		}
		ratio := math.Abs(s.d[j] / a)
		if s.bland {
			if q < 0 || ratio < bestRatio-tieTol {
				q, bestRatio = j, ratio
			}
			continue
		}
		aa := math.Abs(a)
		switch {
		case ratio < bestRatio-tieTol:
			q, bestRatio, bestPiv = j, ratio, aa
		case ratio < bestRatio+tieTol && aa > bestPiv+tieTol:
			q, bestRatio, bestPiv = j, ratio, aa
		}
	}
	return q
}

// revPivot applies the pivot (entering q by delta, leaving row r to the
// hitUpper bound): basic values shift along the FTRAN'd column, reduced
// costs and devex weights update along the scattered pivot row, and the
// column is appended to the eta file. The caller checks revRefactorDue
// afterwards and refactorizes OUTSIDE its pivot-update profiling lap,
// so the factorize sub-phase is never double-counted under update.
func (s *Solver) revPivot(r, q int, delta float64, hitUpper bool) {
	rv := s.rev
	col := rv.col
	newVal := s.nbVal[q] + delta
	if delta != 0 {
		for i := 0; i < s.m; i++ {
			if col[i] != 0 {
				s.beta[i] -= col[i] * delta
			}
		}
	}
	leave := s.basis[r]
	if hitUpper {
		s.vstat[leave], s.nbVal[leave] = atUpper, s.hi[leave]
	} else {
		s.vstat[leave], s.nbVal[leave] = atLower, s.lo[leave]
	}
	s.inRow[leave] = -1
	s.basis[r] = q
	s.inRow[q] = r
	s.vstat[q] = basic
	s.beta[r] = newVal
	// reduced costs: d_j -= d_q · alpha_j/alpha_q over the pivot row
	aq := rv.alphaAt(q)
	dq := s.d[q]
	if dq != 0 && aq != 0 {
		f := dq / aq
		for _, jj := range rv.apat {
			j := int(jj)
			if s.vstat[j] != basic {
				s.d[j] -= f * rv.alpha[j]
			}
		}
	}
	s.d[q] = 0
	// devex reference weights, from the same pivot row
	if aq != 0 {
		wq := rv.wts[q]
		aq2 := aq * aq
		for _, jj := range rv.apat {
			j := int(jj)
			if s.vstat[j] == basic {
				continue
			}
			if cand := wq * rv.alpha[j] * rv.alpha[j] / aq2; cand > rv.wts[j] {
				rv.wts[j] = cand
				if cand > devexResetThresh {
					rv.devexReset = true
				}
			}
		}
		wl := wq / aq2
		if wl < 1 {
			wl = 1
		}
		rv.wts[leave] = wl
	}
	s.Counters.EtaNNZ += int64(rv.lu.appendEta(r, col))
}

// revPrimalSimplex is primalSimplex on the revised basis representation.
func (s *Solver) revPrimalSimplex() Status {
	limit := s.maxIter()
	prof := s.Prof
	var tl time.Time
	for iter := 0; iter < limit; iter++ {
		if s.expired(iter) {
			return StatusIterLimit
		}
		if prof != nil {
			tl = time.Now()
		}
		q := s.revPricePrimal()
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhasePricing, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if q < 0 {
			return StatusOptimal
		}
		sigma := 1.0
		if s.vstat[q] == atUpper || (s.vstat[q] == atFree && s.d[q] > 0) {
			sigma = -1
		}
		s.revFtranCol(q)
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhaseFTRAN, now.Sub(tl).Nanoseconds())
			tl = now
		}
		leave, step, hitUpper, flip := s.revRatioPrimal(q, sigma)
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhaseRatio, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if math.IsInf(step, 1) {
			return StatusUnbounded
		}
		if flip {
			s.Iterations++
			s.noteDegenerate(step)
			col := s.rev.col
			delta := sigma * step
			for i := 0; i < s.m; i++ {
				if col[i] != 0 {
					s.beta[i] -= col[i] * delta
				}
			}
			if sigma > 0 {
				s.vstat[q], s.nbVal[q] = atUpper, s.hi[q]
			} else {
				s.vstat[q], s.nbVal[q] = atLower, s.lo[q]
			}
			if prof != nil {
				prof.Observe(trace.PhaseUpdate, time.Since(tl).Nanoseconds())
			}
			continue
		}
		s.revPivotRow(leave)
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhaseBTRAN, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if !s.revPivotAgree(leave, q) && s.rev.lu.nEtas() > 0 {
			// eta file has drifted: rebuild exact factors and redo the
			// iteration from them
			if !s.revFactorize() {
				return StatusIterLimit
			}
			continue
		}
		s.Iterations++
		s.noteDegenerate(step)
		s.revPivot(leave, q, sigma*step, hitUpper)
		if prof != nil {
			prof.Observe(trace.PhaseUpdate, time.Since(tl).Nanoseconds())
		}
		if s.revRefactorDue() && !s.revFactorize() {
			return StatusIterLimit
		}
	}
	return StatusIterLimit
}

// revDualSimplex is dualSimplex on the revised basis representation.
// Row pricing is shared with the dense engine (priceDual never touches
// the tableau); the pivot row comes from one BTRAN, and an
// infeasibility verdict's multipliers are the BTRAN'd unit vector
// itself, certified by the shared certifyRay.
func (s *Solver) revDualSimplex() Status {
	limit := s.maxIter()
	prof := s.Prof
	var tl time.Time
	for iter := 0; iter < limit; iter++ {
		if s.expired(iter) {
			return StatusIterLimit
		}
		if prof != nil {
			tl = time.Now()
		}
		r, below := s.priceDual()
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhasePricing, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if r < 0 {
			return StatusOptimal
		}
		s.revPivotRow(r)
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhaseBTRAN, now.Sub(tl).Nanoseconds())
			tl = now
		}
		q := s.revRatioDual(r, below)
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhaseRatio, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if q < 0 {
			if s.rev.lu.nEtas() > 0 {
				// never conclude infeasibility off eta-file arithmetic:
				// rebuild exact factors and re-derive the row first
				if !s.revFactorize() {
					return StatusIterLimit
				}
				continue
			}
			s.Counters.FarkasChecks++
			certified := s.certifyRay(s.rev.rho)
			if prof != nil {
				prof.Observe(trace.PhaseFarkas, time.Since(tl).Nanoseconds())
			}
			if certified {
				return StatusInfeasible
			}
			s.Counters.FarkasRejected++
			return statusSuspect
		}
		s.revFtranCol(q)
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhaseFTRAN, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if !s.revPivotAgree(r, q) && s.rev.lu.nEtas() > 0 {
			if !s.revFactorize() {
				return StatusIterLimit
			}
			continue
		}
		b := s.basis[r]
		var target float64
		if below {
			target = s.lo[b]
		} else {
			target = s.hi[b]
		}
		a := s.rev.col[r]
		delta := (s.beta[r] - target) / a
		s.Iterations++
		s.noteDegenerate(math.Abs(delta))
		s.revPivot(r, q, delta, !below)
		if prof != nil {
			prof.Observe(trace.PhaseUpdate, time.Since(tl).Nanoseconds())
		}
		if s.revRefactorDue() && !s.revFactorize() {
			return StatusIterLimit
		}
	}
	return StatusIterLimit
}
