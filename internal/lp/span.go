package lp

import "repro/internal/trace"

// AnnotateSpan copies the engine counters onto sp as numeric span
// attributes — the bridge between the LP engine's internals and the
// span tree of an observed solve (the root-lp and search spans carry
// them). Zero counters are skipped so dense-engine spans don't list
// the revised engine's fields; a nil span (spans off) costs a single
// pointer compare.
func (c *Counters) AnnotateSpan(sp *trace.Span) {
	if sp == nil {
		return
	}
	set := func(k string, v int64) {
		if v != 0 {
			sp.SetNum(k, float64(v))
		}
	}
	set("refactorizations", c.Refactorizations)
	set("farkas_checks", c.FarkasChecks)
	set("farkas_rejected", c.FarkasRejected)
	set("window_scans", c.WindowScans)
	set("candidate_hits", c.CandidateHits)
	set("factorizations", c.Factorizations)
	set("ftrans", c.FTRANs)
	set("btrans", c.BTRANs)
	set("eta_nnz", c.EtaNNZ)
	set("basis_nnz", c.BasisNNZ)
	set("factor_nnz", c.FactorNNZ)
}
