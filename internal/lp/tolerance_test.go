package lp

import (
	"math"
	"testing"
)

// TestPresolveToleranceConsistency is the regression for the presolve
// tolerance bug: bound propagation used a private eps = 1e-9 while the
// rest of presolve (and the simplex's feasibility judgment) works at
// feasTol = 1e-7, so "improvements" in the 1e-9..1e-7 gap — below the
// solver's resolution — were applied and churned extra rounds. The two
// deltas here straddle that gap: the sub-feasTol one must now be
// ignored, the significant one still applied.
func TestPresolveToleranceConsistency(t *testing.T) {
	build := func(delta float64) *Problem {
		p := &Problem{}
		x0 := p.AddVar("x0", 0, 0, 1)
		x1 := p.AddVar("x1", 0, 0, 1)
		// propagation implies x0 <= 1-delta and x1 <= 1-delta
		if err := p.AddLE("cap", []int{x0, x1}, []float64{1, 1}, 1-delta); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// an improvement below the solver's resolution must not be applied
	p := build(1e-8)
	res := p.Presolve()
	if res.BoundsTightened != 0 {
		t.Fatalf("sub-feasTol improvement applied: %+v", res)
	}
	if _, hi := p.Bounds(0); hi != 1 {
		t.Fatalf("bound moved below the solver's resolution: hi = %v", hi)
	}

	// a genuinely significant improvement still propagates
	p = build(1e-4)
	res = p.Presolve()
	if res.BoundsTightened != 2 {
		t.Fatalf("significant improvement not applied: %+v", res)
	}
	if _, hi := p.Bounds(0); hi >= 1-1e-5 {
		t.Fatalf("bound not tightened: hi = %v", hi)
	}

	// singleton conversion judges significance at the same feasTol
	p = &Problem{}
	p.AddVar("x", 0, 0, 1)
	if err := p.AddLE("s", []int{0}, []float64{1}, 1-1e-8); err != nil {
		t.Fatal(err)
	}
	if res := p.Presolve(); res.BoundsTightened != 0 || res.RowsRemoved != 1 {
		t.Fatalf("singleton applied a sub-feasTol bound: %+v", res)
	}
}

// bealeSolver builds Beale's classic cycling LP: under a naive
// most-negative/first-tie pivot rule the simplex cycles forever on its
// degenerate vertex. The optimum is x = (1/25, 0, 1, 0) with objective
// -1/20.
func bealeSolver(t *testing.T) *Solver {
	t.Helper()
	p := &Problem{}
	x1 := p.AddVar("x1", -0.75, 0, Inf)
	x2 := p.AddVar("x2", 150, 0, Inf)
	x3 := p.AddVar("x3", -0.02, 0, Inf)
	x4 := p.AddVar("x4", 6, 0, Inf)
	if err := p.AddLE("r1", []int{x1, x2, x3, x4}, []float64{0.25, -60, -1.0 / 25, 9}, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLE("r2", []int{x1, x2, x3, x4}, []float64{0.5, -90, -1.0 / 50, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLE("r3", []int{x3}, []float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDegenerateTieBreakTerminates is the cycling regression for the
// ratio-test tie handling: Beale's example must reach the optimum in a
// bounded number of pivots instead of cycling on its degenerate vertex.
func TestDegenerateTieBreakTerminates(t *testing.T) {
	s := bealeSolver(t)
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v, want optimal", st)
	}
	if got := s.Objective(); math.Abs(got-(-0.05)) > 1e-9 {
		t.Fatalf("objective %v, want -0.05", got)
	}
	if s.Iterations > 100 {
		t.Fatalf("suspiciously many pivots on a 3x4 LP: %d", s.Iterations)
	}
}

// TestTieBreakDeterministicUnderNoise pins the fixed tie-break rule:
// ties in the ratio test break toward the lowest basis index unless a
// pivot magnitude is DECISIVELY larger (beyond tieTol), so coefficient
// noise far below tieTol — the kind a cloned worker's re-updated
// tableau accumulates — cannot reorder pivots. The clean and the
// noise-perturbed problem must pivot identically: same iteration
// count, same terminal basis.
func TestTieBreakDeterministicUnderNoise(t *testing.T) {
	build := func(noise float64) *Solver {
		p := &Problem{}
		x0 := p.AddVar("x0", -1, 0, Inf)
		x1 := p.AddVar("x1", -1, 0, Inf)
		// duplicate capacity rows: every ratio test on them ties, with
		// equal pivot magnitudes up to the injected noise
		if err := p.AddLE("capA", []int{x0, x1}, []float64{1, 1}, 1); err != nil {
			t.Fatal(err)
		}
		if err := p.AddLE("capB", []int{x0, x1}, []float64{1 + noise, 1}, 1); err != nil {
			t.Fatal(err)
		}
		if err := p.AddLE("capC", []int{x0, x1}, []float64{1, 1 + noise}, 1); err != nil {
			t.Fatal(err)
		}
		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	clean, noisy := build(0), build(1e-12)
	if st := clean.Solve(); st != StatusOptimal {
		t.Fatalf("clean status %v", st)
	}
	if st := noisy.Solve(); st != StatusOptimal {
		t.Fatalf("noisy status %v", st)
	}
	if clean.Iterations != noisy.Iterations {
		t.Fatalf("noise below tieTol changed the pivot sequence: %d vs %d iterations",
			clean.Iterations, noisy.Iterations)
	}
	cb, nb := clean.BasisRows(), noisy.BasisRows()
	for i := range cb {
		if cb[i] != nb[i] {
			t.Fatalf("terminal bases diverged at row %d: %v vs %v", i, cb, nb)
		}
	}
}

// TestCloneWarmStartPivotsMatchSerial re-optimizes the same bound
// change on a solver and on its clone: with the deterministic
// tie-break both must take the identical pivot path — the property the
// parallel branch-and-bound workers rely on for reproducible search
// trees.
func TestCloneWarmStartPivotsMatchSerial(t *testing.T) {
	serial := bealeSolver(t)
	if st := serial.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	worker := serial.Clone() // a clone's Iterations restart at zero
	base := serial.Iterations
	for _, hi := range []float64{0.5, 0.25, 1} {
		serial.SetBound(2, 0, hi)
		worker.SetBound(2, 0, hi)
		ss, ws := serial.ReOptimize(), worker.ReOptimize()
		if ss != ws {
			t.Fatalf("hi=%v: serial %v vs worker %v", hi, ss, ws)
		}
		if serial.Objective() != worker.Objective() {
			t.Fatalf("hi=%v: objectives diverged: %v vs %v", hi, serial.Objective(), worker.Objective())
		}
		sb, wb := serial.BasisRows(), worker.BasisRows()
		for i := range sb {
			if sb[i] != wb[i] {
				t.Fatalf("hi=%v: bases diverged at row %d: %v vs %v", hi, i, sb, wb)
			}
		}
	}
	if serial.Iterations-base != worker.Iterations {
		t.Fatalf("pivot counts diverged: serial %d vs worker %d", serial.Iterations-base, worker.Iterations)
	}
}

// TestCertifyOffSteadyStateAllocs pins the acceptance criterion that
// the certification hooks add no allocations when certification is
// off: warm-started re-optimization cycles that cross an infeasibility
// verdict — the path that exercises farkasCertified's capture gate —
// stay allocation-free with CaptureFarkas at its default false.
func TestCertifyOffSteadyStateAllocs(t *testing.T) {
	s := buildReoptProblem(t)
	if s.CaptureFarkas {
		t.Fatal("CaptureFarkas must default to off")
	}
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("solve status %v", st)
	}
	cycle := func() {
		// tighten x0's domain above the row capacity: infeasible, so the
		// dual simplex runs Farkas certification with capture off
		s.SetBound(0, 11, 12)
		if st := s.ReOptimize(); st != StatusInfeasible {
			t.Fatalf("re-optimize status %v, want infeasible", st)
		}
		if ray := s.FarkasRay(); ray != nil {
			t.Fatalf("ray captured with CaptureFarkas off: %v", ray)
		}
		s.SetBound(0, 0, 6)
		if st := s.ReOptimize(); st != StatusOptimal {
			t.Fatalf("re-optimize status %v, want optimal", st)
		}
	}
	for i := 0; i < 8; i++ {
		cycle() // warm up scratch buffers
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("certify-off re-optimize allocated %v per cycle, want 0", allocs)
	}
}
