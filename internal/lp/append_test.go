package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestAppendRowsMatchesColdSolve appends random extra rows to a solved
// random LP and cross-checks the warm re-optimization against a cold
// solve of the extended problem, on both engines.
func TestAppendRowsMatchesColdSolve(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := randLP(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for _, eng := range []Engine{EngineDense, EngineRevised} {
			s, err := NewSolverEngine(p, eng)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if s.Solve() != StatusOptimal {
				continue
			}
			n := p.NumVars()
			k := 1 + rng.Intn(3)
			cuts := make([]CutRow, k)
			pc := p.Clone()
			for c := range cuts {
				nz := 1 + rng.Intn(3)
				if nz > n {
					nz = n
				}
				idx := append([]int(nil), rng.Perm(n)[:nz]...)
				for a := 1; a < len(idx); a++ {
					for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
						idx[b], idx[b-1] = idx[b-1], idx[b]
					}
				}
				val := make([]float64, nz)
				for a := range val {
					for val[a] == 0 {
						val[a] = float64(rng.Intn(9)-4) / 2
					}
				}
				rhs := float64(rng.Intn(41)-20) / 2
				cuts[c] = CutRow{Name: "extra", Idx: idx, Val: val, Lo: math.Inf(-1), Hi: rhs}
				if err := pc.AddRow("extra", idx, val, math.Inf(-1), rhs); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			if err := s.AppendRows(cuts); err != nil {
				t.Fatalf("seed %d engine %v: AppendRows: %v", seed, eng, err)
			}
			warmStatus := s.ReOptimize()
			cold, err := NewSolverEngine(pc, eng)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			coldStatus := cold.Solve()
			if warmStatus != coldStatus {
				t.Fatalf("seed %d engine %v: warm append status %v, cold solve %v", seed, eng, warmStatus, coldStatus)
			}
			if warmStatus == StatusOptimal {
				zw, zc := s.Objective(), cold.Objective()
				if math.Abs(zw-zc) > 1e-6*(1+math.Abs(zc)) {
					t.Fatalf("seed %d engine %v: warm objective %v, cold %v", seed, eng, zw, zc)
				}
				if err := pc.Feasible(s.Solution(), 1e-6); err != nil {
					t.Fatalf("seed %d engine %v: warm solution infeasible: %v", seed, eng, err)
				}
			}
		}
	}
}

// TestAppendRowsCloneIsolation verifies the copy-on-append contract:
// appending rows to a parent must not disturb a Clone taken earlier,
// which shares the original row slice.
func TestAppendRowsCloneIsolation(t *testing.T) {
	p := randLP(7)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != StatusOptimal {
		t.Skip("seed 7 not optimal")
	}
	want := s.Objective()
	c := s.Clone()
	if err := s.AppendRows([]CutRow{{Name: "tight", Idx: []int{0}, Val: []float64{1}, Lo: math.Inf(-1), Hi: s.X(0) - 1}}); err != nil {
		t.Fatal(err)
	}
	s.ReOptimize()
	if _, m := s.Dims(); m != p.NumRows()+1 {
		t.Fatalf("parent rows = %d, want %d", m, p.NumRows()+1)
	}
	if st := c.Solve(); st != StatusOptimal {
		t.Fatalf("clone re-solve: %v", st)
	}
	if got := c.Objective(); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("clone objective %v, want %v", got, want)
	}
	if _, m := c.Dims(); m != p.NumRows() {
		t.Fatalf("clone rows = %d, want %d", m, p.NumRows())
	}
}

// randBinaryLP builds a random pure-binary minimization with negative
// objective pressure and positive knapsack-style LE rows, the shape
// that makes the LP relaxation fractional.
func randBinaryLP(seed int64) (*Problem, []bool) {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(7) // <= 10: brute force is 2^n
	p := &Problem{}
	isInt := make([]bool, n)
	for j := 0; j < n; j++ {
		p.AddBinary("", -float64(1+rng.Intn(10)))
		isInt[j] = true
	}
	m := 2 + rng.Intn(4)
	for i := 0; i < m; i++ {
		idx := make([]int, 0, n)
		val := make([]float64, 0, n)
		tot := 0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			a := 1 + rng.Intn(7)
			idx = append(idx, j)
			val = append(val, float64(a))
			tot += a
		}
		if len(idx) < 2 {
			continue
		}
		rhs := 1 + rng.Intn(tot)
		if err := p.AddLE("", idx, val, float64(rhs)); err != nil {
			panic(err)
		}
	}
	return p, isInt
}

// TestGomoryCutsValid brute-forces every 0-1 point of random binary
// problems and asserts that each generated Gomory cut is satisfied by
// every integer-feasible point — the soundness contract — and violated
// by the fractional LP optimum it was separated from.
func TestGomoryCutsValid(t *testing.T) {
	cutsSeen := 0
	for seed := int64(0); seed < 400; seed++ {
		p, isInt := randBinaryLP(seed)
		s, err := NewSolverEngine(p, EngineDense)
		if err != nil {
			t.Fatal(err)
		}
		if s.Solve() != StatusOptimal {
			continue
		}
		cuts := s.GomoryCuts(isInt, 8)
		if len(cuts) == 0 {
			continue
		}
		cutsSeen += len(cuts)
		xstar := s.Solution()
		for _, c := range cuts {
			lhs := 0.0
			for t2, j := range c.Idx {
				lhs += c.Val[t2] * xstar[j]
			}
			if lhs >= c.Lo {
				t.Errorf("seed %d: cut %s not violated by LP point (lhs %v >= lo %v)", seed, c.Name, lhs, c.Lo)
			}
		}
		n := p.NumVars()
		x := make([]float64, n)
		for bits := 0; bits < 1<<n; bits++ {
			for j := 0; j < n; j++ {
				x[j] = float64((bits >> j) & 1)
			}
			if p.Feasible(x, 1e-9) != nil {
				continue
			}
			for _, c := range cuts {
				lhs := 0.0
				for t2, j := range c.Idx {
					lhs += c.Val[t2] * x[j]
				}
				if lhs < c.Lo-1e-6 {
					t.Fatalf("seed %d: cut %s cuts off integer point %v (lhs %v < lo %v)", seed, c.Name, x, lhs, c.Lo)
				}
			}
		}
	}
	if cutsSeen == 0 {
		t.Fatal("no Gomory cuts generated across 400 seeds; generator is dead")
	}
	t.Logf("verified %d Gomory cuts by brute force", cutsSeen)
}
