package lp

import "testing"

// buildReoptProblem returns a small LP whose bound flips force real
// warm-started pivoting: minimize -x0-x1 over x0+x1 <= 10 with
// per-variable upper bounds.
func buildReoptProblem(t *testing.T) *Solver {
	t.Helper()
	p := &Problem{}
	x0 := p.AddVar("x0", -1, 0, 6)
	x1 := p.AddVar("x1", -1, 0, 6)
	if err := p.AddRow("capacity", []int{x0, x1}, []float64{1, 1}, -Inf, 10); err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCountersMove(t *testing.T) {
	s := buildReoptProblem(t)
	if s.Counters.Refactorizations == 0 {
		t.Fatal("NewSolver's initial factorization not counted")
	}
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("solve status %v", st)
	}
	if got := s.Objective(); got != -10 {
		t.Fatalf("objective %v, want -10", got)
	}
	c := s.Counters
	if c.WindowScans == 0 {
		t.Fatalf("no pricing windows scanned: %+v", c)
	}
	// a fresh Clone starts from zero, like Iterations
	cl := s.Clone()
	if cl.Counters != (Counters{}) || cl.Iterations != 0 {
		t.Fatalf("clone inherited counters: %+v", cl.Counters)
	}
	var sum Counters
	sum.Add(c)
	sum.Add(Counters{WindowScans: 1})
	if sum.WindowScans != c.WindowScans+1 {
		t.Fatalf("Add: %+v", sum)
	}
}

// TestReOptimizeSteadyStateAllocs pins the zero-allocation property of
// the warm-started pivot loop — the path branch and bound hammers — so
// the always-on counters (and any tracing changes) can never slip an
// allocation into it. The first cycles may grow scratch buffers
// (pricing candidates, pivot-row support); after that warm-up the loop
// must be allocation-free.
func TestReOptimizeSteadyStateAllocs(t *testing.T) {
	s := buildReoptProblem(t)
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("solve status %v", st)
	}
	cycle := func() {
		s.SetBound(0, 0, 3)
		if st := s.ReOptimize(); st != StatusOptimal {
			t.Fatalf("re-optimize status %v", st)
		}
		s.SetBound(0, 0, 6)
		if st := s.ReOptimize(); st != StatusOptimal {
			t.Fatalf("re-optimize status %v", st)
		}
	}
	for i := 0; i < 8; i++ {
		cycle() // warm up scratch buffers
	}
	before := s.Counters
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state ReOptimize allocated %v per cycle, want 0", allocs)
	}
	if s.Counters == before {
		t.Fatal("counters did not advance during the measured cycles")
	}
}
