package lp

import (
	"math"
	"math/rand"
	"testing"
)

// editSpec is one randomly generated LP plus an edit script, applied
// both to a warm solver (SetBound/SetRowBounds/SetObj + ReOptimize)
// and to a freshly built problem (cold Solve); the two must agree.
type editSpec struct {
	n, m   int
	obj    []float64
	lo, hi []float64
	rows   [][]float64 // dense coefficient rows
	rlo    []float64
	rhi    []float64
}

func (sp *editSpec) problem() *Problem {
	p := &Problem{}
	for j := 0; j < sp.n; j++ {
		p.AddVar("x", sp.obj[j], sp.lo[j], sp.hi[j])
	}
	for i := 0; i < sp.m; i++ {
		var idx []int
		var val []float64
		for j, v := range sp.rows[i] {
			if v != 0 {
				idx = append(idx, j)
				val = append(val, v)
			}
		}
		if err := p.AddRow("r", idx, val, sp.rlo[i], sp.rhi[i]); err != nil {
			panic(err)
		}
	}
	return p
}

func genSpec(rnd *rand.Rand) *editSpec {
	sp := &editSpec{n: 3 + rnd.Intn(5), m: 2 + rnd.Intn(5)}
	for j := 0; j < sp.n; j++ {
		sp.obj = append(sp.obj, float64(rnd.Intn(11)-5))
		sp.lo = append(sp.lo, 0)
		sp.hi = append(sp.hi, float64(1+rnd.Intn(4)))
	}
	for i := 0; i < sp.m; i++ {
		row := make([]float64, sp.n)
		for j := range row {
			if rnd.Intn(2) == 0 {
				row[j] = float64(rnd.Intn(7) - 3)
			}
		}
		sp.rows = append(sp.rows, row)
		switch rnd.Intn(3) {
		case 0: // <=
			sp.rlo = append(sp.rlo, math.Inf(-1))
			sp.rhi = append(sp.rhi, float64(rnd.Intn(10)))
		case 1: // >=
			sp.rlo = append(sp.rlo, float64(-rnd.Intn(6)))
			sp.rhi = append(sp.rhi, math.Inf(1))
		default: // range
			lo := float64(-rnd.Intn(4))
			sp.rlo = append(sp.rlo, lo)
			sp.rhi = append(sp.rhi, lo+float64(rnd.Intn(8)))
		}
	}
	return sp
}

// mutate applies a random edit script to the spec and returns the
// solver edits to replay on a warm solver.
func (sp *editSpec) mutate(rnd *rand.Rand) (apply func(*Solver)) {
	var edits []func(*Solver)
	for k := 0; k < 1+rnd.Intn(3); k++ {
		switch rnd.Intn(3) {
		case 0: // variable bound change
			j := rnd.Intn(sp.n)
			lo := float64(rnd.Intn(2))
			hi := lo + float64(rnd.Intn(3))
			sp.lo[j], sp.hi[j] = lo, hi
			edits = append(edits, func(s *Solver) { s.SetBound(j, lo, hi) })
		case 1: // row range change
			i := rnd.Intn(sp.m)
			switch {
			case math.IsInf(sp.rlo[i], -1): // <= row: move the rhs
				sp.rhi[i] = float64(rnd.Intn(12) - 2)
			case math.IsInf(sp.rhi[i], 1): // >= row: move the rhs
				sp.rlo[i] = float64(-rnd.Intn(8))
			default:
				sp.rlo[i] = float64(-rnd.Intn(5))
				sp.rhi[i] = sp.rlo[i] + float64(rnd.Intn(9))
			}
			lo, hi := sp.rlo[i], sp.rhi[i]
			edits = append(edits, func(s *Solver) { s.SetRowBounds(i, lo, hi) })
		default: // objective change
			j := rnd.Intn(sp.n)
			c := float64(rnd.Intn(13) - 6)
			sp.obj[j] = c
			edits = append(edits, func(s *Solver) { s.SetObj(j, c) })
		}
	}
	return func(s *Solver) {
		for _, e := range edits {
			e(s)
		}
	}
}

// TestWarmEditMatchesCold drives randomized edit scripts through the
// live-solver editors and checks the warm ReOptimize agrees with a
// cold solve of the edited problem on status and objective.
func TestWarmEditMatchesCold(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	warmWins := 0
	for trial := 0; trial < 500; trial++ {
		sp := genSpec(rnd)
		s, err := NewSolver(sp.problem())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s.Solve()
		apply := sp.mutate(rnd)
		apply(s)
		warmSt := s.ReOptimize()

		cold, err := NewSolver(sp.problem())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		coldSt := cold.Solve()
		if warmSt != coldSt {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warmSt, coldSt)
		}
		if warmSt == StatusOptimal {
			wo, co := s.Objective(), cold.Objective()
			if math.Abs(wo-co) > 1e-7*(1+math.Abs(co)) {
				t.Fatalf("trial %d: warm objective %v, cold %v", trial, wo, co)
			}
			if r := s.Residual(); r > 1e-6 {
				t.Fatalf("trial %d: warm residual %v", trial, r)
			}
			if s.Iterations <= cold.Iterations {
				warmWins++
			}
		}
	}
	if warmWins == 0 {
		t.Fatal("warm restarts never pivoted less than cold solves — warm start is not warm")
	}
}

// TestSetRowBoundsAccessors pins the logical-bound encoding round trip.
func TestSetRowBoundsAccessors(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 10)
	if err := p.AddLE("cap", []int{x}, []float64{1}, 4); err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := s.RowBounds(0); !math.IsInf(lo, -1) || hi != 4 {
		t.Fatalf("RowBounds = [%v,%v], want [-inf,4]", lo, hi)
	}
	s.SetRowBounds(0, 1, 3)
	if lo, hi := s.RowBounds(0); lo != 1 || hi != 3 {
		t.Fatalf("RowBounds after edit = [%v,%v], want [1,3]", lo, hi)
	}
	if n, m := s.Dims(); n != 1 || m != 1 {
		t.Fatalf("Dims = %d,%d", n, m)
	}
	s.SetObj(x, -2)
	if c := s.Obj(x); c != -2 {
		t.Fatalf("Obj after SetObj = %v", c)
	}
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	// minimize -2x with 1 <= x <= 3 binding through the row
	if got := s.Objective(); math.Abs(got-(-6)) > 1e-9 {
		t.Fatalf("objective %v, want -6", got)
	}
}

// TestSetObjWarmBasic exercises the basic-column branch of SetObj: the
// edited variable is basic at the optimum, so the incremental update
// must sweep the tableau row.
func TestSetObjWarmBasic(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", -1, 0, 10)
	y := p.AddVar("y", -1, 0, 10)
	if err := p.AddLE("r", []int{x, y}, []float64{1, 2}, 8); err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	// optimum: x=8 basic? either way, flip y's reward so the optimum moves
	s.SetObj(y, -5)
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("reopt status %v", st)
	}
	// minimize -x -5y, x+2y<=8, x,y in [0,10]: y=4, x=0 → -20
	if got := s.Objective(); math.Abs(got-(-20)) > 1e-9 {
		t.Fatalf("objective %v, want -20", got)
	}
}
