package lp

import "fmt"

// Clone returns an independent deep copy of the solver: tableau (or
// revised-engine state), basis, bounds, basic values, nonbasic statuses
// and reduced costs. Parent and clone may solve concurrently afterwards
// — only the immutable original row data (and, on the revised engine,
// its column-form copy) is shared. This is the primitive the parallel
// branch-and-bound workers in internal/milp build on: clone once per
// worker, then branch with SetBound/ReOptimize as usual.
//
// On the revised engine the LU factors themselves are not copied: the
// clone carries the full logical state (basis, beta, d, devex weights)
// and refactorizes lazily on first use. A refactorization is a rebuild,
// not a pivot, so the warm-start contract — re-optimizing an optimal
// state takes zero pivots — holds on both engines.
//
// The clone starts with Iterations = 0 and zeroed Counters so callers
// can attribute work per worker; MaxIter, Deadline, Ctx and Prof carry
// over (the phase profile's buckets are atomic, so parent and clone
// record into the shared profile safely).
func (s *Solver) Clone() *Solver {
	c := &Solver{
		n: s.n, m: s.m, ntot: s.ntot,
		c:        append([]float64(nil), s.c...),
		lo:       append([]float64(nil), s.lo...),
		hi:       append([]float64(nil), s.hi...),
		tab:      append([]float64(nil), s.tab...),
		beta:     append([]float64(nil), s.beta...),
		basis:    append([]int(nil), s.basis...),
		inRow:    append([]int(nil), s.inRow...),
		vstat:    append([]varStatus(nil), s.vstat...),
		nbVal:    append([]float64(nil), s.nbVal...),
		d:        append([]float64(nil), s.d...),
		origRows: s.origRows, // immutable after NewSolver
		status:   s.status,
		bland:    s.bland,
		degRun:   s.degRun,
		MaxIter:  s.MaxIter,
		Deadline: s.Deadline,
		Ctx:      s.Ctx,
		Prof:     s.Prof,
	}
	if s.rev != nil {
		rv := newRevisedState(s.n, s.m, s.rev.a) // column copy shared
		copy(rv.wts, s.rev.wts)
		rv.devexReset = s.rev.devexReset
		rv.stale = true // factorize lazily at first use
		c.rev = rv
	}
	return c
}

// Snapshot captures the solver's bounds and basis so the exact state
// can be reinstated later with Restore. On the dense engine that
// includes the factorized tableau — which IS the basis representation —
// while the revised engine records the logical state (basis rows, basic
// values, reduced costs, devex weights) and lets Restore refactorize
// lazily. Unlike Clone, a Snapshot is not a usable solver; it is a
// reusable buffer, and restoring into the owning solver is allocation-
// free. The intended pattern is a worker that anchors itself once at a
// known-good state (say the solved root relaxation) and re-anchors
// before every subproblem instead of paying for a fresh Clone.
type Snapshot struct {
	n, m   int
	c      []float64
	lo, hi []float64
	tab    []float64
	beta   []float64
	basis  []int
	inRow  []int
	vstat  []varStatus
	nbVal  []float64
	d      []float64
	wts    []float64 // revised engine only; nil on dense
	status Status
	bland  bool
	degRun int
}

// Snapshot captures the current state into a new snapshot buffer.
func (s *Solver) Snapshot() *Snapshot {
	sn := &Snapshot{
		n: s.n, m: s.m,
		c:      append([]float64(nil), s.c...),
		lo:     append([]float64(nil), s.lo...),
		hi:     append([]float64(nil), s.hi...),
		tab:    append([]float64(nil), s.tab...),
		beta:   append([]float64(nil), s.beta...),
		basis:  append([]int(nil), s.basis...),
		inRow:  append([]int(nil), s.inRow...),
		vstat:  append([]varStatus(nil), s.vstat...),
		nbVal:  append([]float64(nil), s.nbVal...),
		d:      append([]float64(nil), s.d...),
		status: s.status,
		bland:  s.bland,
		degRun: s.degRun,
	}
	if s.rev != nil {
		sn.wts = append([]float64(nil), s.rev.wts...)
	}
	return sn
}

// Restore reinstates a state previously captured with Snapshot on this
// solver (or on the solver this one was cloned from). It copies into
// the solver's existing arrays without allocating; on the revised
// engine the factors are marked stale and rebuilt lazily at the next
// solve. Restore panics if the snapshot's dimensions do not match.
func (s *Solver) Restore(sn *Snapshot) {
	if sn.n != s.n || sn.m != s.m {
		panic(fmt.Sprintf("lp: Restore: snapshot is %dx%d, solver is %dx%d",
			sn.m, sn.n, s.m, s.n))
	}
	copy(s.c, sn.c)
	copy(s.lo, sn.lo)
	copy(s.hi, sn.hi)
	copy(s.tab, sn.tab)
	copy(s.beta, sn.beta)
	copy(s.basis, sn.basis)
	copy(s.inRow, sn.inRow)
	copy(s.vstat, sn.vstat)
	copy(s.nbVal, sn.nbVal)
	copy(s.d, sn.d)
	s.status = sn.status
	s.bland = sn.bland
	s.degRun = sn.degRun
	// pricing candidates refer to the replaced state; drop them
	s.pCand = s.pCand[:0]
	s.dCand = s.dCand[:0]
	if s.rev != nil {
		copy(s.rev.wts, sn.wts)
		s.rev.stale = true
		s.rev.betaStale = false // beta restored exactly above
	}
}
