package lp

import "math"

// This file is the linear-algebra kernel of the revised simplex engine:
// a sparse LU factorization of the basis (Gilbert–Peierls left-looking
// with partial pivoting), product-form eta updates appended per pivot,
// and the FTRAN/BTRAN solves every revised iteration is built from.
//
// Notation. The basis B has one column per row position i: the column
// of basis[i] in [A | I] (structural columns come from the CSC copy of
// A, the logical column of row i is e_i). The factorization computes
//
//	B·Q = P^{-1}·L·U
//
// with a row permutation P chosen by partial pivoting (pinv/prow) and a
// column order Q chosen before factorizing (cord: columns sorted by
// nonzero count, a cheap Markowitz-style fill heuristic). Then
//
//	FTRAN:  B^{-1}b  = Q·U^{-1}·L^{-1}·P·b, followed by the eta file
//	        in chronological order
//	BTRAN:  B^{-T}y  = P^T·L^{-T}·U^{-T}·Q^T·y, preceded by the eta
//	        transposes in reverse order
//
// Each pivot appends one eta E = I + (α−e_r)e_r^T (α the FTRAN'd
// entering column, r the leaving position), so B_k = B_0·E_1···E_k and
// only periodic refactorization rebuilds L/U. All solve loops skip
// zero-valued entries (value-based hyper-sparsity): a unit right-hand
// side typically touches a tiny fraction of the factor nonzeros.

// singTol is the smallest pivot magnitude the factorization accepts; a
// basis producing nothing larger is treated as numerically singular and
// the caller falls back to a fresh all-logical basis.
const singTol = 1e-11

// csc is a compressed-sparse-column copy of the structural matrix A,
// built once per solver. Immutable after construction, shared by
// clones.
type csc struct {
	ptr []int32 // n+1 column pointers
	row []int32 // row indices, ascending within a column
	val []float64
}

// buildCSC transposes the row-major origRows into column form.
func buildCSC(n int, rows []row) *csc {
	c := &csc{ptr: make([]int32, n+1)}
	nnz := 0
	for i := range rows {
		nnz += len(rows[i].idx)
		for _, j := range rows[i].idx {
			c.ptr[j+1]++
		}
	}
	for j := 0; j < n; j++ {
		c.ptr[j+1] += c.ptr[j]
	}
	c.row = make([]int32, nnz)
	c.val = make([]float64, nnz)
	next := make([]int32, n)
	for j := 0; j < n; j++ {
		next[j] = c.ptr[j]
	}
	for i := range rows {
		r := rows[i]
		for k, j := range r.idx {
			t := next[j]
			c.row[t] = int32(i)
			c.val[t] = r.val[k]
			next[j] = t + 1
		}
	}
	return c
}

// colNNZ returns the nonzero count of column j.
func (c *csc) colNNZ(j int) int { return int(c.ptr[j+1] - c.ptr[j]) }

// basisLU holds the factorized basis representation: LU factors with
// permutations, their transposes (for scatter-style BTRAN), and the
// eta file of pivots applied since the last factorization. All slices
// are grow-only scratch — refactorization reslices to length zero and
// appends into retained capacity, so the warm solve cycle allocates
// nothing once buffers have grown to their steady-state sizes.
type basisLU struct {
	m int

	// Column order and row permutation of the current factorization.
	cord []int32 // cord[k] = basis position factored k-th
	pinv []int32 // pinv[origRow] = pivot order, -1 while unpivoted
	prow []int32 // prow[k] = origRow pivoted k-th (inverse of pinv)

	// L: unit lower triangular, CSC by pivot order, implicit diagonal.
	// Row indices are original rows during factorization and are
	// remapped to pivot order at the end.
	lptr []int32
	lrow []int32
	lval []float64
	// U: upper triangular, CSC by pivot order, diagonal split out.
	uptr  []int32
	urow  []int32
	uval  []float64
	udiag []float64

	// Transposes of L and U (built at factorize time) so BTRAN runs as
	// forward/backward scatter with value skipping, like FTRAN.
	ltptr []int32
	ltrow []int32
	ltval []float64
	utptr []int32
	utrow []int32
	utval []float64

	// Eta file: eta e replaces position etaPos[e] with the FTRAN'd
	// entering column; etaPiv[e] is its pivot-position value and
	// etaIdx/etaVal (delimited by etaStart) the off-pivot entries.
	etaStart []int32
	etaPos   []int32
	etaPiv   []float64
	etaIdx   []int32
	etaVal   []float64

	// luNNZ is nnz(L)+nnz(U) including diagonals; basisNNZ the nonzero
	// count of the factorized basis columns (fill-in = luNNZ/basisNNZ).
	luNNZ    int
	basisNNZ int

	// scratch
	x    []float64 // dense work vector, original-row space
	w    []float64 // dense work vector, pivot-order space
	pat  []int32   // reach pattern, filled top..m-1
	stk  []int32   // DFS node stack
	pstk []int32   // DFS per-level child cursor
	flag []int32   // DFS visited marks, stamped with gen
	gen  int32
	cnt  []int32 // counting-sort / transpose scratch
}

func newBasisLU(m int) *basisLU {
	return &basisLU{
		m:    m,
		cord: make([]int32, m),
		pinv: make([]int32, m),
		prow: make([]int32, m),
		x:    make([]float64, m),
		w:    make([]float64, m),
		pat:  make([]int32, m),
		stk:  make([]int32, m),
		pstk: make([]int32, m),
		flag: make([]int32, m),
		cnt:  make([]int32, m+2),
	}
}

// nEtas returns the number of etas appended since the factorization.
func (f *basisLU) nEtas() int { return len(f.etaPos) }

// etaNNZ returns the off-pivot entry count of the eta file.
func (f *basisLU) etaNNZ() int { return len(f.etaIdx) }

// factorize rebuilds L/U from the basis columns, dropping the eta file.
// basisCol enumerates the column of basis position pos as (origRow,
// value) pairs via the provided append-style gather; it reports false
// when the basis is numerically singular (caller resets the basis).
func (f *basisLU) factorize(basis []int, n int, a *csc) bool {
	m := f.m
	// column order: nonzero count ascending, position ascending on ties
	// (stable counting sort — deterministic and allocation-free).
	cnt := f.cnt[:m+2]
	for i := range cnt {
		cnt[i] = 0
	}
	colNNZ := func(pos int) int {
		if v := basis[pos]; v < n {
			return a.colNNZ(v)
		}
		return 1
	}
	for pos := 0; pos < m; pos++ {
		cnt[colNNZ(pos)+1]++
	}
	for k := 1; k < len(cnt); k++ {
		cnt[k] += cnt[k-1]
	}
	for pos := 0; pos < m; pos++ {
		k := colNNZ(pos)
		f.cord[cnt[k]] = int32(pos)
		cnt[k]++
	}

	for i := 0; i < m; i++ {
		f.pinv[i] = -1
		f.flag[i] = 0
	}
	f.gen = 0
	f.lptr = append(f.lptr[:0], 0)
	f.lrow = f.lrow[:0]
	f.lval = f.lval[:0]
	f.uptr = append(f.uptr[:0], 0)
	f.urow = f.urow[:0]
	f.uval = f.uval[:0]
	f.udiag = f.udiag[:0]
	x := f.x
	basisNNZ := 0

	for k := 0; k < m; k++ {
		pos := int(f.cord[k])
		v := basis[pos]
		// gather column v of [A|I] and solve x = L^{-1} (column)
		f.gen++
		top := m
		if v < n {
			for t := a.ptr[v]; t < a.ptr[v+1]; t++ {
				top = f.reach(int(a.row[t]), top)
			}
			for t := a.ptr[v]; t < a.ptr[v+1]; t++ {
				x[a.row[t]] = a.val[t]
			}
			basisNNZ += a.colNNZ(v)
		} else {
			top = f.reach(v-n, top)
			x[v-n] = 1
			basisNNZ++
		}
		// sparse triangular solve in topological order: node i scatters
		// its completed L column into dependents
		for t := top; t < m; t++ {
			i := f.pat[t]
			ki := f.pinv[i]
			if ki < 0 {
				continue
			}
			xi := x[i]
			if xi == 0 {
				continue
			}
			for u := f.lptr[ki]; u < f.lptr[ki+1]; u++ {
				x[f.lrow[u]] -= f.lval[u] * xi
			}
		}
		// partial pivoting: largest magnitude among unpivoted rows,
		// ties broken toward the lowest original row (determinism)
		pivRow, pivAbs := int32(-1), 0.0
		for t := top; t < m; t++ {
			i := f.pat[t]
			if f.pinv[i] >= 0 {
				continue
			}
			if av := math.Abs(x[i]); av > pivAbs || (av == pivAbs && pivRow >= 0 && i < pivRow) {
				pivAbs, pivRow = av, i
			}
		}
		if pivRow < 0 || pivAbs < singTol {
			for t := top; t < m; t++ {
				x[f.pat[t]] = 0
			}
			return false
		}
		xp := x[pivRow]
		f.pinv[pivRow] = int32(k)
		f.prow[k] = pivRow
		f.udiag = append(f.udiag, xp)
		for t := top; t < m; t++ {
			i := f.pat[t]
			xi := x[i]
			x[i] = 0
			if xi == 0 || i == pivRow {
				continue
			}
			if ki := f.pinv[i]; ki >= 0 && ki < int32(k) {
				f.urow = append(f.urow, ki)
				f.uval = append(f.uval, xi)
			} else if ki < 0 {
				f.lrow = append(f.lrow, i) // original row; remapped below
				f.lval = append(f.lval, xi/xp)
			}
		}
		f.lptr = append(f.lptr, int32(len(f.lrow)))
		f.uptr = append(f.uptr, int32(len(f.urow)))
	}
	// remap L's row indices into pivot order
	for t := range f.lrow {
		f.lrow[t] = f.pinv[f.lrow[t]]
	}
	f.luNNZ = len(f.lrow) + len(f.urow) + m
	f.basisNNZ = basisNNZ
	f.buildTransposes()
	f.etaStart = append(f.etaStart[:0], 0)
	f.etaPos = f.etaPos[:0]
	f.etaPiv = f.etaPiv[:0]
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
	return true
}

// reach pushes the rows reachable from origRow i (through completed L
// columns) onto pat[top-1:...] in topological order; returns the new
// top. Nonrecursive depth-first search with a resumable child cursor,
// the cs_dfs scheme.
func (f *basisLU) reach(i int, top int) int {
	if f.flag[i] == f.gen {
		return top
	}
	head := 0
	f.stk[0] = int32(i)
	for head >= 0 {
		i := f.stk[head]
		if f.flag[i] != f.gen {
			f.flag[i] = f.gen
			if k := f.pinv[i]; k >= 0 {
				f.pstk[head] = f.lptr[k]
			} else {
				f.pstk[head] = 0
			}
		}
		descended := false
		if k := f.pinv[i]; k >= 0 {
			for t := f.pstk[head]; t < f.lptr[k+1]; t++ {
				c := f.lrow[t]
				if f.flag[c] != f.gen {
					f.pstk[head] = t + 1
					head++
					f.stk[head] = c
					descended = true
					break
				}
			}
		}
		if !descended {
			top--
			f.pat[top] = i
			head--
		}
	}
	return top
}

// buildTransposes rebuilds the CSC transposes of L and U used by BTRAN.
func (f *basisLU) buildTransposes() {
	m := f.m
	cnt := f.cnt[:m+1]

	f.ltrow = grow32(f.ltrow, len(f.lrow))
	f.ltval = growF(f.ltval, len(f.lval))
	f.ltptr = grow32(f.ltptr, m+1)
	for i := range cnt {
		cnt[i] = 0
	}
	for _, r := range f.lrow {
		cnt[r]++
	}
	f.ltptr[0] = 0
	for r := 0; r < m; r++ {
		f.ltptr[r+1] = f.ltptr[r] + cnt[r]
		cnt[r] = f.ltptr[r]
	}
	for k := 0; k < m; k++ {
		for t := f.lptr[k]; t < f.lptr[k+1]; t++ {
			r := f.lrow[t]
			f.ltrow[cnt[r]] = int32(k)
			f.ltval[cnt[r]] = f.lval[t]
			cnt[r]++
		}
	}

	f.utrow = grow32(f.utrow, len(f.urow))
	f.utval = growF(f.utval, len(f.uval))
	f.utptr = grow32(f.utptr, m+1)
	for i := range cnt {
		cnt[i] = 0
	}
	for _, r := range f.urow {
		cnt[r]++
	}
	f.utptr[0] = 0
	for r := 0; r < m; r++ {
		f.utptr[r+1] = f.utptr[r] + cnt[r]
		cnt[r] = f.utptr[r]
	}
	for k := 0; k < m; k++ {
		for t := f.uptr[k]; t < f.uptr[k+1]; t++ {
			r := f.urow[t]
			f.utrow[cnt[r]] = int32(k)
			f.utval[cnt[r]] = f.uval[t]
			cnt[r]++
		}
	}
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// ftran solves B x_out = x in place; x is a dense vector in row/position
// space. Zero entries are skipped throughout, so a sparse right-hand
// side (an entering column) touches only the factor entries its
// nonzeros reach.
func (f *basisLU) ftran(x []float64) {
	m := f.m
	w := f.w
	for k := 0; k < m; k++ {
		w[k] = x[f.prow[k]] // P·x
	}
	for k := 0; k < m; k++ { // L solve, forward scatter
		xk := w[k]
		if xk == 0 {
			continue
		}
		for t := f.lptr[k]; t < f.lptr[k+1]; t++ {
			w[f.lrow[t]] -= f.lval[t] * xk
		}
	}
	for k := m - 1; k >= 0; k-- { // U solve, backward scatter
		xk := w[k]
		if xk == 0 {
			continue
		}
		xk /= f.udiag[k]
		w[k] = xk
		for t := f.uptr[k]; t < f.uptr[k+1]; t++ {
			w[f.urow[t]] -= f.uval[t] * xk
		}
	}
	for k := 0; k < m; k++ {
		x[f.cord[k]] = w[k] // Q·w
	}
	// eta file, chronological: x_r /= α_r, then x_j -= α_j·x_r
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		xr := x[r]
		if xr == 0 {
			continue
		}
		xr /= f.etaPiv[e]
		x[r] = xr
		for t := f.etaStart[e]; t < f.etaStart[e+1]; t++ {
			x[f.etaIdx[t]] -= f.etaVal[t] * xr
		}
	}
}

// btran solves B^T y_out = y in place; y is a dense vector in
// row/position space.
func (f *basisLU) btran(y []float64) {
	// eta transposes, reverse chronological:
	// y_r ← (y_r − Σ_{j≠r} α_j·y_j)/α_r
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		acc := y[r]
		for t := f.etaStart[e]; t < f.etaStart[e+1]; t++ {
			if v := y[f.etaIdx[t]]; v != 0 {
				acc -= f.etaVal[t] * v
			}
		}
		y[r] = acc / f.etaPiv[e]
	}
	m := f.m
	w := f.w
	for k := 0; k < m; k++ {
		w[k] = y[f.cord[k]] // Q^T·y
	}
	for k := 0; k < m; k++ { // U^T solve, forward scatter
		wk := w[k]
		if wk == 0 {
			continue
		}
		wk /= f.udiag[k]
		w[k] = wk
		for t := f.utptr[k]; t < f.utptr[k+1]; t++ {
			w[f.utrow[t]] -= f.utval[t] * wk
		}
	}
	for k := m - 1; k >= 0; k-- { // L^T solve, backward scatter
		wk := w[k]
		if wk == 0 {
			continue
		}
		for t := f.ltptr[k]; t < f.ltptr[k+1]; t++ {
			w[f.ltrow[t]] -= f.ltval[t] * wk
		}
	}
	for k := 0; k < m; k++ {
		y[f.prow[k]] = w[k] // P^T·w
	}
}

// appendEta records the pivot (position r, FTRAN'd entering column col)
// as a product-form update; returns the number of off-pivot entries
// appended. col is dense in position space.
func (f *basisLU) appendEta(r int, col []float64) int {
	added := 0
	for i, v := range col {
		if v != 0 && i != r {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, v)
			added++
		}
	}
	f.etaPos = append(f.etaPos, int32(r))
	f.etaPiv = append(f.etaPiv, col[r])
	f.etaStart = append(f.etaStart, int32(len(f.etaIdx)))
	return added
}
