// Package lp implements a dense bounded-variable simplex solver for
// linear programs of the form
//
//	minimize   c·x
//	subject to Lo_i <= a_i·x <= Hi_i   (range constraints)
//	           l_j  <= x_j  <= u_j     (variable bounds)
//
// It provides primal and dual simplex pivoting with warm starts after
// bound changes, which is the substrate the branch-and-bound MILP
// solver in internal/milp is built on — the role lp_solve plays in
// Kaul & Vemuri (DATE 1998).
//
// The implementation keeps a full dense tableau (basis inverse times
// the constraint matrix). Model sizes in the reproduced paper peak
// around 1.2k structural variables and a few thousand rows, where a
// dense tableau is simple, predictable and fast enough.
package lp

import (
	"fmt"
	"math"
)

// Inf is positive infinity, for unbounded sides of constraints and
// variables.
var Inf = math.Inf(1)

// Problem is a linear program under construction. The zero value is an
// empty minimization problem.
type Problem struct {
	names  []string
	obj    []float64
	lo, hi []float64

	rows     []row
	rowNames []string
}

type row struct {
	idx []int
	val []float64
	lo  float64
	hi  float64
}

// AddVar appends a variable with the given objective coefficient and
// bounds, returning its column index.
func (p *Problem) AddVar(name string, obj, lo, hi float64) int {
	p.names = append(p.names, name)
	p.obj = append(p.obj, obj)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	return len(p.obj) - 1
}

// AddBinary appends a 0-1 variable relaxed to [0,1].
func (p *Problem) AddBinary(name string, obj float64) int {
	return p.AddVar(name, obj, 0, 1)
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// VarName returns the name of variable j.
func (p *Problem) VarName(j int) string { return p.names[j] }

// RowName returns the name of row i.
func (p *Problem) RowName(i int) string { return p.rowNames[i] }

// RowNNZ returns the number of nonzero coefficients in row i.
func (p *Problem) RowNNZ(i int) int { return len(p.rows[i].idx) }

// Row exposes the sparse coefficients of row i: column indices and
// values, in ascending index order. The slices are the problem's own
// storage — callers must treat them as read-only. Together with
// NumVars/NumRows/Obj/Bounds/RowRange this makes *Problem satisfy the
// exact-certification layer's Source interface.
func (p *Problem) Row(i int) (idx []int, val []float64) {
	return p.rows[i].idx, p.rows[i].val
}

// Bounds returns the bounds of variable j.
func (p *Problem) Bounds(j int) (lo, hi float64) { return p.lo[j], p.hi[j] }

// SetVarBounds replaces the bounds of variable j. Solvers snapshot a
// problem at NewSolver time, so changing bounds affects only solvers
// created afterwards.
func (p *Problem) SetVarBounds(j int, lo, hi float64) error {
	if j < 0 || j >= len(p.obj) {
		return fmt.Errorf("lp: SetVarBounds: variable %d out of range", j)
	}
	if lo > hi {
		return fmt.Errorf("lp: SetVarBounds: empty range [%v,%v]", lo, hi)
	}
	p.lo[j], p.hi[j] = lo, hi
	return nil
}

// Obj returns the objective coefficient of variable j.
func (p *Problem) Obj(j int) float64 { return p.obj[j] }

// AddRow appends the range constraint lo <= sum coef_j x_j <= hi.
// Duplicate indices in idx are accumulated. Use Inf / -Inf for
// one-sided constraints and lo == hi for equalities.
func (p *Problem) AddRow(name string, idx []int, coef []float64, lo, hi float64) error {
	if len(idx) != len(coef) {
		return fmt.Errorf("lp: AddRow %q: %d indices vs %d coefficients", name, len(idx), len(coef))
	}
	if lo > hi {
		return fmt.Errorf("lp: AddRow %q: empty range [%v,%v]", name, lo, hi)
	}
	acc := map[int]float64{}
	for k, j := range idx {
		if j < 0 || j >= len(p.obj) {
			return fmt.Errorf("lp: AddRow %q: variable %d out of range", name, j)
		}
		acc[j] += coef[k]
	}
	r := row{lo: lo, hi: hi}
	// deterministic order
	for j := 0; j < len(p.obj); j++ {
		if v, ok := acc[j]; ok && v != 0 {
			r.idx = append(r.idx, j)
			r.val = append(r.val, v)
		}
	}
	p.rows = append(p.rows, r)
	p.rowNames = append(p.rowNames, name)
	return nil
}

// AddLE appends sum coef_j x_j <= rhs.
func (p *Problem) AddLE(name string, idx []int, coef []float64, rhs float64) error {
	return p.AddRow(name, idx, coef, -Inf, rhs)
}

// AddGE appends sum coef_j x_j >= rhs.
func (p *Problem) AddGE(name string, idx []int, coef []float64, rhs float64) error {
	return p.AddRow(name, idx, coef, rhs, Inf)
}

// AddEQ appends sum coef_j x_j == rhs.
func (p *Problem) AddEQ(name string, idx []int, coef []float64, rhs float64) error {
	return p.AddRow(name, idx, coef, rhs, rhs)
}

// Clone returns a copy of p that can be extended independently
// (AddVar/AddRow on the clone do not affect p) — the mechanism the
// MILP layer uses to build a cut-augmented private model without
// mutating the caller's problem. Row coefficient storage is shared:
// rows are immutable once added.
func (p *Problem) Clone() *Problem {
	return &Problem{
		names:    append([]string(nil), p.names...),
		obj:      append([]float64(nil), p.obj...),
		lo:       append([]float64(nil), p.lo...),
		hi:       append([]float64(nil), p.hi...),
		rows:     append([]row(nil), p.rows...),
		rowNames: append([]string(nil), p.rowNames...),
	}
}

// Eval computes a_i · x for row i.
func (p *Problem) Eval(i int, x []float64) float64 {
	s := 0.0
	r := p.rows[i]
	for k, j := range r.idx {
		s += r.val[k] * x[j]
	}
	return s
}

// RowRange returns the [lo, hi] range of row i.
func (p *Problem) RowRange(i int) (lo, hi float64) { return p.rows[i].lo, p.rows[i].hi }

// Feasible reports whether x satisfies all rows and bounds within tol.
func (p *Problem) Feasible(x []float64, tol float64) error {
	if len(x) != len(p.obj) {
		return fmt.Errorf("lp: Feasible: len(x)=%d, want %d", len(x), len(p.obj))
	}
	for j := range x {
		if x[j] < p.lo[j]-tol || x[j] > p.hi[j]+tol {
			return fmt.Errorf("lp: variable %d (%s) = %v outside [%v,%v]", j, p.names[j], x[j], p.lo[j], p.hi[j])
		}
	}
	for i := range p.rows {
		v := p.Eval(i, x)
		if v < p.rows[i].lo-tol || v > p.rows[i].hi+tol {
			return fmt.Errorf("lp: row %d (%s) = %v outside [%v,%v]", i, p.rowNames[i], v, p.rows[i].lo, p.rows[i].hi)
		}
	}
	return nil
}

// Objective computes c·x.
func (p *Problem) Objective(x []float64) float64 {
	s := 0.0
	for j, c := range p.obj {
		if c != 0 {
			s += c * x[j]
		}
	}
	return s
}

// Stats summarizes the model size the way the paper's tables report it.
type Stats struct {
	Vars int // structural variables
	Rows int // constraints
	NNZ  int // nonzero coefficients
}

// Stats returns the model size.
func (p *Problem) Stats() Stats {
	nnz := 0
	for i := range p.rows {
		nnz += len(p.rows[i].idx)
	}
	return Stats{Vars: len(p.obj), Rows: len(p.rows), NNZ: nnz}
}
