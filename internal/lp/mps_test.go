package lp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMPSRoundTrip(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", -1, 0, 3)
	y := p.AddVar("y", 2, -1, Inf)
	z := p.AddVar("z", 0, math.Inf(-1), Inf) // free
	w := p.AddVar("w", 0.5, 2, 2)            // fixed
	_ = p.AddLE("le", []int{x, y}, []float64{1, 2}, 4)
	_ = p.AddGE("ge", []int{y, z}, []float64{1, -1}, -2)
	_ = p.AddEQ("eq", []int{x, z}, []float64{3, 1}, 5)
	_ = p.AddRow("rng", []int{x, w}, []float64{1, 1}, 1, 6)

	var sb strings.Builder
	if err := p.WriteMPS(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	q, err := ReadMPS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if q.NumVars() != p.NumVars() || q.NumRows() != p.NumRows() {
		t.Fatalf("shape: %d/%d vs %d/%d", q.NumVars(), q.NumRows(), p.NumVars(), p.NumRows())
	}
	// same optimum (both must be feasible and bounded here)
	sp, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := NewSolver(q)
	if err != nil {
		t.Fatal(err)
	}
	if st1, st2 := sp.Solve(), sq.Solve(); st1 != st2 {
		t.Fatalf("status %v vs %v", st1, st2)
	}
	if sp.Status() == StatusOptimal && math.Abs(sp.Objective()-sq.Objective()) > 1e-6 {
		t.Fatalf("objective %v vs %v\n%s", sp.Objective(), sq.Objective(), sb.String())
	}
}

func TestMPSSections(t *testing.T) {
	p := &Problem{}
	x := p.AddBinary("x", 1)
	_ = p.AddRow("r", []int{x}, []float64{1}, 0.25, 0.75)
	var sb strings.Builder
	if err := p.WriteMPS(&sb, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"NAME", "ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS", "ENDATA"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %s:\n%s", want, out)
		}
	}
}

func TestReadMPSErrors(t *testing.T) {
	cases := []string{
		"ROWS\n X  R0\n",                       // unknown row type surfaces at AddRow... keep simple inputs
		"COLUMNS\n    C_0        R9 1\n",       // unknown row
		"RHS\n    RHS        R9 1\n",           // unknown row
		"BOUNDS\n UP BND        C_9 1\n",       // unknown column
		"WEIRD\n    junk\n",                    // unknown section
		"ROWS\n L  R0\nCOLUMNS\n    C_0 R0\n",  // odd field count
		"ROWS\n L  R0\nCOLUMNS\n    C R0 xx\n", // bad number
	}
	for _, c := range cases {
		if _, err := ReadMPS(strings.NewReader(c)); err == nil {
			t.Errorf("accepted bad MPS:\n%s", c)
		}
	}
}

// Property: WriteMPS -> ReadMPS preserves the optimum on random
// feasible LPs.
func TestPropertyMPSPreservesOptimum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomPrimalDual(r)
		var sb strings.Builder
		if err := p.WriteMPS(&sb, "rt"); err != nil {
			return false
		}
		q, err := ReadMPS(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		sp, err := NewSolver(p)
		if err != nil {
			return false
		}
		sq, err := NewSolver(q)
		if err != nil {
			return false
		}
		if sp.Solve() != StatusOptimal || sq.Solve() != StatusOptimal {
			return false
		}
		return math.Abs(sp.Objective()-sq.Objective()) < 1e-6*(1+math.Abs(sp.Objective()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLPFormat(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", -1, 0, 3)
	y := p.AddVar("y", 2, -1, Inf)
	z := p.AddVar("z", 0, math.Inf(-1), Inf)
	_ = p.AddLE("le", []int{x, y}, []float64{1, -2}, 4)
	_ = p.AddEQ("eq", []int{x, z}, []float64{3, 1}, 5)
	_ = p.AddRow("rng", []int{x, y}, []float64{1, 1}, 1, 6)
	var sb strings.Builder
	if err := p.WriteLP(&sb, "demo"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Minimize", "Subject To", "Bounds", "End",
		"- 2 y_1", // negative coefficient rendering
		"r1: 3 x_0 + z_2 = 5",
		"r2a:", "r2b:", // range row split in two
		"z_2 free",
		"0 <= x_0 <= 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP format missing %q:\n%s", want, out)
		}
	}
}
