package lp

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// Status is the outcome of an LP solve.
type Status int

const (
	// StatusUnknown means the solver has not run yet.
	StatusUnknown Status = iota
	// StatusOptimal means an optimal basic solution was found.
	StatusOptimal
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusIterLimit means the iteration limit was hit.
	StatusIterLimit

	// statusSuspect is internal: the dual simplex concluded infeasible
	// but the verdict failed Farkas certification against the original
	// row data, so the incrementally-updated tableau may have drifted.
	// optimize retries from a fresh factorization; callers never see it.
	statusSuspect Status = -1
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return "unknown"
	}
}

// Counters are cheap instrumentation counters maintained by the pivot
// and pricing loops: plain integer increments on an already-owned
// struct, so keeping them always on costs nothing measurable and the
// trace layer can report them without touching the hot paths.
type Counters struct {
	// Refactorizations counts rebuilds of the tableau from the original
	// row data (initial factorization, Solve resets, and the
	// certification-failure retries of optimize).
	Refactorizations int64
	// FarkasChecks counts infeasibility verdicts submitted to Farkas
	// certification; FarkasRejected counts the ones that failed it and
	// forced a refactorized retry.
	FarkasChecks   int64
	FarkasRejected int64
	// WindowScans counts pricing windows scanned while rebuilding the
	// candidate list; CandidateHits counts pivots priced directly from
	// the cached candidate list without any window scan.
	WindowScans   int64
	CandidateHits int64
	// Revised-engine counters; all stay zero on the dense engine.
	// Factorizations counts sparse LU (re)builds of the basis; FTRANs
	// and BTRANs the forward/backward factor solves; EtaNNZ the
	// product-form update entries appended over the lifetime (EtaNNZ /
	// Factorizations approximates fill per refactorization interval).
	Factorizations int64
	FTRANs         int64
	BTRANs         int64
	EtaNNZ         int64
	// BasisNNZ and FactorNNZ are gauges sampled at the last
	// factorization: nonzeros of the basis columns and of its L+U
	// factors. FactorNNZ/BasisNNZ is the fill-in ratio. Aggregation
	// keeps the maximum (the dominant worker's basis).
	BasisNNZ  int64
	FactorNNZ int64
}

// Add accumulates o into c (used to aggregate per-worker solvers).
func (c *Counters) Add(o Counters) {
	c.Refactorizations += o.Refactorizations
	c.FarkasChecks += o.FarkasChecks
	c.FarkasRejected += o.FarkasRejected
	c.WindowScans += o.WindowScans
	c.CandidateHits += o.CandidateHits
	c.Factorizations += o.Factorizations
	c.FTRANs += o.FTRANs
	c.BTRANs += o.BTRANs
	c.EtaNNZ += o.EtaNNZ
	if o.BasisNNZ > c.BasisNNZ {
		c.BasisNNZ = o.BasisNNZ
	}
	if o.FactorNNZ > c.FactorNNZ {
		c.FactorNNZ = o.FactorNNZ
	}
}

type varStatus int8

const (
	basic varStatus = iota
	atLower
	atUpper
	atFree // nonbasic free variable pinned at 0
)

// Solver solves a Problem by bounded-variable simplex and supports
// warm-started re-optimization after variable-bound changes, the
// mechanism branch-and-bound relies on.
//
// A Solver snapshots the Problem's rows at creation; later AddRow calls
// on the Problem are not seen. Variable bounds are owned by the Solver
// (SetBound) after creation.
type Solver struct {
	n    int // structural variables
	m    int // rows
	ntot int // n + m (structural + logical)

	c      []float64 // costs, logical costs are 0
	lo, hi []float64 // current bounds, logical bounds encode row ranges
	tab    []float64 // dense engine: m x ntot tableau, row-major B^{-1}A; nil on revised
	rev    *revisedState // revised engine: sparse columns + LU basis; nil on dense
	beta   []float64 // values of basic variables per row
	basis  []int     // variable basic in each row
	inRow  []int     // row of a basic variable, -1 if nonbasic
	vstat  []varStatus
	nbVal  []float64 // value of nonbasic variables
	d      []float64 // reduced costs

	origRows []row     // for rebuilds
	nzbuf    []int32   // scratch: pivot-row nonzero support
	fbuf     []float64 // scratch: Farkas certificate aggregation

	// Candidate-list partial pricing state. The cached candidates are a
	// heuristic only: entries are re-validated before use and optimality
	// is never declared without a full wrap of the rotating cursor, so a
	// stale list can cost extra scans but never a wrong answer.
	pCand []int32 // primal: columns with recently-violated reduced costs
	pCur  int     // primal: rotating scan cursor
	dCand []int32 // dual: rows with recently-infeasible basic values
	dCur  int     // dual: rotating scan cursor

	status Status
	bland  bool
	degRun int
	// Iterations counts simplex pivots (including bound flips) over
	// the lifetime of the solver.
	Iterations int
	// Counters accumulates the engine's instrumentation counters over
	// the lifetime of the solver; see the Counters type. Like
	// Iterations, a Clone starts from zero so callers can attribute
	// work per worker.
	Counters Counters
	// MaxIter bounds pivots per Solve/ReOptimize call; 0 means the
	// default of max(20000, 200*(m+n)).
	MaxIter int
	// Deadline, when non-zero, aborts a Solve/ReOptimize with
	// StatusIterLimit once the wall clock passes it. Checked every few
	// hundred pivots, so overshoot is bounded.
	Deadline time.Time
	// Ctx, when non-nil, is polled alongside Deadline in the pivot
	// loops: a cancelled context aborts the current Solve/ReOptimize
	// with StatusIterLimit within a bounded number of pivots. This is
	// the cooperative-cancellation hook the MILP layer (and through it
	// the solve service) relies on.
	Ctx context.Context
	// Prof, when non-nil, receives per-phase wall-time attribution from
	// the pivot loops: pricing, ratio tests, pivot updates,
	// refactorizations and Farkas certifications. Nil (the default)
	// keeps the loops free of any clock reads; the warm ReOptimize
	// cycle stays allocation-free either way (both guarded by tests).
	// Clones share the parent's profile — its histogram buckets are
	// atomic, so parallel workers record into one profile safely.
	Prof *trace.Profile
	// CaptureFarkas, when set, makes a certified infeasibility verdict
	// keep a copy of its row multipliers, retrievable via FarkasRay for
	// exact offline replay. Off (the default) the verdict path performs
	// no copies and no allocations; Clone deliberately does not
	// propagate it, so certification of a root solve never taxes
	// branch-and-bound workers.
	CaptureFarkas bool
	farkasRay     []float64
}

// NewSolver builds a solver for p with the engine chosen per problem
// (ChooseEngine). The problem must have at least one variable. Row data
// is copied; the solver is independent of later changes to p.
func NewSolver(p *Problem) (*Solver, error) {
	return NewSolverEngine(p, EngineAuto)
}

// NewSolverEngine builds a solver for p backed by a specific simplex
// engine; EngineAuto applies the ChooseEngine heuristic. Both engines
// honor every Solver contract — the choice trades pivot cost
// (dense O(m·n) elimination vs sparse factor solves) only.
func NewSolverEngine(p *Problem, e Engine) (*Solver, error) {
	n, m := p.NumVars(), p.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("lp: empty problem")
	}
	s := &Solver{
		n: n, m: m, ntot: n + m,
		c:     make([]float64, n+m),
		lo:    make([]float64, n+m),
		hi:    make([]float64, n+m),
		beta:  make([]float64, m),
		basis: make([]int, m),
		inRow: make([]int, n+m),
		vstat: make([]varStatus, n+m),
		nbVal: make([]float64, n+m),
		d:     make([]float64, n+m),
	}
	copy(s.c, p.obj)
	copy(s.lo, p.lo)
	copy(s.hi, p.hi)
	s.origRows = make([]row, m)
	copy(s.origRows, p.rows)
	for i := 0; i < m; i++ {
		// logical variable i: a_i·x + g_i = 0 with g_i in [-Hi, -Lo]
		s.lo[n+i] = -p.rows[i].hi
		s.hi[n+i] = -p.rows[i].lo
	}
	for j := 0; j < s.ntot; j++ {
		if s.lo[j] > s.hi[j] {
			return nil, fmt.Errorf("lp: variable %d has empty bound range", j)
		}
	}
	if e == EngineAuto {
		nnz := 0
		for i := range s.origRows {
			nnz += len(s.origRows[i].idx)
		}
		e = ChooseEngine(n, m, nnz)
	}
	if e == EngineRevised {
		s.rev = newRevisedState(n, m, buildCSC(n, s.origRows))
	} else {
		s.tab = make([]float64, m*s.ntot)
	}
	s.reset()
	return s, nil
}

// reset restores the all-logical basis with nonbasic structural
// variables at cost-favourable bounds.
func (s *Solver) reset() {
	if s.rev != nil {
		s.revReset()
		return
	}
	var t0 time.Time
	if s.Prof != nil {
		t0 = time.Now()
	}
	s.Counters.Refactorizations++
	for i := range s.tab {
		s.tab[i] = 0
	}
	for i := 0; i < s.m; i++ {
		r := s.origRows[i]
		trow := s.tab[i*s.ntot : (i+1)*s.ntot]
		for k, j := range r.idx {
			trow[j] = r.val[k]
		}
		trow[s.n+i] = 1
		s.basis[i] = s.n + i
		s.inRow[s.n+i] = i
		s.vstat[s.n+i] = basic
	}
	for j := 0; j < s.n; j++ {
		s.inRow[j] = -1
		s.setNonbasicStart(j)
	}
	s.recomputeBeta()
	// basis costs are all zero (logicals), so d = c
	copy(s.d, s.c)
	s.status = StatusUnknown
	s.bland = false
	s.degRun = 0
	s.pCand = s.pCand[:0]
	s.pCur = 0
	s.dCand = s.dCand[:0]
	s.dCur = 0
	if s.Prof != nil {
		s.Prof.Observe(trace.PhaseRefactorize, time.Since(t0).Nanoseconds())
	}
}

// setNonbasicStart places nonbasic variable j on the bound favoured by
// its cost sign, falling back to whichever bound is finite.
func (s *Solver) setNonbasicStart(j int) {
	loF, hiF := !math.IsInf(s.lo[j], -1), !math.IsInf(s.hi[j], 1)
	prefUpper := s.c[j] < 0
	switch {
	case prefUpper && hiF:
		s.vstat[j], s.nbVal[j] = atUpper, s.hi[j]
	case !prefUpper && loF:
		s.vstat[j], s.nbVal[j] = atLower, s.lo[j]
	case hiF:
		s.vstat[j], s.nbVal[j] = atUpper, s.hi[j]
	case loF:
		s.vstat[j], s.nbVal[j] = atLower, s.lo[j]
	default:
		s.vstat[j], s.nbVal[j] = atFree, 0
	}
}

// recomputeBeta recomputes all basic values from nonbasic values.
func (s *Solver) recomputeBeta() {
	for i := 0; i < s.m; i++ {
		trow := s.tab[i*s.ntot : (i+1)*s.ntot]
		v := 0.0
		for j := 0; j < s.ntot; j++ {
			if s.vstat[j] != basic && s.nbVal[j] != 0 && trow[j] != 0 {
				v += trow[j] * s.nbVal[j]
			}
		}
		s.beta[i] = -v
	}
}

// value returns the current value of variable j.
func (s *Solver) value(j int) float64 {
	if s.vstat[j] == basic {
		return s.beta[s.inRow[j]]
	}
	return s.nbVal[j]
}

// X returns the current value of structural variable j.
func (s *Solver) X(j int) float64 { return s.value(j) }

// Solution copies the structural solution into a new slice.
func (s *Solver) Solution() []float64 {
	x := make([]float64, s.n)
	for j := range x {
		x[j] = s.value(j)
	}
	return x
}

// Objective returns c·x for the current solution.
func (s *Solver) Objective() float64 {
	v := 0.0
	for j := 0; j < s.n; j++ {
		if s.c[j] != 0 {
			v += s.c[j] * s.value(j)
		}
	}
	return v
}

// Status returns the status of the last solve.
func (s *Solver) Status() Status { return s.status }

// Bound returns the current bounds of structural variable j.
func (s *Solver) Bound(j int) (lo, hi float64) { return s.lo[j], s.hi[j] }

// SetBound changes the bounds of structural variable j, keeping the
// factorized state consistent so ReOptimize can warm-start.
func (s *Solver) SetBound(j int, lo, hi float64) {
	if j < 0 || j >= s.n {
		panic(fmt.Sprintf("lp: SetBound: bad variable %d", j))
	}
	if lo > hi {
		panic(fmt.Sprintf("lp: SetBound: empty range [%v,%v]", lo, hi))
	}
	s.setBoundAny(j, lo, hi)
}

// SetRowBounds changes the range of row i to [lo, hi], keeping the
// factorized state consistent so ReOptimize can warm-start. Row ranges
// are owned by the logical variables (row i holds a_i·x + g_i = 0 with
// g_i in [-hi, -lo]), which every consumer of row ranges — the dual
// ratio test, Farkas certification, Residual — already treats as
// authoritative, so a range edit needs no tableau rebuild: it is the
// row-side twin of SetBound, the primitive the delta re-solve layer
// uses to morph a solved root into a neighboring instance (rhs edits:
// capacity, scratch memory, α-scaled area).
func (s *Solver) SetRowBounds(i int, lo, hi float64) {
	if i < 0 || i >= s.m {
		panic(fmt.Sprintf("lp: SetRowBounds: bad row %d", i))
	}
	if lo > hi {
		panic(fmt.Sprintf("lp: SetRowBounds: empty range [%v,%v]", lo, hi))
	}
	s.setBoundAny(s.n+i, -hi, -lo)
}

// setBoundAny is the shared bound editor behind SetBound and
// SetRowBounds: j may be structural or logical.
func (s *Solver) setBoundAny(j int, lo, hi float64) {
	s.lo[j], s.hi[j] = lo, hi
	if s.vstat[j] == basic {
		return // beta may now violate; dual simplex repairs it
	}
	old := s.nbVal[j]
	// re-anchor the nonbasic value to a consistent bound
	switch s.vstat[j] {
	case atLower:
		s.nbVal[j] = lo
		if math.IsInf(lo, -1) {
			s.vstat[j], s.nbVal[j] = atFree, 0
		}
	case atUpper:
		s.nbVal[j] = hi
		if math.IsInf(hi, 1) {
			s.vstat[j], s.nbVal[j] = atFree, 0
		}
	case atFree:
		if !math.IsInf(lo, -1) && old < lo {
			s.vstat[j], s.nbVal[j] = atLower, lo
		} else if !math.IsInf(hi, 1) && old > hi {
			s.vstat[j], s.nbVal[j] = atUpper, hi
		}
	}
	// clamp into range
	if s.nbVal[j] < lo {
		s.vstat[j], s.nbVal[j] = atLower, lo
	} else if s.nbVal[j] > hi {
		s.vstat[j], s.nbVal[j] = atUpper, hi
	}
	if delta := s.nbVal[j] - old; delta != 0 {
		s.shiftNonbasic(j, delta)
	}
	s.status = StatusUnknown
}

// SetObj changes the objective coefficient of structural variable j,
// updating the reduced costs incrementally so ReOptimize can warm-start
// (primal simplex from a still-primal-feasible basis). The tableau is
// untouched: only c and d move, by the standard identity
// d = c - c_B^T (B^{-1} A).
func (s *Solver) SetObj(j int, c float64) {
	if j < 0 || j >= s.n {
		panic(fmt.Sprintf("lp: SetObj: bad variable %d", j))
	}
	dc := c - s.c[j]
	if dc == 0 {
		return
	}
	s.c[j] = c
	if s.vstat[j] != basic {
		s.d[j] += dc
		s.status = StatusUnknown
		return
	}
	// j basic in row r: every reduced cost shifts by -dc * tab[r][·];
	// d[j] itself nets to zero (+dc from c, -dc from tab[r][j] = 1), and
	// other basic columns keep their zero since tab[r][basic k≠j] = 0.
	if s.rev != nil {
		if !s.revSetObjBasic(j, dc) {
			s.reset() // singular stale basis; reset rebuilds d from c
		}
		s.status = StatusUnknown
		return
	}
	trow := s.tab[s.inRow[j]*s.ntot : (s.inRow[j]+1)*s.ntot]
	for k := 0; k < s.ntot; k++ {
		if trow[k] != 0 {
			s.d[k] -= dc * trow[k]
		}
	}
	// basic reduced costs are zero by definition; pin them rather than
	// trust the drifted tableau entries of basic columns
	for i := 0; i < s.m; i++ {
		s.d[s.basis[i]] = 0
	}
	s.status = StatusUnknown
}

// Obj returns the current objective coefficient of structural variable
// j as owned by the solver (NewSolver copies, SetObj edits).
func (s *Solver) Obj(j int) float64 {
	if j < 0 || j >= s.n {
		panic(fmt.Sprintf("lp: Obj: bad variable %d", j))
	}
	return s.c[j]
}

// RowBounds returns the current range of row i as owned by the solver.
func (s *Solver) RowBounds(i int) (lo, hi float64) {
	if i < 0 || i >= s.m {
		panic(fmt.Sprintf("lp: RowBounds: bad row %d", i))
	}
	return -s.hi[s.n+i], -s.lo[s.n+i]
}

// Dims returns the solver's structural-variable and row counts, fixed
// at NewSolver time.
func (s *Solver) Dims() (vars, rows int) { return s.n, s.m }

// shiftNonbasic adjusts basic values after nonbasic variable j moved by
// delta.
func (s *Solver) shiftNonbasic(j int, delta float64) {
	if s.rev != nil {
		s.revShiftNonbasic(j, delta)
		return
	}
	for i := 0; i < s.m; i++ {
		if a := s.tab[i*s.ntot+j]; a != 0 {
			s.beta[i] -= a * delta
		}
	}
}

// expired reports whether the deadline has passed or the context was
// cancelled; polled cheaply every 128 pivots so cancellation latency
// stays bounded by a short pivot run.
func (s *Solver) expired(iter int) bool {
	if iter%128 != 127 {
		return false
	}
	if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
		return true
	}
	return s.Ctx != nil && s.Ctx.Err() != nil
}

func (s *Solver) maxIter() int {
	if s.MaxIter > 0 {
		return s.MaxIter
	}
	it := 200 * (s.m + s.n)
	if it < 20000 {
		it = 20000
	}
	return it
}

// Solve optimizes from a fresh all-logical basis.
func (s *Solver) Solve() Status {
	s.reset()
	return s.optimize()
}

// ReOptimize re-optimizes from the current basis, typically after
// SetBound calls. It is equivalent to Solve but usually far cheaper.
func (s *Solver) ReOptimize() Status {
	return s.optimize()
}

// optimize runs the simplex dispatch, retrying once from a fresh
// factorization when an infeasibility verdict fails Farkas
// certification: a branch-and-bound caller prunes a whole subtree on
// StatusInfeasible, so that verdict must never rest on a drifted
// tableau alone. If even the rebuilt tableau produces an uncertified
// infeasible verdict, it is accepted as a best effort (this matches
// the pre-certification trust level of a cold solve, and keeps e.g.
// near-tolerance pivots from looping the retry).
func (s *Solver) optimize() Status {
	if s.CaptureFarkas {
		s.farkasRay = s.farkasRay[:0]
	}
	if s.rev != nil && !s.revEnsure() {
		// a Clone/Restore recorded a basis the factorization now rejects
		// as singular (pure-roundoff pathology); restart cold
		s.reset()
	}
	st := s.runSimplex()
	if st == statusSuspect {
		s.reset()
		st = s.runSimplex()
		if st == statusSuspect {
			st = StatusInfeasible
		}
	}
	if s.CaptureFarkas && st != StatusInfeasible {
		// a first-attempt suspect verdict may have captured a ray
		// before the retry concluded differently; it must not leak
		s.farkasRay = s.farkasRay[:0]
	}
	s.status = st
	return st
}

// runSimplex dispatches to primal/dual simplex based on which
// feasibility the current basis retains.
func (s *Solver) runSimplex() Status {
	s.bland = false
	s.degRun = 0
	dualOK := s.dualFeasible()
	primalOK := s.primalFeasible()
	var st Status
	switch {
	case primalOK && dualOK:
		st = StatusOptimal
	case dualOK:
		st = s.dualLoop()
	case primalOK:
		st = s.primalLoop()
	default:
		st = s.phase1()
		if st == StatusOptimal {
			st = s.primalLoop()
		}
	}
	return st
}

// primalLoop and dualLoop dispatch a pivoting run to the engine backing
// this solver.
func (s *Solver) primalLoop() Status {
	if s.rev != nil {
		return s.revPrimalSimplex()
	}
	return s.primalSimplex()
}

func (s *Solver) dualLoop() Status {
	if s.rev != nil {
		return s.revDualSimplex()
	}
	return s.dualSimplex()
}

func (s *Solver) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		b := s.basis[i]
		if s.beta[i] < s.lo[b]-feasTol || s.beta[i] > s.hi[b]+feasTol {
			return false
		}
	}
	return true
}

func (s *Solver) dualFeasible() bool {
	for j := 0; j < s.ntot; j++ {
		switch s.vstat[j] {
		case atLower:
			if s.d[j] < -optTol && s.hi[j] != s.lo[j] {
				return false
			}
		case atUpper:
			if s.d[j] > optTol && s.hi[j] != s.lo[j] {
				return false
			}
		case atFree:
			if math.Abs(s.d[j]) > optTol {
				return false
			}
		}
	}
	return true
}

// phase1 finds a primal feasible basis by running the dual simplex with
// a zero objective (any basis is dual feasible for c = 0), then restores
// the true reduced costs.
func (s *Solver) phase1() Status {
	for j := range s.d {
		s.d[j] = 0
	}
	st := s.dualLoop()
	if s.rev != nil {
		s.revRestoreDuals()
		return st
	}
	// restore d = c - c_B^T (B^{-1} A)
	copy(s.d, s.c)
	for i := 0; i < s.m; i++ {
		cb := s.c[s.basis[i]]
		if cb == 0 {
			continue
		}
		trow := s.tab[i*s.ntot : (i+1)*s.ntot]
		for j := 0; j < s.ntot; j++ {
			if trow[j] != 0 {
				s.d[j] -= cb * trow[j]
			}
		}
	}
	for i := 0; i < s.m; i++ {
		s.d[s.basis[i]] = 0
	}
	return st
}

// ReducedCost returns the current reduced cost of structural variable
// j (meaningful after an optimal solve: nonnegative for variables at
// lower bound, nonpositive at upper bound, ~0 for basic ones).
func (s *Solver) ReducedCost(j int) float64 {
	if j < 0 || j >= s.n {
		panic(fmt.Sprintf("lp: ReducedCost: bad variable %d", j))
	}
	return s.d[j]
}

// Dual returns the dual value (shadow price) of row i at the current
// basis: the rate of change of the objective per unit increase of the
// row's binding bound. Derived from the reduced cost of the row's
// logical variable.
func (s *Solver) Dual(i int) float64 {
	if i < 0 || i >= s.m {
		panic(fmt.Sprintf("lp: Dual: bad row %d", i))
	}
	// the logical variable of row i has cost 0 and column e_i, so its
	// reduced cost is -y_i
	return -s.d[s.n+i]
}

// FarkasRay returns a copy of the row multipliers behind the last
// infeasibility verdict, or nil when the last solve did not end
// infeasible or capture was off (see CaptureFarkas). The ray y proves
// infeasibility through w = y^T [A | I]: interval-evaluating
// sum_j w_j z_j over the bound box yields a range excluding 0. Rays
// that failed the solver's own float-tolerance certification are still
// returned — exact replay downstream is the stronger judge of whether
// they prove anything.
func (s *Solver) FarkasRay() []float64 {
	if len(s.farkasRay) == 0 {
		return nil
	}
	return append([]float64(nil), s.farkasRay...)
}

// Duals returns a copy of all row dual values at the current basis
// (see Dual).
func (s *Solver) Duals() []float64 {
	y := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		y[i] = -s.d[s.n+i]
	}
	return y
}

// BasisRows returns a copy of the current basis: element r is the
// variable (structural j < n, logical n+i for row i) basic in row r.
func (s *Solver) BasisRows() []int {
	return append([]int(nil), s.basis...)
}

// VarPositions returns the position of every variable in the current
// basis partition, in the (structural ++ logical) ordering: 0 basic,
// 1 at lower bound, 2 at upper bound, 3 nonbasic free. The encoding
// matches the exact-certification layer's PosBasic..PosFree.
func (s *Solver) VarPositions() []int8 {
	out := make([]int8, s.ntot)
	for j, st := range s.vstat {
		out[j] = int8(st)
	}
	return out
}

// Residual returns the maximum violation of the original row equations
// by the solver's current solution — a direct measure of the numerical
// drift accumulated by incremental tableau updates. A healthy solve
// stays within a few orders of magnitude of machine epsilon times the
// problem's coefficient magnitude.
func (s *Solver) Residual() float64 {
	worst := 0.0
	for i := 0; i < s.m; i++ {
		r := s.origRows[i]
		v := 0.0
		for k, j := range r.idx {
			v += r.val[k] * s.value(j)
		}
		// row value must lie in [lo, hi]
		lo, hi := -s.hi[s.n+i], -s.lo[s.n+i]
		if v < lo && lo-v > worst {
			worst = lo - v
		}
		if v > hi && v-hi > worst {
			worst = v - hi
		}
	}
	return worst
}
