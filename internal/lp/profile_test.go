package lp

import (
	"testing"

	"repro/internal/trace"
)

// TestProfileAttributesSolve: with a phase profile attached, a solve
// populates the LP-internal phases — pricing, pivot updates and the
// initial refactorization — and a warm ReOptimize keeps adding to them.
func TestProfileAttributesSolve(t *testing.T) {
	s := buildReoptProblem(t)
	prof := trace.NewProfile()
	s.Prof = prof
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("solve status %v", st)
	}
	if n := prof.Hist(trace.PhaseRefactorize).Count(); n == 0 {
		t.Fatal("no refactorization observed (Solve resets the basis)")
	}
	if n := prof.Hist(trace.PhasePricing).Count(); n == 0 {
		t.Fatal("no pricing laps observed")
	}
	before := prof.Hist(trace.PhasePricing).Count()
	s.SetBound(0, 0, 3)
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("reoptimize status %v", st)
	}
	if prof.Hist(trace.PhasePricing).Count() <= before {
		t.Fatal("warm ReOptimize recorded no pricing laps")
	}
	// a clone shares the parent's profile so parallel workers aggregate
	// into one place
	if cl := s.Clone(); cl.Prof != prof {
		t.Fatal("Clone dropped the profile")
	}
}

// TestProfiledReOptimizeSteadyStateAllocs extends the zero-alloc
// guarantee to the profiling-ON path: Observe targets preallocated
// atomic buckets, so even with a profile attached the warm pivot cycle
// must not allocate.
func TestProfiledReOptimizeSteadyStateAllocs(t *testing.T) {
	s := buildReoptProblem(t)
	s.Prof = trace.NewProfile()
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("solve status %v", st)
	}
	flip := 0
	allocs := testing.AllocsPerRun(200, func() {
		lo, hi := 0.0, 6.0
		if flip%2 == 0 {
			hi = 2
		}
		flip++
		s.SetBound(0, lo, hi)
		s.SetBound(1, lo, hi)
		if st := s.ReOptimize(); st != StatusOptimal {
			t.Fatalf("reoptimize status %v", st)
		}
	})
	if allocs > 0 {
		t.Fatalf("profiled warm ReOptimize allocated %.1f times per run, want 0", allocs)
	}
}
