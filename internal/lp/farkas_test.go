package lp

import (
	"math"
	"testing"
)

// TestDriftedInfeasibleVerdictRecovers is the regression test for a
// wrongful warm-start infeasibility verdict. A drifted tableau can make
// the dual simplex believe a basic variable is stuck outside its bounds
// with no eligible entering column; before Farkas certification the
// solver returned StatusInfeasible from pure tableau state, and a
// branch-and-bound caller would silently prune a feasible subtree (this
// was observed end-to-end: a feasible partitioning instance "proved"
// infeasible after ~18k accumulated pivots). The certificate recomputes
// the aggregated row from original data, rejects the fake verdict, and
// optimize recovers by refactorizing.
func TestDriftedInfeasibleVerdictRecovers(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 5)
	y := p.AddVar("y", 0, 0, 5)
	if err := p.AddEQ("e", []int{x, y}, []float64{1, 1}, 3); err != nil {
		t.Fatal(err)
	}
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatal(s.Status())
	}
	// simulate catastrophic drift: find a row with a structural basic
	// variable and corrupt it so the basic value sits far below its
	// lower bound while every other coefficient in the row vanishes —
	// the dual ratio test then has no entering column and, on tableau
	// evidence alone, the LP looks infeasible
	r := -1
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.n {
			r = i
			break
		}
	}
	if r < 0 {
		t.Fatal("no structural basic variable to corrupt")
	}
	b := s.basis[r]
	trow := s.tab[r*s.ntot : (r+1)*s.ntot]
	for j := range trow {
		trow[j] = 0
	}
	trow[b] = 1
	s.beta[r] = s.lo[b] - 10
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("status = %v, want optimal: drifted tableau produced a trusted infeasible verdict", st)
	}
	if obj := s.Objective(); math.Abs(obj) > 1e-6 {
		t.Fatalf("objective = %v, want 0", obj)
	}
	if err := p.Feasible(s.Solution(), 1e-6); err != nil {
		t.Fatalf("recovered solution infeasible: %v", err)
	}
}

// TestGenuineInfeasibilityStillCertified checks the other side: a truly
// infeasible warm re-optimization must still report StatusInfeasible,
// i.e. the Farkas certificate accepts honest verdicts without the
// refactorization fallback changing the answer.
func TestGenuineInfeasibilityStillCertified(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 5)
	y := p.AddVar("y", 1, 0, 5)
	if err := p.AddGE("g", []int{x, y}, []float64{1, 1}, 8); err != nil {
		t.Fatal(err)
	}
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatal(s.Status())
	}
	s.SetBound(x, 0, 1)
	s.SetBound(y, 0, 1)
	if st := s.ReOptimize(); st != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
	// and the verdict must survive a round-trip back to feasibility
	s.SetBound(x, 0, 5)
	s.SetBound(y, 0, 5)
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("status = %v, want optimal after relaxing", st)
	}
}

// TestFarkasCertifiedRejectsZeroMultipliers covers the certificate
// itself: all-zero multipliers aggregate to the trivial equation 0 = 0,
// which proves nothing and must not certify.
func TestFarkasCertifiedRejectsZeroMultipliers(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 5)
	if err := p.AddGE("g", []int{x}, []float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	s := solveFresh(t, p)
	trow := s.tab[0*s.ntot : 1*s.ntot]
	for j := range trow {
		trow[j] = 0
	}
	if s.farkasCertified(0) {
		t.Fatal("trivial aggregation certified infeasibility")
	}
}
