package lp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestCloneIndependent(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", -3, 0, 4)
	y := p.AddVar("y", -5, 0, 4)
	_ = p.AddLE("cap", []int{x, y}, []float64{1, 2}, 8)
	s := solveFresh(t, p)
	want := s.Objective()

	c := s.Clone()
	c.SetBound(x, 0, 0)
	if st := c.ReOptimize(); st != StatusOptimal {
		t.Fatalf("clone status = %v", st)
	}
	if c.Objective() < want-1e-9 {
		t.Fatalf("tightened clone improved: %v < %v", c.Objective(), want)
	}
	// the parent must not see the clone's bound change
	if lo, hi := s.Bound(x); lo != 0 || hi != 4 {
		t.Fatalf("parent bounds mutated: [%v,%v]", lo, hi)
	}
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("parent status = %v", st)
	}
	if math.Abs(s.Objective()-want) > 1e-9 {
		t.Fatalf("parent objective drifted: %v != %v", s.Objective(), want)
	}
}

func TestCloneConcurrentSolves(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p, _ := randomPrimalDual(r)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != StatusOptimal {
		t.Skip("base not optimal")
	}
	want := s.Objective()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		c := s.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				j := k % p.NumVars()
				lo, hi := c.Bound(j)
				c.SetBound(j, lo, lo)
				c.ReOptimize()
				c.SetBound(j, lo, hi)
				if st := c.ReOptimize(); st != StatusOptimal {
					t.Errorf("clone status = %v", st)
					return
				}
				if math.Abs(c.Objective()-want) > 1e-6*(1+math.Abs(want)) {
					t.Errorf("clone objective %v != %v", c.Objective(), want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSnapshotRestore(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p, _ := randomPrimalDual(r)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != StatusOptimal {
		t.Skip("base not optimal")
	}
	want := s.Objective()
	wantX := s.Solution()
	snap := s.Snapshot()

	// wander away from the snapshot state
	for j := 0; j < p.NumVars(); j++ {
		lo, _ := s.Bound(j)
		s.SetBound(j, lo, lo)
	}
	s.ReOptimize()

	s.Restore(snap)
	if s.Status() != StatusOptimal {
		t.Fatalf("restored status = %v", s.Status())
	}
	if math.Abs(s.Objective()-want) > 1e-12 {
		t.Fatalf("restored objective %v != %v", s.Objective(), want)
	}
	for j, v := range s.Solution() {
		if math.Abs(v-wantX[j]) > 1e-12 {
			t.Fatalf("restored x[%d] = %v, want %v", j, v, wantX[j])
		}
	}
	// a restored optimal basis re-optimizes in zero pivots
	before := s.Iterations
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("re-optimize after restore: %v", st)
	}
	if s.Iterations != before {
		t.Fatalf("restore lost the optimal basis: %d extra pivots", s.Iterations-before)
	}
}

func TestRestoreDimensionMismatchPanics(t *testing.T) {
	p1 := &Problem{}
	p1.AddVar("x", 1, 0, 1)
	p2 := &Problem{}
	p2.AddVar("x", 1, 0, 1)
	p2.AddVar("y", 1, 0, 1)
	s1, _ := NewSolver(p1)
	s2, _ := NewSolver(p2)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore across dimensions did not panic")
		}
	}()
	s2.Restore(s1.Snapshot())
}

// TestPropertyCloneWarmStartMatchesFresh fixes bounds on a clone and
// checks the warm-started result against a cold solver on the same
// problem — the exact access pattern of a parallel B&B worker.
func TestPropertyCloneWarmStartMatchesFresh(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		primal, _ := randomPrimalDual(r)
		s, err := NewSolver(primal)
		if err != nil {
			return false
		}
		if s.Solve() != StatusOptimal {
			return false
		}
		c := s.Clone()
		snap := c.Snapshot()
		for trial := 0; trial < 3; trial++ {
			c.Restore(snap)
			for k := 0; k < 1+r.Intn(3); k++ {
				j := r.Intn(primal.NumVars())
				lo, hi := c.Bound(j)
				if hi-lo < 1 {
					continue
				}
				if r.Intn(2) == 0 {
					c.SetBound(j, lo, lo)
				} else {
					c.SetBound(j, hi, hi)
				}
			}
			st := c.ReOptimize()
			p2, _ := randomPrimalDual(rand.New(rand.NewSource(seed)))
			for j := 0; j < p2.NumVars(); j++ {
				p2.lo[j], p2.hi[j] = c.Bound(j)
			}
			s2, err := NewSolver(p2)
			if err != nil {
				return false
			}
			if st2 := s2.Solve(); st != st2 {
				return false
			}
			if st != StatusOptimal {
				continue
			}
			if err := p2.Feasible(c.Solution(), 1e-6); err != nil {
				return false
			}
			if math.Abs(c.Objective()-s2.Objective()) > 1e-5*(1+math.Abs(s2.Objective())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPartialPricingCertifiesOptimality guards the rotating-
// window fallback: whenever the solver reports optimal, the final
// basis must actually be primal and dual feasible — i.e. partial
// pricing may change the pivot sequence but never terminate early.
func TestPropertyPartialPricingCertifiesOptimality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		primal, _ := randomPrimalDual(r)
		s, err := NewSolver(primal)
		if err != nil {
			return false
		}
		if s.Solve() != StatusOptimal {
			return false
		}
		if !s.primalFeasible() || !s.dualFeasible() {
			return false
		}
		return s.Residual() <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
