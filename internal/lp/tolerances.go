package lp

// The solver's single named tolerance set, shared by the simplex
// engines and the presolver. Keeping one definition is a correctness
// concern, not a style one: presolve used to tighten bounds against a
// private 1e-9 epsilon while the simplex judged feasibility against
// feasTol = 1e-7, so a bound improvement in the gap between the two was
// applied by one component and invisible to the other (see
// TestPresolveToleranceConsistency).
const (
	// feasTol is the primal feasibility tolerance: a point is accepted
	// when every bound and row range is violated by at most feasTol.
	// It is also the significance threshold for presolve bound
	// tightening — improvements below it are noise to the simplex and
	// must not be applied.
	feasTol = 1e-7
	// optTol is the dual feasibility (optimality) tolerance on reduced
	// costs.
	optTol = 1e-7
	// pivTol is the smallest tableau entry admissible as a pivot.
	pivTol = 1e-9
	// degTol is the step length below which a pivot counts as
	// degenerate.
	degTol = 1e-9
	// tieTol breaks ratio-test comparisons: candidates within tieTol of
	// the best are ties, resolved deterministically (see ratioPrimal and
	// ratioDual) so serial and cloned-worker solves pivot identically.
	tieTol = 1e-9
	// degLimit is the run of degenerate pivots tolerated before the
	// engines switch to Bland's rule.
	degLimit = 400
)
