package lp_test

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/lp"
)

// TestFarkasRepairProvesInfeasibility: the elastic relaxation's duals,
// sanitized, must replay exactly — including on one-sided rows, where
// a wrong-signed roundoff multiplier would widen the replayed interval
// to +-inf (the fuzzer-found failure mode this repair exists for).
func TestFarkasRepairProvesInfeasibility(t *testing.T) {
	p := &lp.Problem{}
	x0 := p.AddVar("x0", 1, 0, 1)
	x1 := p.AddVar("x1", 1, 0, 1)
	x2 := p.AddVar("x2", 0, 0, lp.Inf)
	// x0+x1 >= 3 is impossible over [0,1]^2; the extra one-sided rows
	// drag an unbounded variable in so the sign projection matters
	if err := p.AddGE("need3", []int{x0, x1}, []float64{1, 1}, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLE("capx2", []int{x2}, []float64{1}, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGE("link", []int{x0, x2}, []float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	ray, viol, err := lp.FarkasRepair(p)
	if err != nil {
		t.Fatal(err)
	}
	if viol < 0.5 {
		t.Fatalf("violation = %v, want ~1 (x0+x1 misses 3 by 1)", viol)
	}
	c := &exact.Certificate{
		Kind:    exact.KindInfeasible,
		Search:  "farkas",
		FarkasY: exact.FloatVec(ray),
		Problem: exact.Snapshot(p),
	}
	c.Check()
	if !c.Valid {
		t.Fatalf("repaired ray failed exact replay: %v\n%+v", c.Err(), c.Checks)
	}
}

// TestFarkasRepairFeasible: on a feasible LP the relaxation's optimum
// is zero — no violation, nothing to prove.
func TestFarkasRepairFeasible(t *testing.T) {
	p := &lp.Problem{}
	x0 := p.AddVar("x0", 1, 0, 1)
	x1 := p.AddVar("x1", 1, 0, 1)
	if err := p.AddGE("need1", []int{x0, x1}, []float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	_, viol, err := lp.FarkasRepair(p)
	if err != nil {
		t.Fatal(err)
	}
	if viol > 1e-9 {
		t.Fatalf("violation = %v on a feasible LP, want 0", viol)
	}
}
