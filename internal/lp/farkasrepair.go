package lp

import (
	"fmt"
	"math"
	"math/big"
)

// FarkasRepair re-derives a Farkas ray for an LP the solver judged
// infeasible, independently of the terminal tableau. It solves the
// elastic feasibility relaxation of p:
//
//	min  sum_i (t_i + u_i)
//	s.t. lo_i <= a_i x + t_i - u_i <= hi_i   for every row i
//	     t, u >= 0,  x in its original box, zero original objective
//
// The relaxation is always feasible and bounded below by zero, so it
// solves to optimality; its optimum is the minimum total constraint
// violation of p. A strictly positive optimum proves p infeasible, and
// by LP duality the relaxation's optimal row duals are multipliers
// y with |y_i| <= 1 whose combined row w = y^T [A | I] excludes zero
// over the bound box — exactly the ray shape the exact replay verifies.
//
// This exists for certification: an infeasibility concluded from a
// drifted tableau can carry a ray that is pure roundoff (the exact
// replay rejects it), while the relaxation's duals come from an
// ordinary optimal basis. The returned violation is the relaxation's
// optimum; callers should treat a near-zero violation as "p is not
// provably infeasible" rather than scale the ray.
func FarkasRepair(p *Problem) (ray []float64, violation float64, err error) {
	aux := &Problem{}
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.Bounds(j)
		aux.AddVar(p.VarName(j), 0, lo, hi)
	}
	for i := 0; i < p.NumRows(); i++ {
		idx, val := p.Row(i)
		lo, hi := p.RowRange(i)
		eidx := append([]int(nil), idx...)
		eval := append([]float64(nil), val...)
		if !math.IsInf(lo, -1) {
			t := aux.AddVar(fmt.Sprintf("t%d", i), 1, 0, Inf)
			eidx = append(eidx, t)
			eval = append(eval, 1)
		}
		if !math.IsInf(hi, 1) {
			u := aux.AddVar(fmt.Sprintf("u%d", i), 1, 0, Inf)
			eidx = append(eidx, u)
			eval = append(eval, -1)
		}
		if err := aux.AddRow(p.RowName(i), eidx, eval, lo, hi); err != nil {
			return nil, 0, fmt.Errorf("lp: FarkasRepair: %w", err)
		}
	}
	s, err := NewSolver(aux)
	if err != nil {
		return nil, 0, fmt.Errorf("lp: FarkasRepair: %w", err)
	}
	if st := s.Solve(); st != StatusOptimal {
		return nil, 0, fmt.Errorf("lp: FarkasRepair: relaxation ended %v, want optimal", st)
	}
	return sanitizeRay(p, s.Duals()), s.Objective(), nil
}

// sanitizeRay cleans float duals into a usable Farkas candidate. The
// separation argument needs every multiplier on a one-sided row to
// respect the row's direction — a roundoff-sized wrong-signed entry
// multiplies the row's infinite side and widens the replayed interval
// to +-inf, hiding a perfectly good proof. Both orientations of the
// sign pattern are tried; whichever float-separates (with the larger
// margin) wins, and the raw duals are returned untouched when neither
// does, leaving the verdict honestly unprovable downstream.
func sanitizeRay(p *Problem, y []float64) []float64 {
	maxmag := 0.0
	for _, v := range y {
		if m := math.Abs(v); m > maxmag {
			maxmag = m
		}
	}
	drop := 1e-12 * maxmag
	best, bestMargin := y, 0.0
	for _, dir := range []float64{1, -1} {
		cand := make([]float64, len(y))
		for i, v := range y {
			if math.Abs(v) <= drop {
				continue
			}
			lo, hi := p.RowRange(i)
			if math.IsInf(hi, 1) && dir*v < 0 {
				continue // >=-row: only dir-positive multipliers separate
			}
			if math.IsInf(lo, -1) && dir*v > 0 {
				continue // <=-row: only dir-negative multipliers separate
			}
			cand[i] = v
		}
		if m := separationMargin(p, cand); m > bestMargin {
			best, bestMargin = cand, m
		}
	}
	return best
}

// separationMargin float-evaluates the Farkas separation y witnesses:
// the gap between the row-range interval sum_i y_i*[lo_i,hi_i] and the
// box interval of w = y^T A over the variable bounds. Positive means
// the intervals are disjoint in float arithmetic; the exact replay
// remains the judge of record.
func separationMargin(p *Problem, y []float64) float64 {
	w := make([]float64, p.NumVars())
	r1, r2 := 0.0, 0.0
	for i, yi := range y {
		if yi == 0 {
			continue
		}
		idx, val := p.Row(i)
		for k, j := range idx {
			w[j] += yi * val[k]
		}
		lo, hi := p.RowRange(i)
		a, b := yi*lo, yi*hi
		if a > b {
			a, b = b, a
		}
		r1 += a
		r2 += b
	}
	w1, w2 := 0.0, 0.0
	for j, wj := range w {
		if wj == 0 {
			continue
		}
		lo, hi := p.Bounds(j)
		a, b := wj*lo, wj*hi
		if a > b {
			a, b = b, a
		}
		w1 += a
		w2 += b
	}
	return math.Max(r1-w2, w1-r2)
}

// RationalizeRay renders a float ray as exact rational strings for the
// exact-certification layer, snapping each multiplier to the nearest
// rational with denominator at most maxDen when one lies within a
// relative 1e-9 of the float value (continued-fraction best
// approximation). Optimal duals of an LP with small-rational data ARE
// small rationals; the float solve only reports them to roundoff, and
// replaying the rounded values verbatim can leave residual ~1e-16
// coefficients on unbounded variables that widen the replayed interval
// to ±inf, hiding a perfectly good proof. Snapping restores the exact
// cancellation. This is candidate generation only — the exact replay
// downstream remains the judge, so a bad snap can never fabricate a
// proof. Entries with no nearby small rational pass through as the
// exact value of the float.
func RationalizeRay(y []float64, maxDen int64) []string {
	out := make([]string, len(y))
	for i, v := range y {
		out[i] = rationalize(v, maxDen)
	}
	return out
}

func rationalize(v float64, maxDen int64) string {
	if v == 0 {
		return "0"
	}
	if !math.IsInf(v, 0) && !math.IsNaN(v) && math.Abs(v) < 1e15 {
		if num, den, ok := ratApprox(v, maxDen); ok {
			if approx := float64(num) / float64(den); math.Abs(approx-v) <= 1e-9*(1+math.Abs(v)) {
				return fmt.Sprintf("%d/%d", num, den)
			}
		}
	}
	r := new(big.Rat).SetFloat64(v)
	if r == nil {
		return "0"
	}
	return r.RatString()
}

// ratApprox computes the best rational approximation num/den of x with
// den <= maxDen by continued fractions.
func ratApprox(x float64, maxDen int64) (num, den int64, ok bool) {
	neg := x < 0
	if neg {
		x = -x
	}
	var h0, k0, h1, k1 int64 = 0, 1, 1, 0
	f := x
	for i := 0; i < 64; i++ {
		fa := math.Floor(f)
		if fa > float64(math.MaxInt64)/2 {
			break
		}
		a := int64(fa)
		h2, k2 := a*h1+h0, a*k1+k0
		if k2 > maxDen || k2 < 0 || h2 < 0 {
			break
		}
		h0, k0, h1, k1 = h1, k1, h2, k2
		frac := f - fa
		if frac < 1e-12 {
			break
		}
		f = 1 / frac
	}
	if k1 == 0 {
		return 0, 0, false
	}
	if neg {
		h1 = -h1
	}
	return h1, k1, true
}
