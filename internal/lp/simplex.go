package lp

import (
	"math"
	"time"

	"repro/internal/trace"
)

// This file contains the pivoting engines. Conventions:
//
// The system is A'z = 0 where z = (x, g): every row i reads
// a_i·x + g_i = 0 with the logical g_i bounded in [-Hi_i, -Lo_i].
// tab is B^{-1}A' (row-major, m x ntot). For basic variable b_r in row
// r the equation gives x_{b_r} = -sum_{nonbasic j} tab[r][j]*z_j, the
// value cached in beta[r].
//
// Reduced costs d are maintained incrementally across pivots and stay
// exact up to roundoff: d_j = c_j - c_B^T tab[:,j].

// primalSimplex iterates while the basis is primal feasible, driving
// reduced costs to dual feasibility. Entering rule: Dantzig (most
// negative violation), falling back to Bland's rule after a run of
// degenerate pivots.
func (s *Solver) primalSimplex() Status {
	limit := s.maxIter()
	// Phase attribution: prof is hoisted so the loop gates each clock
	// read on one pointer compare; tl is the running lap mark. With
	// Prof nil the loop contains no time.Now calls and no allocation.
	prof := s.Prof
	var tl time.Time
	for iter := 0; iter < limit; iter++ {
		if s.expired(iter) {
			return StatusIterLimit
		}
		if prof != nil {
			tl = time.Now()
		}
		q := s.pricePrimal()
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhasePricing, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if q < 0 {
			return StatusOptimal
		}
		sigma := 1.0 // direction of motion for the entering variable
		if s.vstat[q] == atUpper || (s.vstat[q] == atFree && s.d[q] > 0) {
			sigma = -1
		}
		leave, step, hitUpper, flip := s.ratioPrimal(q, sigma)
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhaseRatio, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if math.IsInf(step, 1) {
			return StatusUnbounded
		}
		s.Iterations++
		s.noteDegenerate(step)
		if flip {
			// entering variable jumps to its other bound; basis unchanged
			s.shiftNonbasic(q, sigma*step)
			if sigma > 0 {
				s.vstat[q], s.nbVal[q] = atUpper, s.hi[q]
			} else {
				s.vstat[q], s.nbVal[q] = atLower, s.lo[q]
			}
			if prof != nil {
				prof.Observe(trace.PhaseUpdate, time.Since(tl).Nanoseconds())
			}
			continue
		}
		s.pivot(leave, q, sigma*step, hitUpper)
		if prof != nil {
			prof.Observe(trace.PhaseUpdate, time.Since(tl).Nanoseconds())
		}
	}
	return StatusIterLimit
}

// Candidate-list pricing parameters: candCap bounds the cached
// candidate set, and the rotating rebuild scans windows of
// max(minWindow, ntot/8) columns (rows for the dual) at a time.
const (
	candCap   = 32
	minWindow = 64
)

// primalViol returns the dual-infeasibility of nonbasic column j under
// the Dantzig measure, or 0 when j is basic, fixed, or priced out.
func (s *Solver) primalViol(j int) float64 {
	switch s.vstat[j] {
	case atLower:
		if s.lo[j] == s.hi[j] {
			return 0 // fixed
		}
		return -s.d[j]
	case atUpper:
		if s.lo[j] == s.hi[j] {
			return 0
		}
		return s.d[j]
	case atFree:
		return math.Abs(s.d[j])
	}
	return 0 // basic
}

// pricePrimal selects the entering variable, or -1 at optimality.
//
// Under Bland's rule it is the exact lowest-index full scan the
// anti-cycling argument requires. Otherwise it uses candidate-list
// partial pricing: first re-validate the cached candidate set from the
// previous pivots, then — only if that is empty — rebuild it by
// scanning a rotating window of columns, stopping at the first window
// that yields a violation. Optimality is only declared after the
// cursor wraps the full column range without finding one, which is
// exactly the certificate the old full scan produced.
func (s *Solver) pricePrimal() int {
	if s.bland {
		for j := 0; j < s.ntot; j++ {
			if s.primalViol(j) > optTol {
				return j
			}
		}
		return -1
	}
	best, bestViol := -1, optTol
	keep := s.pCand[:0]
	for _, jj := range s.pCand {
		j := int(jj)
		if viol := s.primalViol(j); viol > optTol {
			keep = append(keep, jj)
			if viol > bestViol {
				best, bestViol = j, viol
			}
		}
	}
	s.pCand = keep
	if best >= 0 {
		s.Counters.CandidateHits++
		return best
	}
	window := s.ntot / 8
	if window < minWindow {
		window = minWindow
	}
	for scanned := 0; scanned < s.ntot; {
		s.Counters.WindowScans++
		for k := 0; k < window && scanned < s.ntot; k++ {
			j := s.pCur
			if s.pCur++; s.pCur == s.ntot {
				s.pCur = 0
			}
			scanned++
			if viol := s.primalViol(j); viol > optTol {
				if len(s.pCand) < candCap {
					s.pCand = append(s.pCand, int32(j))
				}
				if viol > bestViol {
					best, bestViol = j, viol
				}
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1 // full wrap, nothing violated: optimal
}

// ratioPrimal runs the bounded-variable ratio test for entering
// variable q moving in direction sigma. It returns the leaving row,
// the step length, whether the leaving basic variable hits its upper
// bound, and whether the move is a bound flip of q itself.
func (s *Solver) ratioPrimal(q int, sigma float64) (leave int, step float64, hitUpper, flip bool) {
	step = math.Inf(1)
	if !math.IsInf(s.hi[q], 1) && !math.IsInf(s.lo[q], -1) {
		step = s.hi[q] - s.lo[q]
		flip = true
	}
	leave = -1
	bestPiv := 0.0
	for i := 0; i < s.m; i++ {
		a := s.tab[i*s.ntot+q]
		if a > -pivTol && a < pivTol {
			continue
		}
		rate := -a * sigma // d beta[i] / d step
		b := s.basis[i]
		var room float64
		var hitsUpper bool
		if rate > 0 {
			if math.IsInf(s.hi[b], 1) {
				continue
			}
			room = s.hi[b] - s.beta[i]
			hitsUpper = true
		} else {
			if math.IsInf(s.lo[b], -1) {
				continue
			}
			room = s.beta[i] - s.lo[b]
			hitsUpper = false
		}
		if room < 0 {
			room = 0
		}
		r := room / math.Abs(rate)
		better := false
		switch {
		case r < step-tieTol:
			better = true
		case r < step+tieTol && leave < 0:
			better = true // beats the bound-flip limit on a tie
		case r < step+tieTol && leave >= 0:
			if s.bland {
				better = s.basis[i] < s.basis[leave]
			} else {
				// Tie: prefer a decisively larger pivot for stability,
				// but when pivot magnitudes tie too, break toward the
				// lowest basis index. Near-equal magnitudes must not
				// decide — float noise in |a| would then order pivots
				// differently in a cloned worker's re-updated tableau,
				// and serial vs parallel solves would diverge.
				aa := math.Abs(a)
				switch {
				case aa > bestPiv+tieTol:
					better = true
				case aa > bestPiv-tieTol:
					better = s.basis[i] < s.basis[leave]
				}
			}
		}
		if better {
			leave, step, hitUpper, flip = i, r, hitsUpper, false
			bestPiv = math.Abs(a)
		}
	}
	if leave < 0 && flip {
		// the entering variable's own bound range is the binding limit
		return -1, step, false, true
	}
	return leave, step, hitUpper, false
}

// dualSimplex iterates while reduced costs are dual feasible, driving
// basic values into their bounds. Leaving rule: largest bound
// violation; entering rule: dual ratio test (Bland fallback on
// degeneracy).
func (s *Solver) dualSimplex() Status {
	limit := s.maxIter()
	// same phase-attribution scheme as primalSimplex: one pointer
	// compare per lap when profiling is off
	prof := s.Prof
	var tl time.Time
	for iter := 0; iter < limit; iter++ {
		if s.expired(iter) {
			return StatusIterLimit
		}
		if prof != nil {
			tl = time.Now()
		}
		r, below := s.priceDual()
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhasePricing, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if r < 0 {
			return StatusOptimal // primal feasible; dual feasibility maintained
		}
		q := s.ratioDual(r, below)
		if prof != nil {
			now := time.Now()
			prof.Observe(trace.PhaseRatio, now.Sub(tl).Nanoseconds())
			tl = now
		}
		if q < 0 {
			s.Counters.FarkasChecks++
			certified := s.farkasCertified(r)
			if prof != nil {
				prof.Observe(trace.PhaseFarkas, time.Since(tl).Nanoseconds())
			}
			if certified {
				return StatusInfeasible
			}
			s.Counters.FarkasRejected++
			return statusSuspect
		}
		b := s.basis[r]
		var target float64
		if below {
			target = s.lo[b]
		} else {
			target = s.hi[b]
		}
		// step that lands the leaving variable exactly on its bound
		a := s.tab[r*s.ntot+q]
		delta := (s.beta[r] - target) / a
		s.Iterations++
		s.noteDegenerate(math.Abs(delta))
		s.pivot(r, q, delta, !below)
		if prof != nil {
			prof.Observe(trace.PhaseUpdate, time.Since(tl).Nanoseconds())
		}
	}
	return StatusIterLimit
}

// dualViol returns the bound violation of the basic variable in row i
// and whether it lies below its lower bound. At most one side can be
// violated since lo <= hi.
func (s *Solver) dualViol(i int) (float64, bool) {
	b := s.basis[i]
	if v := s.lo[b] - s.beta[i]; v > 0 {
		return v, true
	}
	return s.beta[i] - s.hi[b], false
}

// priceDual selects the row of the most infeasible basic variable,
// reporting whether it violates its lower bound. Returns -1 when
// primal feasible. Same candidate-list scheme as pricePrimal, rotating
// over rows; primal feasibility is only declared after a full wrap.
func (s *Solver) priceDual() (int, bool) {
	if s.bland {
		for i := 0; i < s.m; i++ {
			if viol, below := s.dualViol(i); viol > feasTol {
				return i, below
			}
		}
		return -1, false
	}
	best, bestViol, below := -1, feasTol, false
	keep := s.dCand[:0]
	for _, ii := range s.dCand {
		i := int(ii)
		if viol, bl := s.dualViol(i); viol > feasTol {
			keep = append(keep, ii)
			if viol > bestViol {
				best, bestViol, below = i, viol, bl
			}
		}
	}
	s.dCand = keep
	if best >= 0 {
		s.Counters.CandidateHits++
		return best, below
	}
	window := s.m / 8
	if window < minWindow {
		window = minWindow
	}
	for scanned := 0; scanned < s.m; {
		s.Counters.WindowScans++
		for k := 0; k < window && scanned < s.m; k++ {
			i := s.dCur
			if s.dCur++; s.dCur == s.m {
				s.dCur = 0
			}
			scanned++
			if viol, bl := s.dualViol(i); viol > feasTol {
				if len(s.dCand) < candCap {
					s.dCand = append(s.dCand, int32(i))
				}
				if viol > bestViol {
					best, bestViol, below = i, viol, bl
				}
			}
		}
		if best >= 0 {
			return best, below
		}
	}
	return -1, false // full wrap, all basics within bounds
}

// ratioDual selects the entering variable for leaving row r. below
// indicates the leaving basic variable violates its lower bound (needs
// to increase). Returns -1 when the row proves infeasibility.
func (s *Solver) ratioDual(r int, below bool) int {
	trow := s.tab[r*s.ntot : (r+1)*s.ntot]
	q := -1
	bestRatio := math.Inf(1)
	bestPiv := 0.0
	for j := 0; j < s.ntot; j++ {
		if s.vstat[j] == basic || s.lo[j] == s.hi[j] {
			continue
		}
		a := trow[j]
		if a > -pivTol && a < pivTol {
			continue
		}
		// eligibility: moving j within its free direction must push
		// beta[r] toward the violated bound (d beta[r]/d x_j = -a).
		eligible := false
		switch s.vstat[j] {
		case atLower: // x_j may increase
			eligible = (below && a < 0) || (!below && a > 0)
		case atUpper: // x_j may decrease
			eligible = (below && a > 0) || (!below && a < 0)
		case atFree:
			eligible = true
		}
		if !eligible {
			continue
		}
		ratio := math.Abs(s.d[j] / a)
		if s.bland {
			if q < 0 || ratio < bestRatio-tieTol {
				q, bestRatio = j, ratio
			}
			continue
		}
		// Tie handling mirrors ratioPrimal: a tied ratio only displaces
		// the incumbent on a decisively larger pivot magnitude; a
		// near-equal magnitude keeps the earlier (lowest-index) column,
		// so the selection is deterministic across serial and cloned
		// tableaus that differ by float noise.
		aa := math.Abs(a)
		switch {
		case ratio < bestRatio-tieTol:
			q, bestRatio, bestPiv = j, ratio, aa
		case ratio < bestRatio+tieTol && aa > bestPiv+tieTol:
			q, bestRatio, bestPiv = j, ratio, aa
		}
	}
	return q
}

// farkasCertified validates a dual-simplex infeasibility verdict
// against the original problem data, independent of any drift the
// incrementally-updated tableau may have accumulated.
//
// Row r of the tableau carries the basis-inverse multipliers in its
// logical columns: y_i = tab[r][n+i]. For ANY multiplier vector y the
// aggregated equation sum_j w_j z_j = 0 with w = y^T [A | I] holds for
// every point satisfying the row system, so recomputing w exactly from
// the stored rows and interval-evaluating it over the bound box gives a
// rigorous test: if the range excludes 0, the box contains no feasible
// point. A drifted y merely weakens the certificate (the range then
// straddles 0 and certification fails); it can never prove a feasible
// problem infeasible. Cost is one pass over the matrix nonzeros —
// negligible next to a single dense pivot.
func (s *Solver) farkasCertified(r int) bool {
	trow := s.tab[r*s.ntot : (r+1)*s.ntot]
	return s.certifyRay(trow[s.n : s.n+s.m])
}

// certifyRay is the engine-independent core of Farkas certification:
// given the candidate row multipliers y (the dense engine reads them
// out of the tableau's logical columns, the revised engine hands over
// the BTRAN'd unit vector directly), it recomputes w = y^T [A|I] from
// the original rows and interval-evaluates it over the bound box.
func (s *Solver) certifyRay(yv []float64) bool {
	if s.CaptureFarkas {
		// keep the multipliers for exact offline replay (FarkasRay)
		// even when the float check below rejects them: the exact
		// replay is a strictly stronger judge — accumulated roundoff in
		// w can spuriously widen the float interval (even to +-inf on
		// free logicals) where the rational recomputation cancels
		// exactly. optimize() clears the ray again if the verdict does
		// not survive the retry. The capture-off path stays copy- and
		// allocation-free.
		if cap(s.farkasRay) < s.m {
			s.farkasRay = make([]float64, s.m)
		}
		s.farkasRay = s.farkasRay[:s.m]
		copy(s.farkasRay, yv)
	}
	if cap(s.fbuf) < s.ntot {
		s.fbuf = make([]float64, s.ntot)
	}
	w := s.fbuf[:s.ntot]
	for j := range w {
		w[j] = 0
	}
	for i := 0; i < s.m; i++ {
		y := yv[i]
		if y == 0 {
			continue
		}
		w[s.n+i] = y
		row := s.origRows[i]
		for k, j := range row.idx {
			w[j] += y * row.val[k]
		}
	}
	// interval-evaluate sum_j w_j z_j over the box [lo, hi]
	rlo, rhi, mag := 0.0, 0.0, 0.0
	for j := 0; j < s.ntot; j++ {
		wj := w[j]
		if wj == 0 {
			continue
		}
		a, b := wj*s.lo[j], wj*s.hi[j]
		if a > b {
			a, b = b, a
		}
		rlo += a
		rhi += b
		if m := math.Abs(a); m > mag && !math.IsInf(m, 1) {
			mag = m
		}
		if m := math.Abs(b); m > mag && !math.IsInf(m, 1) {
			mag = m
		}
		if math.IsInf(rlo, -1) && math.IsInf(rhi, 1) {
			return false // unbounded in both directions: nothing provable
		}
	}
	// the slack must clear the roundoff of accumulating the interval
	// sums themselves; certification failing on a near-tolerance true
	// infeasibility only costs a refactorized re-solve, never an error
	tol := 1e-7 + 1e-9*mag
	return rlo > tol || rhi < -tol
}

// noteDegenerate tracks degenerate pivots and enables Bland's rule
// after a long run of them; any real progress resets the counter.
func (s *Solver) noteDegenerate(step float64) {
	if step <= degTol {
		s.degRun++
		if s.degRun > degLimit {
			s.bland = true
		}
		return
	}
	s.degRun = 0
	s.bland = false
}

// pivot moves entering variable q by delta (signed), makes it basic in
// row r, and turns the current basic variable of r nonbasic at its
// upper (hitUpper) or lower bound. The tableau and reduced costs are
// updated in place.
func (s *Solver) pivot(r, q int, delta float64, hitUpper bool) {
	// 1. move the entering variable: all basic values respond
	newVal := s.nbVal[q] + delta
	if delta != 0 {
		s.shiftNonbasic(q, delta)
	}
	// 2. swap basis membership
	leave := s.basis[r]
	if hitUpper {
		s.vstat[leave], s.nbVal[leave] = atUpper, s.hi[leave]
	} else {
		s.vstat[leave], s.nbVal[leave] = atLower, s.lo[leave]
	}
	s.inRow[leave] = -1
	s.basis[r] = q
	s.inRow[q] = r
	s.vstat[q] = basic
	s.beta[r] = newVal
	// 3. eliminate column q from all other rows. The pivot row is
	// usually sparse, so gather its nonzero support once and only
	// touch those columns in every target row.
	trow := s.tab[r*s.ntot : (r+1)*s.ntot]
	piv := trow[q]
	inv := 1 / piv
	if cap(s.nzbuf) < s.ntot {
		s.nzbuf = make([]int32, s.ntot)
	}
	nz := s.nzbuf[:0]
	for j := 0; j < s.ntot; j++ {
		if trow[j] != 0 {
			trow[j] *= inv
			nz = append(nz, int32(j))
		}
	}
	trow[q] = 1
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		orow := s.tab[i*s.ntot : (i+1)*s.ntot]
		f := orow[q]
		if f == 0 {
			continue
		}
		for _, j := range nz {
			orow[j] -= f * trow[j]
		}
		orow[q] = 0
	}
	// 4. reduced costs: d_j -= d_q * tab[r][j] (normalized row)
	dq := s.d[q]
	if dq != 0 {
		for _, j := range nz {
			s.d[j] -= dq * trow[j]
		}
	}
	s.d[q] = 0
}
