package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveFresh(t *testing.T, p *Problem) *Solver {
	t.Helper()
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	return s
}

func TestSimple2D(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0
	// optimum at (2,2): -6
	p := &Problem{}
	x := p.AddVar("x", -1, 0, 3)
	y := p.AddVar("y", -2, 0, 2)
	if err := p.AddLE("cap", []int{x, y}, []float64{1, 1}, 4); err != nil {
		t.Fatal(err)
	}
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatalf("status = %v", s.Status())
	}
	if got := s.Objective(); math.Abs(got-(-6)) > 1e-6 {
		t.Fatalf("objective = %v, want -6", got)
	}
	if err := p.Feasible(s.Solution(), 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + 2y == 4, 0 <= x,y <= 10 -> y=2, x=0, obj 2
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 10)
	y := p.AddVar("y", 1, 0, 10)
	if err := p.AddEQ("eq", []int{x, y}, []float64{1, 2}, 4); err != nil {
		t.Fatal(err)
	}
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatalf("status = %v", s.Status())
	}
	if got := s.Objective(); math.Abs(got-2) > 1e-6 {
		t.Fatalf("objective = %v, want 2", got)
	}
}

func TestRangeConstraint(t *testing.T) {
	// min x s.t. 2 <= x + y <= 3, y <= 1 -> x >= 1, obj 1
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 10)
	y := p.AddVar("y", 0, 0, 1)
	if err := p.AddRow("rng", []int{x, y}, []float64{1, 1}, 2, 3); err != nil {
		t.Fatal(err)
	}
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatalf("status = %v", s.Status())
	}
	if got := s.Objective(); math.Abs(got-1) > 1e-6 {
		t.Fatalf("objective = %v, want 1", got)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 5 with x <= 2
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 2)
	if err := p.AddGE("ge", []int{x}, []float64{1}, 5); err != nil {
		t.Fatal(err)
	}
	s := solveFresh(t, p)
	if s.Status() != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", s.Status())
	}
}

func TestInfeasibleSystem(t *testing.T) {
	// x + y >= 5 and x + y <= 2
	p := &Problem{}
	x := p.AddVar("x", 0, 0, 10)
	y := p.AddVar("y", 0, 0, 10)
	_ = p.AddGE("ge", []int{x, y}, []float64{1, 1}, 5)
	_ = p.AddLE("le", []int{x, y}, []float64{1, 1}, 2)
	s := solveFresh(t, p)
	if s.Status() != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", s.Status())
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x unbounded above
	p := &Problem{}
	x := p.AddVar("x", -1, 0, Inf)
	y := p.AddVar("y", 0, 0, 1)
	_ = p.AddGE("g", []int{x, y}, []float64{1, 1}, 0)
	s := solveFresh(t, p)
	if s.Status() != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", s.Status())
	}
}

func TestFixedVariable(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", -1, 2, 2) // fixed at 2
	y := p.AddVar("y", -1, 0, 3)
	_ = p.AddLE("cap", []int{x, y}, []float64{1, 1}, 4)
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatalf("status = %v", s.Status())
	}
	if got := s.X(x); math.Abs(got-2) > 1e-9 {
		t.Fatalf("x = %v, want 2", got)
	}
	if got := s.Objective(); math.Abs(got-(-4)) > 1e-6 {
		t.Fatalf("obj = %v, want -4 (x=2,y=2)", got)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y, x >= -3, y >= -2, x + y >= -4 -> obj -4
	p := &Problem{}
	x := p.AddVar("x", 1, -3, 10)
	y := p.AddVar("y", 1, -2, 10)
	_ = p.AddGE("g", []int{x, y}, []float64{1, 1}, -4)
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatalf("status = %v", s.Status())
	}
	if got := s.Objective(); math.Abs(got-(-4)) > 1e-6 {
		t.Fatalf("obj = %v, want -4", got)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x - y == 0, y in [1, 2], x free -> obj 1
	p := &Problem{}
	x := p.AddVar("x", 1, math.Inf(-1), Inf)
	y := p.AddVar("y", 0, 1, 2)
	_ = p.AddEQ("eq", []int{x, y}, []float64{1, -1}, 0)
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatalf("status = %v", s.Status())
	}
	if got := s.Objective(); math.Abs(got-1) > 1e-6 {
		t.Fatalf("obj = %v, want 1", got)
	}
}

// Beale's classic cycling example (with bounds added); Bland fallback
// must terminate.
func TestBealeDegenerate(t *testing.T) {
	p := &Problem{}
	x1 := p.AddVar("x1", -0.75, 0, Inf)
	x2 := p.AddVar("x2", 150, 0, Inf)
	x3 := p.AddVar("x3", -0.02, 0, Inf)
	x4 := p.AddVar("x4", 6, 0, Inf)
	_ = p.AddLE("r1", []int{x1, x2, x3, x4}, []float64{0.25, -60, -0.04, 9}, 0)
	_ = p.AddLE("r2", []int{x1, x2, x3, x4}, []float64{0.5, -90, -0.02, 3}, 0)
	_ = p.AddLE("r3", []int{x3}, []float64{1}, 1)
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatalf("status = %v", s.Status())
	}
	if got := s.Objective(); math.Abs(got-(-0.05)) > 1e-6 {
		t.Fatalf("obj = %v, want -0.05", got)
	}
}

func TestWarmStartAfterBoundChange(t *testing.T) {
	// knapsack-ish LP; fix a variable and re-optimize
	p := &Problem{}
	var idx []int
	costs := []float64{-5, -4, -3, -6, -1}
	weights := []float64{2, 3, 1, 4, 1}
	for j, c := range costs {
		idx = append(idx, p.AddBinary("b", c))
		_ = j
	}
	_ = p.AddLE("w", idx, weights, 6)
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatal(s.Status())
	}
	base := s.Objective()

	s.SetBound(idx[0], 0, 0) // forbid item 0
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("reopt status = %v", st)
	}
	if s.X(idx[0]) > 1e-9 {
		t.Fatalf("x0 = %v after fixing to 0", s.X(idx[0]))
	}
	got := s.Objective()

	// fresh solve of the modified problem must agree
	p2 := &Problem{}
	var idx2 []int
	for j, c := range costs {
		lo, hi := 0.0, 1.0
		if j == 0 {
			hi = 0
		}
		idx2 = append(idx2, p2.AddVar("b", c, lo, hi))
	}
	_ = p2.AddLE("w", idx2, weights, 6)
	s2 := solveFresh(t, p2)
	if math.Abs(got-s2.Objective()) > 1e-6 {
		t.Fatalf("warm %v vs fresh %v", got, s2.Objective())
	}
	if got < base-1e-9 {
		t.Fatalf("tightening improved objective: %v -> %v", base, got)
	}

	// relax the bound back; must recover the original optimum
	s.SetBound(idx[0], 0, 1)
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("relax status = %v", st)
	}
	if math.Abs(s.Objective()-base) > 1e-6 {
		t.Fatalf("relax objective %v, want %v", s.Objective(), base)
	}
}

func TestWarmStartInfeasibleThenBack(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 5)
	y := p.AddVar("y", 1, 0, 5)
	_ = p.AddGE("g", []int{x, y}, []float64{1, 1}, 8)
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatal(s.Status())
	}
	s.SetBound(x, 0, 1)
	s.SetBound(y, 0, 1)
	if st := s.ReOptimize(); st != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
	s.SetBound(x, 0, 5)
	s.SetBound(y, 0, 5)
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("status = %v, want optimal after relax", st)
	}
	if math.Abs(s.Objective()-8) > 1e-6 {
		t.Fatalf("obj = %v, want 8", s.Objective())
	}
}

func TestAddRowValidation(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 1)
	if err := p.AddRow("bad", []int{x}, []float64{1, 2}, 0, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := p.AddRow("bad", []int{99}, []float64{1}, 0, 1); err == nil {
		t.Error("bad index accepted")
	}
	if err := p.AddRow("bad", []int{x}, []float64{1}, 2, 1); err == nil {
		t.Error("empty range accepted")
	}
	// duplicate indices accumulate
	if err := p.AddLE("dup", []int{x, x}, []float64{1, 1}, 1.5); err != nil {
		t.Fatal(err)
	}
	if v := p.Eval(0, []float64{1}); math.Abs(v-2) > 1e-12 {
		t.Fatalf("dup accumulation: eval = %v, want 2", v)
	}
}

func TestEmptyProblemRejected(t *testing.T) {
	if _, err := NewSolver(&Problem{}); err != nil {
		return
	}
	t.Fatal("empty problem accepted")
}

func TestStats(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", 1, 0, 1)
	y := p.AddVar("y", 1, 0, 1)
	_ = p.AddLE("r", []int{x, y}, []float64{1, 1}, 1)
	st := p.Stats()
	if st.Vars != 2 || st.Rows != 1 || st.NNZ != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// randomPrimalDual builds a random primal
//
//	min c·x  s.t.  A x >= b, 0 <= x <= u
//
// guaranteed feasible (b <= A·u, A >= 0), plus its exact dual
//
//	max b·y - u·w  s.t.  A^T y - w <= c, y >= 0, w >= 0
//
// Strong duality (primal obj == dual obj) plus independently checked
// feasibility of both solutions certifies optimality of both solves.
func randomPrimalDual(r *rand.Rand) (*Problem, *Problem) {
	n := 2 + r.Intn(5)
	m := 1 + r.Intn(5)
	A := make([][]float64, m)
	b := make([]float64, m)
	c := make([]float64, n)
	u := make([]float64, n)
	for j := 0; j < n; j++ {
		c[j] = float64(r.Intn(21) - 10)
		u[j] = float64(1 + r.Intn(5))
	}
	for i := 0; i < m; i++ {
		A[i] = make([]float64, n)
		rowMax := 0.0
		for j := 0; j < n; j++ {
			A[i][j] = float64(r.Intn(4)) // >= 0
			rowMax += A[i][j] * u[j]
		}
		if rowMax > 0 {
			b[i] = math.Floor(rowMax * r.Float64() * 0.8)
		}
	}
	primal := &Problem{}
	for j := 0; j < n; j++ {
		primal.AddVar("x", c[j], 0, u[j])
	}
	for i := 0; i < m; i++ {
		var idx []int
		var coef []float64
		for j := 0; j < n; j++ {
			if A[i][j] != 0 {
				idx = append(idx, j)
				coef = append(coef, A[i][j])
			}
		}
		if len(idx) > 0 {
			_ = primal.AddGE("r", idx, coef, b[i])
		}
	}
	// dual as a minimization: min -b·y + u·w s.t. A^T y - w <= c
	dual := &Problem{}
	ys := make([]int, m)
	ws := make([]int, n)
	for i := 0; i < m; i++ {
		ys[i] = dual.AddVar("y", -b[i], 0, Inf)
	}
	for j := 0; j < n; j++ {
		ws[j] = dual.AddVar("w", u[j], 0, Inf)
	}
	for j := 0; j < n; j++ {
		idx := []int{ws[j]}
		coef := []float64{-1}
		for i := 0; i < m; i++ {
			if A[i][j] != 0 {
				idx = append(idx, ys[i])
				coef = append(coef, A[i][j])
			}
		}
		_ = dual.AddLE("c", idx, coef, c[j])
	}
	return primal, dual
}

func TestPropertyStrongDuality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		primal, dual := randomPrimalDual(r)
		sp, err := NewSolver(primal)
		if err != nil {
			return false
		}
		if sp.Solve() != StatusOptimal {
			return false // primal is feasible & bounded by construction
		}
		if err := primal.Feasible(sp.Solution(), 1e-6); err != nil {
			return false
		}
		sd, err := NewSolver(dual)
		if err != nil {
			return false
		}
		if sd.Solve() != StatusOptimal {
			return false // dual of a feasible bounded LP is feasible & bounded
		}
		if err := dual.Feasible(sd.Solution(), 1e-6); err != nil {
			return false
		}
		zp := sp.Objective()
		zd := -sd.Objective() // dual was posed as a minimization
		return math.Abs(zp-zd) <= 1e-5*(1+math.Abs(zp))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWarmStartMatchesFresh(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		primal, _ := randomPrimalDual(r)
		s, err := NewSolver(primal)
		if err != nil {
			return false
		}
		if s.Solve() != StatusOptimal {
			return false
		}
		// random sequence of bound tightenings on up to 3 variables
		type chg struct{ j int }
		var changed []chg
		for k := 0; k < 1+r.Intn(3); k++ {
			j := r.Intn(primal.NumVars())
			lo, hi := s.Bound(j)
			if hi-lo < 1 {
				continue
			}
			if r.Intn(2) == 0 {
				s.SetBound(j, lo, lo) // fix down
			} else {
				s.SetBound(j, hi, hi) // fix up
			}
			changed = append(changed, chg{j})
		}
		st := s.ReOptimize()
		// fresh problem with the same bounds
		p2, _ := randomPrimalDual(rand.New(rand.NewSource(seed)))
		for j := 0; j < p2.NumVars(); j++ {
			lo, hi := s.Bound(j)
			p2.lo[j], p2.hi[j] = lo, hi
		}
		s2, err := NewSolver(p2)
		if err != nil {
			return false
		}
		st2 := s2.Solve()
		if st != st2 {
			return false
		}
		if st != StatusOptimal {
			return true // both agree infeasible
		}
		if err := p2.Feasible(s.Solution(), 1e-6); err != nil {
			return false
		}
		return math.Abs(s.Objective()-s2.Objective()) <= 1e-5*(1+math.Abs(s2.Objective()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusUnknown:    "unknown",
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusIterLimit:  "iteration-limit",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestIterationsCounted(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", -1, 0, 3)
	y := p.AddVar("y", -2, 0, 2)
	_ = p.AddLE("cap", []int{x, y}, []float64{1, 1}, 4)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	if s.Iterations == 0 {
		t.Fatal("no iterations counted")
	}
	before := s.Iterations
	s.SetBound(x, 0, 1)
	s.ReOptimize()
	if s.Iterations < before {
		t.Fatal("iteration counter went backwards")
	}
}

func TestSolutionAndX(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", -1, 0, 3)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != StatusOptimal {
		t.Fatal(st)
	}
	sol := s.Solution()
	if len(sol) != 1 || math.Abs(sol[0]-3) > 1e-9 || math.Abs(s.X(x)-3) > 1e-9 {
		t.Fatalf("solution = %v, X = %v", sol, s.X(x))
	}
}

func TestDualValues(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, y <= 2 (as a row), x <= 3
	// optimum x=2, y=2; binding rows: both.
	// dual of "x + y <= 4" is -1 (objective falls by 1 per unit rhs),
	// dual of "y <= 2" is -1 (objective falls by extra 1).
	p := &Problem{}
	x := p.AddVar("x", -1, 0, 3)
	y := p.AddVar("y", -2, 0, Inf)
	_ = p.AddLE("cap", []int{x, y}, []float64{1, 1}, 4)
	_ = p.AddLE("ycap", []int{y}, []float64{1}, 2)
	s := solveFresh(t, p)
	if s.Status() != StatusOptimal {
		t.Fatal(s.Status())
	}
	if d := s.Dual(0); math.Abs(d-(-1)) > 1e-6 {
		t.Errorf("dual(cap) = %v, want -1", d)
	}
	if d := s.Dual(1); math.Abs(d-(-1)) > 1e-6 {
		t.Errorf("dual(ycap) = %v, want -1", d)
	}
	// x is basic at 2: reduced cost ~ 0... x at 2 with bound 3: basic.
	if rc := s.ReducedCost(x); math.Abs(rc) > 1e-6 {
		t.Errorf("rc(x) = %v, want 0", rc)
	}
}

// Property: at optimality, reduced-cost signs satisfy the optimality
// conditions and strong duality holds against the duals' valuation.
func TestPropertyDualSigns(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomPrimalDual(r)
		s, err := NewSolver(p)
		if err != nil {
			return false
		}
		if s.Solve() != StatusOptimal {
			return false
		}
		for j := 0; j < p.NumVars(); j++ {
			rc := s.ReducedCost(j)
			lo, hi := p.Bounds(j)
			v := s.X(j)
			switch {
			case v <= lo+1e-6:
				if rc < -1e-5 {
					return false
				}
			case v >= hi-1e-6:
				if rc > 1e-5 {
					return false
				}
			default:
				if math.Abs(rc) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// After a long warm-started pivot history, the solution must still
// satisfy the original rows tightly.
func TestResidualStaysSmall(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p, _ := randomPrimalDual(r)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != StatusOptimal {
		t.Fatal("unexpected status")
	}
	// hammer the warm-start path with bound toggles
	for k := 0; k < 200; k++ {
		j := r.Intn(p.NumVars())
		lo, hi := s.Bound(j)
		if hi-lo < 0.5 {
			continue
		}
		s.SetBound(j, lo, lo)
		s.ReOptimize()
		s.SetBound(j, lo, hi)
		s.ReOptimize()
	}
	if st := s.ReOptimize(); st != StatusOptimal {
		t.Fatalf("status %v after toggles", st)
	}
	if res := s.Residual(); res > 1e-6 {
		t.Fatalf("residual %g after 400 re-optimizations", res)
	}
}
