package delta

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/randgraph"
)

func testAlloc(t testing.TB) *library.Allocation {
	t.Helper()
	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return alloc
}

func testOpt(certify bool) core.Options {
	return core.Options{
		N: 2, L: 1,
		Linearization: core.LinGlover,
		Tightened:     true,
		Certify:       certify,
		TimeLimit:     30 * time.Second,
	}
}

// sameVerdict asserts the engine result and a cold core solve agree
// bit-for-bit on verdict and objective.
func sameVerdict(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if got.Optimal != want.Optimal || got.Feasible != want.Feasible {
		t.Fatalf("%s: engine optimal=%v feasible=%v, cold optimal=%v feasible=%v",
			label, got.Optimal, got.Feasible, want.Optimal, want.Feasible)
	}
	if got.Feasible && got.Solution.Comm != want.Solution.Comm {
		t.Fatalf("%s: engine comm=%d, cold comm=%d", label, got.Solution.Comm, want.Solution.Comm)
	}
}

// TestEngineDifferential is the amend differential guard: every fast
// path the engine takes for a device edit must equal a cold solve of
// the edited instance, with certificates re-verifying (certify on
// disables conclusion reuse, so the warm path is what is exercised).
func TestEngineDifferential(t *testing.T) {
	alloc := testAlloc(t)
	opt := testOpt(true)
	ctx := context.Background()

	baseDev := library.Device{Name: "d", CapacityFG: 400, Alpha: 1.0, ScratchMem: 64}
	edits := []library.Device{
		{Name: "d", CapacityFG: 160, Alpha: 1.0, ScratchMem: 64}, // capacity tighten
		{Name: "d", CapacityFG: 600, Alpha: 1.0, ScratchMem: 64}, // capacity relax
		{Name: "d", CapacityFG: 400, Alpha: 1.0, ScratchMem: 8},  // scratch tighten
		{Name: "d", CapacityFG: 400, Alpha: 0.8, ScratchMem: 64}, // alpha relax (C/α grows)
		{Name: "d", CapacityFG: 120, Alpha: 0.9, ScratchMem: 3},  // everything at once
	}

	warmSeen := 0
	for _, seed := range []int64{1, 7, 13} {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eng := NewEngine(Config{})
		baseKey := fmt.Sprintf("base-%d", seed)
		baseInst := core.Instance{Graph: g, Alloc: alloc, Device: baseDev}
		baseRes, info, err := eng.Solve(ctx, baseKey, "", baseInst, opt)
		if err != nil {
			t.Fatalf("seed %d base: %v", seed, err)
		}
		if info.Path != PathCold || info.Class != "" {
			t.Fatalf("seed %d base dispatched as %+v, want cold/no-class", seed, info)
		}
		if !baseRes.Optimal {
			t.Fatalf("seed %d base not optimal", seed)
		}

		for ei, dev := range edits {
			label := fmt.Sprintf("seed %d edit %d", seed, ei)
			inst := core.Instance{Graph: g, Alloc: alloc, Device: dev}
			got, info, err := eng.Solve(ctx, fmt.Sprintf("%s-e%d", baseKey, ei), baseKey, inst, opt)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if info.Class != "bounds" {
				t.Fatalf("%s: classified %q, want bounds (device edits are pure RHS)", label, info.Class)
			}
			if info.Path == PathReuse {
				t.Fatalf("%s: conclusion reuse must be disabled under -certify", label)
			}
			if info.Path == PathWarm {
				warmSeen++
			}
			want, err := core.SolveInstance(inst, opt)
			if err != nil {
				t.Fatalf("%s cold: %v", label, err)
			}
			sameVerdict(t, label, got, want)
			if c := got.Certificate; c == nil || !c.Valid {
				t.Fatalf("%s: amended solve certificate missing or invalid", label)
			}
		}
	}
	if warmSeen == 0 {
		t.Fatal("no edit took the warm path — root bases are not being retained")
	}
}

// TestEngineReuse checks the monotone conclusion-reuse path: with
// certification off, a pure tightening whose cached optimum still
// verifies is answered without any search, and the answer equals cold.
func TestEngineReuse(t *testing.T) {
	alloc := testAlloc(t)
	opt := testOpt(false)
	ctx := context.Background()

	g, err := randgraph.Tiny(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(Config{})
	base := core.Instance{Graph: g, Alloc: alloc,
		Device: library.Device{Name: "d", CapacityFG: 400, Alpha: 1.0, ScratchMem: 64}}
	baseRes, _, err := eng.Solve(ctx, "base", "", base, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !baseRes.Optimal || !baseRes.Feasible {
		t.Fatalf("base optimal=%v feasible=%v, want optimal feasible", baseRes.Optimal, baseRes.Feasible)
	}

	// a mild capacity cut: the cached optimum still fits, so the engine
	// may answer from the cache alone
	tight := core.Instance{Graph: g, Alloc: alloc,
		Device: library.Device{Name: "d", CapacityFG: 390, Alpha: 1.0, ScratchMem: 64}}
	got, info, err := eng.Solve(ctx, "tight", "base", tight, opt)
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != PathReuse {
		t.Fatalf("tightening with surviving optimum dispatched as %q, want reuse", info.Path)
	}
	if got.Nodes != 0 {
		t.Fatalf("reuse path searched %d nodes, want 0", got.Nodes)
	}
	want, err := core.SolveInstance(tight, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdict(t, "reuse", got, want)

	if m := eng.Metrics(); m.Reuse != 1 || m.Solves != 2 {
		t.Fatalf("metrics %+v, want reuse=1 solves=2", m)
	}
}

// TestEngineSweepChain walks an α sweep where each point amends the
// previous one — the access pattern of /v1/sweep — and checks every
// point agrees with a cold solve while staying off the cold path.
func TestEngineSweepChain(t *testing.T) {
	alloc := testAlloc(t)
	opt := testOpt(false)
	ctx := context.Background()

	g, err := randgraph.Tiny(7)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(Config{})
	alphas := []float64{0.7, 0.8, 0.9, 1.0}
	prevKey := ""
	fast := 0
	for i, a := range alphas {
		key := fmt.Sprintf("pt-%d", i)
		inst := core.Instance{Graph: g, Alloc: alloc,
			Device: library.Device{Name: "d", CapacityFG: 400, Alpha: a, ScratchMem: 64}}
		got, info, err := eng.Solve(ctx, key, prevKey, inst, opt)
		if err != nil {
			t.Fatalf("alpha %v: %v", a, err)
		}
		want, err := core.SolveInstance(inst, opt)
		if err != nil {
			t.Fatalf("alpha %v cold: %v", a, err)
		}
		sameVerdict(t, fmt.Sprintf("alpha %v", a), got, want)
		if i > 0 {
			if info.Class != "bounds" {
				t.Fatalf("alpha %v: classified %q, want bounds", a, info.Class)
			}
			if info.Path != PathCold {
				fast++
			}
		}
		prevKey = key
	}
	if fast != len(alphas)-1 {
		t.Fatalf("only %d/%d sweep points stayed warm", fast, len(alphas)-1)
	}
}

// TestEngineLRU checks the entry cap evicts the oldest base.
func TestEngineLRU(t *testing.T) {
	alloc := testAlloc(t)
	opt := testOpt(false)
	ctx := context.Background()
	g, err := randgraph.Tiny(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(Config{MaxEntries: 2})
	for i := 0; i < 4; i++ {
		inst := core.Instance{Graph: g, Alloc: alloc,
			Device: library.Device{Name: "d", CapacityFG: 200 + 10*i, Alpha: 1.0, ScratchMem: 64}}
		if _, _, err := eng.Solve(ctx, fmt.Sprintf("k%d", i), "", inst, opt); err != nil {
			t.Fatal(err)
		}
	}
	m := eng.Metrics()
	if m.Entries != 2 {
		t.Fatalf("entries %d, want 2", m.Entries)
	}
	if eng.lookup("k0") != nil || eng.lookup("k1") != nil {
		t.Fatal("oldest entries not evicted")
	}
	if eng.lookup("k3") == nil {
		t.Fatal("newest entry missing")
	}
}
