// Package delta implements delta-aware incremental re-solve: it diffs
// a freshly built core model against a cached build of a neighboring
// instance, classifies the edit, and dispatches the cheapest sound
// re-solve path — reusing the cached presolve, the root LP basis (dual
// warm start via solver clone + SetBound/SetRowBounds/SetObj edits)
// and, when the edit provably cannot improve the cached optimum, the
// cached conclusion itself. It is the engine behind the service's
// POST /v1/jobs/{id}/amend and POST /v1/sweep endpoints.
//
// Soundness contract (see DESIGN.md for the full lattice): every fast
// path re-renders its verdict against the NEW problem — warm solves
// validate incumbents and certificates against the new rows, primes
// are re-verified with partition.Verify before they prune anything,
// and the conclusion-reuse path fires only on a pure tightening whose
// surviving incumbent pins the optimum from both sides. A structural
// edit falls back to a cold solve.
package delta

import "repro/internal/lp"

// Class is the edit classification of a diff between two built
// problems, ordered from cheapest to costliest re-solve path.
type Class int

const (
	// ClassNone means the post-presolve problems are identical.
	ClassNone Class = iota
	// ClassBounds means only variable bounds and/or row ranges differ
	// (capacity, scratch-memory and α edits land here: all three enter
	// the model as row ranges).
	ClassBounds
	// ClassObjective means only objective coefficients differ.
	ClassObjective
	// ClassBoundsObjective combines the two previous classes.
	ClassBoundsObjective
	// ClassStructural means the variable or row sets, names or
	// coefficients differ (L/N changes, tasks added or removed, …);
	// nothing of the cached solve can be soundly reused but its
	// solution as a candidate, so the dispatcher goes cold.
	ClassStructural
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassBounds:
		return "bounds"
	case ClassObjective:
		return "objective"
	case ClassBoundsObjective:
		return "bounds+objective"
	default:
		return "structural"
	}
}

// warmable reports whether the class admits the root-basis warm start
// (the cached solver can be morphed into the new problem by pure
// bound/range/objective edits).
func (c Class) warmable() bool { return c <= ClassBoundsObjective }

// VarBoundChange records the new bounds of one structural variable.
type VarBoundChange struct {
	Col    int
	Lo, Hi float64
}

// RowBoundChange records the new range of one row.
type RowBoundChange struct {
	Row    int
	Lo, Hi float64
}

// ObjChange records the new objective coefficient of one variable.
type ObjChange struct {
	Col int
	C   float64
}

// Diff is the classified difference between an old and a new problem.
type Diff struct {
	Class     Class
	VarBounds []VarBoundChange
	RowBounds []RowBoundChange
	Obj       []ObjChange
	// Tightens reports that every change shrinks the feasible region
	// (new bounds ⊆ old bounds for every edited variable and row) and
	// the objective is untouched — the monotone direction under which a
	// cached minimization conclusion can only stay valid or get worse,
	// never better. Trivially true for ClassNone.
	Tightens bool
	// Relaxes is the opposite monotone direction: every change grows
	// the feasible region and the objective is untouched, so a cached
	// optimal solution remains feasible (an upper bound) but a better
	// one may have appeared.
	Relaxes bool
}

// DiffProblems compares the cached base problem against the freshly
// built next one and classifies the edit. Both must be in their final
// (post-presolve) form; comparing a presolved problem against an
// unpresolved one just degrades the classification, never its
// soundness.
func DiffProblems(base, next *lp.Problem) Diff {
	d := Diff{Tightens: true, Relaxes: true}
	if base.NumVars() != next.NumVars() || base.NumRows() != next.NumRows() {
		return Diff{Class: ClassStructural}
	}
	for j := 0; j < next.NumVars(); j++ {
		if base.VarName(j) != next.VarName(j) {
			return Diff{Class: ClassStructural}
		}
		olo, ohi := base.Bounds(j)
		nlo, nhi := next.Bounds(j)
		if olo != nlo || ohi != nhi {
			d.VarBounds = append(d.VarBounds, VarBoundChange{Col: j, Lo: nlo, Hi: nhi})
			d.Tightens = d.Tightens && nlo >= olo && nhi <= ohi
			d.Relaxes = d.Relaxes && nlo <= olo && nhi >= ohi
		}
		if oc, nc := base.Obj(j), next.Obj(j); oc != nc {
			d.Obj = append(d.Obj, ObjChange{Col: j, C: nc})
		}
	}
	for i := 0; i < next.NumRows(); i++ {
		if base.RowName(i) != next.RowName(i) {
			return Diff{Class: ClassStructural}
		}
		oidx, oval := base.Row(i)
		nidx, nval := next.Row(i)
		if len(oidx) != len(nidx) {
			return Diff{Class: ClassStructural}
		}
		for k := range nidx {
			if oidx[k] != nidx[k] || oval[k] != nval[k] {
				return Diff{Class: ClassStructural}
			}
		}
		olo, ohi := base.RowRange(i)
		nlo, nhi := next.RowRange(i)
		if olo != nlo || ohi != nhi {
			d.RowBounds = append(d.RowBounds, RowBoundChange{Row: i, Lo: nlo, Hi: nhi})
			d.Tightens = d.Tightens && nlo >= olo && nhi <= ohi
			d.Relaxes = d.Relaxes && nlo <= olo && nhi >= ohi
		}
	}
	hasBounds := len(d.VarBounds) > 0 || len(d.RowBounds) > 0
	hasObj := len(d.Obj) > 0
	if hasObj {
		// monotone reasoning is about the feasible region only; an
		// objective edit voids both directions
		d.Tightens, d.Relaxes = false, false
	}
	switch {
	case hasBounds && hasObj:
		d.Class = ClassBoundsObjective
	case hasObj:
		d.Class = ClassObjective
	case hasBounds:
		d.Class = ClassBounds
	default:
		d.Class = ClassNone
	}
	return d
}
