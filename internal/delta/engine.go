package delta

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/partition"
	"repro/internal/trace"
)

// Re-solve paths reported in Info.Path.
const (
	// PathCold is a from-scratch solve (no cached base, or a structural
	// edit).
	PathCold = "cold"
	// PathWarm is a search warm-started from the cached root basis
	// (edited clone), usually also primed with the cached incumbent.
	PathWarm = "warm"
	// PathReuse returns the cached conclusion without any search: a
	// pure tightening whose surviving optimal incumbent (or proven
	// infeasibility) pins the new optimum exactly.
	PathReuse = "reuse"
)

// Info describes how an Engine.Solve dispatched a request.
type Info struct {
	// Class is the edit classification against the cached base build
	// ("" when no base was cached).
	Class string `json:"class,omitempty"`
	// Path is the re-solve path taken: cold, warm or reuse.
	Path string `json:"path"`
	// Primed reports that the cached solution re-verified under the new
	// instance and primed the incumbent.
	Primed bool `json:"primed,omitempty"`
}

// Config bounds the engine's cache.
type Config struct {
	// MaxEntries caps the cached builds (LRU beyond it); <= 0 means 8.
	MaxEntries int
	// MaxSolverCells caps root-basis retention per entry: a root whose
	// dense tableau exceeds this many cells (rows × (rows + vars +
	// rows)) is not retained — the entry still serves conclusion reuse
	// and incumbent priming, just not the basis warm start. <= 0 means
	// 1<<23 (64 MiB of float64s).
	MaxSolverCells int64
}

const (
	defaultMaxEntries  = 8
	defaultSolverCells = 1 << 23
)

// entry is one cached build: the post-presolve model, its result, and
// (when within the cell budget) a solver template anchored at a solved
// root basis of the entry's problem. The template is never mutated
// after insertion — every use clones it first — so concurrent amends
// against one base are safe.
type entry struct {
	key    string
	model  *core.Model
	result *core.Result
	root   *lp.Solver
}

// Engine caches recent builds by canonical instance key and dispatches
// amended solves down the cheapest sound path. Safe for concurrent
// use; the solves themselves run outside the lock.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	order   *list.List // front = most recent; values are *entry
	entries map[string]*list.Element

	// counters, read via Metrics
	solves, warm, reuse, structural uint64
}

// NewEngine returns an engine with the given cache bounds.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = defaultMaxEntries
	}
	if cfg.MaxSolverCells <= 0 {
		cfg.MaxSolverCells = defaultSolverCells
	}
	return &Engine{cfg: cfg, order: list.New(), entries: map[string]*list.Element{}}
}

// Metrics is a snapshot of the engine's dispatch counters.
type Metrics struct {
	Solves     uint64 `json:"solves"`
	Warm       uint64 `json:"warm"`
	Reuse      uint64 `json:"reuse"`
	Structural uint64 `json:"structural"`
	Entries    int    `json:"entries"`
}

// Metrics returns the dispatch counters and current cache size.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Metrics{Solves: e.solves, Warm: e.warm, Reuse: e.reuse,
		Structural: e.structural, Entries: e.order.Len()}
}

func (e *Engine) lookup(key string) *entry {
	if key == "" {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.entries[key]
	if !ok {
		return nil
	}
	e.order.MoveToFront(el)
	return el.Value.(*entry)
}

func (e *Engine) store(en *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.entries[en.key]; ok {
		el.Value = en
		e.order.MoveToFront(el)
		return
	}
	e.entries[en.key] = e.order.PushFront(en)
	for e.order.Len() > e.cfg.MaxEntries {
		el := e.order.Back()
		e.order.Remove(el)
		delete(e.entries, el.Value.(*entry).key)
	}
}

// Solve builds the instance and solves it, warm-starting from the
// cached build under baseKey when one exists and the edit class allows
// it. The finished build is cached under key for future amends (so a
// chain of amends, or a sweep walking neighboring points, stays warm).
// key and baseKey are the service's canonical instance hashes; "" for
// baseKey means a cold solve.
func (e *Engine) Solve(ctx context.Context, key, baseKey string, inst core.Instance, opt core.Options) (*core.Result, Info, error) {
	e.mu.Lock()
	e.solves++
	e.mu.Unlock()
	info := Info{Path: PathCold}
	start := time.Now()
	m, err := core.Build(inst, opt)
	if err != nil {
		return nil, info, err
	}
	if m.ApplyPresolve() {
		// proven infeasible before any LP existed; SolveContext returns
		// the canonical early result (nothing worth caching)
		res, serr := m.SolveContext(ctx)
		return res, info, serr
	}

	// Root-basis retention budget: a dense tableau beyond the cell cap
	// is not worth keeping (or cloning) — such entries still serve
	// conclusion reuse and incumbent priming.
	nv, nr := m.P.NumVars(), m.P.NumRows()
	withinBudget := int64(nr)*int64(nr+nv) <= e.cfg.MaxSolverCells

	var base *entry
	if baseKey != "" && baseKey != key {
		base = e.lookup(baseKey)
	}
	warm := &core.Warm{}
	var template *lp.Solver // un-reoptimized root template for the reuse path
	if base != nil {
		d := DiffProblems(base.model.P, m.P)
		info.Class = d.Class.String()
		if d.Class == ClassStructural {
			e.mu.Lock()
			e.structural++
			e.mu.Unlock()
		}
		if d.Class.warmable() && base.root != nil {
			ws := base.root.Clone()
			for _, vb := range d.VarBounds {
				ws.SetBound(vb.Col, vb.Lo, vb.Hi)
			}
			for _, rb := range d.RowBounds {
				ws.SetRowBounds(rb.Row, rb.Lo, rb.Hi)
			}
			for _, oc := range d.Obj {
				ws.SetObj(oc.Col, oc.C)
			}
			warm.Solver = ws
			template = ws
			info.Path = PathWarm
		}
		if d.Class != ClassStructural {
			warm.Prime = reusableSolution(base.result, m)
			info.Primed = warm.Prime != nil
			// Monotone-direction conclusion reuse: a pure tightening can
			// only raise a minimization optimum, so a surviving optimal
			// incumbent pins it exactly (old_opt <= new_opt <= old_obj =
			// old_opt), and a proven-infeasible base stays infeasible.
			// With certification on we run the (primed, warm) search
			// instead so internal/exact re-certifies the verdict against
			// the new problem.
			if d.Tightens && base.result.Optimal && !opt.Certify {
				if base.result.Feasible && warm.Prime != nil {
					res := e.reuseResult(m, warm.Prime, start, opt)
					e.finish(key, m, res, template)
					info.Path = PathReuse
					return res, info, nil
				}
				if !base.result.Feasible {
					res := e.reuseResult(m, nil, start, opt)
					e.finish(key, m, res, template)
					info.Path = PathReuse
					return res, info, nil
				}
			}
		}
	}
	if tr := opt.Trace; tr.Enabled() {
		tr.Emit(trace.Event{Kind: trace.KindPlan,
			Msg: fmt.Sprintf("delta: class=%s path=%s primed=%v", orDash(info.Class), info.Path, info.Primed)})
	}

	// Capture this solve's root basis (clone taken synchronously inside
	// the root hook, before the search mutates the solver) so the entry
	// can warm future amends; skipped above the cell budget.
	var rootClone *lp.Solver
	if withinBudget {
		warm.OnRoot = func(s *lp.Solver) { rootClone = s.Clone() }
	}
	m.SetWarm(warm)
	res, err := m.SolveContext(ctx)
	if err != nil || res == nil || res.Cancelled {
		return res, info, err
	}
	if info.Path == PathWarm {
		e.mu.Lock()
		e.warm++
		e.mu.Unlock()
	}
	e.finish(key, m, res, rootClone)
	return res, info, err
}

// finish caches the completed build under key.
func (e *Engine) finish(key string, m *core.Model, res *core.Result, root *lp.Solver) {
	if key == "" || res == nil {
		return
	}
	e.store(&entry{key: key, model: m, result: res, root: root})
}

// reuseResult assembles the conclusion-reuse result: the (copied,
// re-verified) cached solution as the proven optimum, or the proven
// infeasibility, with zero search work. Emitted as its own result
// event so job traces stay complete.
func (e *Engine) reuseResult(m *core.Model, sol *partition.Solution, start time.Time, opt core.Options) *core.Result {
	e.mu.Lock()
	e.reuse++
	e.mu.Unlock()
	res := &core.Result{
		Optimal: true,
		Stats:   m.Stats(),
		Runtime: time.Since(start),
	}
	if sol != nil {
		res.Feasible = true
		res.Solution = sol
	}
	if tr := opt.Trace; tr.Enabled() {
		tr.Emit(trace.Event{Kind: trace.KindPlan,
			Msg: "delta: class=bounds path=reuse (monotone tightening, conclusion carried over)"})
	}
	m.EmitResult(res)
	return res
}

// reusableSolution re-renders the cached solution against the NEW
// model's instance: a deep copy whose comm cost is recomputed on the
// new graph and which must pass the independent partition verifier
// before it is allowed to prime (and thus prune) anything. Nil when
// the cached solve had no solution or verification fails.
func reusableSolution(base *core.Result, m *core.Model) *partition.Solution {
	if base == nil || base.Solution == nil || base.Solution.N != m.N {
		return nil
	}
	src := base.Solution
	sol := &partition.Solution{
		N:             src.N,
		TaskPartition: append([]int(nil), src.TaskPartition...),
		OpStep:        append([]int(nil), src.OpStep...),
		OpUnit:        append([]int(nil), src.OpUnit...),
	}
	sol.Comm = sol.CommCost(m.Inst.Graph)
	err := partition.Verify(m.Inst.Graph, m.Inst.Alloc, m.Inst.Device, sol, partition.VerifyOptions{
		L:          m.Opt.L,
		Windows:    m.Win,
		Multicycle: m.Opt.Multicycle,
	})
	if err != nil {
		return nil
	}
	return sol
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
