package delta

import (
	"math"
	"testing"

	"repro/internal/lp"
)

func twoVarProblem(objY float64, hiX, cap float64) *lp.Problem {
	p := &lp.Problem{}
	x := p.AddVar("x", 1, 0, hiX)
	y := p.AddVar("y", objY, 0, 1)
	if err := p.AddLE("cap", []int{x, y}, []float64{2, 3}, cap); err != nil {
		panic(err)
	}
	return p
}

func TestDiffClassification(t *testing.T) {
	base := twoVarProblem(5, 4, 10)

	t.Run("none", func(t *testing.T) {
		d := DiffProblems(base, twoVarProblem(5, 4, 10))
		if d.Class != ClassNone || !d.Tightens || !d.Relaxes {
			t.Fatalf("got %+v", d)
		}
	})
	t.Run("bounds-tighten", func(t *testing.T) {
		d := DiffProblems(base, twoVarProblem(5, 3, 8))
		if d.Class != ClassBounds {
			t.Fatalf("class %v", d.Class)
		}
		if !d.Tightens || d.Relaxes {
			t.Fatalf("directions %+v", d)
		}
		if len(d.VarBounds) != 1 || d.VarBounds[0] != (VarBoundChange{Col: 0, Lo: 0, Hi: 3}) {
			t.Fatalf("var bounds %+v", d.VarBounds)
		}
		if len(d.RowBounds) != 1 || d.RowBounds[0].Row != 0 || d.RowBounds[0].Hi != 8 {
			t.Fatalf("row bounds %+v", d.RowBounds)
		}
	})
	t.Run("bounds-relax", func(t *testing.T) {
		d := DiffProblems(base, twoVarProblem(5, 6, 12))
		if d.Class != ClassBounds || d.Tightens || !d.Relaxes {
			t.Fatalf("got %+v", d)
		}
	})
	t.Run("bounds-mixed", func(t *testing.T) {
		d := DiffProblems(base, twoVarProblem(5, 3, 12))
		if d.Class != ClassBounds || d.Tightens || d.Relaxes {
			t.Fatalf("got %+v", d)
		}
	})
	t.Run("objective", func(t *testing.T) {
		d := DiffProblems(base, twoVarProblem(7, 4, 10))
		if d.Class != ClassObjective || d.Tightens || d.Relaxes {
			t.Fatalf("got %+v", d)
		}
		if len(d.Obj) != 1 || d.Obj[0] != (ObjChange{Col: 1, C: 7}) {
			t.Fatalf("obj %+v", d.Obj)
		}
	})
	t.Run("bounds+objective", func(t *testing.T) {
		d := DiffProblems(base, twoVarProblem(7, 4, 8))
		if d.Class != ClassBoundsObjective {
			t.Fatalf("class %v", d.Class)
		}
		if !d.Class.warmable() {
			t.Fatal("bounds+objective must be warmable")
		}
	})
	t.Run("structural-coef", func(t *testing.T) {
		p := &lp.Problem{}
		x := p.AddVar("x", 1, 0, 4)
		y := p.AddVar("y", 5, 0, 1)
		if err := p.AddLE("cap", []int{x, y}, []float64{2, 4}, 10); err != nil {
			t.Fatal(err)
		}
		d := DiffProblems(base, p)
		if d.Class != ClassStructural || d.Class.warmable() {
			t.Fatalf("got %+v", d)
		}
	})
	t.Run("structural-shape", func(t *testing.T) {
		p := &lp.Problem{}
		p.AddVar("x", 1, 0, 4)
		d := DiffProblems(base, p)
		if d.Class != ClassStructural {
			t.Fatalf("class %v", d.Class)
		}
	})
	t.Run("structural-name", func(t *testing.T) {
		p := &lp.Problem{}
		x := p.AddVar("x", 1, 0, 4)
		y := p.AddVar("q", 5, 0, 1)
		if err := p.AddLE("cap", []int{x, y}, []float64{2, 3}, 10); err != nil {
			t.Fatal(err)
		}
		if d := DiffProblems(base, p); d.Class != ClassStructural {
			t.Fatalf("class %v", d.Class)
		}
	})
	t.Run("one-sided-rows", func(t *testing.T) {
		// -inf lower sides must not break the monotone flags
		p := twoVarProblem(5, 4, 10)
		d := DiffProblems(base, p)
		if lo, _ := p.RowRange(0); !math.IsInf(lo, -1) {
			t.Fatal("expected one-sided row")
		}
		if d.Class != ClassNone {
			t.Fatalf("class %v", d.Class)
		}
	})
}
