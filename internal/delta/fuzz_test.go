package delta

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/randgraph"
)

// FuzzDifferential is the amend-path twin of the core differential
// fuzzer: a random tiny instance is solved cold through the engine,
// then a fuzzer-chosen device edit (capacity, scratch, α — the axes
// /v1/jobs/{id}/amend exposes) is re-solved through the engine's fast
// paths and against a from-scratch core solve. The two must agree
// exactly on feasibility and optimal comm, and every certificate must
// re-verify against the edited problem. Run locally with
//
//	go test -fuzz=FuzzDifferential -fuzztime=60s ./internal/delta/
//
// (see EXPERIMENTS.md); CI runs the same invocation.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), int64(0), int64(0))
	f.Add(int64(7), int64(1), int64(3))
	f.Add(int64(13), int64(2), int64(1))
	f.Add(int64(19), int64(3), int64(2))
	f.Add(int64(25), int64(4), int64(5))

	alloc, err := library.PaperAllocation(library.DefaultLibrary(), 1, 1, 1)
	if err != nil {
		f.Fatal(err)
	}
	caps := []int{120, 160, 400, 600}
	mems := []int{3, 8, 64}
	alphas := []float64{0.7, 0.8, 0.9, 1.0}

	f.Fuzz(func(t *testing.T, seed, editRaw, pickRaw int64) {
		g, err := randgraph.Tiny(seed)
		if err != nil {
			t.Skip() // degenerate generator parameters
		}
		abs := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			return v & 0x7fffffff
		}
		opt := core.Options{
			N: 2 + int(abs(seed)%2), L: int(abs(seed/5) % 3),
			Linearization: core.LinGlover,
			Tightened:     true,
			Certify:       true,
			TimeLimit:     30 * time.Second,
		}
		baseDev := library.Device{
			Name:       "fuzz",
			CapacityFG: caps[abs(seed)%int64(len(caps))],
			Alpha:      alphas[abs(seed/7)%int64(len(alphas))],
			ScratchMem: mems[abs(seed/3)%int64(len(mems))],
		}
		// the fuzzer picks the amend axis and the new value
		dev := baseDev
		pick := abs(pickRaw)
		switch abs(editRaw) % 4 {
		case 0:
			dev.CapacityFG = caps[pick%int64(len(caps))]
		case 1:
			dev.ScratchMem = mems[pick%int64(len(mems))]
		case 2:
			dev.Alpha = alphas[pick%int64(len(alphas))]
		default:
			dev.CapacityFG = caps[pick%int64(len(caps))]
			dev.Alpha = alphas[(pick/4)%int64(len(alphas))]
		}

		ctx := context.Background()
		eng := NewEngine(Config{})
		base, _, err := eng.Solve(ctx, "base", "", core.Instance{Graph: g, Alloc: alloc, Device: baseDev}, opt)
		if err != nil {
			t.Fatalf("base: %v", err)
		}
		if !base.Optimal {
			t.Skip() // time limit hit: nothing cached worth amending
		}

		inst := core.Instance{Graph: g, Alloc: alloc, Device: dev}
		got, info, err := eng.Solve(ctx, "amend", "base", inst, opt)
		if err != nil {
			t.Fatalf("amend: %v", err)
		}
		want, err := core.SolveInstance(inst, opt)
		if err != nil {
			t.Fatalf("cold: %v", err)
		}
		if !got.Optimal || !want.Optimal {
			t.Skip()
		}
		if got.Feasible != want.Feasible {
			t.Fatalf("seed %d edit %d pick %d (path %s): amend feasible=%v, cold=%v",
				seed, editRaw, pickRaw, info.Path, got.Feasible, want.Feasible)
		}
		if got.Feasible && got.Solution.Comm != want.Solution.Comm {
			t.Fatalf("seed %d edit %d pick %d (path %s): amend comm=%d, cold=%d",
				seed, editRaw, pickRaw, info.Path, got.Solution.Comm, want.Solution.Comm)
		}
		if c := got.Certificate; c != nil && !c.Valid {
			t.Fatalf("seed %d edit %d pick %d: certificate failed: %v", seed, editRaw, pickRaw, c.Err())
		}
		if got.Feasible && got.Certificate == nil {
			t.Fatalf("seed %d edit %d pick %d: feasible amended solve carries no certificate", seed, editRaw, pickRaw)
		}
	})
}
