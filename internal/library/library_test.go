package library

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestNewLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(FUType{Name: "", Ops: []graph.OpKind{graph.OpAdd}, FG: 1}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewLibrary(Add16(), Add16()); err == nil {
		t.Error("duplicate type accepted")
	}
	if _, err := NewLibrary(FUType{Name: "x", FG: 1}); err == nil {
		t.Error("no-op type accepted")
	}
	if _, err := NewLibrary(FUType{Name: "x", Ops: []graph.OpKind{graph.OpAdd}, FG: 0}); err == nil {
		t.Error("zero FG accepted")
	}
}

func TestLibraryLatencyDefaultsToOne(t *testing.T) {
	lib := MustLibrary(FUType{Name: "x", Ops: []graph.OpKind{graph.OpAdd}, FG: 4})
	ft, ok := lib.Type("x")
	if !ok || ft.Latency != 1 {
		t.Fatalf("latency = %d, want 1", ft.Latency)
	}
}

func TestTypesForAndCovers(t *testing.T) {
	lib := DefaultLibrary()
	muls := lib.TypesFor(graph.OpMul)
	if len(muls) != 3 {
		t.Fatalf("TypesFor(mul) = %d types, want 3", len(muls))
	}
	g := graph.New("g")
	tk := g.AddTask("")
	g.AddOp(tk, graph.OpAdd, "")
	g.AddOp(tk, "weird", "")
	if k, ok := lib.Covers(g); ok || k != "weird" {
		t.Fatalf("Covers = (%v,%v), want (weird,false)", k, ok)
	}
}

func TestAllocation(t *testing.T) {
	lib := DefaultLibrary()
	a, err := PaperAllocation(lib, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumUnits() != 5 {
		t.Fatalf("units = %d, want 5", a.NumUnits())
	}
	// Deterministic ordering: add16#0, add16#1, mul16#0, mul16#1, sub16#0.
	wantNames := []string{"add16#0", "add16#1", "mul16#0", "mul16#1", "sub16#0"}
	for i, w := range wantNames {
		if a.Unit(i).Name != w {
			t.Errorf("unit %d = %s, want %s", i, a.Unit(i).Name, w)
		}
		if a.Unit(i).ID != i {
			t.Errorf("unit %d has ID %d", i, a.Unit(i).ID)
		}
	}
	adders := a.UnitsFor(graph.OpAdd)
	if len(adders) != 2 || adders[0] != 0 || adders[1] != 1 {
		t.Fatalf("UnitsFor(add) = %v", adders)
	}
	if got := a.String(); got != "2xadd16+2xmul16+1xsub16" {
		t.Fatalf("String = %q", got)
	}
	if fg := a.TotalFG(); fg != 2*16+2*96+16 {
		t.Fatalf("TotalFG = %d", fg)
	}
}

func TestAllocationErrors(t *testing.T) {
	lib := DefaultLibrary()
	if _, err := NewAllocation(lib, map[string]int{"nope": 1}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := NewAllocation(lib, map[string]int{"add16": -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := NewAllocation(lib, map[string]int{}); err == nil {
		t.Error("empty allocation accepted")
	}
}

func TestAllocationCovers(t *testing.T) {
	lib := DefaultLibrary()
	a, _ := PaperAllocation(lib, 1, 1, 0)
	g := graph.New("g")
	tk := g.AddTask("")
	g.AddOp(tk, graph.OpSub, "")
	if k, ok := a.Covers(g); ok || k != graph.OpSub {
		t.Fatalf("Covers = (%v,%v), want (sub,false)", k, ok)
	}
}

func TestDevice(t *testing.T) {
	d := XC4010()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.Fits(100) {
		t.Error("100 FG should fit in xc4010 at alpha 0.7")
	}
	// alpha*sum = 0.7*250 = 175 > 160
	if d.Fits(250) {
		t.Error("250 FG should not fit")
	}
	bad := Device{Name: "bad", CapacityFG: 0, Alpha: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	bad = Device{Name: "bad", CapacityFG: 10, Alpha: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("alpha > 1 accepted")
	}
	bad = Device{Name: "bad", CapacityFG: 10, Alpha: 0.5, ScratchMem: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative scratch accepted")
	}
}

func TestAddSubServesBothKinds(t *testing.T) {
	lib := DefaultLibrary()
	a, err := NewAllocation(lib, map[string]int{"addsub16": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.UnitsFor(graph.OpAdd)) != 1 || len(a.UnitsFor(graph.OpSub)) != 1 {
		t.Fatal("addsub16 should serve add and sub")
	}
}

func TestDefaultLibraryNamesSorted(t *testing.T) {
	lib := DefaultLibrary()
	types := lib.Types()
	for i := 1; i < len(types); i++ {
		if !(types[i-1].Name < types[i].Name) {
			t.Fatalf("types not sorted: %s before %s", types[i-1].Name, types[i].Name)
		}
	}
	if !strings.Contains(types[0].Name, "add") {
		t.Errorf("first type = %s", types[0].Name)
	}
}
