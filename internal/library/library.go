// Package library models the characterized component library and the
// target reconfigurable device of Kaul & Vemuri (DATE 1998, Section 3).
//
// The library holds functional-unit (FU) types characterized by the
// operations they execute, their latency in control steps and their
// FPGA resource footprint in function generators (FG). A design
// exploration instantiates a multiset of FU instances (the set F of the
// paper, e.g. "2 adders + 2 multipliers + 1 subtracter"); the optimizer
// decides which instances are actually used in each temporal segment.
package library

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// FUType is a characterized functional-unit type from the component
// library.
type FUType struct {
	// Name identifies the type, e.g. "add16" or "mul16p".
	Name string
	// Ops is the set of operation kinds this FU type can execute.
	Ops []graph.OpKind
	// FG is the number of FPGA function generators consumed by one
	// instance (the FG(k) metric of the paper).
	FG int
	// Latency is the number of control steps an operation occupies on
	// this FU. The base paper model assumes 1; the multicycle extension
	// honors larger values.
	Latency int
	// Pipelined marks pipelined FUs: with Latency > 1 a pipelined FU
	// can accept a new operation every control step, a non-pipelined
	// one only every Latency steps.
	Pipelined bool
	// DelayNS is the characterized combinational delay, used by the
	// runtime model in rpsim to derive the clock period.
	DelayNS float64
}

// CanExecute reports whether the FU type executes operation kind k.
func (ft FUType) CanExecute(k graph.OpKind) bool {
	for _, o := range ft.Ops {
		if o == k {
			return true
		}
	}
	return false
}

// FU is one concrete functional-unit instance in the design exploration
// set F. Instances are what operations bind to (x_ijk) and what
// partitions account area for (u_pk).
type FU struct {
	// ID indexes the instance within the allocation, dense 0..|F|-1.
	ID int
	// Name is "<type>#<n>" and unique within the allocation.
	Name string
	// Type is the characterized FU type.
	Type FUType
}

// Library is a set of FU types indexed by name.
type Library struct {
	types []FUType
}

// NewLibrary builds a library from the given types. Type names must be
// unique and each type must execute at least one operation kind, have
// positive FG cost and latency.
func NewLibrary(types ...FUType) (*Library, error) {
	seen := map[string]bool{}
	lib := &Library{}
	for _, ft := range types {
		if ft.Name == "" {
			return nil, fmt.Errorf("library: FU type with empty name")
		}
		if seen[ft.Name] {
			return nil, fmt.Errorf("library: duplicate FU type %q", ft.Name)
		}
		if len(ft.Ops) == 0 {
			return nil, fmt.Errorf("library: FU type %q executes no operations", ft.Name)
		}
		if ft.FG <= 0 {
			return nil, fmt.Errorf("library: FU type %q has non-positive FG cost", ft.Name)
		}
		if ft.Latency <= 0 {
			ft.Latency = 1
		}
		seen[ft.Name] = true
		lib.types = append(lib.types, ft)
	}
	sort.Slice(lib.types, func(i, j int) bool { return lib.types[i].Name < lib.types[j].Name })
	return lib, nil
}

// MustLibrary is NewLibrary that panics on error; for package-level
// defaults and tests.
func MustLibrary(types ...FUType) *Library {
	lib, err := NewLibrary(types...)
	if err != nil {
		panic(err)
	}
	return lib
}

// Types returns the FU types sorted by name. Callers must not mutate
// the returned slice.
func (l *Library) Types() []FUType { return l.types }

// Type returns the FU type with the given name.
func (l *Library) Type(name string) (FUType, bool) {
	for _, ft := range l.types {
		if ft.Name == name {
			return ft, true
		}
	}
	return FUType{}, false
}

// TypesFor returns the FU types able to execute operation kind k,
// sorted by name.
func (l *Library) TypesFor(k graph.OpKind) []FUType {
	var out []FUType
	for _, ft := range l.types {
		if ft.CanExecute(k) {
			out = append(out, ft)
		}
	}
	return out
}

// Covers reports whether every operation kind in g can execute on at
// least one FU type of the library, returning the first uncovered kind
// otherwise.
func (l *Library) Covers(g *graph.Graph) (graph.OpKind, bool) {
	for _, k := range g.OpKinds() {
		if len(l.TypesFor(k)) == 0 {
			return k, false
		}
	}
	return "", true
}

// Allocation is the exploration set F: a list of FU instances the
// optimizer may use. Not all instances need to fit on the device
// simultaneously; the per-partition resource constraint (eq. 11) is
// enforced over the instances actually used in each segment.
type Allocation struct {
	units []FU
}

// NewAllocation instantiates count[i] instances of each type, in the
// (typeName -> count) map given. Instance IDs are assigned in sorted
// type-name order, so allocations are deterministic.
func NewAllocation(lib *Library, counts map[string]int) (*Allocation, error) {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	a := &Allocation{}
	for _, n := range names {
		ft, ok := lib.Type(n)
		if !ok {
			return nil, fmt.Errorf("library: allocation references unknown FU type %q", n)
		}
		if counts[n] < 0 {
			return nil, fmt.Errorf("library: negative count for FU type %q", n)
		}
		for i := 0; i < counts[n]; i++ {
			a.units = append(a.units, FU{
				ID:   len(a.units),
				Name: fmt.Sprintf("%s#%d", n, i),
				Type: ft,
			})
		}
	}
	if len(a.units) == 0 {
		return nil, fmt.Errorf("library: empty allocation")
	}
	return a, nil
}

// Units returns the FU instances in ID order. Callers must not mutate
// the returned slice.
func (a *Allocation) Units() []FU { return a.units }

// NumUnits returns |F|.
func (a *Allocation) NumUnits() int { return len(a.units) }

// Unit returns the FU instance with the given ID.
func (a *Allocation) Unit(id int) FU { return a.units[id] }

// UnitsFor returns the IDs of instances able to execute kind k — the
// Fu(i) set of the paper for an operation of kind k.
func (a *Allocation) UnitsFor(k graph.OpKind) []int {
	var out []int
	for _, u := range a.units {
		if u.Type.CanExecute(k) {
			out = append(out, u.ID)
		}
	}
	return out
}

// Covers reports whether every op kind in g has at least one unit,
// returning the first uncovered kind otherwise.
func (a *Allocation) Covers(g *graph.Graph) (graph.OpKind, bool) {
	for _, k := range g.OpKinds() {
		if len(a.UnitsFor(k)) == 0 {
			return k, false
		}
	}
	return "", true
}

// TotalFG returns the FG footprint if all instances were used at once.
func (a *Allocation) TotalFG() int {
	s := 0
	for _, u := range a.units {
		s += u.Type.FG
	}
	return s
}

// String renders the allocation as "2xadd16+1xmul16" style.
func (a *Allocation) String() string {
	counts := map[string]int{}
	var order []string
	for _, u := range a.units {
		if counts[u.Type.Name] == 0 {
			order = append(order, u.Type.Name)
		}
		counts[u.Type.Name]++
	}
	sort.Strings(order)
	parts := make([]string, 0, len(order))
	for _, n := range order {
		parts = append(parts, fmt.Sprintf("%dx%s", counts[n], n))
	}
	return strings.Join(parts, "+")
}

// Device models the target reconfigurable processor: the resource
// capacity C of the FPGA, the logic-optimization factor alpha applied
// to summed FG costs (eq. 11), the scratch memory size Ms available
// between segments (eq. 3), and the reconfiguration overhead used by
// the runtime model.
type Device struct {
	// Name labels the device in reports, e.g. "xc4010".
	Name string
	// CapacityFG is C: the number of function generators available.
	CapacityFG int
	// Alpha is the user-defined logic-optimization factor in (0,1];
	// the paper cites typical values of 0.6-0.8 for Synopsys FPGA
	// components.
	Alpha float64
	// ScratchMem is Ms: data units storable between segments.
	ScratchMem int
	// ReconfigNS is the time to reconfigure the device between
	// segments (runtime model only; the ILP minimizes the amount of
	// inter-segment data, which is the proxy the paper optimizes).
	ReconfigNS float64
	// MemXferNSPerUnit is the time to store or restore one data unit
	// (runtime model only).
	MemXferNSPerUnit float64
}

// Validate checks device parameters.
func (d Device) Validate() error {
	if d.CapacityFG <= 0 {
		return fmt.Errorf("library: device %q has non-positive capacity", d.Name)
	}
	if d.Alpha <= 0 || d.Alpha > 1 {
		return fmt.Errorf("library: device %q alpha %v outside (0,1]", d.Name, d.Alpha)
	}
	if d.ScratchMem < 0 {
		return fmt.Errorf("library: device %q negative scratch memory", d.Name)
	}
	return nil
}

// EffectiveFG returns the alpha-scaled FG footprint of a set of FG
// costs, the left side of eq. (11).
func (d Device) EffectiveFG(sumFG int) float64 { return d.Alpha * float64(sumFG) }

// Fits reports whether a segment using sumFG function generators meets
// the capacity constraint (eq. 11).
func (d Device) Fits(sumFG int) bool {
	return d.EffectiveFG(sumFG) <= float64(d.CapacityFG)
}
