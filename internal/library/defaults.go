package library

import "repro/internal/graph"

// Default characterized components, loosely modeled on 16-bit XC4000
// macros of the paper's era. FG costs are of the magnitude the paper's
// Synopsys-characterized library would produce; exact values only shift
// the resource constraint, not the structure of the formulation.

// Add16 is a 16-bit ripple-carry adder.
func Add16() FUType {
	return FUType{Name: "add16", Ops: []graph.OpKind{graph.OpAdd}, FG: 16, Latency: 1, DelayNS: 28}
}

// Sub16 is a 16-bit subtracter.
func Sub16() FUType {
	return FUType{Name: "sub16", Ops: []graph.OpKind{graph.OpSub}, FG: 16, Latency: 1, DelayNS: 28}
}

// AddSub16 is a combined adder/subtracter (one instance serves both
// kinds, letting the optimizer explore heterogeneous bindings).
func AddSub16() FUType {
	return FUType{Name: "addsub16", Ops: []graph.OpKind{graph.OpAdd, graph.OpSub}, FG: 18, Latency: 1, DelayNS: 30}
}

// Mul16 is a 16-bit array multiplier, single cycle.
func Mul16() FUType {
	return FUType{Name: "mul16", Ops: []graph.OpKind{graph.OpMul}, FG: 96, Latency: 1, DelayNS: 60}
}

// Mul16x2 is a two-cycle non-pipelined multiplier (multicycle
// extension).
func Mul16x2() FUType {
	return FUType{Name: "mul16x2", Ops: []graph.OpKind{graph.OpMul}, FG: 60, Latency: 2, DelayNS: 32}
}

// Mul16Pipe is a two-stage pipelined multiplier (pipelining extension).
func Mul16Pipe() FUType {
	return FUType{Name: "mul16p", Ops: []graph.OpKind{graph.OpMul}, FG: 72, Latency: 2, Pipelined: true, DelayNS: 32}
}

// Cmp16 is a 16-bit comparator.
func Cmp16() FUType {
	return FUType{Name: "cmp16", Ops: []graph.OpKind{graph.OpCmp}, FG: 9, Latency: 1, DelayNS: 20}
}

// Logic16 executes bitwise and/or and shifts.
func Logic16() FUType {
	return FUType{Name: "logic16", Ops: []graph.OpKind{graph.OpAnd, graph.OpOr, graph.OpShl}, FG: 8, Latency: 1, DelayNS: 12}
}

// Div16 is a multicycle divider.
func Div16() FUType {
	return FUType{Name: "div16", Ops: []graph.OpKind{graph.OpDiv}, FG: 110, Latency: 4, DelayNS: 30}
}

// DefaultLibrary returns the standard component library used by the
// examples, generators and benchmark harness.
func DefaultLibrary() *Library {
	return MustLibrary(
		Add16(), Sub16(), AddSub16(),
		Mul16(), Mul16x2(), Mul16Pipe(),
		Cmp16(), Logic16(), Div16(),
	)
}

// XC4010 approximates the paper-era Xilinx XC4010 target: 400 CLBs with
// two function generators each.
func XC4010() Device {
	return Device{
		Name:             "xc4010",
		CapacityFG:       160,
		Alpha:            0.7,
		ScratchMem:       64,
		ReconfigNS:       50e6, // tens of milliseconds, SRAM FPGA full reconfig
		MemXferNSPerUnit: 200,
	}
}

// XC4025 is a larger device for the bigger benchmark graphs.
func XC4025() Device {
	return Device{
		Name:             "xc4025",
		CapacityFG:       280,
		Alpha:            0.7,
		ScratchMem:       128,
		ReconfigNS:       80e6,
		MemXferNSPerUnit: 200,
	}
}

// PaperAllocation builds the A+M+S exploration sets used throughout the
// paper's tables: a adders, m multipliers, s subtracters.
func PaperAllocation(lib *Library, a, m, s int) (*Allocation, error) {
	counts := map[string]int{}
	if a > 0 {
		counts["add16"] = a
	}
	if m > 0 {
		counts["mul16"] = m
	}
	if s > 0 {
		counts["sub16"] = s
	}
	return NewAllocation(lib, counts)
}
