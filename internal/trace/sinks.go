package trace

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sync"
)

// WriterSink encodes events as NDJSON (one JSON object per line) to an
// io.Writer — the format behind the -trace flag of tpsyn and tptables.
// Emissions are serialized by an internal mutex.
type WriterSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewWriterSink returns a sink writing NDJSON to w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink. Encoding errors are dropped: tracing is
// telemetry and must never fail a solve.
func (s *WriterSink) Emit(e Event) {
	s.mu.Lock()
	_ = s.enc.Encode(&e)
	s.mu.Unlock()
}

// SlogSink forwards events to a structured slog.Logger at Info level,
// with the event kind as the message and the non-zero fields as
// attributes.
type SlogSink struct {
	l *slog.Logger
}

// NewSlogSink returns a sink logging through l (nil uses the default
// logger).
func NewSlogSink(l *slog.Logger) *SlogSink {
	if l == nil {
		l = slog.Default()
	}
	return &SlogSink{l: l}
}

// Emit implements Sink.
func (s *SlogSink) Emit(e Event) {
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.Uint64("seq", e.Seq),
		slog.Float64("t_ms", e.TMS),
	)
	if e.Nodes != 0 {
		attrs = append(attrs, slog.Int64("nodes", e.Nodes))
	}
	if e.Pivots != 0 {
		attrs = append(attrs, slog.Int64("pivots", e.Pivots))
	}
	if e.HasIncumbent {
		attrs = append(attrs, slog.Float64("incumbent", e.Incumbent))
	}
	if e.Bound != 0 {
		attrs = append(attrs, slog.Float64("bound", e.Bound))
	}
	if e.Gap != 0 {
		attrs = append(attrs, slog.Float64("gap", e.Gap))
	}
	if e.Worker != 0 {
		attrs = append(attrs, slog.Int("worker", e.Worker))
	}
	if e.Vars != 0 {
		attrs = append(attrs, slog.Int("vars", e.Vars), slog.Int("rows", e.Rows), slog.Int("nnz", e.NNZ))
	}
	if e.Status != "" {
		attrs = append(attrs, slog.String("status", e.Status))
	}
	if e.Msg != "" {
		attrs = append(attrs, slog.String("msg", e.Msg))
	}
	s.l.LogAttrs(context.Background(), slog.LevelInfo, string(e.Kind), attrs...)
}

// Fanout replicates events to a dynamic set of sinks. Sinks may be
// added while emissions are in flight — the solve service attaches the
// ring of a deduplicated joiner job to the flight leader's fanout, so
// the joiner streams live progress from its join point onward.
type Fanout struct {
	mu    sync.RWMutex
	sinks []Sink
}

// NewFanout returns a fanout over the given sinks.
func NewFanout(sinks ...Sink) *Fanout {
	return &Fanout{sinks: append([]Sink(nil), sinks...)}
}

// Add attaches another sink; it receives events emitted from now on.
func (f *Fanout) Add(s Sink) {
	f.mu.Lock()
	f.sinks = append(f.sinks, s)
	f.mu.Unlock()
}

// Emit implements Sink.
func (f *Fanout) Emit(e Event) {
	f.mu.RLock()
	for _, s := range f.sinks {
		s.Emit(e)
	}
	f.mu.RUnlock()
}
