package trace

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestDisabledRecorderZeroAlloc pins the "disabled means free" contract
// of the flight recorder: a nil *Recorder (and a nil *Profile) must not
// allocate on any hot-path method, mirroring the tracer's guarantee.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	var p *Profile
	n := NodeRec{ID: 1, Col: -1}
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Enabled() {
			t.Fatal("nil recorder reports enabled")
		}
		r.Node(n)
		r.Incumbent(1, 2.0)
		r.Finalize("optimal", time.Second, 1, 1)
		p.Observe(PhaseNodeLP, 100)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %.1f times per run, want 0", allocs)
	}
}

func testRecording() *Recording {
	return &Recording{
		Label: "fir16/N2L2",
		Nodes: []NodeRec{
			{ID: 1, Col: -1, LP: "optimal", Obj: 12.5, HasObj: true, Best: 12.5, Pivots: 40, NS: 1000, TMS: 0.5},
			{ID: 2, Parent: 1, Depth: 1, Col: 7, Dir: 1, LP: "optimal", Obj: 13, HasObj: true, Best: 12.5, Pivots: 3, NS: 200, TMS: 0.7},
			{ID: 3, Parent: 2, Depth: 2, Col: 9, LP: "infeasible", Best: 13, Inc: 14, HasInc: true, Pivots: 5, NS: 300, TMS: 0.9, Worker: 2},
		},
		Incumbents: []IncRec{{Node: 2, Obj: 14, TMS: 0.8}},
		Dropped:    2,
		Status:     "optimal",
		WallNS:     5_000_000,
		TotalNodes: 5,
		Pivots:     48,
		Phases: []PhaseStat{
			{Name: "node-lp", Count: 3, SumNS: 1500, Buckets: []HistBucket{{Pow: 8, N: 1}, {Pow: 10, N: 2}}},
			{Name: "pricing", Count: 48, SumNS: 700, Buckets: []HistBucket{{Pow: 4, N: 48}}},
		},
		Amend: &AmendRec{Of: "job-1", Generation: 2, Class: "bounds", Path: "warm"},
	}
}

// TestRecordingCodecRoundTrip drives both codec forms end to end: a
// recording must survive encode→decode bit-for-bit, plain and gzipped,
// and the decoder must auto-detect compression from the magic bytes.
func TestRecordingCodecRoundTrip(t *testing.T) {
	want := testRecording()
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := want.Encode(&buf, compress); err != nil {
			t.Fatalf("encode(compress=%v): %v", compress, err)
		}
		if compress {
			if b := buf.Bytes(); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
				t.Fatalf("compressed recording lacks gzip magic: % x", b[:2])
			}
		}
		got, err := DecodeRecording(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode(compress=%v): %v", compress, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip (compress=%v):\n got %+v\nwant %+v", compress, got, want)
		}
	}
}

// TestDecodeRejectsGarbage: the decoder must fail cleanly on
// non-recording input rather than return an empty recording.
func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecording(bytes.NewReader([]byte("{\"rk\":\"node\"}\n"))); err == nil {
		t.Fatal("decoding a headerless stream succeeded")
	}
	if _, err := DecodeRecording(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
}

// TestRecorderBounded: past the node limit the recorder keeps the first
// records (the lineage prefix) and counts the rest as dropped, and the
// snapshot reports both.
func TestRecorderBounded(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Node(NodeRec{ID: int64(i), Col: -1})
	}
	r.Incumbent(3, 7)
	r.Finalize("optimal", 123*time.Millisecond, 10, 99)
	rec := r.Snapshot()
	if len(rec.Nodes) != 4 {
		t.Fatalf("kept %d nodes, want 4", len(rec.Nodes))
	}
	for i, n := range rec.Nodes {
		if n.ID != int64(i+1) {
			t.Fatalf("node %d has ID %d, want the FIRST nodes kept", i, n.ID)
		}
	}
	if rec.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped)
	}
	if rec.TotalNodes != 10 || rec.Pivots != 99 || rec.Status != "optimal" {
		t.Fatalf("footer mismatch: %+v", rec)
	}
	if len(rec.Incumbents) != 1 || rec.Incumbents[0].Node != 3 {
		t.Fatalf("incumbent marks: %+v", rec.Incumbents)
	}
}

// TestRecorderSnapshotWhileRunning: a snapshot taken before Finalize is
// a valid partial recording and must not alias the recorder's state.
func TestRecorderSnapshotWhileRunning(t *testing.T) {
	r := NewRecorder(0)
	r.Node(NodeRec{ID: 1, Col: -1})
	rec := r.Snapshot()
	if rec.Status != "" || len(rec.Nodes) != 1 {
		t.Fatalf("partial snapshot: %+v", rec)
	}
	r.Node(NodeRec{ID: 2, Parent: 1})
	if len(rec.Nodes) != 1 {
		t.Fatal("snapshot aliases the recorder's node slice")
	}
}

// TestHistBuckets checks the log-2 bucketing edges.
func TestHistBuckets(t *testing.T) {
	var h Hist
	h.Observe(0)             // pow 0
	h.Observe(1)             // pow 1
	h.Observe(2)             // pow 2
	h.Observe(3)             // pow 2
	h.Observe(4)             // pow 3
	h.Observe(-5)            // clamped to 0 → pow 0
	h.Observe(math.MaxInt64) // clamped into the last bucket
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, histBuckets - 1: 1}
	for _, b := range h.Buckets() {
		if want[b.Pow] != b.N {
			t.Fatalf("bucket pow=%d has %d, want %d", b.Pow, b.N, want[b.Pow])
		}
		delete(want, b.Pow)
	}
	if len(want) != 0 {
		t.Fatalf("missing buckets: %v", want)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
}

// TestHistConcurrentObserveMerge exercises the lock-free histogram the
// way parallel branch-and-bound workers do — concurrent Observe on
// per-worker profiles racing with Merge into a shared aggregate — and
// verifies no observation is lost. Run with -race.
func TestHistConcurrentObserveMerge(t *testing.T) {
	const workers, perWorker = 8, 2000
	var agg Profile
	profs := make([]*Profile, workers)
	for i := range profs {
		profs[i] = NewProfile()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(p *Profile, w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Observe(PhasePricing, int64(w*1000+i))
				p.Observe(PhaseNodeLP, int64(i))
			}
		}(profs[w], w)
	}
	// merge concurrently with the observers: snapshots in flight may be
	// partial but the final merge below must account for everything
	var mwg sync.WaitGroup
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		for i := 0; i < 50; i++ {
			_ = agg.Snapshot()
		}
	}()
	wg.Wait()
	mwg.Wait()
	for _, p := range profs {
		agg.Merge(p)
	}
	if n := agg.Hist(PhasePricing).Count(); n != workers*perWorker {
		t.Fatalf("pricing count = %d, want %d", n, workers*perWorker)
	}
	if n := agg.Hist(PhaseNodeLP).Count(); n != workers*perWorker {
		t.Fatalf("node-lp count = %d, want %d", n, workers*perWorker)
	}
	var buckets int64
	for _, b := range agg.Hist(PhasePricing).Buckets() {
		buckets += b.N
	}
	if buckets != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", buckets, workers*perWorker)
	}
}

// TestPhaseTaxonomy pins the phase names (they are codec-stable: they
// appear in recordings and Prometheus labels) and the two-level split.
func TestPhaseTaxonomy(t *testing.T) {
	wantNode := []Phase{PhaseNodeLP, PhaseProbe, PhaseComplete, PhaseBranchSelect, PhaseVerify}
	wantLP := []Phase{PhasePricing, PhaseRatio, PhaseUpdate, PhaseRefactorize, PhaseFarkas}
	for _, p := range wantNode {
		if !p.NodeLevel() {
			t.Errorf("%v should be node-level", p)
		}
	}
	for _, p := range wantLP {
		if p.NodeLevel() {
			t.Errorf("%v should be LP-internal", p)
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == "unknown" || p.String() == "" {
			t.Errorf("phase %d has no name", p)
		}
		back, ok := ParsePhase(p.String())
		if !ok || back != p {
			t.Errorf("ParsePhase(%q) = %v, %v", p.String(), back, ok)
		}
	}
	if _, ok := ParsePhase("bogus"); ok {
		t.Error("ParsePhase accepted a bogus name")
	}
}

// TestProfileSnapshotOmitsEmpty: only observed phases appear.
func TestProfileSnapshotOmitsEmpty(t *testing.T) {
	p := NewProfile()
	p.Observe(PhaseFarkas, 10)
	snap := p.Snapshot()
	if len(snap) != 1 || snap[0].Name != "farkas" || snap[0].Count != 1 || snap[0].SumNS != 10 {
		t.Fatalf("snapshot: %+v", snap)
	}
}
