package trace

import (
	"strings"
	"testing"
)

func TestSpansTreeSnapshot(t *testing.T) {
	sc := NewSpans("")
	if len(sc.TraceID()) != 32 {
		t.Fatalf("trace id %q, want 32 hex digits", sc.TraceID())
	}
	root := sc.Root("request")
	solve := root.Child("solve")
	search := solve.Child("search")
	search.SetStr("mode", "steal")
	search.SetNum("nodes", 42)
	w := search.Child("worker")
	w.SetWorker(3)
	if got := sc.Open(); got != 4 {
		t.Fatalf("open = %d, want 4", got)
	}
	w.End()
	search.End()
	search.End() // idempotent
	search.SetNum("late", 1)
	solve.End()
	root.End()
	if got := sc.Open(); got != 0 {
		t.Fatalf("open after ends = %d, want 0", got)
	}

	recs := sc.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot has %d spans, want 4", len(recs))
	}
	// end order: worker, search, solve, request
	names := []string{"worker", "search", "solve", "request"}
	for i, n := range names {
		if recs[i].Name != n {
			t.Fatalf("span %d = %q, want %q", i, recs[i].Name, n)
		}
		if recs[i].TraceID != sc.TraceID() {
			t.Fatalf("span %d trace id %q", i, recs[i].TraceID)
		}
	}
	if recs[0].Worker != 3 {
		t.Fatalf("worker span worker = %d", recs[0].Worker)
	}
	if recs[1].Num["nodes"] != 42 || recs[1].Str["mode"] != "steal" {
		t.Fatalf("search attrs = %v / %v", recs[1].Num, recs[1].Str)
	}
	if _, ok := recs[1].Num["late"]; ok {
		t.Fatal("post-End attribute was recorded")
	}
	// parent links: worker→search→solve→request, request has no parent
	if recs[0].ParentID != recs[1].SpanID || recs[1].ParentID != recs[2].SpanID ||
		recs[2].ParentID != recs[3].SpanID || recs[3].ParentID != "" {
		t.Fatalf("parent chain broken: %+v", recs)
	}
}

func TestSpansAdoptTraceparent(t *testing.T) {
	const hdr = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sc := NewSpans(hdr)
	if sc.TraceID() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id %q not adopted", sc.TraceID())
	}
	root := sc.Root("request")
	root.End()
	recs := sc.Snapshot()
	if recs[0].ParentID != "b7ad6b7169203331" {
		t.Fatalf("root parent %q, want the caller's span id", recs[0].ParentID)
	}
	// the echoed header must parse and name the adopted trace
	tp := sc.Traceparent(root)
	tid, sid, ok := ParseTraceparent(tp)
	if !ok || tid != sc.TraceID() || sid != recs[0].SpanID {
		t.Fatalf("echoed traceparent %q does not round-trip (ok=%v tid=%q sid=%q)", tp, ok, tid, sid)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatal("valid header rejected")
	}
	bad := []string{
		"",
		"garbage",
		valid[:54],                              // truncated
		"ff" + valid[2:],                        // forbidden version
		"00-" + strings.Repeat("0", 32) + valid[35:], // all-zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // all-zero span id
		strings.ToUpper(valid),                  // uppercase hex
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // wrong separator
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("accepted malformed traceparent %q", h)
		}
	}
	// a malformed header starts a fresh trace instead of failing
	sc := NewSpans("garbage")
	if len(sc.TraceID()) != 32 {
		t.Fatalf("fresh trace id %q", sc.TraceID())
	}
}

func TestSpansSinkAndCap(t *testing.T) {
	sc := NewSpans("")
	var sunk []SpanRec
	sc.SetSink(func(r SpanRec) { sunk = append(sunk, r) })
	root := sc.Root("request")
	n := maxSpansPerTrace + 10
	for i := 0; i < n; i++ {
		root.Child("c").End()
	}
	root.End()
	if got := len(sc.Snapshot()); got != maxSpansPerTrace {
		t.Fatalf("snapshot holds %d spans, want the %d cap", got, maxSpansPerTrace)
	}
	// the sink sees every span, including the ones past the buffer cap
	if len(sunk) != n+1 {
		t.Fatalf("sink saw %d spans, want %d", len(sunk), n+1)
	}
}

// TestSpanOffZeroAlloc pins the nil-receiver contract: with spans off
// (nil *Spans / nil *Span) the entire per-node span surface costs zero
// allocations, which is what lets the solver keep the calls unguarded.
func TestSpanOffZeroAlloc(t *testing.T) {
	var sc *Spans
	var sp *Span
	if a := testing.AllocsPerRun(200, func() {
		c := sp.Child("x")
		c.SetWorker(1)
		c.SetNum("n", 1)
		c.SetStr("s", "v")
		c.End()
		_ = sc.Root("r")
		_ = sc.TraceID()
		_ = sc.Open()
	}); a != 0 {
		t.Fatalf("span-off path allocates %.1f per op, want 0", a)
	}
}
