package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/exact"
)

// recordVersion is the codec version stamped into the header line.
// Decoders accept only versions they know.
const recordVersion = 1

// DefaultRecordLimit bounds the nodes kept by a Recorder when the
// caller passes no limit of its own. The recorder keeps the FIRST limit
// nodes — the lineage prefix rooted at the search root — and counts the
// rest as dropped, so a bounded recording is always a connected tree.
const DefaultRecordLimit = 1 << 16

// NodeRec is one recorded branch-and-bound node: the full search
// lineage (id/parent/branching edge), the LP outcome and bounds at the
// node, and the cost of solving it. IDs are the solver's global
// explored-node counter (1-based, the root is 1), so they are unique
// across parallel workers; under a parallel solve a subproblem handed
// to a worker is re-solved at pickup and appears as a child of its
// split-time node.
type NodeRec struct {
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	Worker int32 `json:"worker,omitempty"`
	Depth  int32 `json:"depth,omitempty"`
	// Col and Dir describe the branching edge from Parent: the fixed
	// column and the value (0 or 1) it was fixed to. Col is -1 at the
	// root and at parallel pickup re-entries with an empty fix prefix.
	Col int32 `json:"col"`
	Dir int8  `json:"dir,omitempty"`
	// LP is the node's LP status string (lp.Status.String()).
	LP string `json:"lp,omitempty"`
	// Obj is the node's LP objective, valid when HasObj (optimal LP).
	Obj    float64 `json:"obj,omitempty"`
	HasObj bool    `json:"has_obj,omitempty"`
	// Best is the global proved bound and Inc the incumbent objective
	// observed at node entry (HasInc reports whether one existed).
	Best   float64 `json:"best,omitempty"`
	Inc    float64 `json:"inc,omitempty"`
	HasInc bool    `json:"has_inc,omitempty"`
	// Pivots and NS are the simplex pivots and wall nanoseconds spent
	// solving this node's LP relaxation.
	Pivots int64 `json:"pivots,omitempty"`
	NS     int64 `json:"ns,omitempty"`
	// TMS is the time since recording started, in milliseconds.
	TMS float64 `json:"t_ms,omitempty"`
}

// IncRec marks an incumbent install: the node that produced it, the
// objective and the time since recording started.
type IncRec struct {
	Node int64   `json:"node"`
	Obj  float64 `json:"obj"`
	TMS  float64 `json:"t_ms,omitempty"`
}

// LPStat is the LP-engine summary stamped into a recording footer:
// which engine ran (dense tableau or sparse revised simplex) and, on
// the revised engine, the factorization/solve counters that let replay
// analysis derive fill-in (FactorNNZ / BasisNNZ) and the realized
// refactorization interval (pivots / Factorizations) offline. Mirrors
// lp.Counters without importing it (lp depends on trace, not the
// reverse).
type LPStat struct {
	Engine         string `json:"engine,omitempty"`
	Factorizations int64  `json:"factorizations,omitempty"`
	FTRANs         int64  `json:"ftrans,omitempty"`
	BTRANs         int64  `json:"btrans,omitempty"`
	EtaNNZ         int64  `json:"eta_nnz,omitempty"`
	BasisNNZ       int64  `json:"basis_nnz,omitempty"`
	FactorNNZ      int64  `json:"factor_nnz,omitempty"`
}

// CutRec records one root-strengthening cutting plane appended to the
// model before the tree search: its family name, sparse coefficients
// and range, so a recording fully describes the cut-augmented model a
// replayed search ran on. Nil Lo/Hi stand for -Inf/+Inf (JSON cannot
// carry non-finite numbers).
type CutRec struct {
	Name string    `json:"name"`
	Idx  []int     `json:"idx,omitempty"`
	Val  []float64 `json:"val,omitempty"`
	Lo   *float64  `json:"lo,omitempty"`
	Hi   *float64  `json:"hi,omitempty"`
	TMS  float64   `json:"t_ms,omitempty"`
}

// AmendRec is the amend-lineage stamp of a recording: which job (by
// id) this solve amended, the amend generation (1 for the first amend
// of a cold job), and the delta classification/path the engine
// dispatched it down.
type AmendRec struct {
	Of         string `json:"of"`
	Generation int    `json:"gen"`
	Class      string `json:"class,omitempty"`
	Path       string `json:"path,omitempty"`
}

// Recorder is the search-tree flight recorder: a bounded, in-memory
// collector of NodeRec lineage and incumbent marks that snapshots into
// a Recording. A nil *Recorder is the valid "off" state — every method
// has a nil-receiver guard and the disabled path performs no allocation
// (guarded by testing.AllocsPerRun in this package's tests) — so the
// branch-and-bound hot loop gates on a single pointer compare exactly
// like the Tracer.
//
// A Recorder is safe for concurrent use by parallel workers; recording
// serializes on one mutex, which is acceptable because recording is an
// explicitly-requested diagnostic mode, never the default path.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	label   string
	limit   int
	nodes   []NodeRec
	incs    []IncRec
	cuts    []CutRec
	dropped int64
	prof    *Profile

	// terminal state, set once by Finalize
	status string
	wallNS int64
	total  int64
	pivots int64
	cert   *exact.Certificate
	amend  *AmendRec
	lpstat *LPStat

	// search-scheduler stats, set once by SetSearchStats
	mode          string
	steals        int64
	firstIncNodes int64
	firstIncNS    int64
}

// NewRecorder returns a recorder keeping at most limit nodes;
// limit <= 0 means DefaultRecordLimit.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultRecordLimit
	}
	return &Recorder{start: time.Now(), limit: limit}
}

// Enabled reports whether the recorder is active; nil receivers return
// false. This is the hot-path guard.
func (r *Recorder) Enabled() bool { return r != nil }

// SetLabel names the recording (graph name, job id). No-op on nil.
func (r *Recorder) SetLabel(s string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.label = s
	r.mu.Unlock()
}

// SetProfile attaches the phase profile whose snapshot lands in the
// recording's footer. No-op on nil.
func (r *Recorder) SetProfile(p *Profile) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.prof = p
	r.mu.Unlock()
}

// Profile returns the attached phase profile (nil on a nil recorder).
func (r *Recorder) Profile() *Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prof
}

// Node records one explored node, stamping its TMS. Past the node
// limit the record is counted as dropped instead — keeping the first
// nodes preserves the lineage prefix around the root, which is what
// replay analysis needs. No-op on a nil recorder.
func (r *Recorder) Node(n NodeRec) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.nodes) >= r.limit {
		r.dropped++
		r.mu.Unlock()
		return
	}
	n.TMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	r.nodes = append(r.nodes, n)
	r.mu.Unlock()
}

// Incumbent marks an incumbent install produced by node. Incumbent
// marks are never dropped: they are rare and carry the convergence
// story. No-op on a nil recorder.
func (r *Recorder) Incumbent(node int64, obj float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.incs = append(r.incs, IncRec{
		Node: node, Obj: obj,
		TMS: float64(time.Since(r.start)) / float64(time.Millisecond),
	})
	r.mu.Unlock()
}

// Cut records one root-strengthening cut, stamping its TMS. Cut marks
// are never dropped: there are at most a few dozen per solve and they
// define the model the recorded search explored. No-op on nil.
func (r *Recorder) Cut(c CutRec) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c.TMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	r.cuts = append(r.cuts, c)
	r.mu.Unlock()
}

// SetSearchStats stamps the search-scheduler summary onto the footer:
// the scheduler mode that ran (serial/steal/portfolio), the number of
// subproblem steals, and when the first incumbent landed (global node
// count and nanoseconds since the solve started; zero when no incumbent
// was found). No-op on nil.
func (r *Recorder) SetSearchStats(mode string, steals, firstIncNodes, firstIncNS int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.mode = mode
	r.steals = steals
	r.firstIncNodes = firstIncNodes
	r.firstIncNS = firstIncNS
	r.mu.Unlock()
}

// Finalize stamps the terminal solve outcome: status string, wall
// time, total explored nodes (which may exceed the recorded count when
// the limit dropped some) and total LP pivots. No-op on nil.
func (r *Recorder) Finalize(status string, wall time.Duration, nodes, pivots int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.status = status
	r.wallNS = int64(wall)
	r.total = nodes
	r.pivots = pivots
	r.mu.Unlock()
}

// SetLPStat stamps the LP-engine summary onto the recording footer.
// No-op on nil.
func (r *Recorder) SetLPStat(s LPStat) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.lpstat = &s
	r.mu.Unlock()
}

// SetCertificate attaches the exact certificate of the solve's verdict
// so the recording is self-certifying: tpreplay -certify re-runs the
// checks offline from the recording alone. No-op on nil.
func (r *Recorder) SetCertificate(c *exact.Certificate) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cert = c
	r.mu.Unlock()
}

// SetAmend stamps the amend lineage onto the recording, so a replayed
// flight recording of an amended solve names its base job and the
// delta path that produced it. No-op on nil.
func (r *Recorder) SetAmend(a *AmendRec) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.amend = a
	r.mu.Unlock()
}

// Snapshot copies the current state into an immutable Recording. Safe
// to call while the solve is still running (a partial recording) and
// returns nil on a nil recorder.
func (r *Recorder) Snapshot() *Recording {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := &Recording{
		Label:         r.label,
		Nodes:         append([]NodeRec(nil), r.nodes...),
		Incumbents:    append([]IncRec(nil), r.incs...),
		Cuts:          append([]CutRec(nil), r.cuts...),
		Dropped:       r.dropped,
		Status:        r.status,
		WallNS:        r.wallNS,
		TotalNodes:    r.total,
		Pivots:        r.pivots,
		Phases:        r.prof.Snapshot(),
		Certificate:   r.cert,
		Amend:         r.amend,
		LP:            r.lpstat,
		Mode:          r.mode,
		Steals:        r.steals,
		FirstIncNodes: r.firstIncNodes,
		FirstIncNS:    r.firstIncNS,
	}
	return rec
}

// Recording is an immutable search-tree recording: the decoded (or
// snapshotted) form of the NDJSON codec. It is what cmd/tpreplay and
// internal/viz consume.
type Recording struct {
	Label      string
	Nodes      []NodeRec
	Incumbents []IncRec
	// Dropped counts nodes beyond the recorder's limit (explored but
	// not recorded); TotalNodes and Pivots are the solve-wide totals
	// from the footer.
	Dropped    int64
	Status     string
	WallNS     int64
	TotalNodes int64
	Pivots     int64
	Phases     []PhaseStat
	// Certificate is the exact-arithmetic certificate of the recorded
	// solve's verdict, when the solve ran in certify mode. All numbers
	// inside are rational strings, so the recording stays re-checkable
	// offline without the original model.
	Certificate *exact.Certificate
	// Amend is the amend lineage when the recorded solve was dispatched
	// through /v1/jobs/{id}/amend; nil for a cold job.
	Amend *AmendRec
	// LP is the LP-engine summary of the recorded solve (engine name,
	// factorization/solve counters); nil on recordings made before the
	// field existed.
	LP *LPStat
	// Cuts lists the root-strengthening cutting planes appended before
	// the recorded search; empty when strengthening was off.
	Cuts []CutRec
	// Search-scheduler stats (additive footer fields, zero on old
	// recordings): the mode that ran, subproblem steals, and the global
	// node count / nanoseconds at the first incumbent install.
	Mode          string
	Steals        int64
	FirstIncNodes int64
	FirstIncNS    int64
}

// recLine is one NDJSON line of the codec: a kind tag plus exactly one
// payload. Header carries the version and label, node/inc stream the
// search, footer carries the terminal summary and phase histograms. A
// recording is: one hdr, any number of node/inc lines, one ftr.
type recLine struct {
	RK string     `json:"rk"`
	H  *recHdr    `json:"h,omitempty"`
	N  *NodeRec   `json:"n,omitempty"`
	I  *IncRec    `json:"i,omitempty"`
	F  *recFooter `json:"f,omitempty"`
	// C carries the exact certificate ("cert" lines). An additive kind:
	// old decoders skip unknown rk values, so the codec version stays 1.
	C *exact.Certificate `json:"c,omitempty"`
	// A carries the amend lineage ("amend" lines) — additive like C.
	A *AmendRec `json:"a,omitempty"`
	// X carries a root-strengthening cut ("cut" lines) — additive like C.
	X *CutRec `json:"x,omitempty"`
}

type recHdr struct {
	V     int    `json:"v"`
	Label string `json:"label,omitempty"`
}

type recFooter struct {
	Status  string      `json:"status,omitempty"`
	WallNS  int64       `json:"wall_ns,omitempty"`
	Nodes   int64       `json:"nodes,omitempty"`
	Pivots  int64       `json:"pivots,omitempty"`
	Dropped int64       `json:"dropped,omitempty"`
	Phases  []PhaseStat `json:"phases,omitempty"`
	// LP is additive: absent on old recordings, skipped by old decoders.
	LP *LPStat `json:"lp,omitempty"`
	// Search-scheduler stats, additive like LP.
	Mode          string `json:"mode,omitempty"`
	Steals        int64  `json:"steals,omitempty"`
	Cuts          int    `json:"cuts,omitempty"`
	FirstIncNodes int64  `json:"first_inc_nodes,omitempty"`
	FirstIncNS    int64  `json:"first_inc_ns,omitempty"`
}

// Encode writes the recording as NDJSON, gzip-compressed when compress
// is set. The plain form is line-oriented JSON for ad-hoc tooling; the
// compressed form is the compact interchange format (DecodeRecording
// auto-detects which one it is reading).
func (rec *Recording) Encode(w io.Writer, compress bool) error {
	if compress {
		zw := gzip.NewWriter(w)
		if err := rec.encodePlain(zw); err != nil {
			zw.Close()
			return err
		}
		return zw.Close()
	}
	return rec.encodePlain(w)
}

func (rec *Recording) encodePlain(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	line := recLine{RK: "hdr", H: &recHdr{V: recordVersion, Label: rec.Label}}
	if err := enc.Encode(line); err != nil {
		return err
	}
	for i := range rec.Nodes {
		if err := enc.Encode(recLine{RK: "node", N: &rec.Nodes[i]}); err != nil {
			return err
		}
	}
	for i := range rec.Incumbents {
		if err := enc.Encode(recLine{RK: "inc", I: &rec.Incumbents[i]}); err != nil {
			return err
		}
	}
	for i := range rec.Cuts {
		if err := enc.Encode(recLine{RK: "cut", X: &rec.Cuts[i]}); err != nil {
			return err
		}
	}
	if rec.Certificate != nil {
		if err := enc.Encode(recLine{RK: "cert", C: rec.Certificate}); err != nil {
			return err
		}
	}
	if rec.Amend != nil {
		if err := enc.Encode(recLine{RK: "amend", A: rec.Amend}); err != nil {
			return err
		}
	}
	f := &recFooter{
		Status: rec.Status, WallNS: rec.WallNS, Nodes: rec.TotalNodes,
		Pivots: rec.Pivots, Dropped: rec.Dropped, Phases: rec.Phases,
		LP: rec.LP, Mode: rec.Mode, Steals: rec.Steals, Cuts: len(rec.Cuts),
		FirstIncNodes: rec.FirstIncNodes, FirstIncNS: rec.FirstIncNS,
	}
	if err := enc.Encode(recLine{RK: "ftr", F: f}); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeRecording reads a recording written by Encode, auto-detecting
// gzip compression from the stream's magic bytes. A missing footer
// (e.g. a truncated capture of a crashed solve) is tolerated: the nodes
// read so far are returned with zero terminal fields.
func DecodeRecording(r io.Reader) (*Recording, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, zerr := gzip.NewReader(br)
		if zerr != nil {
			return nil, fmt.Errorf("trace: opening gzip recording: %w", zerr)
		}
		defer zr.Close()
		return decodePlain(zr)
	}
	return decodePlain(br)
}

func decodePlain(r io.Reader) (*Recording, error) {
	dec := json.NewDecoder(r)
	rec := &Recording{}
	sawHdr := false
	for {
		var line recLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: decoding recording: %w", err)
		}
		switch line.RK {
		case "hdr":
			if line.H == nil {
				return nil, fmt.Errorf("trace: recording header without payload")
			}
			if line.H.V != recordVersion {
				return nil, fmt.Errorf("trace: unsupported recording version %d (want %d)", line.H.V, recordVersion)
			}
			rec.Label = line.H.Label
			sawHdr = true
		case "node":
			if line.N != nil {
				rec.Nodes = append(rec.Nodes, *line.N)
			}
		case "inc":
			if line.I != nil {
				rec.Incumbents = append(rec.Incumbents, *line.I)
			}
		case "cert":
			rec.Certificate = line.C
		case "amend":
			rec.Amend = line.A
		case "cut":
			if line.X != nil {
				rec.Cuts = append(rec.Cuts, *line.X)
			}
		case "ftr":
			if line.F != nil {
				rec.Status = line.F.Status
				rec.WallNS = line.F.WallNS
				rec.TotalNodes = line.F.Nodes
				rec.Pivots = line.F.Pivots
				rec.Dropped = line.F.Dropped
				rec.Phases = line.F.Phases
				rec.LP = line.F.LP
				rec.Mode = line.F.Mode
				rec.Steals = line.F.Steals
				rec.FirstIncNodes = line.F.FirstIncNodes
				rec.FirstIncNS = line.F.FirstIncNS
			}
		default:
			// unknown line kinds are skipped so minor-version additions
			// stay readable by old decoders
		}
	}
	if !sawHdr {
		return nil, fmt.Errorf("trace: not a recording (no header line)")
	}
	return rec, nil
}
