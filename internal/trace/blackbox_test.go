package trace

import (
	"math"
	"testing"
)

func TestBlackBoxWrapAndDump(t *testing.T) {
	b := NewBlackBox(4)
	for i := 1; i <= 6; i++ {
		b.Record(BBEvent{Kind: BBNode, Node: int64(i)})
	}
	d := b.Dump()
	if d.Flushed {
		t.Fatal("unflushed box reports flushed")
	}
	if d.Total != 6 || b.Total() != 6 {
		t.Fatalf("total = %d, want 6", d.Total)
	}
	if len(d.Events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(d.Events))
	}
	// keep-last semantics: the oldest two fell off the front, order kept
	for i, e := range d.Events {
		if e.Node != int64(i+3) {
			t.Fatalf("event %d is node %d, want %d", i, e.Node, i+3)
		}
	}
	// partial fill dumps only what was recorded
	small := NewBlackBox(8)
	small.Record(BBEvent{Kind: BBNode, Node: 1})
	if d := small.Dump(); len(d.Events) != 1 || d.Total != 1 {
		t.Fatalf("partial dump %+v", d)
	}
}

func TestBlackBoxFlushFreezesFirstWins(t *testing.T) {
	b := NewBlackBox(4)
	var hooked []BBDump
	b.SetOnFlush(func(d BBDump) { hooked = append(hooked, d) })
	b.Record(BBEvent{Kind: BBNode, Node: 1})
	b.Record(BBEvent{Kind: BBPanic, Node: 1, Msg: "boom"})
	if !b.Flush("worker-panic") {
		t.Fatal("first flush reported false")
	}
	if b.Flush("stall") {
		t.Fatal("second flush won")
	}
	// recording continues, but the dump stays frozen at the anomaly
	b.Record(BBEvent{Kind: BBNode, Node: 2})
	d := b.Dump()
	if !d.Flushed || d.Reason != "worker-panic" {
		t.Fatalf("dump = %+v", d)
	}
	if len(d.Events) != 2 || d.Events[1].Kind != BBPanic || d.Events[1].Msg != "boom" {
		t.Fatalf("frozen events = %+v", d.Events)
	}
	if reason, ok := b.Flushed(); !ok || reason != "worker-panic" {
		t.Fatalf("Flushed() = %q, %v", reason, ok)
	}
	if len(hooked) != 1 || hooked[0].Reason != "worker-panic" {
		t.Fatalf("hook calls = %+v", hooked)
	}
}

func TestBlackBoxSanitizesNonFinite(t *testing.T) {
	b := NewBlackBox(2)
	b.Record(BBEvent{Kind: BBNode, Obj: math.Inf(1), Bound: math.NaN(), Incumbent: math.Inf(-1)})
	e := b.Dump().Events[0]
	if e.Obj != 0 || e.Bound != 0 || e.Incumbent != 0 {
		t.Fatalf("non-finite floats survived: %+v", e)
	}
}

// TestBlackBoxOffZeroAlloc pins the off state: a nil *BlackBox absorbs
// the full recording surface for free.
func TestBlackBoxOffZeroAlloc(t *testing.T) {
	var b *BlackBox
	if a := testing.AllocsPerRun(200, func() {
		b.Record(BBEvent{Kind: BBNode, Node: 1})
		_ = b.Flush("x")
		_, _ = b.Flushed()
		_ = b.Total()
	}); a != 0 {
		t.Fatalf("blackbox-off path allocates %.1f per op, want 0", a)
	}
}

// TestBlackBoxSteadyStateAllocs pins the always-on cost: recording into
// a live, pre-filled ring must not touch the heap, which is what makes
// the black box safe to leave on for every node of every job.
func TestBlackBoxSteadyStateAllocs(t *testing.T) {
	b := NewBlackBox(16)
	for i := 0; i < 32; i++ { // wrap at least once first
		b.Record(BBEvent{Kind: BBNode, Node: int64(i)})
	}
	if a := testing.AllocsPerRun(200, func() {
		b.Record(BBEvent{Kind: BBNode, Node: 99, Worker: 1, Depth: 3, Bound: 1.5, Incumbent: 2})
	}); a != 0 {
		t.Fatalf("steady-state Record allocates %.1f per op, want 0", a)
	}
}
