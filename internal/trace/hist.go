package trace

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log-2 buckets of a Hist. Bucket 0 counts
// zero-duration observations; bucket k counts durations in
// [2^(k-1), 2^k) nanoseconds, so the last bucket's upper edge is
// 2^(histBuckets-1) ns ≈ 1.6 days — far beyond any solve this stack
// runs.
const histBuckets = 48

// Hist is a log-bucketed duration histogram with lock-free atomic
// buckets, so parallel branch-and-bound workers can share one instance
// and record into it concurrently. Observations are nanosecond
// durations; the bucket of a value v is bits.Len64(v), i.e. buckets
// double in width.
type Hist struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	b     [histBuckets]atomic.Int64
}

// Observe records one duration of ns nanoseconds. Negative values are
// clamped to zero. Safe for concurrent use.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.b[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Merge adds o's contents into h. Safe under concurrent Observe calls
// on either side: the per-bucket adds are atomic, so a concurrent
// snapshot may see a partially-merged state but never a corrupted one.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	for i := range o.b {
		if n := o.b[i].Load(); n != 0 {
			h.b[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// SumNS returns the total observed nanoseconds.
func (h *Hist) SumNS() int64 { return h.sum.Load() }

// HistBucket is one non-empty bucket of a histogram snapshot: all
// observations v with bits.Len64(v) == Pow, i.e. v < 2^Pow ns (and
// v >= 2^(Pow-1) for Pow > 0).
type HistBucket struct {
	Pow int   `json:"pow"`
	N   int64 `json:"n"`
}

// Buckets returns the non-empty buckets in increasing Pow order.
func (h *Hist) Buckets() []HistBucket {
	var out []HistBucket
	for i := range h.b {
		if n := h.b[i].Load(); n != 0 {
			out = append(out, HistBucket{Pow: i, N: n})
		}
	}
	return out
}
