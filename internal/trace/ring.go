package trace

import "sync"

// defaultRingCap bounds a Ring created with capacity <= 0.
const defaultRingCap = 512

// Ring is a fixed-capacity in-memory event sink that keeps the most
// recent events and supports cursor-based incremental reads plus a
// broadcast wakeup channel — the substrate of the service's per-job
// SSE streaming. All methods are safe for concurrent use.
//
// Events are addressed by their absolute emission index (the first
// event emitted into the ring has index 1); once the ring wraps, the
// oldest events are dropped and a lagging reader simply resumes at the
// oldest buffered one.
type Ring struct {
	mu     sync.Mutex
	buf    []Event
	total  uint64 // events ever emitted into the ring
	notify chan struct{}
	closed bool
}

// NewRing returns a ring keeping the last capacity events (<= 0 means
// 512).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = defaultRingCap
	}
	return &Ring{
		buf:    make([]Event, 0, capacity),
		notify: make(chan struct{}),
	}
}

// NewRingAt returns a ring whose absolute indexing starts after base:
// the first event emitted has index base+1. An amended job's ring is
// anchored at its parent ring's Total so SSE event ids stay monotone
// across amend generations and a Last-Event-ID resume spans the
// boundary.
func NewRingAt(capacity int, base uint64) *Ring {
	r := NewRing(capacity)
	r.total = base
	return r
}

// Emit appends e, dropping the oldest buffered event when full, and
// wakes every waiter. Events emitted after Close are discarded.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if len(r.buf) == cap(r.buf) {
		copy(r.buf, r.buf[1:])
		r.buf[len(r.buf)-1] = e
	} else {
		r.buf = append(r.buf, e)
	}
	r.total++
	close(r.notify) // broadcast; waiters re-arm via Wait
	r.notify = make(chan struct{})
	r.mu.Unlock()
}

// Since returns a copy of the buffered events with absolute index >
// after, plus the new cursor (the absolute index of the last event
// returned, or the current total when nothing new is buffered). Pass 0
// to read from the oldest buffered event.
func (r *Ring) Since(after uint64) ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	first := r.total - uint64(len(r.buf)) // absolute index of buf[0] minus 1
	if after < first {
		after = first // the reader lagged past the drop horizon
	}
	if after >= r.total {
		return nil, r.total
	}
	out := append([]Event(nil), r.buf[after-first:]...)
	return out, r.total
}

// Wait returns a channel closed on the next Emit or Close. Obtain the
// channel BEFORE draining with Since to avoid missed wakeups; a closed
// ring returns an already-closed channel.
func (r *Ring) Wait() <-chan struct{} {
	r.mu.Lock()
	ch := r.notify
	r.mu.Unlock()
	return ch
}

// Close marks the ring complete: waiters wake, later Emit calls are
// discarded, and buffered events remain readable. Close is idempotent.
func (r *Ring) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.notify)
	}
	r.mu.Unlock()
}

// Closed reports whether Close was called.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Total returns how many events were ever emitted into the ring
// (including dropped ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns a copy of the currently buffered events.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.buf...)
}
