package trace

import (
	"bytes"
	"testing"

	"repro/internal/exact"
)

// certFixture is a small, genuinely checkable certificate: the
// covering model min x0+x1 s.t. x0+x1 >= 1 over [0,1]^2 with the
// optimal incumbent (1,0) and the proving dual y = 1.
func certFixture() *exact.Certificate {
	c := &exact.Certificate{
		Version:     1,
		Label:       "cover",
		Kind:        exact.KindOptimal,
		Objective:   "1",
		ObjIntegral: true,
		IntVars:     []int{0, 1},
		X:           []string{"1", "0"},
		DualY:       []string{"1"},
		Problem: &exact.Problem{
			Obj:  []string{"1", "1"},
			Lo:   []string{"0", "0"},
			Hi:   []string{"1", "1"},
			Rows: []exact.Row{{Idx: []int{0, 1}, Val: []string{"1", "1"}, Lo: "1", Hi: "inf"}},
		},
	}
	c.Check()
	return c
}

// TestRecordingCertificateRoundTrip drives the additive "cert" line
// through both codec forms: the certificate must survive
// encode→decode and still re-verify offline from the decoded bytes.
func TestRecordingCertificateRoundTrip(t *testing.T) {
	cert := certFixture()
	if !cert.Valid {
		t.Fatalf("fixture certificate invalid: %v", cert.Err())
	}
	r := NewRecorder(0)
	r.SetLabel("cover")
	r.Node(NodeRec{ID: 1, Col: -1, LP: "optimal"})
	r.Finalize("optimal", 0, 1, 3)
	r.SetCertificate(cert)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := r.Snapshot().Encode(&buf, compress); err != nil {
			t.Fatalf("encode(compress=%v): %v", compress, err)
		}
		got, err := DecodeRecording(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode(compress=%v): %v", compress, err)
		}
		dc := got.Certificate
		if dc == nil {
			t.Fatalf("decoded recording lost its certificate (compress=%v)", compress)
		}
		if dc.Kind != exact.KindOptimal || dc.Label != "cover" {
			t.Fatalf("certificate identity drifted: %+v", dc)
		}
		dc.Check() // offline re-verification, exactly what tpreplay -certify does
		if !dc.Valid {
			t.Fatalf("decoded certificate failed re-verification: %v", dc.Err())
		}
	}
}

// TestRecordingWithoutCertificateDecodesNil: recordings captured
// before (or without) certification must keep decoding, with a nil
// Certificate — the "cert" line is additive and the version stays 1.
func TestRecordingWithoutCertificateDecodesNil(t *testing.T) {
	r := NewRecorder(0)
	r.Finalize("optimal", 0, 1, 1)
	var buf bytes.Buffer
	if err := r.Snapshot().Encode(&buf, false); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"rk":"cert"`)) {
		t.Fatal("certificate line emitted for a recording without one")
	}
	got, err := DecodeRecording(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Certificate != nil {
		t.Fatalf("phantom certificate decoded: %+v", got.Certificate)
	}
}

// TestSetCertificateNilRecorder: the off state stays a no-op.
func TestSetCertificateNilRecorder(t *testing.T) {
	var r *Recorder
	r.SetCertificate(certFixture()) // must not panic
	if r.Snapshot() != nil {
		t.Fatal("nil recorder produced a snapshot")
	}
}
