package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Spans collects the hierarchical span tree of one request: a root span
// per job with children for the coarse solve stages (build, presolve,
// root-lp, cuts, dive, search, certify) and per-worker grandchildren
// under search. Spans follow the package's nil-receiver contract: a nil
// *Spans is the valid "off" state — Root returns a nil *Span, and every
// *Span method no-ops on nil — so disabled span plumbing costs a single
// pointer compare and zero allocations (guarded by AllocsPerRun tests).
//
// Span identity is W3C Trace Context compatible: a 32-hex-digit trace
// id shared by the whole tree and a 16-hex-digit span id per span. When
// a request arrives with a `traceparent` header the incoming trace id
// is adopted and the incoming span id becomes the root span's parent,
// so tpserve joins an existing distributed trace; otherwise fresh
// random ids are generated.
type Spans struct {
	mu      sync.Mutex
	start   time.Time
	traceID string
	parent  string // incoming parent span id, "" when not propagated
	done    []SpanRec
	dropped int64
	sink    func(SpanRec)
	open    atomic.Int64
}

// maxSpansPerTrace bounds the finished-span buffer of one trace; spans
// past the cap are counted as dropped rather than buffered. Real trees
// are tens of spans (stages + one per worker), so the cap only guards
// against a pathological caller.
const maxSpansPerTrace = 1024

// SpanRec is the immutable record of a finished span — the JSON-stable
// form served by /v1/jobs/{id}/spans and written to NDJSON span sinks.
// StartMS is relative to the trace's creation; attributes are split
// into numeric and string maps so the encoding stays flat.
type SpanRec struct {
	TraceID  string             `json:"trace_id"`
	SpanID   string             `json:"span_id"`
	ParentID string             `json:"parent_id,omitempty"`
	Name     string             `json:"name"`
	StartMS  float64            `json:"start_ms"`
	DurMS    float64            `json:"dur_ms"`
	Worker   int                `json:"worker,omitempty"`
	Num      map[string]float64 `json:"num,omitempty"`
	Str      map[string]string  `json:"str,omitempty"`
}

// NewSpans returns a span collector for one request. traceparent is the
// raw W3C header value ("" when absent); a parseable header joins the
// incoming trace, anything else starts a fresh one.
func NewSpans(traceparent string) *Spans {
	sc := &Spans{start: time.Now()}
	if tid, pid, ok := ParseTraceparent(traceparent); ok {
		sc.traceID, sc.parent = tid, pid
	} else {
		sc.traceID = randHex(16)
	}
	return sc
}

// TraceID returns the 32-hex-digit trace id ("" on nil).
func (sc *Spans) TraceID() string {
	if sc == nil {
		return ""
	}
	return sc.traceID
}

// SetSink installs a callback invoked with every finished span (e.g. an
// NDJSON writer). Must be set before spans end; no-op on nil.
func (sc *Spans) SetSink(fn func(SpanRec)) {
	if sc == nil {
		return
	}
	sc.mu.Lock()
	sc.sink = fn
	sc.mu.Unlock()
}

// Root starts the root span of the trace. Returns nil on a nil
// collector, which downstream Child/Set*/End calls tolerate.
func (sc *Spans) Root(name string) *Span {
	if sc == nil {
		return nil
	}
	s := &Span{sc: sc, id: randHex(8), parent: sc.parent, name: name, start: time.Now()}
	sc.open.Add(1)
	return s
}

// Traceparent renders the W3C header value identifying sp as the
// current span — the value to echo on HTTP responses so downstream
// callers can parent onto the server-side trace. "" when either side
// is nil.
func (sc *Spans) Traceparent(sp *Span) string {
	if sc == nil || sp == nil {
		return ""
	}
	return "00-" + sc.traceID + "-" + sp.id + "-01"
}

// Snapshot returns a copy of the finished spans in end order (nil on a
// nil collector). Open spans are not included — a live job's snapshot
// grows as stages finish.
func (sc *Spans) Snapshot() []SpanRec {
	if sc == nil {
		return nil
	}
	sc.mu.Lock()
	out := make([]SpanRec, len(sc.done))
	copy(out, sc.done)
	sc.mu.Unlock()
	return out
}

// Open reports the number of started-but-unfinished spans (0 on nil) —
// a balance check for tests and the debug surface.
func (sc *Spans) Open() int64 {
	if sc == nil {
		return 0
	}
	return sc.open.Load()
}

// WriteNDJSON writes the finished spans one JSON object per line.
func (sc *Spans) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range sc.Snapshot() {
		if err := enc.Encode(&r); err != nil {
			return err
		}
	}
	return nil
}

func (sc *Spans) finish(rec SpanRec) {
	sc.open.Add(-1)
	sc.mu.Lock()
	if len(sc.done) < maxSpansPerTrace {
		sc.done = append(sc.done, rec)
	} else {
		sc.dropped++
	}
	sink := sc.sink
	sc.mu.Unlock()
	if sink != nil {
		sink(rec)
	}
}

// Span is one timed region of a trace. All methods are safe on a nil
// receiver (the "off" state) and safe for concurrent use on a live one;
// a span must End exactly once — later Ends and post-End mutation are
// dropped.
type Span struct {
	sc     *Spans
	id     string
	parent string
	name   string
	start  time.Time
	worker int

	mu    sync.Mutex
	num   map[string]float64
	str   map[string]string
	ended bool
}

// Child starts a sub-span of s. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{sc: s.sc, id: randHex(8), parent: s.id, name: name, start: time.Now()}
	s.sc.open.Add(1)
	return c
}

// SetWorker tags the span with a 1-based parallel worker id.
func (s *Span) SetWorker(w int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.worker = w
	s.mu.Unlock()
}

// SetNum sets a numeric attribute. Non-finite values are dropped (the
// JSON encoder cannot carry them); no-op on nil.
func (s *Span) SetNum(key string, v float64) {
	if s == nil || !isFinite(v) {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.num == nil {
			s.num = make(map[string]float64, 8)
		}
		s.num[key] = v
	}
	s.mu.Unlock()
}

// SetStr sets a string attribute; no-op on nil or empty value.
func (s *Span) SetStr(key, v string) {
	if s == nil || v == "" {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.str == nil {
			s.str = make(map[string]string, 4)
		}
		s.str[key] = v
	}
	s.mu.Unlock()
}

// End finishes the span, recording it with its parent collector. Only
// the first End takes effect; nil receivers no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRec{
		TraceID:  s.sc.traceID,
		SpanID:   s.id,
		ParentID: s.parent,
		Name:     s.name,
		StartMS:  float64(s.start.Sub(s.sc.start)) / float64(time.Millisecond),
		DurMS:    float64(end.Sub(s.start)) / float64(time.Millisecond),
		Worker:   s.worker,
		Num:      s.num,
		Str:      s.str,
	}
	s.mu.Unlock()
	s.sc.finish(rec)
}

// ParseTraceparent parses a W3C traceparent header value
// (version-traceid-spanid-flags, all lowercase hex). ok is false for
// malformed values, the forbidden version ff, and all-zero ids.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	ver, tid, sid, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isHex(ver) || !isHex(tid) || !isHex(sid) || !isHex(flags) {
		return "", "", false
	}
	if ver == "ff" || allZero(tid) || allZero(sid) {
		return "", "", false
	}
	return tid, sid, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// randSeq de-correlates ids if crypto/rand ever fails (it does not on
// supported platforms); ids must merely be unique, not unpredictable.
var randSeq atomic.Uint64

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		binary.BigEndian.PutUint64(b[:8:8], randSeq.Add(1)|1<<63)
	}
	// Guard against the all-zero id the W3C spec forbids.
	b[n-1] |= 1
	return hex.EncodeToString(b)
}
