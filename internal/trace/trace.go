// Package trace is the structured event layer of the solver stack: a
// single flat Event type emitted by the LP engine, the branch-and-bound
// search, the model builder and the solve service, fanned out to
// pluggable Sinks (an in-memory ring for live SSE streaming, an NDJSON
// writer for offline analysis, a slog adapter for operational logs).
//
// The layer is designed to cost nothing when disabled: a nil *Tracer is
// the valid "off" state, every method has a nil-receiver guard, and the
// hot solver loops gate event construction behind a single pointer
// comparison, so the disabled path performs no allocation and no atomic
// traffic. The zero-allocation property is guarded by
// testing.AllocsPerRun in this package's tests and exercised by the CI
// bench-smoke job.
package trace

import (
	"math"
	"sync"
	"time"
)

// Kind classifies an event. The taxonomy (documented in DESIGN.md):
//
//	model     — generated ILP size: vars/rows/nonzeros + per-family rows
//	root      — root LP relaxation solved; Bound is the root bound
//	node      — sampled branch-and-bound progress (every SampleEvery nodes)
//	incumbent — a new best integer-feasible solution was installed
//	bound     — the proved lower bound moved (parallel best-bound ratchet)
//	plan      — the solver chose its search strategy (work-stealing,
//	            portfolio or the serial fallback of the root-size gate);
//	            Msg names the chosen mode and explains a fallback
//	worker    — a parallel worker picked up a subproblem
//	steal     — a work-stealing worker stole a subproblem from a victim
//	            (Worker is the thief; Msg names the victim)
//	cut       — root strengthening appended a cutting plane (Msg names
//	            the cut family and row)
//	dive      — the root diving heuristic finished (Msg reports whether
//	            an incumbent was found)
//	status    — terminal branch-and-bound outcome with LP counters
//	result    — terminal core-level outcome (after extraction/verification)
//	job       — terminal service-level job transition
type Kind string

// Event kinds, ordered roughly by the layer that emits them.
const (
	KindModel     Kind = "model"
	KindRoot      Kind = "root"
	KindNode      Kind = "node"
	KindIncumbent Kind = "incumbent"
	KindBound     Kind = "bound"
	KindPlan      Kind = "plan"
	KindWorker    Kind = "worker"
	KindSteal     Kind = "steal"
	KindCut       Kind = "cut"
	KindDive      Kind = "dive"
	KindStatus    Kind = "status"
	KindResult    Kind = "result"
	KindJob       Kind = "job"
	// KindCertificate reports the exact-arithmetic certification of a
	// terminal verdict: Status carries the certificate kind
	// (optimal/feasible/infeasible) and Msg its one-line summary.
	KindCertificate Kind = "certificate"
	// KindStall is emitted by the service's gap-stall watchdog when a
	// running search's proved bound and incumbent have both been
	// stationary for the configured window: Bound/Incumbent/Gap carry
	// the frozen figures and Msg the window length.
	KindStall Kind = "stall"
	// KindPanic reports a recovered worker panic: Worker identifies the
	// panicking worker, Nodes the global node count at the time, and
	// Msg the panic value. The search stops and the job fails, but the
	// black box retains the events leading up to the crash.
	KindPanic Kind = "panic"
)

// Family is the per-constraint-family slice of a model event: all rows
// whose name shares the prefix before '[' (uniq, assign, t28, ...).
type Family struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	NNZ  int    `json:"nnz"`
}

// Event is one observation. It is a flat value type — no pointers
// except the optional Families payload of model events — so emitting
// and buffering copies it without touching the heap. Unused fields stay
// zero and are dropped from the JSON encoding.
//
// JSON cannot represent non-finite numbers, so Emit sanitizes the
// float fields: a ±Inf or NaN Incumbent/Bound/Gap is cleared (and
// HasIncumbent reset) rather than breaking the encoder.
type Event struct {
	// Seq is the tracer-assigned emission sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// TMS is the elapsed time since the tracer was created, in
	// milliseconds.
	TMS float64 `json:"t_ms"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`

	// Search progress (node/incumbent/bound/status events).
	Nodes        int64   `json:"nodes,omitempty"`
	Pivots       int64   `json:"pivots,omitempty"`
	HasIncumbent bool    `json:"has_incumbent,omitempty"`
	Incumbent    float64 `json:"incumbent,omitempty"`
	Bound        float64 `json:"bound,omitempty"`
	Gap          float64 `json:"gap,omitempty"`
	Worker       int     `json:"worker,omitempty"`
	Subproblem   int     `json:"subproblem,omitempty"`

	// Model shape (model events). Density is the constraint-matrix
	// fill ratio NNZ / (Vars·Rows) — the quantity the LP engine gate
	// (lp.ChooseEngine) weighs against size.
	Vars     int      `json:"vars,omitempty"`
	Rows     int      `json:"rows,omitempty"`
	NNZ      int      `json:"nnz,omitempty"`
	Density  float64  `json:"density,omitempty"`
	Families []Family `json:"families,omitempty"`

	// LP engine counters (status events; see lp.Counters).
	Refactorizations int64 `json:"refactorizations,omitempty"`
	FarkasChecks     int64 `json:"farkas_checks,omitempty"`
	FarkasRejected   int64 `json:"farkas_rejected,omitempty"`
	WindowScans      int64 `json:"window_scans,omitempty"`
	CandidateHits    int64 `json:"candidate_hits,omitempty"`

	// Sparse-engine observability (status events, revised engine only).
	// Engine names the LP engine that ran ("dense" or "revised");
	// FillIn is FactorNNZ / BasisNNZ — the LU fill ratio of the last
	// factorized basis — and EtaNNZ counts eta-file entries appended
	// across the solve (the quantity the refactorization policy bounds).
	Engine         string  `json:"engine,omitempty"`
	Factorizations int64   `json:"factorizations,omitempty"`
	FTRANs         int64   `json:"ftrans,omitempty"`
	BTRANs         int64   `json:"btrans,omitempty"`
	EtaNNZ         int64   `json:"eta_nnz,omitempty"`
	BasisNNZ       int64   `json:"basis_nnz,omitempty"`
	FactorNNZ      int64   `json:"factor_nnz,omitempty"`
	FillIn         float64 `json:"fill_in,omitempty"`

	// Status is the terminal state string (status/result/job events).
	Status string `json:"status,omitempty"`
	// Msg carries free-form context (model summary, error text, ...).
	Msg string `json:"msg,omitempty"`
}

// Sink receives emitted events. Implementations must be safe for
// concurrent Emit calls; the Tracer serializes its own emissions but a
// Sink may be shared between tracers (e.g. a service-wide log sink).
type Sink interface {
	Emit(Event)
}

// Tracer stamps events with a sequence number and elapsed time and
// forwards them to its sink. A nil *Tracer is the disabled state: all
// methods are safe to call on it and do nothing, so call sites need no
// conditional plumbing — hot loops should still gate on Enabled (a
// single pointer comparison) to skip event construction entirely.
type Tracer struct {
	mu     sync.Mutex
	sink   Sink
	start  time.Time
	seq    uint64
	sample int64
}

// New returns a tracer emitting to sink with the default node-event
// sampling interval of 64.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink, start: time.Now(), sample: 64}
}

// Enabled reports whether the tracer is active. It is the cheap guard
// for hot paths: nil receivers return false.
func (t *Tracer) Enabled() bool { return t != nil }

// SampleEvery returns the node-event sampling interval (node events are
// emitted every n-th explored node); 64 on a fresh tracer, 64 on nil.
func (t *Tracer) SampleEvery() int64 {
	if t == nil || t.sample <= 0 {
		return 64
	}
	return t.sample
}

// SetSampleEvery sets the node-event sampling interval; n < 1 resets to
// the default. No-op on a nil tracer.
func (t *Tracer) SetSampleEvery(n int64) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 64
	}
	t.mu.Lock()
	t.sample = n
	t.mu.Unlock()
}

// Emit stamps e with the next sequence number and the elapsed time and
// forwards it to the sink. Non-finite float fields are sanitized (JSON
// cannot carry ±Inf: an unset incumbent starts at +Inf in the solver).
// No-op on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil || t.sink == nil {
		return
	}
	if !isFinite(e.Incumbent) {
		e.Incumbent, e.HasIncumbent = 0, false
	}
	if !isFinite(e.Bound) {
		e.Bound = 0
	}
	if !isFinite(e.Gap) {
		e.Gap = 0
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	e.TMS = float64(time.Since(t.start)) / float64(time.Millisecond)
	t.sink.Emit(e)
	t.mu.Unlock()
}

func isFinite(v float64) bool {
	return !math.IsInf(v, 0) && !math.IsNaN(v)
}
