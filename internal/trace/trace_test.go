package trace

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer // the disabled state
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("unreachable")
		}
		tr.Emit(Event{Kind: KindNode, Nodes: 42, Bound: 1.5})
		tr.SetSampleEvery(8)
		_ = tr.SampleEvery()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v per emit, want 0", allocs)
	}
}

func TestTracerStampsAndSanitizes(t *testing.T) {
	r := NewRing(8)
	tr := New(r)
	tr.Emit(Event{Kind: KindRoot, Bound: 3})
	tr.Emit(Event{Kind: KindIncumbent, HasIncumbent: true, Incumbent: math.Inf(1), Gap: math.NaN()})
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("bad sequence numbers: %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].TMS < 0 || evs[1].TMS < evs[0].TMS {
		t.Fatalf("elapsed times not monotone: %v, %v", evs[0].TMS, evs[1].TMS)
	}
	if evs[1].HasIncumbent || evs[1].Incumbent != 0 || evs[1].Gap != 0 {
		t.Fatalf("non-finite fields not sanitized: %+v", evs[1])
	}
	if _, err := json.Marshal(evs); err != nil {
		t.Fatalf("sanitized events must marshal: %v", err)
	}
}

func TestRingWrapSinceAndClose(t *testing.T) {
	r := NewRing(4)
	tr := New(r)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Kind: KindNode, Nodes: int64(i + 1)})
	}
	if got := r.Total(); got != 6 {
		t.Fatalf("total = %d, want 6", got)
	}
	evs, cur := r.Since(0)
	if len(evs) != 4 || evs[0].Nodes != 3 || evs[3].Nodes != 6 {
		t.Fatalf("wrapped ring returned %+v", evs)
	}
	if cur != 6 {
		t.Fatalf("cursor = %d, want 6", cur)
	}
	if more, cur2 := r.Since(cur); len(more) != 0 || cur2 != 6 {
		t.Fatalf("drained ring returned %d events, cursor %d", len(more), cur2)
	}

	// incremental read picks up exactly the new events
	wait := r.Wait()
	tr.Emit(Event{Kind: KindNode, Nodes: 7})
	select {
	case <-wait:
	default:
		t.Fatal("Wait channel not signalled by Emit")
	}
	evs, cur = r.Since(cur)
	if len(evs) != 1 || evs[0].Nodes != 7 || cur != 7 {
		t.Fatalf("incremental read got %+v (cursor %d)", evs, cur)
	}

	r.Close()
	if !r.Closed() {
		t.Fatal("ring not closed")
	}
	select {
	case <-r.Wait():
	default:
		t.Fatal("Wait on a closed ring must be ready")
	}
	tr.Emit(Event{Kind: KindNode, Nodes: 8}) // dropped
	if got := r.Total(); got != 7 {
		t.Fatalf("emit after close changed total to %d", got)
	}
	r.Close() // idempotent
}

// TestRingAtAnchorsIndexing: an amend-generation ring anchored at the
// parent's total continues the absolute index sequence, so a reader's
// cursor from the parent ring resumes cleanly on the child.
func TestRingAtAnchorsIndexing(t *testing.T) {
	parent := NewRing(4)
	for i := 0; i < 3; i++ {
		parent.Emit(Event{Kind: KindNode, Nodes: int64(i + 1)})
	}
	child := NewRingAt(4, parent.Total())
	if got := child.Total(); got != 3 {
		t.Fatalf("anchored ring total = %d, want 3", got)
	}
	if evs, cur := child.Since(0); len(evs) != 0 || cur != 3 {
		t.Fatalf("empty anchored ring returned %d events, cursor %d", len(evs), cur)
	}
	child.Emit(Event{Kind: KindNode, Nodes: 4})
	child.Emit(Event{Kind: KindNode, Nodes: 5})
	// a reader that stopped at parent index 3 resumes with the child's
	// first event and monotone indices
	evs, cur := child.Since(3)
	if len(evs) != 2 || evs[0].Nodes != 4 || cur != 5 {
		t.Fatalf("resume across the amend boundary got %+v (cursor %d)", evs, cur)
	}
	if evs, _ := child.Since(4); len(evs) != 1 || evs[0].Nodes != 5 {
		t.Fatalf("mid-child resume got %+v", evs)
	}
}

func TestWriterSinkNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewWriterSink(&buf))
	tr.Emit(Event{Kind: KindModel, Vars: 10, Rows: 20, NNZ: 30,
		Families: []Family{{Name: "uniq", Rows: 4, NNZ: 12}}})
	tr.Emit(Event{Kind: KindStatus, Status: "optimal", Nodes: 5})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if e.Kind != KindModel || len(e.Families) != 1 || e.Families[0].Name != "uniq" {
		t.Fatalf("round-tripped model event = %+v", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if e.Kind != KindStatus || e.Status != "optimal" {
		t.Fatalf("round-tripped status event = %+v", e)
	}
}

func TestFanoutAddDuringEmit(t *testing.T) {
	a, b := NewRing(16), NewRing(16)
	f := NewFanout(a)
	tr := New(f)
	tr.Emit(Event{Kind: KindRoot})
	f.Add(b) // late joiner sees only later events
	tr.Emit(Event{Kind: KindStatus, Status: "optimal"})
	if got := a.Total(); got != 2 {
		t.Fatalf("primary sink got %d events, want 2", got)
	}
	if got := b.Total(); got != 1 {
		t.Fatalf("late sink got %d events, want 1", got)
	}
	if evs := b.Snapshot(); evs[0].Kind != KindStatus {
		t.Fatalf("late sink first event = %+v", evs[0])
	}
}

func TestSlogSinkSmoke(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := New(NewSlogSink(l))
	tr.Emit(Event{Kind: KindIncumbent, HasIncumbent: true, Incumbent: 4, Nodes: 9})
	out := buf.String()
	for _, want := range []string{`"msg":"incumbent"`, `"incumbent":4`, `"nodes":9`} {
		if !strings.Contains(out, want) {
			t.Fatalf("slog output %q missing %q", out, want)
		}
	}
}

func TestRingConcurrentEmitRead(t *testing.T) {
	r := NewRing(64)
	tr := New(r)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Event{Kind: KindNode, Nodes: int64(i)})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var cur uint64
		var seen int
		for seen < 64 { // read until the buffer definitely wrapped once
			wait := r.Wait()
			evs, next := r.Since(cur)
			cur = next
			seen += len(evs)
			if len(evs) == 0 {
				<-wait
			}
		}
	}()
	wg.Wait()
	r.Close()
	<-done
	if got := r.Total(); got != 800 {
		t.Fatalf("total = %d, want 800", got)
	}
}
