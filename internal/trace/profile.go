package trace

// Phase identifies where solver wall time is spent. The taxonomy has
// two disjoint levels (documented in DESIGN.md):
//
// Node-level phases partition the time of the branch-and-bound search;
// their sum approximates the solve's wall time (the remainder is tree
// bookkeeping):
//
//	node-lp       — LP solves/re-optimizations of search nodes
//	probe         — the exact-scheduling node probe hook
//	complete      — the auxiliary-variable completion hook
//	branch-select — branching-variable selection
//	verify        — incumbent feasibility re-checks against original data
//
// LP-internal phases subdivide node-lp (they overlap it, never each
// other): where the simplex engine itself spends its pivots:
//
//	pricing       — entering-variable/leaving-row pricing scans
//	ratio-test    — primal and dual ratio tests
//	pivot-update  — the pivot's state update (dense tableau elimination,
//	                or the revised engine's beta/reduced-cost/eta update)
//	refactorize   — tableau rebuilds from original row data
//	farkas        — Farkas certification of infeasibility verdicts
//	ftran         — revised engine: forward solves B^{-1} a (entering
//	                columns, bound-shift column solves)
//	btran         — revised engine: backward solves B^{-T} e_r and the
//	                pivot-row scatter they feed
//	factorize     — revised engine: sparse LU (re)factorizations of the
//	                basis (the dense engine's rebuilds stay under
//	                refactorize)
//
// Root-level phases happen once, before the tree search, and belong to
// neither group (they are outside the node-level sum):
//
//	cut-gen       — root strengthening: cut separation, row appends and
//	                the augmented-root re-optimization
//	dive          — the root diving heuristic's LP dives
//
// Service-level phases are observed outside the solver entirely:
//
//	queue-wait    — submit-to-worker-pickup latency of a service job
type Phase int

// Phases, grouped by level. NumPhases bounds the enum for array sizing.
// New phases are appended so recorded phase indices stay stable.
const (
	PhaseNodeLP Phase = iota
	PhaseProbe
	PhaseComplete
	PhaseBranchSelect
	PhaseVerify
	PhasePricing
	PhaseRatio
	PhaseUpdate
	PhaseRefactorize
	PhaseFarkas
	PhaseFTRAN
	PhaseBTRAN
	PhaseFactorize
	PhaseCutGen
	PhaseDive
	PhaseQueueWait
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseNodeLP:       "node-lp",
	PhaseProbe:        "probe",
	PhaseComplete:     "complete",
	PhaseBranchSelect: "branch-select",
	PhaseVerify:       "verify",
	PhasePricing:      "pricing",
	PhaseRatio:        "ratio-test",
	PhaseUpdate:       "pivot-update",
	PhaseRefactorize:  "refactorize",
	PhaseFarkas:       "farkas",
	PhaseFTRAN:        "ftran",
	PhaseBTRAN:        "btran",
	PhaseFactorize:    "factorize",
	PhaseCutGen:       "cut-gen",
	PhaseDive:         "dive",
	PhaseQueueWait:    "queue-wait",
}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// NodeLevel reports whether the phase belongs to the node-level group,
// whose durations are disjoint and sum to (approximately) the search
// wall time. LP-internal phases subdivide PhaseNodeLP and must not be
// added to the node-level sum.
func (p Phase) NodeLevel() bool { return p >= PhaseNodeLP && p <= PhaseVerify }

// ParsePhase resolves a phase name as produced by Phase.String; ok is
// false for unknown names.
func ParsePhase(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// Profile aggregates per-phase wall time into one log-bucketed
// histogram per phase. A nil *Profile is the valid "off" state: Observe
// on it is a no-op behind a single pointer compare, so hot loops need
// no conditional plumbing. A non-nil Profile is safe for concurrent use
// — parallel branch-and-bound workers and the service's per-flight
// merge all target atomic buckets.
type Profile struct {
	h [NumPhases]Hist
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{} }

// Observe records ns nanoseconds under phase p. No-op on a nil profile
// or an out-of-range phase.
func (pr *Profile) Observe(p Phase, ns int64) {
	if pr == nil || p < 0 || p >= NumPhases {
		return
	}
	pr.h[p].Observe(ns)
}

// Hist returns the histogram of phase p (nil on a nil profile).
func (pr *Profile) Hist(p Phase) *Hist {
	if pr == nil || p < 0 || p >= NumPhases {
		return nil
	}
	return &pr.h[p]
}

// Merge adds o's histograms into pr. No-op when either side is nil.
func (pr *Profile) Merge(o *Profile) {
	if pr == nil || o == nil {
		return
	}
	for i := range pr.h {
		pr.h[i].Merge(&o.h[i])
	}
}

// PhaseStat is the snapshot of one phase: its name, observation count,
// total nanoseconds and the non-empty histogram buckets. It is the
// JSON-stable form used by recordings and the service stats/metrics.
type PhaseStat struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot returns the non-empty phases in enum order. Nil profiles
// snapshot to nil.
func (pr *Profile) Snapshot() []PhaseStat {
	if pr == nil {
		return nil
	}
	var out []PhaseStat
	for i := range pr.h {
		h := &pr.h[i]
		if h.Count() == 0 {
			continue
		}
		out = append(out, PhaseStat{
			Name:    Phase(i).String(),
			Count:   h.Count(),
			SumNS:   h.SumNS(),
			Buckets: h.Buckets(),
		})
	}
	return out
}
