package trace

import (
	"sync"
	"time"
)

// BlackBox is the always-on anomaly recorder: a bounded keep-last ring
// of recent search events, the complement of the keep-first Recorder.
// Where the Recorder answers "how did the solve start", the black box
// answers "what was the solve doing when it died" — it is cheap enough
// to run on every job, and its contents only become interesting when an
// anomaly (worker panic, deadline cancellation, certification failure,
// watchdog stall) flushes it.
//
// A nil *BlackBox is the valid "off" state: Record and Flush on it are
// no-ops behind a single pointer compare. A live BlackBox's Record is
// zero-alloc in steady state — the ring buffer is preallocated and
// BBEvent is a flat value type — which is what lets the service keep it
// on for every node of every job (guarded by AllocsPerRun tests).
//
// Flush freezes a copy of the ring under the anomaly's name; the first
// flush wins and later ones are ignored, so the dump always reflects
// the first anomaly observed. Recording continues after a flush (the
// frozen copy is immutable), and Dump serves the frozen copy once one
// exists, the live tail otherwise.
type BlackBox struct {
	mu      sync.Mutex
	start   time.Time
	buf     []BBEvent
	next    int // write cursor into buf (wraps)
	total   int64
	flushed bool
	reason  string
	fms     float64
	frozen  []BBEvent
	onFlush func(BBDump)
}

// DefaultBlackBoxCap is the ring capacity used when NewBlackBox is
// given a non-positive one: enough recent nodes to localize a crash,
// small enough to preallocate per job.
const DefaultBlackBoxCap = 256

// Black-box event kinds. These deliberately mirror the Kind taxonomy
// where events overlap (node, incumbent, bound, stall, panic) and add
// ring-only kinds for flush triggers.
const (
	BBNode      = "node"
	BBIncumbent = "incumbent"
	BBBound     = "bound"
	BBPanic     = "panic"
	BBStall     = "stall"
	BBDeadline  = "deadline"
	BBCertify   = "certify"
)

// BBEvent is one black-box observation: a flat value type (no pointers)
// so recording copies it into the preallocated ring without touching
// the heap. Node events carry the global node index, the worker that
// explored it, its depth, LP objective and the branching column; the
// shared incumbent/bound are sampled alongside so the tail of a dump
// reads as a self-contained trajectory.
type BBEvent struct {
	TMS       float64 `json:"t_ms"`
	Kind      string  `json:"kind"`
	Node      int64   `json:"node,omitempty"`
	Worker    int     `json:"worker,omitempty"`
	Depth     int     `json:"depth,omitempty"`
	Col       int     `json:"col,omitempty"`
	Obj       float64 `json:"obj,omitempty"`
	Bound     float64 `json:"bound,omitempty"`
	Incumbent float64 `json:"incumbent,omitempty"`
	Msg       string  `json:"msg,omitempty"`
}

// BBDump is the retrievable form of a black box: the chronologically
// ordered events (frozen at flush time when flushed), the flush reason,
// and the total number of events ever recorded (Total − len(Events)
// were dropped from the front of the ring).
type BBDump struct {
	Flushed  bool      `json:"flushed"`
	Reason   string    `json:"reason,omitempty"`
	FlushTMS float64   `json:"flush_t_ms,omitempty"`
	Total    int64     `json:"total"`
	Events   []BBEvent `json:"events"`
}

// NewBlackBox returns a black box keeping the last capacity events
// (DefaultBlackBoxCap when capacity <= 0).
func NewBlackBox(capacity int) *BlackBox {
	if capacity <= 0 {
		capacity = DefaultBlackBoxCap
	}
	return &BlackBox{start: time.Now(), buf: make([]BBEvent, capacity)}
}

// Record stamps e with the elapsed time and appends it, overwriting the
// oldest event once the ring is full. Non-finite floats are sanitized
// (the solver's unset incumbent is +Inf). No-op on nil.
func (b *BlackBox) Record(e BBEvent) {
	if b == nil {
		return
	}
	if !isFinite(e.Obj) {
		e.Obj = 0
	}
	if !isFinite(e.Bound) {
		e.Bound = 0
	}
	if !isFinite(e.Incumbent) {
		e.Incumbent = 0
	}
	b.mu.Lock()
	e.TMS = float64(time.Since(b.start)) / float64(time.Millisecond)
	b.buf[b.next] = e
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
	}
	b.total++
	b.mu.Unlock()
}

// Flush freezes the current ring contents under reason. Only the first
// flush takes effect; the return value reports whether this call was
// it. The OnFlush hook, when set, is invoked with the frozen dump
// outside the lock. No-op (false) on nil.
func (b *BlackBox) Flush(reason string) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	if b.flushed {
		b.mu.Unlock()
		return false
	}
	b.flushed = true
	b.reason = reason
	b.fms = float64(time.Since(b.start)) / float64(time.Millisecond)
	b.frozen = b.snapshotLocked()
	hook := b.onFlush
	dump := b.dumpLocked()
	b.mu.Unlock()
	if hook != nil {
		hook(dump)
	}
	return true
}

// SetOnFlush installs a hook invoked once, with the frozen dump, when
// the first Flush lands — the path behind tpserve's -blackbox dump
// directory. No-op on nil.
func (b *BlackBox) SetOnFlush(fn func(BBDump)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.onFlush = fn
	b.mu.Unlock()
}

// Flushed returns the flush reason and whether a flush has happened.
func (b *BlackBox) Flushed() (string, bool) {
	if b == nil {
		return "", false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reason, b.flushed
}

// Total returns the number of events ever recorded (0 on nil).
func (b *BlackBox) Total() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Dump returns the frozen dump when flushed, otherwise a snapshot of
// the live tail. The zero BBDump on nil.
func (b *BlackBox) Dump() BBDump {
	if b == nil {
		return BBDump{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dumpLocked()
}

func (b *BlackBox) dumpLocked() BBDump {
	d := BBDump{Flushed: b.flushed, Reason: b.reason, FlushTMS: b.fms, Total: b.total}
	if b.flushed {
		d.Events = b.frozen
	} else {
		d.Events = b.snapshotLocked()
	}
	return d
}

// snapshotLocked copies the ring in chronological order.
func (b *BlackBox) snapshotLocked() []BBEvent {
	if b.total <= int64(len(b.buf)) {
		out := make([]BBEvent, b.total)
		copy(out, b.buf[:b.total])
		return out
	}
	out := make([]BBEvent, 0, len(b.buf))
	out = append(out, b.buf[b.next:]...)
	out = append(out, b.buf[:b.next]...)
	return out
}
