package service

// Build identity for GET /v1/version and the tpserve_build_info metric,
// read from the binary's embedded module and VCS metadata — no ldflags
// stamping required (and none available: the repo builds with plain
// `go build`).

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary.
type BuildInfo struct {
	// Module is the main module path; Version its module version
	// ("(devel)" for a source build).
	Module  string `json:"module"`
	Version string `json:"version"`
	// Revision and RevisionTime are the VCS commit and its timestamp
	// when the binary was built inside a checkout; Modified reports
	// uncommitted changes at build time.
	Revision     string `json:"revision,omitempty"`
	RevisionTime string `json:"revision_time,omitempty"`
	Modified     bool   `json:"modified,omitempty"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
}

// Version reads the build identity embedded by the Go toolchain.
func Version() BuildInfo {
	bi := BuildInfo{Go: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.time":
			bi.RevisionTime = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}
