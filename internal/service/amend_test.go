package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAmendLifecycle drives the amend tentpole at the service level: a
// finished job is amended with a device edit, the amended job carries
// the lineage, dispatches down a fast path, and its result equals a
// cold solve of the same merged request.
func TestAmendLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)

	ctx := context.Background()
	base, err := s.Solve(ctx, fastRequest())
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != StatusDone || !base.Result.Optimal {
		t.Fatalf("base job %s: %+v", base.ID, base)
	}

	// relax the capacity: a bounds-class edit that must re-solve warm
	amendID, err := s.Amend(base.ID, &AmendRequest{Device: &DeviceSpec{CapacityFG: 200}})
	if err != nil {
		t.Fatal(err)
	}
	info := waitFinished(t, s, amendID, 30*time.Second)
	if info.Status != StatusDone {
		t.Fatalf("amended job: %s (%s)", info.Status, info.Error)
	}
	if info.Amend == nil {
		t.Fatal("amended job carries no lineage")
	}
	if info.Amend.Of != base.ID || info.Amend.Generation != 1 {
		t.Fatalf("lineage %+v, want of=%s gen=1", info.Amend, base.ID)
	}
	if info.Amend.Class != "bounds" {
		t.Fatalf("device edit classified %q, want bounds", info.Amend.Class)
	}
	if info.Amend.Path == "cold" {
		t.Fatal("bounds-class amend dispatched cold")
	}

	// differential: the amended result must equal a cold solve of the
	// merged request on a fresh service
	cold := New(Config{Workers: 1})
	defer closeBounded(t, cold)
	req := fastRequest()
	req.Device.CapacityFG = 200
	want, err := cold.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if info.Result.Feasible != want.Result.Feasible || info.Result.Comm != want.Result.Comm {
		t.Fatalf("amend result %+v, cold %+v", info.Result, want.Result)
	}

	// amend the amend: generation increments, lineage points at it
	id2, err := s.Amend(amendID, &AmendRequest{Device: &DeviceSpec{ScratchMem: 32}})
	if err != nil {
		t.Fatal(err)
	}
	info2 := waitFinished(t, s, id2, 30*time.Second)
	if info2.Amend == nil || info2.Amend.Of != amendID || info2.Amend.Generation != 2 {
		t.Fatalf("second-generation lineage %+v", info2.Amend)
	}

	st := s.Stats()
	if st.Amends != 2 {
		t.Fatalf("stats amends = %d, want 2", st.Amends)
	}
	if st.Delta.Warm+st.Delta.Reuse == 0 {
		t.Fatalf("no fast-path dispatches in %+v", st.Delta)
	}
}

// TestAmendErrors pins the typed failures: unknown base jobs and bases
// that have not finished yet.
func TestAmendErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeBounded(t, s)

	if _, err := s.Amend("nope", &AmendRequest{}); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown base: %v", err)
	}

	id, err := s.Submit(heavyRequest(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Amend(id, &AmendRequest{}); !errors.Is(err, ErrJobRunning) {
		t.Fatalf("running base: %v", err)
	}
	s.Cancel(id)
	waitFinished(t, s, id, 10*time.Second)

	// a cancelled base is terminal, so amending it is allowed (it just
	// re-solves cold: nothing was cached)
	if _, err := s.Amend(id, &AmendRequest{Options: &SolveOptions{TimeLimitMS: 1}}); err != nil {
		t.Fatalf("amending a cancelled base: %v", err)
	}
}

// TestAmendDedupe: repeated identical amends share one canonical key,
// so the second is served from the result cache.
func TestAmendDedupe(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ctx := context.Background()

	base, err := s.Solve(ctx, fastRequest())
	if err != nil {
		t.Fatal(err)
	}
	edit := &AmendRequest{Device: &DeviceSpec{CapacityFG: 200}}
	id1, err := s.Amend(base.ID, edit)
	if err != nil {
		t.Fatal(err)
	}
	first := waitFinished(t, s, id1, 30*time.Second)
	id2, err := s.Amend(base.ID, edit)
	if err != nil {
		t.Fatal(err)
	}
	second := waitFinished(t, s, id2, 30*time.Second)
	if !second.CacheHit {
		t.Fatal("repeated identical amend did not hit the cache")
	}
	if first.Result.Comm != second.Result.Comm {
		t.Fatalf("deduped amend disagrees: %d vs %d", first.Result.Comm, second.Result.Comm)
	}
}

// TestConcurrentAmends races many amends of one base job — half with
// one edit, half with another — and checks every job settles with a
// consistent verdict. Run under -race in CI.
func TestConcurrentAmends(t *testing.T) {
	s := New(Config{Workers: 4})
	defer closeBounded(t, s)
	ctx := context.Background()

	base, err := s.Solve(ctx, fastRequest())
	if err != nil {
		t.Fatal(err)
	}
	edits := []*AmendRequest{
		{Device: &DeviceSpec{CapacityFG: 200}},
		{Device: &DeviceSpec{ScratchMem: 32}},
	}
	const fan = 8
	ids := make([]string, fan)
	var wg sync.WaitGroup
	errs := make([]error, fan)
	for i := 0; i < fan; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = s.Amend(base.ID, edits[i%2])
		}(i)
	}
	wg.Wait()
	comms := map[int][]int{}
	for i := 0; i < fan; i++ {
		if errs[i] != nil {
			t.Fatalf("amend %d: %v", i, errs[i])
		}
		info := waitFinished(t, s, ids[i], 30*time.Second)
		if info.Status != StatusDone {
			t.Fatalf("amend %d: %s (%s)", i, info.Status, info.Error)
		}
		comms[i%2] = append(comms[i%2], info.Result.Comm)
	}
	for edit, cs := range comms {
		for _, c := range cs {
			if c != cs[0] {
				t.Fatalf("edit %d verdicts diverge: %v", edit, cs)
			}
		}
	}
}

// TestAmendCertifiedE2E is the bench-smoke amend flow: a certified
// solve, a bounds edit amended onto it, and the amended job's exact
// certificate re-verifying against the edited problem.
func TestAmendCertifiedE2E(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ctx := context.Background()

	req := fastRequest()
	req.Options.Certify = true
	base, err := s.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != StatusDone {
		t.Fatalf("base: %s (%s)", base.Status, base.Error)
	}

	id, err := s.Amend(base.ID, &AmendRequest{Device: &DeviceSpec{CapacityFG: 200}})
	if err != nil {
		t.Fatal(err)
	}
	info := waitFinished(t, s, id, 60*time.Second)
	if info.Status != StatusDone {
		t.Fatalf("amend: %s (%s)", info.Status, info.Error)
	}
	if info.Amend.Path == "reuse" {
		t.Fatal("certified amend took the reuse path; certification demands a re-certified search")
	}
	cert, err := s.Certificate(id)
	if err != nil || cert == nil {
		t.Fatalf("certificate: %v (nil=%v)", err, cert == nil)
	}
	if !cert.Valid {
		t.Fatalf("amended certificate invalid: %v", cert.Err())
	}
}

// TestV1AmendHTTP exercises POST /v1/jobs/{id}/amend end to end: 202
// with lineage on success, the typed 404/409 envelopes on bad bases.
func TestV1AmendHTTP(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var base JobInfo
	postV1(t, ts.URL+"/v1/jobs", fastRequest(), http.StatusAccepted, &base)
	waitFinished(t, s, base.ID, 30*time.Second)

	post := func(url, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	checkErr := func(resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantStatus, b)
		}
		var e errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Error.Code != wantCode || e.Error.Message == "" {
			t.Fatalf("envelope %+v, want code %q", e.Error, wantCode)
		}
	}

	checkErr(post(ts.URL+"/v1/jobs/nope/amend", `{}`), http.StatusNotFound, "not_found")

	// a running base 409s
	var heavy JobInfo
	postV1(t, ts.URL+"/v1/jobs", heavyRequest(1), http.StatusAccepted, &heavy)
	checkErr(post(ts.URL+"/v1/jobs/"+heavy.ID+"/amend", `{}`), http.StatusConflict, "job_running")
	s.Cancel(heavy.ID)

	resp := post(ts.URL+"/v1/jobs/"+base.ID+"/amend", `{"device":{"capacity_fg":200}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("amend: status %d: %s", resp.StatusCode, b)
	}
	var amended JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&amended); err != nil {
		t.Fatal(err)
	}
	if amended.Amend == nil || amended.Amend.Of != base.ID {
		t.Fatalf("amended job info %+v lacks lineage", amended)
	}
	info := waitFinished(t, s, amended.ID, 30*time.Second)
	if info.Status != StatusDone {
		t.Fatalf("amended job: %s (%s)", info.Status, info.Error)
	}
}

// TestV1SSEResumeAcrossAmend is the regression test for monotone event
// ids across amend generations: a client that drained the base job's
// stream resumes on the amended job with Last-Event-ID and sees only
// new events, with strictly increasing ids continuing the base's.
func TestV1SSEResumeAcrossAmend(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var base JobInfo
	postV1(t, ts.URL+"/v1/jobs", fastRequest(), http.StatusAccepted, &base)
	waitFinished(t, s, base.ID, 30*time.Second)

	stream := func(id string, lastEventID uint64) (ids []uint64) {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastEventID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "id: ") {
				v, perr := strconv.ParseUint(line[len("id: "):], 10, 64)
				if perr != nil {
					t.Fatalf("bad id line %q: %v", line, perr)
				}
				ids = append(ids, v)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return ids
	}

	baseIDs := stream(base.ID, 0)
	if len(baseIDs) == 0 {
		t.Fatal("base stream carried no events")
	}
	lastBase := baseIDs[len(baseIDs)-1]

	var amendBody bytes.Buffer
	amendBody.WriteString(`{"device":{"capacity_fg":200}}`)
	resp, err := http.Post(ts.URL+"/v1/jobs/"+base.ID+"/amend", "application/json", &amendBody)
	if err != nil {
		t.Fatal(err)
	}
	var amended JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&amended); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFinished(t, s, amended.ID, 30*time.Second)

	amendIDs := stream(amended.ID, lastBase)
	if len(amendIDs) == 0 {
		t.Fatal("amend stream carried no events")
	}
	prev := lastBase
	for _, v := range amendIDs {
		if v <= prev {
			t.Fatalf("event id %d not past cursor %d: ids regressed across the amend boundary (%v)", v, prev, amendIDs)
		}
		prev = v
	}

	// a fully-caught-up resume replays nothing and just sees the stream
	// end (the amended job is terminal, so its ring is closed)
	if tail := stream(amended.ID, prev); len(tail) != 0 {
		t.Fatalf("resume at the tip replayed %v", tail)
	}
}

// TestSweep drives the design-space sweep: an α scan whose points
// chain through the delta engine. Later points must leave the cold
// path, and every point's verdict must match an isolated solve.
func TestSweep(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ctx := context.Background()

	sreq := &SweepRequest{Request: *fastRequest()}
	sreq.Sweep.Alpha = []float64{0.7, 0.8, 0.9}
	res, err := s.Sweep(ctx, sreq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points, want 3", len(res.Points))
	}
	if res.Warm+res.Reuse == 0 {
		t.Fatalf("sweep never left the cold path: %+v", res)
	}
	for i, pt := range res.Points {
		if !pt.Optimal {
			t.Fatalf("point %d not optimal: %+v", i, pt)
		}
		req := fastRequest()
		req.Device.Alpha = pt.Alpha
		want, err := s.Solve(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Feasible != want.Result.Feasible || pt.Comm != want.Result.Comm {
			t.Fatalf("point %d (alpha %g): sweep %+v, isolated %+v", i, pt.Alpha, pt, want.Result)
		}
	}

	if st := s.Stats(); st.Sweeps != 1 || st.SweepPoints != 3 {
		t.Fatalf("stats sweeps=%d points=%d, want 1/3", st.Sweeps, st.SweepPoints)
	}

	// grid-size limit
	big := &SweepRequest{Request: *fastRequest()}
	big.Sweep.CapacityFG = make([]int, 30)
	for i := range big.Sweep.CapacityFG {
		big.Sweep.CapacityFG[i] = 160 + i
	}
	big.Sweep.ScratchMem = []int{8, 16, 32, 64}
	big.Sweep.Alpha = []float64{0.5, 0.6, 0.7}
	if _, err := s.Sweep(ctx, big); err == nil {
		t.Fatal("oversized grid accepted")
	}
}

// TestV1SweepHTTP checks the POST /v1/sweep wire surface.
func TestV1SweepHTTP(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeBounded(t, s)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	body, err := json.Marshal(&SweepRequest{Request: *fastRequest(),
		Sweep: SweepAxes{Alpha: []float64{0.7, 0.9}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, b)
	}
	var res SweepResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || !res.Points[0].Optimal || !res.Points[1].Optimal {
		t.Fatalf("sweep result %+v", res)
	}

	resp2, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sweep body: status %d", resp2.StatusCode)
	}
}
